// Extension experiment (paper §4.3, ref [23] Nedevschi et al.): network
// device sleeping and rate adaptation.
//
//   "Similar concepts have been explored to putting networking devices to
//    sleep for energy conservation."
//
// A 48-port top-of-rack switch carries diurnal server traffic for a day.
// Per-port policies: always-on (baseline), buffer-and-burst sleeping, and
// rate adaptation. Reports the energy/latency trade-off ref [23] maps out.
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "network/energy_policy.h"
#include "workload/diurnal.h"

using namespace epm;

namespace {

constexpr std::size_t kServerPorts = 40;  // servers on the ToR
constexpr std::size_t kUplinks = 4;

/// Per-server traffic at demand level `level`: bursty web-ish traffic that
/// leaves links mostly idle even at peak (the ref's core observation).
double server_load_gbps(double level) { return 0.6 * level; }

struct Tally {
  double energy_kwh = 0.0;
  double mean_added_delay_us = 0.0;
  double mean_awake = 0.0;
};

Tally run(network::LinkPolicy policy) {
  const network::SwitchPowerModel model{network::SwitchPowerConfig{}};
  const workload::DiurnalModel diurnal{workload::DiurnalConfig{}};
  Tally tally;
  double delay_sum = 0.0;
  double awake_sum = 0.0;
  const int epochs = 24 * 60;
  for (int m = 0; m < epochs; ++m) {
    const double level = diurnal.demand_at(m * minutes(1.0));
    double switch_power = model.config().chassis_power_w;
    double epoch_delay = 0.0;
    double epoch_awake = 0.0;
    // Server ports.
    const auto server_eval =
        network::evaluate_link(model, policy, server_load_gbps(level));
    switch_power += static_cast<double>(kServerPorts) * server_eval.power_w;
    epoch_delay += server_eval.added_delay_s;
    epoch_awake += server_eval.awake_fraction * kServerPorts;
    // Uplinks aggregate the rack's traffic.
    const double uplink_load =
        std::min(server_load_gbps(level) * kServerPorts / kUplinks,
                 model.max_rate_gbps());
    const auto uplink_eval = network::evaluate_link(model, policy, uplink_load);
    switch_power += static_cast<double>(kUplinks) * uplink_eval.power_w;
    epoch_delay += uplink_eval.added_delay_s;
    epoch_awake += uplink_eval.awake_fraction * kUplinks;

    tally.energy_kwh += to_kwh(switch_power * minutes(1.0));
    delay_sum += epoch_delay;  // one server hop + one uplink hop
    awake_sum += epoch_awake / static_cast<double>(kServerPorts + kUplinks);
  }
  tally.mean_added_delay_us = delay_sum / epochs * 1e6;
  tally.mean_awake = awake_sum / epochs;
  return tally;
}

}  // namespace

int main() {
  std::cout << banner(
      "Extension (sec. 4.3 / ref [23]): ToR switch sleeping and rate adaptation");
  std::cout << "  48-port ToR (40 server ports @<=0.6 Gbps diurnal, 4 uplinks), "
               "one simulated day.\n\n";

  const auto always = run(network::LinkPolicy::kAlwaysOn);
  const auto sleeping = run(network::LinkPolicy::kSleeping);
  const auto rate = run(network::LinkPolicy::kRateAdaptation);

  Table table({"policy", "switch energy (kWh/day)", "saved", "added delay/path",
               "mean port awake"});
  auto add = [&](const char* name, const Tally& t) {
    table.add_row({name, fmt(t.energy_kwh, 2),
                   fmt_percent(1.0 - t.energy_kwh / always.energy_kwh, 1),
                   fmt(t.mean_added_delay_us, 0) + " us",
                   fmt_percent(t.mean_awake, 0)});
  };
  add("always-on", always);
  add("sleeping (buffer-and-burst)", sleeping);
  add("rate adaptation", rate);
  std::cout << table.render();

  // Per-load-point detail, as the reference presents it.
  const network::SwitchPowerModel model{network::SwitchPowerConfig{}};
  Table detail({"port load", "always-on (W)", "sleep (W)", "sleep delay",
                "rate-adapt (W)", "rate-adapt delay"});
  for (double load : {0.01, 0.05, 0.1, 0.5, 1.0, 5.0}) {
    const auto s = network::evaluate_link(model, network::LinkPolicy::kSleeping, load);
    const auto r =
        network::evaluate_link(model, network::LinkPolicy::kRateAdaptation, load);
    detail.add_row({fmt(load, 2) + " Gbps", fmt(5.0, 1), fmt(s.power_w, 2),
                    fmt(s.added_delay_s * 1e6, 0) + " us", fmt(r.power_w, 2),
                    fmt(r.added_delay_s * 1e6, 1) + " us"});
  }
  std::cout << "\n" << detail.render();

  std::cout << "\n  Paper/ref [23]: network links idle most of the time, so "
               "sleeping and rate adaptation save real\n"
               "  energy for bounded latency. Measured: sleeping recovers the "
               "most port energy at the cost of\n"
               "  milliseconds of buffering; rate adaptation saves nearly as "
               "much below each rate step for only\n"
               "  microseconds of serialization - matching the reference's "
               "qualitative conclusions.\n";
  return 0;
}
