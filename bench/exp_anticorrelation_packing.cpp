// EXP-J (paper §5.2): breaking cyber-modularity with anti-correlated
// co-location.
//
//   "two processes, or VMs, from different applications are unlikely to
//    generate power spikes at the same time. This will reduce the
//    probability of power capping."
//
// Packs day-peaking and night-peaking VMs onto budgeted hosts with an
// oblivious packer vs the correlation-aware packer, then measures
// co-located power peaks and capping-event probability under a per-host
// power budget.
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/rng.h"
#include "core/table.h"
#include "oversub/power_profile.h"
#include "vm/placement.h"

using namespace epm;

namespace {

TimeSeries phase_profile(double peak_hour, Rng& rng) {
  TimeSeries profile(0.0, 3600.0);
  for (int h = 0; h < 24 * 7; ++h) {
    const double phase =
        2.0 * std::numbers::pi * (static_cast<double>(h % 24) - peak_hour) / 24.0;
    profile.push_back(
        std::max(0.15, 0.6 + 0.4 * std::cos(phase) + rng.normal(0.0, 0.03)));
  }
  return profile;
}

}  // namespace

int main() {
  std::cout << banner(
      "EXP-J (sec. 5.2): anti-correlation-aware co-location vs power capping");

  Rng rng(52);
  // 24 VMs: half peak mid-afternoon (user-facing), half peak at night
  // (batch/backup), 4 cores each at 30 W/core dynamic + 60 W VM floor.
  std::vector<vm::VmSpec> vms;
  for (std::size_t i = 0; i < 24; ++i) {
    vm::VmSpec spec;
    spec.id = i;
    spec.name = (i % 2 == 0 ? "day" : "night") + std::to_string(i);
    // Day VMs are slightly larger, so size-only FFD sorts every day VM
    // before every night VM and fills whole hosts with one phase.
    spec.cpu_cores = i % 2 == 0 ? 4.0 : 3.6;
    spec.disk_iops = 20.0;
    spec.net_mbps = 30.0;
    spec.memory_gb = 8.0;
    spec.load_profile = phase_profile(i % 2 == 0 ? 15.0 : 3.0, rng);
    vms.push_back(spec);
  }
  std::vector<vm::HostSpec> hosts(6);
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i].id = i;

  const auto oblivious = vm::first_fit_decreasing(vms, hosts);
  const auto aware = vm::correlation_aware(vms, hosts);

  // Per-host power: floor + dynamic proportional to co-located CPU profile.
  const double host_idle_w = 180.0;
  const double watts_per_core = 30.0;
  const double host_budget_w = 560.0;  // oversubscribed per-host budget

  auto evaluate = [&](const vm::Placement& placement, const char* name, Table& table) {
    double worst_peak = 0.0;
    double capped_epochs = 0.0;
    double epochs = 0.0;
    for (const auto& members : placement.by_host(hosts.size())) {
      if (members.empty()) continue;
      // Hourly co-located power over the shared week.
      for (std::size_t h = 0; h < 24 * 7; ++h) {
        double cores = 0.0;
        for (auto m : members) {
          cores += vms[m].cpu_cores * vms[m].load_profile[h];
        }
        const double power = host_idle_w + watts_per_core * cores;
        worst_peak = std::max(worst_peak, power);
        epochs += 1.0;
        if (power > host_budget_w) capped_epochs += 1.0;
      }
    }
    table.add_row({name, std::to_string(placement.hosts_used),
                   fmt(worst_peak, 0) + " W", fmt_percent(capped_epochs / epochs, 2)});
  };

  Table table({"packing", "hosts used", "worst co-located peak",
               "capping-event probability"});
  evaluate(oblivious, "oblivious (CPU-size FFD)", table);
  evaluate(aware, "correlation-aware (peak-aware worst-fit)", table);
  std::cout << table.render();

  // Show one host's profile under each packing.
  auto show_host = [&](const vm::Placement& placement, const char* name) {
    const auto groups = placement.by_host(hosts.size());
    for (const auto& members : groups) {
      if (members.empty()) continue;
      std::vector<double> series;
      for (std::size_t h = 0; h < 24; ++h) {
        double cores = 0.0;
        for (auto m : members) cores += vms[m].cpu_cores * vms[m].load_profile[h];
        series.push_back(host_idle_w + watts_per_core * cores);
      }
      std::cout << "\n  First-host daily power, " << name << ":\n"
                << ascii_chart(series, 48, 6);
      break;
    }
  };
  show_host(oblivious, "oblivious packing");
  show_host(aware, "correlation-aware packing");

  std::cout << "\n  Paper: co-locating anti-correlated workloads reduces the "
               "probability of power capping.\n"
               "  Measured: the correlation-aware packer mixes day- and "
               "night-peaking tenants per host, flattening the\n"
               "  co-located peak and cutting capping events versus the "
               "size-only packer at the same host count.\n";
  return 0;
}
