// EXP-G (paper §4.4): VM grouping under non-additive disk contention.
//
//   "how to group VMs together remains challenging since hardware resource
//    utilization across VMs are not additive. For example, due to disk
//    contention, putting two disk IO intensive applications on the same
//    host machine may cause significant throughput degradation."
//
// Places a mixed CPU-/IO-bound VM population with resource-oblivious FFD
// vs interference-aware packing; reports hosts used, worst and mean tenant
// throughput, plus the raw contention curve (tenants vs degradation).
#include <iostream>
#include <vector>

#include "core/rng.h"
#include "core/table.h"
#include "vm/interference.h"
#include "vm/migration.h"
#include "vm/placement.h"

using namespace epm;

namespace {

std::vector<vm::VmSpec> make_population(std::size_t count, Rng& rng) {
  std::vector<vm::VmSpec> vms;
  for (std::size_t i = 0; i < count; ++i) {
    vm::VmSpec spec;
    spec.id = i;
    if (i % 3 == 0) {  // one third IO-bound (database/log shipping style)
      spec.name = "io" + std::to_string(i);
      spec.cpu_cores = rng.uniform(0.5, 2.0);
      spec.disk_iops = rng.uniform(120.0, 220.0);
      spec.net_mbps = rng.uniform(20.0, 60.0);
      spec.memory_gb = rng.uniform(4.0, 12.0);
    } else {  // CPU-bound web/app tiers
      spec.name = "cpu" + std::to_string(i);
      spec.cpu_cores = rng.uniform(2.0, 6.0);
      spec.disk_iops = rng.uniform(5.0, 40.0);
      spec.net_mbps = rng.uniform(20.0, 120.0);
      spec.memory_gb = rng.uniform(2.0, 8.0);
    }
    vms.push_back(spec);
  }
  return vms;
}

struct Quality {
  std::size_t hosts_used = 0;
  std::size_t unplaced = 0;
  double worst_ratio = 1.0;
  double mean_ratio = 1.0;
  std::size_t degraded_vms = 0;
};

Quality assess(const std::vector<vm::VmSpec>& vms, const std::vector<vm::HostSpec>& hosts,
               const vm::Placement& placement) {
  Quality q;
  q.hosts_used = placement.hosts_used;
  q.unplaced = placement.unplaced;
  double ratio_sum = 0.0;
  std::size_t tenants = 0;
  for (const auto& members : placement.by_host(hosts.size())) {
    if (members.empty()) continue;
    std::vector<vm::VmSpec> group;
    for (auto m : members) group.push_back(vms[m]);
    const auto eval = vm::evaluate_host(group, hosts[0]);
    for (const auto& perf : eval.vms) {
      ratio_sum += perf.throughput_ratio;
      ++tenants;
      if (perf.throughput_ratio < 0.95) ++q.degraded_vms;
      q.worst_ratio = std::min(q.worst_ratio, perf.throughput_ratio);
    }
  }
  q.mean_ratio = tenants > 0 ? ratio_sum / static_cast<double>(tenants) : 1.0;
  return q;
}

}  // namespace

int main() {
  std::cout << banner("EXP-G (sec. 4.4): VM grouping under disk contention");

  // Raw contention curve first: k identical IO-heavy tenants on one host.
  std::cout << "  Co-located IO-intensive tenants vs achieved throughput "
               "(non-additive seek amplification):\n";
  Table curve({"IO-heavy tenants", "effective host IOPS", "per-tenant throughput"});
  for (std::size_t k = 1; k <= 5; ++k) {
    std::vector<vm::VmSpec> group;
    for (std::size_t i = 0; i < k; ++i) {
      vm::VmSpec spec;
      spec.id = i;
      spec.cpu_cores = 1.0;
      spec.disk_iops = 150.0;
      group.push_back(spec);
    }
    const auto eval = vm::evaluate_host(group, vm::HostSpec{});
    curve.add_row({std::to_string(k), fmt(eval.effective_disk_iops, 0),
                   fmt_percent(eval.worst_throughput_ratio, 0)});
  }
  std::cout << curve.render();

  // Population placement comparison.
  Rng rng(44);
  const auto vms = make_population(60, rng);
  std::vector<vm::HostSpec> hosts(30);
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i].id = i;

  const auto ffd = vm::first_fit_decreasing(vms, hosts);
  const auto aware = vm::interference_aware(vms, hosts);

  Table table({"placement", "hosts used", "unplaced", "worst tenant throughput",
               "mean tenant throughput", "degraded VMs (<95%)"});
  const auto q_ffd = assess(vms, hosts, ffd);
  const auto q_aware = assess(vms, hosts, aware);
  table.add_row({"first-fit decreasing (CPU only)", std::to_string(q_ffd.hosts_used),
                 std::to_string(q_ffd.unplaced), fmt_percent(q_ffd.worst_ratio, 0),
                 fmt_percent(q_ffd.mean_ratio, 1), std::to_string(q_ffd.degraded_vms)});
  table.add_row({"interference-aware", std::to_string(q_aware.hosts_used),
                 std::to_string(q_aware.unplaced), fmt_percent(q_aware.worst_ratio, 0),
                 fmt_percent(q_aware.mean_ratio, 1),
                 std::to_string(q_aware.degraded_vms)});
  std::cout << "\n" << table.render();

  // Cost of fixing a bad placement via live migration.
  const auto plan = vm::plan_migration(vms, ffd.assignment, aware.assignment);
  std::cout << "\n  Repairing the oblivious placement by live migration: "
            << plan.moves.size() << " moves, " << fmt(plan.total_bytes / 1e9, 1)
            << " GB moved, " << fmt(plan.total_duration_s / 60.0, 1)
            << " minutes serialized, " << fmt(plan.total_energy_j / 3.6e6, 2)
            << " kWh overhead\n";

  std::cout << "\n  Paper: resource demands are not additive across VMs; disk "
               "contention makes co-located IO-bound\n"
               "  applications degrade badly. Measured: per-tenant throughput "
               "collapses as IO-heavy tenants stack up;\n"
               "  interference-aware packing trades a few extra hosts for "
               "eliminating degraded tenants.\n";
  return 0;
}
