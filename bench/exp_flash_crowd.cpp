// EXP-I (paper §3, ref [5]): the Animoto flash crowd.
//
//   "When Animoto made its service available via Facebook, it experienced a
//    demand surge that resulted in growing from 50 servers to 3500 servers
//    in three days... After the peak subsided, traffic fell to a level that
//    was well below the peak."
//
// Replays the surge against four provisioning policies and reports
// server-hours, energy, SLA violations, and peak fleet size.
#include <iostream>
#include <vector>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "core/units.h"
#include "macro/joint_policy.h"
#include "onoff/provisioners.h"
#include "workload/surge.h"

using namespace epm;

namespace {

constexpr double kEpoch = 300.0;  // 5-minute control epochs over 10 days
constexpr std::size_t kFleet = 4000;
constexpr double kRpsPerServerEquivalent = 65.0;  // sized at 65% utilization

cluster::ServiceClusterConfig make_config(std::size_t initially_active) {
  cluster::ServiceClusterConfig config;
  config.server_count = kFleet;
  config.initially_active = initially_active;
  config.sla.target_mean_response_s = 0.1;
  return config;
}

struct Outcome {
  double server_hours = 0.0;
  double energy_mwh = 0.0;
  std::size_t sla_violations = 0;
  double dropped_fraction = 0.0;
  std::size_t peak_fleet = 0;
};

Outcome run(const TimeSeries& rate, onoff::Provisioner* provisioner, bool coordinated,
            std::size_t initially_active) {
  cluster::ServiceCluster cluster(make_config(initially_active));
  Outcome out;
  double offered_total = 0.0;
  for (std::size_t i = 0; i < rate.size(); ++i) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = rate[i];
    load.service_demand_s = 0.01;
    const auto r = cluster.run_epoch(kEpoch, load);
    offered_total += rate[i] * kEpoch;
    out.server_hours +=
        static_cast<double>(r.serving + r.booting) * kEpoch / kSecondsPerHour;
    out.peak_fleet = std::max(out.peak_fleet, cluster.committed_count());
    if (coordinated) {
      const auto d = macro::decide_joint(cluster.power_model(), kFleet,
                                         cluster.committed_count(),
                                         r.arrival_rate_per_s, r.service_demand_s,
                                         cluster.config().sla.target_mean_response_s);
      cluster.set_uniform_pstate(d.pstate);
      cluster.set_target_committed(d.servers, false);
    } else if (provisioner != nullptr) {
      cluster.set_target_committed(provisioner->decide(cluster, r), false);
    }
  }
  out.energy_mwh = to_mwh(cluster.total_energy_j());
  out.sla_violations = cluster.sla_violation_epochs();
  out.dropped_fraction =
      offered_total > 0.0 ? cluster.total_dropped_requests() / offered_total : 0.0;
  return out;
}

}  // namespace

int main() {
  std::cout << banner("EXP-I (sec. 3 / ref [5]): Animoto surge, 50 -> 3500 in 3 days");

  workload::SurgeConfig surge_config;  // paper's numbers by default
  const workload::SurgeModel surge(surge_config);
  // Demand in "server equivalents" -> request rate.
  const auto demand = sample_surge(surge, days(10.0), kEpoch);
  const auto rate = demand.scaled(kRpsPerServerEquivalent);

  std::cout << "  Demand (server-equivalents) over 10 days:\n"
            << ascii_chart(demand.values(), 60, 8) << "\n";

  const auto statically = run(rate, nullptr, false, kFleet);

  onoff::UtilizationBandConfig reactive_config;
  onoff::UtilizationBandProvisioner reactive(reactive_config);
  const auto reactive_out = run(rate, &reactive, false, 80);

  onoff::PredictiveConfig predictive_config;
  predictive_config.predictor.period_s = kSecondsPerDay;
  onoff::PredictiveProvisioner predictive(predictive_config);
  const auto predictive_out = run(rate, &predictive, false, 80);

  const auto coordinated_out = run(rate, nullptr, true, 80);

  Table table({"policy", "peak fleet", "server-hours", "energy (MWh)",
               "SLA-violating epochs", "dropped requests"});
  auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name, std::to_string(o.peak_fleet), fmt(o.server_hours, 0),
                   fmt(o.energy_mwh, 1), std::to_string(o.sla_violations),
                   fmt_percent(o.dropped_fraction, 2)});
  };
  add("static peak provisioning (3500+)", statically);
  add("reactive autoscale (utilization band)", reactive_out);
  add("predictive autoscale (daily seasonal)", predictive_out);
  add("coordinated joint (On/Off x DVFS)", coordinated_out);
  std::cout << table.render();

  std::cout << "\n  Paper: elasticity means scaling out through a 70x surge and "
               "reclaiming resources afterwards.\n"
               "  Measured: reactive and coordinated autoscalers ride the surge "
               "with ~1/3 of the static fleet's\n"
               "  server-hours and energy and no SLA debt at 5-minute epochs. "
               "The daily-seasonal predictor is the wrong\n"
               "  prior for a one-off surge: it lags the ramp (SLA debt, drops) "
               "and over-holds capacity afterwards —\n"
               "  prediction helps recurring patterns, not novel events.\n";
  return 0;
}
