// Extension experiment (paper §2.1): UPS surge withstand and ride-through.
//
//   "The power capacity of a data center is primarily defined by the
//    capability of the UPS system, both in terms of steady load handling
//    and surge withstand."
//
// A utility outage hits the facility: the UPS battery must carry the
// critical load until the standby generator picks up (start time is
// stochastic and occasionally fails entirely). Compares the do-nothing
// response against macro-coordinated emergency shedding (P-state drop +
// capping to idle) that stretches the battery, over Monte Carlo outages.
//
// The closing section promotes the question to fleet scale: when a whole
// datacenter of the reference 4-DC world goes dark, its peers are the
// "generator" — the sharded federation (sim::ShardedSimulator) re-routes
// the dark datacenter's request stream over the physical inter-DC latency
// floors, and the A/B against reroute-off shows how much of the outage the
// fleet rides through at request level.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/units.h"
#include "faults/fleet_storm.h"
#include "power/capping.h"
#include "power/server_power.h"
#include "power/ups.h"

using namespace epm;

namespace {

struct GeneratorModel {
  double mean_start_s = 240.0;   ///< crank, sync, and transfer-switch time
  double start_sd_s = 120.0;
  double start_failure_p = 0.03; ///< fails to start; repair takes much longer
  double repair_s = 900.0;

  double sample_pickup_s(Rng& rng) const {
    if (rng.bernoulli(start_failure_p)) {
      return repair_s + std::max(0.0, rng.normal(mean_start_s, start_sd_s));
    }
    return std::max(5.0, rng.normal(mean_start_s, start_sd_s));
  }
};

struct Outcome {
  double survival_rate = 0.0;
  double mean_margin_s = 0.0;  ///< battery seconds left when the gen picked up
  double capped_capacity_fraction = 0.0;
};

Outcome run(double load_fraction, bool coordinated, std::size_t trials) {
  const power::ServerPowerModel model{power::ServerPowerConfig{}};
  const std::size_t servers = 3000;
  const double utilization = 0.7;
  const GeneratorModel generator;

  Rng rng(7 + static_cast<std::uint64_t>(load_fraction * 100.0) +
          (coordinated ? 1000 : 0));
  std::size_t survived = 0;
  OnlineStats margin;
  double capped_capacity = 1.0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    power::UpsBatteryConfig battery_config;
    battery_config.energy_capacity_j = 2.88e8;  // 80 kWh: ~6 min at full fleet
    power::UpsBattery battery(battery_config);

    // Normal draw of the active fleet fraction.
    const auto active = static_cast<double>(servers) * load_fraction;
    double draw_w = active * model.active_power_w(0, utilization);

    if (coordinated) {
      // Emergency posture: slowest P-state + duty throttle toward idle,
      // immediately on loss of utility. Capacity drops accordingly; the
      // load balancer sheds the excess upstream.
      const auto setting = power::throttle_for_cap(
          model, utilization, model.idle_power_w() * 1.08);
      draw_w = active * model.active_power_w(setting.pstate, utilization, setting.duty);
      capped_capacity = setting.relative_capacity;
    }

    const double pickup_s = generator.sample_pickup_s(rng);
    const double ride_s = battery.ride_through_s(draw_w);
    if (ride_s >= pickup_s) {
      ++survived;
      margin.add(ride_s - pickup_s);
    }
  }

  Outcome out;
  out.survival_rate = static_cast<double>(survived) / static_cast<double>(trials);
  out.mean_margin_s = margin.count() ? margin.mean() : 0.0;
  out.capped_capacity_fraction = capped_capacity;
  return out;
}

}  // namespace

int main() {
  std::cout << banner(
      "Extension (sec. 2.1): utility outage ride-through, 3000-server hall");
  std::cout << "  80 kWh UPS (~6 min at full fleet); generator picks up in "
               "240 +- 120 s and fails to start 3% of\n  the time (15 min "
               "repair). 10,000 Monte Carlo outages per row.\n\n";

  Table table({"fleet on", "survival (do nothing)", "survival (emergency shed)",
               "margin w/ shed", "capacity while shed"});
  for (double load : {0.4, 0.6, 0.8, 1.0}) {
    const auto plain = run(load, false, 10000);
    const auto shed = run(load, true, 10000);
    table.add_row({fmt_percent(load, 0), fmt_percent(plain.survival_rate, 1),
                   fmt_percent(shed.survival_rate, 1),
                   fmt(shed.mean_margin_s / 60.0, 1) + " min",
                   fmt_percent(shed.capped_capacity_fraction, 0)});
  }
  std::cout << table.render();

  // Ride-through curve: battery minutes vs fleet fraction, both postures.
  const power::ServerPowerModel model{power::ServerPowerConfig{}};
  Table curve({"fleet on", "draw (kW)", "ride-through", "draw shed (kW)",
               "ride-through shed"});
  for (double load : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    power::UpsBatteryConfig battery_config;
    battery_config.energy_capacity_j = 2.88e8;
    power::UpsBattery battery(battery_config);
    const double active = 3000.0 * load;
    const double draw = active * model.active_power_w(0, 0.7);
    const auto setting =
        power::throttle_for_cap(model, 0.7, model.idle_power_w() * 1.08);
    const double shed_draw =
        active * model.active_power_w(setting.pstate, 0.7, setting.duty);
    curve.add_row({fmt_percent(load, 0), fmt(to_kilowatts(draw), 0),
                   fmt(battery.ride_through_s(draw) / 60.0, 1) + " min",
                   fmt(to_kilowatts(shed_draw), 0),
                   fmt(battery.ride_through_s(shed_draw) / 60.0, 1) + " min"});
  }
  std::cout << "\n" << curve.render();

  std::cout << "\n  Paper: the UPS defines the facility's capacity in steady "
               "load and surge withstand; macro coordination\n"
               "  must 'protect the safety of the facility'. Measured: at full "
               "fleet the battery barely outlasts a slow\n"
               "  generator start, and do-nothing survival drops with load; "
               "emergency shedding stretches ride-through\n"
               "  ~1.5x (power falls to the idle floor + 8%), turning "
               "generator-start failures from outages into brownouts.\n";

  // -- fleet scale: riding through a dark datacenter on the federation -----
  std::cout << "\n"
            << banner(
                   "Fleet scale: riding through a dark datacenter on the "
                   "sharded federation");
  faults::FleetStormConfig storm =
      faults::make_reference_fleet_storm_config(/*dcs=*/4,
                                                /*clients_per_dc=*/50'000,
                                                /*seed=*/7);
  const network::InterDcNetwork net = faults::make_fleet_network(storm);

  auto run_fleet = [&](double reroute_fraction) {
    faults::FleetStormConfig arm = storm;
    arm.reroute_fraction = reroute_fraction;
    sim::ShardedSimulator fed(
        faults::make_fleet_sharded_config(net, /*shards=*/4, /*threads=*/0));
    sim::ShardedFabric fabric(fed);
    return faults::run_fleet_storm(arm, fabric);
  };
  const auto alone = run_fleet(0.0);
  const auto rerouted = run_fleet(1.0);

  // Conformance: the rerouted arm must match the single-kernel run exactly.
  sim::SingleKernelFabric single_fabric(storm.sites.size());
  const auto truth = faults::run_fleet_storm(storm, single_fabric);
  const bool match = faults::fleet_storm_outcomes_equal(rerouted, truth);

  const auto& dark_alone = alone.dcs[storm.outage_dc];
  const auto& dark_rerouted = rerouted.dcs[storm.outage_dc];
  Table fleet({"arm", "fleet goodput", "dark failures", "forwarded",
               "remote served", "outage DC recovery"});
  auto add_fleet_arm = [&](const char* name,
                           const faults::FleetStormOutcome& out,
                           const faults::FleetDcOutcome& dark) {
    fleet.add_row({name, fmt_percent(out.fleet_goodput_fraction, 1),
                   std::to_string(dark.dark_failures),
                   std::to_string(out.forwarded),
                   std::to_string(out.remote_served),
                   dark.recovered ? fmt(dark.recovery_s, 0) + " s" : "never"});
  };
  add_fleet_arm("alone (reroute off)", alone, dark_alone);
  add_fleet_arm("peers ride through", rerouted, dark_rerouted);
  std::cout << fleet.render();

  std::cout << "  200k clients, 20 s outage at '"
            << storm.sites[storm.outage_dc].name
            << "': re-routing converts dark failures into "
            << rerouted.remote_served << " remote completions over "
            << fmt(net.min_latency_floor_s() * 1e3, 1)
            << "+ ms floors;\n  ledgers "
            << (alone.conservation_ok && rerouted.conservation_ok
                    ? "clean"
                    : "VIOLATED")
            << "; federated outcome "
            << (match ? "bit-identical to the single-kernel run"
                      : "DIVERGED FROM THE SINGLE-KERNEL RUN")
            << ".\n";
  return match && alone.conservation_ok && rerouted.conservation_ok ? 0 : 1;
}
