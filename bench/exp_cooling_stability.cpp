// Ablation (paper §2.2): why CRACs "react every 15 minutes".
//
//   "Air cooling systems have slow dynamics. To avoid over reaction and
//    oscillation, CRAC units usually react every 15 minutes."
//
// Sweeps the CRAC control period and gain against the same fluctuating IT
// load and measures supply-temperature churn, zone-temperature excursions,
// and thermal alarms. Reproduces the engineering trade-off behind the
// 15-minute convention: fast high-gain control fights the air-side
// propagation delay and oscillates; slow low-gain control is stable but
// lets load steps overshoot for longer.
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "core/units.h"
#include "thermal/room.h"

using namespace epm;

namespace {

struct Stability {
  double supply_moves_c = 0.0;     ///< total supply-temperature travel
  double zone_stddev_c = 0.0;      ///< steady-window zone variability
  double worst_zone_c = 0.0;
  std::size_t alarms = 0;
};

Stability run(double control_period_s, double gain) {
  thermal::MachineRoomConfig config;
  thermal::ZoneConfig zone;
  zone.supply_lag_s = 300.0;  // the propagation delay that punishes haste
  config.zones = {zone};
  thermal::CracConfig crac;
  crac.control_period_s = control_period_s;
  crac.gain = gain;
  crac.zone_sensitivity = {1.0};
  config.cracs = {crac};
  config.airflow_share = {{1.0}};
  config.integration_step_s = 15.0;
  thermal::MachineRoom room(config);

  Stability result;
  OnlineStats zone_temp;
  double last_supply = room.crac(0).supply_temp_c();
  const double horizon = hours(12.0);
  for (double t = minutes(5.0); t <= horizon; t += minutes(5.0)) {
    // Load alternates between 12 kW and 26 kW every 2 hours (consolidation
    // waves), with a mild continuous wobble.
    const bool high = std::fmod(t, hours(4.0)) >= hours(2.0);
    const double wobble =
        2.0e3 * std::sin(2.0 * std::numbers::pi * t / hours(1.0));
    room.run_until(t, {(high ? 26.0e3 : 12.0e3) + wobble});
    result.supply_moves_c += std::fabs(room.crac(0).supply_temp_c() - last_supply);
    last_supply = room.crac(0).supply_temp_c();
    if (t > hours(2.0)) {
      zone_temp.add(room.zone(0).temperature_c());
      result.worst_zone_c = std::max(result.worst_zone_c, room.zone(0).temperature_c());
    }
  }
  result.zone_stddev_c = zone_temp.stddev();
  result.alarms = room.alarms().size();
  return result;
}

}  // namespace

int main() {
  std::cout << banner(
      "Ablation (sec. 2.2): CRAC control period and gain vs stability");
  std::cout << "  One zone with a 5-minute air-propagation lag; load steps "
               "12<->26 kW every 2 h for 12 h.\n\n";

  Table table({"control period", "gain", "supply travel (C)", "zone stddev (C)",
               "worst zone (C)", "alarms"});
  for (double period : {60.0, 300.0, 900.0, 1800.0}) {
    for (double gain : {0.4, 0.8, 2.0}) {
      const auto s = run(period, gain);
      table.add_row({fmt(period / 60.0, 0) + " min", fmt(gain, 1),
                     fmt(s.supply_moves_c, 1), fmt(s.zone_stddev_c, 2),
                     fmt(s.worst_zone_c, 1), std::to_string(s.alarms)});
    }
  }
  std::cout << table.render();

  std::cout << "\n  Paper: CRACs react every 15 minutes to avoid over-reaction "
               "and oscillation against slow air dynamics.\n"
               "  Measured: 1-minute control with high gain churns the supply "
               "setpoint hardest (it keeps correcting\n"
               "  before its last action has propagated); the 15-minute period "
               "at moderate gain gets nearly the same\n"
               "  zone stability with a fraction of the actuator travel, and "
               "30-minute control trades stability for\n"
               "  slower step recovery.\n";
  return 0;
}
