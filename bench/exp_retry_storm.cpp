// Extension experiment (EXP-U): retry storms and metastable overload.
//
// The paper's elastic-service scenarios (§3: Messenger login spikes, the
// Animoto flash crowd, utility-outage ride-through) involve clients that
// come back: dropped load is re-offered as reconnect/retry floods. This
// experiment closes the loop — a ClientPopulation with per-request
// timeouts, configurable retry backoff, and outage-driven session drops —
// and sweeps outage duration x retry policy x {naive, defended}:
//
//   naive    — a huge accept queue and nothing else: the post-outage
//              reconnect surge grows a backlog whose sojourn exceeds the
//              client timeout, every completion is stale, goodput pins at
//              zero, and retries keep offered load above capacity long
//              after the fault cleared (metastable failure);
//   defended — bounded accept queue + token-bucket admission + circuit
//              breaker, with the macro degradation policy shedding the
//              batch tier while the admission stack reports congestion.
//
// The gate requires the defended arm to recover to pre-fault SLA within a
// bounded time at EVERY swept point, the naive arm to exhibit at least one
// metastable point, and the retry-budget conservation ledger plus the
// request-flow invariants to hold on every run.
//
// Emits one BENCH_retrystorm.json record per swept point (set
// EPM_BENCH_REPORT to redirect).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.h"
#include "faults/retry_storm.h"
#include "sweep_runner.h"

using namespace epm;

namespace {

struct Point {
  double outage_s = 0.0;
  workload::RetryBackoff backoff = workload::RetryBackoff::kExponential;
  bool defended = false;
};

constexpr double kRecoveryLimitS = 300.0;

std::string retrystorm_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_retrystorm.json";
}

void append_retrystorm_record(const Point& point,
                              const faults::RetryStormOutcome& out) {
  const std::string path = retrystorm_report_path();
  if (path == "-") return;
  std::ofstream file(path, std::ios::app);
  if (!file) return;
  file << "{\"name\":\"retry_storm\",\"outage_s\":" << point.outage_s
       << ",\"policy\":\"" << workload::to_string(point.backoff) << "\""
       << ",\"defended\":" << (point.defended ? "true" : "false")
       << ",\"intents\":" << out.intents << ",\"attempts\":" << out.attempts
       << ",\"retries\":" << out.retries
       << ",\"served_fresh\":" << out.served_fresh
       << ",\"served_stale\":" << out.served_stale
       << ",\"timed_out\":" << out.timed_out
       << ",\"abandoned\":" << out.abandoned
       << ",\"dark_failures\":" << out.dark_failures
       << ",\"shed_breaker\":" << out.shed_breaker
       << ",\"shed_bucket\":" << out.shed_bucket
       << ",\"shed_queue\":" << out.shed_queue
       << ",\"prefault_goodput_rps\":" << out.prefault_goodput_rps
       << ",\"end_offered_rps\":" << out.end_offered_rps
       << ",\"end_goodput_rps\":" << out.end_goodput_rps
       << ",\"recovered\":" << (out.recovered ? "true" : "false")
       << ",\"recovery_s\":" << out.recovery_s
       << ",\"metastable\":" << (out.metastable ? "true" : "false")
       << ",\"breaker_trips\":" << out.breaker_trips
       << ",\"max_queue_depth\":" << out.max_queue_depth
       << ",\"conservation_ok\":" << (out.conservation_ok ? "true" : "false")
       << ",\"invariants_ok\":" << (out.invariants_ok ? "true" : "false")
       << "}\n";
}

}  // namespace

int main() {
  std::cout << banner("EXP-U: retry storms and metastable overload");

  const std::vector<double> outages = {60.0, 120.0, 240.0};
  const std::vector<workload::RetryBackoff> policies = {
      workload::RetryBackoff::kImmediate, workload::RetryBackoff::kFixed,
      workload::RetryBackoff::kExponential};
  std::vector<Point> grid;
  for (const double outage_s : outages) {
    for (const auto backoff : policies) {
      grid.push_back({outage_s, backoff, false});
      grid.push_back({outage_s, backoff, true});
    }
  }

  const auto results = bench::run_sweep(
      grid,
      [&](const Point& point) {
        return faults::run_retry_storm(faults::make_reference_retry_storm_config(
            point.backoff, point.outage_s, point.defended));
      },
      "retry_storm_sweep");

  Table table({"outage", "policy", "arm", "prefault", "end offered",
               "end goodput", "recovery", "metastable", "trips", "shed",
               "stale"});
  bool defended_all_recover = true;
  bool any_naive_metastable = false;
  bool ledgers_clean = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& point = grid[i];
    const auto& out = results[i];
    append_retrystorm_record(point, out);
    const std::uint64_t shed =
        out.shed_breaker + out.shed_bucket + out.shed_queue;
    table.add_row(
        {fmt(point.outage_s, 0) + " s", workload::to_string(point.backoff),
         point.defended ? "defended" : "naive",
         fmt(out.prefault_goodput_rps, 0) + "/s",
         fmt(out.end_offered_rps, 0) + "/s",
         fmt(out.end_goodput_rps, 0) + "/s",
         out.recovered ? fmt(out.recovery_s, 0) + " s" : "never",
         out.metastable ? "YES" : "no", std::to_string(out.breaker_trips),
         std::to_string(shed), std::to_string(out.served_stale)});
    if (point.defended &&
        (!out.recovered || out.recovery_s > kRecoveryLimitS)) {
      defended_all_recover = false;
    }
    if (!point.defended && out.metastable) any_naive_metastable = true;
    if (!out.conservation_ok) {
      ledgers_clean = false;
      std::cout << "  RETRY-BUDGET CONSERVATION VIOLATION (outage "
                << point.outage_s << " s, " << workload::to_string(point.backoff)
                << ", " << (point.defended ? "defended" : "naive")
                << "): " << out.conservation_report << "\n";
    }
    if (!out.invariants_ok) {
      ledgers_clean = false;
      std::cout << "  INVARIANT VIOLATIONS (outage " << point.outage_s << " s, "
                << workload::to_string(point.backoff) << ", "
                << (point.defended ? "defended" : "naive") << "):\n"
                << out.invariant_report << "\n";
    }
  }
  std::cout << table.render();

  std::cout << "\n  Defended arm recovers to pre-fault SLA within "
            << fmt(kRecoveryLimitS, 0) << " s at every point: "
            << (defended_all_recover ? "yes" : "NO") << "\n";
  std::cout << "  Naive arm exhibits at least one metastable point: "
            << (any_naive_metastable ? "yes" : "NO") << "\n";
  std::cout << "  Retry-budget conservation + request-flow invariants clean: "
            << (ledgers_clean ? "yes" : "NO") << "\n";
  std::cout
      << "  Paper: elastic services face reconnect floods after outages "
         "(§3) — load that fights back.\n  Measured: an undefended queue "
         "turns a cleared fault into sustained congestion (stale work,\n  "
         "zero goodput); bounded queues + token-bucket admission + a circuit "
         "breaker + batch-tier\n  shedding drain the same surge back to SLA "
         "in bounded time.\n";
  return (defended_all_recover && any_naive_metastable && ledgers_clean) ? 0
                                                                         : 1;
}
