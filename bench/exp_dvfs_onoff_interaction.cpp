// EXP-A (paper §5.1, ref [29] Heo et al.): the DVFS x On/Off oblivious
// composition hazard.
//
//   "When the system is underloaded, the DVFS policy reduces the frequency
//    of a processor, increasing system utilization. This will eventually
//    increase the end-to-end delay of the system. Increased delay may cause
//    the (DVS oblivious) On/Off policy to consider the system to be
//    overloaded, hence turning more machines on... The energy expended on
//    keeping a larger number of machines on may not necessarily be offset
//    by DVS savings."
//
// Regenerates the episode as a time series (fleet size, P-state, response
// time, power) for the oblivious composition, each policy alone, and the
// coordinated joint optimizer.
#include <iostream>
#include <vector>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "dvfs/governors.h"
#include "macro/joint_policy.h"
#include "onoff/provisioners.h"

using namespace epm;

namespace {

constexpr double kLambda = 3000.0;
constexpr double kDemand = 0.01;
constexpr double kSla = 0.028;
constexpr int kEpochs = 180;

cluster::ServiceClusterConfig make_config() {
  cluster::ServiceClusterConfig config;
  config.server_count = 200;
  config.initially_active = 55;
  config.sla.target_mean_response_s = kSla;
  return config;
}

workload::OfferedLoad steady() {
  workload::OfferedLoad load;
  load.arrival_rate_per_s = kLambda;
  load.service_demand_s = kDemand;
  return load;
}

struct Outcome {
  double energy_kwh = 0.0;
  std::size_t final_servers = 0;
  std::size_t final_pstate = 0;
  std::size_t fleet_changes = 0;
  std::size_t sla_violations = 0;
  std::vector<double> servers_series;
};

enum class Mode { kObliviousBoth, kDvfsOnly, kOnOffOnly, kCoordinated };

Outcome run(Mode mode) {
  cluster::ServiceCluster cluster(make_config());
  dvfs::OndemandConfig dvfs_config;
  dvfs_config.downscale_utilization = 0.60;
  dvfs_config.upscale_utilization = 0.90;
  dvfs::OndemandGovernor governor(0, dvfs_config);
  onoff::DelayThresholdConfig onoff_config;
  onoff_config.up_factor = 1.0;
  onoff_config.down_factor = 0.4;
  onoff_config.add_step = 8;
  onoff::DelayThresholdProvisioner provisioner(onoff_config);

  Outcome out;
  std::size_t pstate = 0;
  for (int i = 0; i < kEpochs; ++i) {
    const auto r = cluster.run_epoch(60.0, steady());
    const std::size_t before = cluster.committed_count();
    switch (mode) {
      case Mode::kObliviousBoth:
        pstate = governor.decide(cluster, r);
        cluster.set_uniform_pstate(pstate);
        cluster.set_target_committed(provisioner.decide(cluster, r), true);
        break;
      case Mode::kDvfsOnly:
        pstate = governor.decide(cluster, r);
        cluster.set_uniform_pstate(pstate);
        break;
      case Mode::kOnOffOnly:
        cluster.set_target_committed(provisioner.decide(cluster, r), true);
        break;
      case Mode::kCoordinated: {
        const auto d = macro::decide_joint(cluster.power_model(),
                                           cluster.server_count(),
                                           cluster.committed_count(),
                                           r.arrival_rate_per_s,
                                           r.service_demand_s, kSla);
        pstate = d.pstate;
        cluster.set_uniform_pstate(d.pstate);
        cluster.set_target_committed(d.servers, true);
        break;
      }
    }
    if (cluster.committed_count() != before) ++out.fleet_changes;
    out.servers_series.push_back(static_cast<double>(cluster.committed_count()));
  }
  out.energy_kwh = cluster.total_energy_j() / 3.6e6;
  out.final_servers = cluster.committed_count();
  out.final_pstate = pstate;
  out.sla_violations = cluster.sla_violation_epochs();
  return out;
}

}  // namespace

int main() {
  std::cout << banner(
      "EXP-A (sec. 5.1 / ref [29]): DVFS x On/Off composition, 3 h steady plateau");

  const auto oblivious = run(Mode::kObliviousBoth);
  const auto dvfs_only = run(Mode::kDvfsOnly);
  const auto onoff_only = run(Mode::kOnOffOnly);
  const auto coordinated = run(Mode::kCoordinated);

  Table table({"policy stack", "final servers", "final P-state", "fleet changes",
               "SLA-violating epochs", "energy (kWh)"});
  auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name, std::to_string(o.final_servers),
                   "P" + std::to_string(o.final_pstate),
                   std::to_string(o.fleet_changes), std::to_string(o.sla_violations),
                   fmt(o.energy_kwh, 1)});
  };
  add("ondemand DVFS + delay On/Off (oblivious)", oblivious);
  add("ondemand DVFS alone (fixed fleet)", dvfs_only);
  add("delay On/Off alone (P0)", onoff_only);
  add("coordinated joint (servers x P-state)", coordinated);
  std::cout << table.render();

  std::cout << "\n  Committed servers over time, oblivious composition:\n"
            << ascii_chart(oblivious.servers_series, 60, 6);
  std::cout << "\n  Committed servers over time, coordinated policy:\n"
            << ascii_chart(coordinated.servers_series, 60, 6);

  std::cout << "\n  Paper: the oblivious cycle 'may lead to poor energy "
               "performance, even despite the fact that both\n"
               "  the DVS and On/Off policies have the same energy saving goal.'\n"
               "  Measured: the oblivious stack ratchets the fleet up at the "
               "slowest P-state and burns "
            << fmt(oblivious.energy_kwh / coordinated.energy_kwh, 1)
            << "x the energy of\n  the coordinated joint policy; each policy "
               "alone also beats the oblivious composition.\n";
  return 0;
}
