// EXP-H (paper §2.1, ref [6] Uptime Institute): tier availability.
//
//   "A tier-2 data center, providing 99.741% availability, is typical for
//    hosting Internet services."
//
// Builds the four tier topologies as reliability block diagrams, evaluates
// them analytically, cross-checks with event-driven Monte Carlo, and
// compares against the Uptime Institute reference numbers.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"
#include "core/table.h"
#include "reliability/availability.h"
#include "reliability/monte_carlo.h"

using namespace epm;

int main() {
  std::cout << banner("EXP-H (sec. 2.1 / ref [6]): tier I-IV availability");

  Table table({"tier", "reference", "analytic", "Monte Carlo", "downtime h/yr",
               "mean outage (h)", "outages/50yr"});
  reliability::MonteCarloConfig mc_config;
  mc_config.years = 50.0;
  mc_config.replicas = 8;

  for (int tier = 1; tier <= 4; ++tier) {
    const auto topology = reliability::make_tier_topology(tier);
    const double analytic = topology.availability(/*include_maintenance=*/true);
    const auto mc = reliability::simulate_availability(topology, mc_config);
    table.add_row(
        {"Tier " + std::to_string(tier),
         fmt_percent(reliability::uptime_institute_reference(tier), 3),
         fmt_percent(analytic, 3), fmt_percent(mc.availability, 3),
         fmt(reliability::downtime_hours_per_year(analytic), 1),
         fmt(mc.mean_outage_h, 1),
         fmt(static_cast<double>(mc.outage_count) /
                 static_cast<double>(mc_config.replicas),
             1)});
  }
  std::cout << table.render();

  // What the redundancy buys, decomposed.
  std::cout << "\n  Decomposition (failures vs planned maintenance):\n";
  Table decomp({"tier", "availability (failures only)", "with maintenance"});
  for (int tier = 1; tier <= 4; ++tier) {
    const auto topology = reliability::make_tier_topology(tier);
    decomp.add_row({"Tier " + std::to_string(tier),
                    fmt_percent(topology.availability(false), 3),
                    fmt_percent(topology.availability(true), 3)});
  }
  std::cout << decomp.render();

  // Replica-level scaling: 64 tier-2 replicas across the thread ladder.
  // Same seed at every width — the availabilities must agree to the last
  // bit; only the wall clock moves.
  {
    const auto topology = reliability::make_tier_topology(2);
    reliability::MonteCarloConfig scaling;
    scaling.years = 25.0;
    scaling.replicas = 64;
    std::cout << "\n  Monte Carlo replica scaling (64 replicas x 25 yr, tier 2):\n";
    double reference = 0.0;
    double serial_s = 0.0;
    std::vector<std::size_t> ladder{1, 2, 4, 8};
    if (std::find(ladder.begin(), ladder.end(), default_thread_count()) ==
        ladder.end()) {
      ladder.push_back(default_thread_count());
    }
    for (const std::size_t threads : ladder) {
      scaling.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const auto mc = reliability::simulate_availability(topology, scaling);
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      if (threads == 1) {
        reference = mc.availability;
        serial_s = wall.count();
      }
      std::cout << "    " << threads << " thread" << (threads == 1 ? ": " : "s:")
                << " " << fmt(wall.count() * 1e3, 0) << " ms ("
                << fmt(serial_s / std::max(wall.count(), 1e-12), 2)
                << "x), availability " << fmt_percent(mc.availability, 4)
                << (mc.availability == reference ? "" : "  <- MISMATCH") << "\n";
      bench::append_bench_record({"availability_replicas", threads, wall.count(),
                                  static_cast<double>(scaling.replicas)});
    }
  }

  std::cout << "\n  Paper: tier-2 sites deliver 99.741% availability — the "
               "facility class the paper's elastic power\n"
               "  management targets. Measured: the block model reproduces the "
               "Uptime Institute ladder (99.67 / 99.74 /\n"
               "  99.98 / 99.995%); tiers I-II are dominated by planned "
               "maintenance on the single path, tiers III-IV by\n"
               "  residual common causes — redundancy alone explains little "
               "without concurrent maintainability.\n";
  return 0;
}
