// EXP-H (paper §2.1, ref [6] Uptime Institute): tier availability.
//
//   "A tier-2 data center, providing 99.741% availability, is typical for
//    hosting Internet services."
//
// Builds the four tier topologies as reliability block diagrams, evaluates
// them analytically, cross-checks with event-driven Monte Carlo, and
// compares against the Uptime Institute reference numbers.
#include <iostream>

#include "core/table.h"
#include "reliability/availability.h"
#include "reliability/monte_carlo.h"

using namespace epm;

int main() {
  std::cout << banner("EXP-H (sec. 2.1 / ref [6]): tier I-IV availability");

  Table table({"tier", "reference", "analytic", "Monte Carlo", "downtime h/yr",
               "mean outage (h)", "outages/50yr"});
  reliability::MonteCarloConfig mc_config;
  mc_config.years = 50.0;
  mc_config.replicas = 8;

  for (int tier = 1; tier <= 4; ++tier) {
    const auto topology = reliability::make_tier_topology(tier);
    const double analytic = topology.availability(/*include_maintenance=*/true);
    const auto mc = reliability::simulate_availability(topology, mc_config);
    table.add_row(
        {"Tier " + std::to_string(tier),
         fmt_percent(reliability::uptime_institute_reference(tier), 3),
         fmt_percent(analytic, 3), fmt_percent(mc.availability, 3),
         fmt(reliability::downtime_hours_per_year(analytic), 1),
         fmt(mc.mean_outage_h, 1),
         fmt(static_cast<double>(mc.outage_count) /
                 static_cast<double>(mc_config.replicas),
             1)});
  }
  std::cout << table.render();

  // What the redundancy buys, decomposed.
  std::cout << "\n  Decomposition (failures vs planned maintenance):\n";
  Table decomp({"tier", "availability (failures only)", "with maintenance"});
  for (int tier = 1; tier <= 4; ++tier) {
    const auto topology = reliability::make_tier_topology(tier);
    decomp.add_row({"Tier " + std::to_string(tier),
                    fmt_percent(topology.availability(false), 3),
                    fmt_percent(topology.availability(true), 3)});
  }
  std::cout << decomp.render();

  std::cout << "\n  Paper: tier-2 sites deliver 99.741% availability — the "
               "facility class the paper's elastic power\n"
               "  management targets. Measured: the block model reproduces the "
               "Uptime Institute ladder (99.67 / 99.74 /\n"
               "  99.98 / 99.995%); tiers I-II are dominated by planned "
               "maintenance on the single path, tiers III-IV by\n"
               "  residual common causes — redundancy alone explains little "
               "without concurrent maintainability.\n";
  return 0;
}
