// Figure 1 reproduction: "An illustration of power distribution tiers in a
// data center" — regenerated quantitatively as the power flow through
// grid -> transformer -> UPS -> PDUs -> racks (plus the mechanical feed for
// chillers/CRACs/humidifiers), swept over IT load, with per-stage losses and
// the resulting PUE. The paper's §2.2 claim "most data centers have PUE
// close to 2" should hold at conservative cooling settings.
#include <cstddef>
#include <iostream>

#include "core/table.h"
#include "core/units.h"
#include "power/distribution.h"
#include "power/psu.h"
#include "thermal/cooling_plant.h"

using namespace epm;

int main() {
  std::cout << banner(
      "Figure 1: power distribution tiers of a 1 MW tier-2 data center");

  power::Tier2TopologyConfig topo_config;  // 1 MW critical capacity
  // Conservative legacy cooling, per the paper's description of typical
  // 2009-era operation: no economizer, over-cold 14 C supply air, an
  // inefficient plant (low COP) and generous air handling. This is what
  // makes PUE land near 2; EXP-E shows how economizers improve it.
  thermal::CoolingPlantConfig plant_config;
  plant_config.has_economizer = false;
  plant_config.cop_at_reference = 2.2;
  plant_config.fan_fraction = 0.22;
  const thermal::CoolingPlant plant(plant_config);
  const power::Psu psu{power::PsuConfig{}};

  Table table({"IT load", "servers@450W", "PSU in", "racks", "UPS in", "mech (cooling)",
               "transformer in", "utility", "losses", "PUE"});

  for (double load_frac : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    auto topo = power::build_tier2_topology(topo_config);
    const double it_dc_w = topo_config.critical_capacity_w * load_frac * 0.85;
    // Servers draw DC behind per-server PSUs; the racks see AC input.
    const double per_server_dc = 450.0 * 0.6;  // mid-load servers
    const auto servers = static_cast<std::size_t>(it_dc_w / per_server_dc);
    const double psu_in_per_server = psu.input_power_w(per_server_dc);
    const double rack_total = psu_in_per_server * static_cast<double>(servers);
    const double per_rack = rack_total / static_cast<double>(topo.rack_ids.size());
    for (auto rack : topo.rack_ids) topo.tree.set_direct_load(rack, per_rack);

    // Cooling must remove every watt the IT gear dissipates; conservative
    // 14 C supply air keeps the chiller COP low (over-cooling is costly).
    const auto cooling = plant.power_draw(rack_total, 14.0, 25.0);
    topo.tree.set_direct_load(topo.mechanical_id, cooling.total_w());

    const auto report = topo.tree.evaluate();
    const auto& ups_flow = report.flows[topo.ups_id];
    table.add_row({fmt_percent(load_frac, 0), std::to_string(servers),
                   fmt(to_kilowatts(rack_total), 0) + " kW",
                   fmt(to_kilowatts(report.critical_power_w), 0) + " kW",
                   fmt(to_kilowatts(ups_flow.input_w), 0) + " kW",
                   fmt(to_kilowatts(report.mechanical_power_w), 0) + " kW",
                   fmt(to_kilowatts(report.flows[1].input_w), 0) + " kW",
                   fmt(to_kilowatts(report.utility_draw_w), 0) + " kW",
                   fmt(to_kilowatts(report.total_loss_w), 0) + " kW",
                   fmt(report.pue, 2)});
  }
  std::cout << table.render();

  std::cout << "\n  Per-stage share of utility draw at 50% IT load:\n";
  {
    auto topo = power::build_tier2_topology(topo_config);
    const double rack_total = 500.0e3;
    for (auto rack : topo.rack_ids) {
      topo.tree.set_direct_load(rack,
                                rack_total / static_cast<double>(topo.rack_ids.size()));
    }
    const auto cooling = plant.power_draw(rack_total, 14.0, 25.0);
    topo.tree.set_direct_load(topo.mechanical_id, cooling.total_w());
    const auto report = topo.tree.evaluate();
    Table stages({"stage", "loss/draw", "share of utility"});
    const double utility = report.utility_draw_w;
    stages.add_row({"critical IT power", fmt(to_kilowatts(report.critical_power_w), 0) + " kW",
                    fmt_percent(report.critical_power_w / utility, 1)});
    stages.add_row({"cooling (chiller+fans)",
                    fmt(to_kilowatts(report.mechanical_power_w), 0) + " kW",
                    fmt_percent(report.mechanical_power_w / utility, 1)});
    stages.add_row({"UPS conversion loss",
                    fmt(to_kilowatts(report.flows[topo.ups_id].loss_w), 0) + " kW",
                    fmt_percent(report.flows[topo.ups_id].loss_w / utility, 1)});
    double pdu_loss = 0.0;
    for (auto id : topo.tree.nodes_of_kind(power::NodeKind::kPdu)) {
      pdu_loss += report.flows[id].loss_w;
    }
    stages.add_row({"PDU losses", fmt(to_kilowatts(pdu_loss), 0) + " kW",
                    fmt_percent(pdu_loss / utility, 1)});
    stages.add_row({"transformer loss",
                    fmt(to_kilowatts(report.flows[1].loss_w), 0) + " kW",
                    fmt_percent(report.flows[1].loss_w / utility, 1)});
    std::cout << stages.render();
  }

  std::cout << "\n  Paper: power flows grid->UPS->PDU->racks, with chillers/CRACs/"
               "humidifiers on a separate feed;\n"
               "  PUE 'close to 2' for conservatively cooled data centers.\n"
               "  Measured: PUE ~1.9-2.1 across mid loads with cold-supply chilled-"
               "water cooling; critical power is ~50%\n"
               "  of the utility draw, cooling ~35%, conversion losses the rest.\n";
  return 0;
}
