// Figure 1 reproduction: "An illustration of power distribution tiers in a
// data center" — regenerated quantitatively as the power flow through
// grid -> transformer -> UPS -> PDUs -> racks (plus the mechanical feed for
// chillers/CRACs/humidifiers), swept over IT load, with per-stage losses and
// the resulting PUE. The paper's §2.2 claim "most data centers have PUE
// close to 2" should hold at conservative cooling settings.
//
// The numbers come from repro::fig1_* so the golden-regression tests diff
// exactly what this binary prints.
#include <cstddef>
#include <iostream>

#include "core/table.h"
#include "core/units.h"
#include "repro/figures.h"

using namespace epm;

int main() {
  std::cout << banner(
      "Figure 1: power distribution tiers of a 1 MW tier-2 data center");

  const auto flow = repro::fig1_power_flow();
  Table table({"IT load", "servers@450W", "PSU in", "racks", "UPS in", "mech (cooling)",
               "transformer in", "utility", "losses", "PUE"});
  for (const auto& row : flow.rows) {
    table.add_row({fmt_percent(row[0], 0),
                   std::to_string(static_cast<std::size_t>(row[1])),
                   fmt(row[2], 0) + " kW", fmt(row[3], 0) + " kW",
                   fmt(row[4], 0) + " kW", fmt(row[5], 0) + " kW",
                   fmt(row[6], 0) + " kW", fmt(row[7], 0) + " kW",
                   fmt(row[8], 0) + " kW", fmt(row[9], 2)});
  }
  std::cout << table.render();

  std::cout << "\n  Per-stage share of utility draw at 50% IT load:\n";
  {
    const auto shares = repro::fig1_stage_shares();
    const char* stage_names[] = {"critical IT power", "cooling (chiller+fans)",
                                 "UPS conversion loss", "PDU losses",
                                 "transformer loss"};
    Table stages({"stage", "loss/draw", "share of utility"});
    for (const auto& row : shares.rows) {
      stages.add_row({stage_names[static_cast<std::size_t>(row[0])],
                      fmt(row[1], 0) + " kW", fmt_percent(row[2], 1)});
    }
    std::cout << stages.render();
  }

  std::cout << "\n  Paper: power flows grid->UPS->PDU->racks, with chillers/CRACs/"
               "humidifiers on a separate feed;\n"
               "  PUE 'close to 2' for conservatively cooled data centers.\n"
               "  Measured: PUE ~1.9-2.1 across mid loads with cold-supply chilled-"
               "water cooling; critical power is ~50%\n"
               "  of the utility draw, cooling ~35%, conversion losses the rest.\n";
  return 0;
}
