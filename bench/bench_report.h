// Perf-record emitter shared by the bench binaries.
//
// Each converted bench appends one JSON object per measured section to
// BENCH_parallel.json (one object per line), so a run of the bench suite
// leaves a machine-readable trajectory of throughput (items/sec), wall time,
// and the thread count it was achieved at. Every record is also stamped
// with the provenance needed to compare runs across machines and commits:
// the git commit the binary was run from and the CPU model it ran on.
// Override the destination with the EPM_BENCH_REPORT environment variable;
// set it to "-" to suppress.
#pragma once

#include <cstdlib>
#include <fstream>
#include <string>

namespace epm::bench {

struct BenchRecord {
  std::string name;        ///< e.g. "telemetry_bulk_ingest"
  std::size_t threads = 1; ///< worker threads the section ran with
  double wall_s = 0.0;     ///< measured wall-clock seconds
  double items = 0.0;      ///< work units completed (events, samples, points)
};

inline std::string bench_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_parallel.json";
}

namespace detail {

/// Minimal JSON string sanitizer for provenance fields (quotes and
/// backslashes dropped; control characters mapped to spaces).
inline std::string json_safe(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') continue;
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

inline std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

/// The commit HEAD points at, read straight from the .git directory (no
/// subprocess): EPM_GIT_COMMIT overrides, then .git/HEAD is searched a few
/// levels up from the working directory (benches usually run from build/).
inline std::string resolve_git_commit() {
  if (const char* env = std::getenv("EPM_GIT_COMMIT")) return env;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    const std::string git_dir = std::string(prefix) + ".git/";
    std::string head = read_first_line(git_dir + "HEAD");
    if (head.empty()) continue;
    if (head.rfind("ref: ", 0) == 0) {
      const std::string ref = read_first_line(git_dir + head.substr(5));
      if (!ref.empty()) head = ref;
    }
    return head.substr(0, 12);
  }
  return "unknown";
}

/// CPU model from /proc/cpuinfo ("model name" line), "unknown" elsewhere.
inline std::string resolve_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) break;
    return line.substr(start);
  }
  return "unknown";
}

inline const std::string& git_commit() {
  static const std::string commit = json_safe(resolve_git_commit());
  return commit;
}

inline const std::string& cpu_model() {
  static const std::string model = json_safe(resolve_cpu_model());
  return model;
}

}  // namespace detail

/// Appends `record` to the report file; silently a no-op when the file is
/// unwritable (benches must never fail on report plumbing).
inline void append_bench_record(const BenchRecord& record) {
  const std::string path = bench_report_path();
  if (path == "-") return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  const double rate = record.wall_s > 0.0 ? record.items / record.wall_s : 0.0;
  out << "{\"name\":\"" << record.name << "\",\"threads\":" << record.threads
      << ",\"wall_s\":" << record.wall_s << ",\"items\":" << record.items
      << ",\"items_per_s\":" << rate << ",\"git_commit\":\""
      << detail::git_commit() << "\",\"cpu_model\":\"" << detail::cpu_model()
      << "\"}\n";
}

}  // namespace epm::bench
