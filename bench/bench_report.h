// Perf-record emitter shared by the bench binaries.
//
// Each converted bench appends one JSON object per measured section to
// BENCH_parallel.json (one object per line), so a run of the bench suite
// leaves a machine-readable trajectory of throughput (items/sec), wall time,
// and the thread count it was achieved at. Override the destination with
// the EPM_BENCH_REPORT environment variable; set it to "-" to suppress.
#pragma once

#include <cstdlib>
#include <fstream>
#include <string>

namespace epm::bench {

struct BenchRecord {
  std::string name;        ///< e.g. "telemetry_bulk_ingest"
  std::size_t threads = 1; ///< worker threads the section ran with
  double wall_s = 0.0;     ///< measured wall-clock seconds
  double items = 0.0;      ///< work units completed (events, samples, points)
};

inline std::string bench_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_parallel.json";
}

/// Appends `record` to the report file; silently a no-op when the file is
/// unwritable (benches must never fail on report plumbing).
inline void append_bench_record(const BenchRecord& record) {
  const std::string path = bench_report_path();
  if (path == "-") return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  const double rate = record.wall_s > 0.0 ? record.items / record.wall_s : 0.0;
  out << "{\"name\":\"" << record.name << "\",\"threads\":" << record.threads
      << ",\"wall_s\":" << record.wall_s << ",\"items\":" << record.items
      << ",\"items_per_s\":" << rate << "}\n";
}

}  // namespace epm::bench
