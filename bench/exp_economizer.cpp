// EXP-E (paper §2.2): air-side economizers.
//
//   "Recently, the industry has moved to extensive use of air-side
//    economizers, i.e. using outside air to cool data centers directly,
//    rather than relying on energy consuming water chillers. However, the
//    temperature and humidity of outside air change continuously, bringing
//    additional challenges to cooling control."
//
// One simulated year at a temperate site: monthly economizer hours, cooling
// energy, and PUE with and without the economizer, plus the sensitivity of
// the benefit to the usable-temperature threshold (the control challenge).
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "power/distribution.h"
#include "thermal/cooling_plant.h"
#include "thermal/outside_air.h"

using namespace epm;

int main() {
  std::cout << banner("EXP-E (sec. 2.2): air-side economizer over one year");

  thermal::OutsideAirConfig air_config;  // temperate site, 12 C annual mean
  thermal::OutsideAirModel air(air_config);
  const auto outside = air.sample(days(365.0), hours(1.0));

  thermal::CoolingPlantConfig with;
  with.has_economizer = true;
  thermal::CoolingPlantConfig without = with;
  without.has_economizer = false;
  const thermal::CoolingPlant plant_with(with);
  const thermal::CoolingPlant plant_without(without);

  const double it_heat_w = 600.0e3;  // steady 600 kW of IT load
  const double supply_c = 18.0;

  const char* months[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  const int month_days[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

  Table table({"month", "mean outside (C)", "economizer hours", "cooling kWh (econ)",
               "cooling kWh (chiller)", "saved"});
  double yearly_with = 0.0;
  double yearly_without = 0.0;
  double econ_hours_total = 0.0;
  std::size_t hour_index = 0;
  for (int m = 0; m < 12; ++m) {
    double month_with = 0.0;
    double month_without = 0.0;
    double econ_hours = 0.0;
    OnlineStats temp;
    for (int h = 0; h < month_days[m] * 24 && hour_index < outside.size();
         ++h, ++hour_index) {
      const double out_c = outside[hour_index];
      temp.add(out_c);
      const auto draw_with = plant_with.power_draw(it_heat_w, supply_c, out_c);
      const auto draw_without = plant_without.power_draw(it_heat_w, supply_c, out_c);
      month_with += to_kwh(draw_with.total_w() * 3600.0);
      month_without += to_kwh(draw_without.total_w() * 3600.0);
      if (draw_with.economizer_active) econ_hours += 1.0;
    }
    yearly_with += month_with;
    yearly_without += month_without;
    econ_hours_total += econ_hours;
    table.add_row({months[m], fmt(temp.mean(), 1), fmt(econ_hours, 0),
                   fmt(month_with, 0), fmt(month_without, 0),
                   fmt_percent(1.0 - month_with / month_without, 0)});
  }
  std::cout << table.render();

  // Facility-level PUE with the tier-2 distribution tree.
  auto pue_for = [&](double mech_w) {
    auto topo = power::build_tier2_topology(power::Tier2TopologyConfig{});
    const double per_rack = it_heat_w / static_cast<double>(topo.rack_ids.size());
    for (auto rack : topo.rack_ids) topo.tree.set_direct_load(rack, per_rack);
    topo.tree.set_direct_load(topo.mechanical_id, mech_w);
    return topo.tree.evaluate().pue;
  };
  const double hours_per_year = 8760.0;
  const double mean_mech_with = yearly_with * 3.6e6 / (hours_per_year * 3600.0);
  const double mean_mech_without = yearly_without * 3.6e6 / (hours_per_year * 3600.0);

  std::cout << "\n  Year totals: economizer active "
            << fmt_percent(econ_hours_total / hours_per_year, 0) << " of hours; "
            << "cooling energy " << fmt(yearly_with, 0) << " kWh vs "
            << fmt(yearly_without, 0) << " kWh ("
            << fmt_percent(1.0 - yearly_with / yearly_without, 0) << " saved)\n";
  std::cout << "  Mean facility PUE: " << fmt(pue_for(mean_mech_with), 2)
            << " with economizer vs " << fmt(pue_for(mean_mech_without), 2)
            << " chiller-only\n";

  std::cout << "\n  Control challenge: usable-threshold sensitivity (approach "
               "temperature vs economizer hours):\n";
  Table sweep({"approach (C)", "economizer hours/yr", "cooling kWh/yr"});
  for (double approach : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    thermal::CoolingPlantConfig cfg = with;
    cfg.economizer_approach_c = approach;
    const thermal::CoolingPlant plant(cfg);
    double kwh = 0.0;
    double econ_h = 0.0;
    for (std::size_t h = 0; h < outside.size(); ++h) {
      const auto draw = plant.power_draw(it_heat_w, supply_c, outside[h]);
      kwh += to_kwh(draw.total_w() * 3600.0);
      if (draw.economizer_active) econ_h += 1.0;
    }
    sweep.add_row({fmt(approach, 0), fmt(econ_h, 0), fmt(kwh, 0)});
  }
  std::cout << sweep.render();

  // Humidity envelope: how much of the temperature-eligible time is lost to
  // out-of-envelope air (paper: "the temperature and humidity of outside
  // air change continuously, bringing additional challenges").
  {
    thermal::OutsideAirModel humid_air(air_config);
    const auto weather = humid_air.sample_weather(days(365.0), hours(1.0));
    double eligible_by_temp = 0.0;
    double eligible_full = 0.0;
    double kwh_humidity_aware = 0.0;
    for (std::size_t h = 0; h < weather.temperature_c.size(); ++h) {
      if (plant_with.economizer_usable(weather.temperature_c[h], supply_c)) {
        eligible_by_temp += 1.0;
      }
      const auto draw = plant_with.power_draw(it_heat_w, supply_c,
                                              weather.temperature_c[h],
                                              weather.relative_humidity[h]);
      if (draw.economizer_active) eligible_full += 1.0;
      kwh_humidity_aware += to_kwh(draw.total_w() * 3600.0);
    }
    std::cout << "\n  Humidity envelope (15-80% RH intake): "
              << fmt(eligible_by_temp, 0) << " h/yr eligible by temperature, "
              << fmt(eligible_full, 0) << " h/yr after the humidity check ("
              << fmt_percent(1.0 - eligible_full / eligible_by_temp, 0)
              << " of cold hours lost to out-of-envelope air); cooling "
              << fmt(kwh_humidity_aware, 0) << " kWh/yr\n";
  }

  std::cout << "\n  Paper: economizers displace chiller energy but couple "
               "cooling to continuously varying outside air.\n"
               "  Measured: cold months run nearly chiller-free; the benefit "
               "degrades steeply as the usable-air margin\n"
               "  (approach) widens - exactly the control sensitivity the paper "
               "flags as a challenge.\n";
  return 0;
}
