// EXP-AA: the §5.3 telemetry firehose on the columnar store, shared by
// bench/exp_telemetry_scale and `epmctl telemetry`.
//
// Measured sections (records appended to BENCH_telemetry.json):
//
//   telemetry_ingest           bulk_append of the reference counter mix
//                              (workload/fleet_counters.h) through the
//                              lock-free ring pipeline, at 1 thread and at
//                              `threads`; gated on absolute points/minute
//   telemetry_raw_bytes /      footprint of the same samples raw (16 B per
//   telemetry_compressed_bytes point) vs the sealed-block payload; the
//                              ratio is gated (>= min_compression_ratio)
//   telemetry_band_query       trailing-hour band query over every series,
//                              columnar store vs RawStore linear scan
//                              (report only)
//
// Verdict sections (no timing, gate only):
//
//   * legacy equivalence — the columnar store at 1/2/8 threads must answer
//     range / daily_trend / hourly_pattern bit-identically to the legacy
//     per-sample store on the same batch;
//   * anomaly recall — every spike injected by the generator must surface
//     in anomalies(), and the event list must be identical at 1 vs
//     `threads` ingest threads.
//
// The throughput gate is absolute (the paper's firehose is an absolute
// claim: 2.4M points/minute for the 10k-server fleet; the store is gated at
// >= 100M/minute, ~40 such fleets on one node). Compression and the two
// verdicts are machine-independent.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"
#include "telemetry/store.h"
#include "workload/fleet_counters.h"

namespace epm::bench {

struct TelemetryBenchConfig {
  std::size_t threads = 0;  ///< 0 = default_thread_count()
  std::uint64_t seed = 42;

  /// Reference-mix shape for the throughput/compression sections.
  std::uint32_t servers = 1000;
  std::uint32_t counters_per_server = 50;
  std::uint32_t ticks = 200;  // 10M points

  /// Smaller mix for the legacy-equivalence section (the legacy store pays
  /// the full cascade per sample, so this bounds the A/B cost).
  std::uint32_t equiv_servers = 150;
  std::uint32_t equiv_counters = 20;
  std::uint32_t equiv_ticks = 120;

  /// Spike probability for the anomaly section (on the equivalence mix).
  double spike_probability = 0.02;

  /// Ingest gate in points/minute at `threads`; 0 = report only.
  double min_points_per_min = 100e6;
  /// Sealed-payload compression gate (raw bytes / payload bytes).
  double min_compression_ratio = 8.0;
};

struct TelemetryBenchOutcome {
  double ingest_wall_1t_s = 0.0;
  double ingest_wall_nt_s = 0.0;
  double points_per_min = 0.0;  ///< at `threads`
  double compression_ratio = 0.0;
  double band_query_s = 0.0;
  double raw_scan_s = 0.0;
  bool legacy_identical = false;
  bool anomalies_recalled = false;
  bool anomalies_deterministic = false;
  std::size_t spikes_injected = 0;
  std::size_t anomaly_events = 0;
  bool gate_ok = false;
};

namespace telemetry_detail {

inline double now_wall_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

inline bool aggregates_equal(const telemetry::Aggregate& a,
                             const telemetry::Aggregate& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min && a.max == b.max;
}

inline bool means_equal(const telemetry::MultiScaleSeries::BinnedMeans& a,
                        const telemetry::MultiScaleSeries::BinnedMeans& b) {
  return a.times_s == b.times_s && a.means == b.means;
}

/// Bitwise agreement of the shared query API across two stores, over every
/// key of the batch.
template <typename StoreA, typename StoreB>
bool stores_answer_identically(const StoreA& a, const StoreB& b,
                               const workload::FleetCountersConfig& mix,
                               double horizon_s) {
  if (a.total_samples() != b.total_samples()) return false;
  if (a.series_count() != b.series_count()) return false;
  for (std::uint32_t s = 0; s < mix.servers; ++s) {
    for (std::uint32_t c = 0; c < mix.counters_per_server; ++c) {
      const auto key = telemetry::make_key(s, c);
      if (!aggregates_equal(a.range(key, 0.0, horizon_s),
                            b.range(key, 0.0, horizon_s))) {
        return false;
      }
      if (!aggregates_equal(a.range(key, horizon_s - 3600.0, horizon_s),
                            b.range(key, horizon_s - 3600.0, horizon_s))) {
        return false;
      }
      if (!means_equal(a.daily_trend(key, 0.0, horizon_s),
                       b.daily_trend(key, 0.0, horizon_s))) {
        return false;
      }
      if (!means_equal(a.hourly_pattern(key, 0.0, horizon_s),
                       b.hourly_pattern(key, 0.0, horizon_s))) {
        return false;
      }
    }
  }
  return true;
}

inline bool events_equal(const std::vector<telemetry::AnomalyEvent>& a,
                         const std::vector<telemetry::AnomalyEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].time_s != b[i].time_s ||
        a[i].value != b[i].value || a[i].zscore != b[i].zscore) {
      return false;
    }
  }
  return true;
}

}  // namespace telemetry_detail

inline TelemetryBenchOutcome run_telemetry_bench(const TelemetryBenchConfig& config) {
  // Default the report to BENCH_telemetry.json unless the caller already
  // chose a destination (or suppressed it with "-").
  ::setenv("EPM_BENCH_REPORT", "BENCH_telemetry.json", /*overwrite=*/0);
  namespace td = telemetry_detail;
  TelemetryBenchOutcome out;
  const std::size_t threads =
      resolve_thread_count(static_cast<std::int64_t>(config.threads));

  // -- ingest throughput + compression on the reference mix ----------------
  {
    workload::FleetCountersConfig mix;
    mix.servers = config.servers;
    mix.counters_per_server = config.counters_per_server;
    mix.ticks = config.ticks;
    mix.seed = config.seed;
    const auto batch = workload::synthesize_fleet_counters(mix);
    const auto points = static_cast<double>(batch.samples.size());

    {
      telemetry::ColumnarTelemetryStore store;
      const double t0 = td::now_wall_s();
      store.bulk_append(batch.samples, /*threads=*/1);
      out.ingest_wall_1t_s = td::now_wall_s() - t0;
      append_bench_record({"telemetry_ingest", 1, out.ingest_wall_1t_s, points});
    }

    telemetry::ColumnarTelemetryStore store;
    {
      ThreadPool pool(threads);
      const double t0 = td::now_wall_s();
      store.bulk_append(batch.samples, pool);
      out.ingest_wall_nt_s = td::now_wall_s() - t0;
      append_bench_record({"telemetry_ingest", threads, out.ingest_wall_nt_s, points});
    }
    out.points_per_min =
        out.ingest_wall_nt_s > 0.0 ? points / out.ingest_wall_nt_s * 60.0 : 0.0;

    store.flush();
    const double raw_bytes = static_cast<double>(store.sealed_samples()) * 16.0;
    const double payload = static_cast<double>(store.compressed_payload_bytes());
    out.compression_ratio = payload > 0.0 ? raw_bytes / payload : 0.0;
    append_bench_record({"telemetry_raw_bytes", threads, 0.0, raw_bytes});
    append_bench_record({"telemetry_compressed_bytes", threads, 0.0, payload});

    std::printf("  ingest %.2fM points: %.0f ms @ 1 thread, %.0f ms @ %zu "
                "(%.1fM points/min)\n",
                points / 1e6, out.ingest_wall_1t_s * 1e3,
                out.ingest_wall_nt_s * 1e3, threads, out.points_per_min / 1e6);
    std::printf("  sealed compression: %.2f MB raw -> %.2f MB (%.1fx)\n",
                raw_bytes / 1e6, payload / 1e6, out.compression_ratio);

    // Trailing-hour band query over every series, columnar pyramid vs a raw
    // linear scan over the same samples (report only; the query-speed claim
    // is the legacy store's and carries over by bit-identity).
    {
      const double horizon_s = static_cast<double>(mix.ticks) * mix.cadence_s + 15.0;
      telemetry::RawStore raw;
      for (const auto& sample : batch.samples) {
        raw.append(sample.key, sample.time_s, sample.value);
      }
      double sink = 0.0;
      const double t0 = td::now_wall_s();
      for (std::uint32_t s = 0; s < mix.servers; ++s) {
        for (std::uint32_t c = 0; c < mix.counters_per_server; ++c) {
          sink += store.range(telemetry::make_key(s, c), horizon_s - 3600.0,
                              horizon_s).mean();
        }
      }
      out.band_query_s = td::now_wall_s() - t0;
      const double t1 = td::now_wall_s();
      for (std::uint32_t s = 0; s < mix.servers; ++s) {
        for (std::uint32_t c = 0; c < mix.counters_per_server; ++c) {
          sink -= raw.range(telemetry::make_key(s, c), horizon_s - 3600.0,
                            horizon_s).mean;
        }
      }
      out.raw_scan_s = td::now_wall_s() - t1;
      const double series =
          static_cast<double>(mix.servers) * mix.counters_per_server;
      append_bench_record({"telemetry_band_query", 1, out.band_query_s, series});
      append_bench_record({"telemetry_raw_scan", 1, out.raw_scan_s, series});
      std::printf("  trailing-hour query x %.0fk series: banded %.0f ms vs raw "
                  "scan %.0f ms (sink %.1f)\n",
                  series / 1e3, out.band_query_s * 1e3, out.raw_scan_s * 1e3,
                  sink);
    }
  }

  // -- legacy equivalence at 1/2/8 threads ---------------------------------
  {
    workload::FleetCountersConfig mix;
    mix.servers = config.equiv_servers;
    mix.counters_per_server = config.equiv_counters;
    mix.ticks = config.equiv_ticks;
    mix.seed = config.seed + 1;
    const auto batch = workload::synthesize_fleet_counters(mix);
    const double horizon_s = static_cast<double>(mix.ticks) * mix.cadence_s + 15.0;

    telemetry::LegacyTelemetryStore legacy;
    for (const auto& sample : batch.samples) {
      legacy.append(sample.key, sample.time_s, sample.value, sample.degraded);
    }
    out.legacy_identical = true;
    for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      telemetry::ColumnarTelemetryStore columnar;
      columnar.bulk_append(batch.samples, t);
      if (!td::stores_answer_identically(legacy, columnar, mix, horizon_s)) {
        out.legacy_identical = false;
        std::printf("  legacy equivalence: MISMATCH at %zu threads\n", t);
        break;
      }
    }
    if (out.legacy_identical) {
      std::printf("  legacy equivalence: bit-identical at 1/2/8 threads "
                  "(%zu series x 4 queries)\n",
                  static_cast<std::size_t>(mix.servers) * mix.counters_per_server);
    }
  }

  // -- in-stream anomaly recall + determinism ------------------------------
  {
    workload::FleetCountersConfig mix;
    mix.servers = config.equiv_servers;
    mix.counters_per_server = config.equiv_counters;
    mix.ticks = config.equiv_ticks;
    mix.seed = config.seed + 2;
    mix.spike_probability = config.spike_probability;
    const auto batch = workload::synthesize_fleet_counters(mix);
    out.spikes_injected = batch.spikes.size();

    telemetry::ColumnarTelemetryStore store;
    store.bulk_append(batch.samples, /*threads=*/1);
    store.flush();
    const auto events = store.anomalies();
    out.anomaly_events = events.size();

    out.anomalies_recalled = true;
    for (const auto& spike : batch.spikes) {
      const bool hit = std::any_of(
          events.begin(), events.end(), [&](const telemetry::AnomalyEvent& e) {
            return e.key == spike.key && e.time_s == spike.time_s;
          });
      if (!hit) {
        out.anomalies_recalled = false;
        std::printf("  anomaly recall: MISSED spike on key %llu at t=%.0f\n",
                    static_cast<unsigned long long>(spike.key), spike.time_s);
        break;
      }
    }

    telemetry::ColumnarTelemetryStore parallel_store;
    parallel_store.bulk_append(batch.samples, threads);
    parallel_store.flush();
    out.anomalies_deterministic =
        td::events_equal(events, parallel_store.anomalies());

    std::printf("  in-stream anomalies: %zu injected spikes, %zu events, "
                "recall %s, deterministic across threads %s\n",
                out.spikes_injected, out.anomaly_events,
                out.anomalies_recalled ? "ok" : "FAIL",
                out.anomalies_deterministic ? "yes" : "NO");
  }

  const bool rate_ok = config.min_points_per_min <= 0.0 ||
                       out.points_per_min >= config.min_points_per_min;
  const bool compression_ok = out.compression_ratio >= config.min_compression_ratio;
  out.gate_ok = rate_ok && compression_ok && out.legacy_identical &&
                out.anomalies_recalled && out.anomalies_deterministic;
  std::printf("  gates: ingest %s (%.1fM/min vs %.0fM), compression %s "
              "(%.1fx vs %.0fx), equivalence %s, anomalies %s => %s\n",
              rate_ok ? "ok" : "FAIL", out.points_per_min / 1e6,
              config.min_points_per_min / 1e6, compression_ok ? "ok" : "FAIL",
              out.compression_ratio, config.min_compression_ratio,
              out.legacy_identical ? "ok" : "FAIL",
              out.anomalies_recalled && out.anomalies_deterministic ? "ok"
                                                                    : "FAIL",
              out.gate_ok ? "PASS" : "FAIL");
  return out;
}

}  // namespace epm::bench
