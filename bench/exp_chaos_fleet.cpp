// Extension experiment (EXP-Y): chaos drills for the federation.
//
// Three gated drills from the chaos harness (faults/chaos_fleet.h):
//
//   * recovery — the reference fleet storm under a correlated regional
//     grid event (fault-domain fan-out). The defended arm (admission
//     stack + grid broadcasts steering forwards away from dark
//     datacenters) must end the run at >= 99% of its pre-event fleet
//     goodput at EVERY swept fleet size; the naive arm (no defense, blind
//     round-robin into the fault domain) must fail that bar at every one.
//   * restore — kill-and-restore from a mid-run snapshot must continue
//     bit-identically to the uninterrupted run, at 1 and 8 worker threads.
//   * partition — an open partition must park traffic in the bounded
//     mailbox FIFO and, after heal, finish with zero message loss and
//     per-pair FIFO order intact.
//
// Emits one BENCH_chaos.json record per drill (set EPM_BENCH_REPORT to
// redirect); the checked-in copy is the reference run the CI smoke lane
// compares against.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/table.h"
#include "faults/chaos_fleet.h"

using namespace epm;

namespace {

std::string chaos_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_chaos.json";
}

std::ofstream open_report() {
  const std::string path = chaos_report_path();
  if (path == "-") return {};
  return std::ofstream(path, std::ios::app);
}

void append_provenance(std::ofstream& file) {
  file << ",\"git_commit\":\"" << bench::detail::git_commit()
       << "\",\"cpu_model\":\"" << bench::detail::cpu_model() << "\"}\n";
}

void append_recovery_record(std::size_t dcs, const std::string& arm_name,
                            const faults::ChaosRecoveryReport& rep,
                            const faults::ChaosRecoveryArm& arm) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"chaos_fleet_recovery\",\"dcs\":" << dcs
       << ",\"arm\":\"" << arm_name << "\",\"grid_script\":\""
       << rep.grid_script << "\",\"threshold\":" << rep.threshold
       << ",\"prefault_goodput_rps\":" << arm.fleet_prefault_goodput_rps
       << ",\"end_goodput_rps\":" << arm.fleet_end_goodput_rps
       << ",\"ratio\":" << arm.ratio
       << ",\"grid_signals\":" << arm.grid_signals
       << ",\"recovered\":" << (arm.recovered ? "true" : "false")
       << ",\"conservation_ok\":" << (arm.conservation_ok ? "true" : "false");
  append_provenance(file);
}

void append_restore_record(std::size_t threads,
                           const faults::ChaosRestoreReport& rep) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"chaos_restore_equivalence\",\"threads\":" << threads
       << ",\"snapshot_bytes\":" << rep.snapshot_bytes
       << ",\"identical\":" << (rep.identical ? "true" : "false");
  append_provenance(file);
}

void append_partition_record(const faults::ChaosPartitionReport& rep) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"chaos_partition_zero_loss\",\"parked_at_check\":"
       << rep.parked_at_check << ",\"redelivered\":" << rep.redelivered
       << ",\"drained\":" << (rep.drained ? "true" : "false")
       << ",\"zero_loss\":" << (rep.zero_loss ? "true" : "false")
       << ",\"fifo_ok\":" << (rep.fifo_ok ? "true" : "false")
       << ",\"passed\":" << (rep.passed ? "true" : "false");
  append_provenance(file);
}

}  // namespace

int main() {
  std::cout << banner("EXP-Y: federation chaos drills");
  bool gate_ok = true;

  // Drill 1: correlated-regional-outage recovery gate, swept fleet sizes.
  const std::vector<std::size_t> fleet_sizes = {4, 6};
  Table recovery({"dcs", "arm", "prefault", "end", "ratio", "signals",
                  "recovered"});
  for (const std::size_t dcs : fleet_sizes) {
    const auto rep = faults::run_chaos_recovery(
        dcs, 2000, 42, faults::make_reference_grid_script(), 0.99);
    append_recovery_record(dcs, "defended", rep, rep.defended);
    append_recovery_record(dcs, "naive", rep, rep.naive);
    for (const bool defended : {true, false}) {
      const auto& arm = defended ? rep.defended : rep.naive;
      recovery.add_row({std::to_string(dcs), defended ? "defended" : "naive",
                        fmt(arm.fleet_prefault_goodput_rps, 1) + "/s",
                        fmt(arm.fleet_end_goodput_rps, 1) + "/s",
                        fmt(arm.ratio, 4),
                        std::to_string(arm.grid_signals),
                        arm.recovered ? "yes" : "NO"});
      if (!arm.conservation_ok) {
        gate_ok = false;
        std::cout << "  CONSERVATION VIOLATION (dcs=" << dcs << ", "
                  << (defended ? "defended" : "naive") << " arm)\n";
      }
    }
    if (!rep.gate_ok) {
      gate_ok = false;
      std::cout << "  RECOVERY GATE FAILED at dcs=" << dcs
                << " (defended ratio=" << fmt(rep.defended.ratio, 4)
                << ", naive ratio=" << fmt(rep.naive.ratio, 4)
                << ", threshold=" << fmt(rep.threshold, 2) << ")\n";
    }
  }
  std::cout << recovery.render();

  // Drill 2: kill-and-restore bit-identical continuation.
  faults::ChaosFleetConfig chaos;
  Table restore({"threads", "snapshot bytes", "identical"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    faults::ChaosFleetConfig c = chaos;
    c.threads = threads;
    const auto rep = faults::run_chaos_fleet_with_restore(c, 20.0, 35.0);
    append_restore_record(threads, rep);
    restore.add_row({std::to_string(threads),
                     std::to_string(rep.snapshot_bytes),
                     rep.identical ? "yes" : "NO"});
    if (!rep.identical) {
      gate_ok = false;
      std::cout << "  RESTORE DIVERGED at " << threads << " threads:\n    un: "
                << rep.uninterrupted.conservation_report << "\n    re: "
                << rep.restored.conservation_report << "\n";
    }
  }
  std::cout << restore.render();

  // Drill 3: partition, park, heal, drain — zero loss.
  const auto part = faults::run_chaos_partition_drill(chaos, 15.0, 30.0, 32.0);
  append_partition_record(part);
  Table partition({"parked@check", "redelivered", "drained", "zero loss",
                   "fifo", "passed"});
  partition.add_row({std::to_string(part.parked_at_check),
                     std::to_string(part.redelivered),
                     part.drained ? "yes" : "NO",
                     part.zero_loss ? "yes" : "NO",
                     part.fifo_ok ? "yes" : "NO",
                     part.passed ? "yes" : "NO"});
  std::cout << partition.render();
  if (!part.passed) {
    gate_ok = false;
    std::cout << "  PARTITION DRILL FAILED: "
              << part.outcome.conservation_report << "\n";
  }

  std::cout << "\n  Chaos gates (recovery >= 99%, bit-identical restore, "
               "zero-loss partition): "
            << (gate_ok ? "all pass" : "FAILED") << "\n";
  std::cout
      << "  Paper: regional grid events hit correlated groups of "
         "datacenters at once (§3.2) — resilience\n  must be engineered at "
         "the fleet level. Measured: fault-domain-aware forward steering "
         "plus the\n  admission stack rides out a regional outage the naive "
         "fleet cannot, and the federation's\n  snapshots and partition "
         "mailboxes lose nothing along the way.\n";
  return gate_ok ? 0 : 1;
}
