// Figure 4 reproduction: "An architecture for tiered resource provisioning
// and management" — exercised end-to-end. The macro-resource management
// layer (SLA inputs, demand prediction, joint server/DVFS sizing, power
// budgeting, cooling control, placement) runs a two-service facility through
// a simulated week of Messenger-style demand, against the uncoordinated
// micro-policy stack. The paper's architectural claim is that the
// coordination layer "make[s] resource utilization follow the elasticity of
// software services" — measured here as energy, SLA, and thermal outcomes.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "macro/coordinator.h"
#include "macro/uncoordinated.h"
#include "workload/messenger.h"

using namespace epm;

namespace {

struct Outcome {
  double it_energy_kwh = 0.0;
  double mech_energy_kwh = 0.0;
  double mean_pue = 0.0;
  std::size_t sla_violations = 0;
  std::size_t epochs = 0;
  std::size_t alarms = 0;
  std::size_t overloads = 0;
  double mean_servers = 0.0;
};

template <typename Stack>
Outcome run_week(macro::Facility& facility, Stack& stack,
                 const TimeSeries& demand_level) {
  Outcome out;
  double pue_sum = 0.0;
  double servers_sum = 0.0;
  for (std::size_t i = 0; i < demand_level.size(); ++i) {
    const double level = demand_level[i];
    const auto step = stack.step({level * 4000.0, level * 2500.0}, 18.0);
    pue_sum += step.pue;
    for (const auto& svc : step.services) {
      servers_sum += static_cast<double>(svc.serving);
      if (svc.sla_violated) ++out.sla_violations;
    }
    out.overloads += step.power_overloaded ? 1 : 0;
  }
  out.epochs = demand_level.size();
  out.it_energy_kwh = to_kwh(facility.total_it_energy_j());
  out.mech_energy_kwh = to_kwh(facility.total_mechanical_energy_j());
  out.mean_pue = pue_sum / static_cast<double>(out.epochs);
  out.alarms = facility.total_thermal_alarms();
  out.mean_servers = servers_sum / static_cast<double>(out.epochs) / 2.0;
  return out;
}

}  // namespace

int main() {
  std::cout << banner("Figure 4: macro-resource management layer, end to end");

  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.seed = 4;
  const auto trace = workload::generate_messenger_trace(wl, weeks(1.0));
  const double peak = trace.connections.stats().max();
  const auto level = trace.connections.scaled(1.0 / peak);

  const auto config = macro::make_reference_facility(60);

  macro::Facility coordinated(config);
  macro::MacroResourceManager manager(coordinated);
  const auto macro_out = run_week(coordinated, manager, level);

  macro::Facility baseline_facility(config);
  macro::UncoordinatedStack baseline(baseline_facility);
  const auto micro_out = run_week(baseline_facility, baseline, level);

  macro::Facility static_facility(config);
  // Static over-provisioning: every server on at P0, CRACs on autopilot.
  struct StaticStack {
    macro::Facility& facility;
    macro::FacilityStep step(const std::vector<double>& demand, double outside_c) {
      return facility.step(demand, outside_c);
    }
  } static_stack{static_facility};
  const auto static_out = run_week(static_facility, static_stack, level);

  Table table({"stack", "IT energy (kWh)", "cooling (kWh)", "mean PUE",
               "mean active servers/svc", "SLA violations", "thermal alarms",
               "power overloads"});
  auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name, fmt(o.it_energy_kwh, 0), fmt(o.mech_energy_kwh, 0),
                   fmt(o.mean_pue, 2), fmt(o.mean_servers, 1),
                   std::to_string(o.sla_violations), std::to_string(o.alarms),
                   std::to_string(o.overloads)});
  };
  add("static over-provisioned", static_out);
  add("uncoordinated micro stack", micro_out);
  add("macro-resource manager", macro_out);
  std::cout << table.render();

  const double total_macro = macro_out.it_energy_kwh + macro_out.mech_energy_kwh;
  const double total_static = static_out.it_energy_kwh + static_out.mech_energy_kwh;
  const double total_micro = micro_out.it_energy_kwh + micro_out.mech_energy_kwh;

  std::cout << "\n  Macro layer vs static provisioning: "
            << fmt_percent(1.0 - total_macro / total_static, 1) << " energy saved\n";
  std::cout << "  Macro layer vs uncoordinated stack: "
            << fmt_percent(1.0 - total_macro / total_micro, 1) << " energy saved\n";

  std::cout << "\n  Decision mix over the week (Fig. 4's decision outputs):\n";
  Table decisions({"decision kind", "count"});
  for (const auto& [kind, count] : manager.log().counts_by_kind()) {
    decisions.add_row({kind, std::to_string(count)});
  }
  std::cout << decisions.render();

  std::cout << "\n  First decisions of the week:\n";
  Table sample({"t (h)", "kind", "service", "detail"});
  std::size_t shown = 0;
  for (const auto& d : manager.log().all()) {
    sample.add_row({fmt(to_hours(d.time_s), 2), to_string(d.kind), d.service, d.detail});
    if (++shown == 8) break;
  }
  std::cout << sample.render();

  const double macro_viol = static_cast<double>(macro_out.sla_violations);
  const double micro_viol = static_cast<double>(std::max<std::size_t>(
      micro_out.sla_violations, 1));
  std::cout << "\n  Paper: the macro layer takes SLA/app/environment inputs and "
               "decides power provisioning, cooling\n"
               "  control, server allocation, placement, and load balancing at "
               "the time scale of demand variations.\n"
               "  Measured: the coordinated layer tracks the diurnal demand and "
               "saves "
            << fmt_percent(1.0 - total_macro / total_static, 0)
            << " energy vs static provisioning;\n  against the uncoordinated "
               "micro stack it spends "
            << fmt_percent(total_macro / total_micro - 1.0, 0)
            << " more energy but cuts SLA-violating epochs by "
            << fmt(micro_viol / std::max(macro_viol, 1.0), 1)
            << "x —\n  the reactive micro policies 'save' energy by chronically "
               "running behind demand.\n";
  return 0;
}
