// Figure 4 reproduction: "An architecture for tiered resource provisioning
// and management" — exercised end-to-end. The macro-resource management
// layer (SLA inputs, demand prediction, joint server/DVFS sizing, power
// budgeting, cooling control, placement) runs a two-service facility through
// a simulated week of Messenger-style demand, against the uncoordinated
// micro-policy stack. The paper's architectural claim is that the
// coordination layer "make[s] resource utilization follow the elasticity of
// software services" — measured here as energy, SLA, and thermal outcomes.
//
// Stack outcomes and decision counts come from repro::fig4_* so the golden-
// regression tests diff exactly what this binary prints; the decision-log
// excerpt re-runs the coordinated week to show the human-readable entries.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "macro/coordinator.h"
#include "repro/figures.h"
#include "workload/messenger.h"

using namespace epm;

int main() {
  std::cout << banner("Figure 4: macro-resource management layer, end to end");

  const auto outcomes = repro::fig4_stack_outcomes();
  const char* stack_names[] = {"static over-provisioned",
                               "uncoordinated micro stack",
                               "macro-resource manager"};
  Table table({"stack", "IT energy (kWh)", "cooling (kWh)", "mean PUE",
               "mean active servers/svc", "SLA violations", "thermal alarms",
               "power overloads"});
  for (const auto& row : outcomes.rows) {
    table.add_row({stack_names[static_cast<std::size_t>(row[0])],
                   fmt(row[1], 0), fmt(row[2], 0), fmt(row[3], 2),
                   fmt(row[4], 1),
                   std::to_string(static_cast<std::size_t>(row[5])),
                   std::to_string(static_cast<std::size_t>(row[6])),
                   std::to_string(static_cast<std::size_t>(row[7]))});
  }
  std::cout << table.render();

  const double total_static = outcomes.at(0, 1) + outcomes.at(0, 2);
  const double total_micro = outcomes.at(1, 1) + outcomes.at(1, 2);
  const double total_macro = outcomes.at(2, 1) + outcomes.at(2, 2);

  std::cout << "\n  Macro layer vs static provisioning: "
            << fmt_percent(1.0 - total_macro / total_static, 1) << " energy saved\n";
  std::cout << "  Macro layer vs uncoordinated stack: "
            << fmt_percent(1.0 - total_macro / total_micro, 1) << " energy saved\n";

  std::cout << "\n  Decision mix over the week (Fig. 4's decision outputs):\n";
  Table decisions({"decision kind", "count"});
  for (const auto& row : repro::fig4_decision_counts().rows) {
    if (row[1] <= 0.0) continue;
    decisions.add_row(
        {to_string(static_cast<macro::DecisionKind>(static_cast<int>(row[0]))),
         std::to_string(static_cast<std::size_t>(row[1]))});
  }
  std::cout << decisions.render();

  // Re-run the coordinated week once more for the human-readable excerpt
  // (the repro tables are numeric by design).
  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.seed = 4;
  const auto trace = workload::generate_messenger_trace(wl, weeks(1.0));
  const double peak = trace.connections.stats().max();
  const auto level = trace.connections.scaled(1.0 / peak);
  macro::Facility coordinated(macro::make_reference_facility(60));
  macro::MacroResourceManager manager(coordinated);
  std::size_t sla_violations = 0;
  for (std::size_t i = 0; i < level.size(); ++i) {
    const auto step = manager.step({level[i] * 4000.0, level[i] * 2500.0}, 18.0);
    for (const auto& svc : step.services) {
      if (svc.sla_violated) ++sla_violations;
    }
  }

  std::cout << "\n  First decisions of the week:\n";
  Table sample({"t (h)", "kind", "service", "detail"});
  std::size_t shown = 0;
  for (const auto& d : manager.log().all()) {
    sample.add_row({fmt(to_hours(d.time_s), 2), to_string(d.kind), d.service, d.detail});
    if (++shown == 8) break;
  }
  std::cout << sample.render();

  const double macro_viol = outcomes.at(2, 5);
  const double micro_viol = std::max(outcomes.at(1, 5), 1.0);
  std::cout << "\n  Paper: the macro layer takes SLA/app/environment inputs and "
               "decides power provisioning, cooling\n"
               "  control, server allocation, placement, and load balancing at "
               "the time scale of demand variations.\n"
               "  Measured: the coordinated layer tracks the diurnal demand and "
               "saves "
            << fmt_percent(1.0 - total_macro / total_static, 0)
            << " energy vs static provisioning;\n  against the uncoordinated "
               "micro stack it spends "
            << fmt_percent(total_macro / total_micro - 1.0, 0)
            << " more energy but cuts SLA-violating epochs by "
            << fmt(micro_viol / std::max(macro_viol, 1.0), 1)
            << "x —\n  the reactive micro policies 'save' energy by chronically "
               "running behind demand.\n";
  return 0;
}
