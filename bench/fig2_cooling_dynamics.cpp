// Figure 2 reproduction: "An illustration of an air cooled data center on
// raised floors" — regenerated quantitatively as the dynamic behaviour of
// the cold-aisle/hot-aisle thermal model: a load step into the machine room,
// the 15-minute CRAC control reactions (paper §2.2: "CRAC units usually
// react every 15 minutes"), and the slow propagation ("their actions also
// take long propagation delays to reach the servers").
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "thermal/room.h"

using namespace epm;

int main() {
  std::cout << banner("Figure 2: air-cooled raised-floor machine room dynamics");

  thermal::MachineRoomConfig config;
  thermal::ZoneConfig cold_aisle;
  cold_aisle.name = "cold-aisle";
  thermal::ZoneConfig hot_spot = cold_aisle;
  hot_spot.name = "dense-racks";
  hot_spot.conductance_w_per_c = 2.0e3;  // worse airflow in the dense aisle
  config.zones = {cold_aisle, hot_spot};
  thermal::CracConfig crac;
  crac.name = "crac0";
  crac.zone_sensitivity = {0.5, 0.5};
  config.cracs = {crac};
  config.airflow_share = {{1.0}, {1.0}};
  config.recirculation = {{0.0, 0.08}, {0.08, 0.0}};
  thermal::MachineRoom room(config);

  // Warm-up at light load, then a consolidation-style load step at t=2h.
  const std::vector<double> light{8.0e3, 6.0e3};
  const std::vector<double> heavy{24.0e3, 18.0e3};

  Table table({"time", "IT heat", "zone0 (C)", "zone1 (C)", "supply (C)",
               "CRAC actions", "alarms"});
  std::vector<double> zone1_series;
  double t = 0.0;
  const double sample_s = minutes(15.0);
  for (int i = 0; i <= 24; ++i) {  // 6 hours
    const auto& heat = t < hours(2.0) ? light : heavy;
    if (i > 0) room.run_until(t, heat);
    zone1_series.push_back(room.zone(1).temperature_c());
    if (i % 2 == 0) {
      table.add_row({fmt(to_hours(t), 2) + " h",
                     fmt((heat[0] + heat[1]) / 1e3, 0) + " kW",
                     fmt(room.zone(0).temperature_c(), 2),
                     fmt(room.zone(1).temperature_c(), 2),
                     fmt(room.crac(0).supply_temp_c(), 2),
                     std::to_string(room.crac(0).control_actions()),
                     std::to_string(room.alarms().size())});
    }
    t += sample_s;
  }
  std::cout << table.render();

  std::cout << "\n  Dense-aisle temperature over 6 h (load step at 2 h):\n";
  std::cout << ascii_chart(zone1_series, 60, 8);

  std::cout
      << "\n  Paper: CRACs exchange heat with chilled water and blow cold air "
         "through ventilated tiles; control is slow\n"
         "  (15-minute reactions, long propagation). Measured: the load step "
         "overshoots the aisle temperature for\n"
         "  2-3 CRAC control periods before the supply air catches up — the slow "
         "dynamics that motivate coordinated,\n"
         "  server-side cooling control in the macro layer.\n";
  return 0;
}
