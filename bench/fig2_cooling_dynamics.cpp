// Figure 2 reproduction: "An illustration of an air cooled data center on
// raised floors" — regenerated quantitatively as the dynamic behaviour of
// the cold-aisle/hot-aisle thermal model: a load step into the machine room,
// the 15-minute CRAC control reactions (paper §2.2: "CRAC units usually
// react every 15 minutes"), and the slow propagation ("their actions also
// take long propagation delays to reach the servers").
//
// The numbers come from repro::fig2_cooling_dynamics so the golden-
// regression tests diff exactly what this binary prints.
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "repro/figures.h"

using namespace epm;

int main() {
  std::cout << banner("Figure 2: air-cooled raised-floor machine room dynamics");

  const auto dynamics = repro::fig2_cooling_dynamics();
  Table table({"time", "IT heat", "zone0 (C)", "zone1 (C)", "supply (C)",
               "CRAC actions", "alarms"});
  std::vector<double> zone1_series;
  for (std::size_t i = 0; i < dynamics.rows.size(); ++i) {
    const auto& row = dynamics.rows[i];
    zone1_series.push_back(row[3]);
    if (i % 2 == 0) {
      table.add_row({fmt(row[0], 2) + " h", fmt(row[1], 0) + " kW",
                     fmt(row[2], 2), fmt(row[3], 2), fmt(row[4], 2),
                     std::to_string(static_cast<std::size_t>(row[5])),
                     std::to_string(static_cast<std::size_t>(row[6]))});
    }
  }
  std::cout << table.render();

  std::cout << "\n  Dense-aisle temperature over 6 h (load step at 2 h):\n";
  std::cout << ascii_chart(zone1_series, 60, 8);

  std::cout
      << "\n  Paper: CRACs exchange heat with chilled water and blow cold air "
         "through ventilated tiles; control is slow\n"
         "  (15-minute reactions, long propagation). Measured: the load step "
         "overshoots the aisle temperature for\n"
         "  2-3 CRAC control periods before the supply air catches up — the slow "
         "dynamics that motivate coordinated,\n"
         "  server-side cooling control in the macro layer.\n";
  return 0;
}
