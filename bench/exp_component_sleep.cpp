// Ablation (paper §4.3): component-level sleep beyond the CPU — memory
// banks and disk spindles.
//
//   "Banks of memory can be turned off when not being used. Large sections
//    of storage can be turned off under appropriate file system and caching
//    scheme."
//
// One storage-heavy server over a diurnal day: the working set shrinks
// overnight (memory banks power down) and disk idle gaps stretch (spindles
// spin down). Reports the per-component daily energy with each mechanism
// toggled, plus the spin-down timeout trade-off curve.
#include <iostream>

#include "core/table.h"
#include "core/units.h"
#include "power/component_power.h"
#include "workload/diurnal.h"

using namespace epm;

namespace {

/// Working set in GB at demand level `level` (caches shrink off-peak).
double working_set_gb(double level) { return 16.0 + 40.0 * level; }

/// Mean disk idle gap at demand level `level`: busy afternoons mean short
/// gaps, quiet nights mean minute-scale gaps.
double mean_idle_gap_s(double level) { return 2.0 + 118.0 * (1.0 - level); }

}  // namespace

int main() {
  std::cout << banner(
      "Ablation (sec. 4.3): memory-bank and disk-spindle sleep, one server-day");

  const power::MemoryPowerModel memory{power::MemoryConfig{}};  // 8 x 8 GB
  const power::DiskPowerModel disk{power::DiskConfig{}};        // 4 spindles
  const workload::DiurnalModel diurnal{workload::DiurnalConfig{}};
  const double spindles = static_cast<double>(disk.config().spindles);

  double mem_always = 0.0;
  double mem_banked = 0.0;
  double disk_always = 0.0;
  double disk_timeout = 0.0;
  const double timeout = disk.competitive_timeout_s();
  for (int m = 0; m < 24 * 60; ++m) {
    const double level = diurnal.demand_at(m * minutes(1.0));
    mem_always += memory.power_w(memory.config().banks) / 60.0;
    mem_banked += memory.power_for_working_set_w(working_set_gb(level)) / 60.0;
    const double gap = mean_idle_gap_s(level);
    disk_always += spindles * disk.config().spinning_w / 60.0;
    disk_timeout += spindles * disk.expected_idle_power_w(gap, timeout) / 60.0;
  }

  Table table({"component / policy", "daily energy (Wh)", "saved"});
  table.add_row({"memory, all banks on", fmt(mem_always, 1), "0%"});
  table.add_row({"memory, working-set banking", fmt(mem_banked, 1),
                 fmt_percent(1.0 - mem_banked / mem_always, 0)});
  table.add_row({"disks, always spinning", fmt(disk_always, 1), "0%"});
  table.add_row({"disks, break-even timeout spin-down", fmt(disk_timeout, 1),
                 fmt_percent(1.0 - disk_timeout / disk_always, 0)});
  table.add_row({"both mechanisms", fmt(mem_banked + disk_timeout, 1),
                 fmt_percent(1.0 - (mem_banked + disk_timeout) /
                                       (mem_always + disk_always),
                             0)});
  std::cout << table.render();

  // Timeout sweep at the overnight operating point.
  std::cout << "\n  Spin-down timeout sweep at a quiet-hours gap profile "
               "(mean idle 90 s; break-even "
            << fmt(disk.breakeven_idle_s(), 1) << " s):\n";
  Table sweep({"timeout (s)", "idle power/spindle (W)", "vs always spinning"});
  for (double t : {0.0, 2.0, disk.breakeven_idle_s(), 30.0, 120.0, 1.0e9}) {
    const double p = disk.expected_idle_power_w(90.0, t);
    sweep.add_row({t > 1.0e8 ? "never" : fmt(t, 1), fmt(p, 2),
                   fmt_percent(1.0 - p / disk.config().spinning_w, 0)});
  }
  std::cout << sweep.render();

  std::cout << "\n  Paper: turning off unused memory banks and storage sections "
               "removes their idle power. Measured:\n"
               "  working-set banking recovers about a fifth of memory energy "
               "over the diurnal day; break-even\n"
               "  timeout spin-down recovers most disk idle energy overnight "
               "while the 2-competitive guarantee bounds\n"
               "  the worst case; shorter timeouts win for these exponential "
               "gaps, longer ones protect bursty traffic.\n";
  return 0;
}
