// EXP-V: DES-kernel throughput — calendar queue vs binary heap.
//
// Emits BENCH_kernel.json (one record per section, see kernel_bench.h) and
// exits non-zero when the calendar backend fails the relative >= 3x hold-
// model gate, so the Release CI lane enforces the kernel's perf claim on
// every build without depending on absolute machine speed.
#include <cstdio>

#include "core/cli_args.h"
#include "kernel_bench.h"

int main(int argc, char** argv) {
  epm::CliArgs args(argc, argv);
  epm::bench::KernelBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<std::int64_t>(42)));
  // --smoke: the reduced CI configuration — a 100k-client storm under a
  // loose absolute wall ceiling instead of the full 1M A/B + 10M sections,
  // so the Release lane catches order-of-magnitude regressions in the epoch
  // engine without paying the full bench on every push.
  if (args.get_switch("smoke")) {
    config.storm_clients = 100'000;
    config.storm_reps = 1;
    config.min_storm_speedup = 0.0;  // relative gate needs the full size
    config.max_storm_wall_s = 5.0;
    config.sweep_clients = 100'000;
    config.storm_10m_clients = 0;
  }

  std::printf("==== EXP-V: DES kernel throughput (seed %llu%s) ====\n",
              static_cast<unsigned long long>(config.seed),
              args.get_switch("smoke") ? ", smoke" : "");
  const auto outcome = epm::bench::run_kernel_bench(config);
  return outcome.gate_ok ? 0 : 1;
}
