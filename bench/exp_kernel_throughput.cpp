// EXP-V: DES-kernel throughput — calendar queue vs binary heap, plus the
// federated fleet A/B (see federation_bench.h).
//
// Emits BENCH_kernel.json (one record per section, see kernel_bench.h) and
// exits non-zero when the calendar backend fails the relative >= 3x hold-
// model gate or the federation fails its >= 1.8x shard-parallelism gate,
// so the Release CI lane enforces the kernel's perf claims on every build
// without depending on absolute machine speed.
#include <cstdio>

#include "core/cli_args.h"
#include "federation_bench.h"
#include "kernel_bench.h"

int main(int argc, char** argv) {
  epm::CliArgs args(argc, argv);
  epm::bench::KernelBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<std::int64_t>(42)));
  epm::bench::FederationBenchConfig fed_config;
  fed_config.seed = config.seed;
  // --smoke: the reduced CI configuration — a 100k-client storm and a
  // 40k-client fleet under loose absolute wall ceilings instead of the full
  // 1M A/B + 10M sections, so the Release lane catches order-of-magnitude
  // regressions without paying the full bench on every push.
  if (args.get_switch("smoke")) {
    config.storm_clients = 100'000;
    config.storm_reps = 1;
    config.min_storm_speedup = 0.0;  // relative gate needs the full size
    config.max_storm_wall_s = 5.0;
    config.sweep_clients = 100'000;
    config.storm_10m_clients = 0;
    fed_config.clients_per_dc = 10'000;
    fed_config.reps = 1;
    fed_config.min_federation_speedup = 0.0;  // small worlds are barrier-bound
    fed_config.max_federated_wall_s = 10.0;
  }

  std::printf("==== EXP-V: DES kernel throughput (seed %llu%s) ====\n",
              static_cast<unsigned long long>(config.seed),
              args.get_switch("smoke") ? ", smoke" : "");
  const auto outcome = epm::bench::run_kernel_bench(config);
  const auto fed_outcome = epm::bench::run_federation_bench(fed_config);
  return outcome.gate_ok && fed_outcome.gate_ok ? 0 : 1;
}
