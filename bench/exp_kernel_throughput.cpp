// EXP-V: DES-kernel throughput — calendar queue vs binary heap.
//
// Emits BENCH_kernel.json (one record per section, see kernel_bench.h) and
// exits non-zero when the calendar backend fails the relative >= 3x hold-
// model gate, so the Release CI lane enforces the kernel's perf claim on
// every build without depending on absolute machine speed.
#include <cstdio>

#include "core/cli_args.h"
#include "kernel_bench.h"

int main(int argc, char** argv) {
  epm::CliArgs args(argc, argv);
  epm::bench::KernelBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<std::int64_t>(42)));

  std::printf("==== EXP-V: DES kernel throughput (seed %llu) ====\n",
              static_cast<unsigned long long>(config.seed));
  const auto outcome = epm::bench::run_kernel_bench(config);
  return outcome.gate_ok ? 0 : 1;
}
