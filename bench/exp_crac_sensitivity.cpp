// EXP-B (paper §5.1, ref [30] Project Genome): CRAC sensitivity migration
// hazard.
//
//   "Consider now that we migrate load from servers at location A to servers
//    at location B and shut down the servers at A. The CRAC then believes
//    that there is not much heat generated in its effective zone and thus
//    increases the temperature of the cooling air... Servers at B are then
//    at risk of generating thermal alarms and shutting down."
//
// Regenerates the episode: timeline of zone temperatures and CRAC supply
// for (a) the oblivious migration, (b) the macro-coordinated migration with
// server-side cooling control, (c) an ablation with symmetric sensitivity.
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "thermal/room.h"

using namespace epm;

namespace {

constexpr double kHeatA = 27.0e3;
constexpr double kHeatB = 3.0e3;
constexpr double kHeatAfterB = 33.0e3;

struct Timeline {
  std::vector<double> zone_b;
  std::vector<double> supply;
  std::size_t alarms = 0;
  double worst_b = 0.0;
};

Timeline run(double sens_a, double sens_b, bool coordinated) {
  thermal::MachineRoom room(thermal::make_sensitivity_scenario_room(sens_a, sens_b));
  Timeline timeline;
  const double migrate_at = hours(6.0);
  const double end = hours(16.0);
  for (double t = minutes(15.0); t <= end; t += minutes(15.0)) {
    const bool migrated = t > migrate_at;
    if (coordinated && migrated && room.crac(0).supply_temp_c() > 18.0) {
      // Macro layer: same migration, but cooling is steered from real
      // per-zone heat: supply = (alarm - margin) - heat / conductance.
      const auto& zone_b_cfg = room.zone(1).config();
      const double supply =
          (zone_b_cfg.alarm_temp_c - 3.0) - kHeatAfterB / zone_b_cfg.conductance_w_per_c;
      room.set_crac_auto(0, false);
      room.crac(0).set_supply_temp_c(supply);
    }
    room.run_until(t, migrated ? std::vector<double>{0.0, kHeatAfterB}
                               : std::vector<double>{kHeatA, kHeatB});
    timeline.zone_b.push_back(room.zone(1).temperature_c());
    timeline.supply.push_back(room.crac(0).supply_temp_c());
    timeline.worst_b = std::max(timeline.worst_b, room.zone(1).temperature_c());
  }
  timeline.alarms = room.alarms().size();
  return timeline;
}

}  // namespace

int main() {
  std::cout << banner(
      "EXP-B (sec. 5.1 / ref [30]): migrate A->B under an A-sensitive CRAC");
  std::cout << "  Zones A/B share one CRAC; sensitivity 0.95/0.05. All load "
               "moves A->B at t=6h; alarm threshold 32 C.\n\n";

  const auto oblivious = run(0.95, 0.05, false);
  const auto coordinated = run(0.95, 0.05, true);
  const auto symmetric = run(0.5, 0.5, false);

  Table table({"scenario", "peak zone-B temp (C)", "final supply (C)",
               "thermal alarms"});
  table.add_row({"oblivious migration (CRAC autopilot)", fmt(oblivious.worst_b, 1),
                 fmt(oblivious.supply.back(), 1), std::to_string(oblivious.alarms)});
  table.add_row({"coordinated migration (macro cooling control)",
                 fmt(coordinated.worst_b, 1), fmt(coordinated.supply.back(), 1),
                 std::to_string(coordinated.alarms)});
  table.add_row({"ablation: symmetric sensitivity 0.5/0.5", fmt(symmetric.worst_b, 1),
                 fmt(symmetric.supply.back(), 1), std::to_string(symmetric.alarms)});
  std::cout << table.render();

  std::cout << "\n  Zone B temperature, oblivious case (migration at 6 h, alarm at 32 C):\n"
            << ascii_chart(oblivious.zone_b, 60, 8);
  std::cout << "\n  CRAC supply temperature, oblivious case:\n"
            << ascii_chart(oblivious.supply, 60, 6);
  std::cout << "\n  Zone B temperature, coordinated case:\n"
            << ascii_chart(coordinated.zone_b, 60, 8);

  std::cout << "\n  Paper: the blind CRAC raises supply air after the migration "
               "and zone B risks protective shutdown.\n"
               "  Measured: oblivious migration pushes zone B past the 32 C alarm "
               "("
            << fmt(oblivious.worst_b, 1)
            << " C peak); server-side cooling control keeps it at "
            << fmt(coordinated.worst_b, 1)
            << " C with zero alarms;\n  with symmetric sensitivity the hazard "
               "disappears, isolating asymmetric observation as the cause.\n";
  return 0;
}
