// Shared parameter-sweep harness for the bench binaries.
//
// Every sweep-style experiment has the same skeleton: a grid of
// configuration points, an expensive deterministic evaluation per point, and
// a report that walks the results in grid order. run_sweep evaluates the
// grid concurrently on a ThreadPool and returns results in input order, so
// converting a bench from a serial loop changes nothing about its output —
// only its wall clock. Thread count comes from EPM_THREADS (see
// default_thread_count) unless the caller passes one explicitly.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"

namespace epm::bench {

/// Evaluates fn(point) for every grid point concurrently; results come back
/// in grid order. When `record_as` is non-empty, appends a BenchRecord named
/// after it (items = grid points) via append_bench_record.
template <typename Point, typename Fn>
auto run_sweep(const std::vector<Point>& points, Fn&& fn,
               const std::string& record_as = {}, std::size_t threads = 0) {
  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(threads)));
  const auto start = std::chrono::steady_clock::now();
  auto results = pool.parallel_map(
      points.size(), [&](std::size_t i) { return fn(points[i]); });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  if (!record_as.empty()) {
    append_bench_record(
        {record_as, pool.thread_count(), wall.count(),
         static_cast<double>(points.size())});
  }
  return results;
}

}  // namespace epm::bench
