// Figure 3 reproduction: "The load variation, in terms of total number of
// users and the new user login rates, of Messenger services" — one week of
// the synthetic Messenger workload, normalized exactly as the paper's
// figure: connections to 1 million users and login rate to 1400 users/s.
//
// The paper's callouts to verify:
//   * "the number of users in the early afternoon is almost twice as much
//      as those after midnight"
//   * "the total demand in weekdays are higher than that in weekends"
//   * "the flash crowd effects, where a large number of users login in a
//      short period of time"
//
// Daily stats and callouts come from repro::fig3_* so the golden-regression
// tests diff exactly what this binary prints; the charts and flash-crowd
// listing use the same fixed-seed trace.
#include <iostream>

#include "core/table.h"
#include "core/units.h"
#include "repro/figures.h"
#include "workload/messenger.h"

using namespace epm;

int main() {
  std::cout << banner("Figure 3: Messenger week — connections and login rate");

  workload::MessengerConfig config;
  config.step_s = 15.0;  // the paper's counters are sampled at 15 s (§5.3)
  config.seed = 2009;
  const auto trace = workload::generate_messenger_trace(config, weeks(1.0));

  // Normalize connections to 1 million users at the weekly peak.
  const double peak_conn = trace.connections.stats().max();
  const auto conn_norm = trace.connections.scaled(1.0 / peak_conn);

  std::cout << "  Connections (normalized to 1M users), Monday..Sunday:\n";
  std::cout << ascii_chart(conn_norm.values(), 70, 8);
  std::cout << "\n  Login rate (users/second), Monday..Sunday:\n";
  std::cout << ascii_chart(trace.login_rate_per_s.values(), 70, 8);

  const char* names[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  const auto daily_stats = repro::fig3_daily_stats();
  Table daily({"day", "mean connections (M)", "peak connections (M)",
               "mean logins/s", "peak logins/s"});
  for (const auto& row : daily_stats.rows) {
    daily.add_row({names[static_cast<int>(row[0])], fmt(row[1], 3),
                   fmt(row[2], 3), fmt(row[3], 0), fmt(row[4], 0)});
  }
  std::cout << "\n" << daily.render();

  const auto shape = repro::fig3_callouts();
  Table callouts({"paper callout", "paper value", "measured"});
  callouts.add_row({"afternoon/midnight connections", "~2x",
                    fmt(shape.at(0, 0), 2) + "x"});
  callouts.add_row({"weekday/weekend demand", "> 1x",
                    fmt(shape.at(0, 1), 2) + "x"});
  callouts.add_row({"peak login rate (normalized)", "1400/s",
                    fmt(shape.at(0, 2), 0) + "/s (incl. flash crowds)"});
  callouts.add_row({"flash crowds in the week", "present",
                    fmt(shape.at(0, 3), 0) + " events"});
  std::cout << "\n" << callouts.render();

  if (!trace.flash_crowds.empty()) {
    Table crowds({"flash crowd at", "day", "login-rate multiplier"});
    for (const auto& fc : trace.flash_crowds) {
      crowds.add_row({fmt(to_hours(fc.start_s), 1) + " h",
                      names[static_cast<int>(fc.start_s / kSecondsPerDay) % 7],
                      fmt(fc.magnitude, 2) + "x"});
    }
    std::cout << "\n" << crowds.render();
  }
  return 0;
}
