// Figure 3 reproduction: "The load variation, in terms of total number of
// users and the new user login rates, of Messenger services" — one week of
// the synthetic Messenger workload, normalized exactly as the paper's
// figure: connections to 1 million users and login rate to 1400 users/s.
//
// The paper's callouts to verify:
//   * "the number of users in the early afternoon is almost twice as much
//      as those after midnight"
//   * "the total demand in weekdays are higher than that in weekends"
//   * "the flash crowd effects, where a large number of users login in a
//      short period of time"
#include <iostream>

#include "core/table.h"
#include "core/units.h"
#include "workload/messenger.h"
#include "workload/trace_io.h"

using namespace epm;

int main() {
  std::cout << banner("Figure 3: Messenger week — connections and login rate");

  workload::MessengerConfig config;
  config.step_s = 15.0;  // the paper's counters are sampled at 15 s (§5.3)
  config.seed = 2009;
  const auto trace = workload::generate_messenger_trace(config, weeks(1.0));
  const workload::DiurnalModel diurnal(config.diurnal);

  // Normalize connections to 1 million users at the weekly peak.
  const double peak_conn = trace.connections.stats().max();
  const auto conn_norm = trace.connections.scaled(1.0 / peak_conn);

  std::cout << "  Connections (normalized to 1M users), Monday..Sunday:\n";
  std::cout << ascii_chart(conn_norm.values(), 70, 8);
  std::cout << "\n  Login rate (users/second), Monday..Sunday:\n";
  std::cout << ascii_chart(trace.login_rate_per_s.values(), 70, 8);

  Table daily({"day", "mean connections (M)", "peak connections (M)",
               "mean logins/s", "peak logins/s"});
  const char* names[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (int d = 0; d < 7; ++d) {
    const auto conn = trace.connections.stats_between(days(d), days(d + 1));
    const auto login = trace.login_rate_per_s.stats_between(days(d), days(d + 1));
    daily.add_row({names[d], fmt(conn.mean() / peak_conn, 3),
                   fmt(conn.max() / peak_conn, 3), fmt(login.mean(), 0),
                   fmt(login.max(), 0)});
  }
  std::cout << "\n" << daily.render();

  const auto shape = summarize_messenger_trace(trace, diurnal);
  Table callouts({"paper callout", "paper value", "measured"});
  callouts.add_row({"afternoon/midnight connections", "~2x",
                    fmt(shape.afternoon_to_midnight_ratio, 2) + "x"});
  callouts.add_row({"weekday/weekend demand", "> 1x",
                    fmt(shape.weekday_to_weekend_ratio, 2) + "x"});
  callouts.add_row({"peak login rate (normalized)", "1400/s",
                    fmt(shape.peak_login_rate, 0) + "/s (incl. flash crowds)"});
  callouts.add_row({"flash crowds in the week", "present",
                    std::to_string(shape.flash_crowd_count) + " events"});
  std::cout << "\n" << callouts.render();

  if (!trace.flash_crowds.empty()) {
    Table crowds({"flash crowd at", "day", "login-rate multiplier"});
    for (const auto& fc : trace.flash_crowds) {
      crowds.add_row({fmt(to_hours(fc.start_s), 1) + " h",
                      names[static_cast<int>(fc.start_s / kSecondsPerDay) % 7],
                      fmt(fc.magnitude, 2) + "x"});
    }
    std::cout << "\n" << crowds.render();
  }
  return 0;
}
