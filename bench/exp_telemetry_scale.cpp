// EXP-AA (paper §5.3): the telemetry firehose on the columnar store.
//
//   "consider a 10,000 server cloud computing environment, if there are 100
//    software performance counters of interests, and each of them are
//    sampled every 15 seconds, we will expect 2.4 million data points per
//    minutes... preprocessing and indexing the data into multiple scales
//    can speed up the query significantly. At the same time, raw data out
//    of these bands can be considered as noise and be eliminated, thus
//    reducing storage requirements."
//
// Emits BENCH_telemetry.json (one record per section, see telemetry_bench.h)
// and exits non-zero when any gate fails: >= 100M points/minute ring-pipeline
// ingest, >= 8x sealed-block compression on the reference counter mix,
// bit-identical answers vs the legacy store at 1/2/8 threads, and full
// recall of injected spikes by the in-stream detector. The Release CI lane
// runs `--smoke` (reduced mix, loose throughput floor) on every push.
#include <cstdio>

#include "core/cli_args.h"
#include "telemetry_bench.h"

int main(int argc, char** argv) {
  epm::CliArgs args(argc, argv);
  epm::bench::TelemetryBenchConfig config;
  config.threads = args.threads();
  config.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<std::int64_t>(42)));
  // --smoke: the reduced CI configuration — ~5% of the full mix under a
  // loose absolute throughput floor, so the Release lane catches
  // order-of-magnitude regressions (and any correctness-gate break) without
  // paying the 10M-point run on every push.
  if (args.get_switch("smoke")) {
    config.servers = 200;
    config.counters_per_server = 25;
    config.ticks = 100;
    config.equiv_servers = 60;
    config.equiv_counters = 10;
    config.equiv_ticks = 100;
    config.min_points_per_min = 10e6;
  }

  std::printf("==== EXP-AA: sec. 5.3 telemetry firehose (seed %llu%s) ====\n",
              static_cast<unsigned long long>(config.seed),
              args.get_switch("smoke") ? ", smoke" : "");
  std::printf("  paper arithmetic: 10,000 servers x 100 counters @ 15 s = "
              "2.4M points/minute; single-node gate is %.0fM/minute\n",
              config.min_points_per_min / 1e6);
  const auto outcome = epm::bench::run_telemetry_bench(config);
  return outcome.gate_ok ? 0 : 1;
}
