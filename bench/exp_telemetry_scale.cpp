// EXP-F (paper §5.3): data management at fleet scale.
//
//   "consider a 10,000 server cloud computing environment, if there are 100
//    software performance counters of interests, and each of them are
//    sampled every 15 seconds, we will expect 2.4 million data points per
//    minutes... preprocessing and indexing the data into multiple scales
//    can speed up the query significantly. At the same time, raw data out
//    of these bands can be considered as noise and be eliminated, thus
//    reducing storage requirements."
//
// google-benchmark timings for ingest and for the paper's four query bands
// (trend / pattern / balancer correlation / anomaly), multi-scale store vs
// raw scan, plus the memory-footprint comparison the paper's storage
// argument rests on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/units.h"
#include "telemetry/anomaly.h"
#include "telemetry/multiscale.h"
#include "telemetry/store.h"

using namespace epm;
using telemetry::make_key;

namespace {

constexpr double kStep = 15.0;

/// A day of one CPU counter: diurnal + noise + occasional spikes.
std::vector<double> synthesize_day(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  const auto n = static_cast<std::size_t>(kSecondsPerDay / kStep);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double hour = static_cast<double>(i) * kStep / 3600.0;
    const double diurnal = 50.0 + 30.0 * std::sin(2.0 * 3.14159265 * (hour - 8.0) / 24.0);
    double v = diurnal + rng.normal(0.0, 3.0);
    if (rng.bernoulli(0.0005)) v += 40.0;  // rare spikes
    out.push_back(v);
  }
  return out;
}

const std::vector<double>& shared_day() {
  static const std::vector<double> day = synthesize_day(1);
  return day;
}

void BM_IngestMultiScale(benchmark::State& state) {
  const auto& day = shared_day();
  for (auto _ : state) {
    telemetry::MultiScaleSeries series;
    for (std::size_t i = 0; i < day.size(); ++i) {
      series.append(static_cast<double>(i) * kStep, day[i]);
    }
    benchmark::DoNotOptimize(series.total_samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(day.size()));
}
BENCHMARK(BM_IngestMultiScale);

void BM_IngestRaw(benchmark::State& state) {
  const auto& day = shared_day();
  for (auto _ : state) {
    telemetry::RawStore raw;
    for (std::size_t i = 0; i < day.size(); ++i) {
      raw.append(make_key(0, 0), static_cast<double>(i) * kStep, day[i]);
    }
    benchmark::DoNotOptimize(raw.total_samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(day.size()));
}
BENCHMARK(BM_IngestRaw);

/// Query benchmarks run against `days` of pre-ingested data.
struct QueryFixture {
  telemetry::MultiScaleSeries series;
  telemetry::RawStore raw;
  double horizon_s = 0.0;

  explicit QueryFixture(int days) {
    for (int d = 0; d < days; ++d) {
      const auto day = synthesize_day(static_cast<std::uint64_t>(d + 1));
      for (std::size_t i = 0; i < day.size(); ++i) {
        const double t = d * kSecondsPerDay + static_cast<double>(i) * kStep;
        series.append(t, day[i]);
        raw.append(make_key(0, 0), t, day[i]);
      }
    }
    horizon_s = days * kSecondsPerDay;
  }
};

QueryFixture& fixture() {
  static QueryFixture f(14);  // two weeks of one counter
  return f;
}

void BM_TrendQueryMultiScale(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto agg = f.series.range(0.0, f.horizon_s);
    benchmark::DoNotOptimize(agg.mean());
  }
}
BENCHMARK(BM_TrendQueryMultiScale);

void BM_TrendQueryRawScan(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto stats = f.raw.range(make_key(0, 0), 0.0, f.horizon_s);
    benchmark::DoNotOptimize(stats.mean);
  }
}
BENCHMARK(BM_TrendQueryRawScan);

void BM_RecentWindowMultiScale(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto agg = f.series.range(f.horizon_s - 3600.0, f.horizon_s);
    benchmark::DoNotOptimize(agg.max);
  }
}
BENCHMARK(BM_RecentWindowMultiScale);

void BM_RecentWindowRawScan(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto stats = f.raw.range(make_key(0, 0), f.horizon_s - 3600.0, f.horizon_s);
    benchmark::DoNotOptimize(stats.max);
  }
}
BENCHMARK(BM_RecentWindowRawScan);

/// A slice of the §5.3 firehose: `servers` x `counters` sampled every 15 s
/// for `steps` ticks, in arrival (time-major) order. Values are a diurnal
/// base plus per-sample hash noise, so generation is cheap and the batch is
/// identical however it is later ingested.
std::vector<telemetry::Sample> synthesize_fleet(std::uint32_t servers,
                                                std::uint32_t counters,
                                                std::size_t steps) {
  std::vector<telemetry::Sample> samples;
  samples.reserve(static_cast<std::size_t>(servers) * counters * steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * kStep;
    const double hour = t / 3600.0;
    const double diurnal = 50.0 + 30.0 * std::sin(2.0 * 3.14159265 * (hour - 8.0) / 24.0);
    for (std::uint32_t s = 0; s < servers; ++s) {
      for (std::uint32_t c = 0; c < counters; ++c) {
        const auto key = make_key(s, c);
        SplitMix64 hash(key ^ (static_cast<std::uint64_t>(i) << 24));
        const double noise =
            6.0 * (static_cast<double>(hash.next() >> 11) * 0x1.0p-53 - 0.5);
        samples.push_back({key, t, diurnal + noise});
      }
    }
  }
  return samples;
}

/// Ingests the batch with `threads` workers and returns the wall time.
double timed_bulk_ingest(telemetry::TelemetryStore& store,
                         const std::vector<telemetry::Sample>& samples,
                         std::size_t threads) {
  const auto start = std::chrono::steady_clock::now();
  store.bulk_append(samples, threads);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  return wall.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n==== EXP-F (sec. 5.3): telemetry at fleet scale ====\n";

  // The paper's arithmetic, reproduced exactly.
  const double servers = 10000.0;
  const double counters = 100.0;
  const double per_minute = servers * counters * (60.0 / kStep);
  std::cout << "  10,000 servers x 100 counters @ 15 s = " << fmt_si(per_minute, 1)
            << " points/minute (paper: 2.4 million)\n\n";

  // Storage comparison for a representative slice of the fleet (full fleet
  // would be ~1M series; per-series costs scale linearly).
  {
    QueryFixture f(14);
    const double raw_mb = static_cast<double>(f.raw.memory_bytes()) / 1e6;
    const double ms_mb = static_cast<double>(f.series.memory_bytes()) / 1e6;
    std::cout << "  Two weeks of one counter @ 15 s: raw " << fmt(raw_mb, 2)
              << " MB vs multi-scale " << fmt(ms_mb, 3) << " MB ("
              << fmt(raw_mb / ms_mb, 0) << "x smaller after band retention)\n";
    std::cout << "  Fleet-scale projection (1M counters): raw "
              << fmt(raw_mb * 1e6 / 1e6, 0) << " TB/2wk vs multi-scale "
              << fmt(ms_mb * 1e6 / 1e6, 1) << " TB retained\n\n";

    // Band queries still answer correctly from the pyramid.
    const auto trend = f.series.range(0.0, f.horizon_s);
    const auto raw_trend = f.raw.range(make_key(0, 0), 0.0, f.horizon_s);
    std::cout << "  Trend query agreement: multi-scale mean " << fmt(trend.mean(), 3)
              << " vs raw-scan mean " << fmt(raw_trend.mean, 3) << "\n\n";
  }

  // Sharded parallel ingest of a fleet slice (96 servers x 25 counters,
  // two hours @ 15 s = 1.15M points — half a paper-minute of the full
  // firehose). The parallel path must be bit-identical to one thread.
  {
    const std::uint32_t servers_in_slice = 96;
    const std::uint32_t counters_per_server = 25;
    const std::size_t steps = 480;  // two hours at 15 s
    const auto samples =
        synthesize_fleet(servers_in_slice, counters_per_server, steps);
    const std::size_t threads = default_thread_count();

    telemetry::TelemetryStore serial_store;
    telemetry::TelemetryStore parallel_store;
    const double serial_s = timed_bulk_ingest(serial_store, samples, 1);
    const double parallel_s = timed_bulk_ingest(parallel_store, samples, threads);

    bool identical = serial_store.total_samples() == parallel_store.total_samples() &&
                     serial_store.series_count() == parallel_store.series_count();
    for (std::uint32_t s = 0; s < servers_in_slice && identical; s += 7) {
      const auto key = make_key(s, s % counters_per_server);
      const auto a = serial_store.series(key).range(0.0, steps * kStep);
      const auto b = parallel_store.series(key).range(0.0, steps * kStep);
      identical = a.count == b.count && a.sum == b.sum && a.min == b.min &&
                  a.max == b.max;
    }

    const double rate = parallel_s > 0.0
                            ? static_cast<double>(samples.size()) / parallel_s
                            : 0.0;
    std::cout << "  Sharded bulk ingest, " << fmt_si(static_cast<double>(samples.size()), 2)
              << " points (" << servers_in_slice << " servers x "
              << counters_per_server << " counters, 2 h):\n"
              << "    1 thread:  " << fmt(serial_s * 1e3, 0) << " ms\n    "
              << threads << " thread" << (threads == 1 ? "" : "s") << ": "
              << fmt(parallel_s * 1e3, 0) << " ms  ("
              << fmt(serial_s / std::max(parallel_s, 1e-12), 2) << "x, "
              << fmt_si(rate, 2) << " points/s)\n"
              << "    results bit-identical across thread counts: "
              << (identical ? "yes" : "NO — BUG") << "\n\n";

    bench::append_bench_record({"telemetry_bulk_ingest", 1, serial_s,
                                static_cast<double>(samples.size())});
    bench::append_bench_record({"telemetry_bulk_ingest", threads, parallel_s,
                                static_cast<double>(samples.size())});
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
