// EXP-F (paper §5.3): data management at fleet scale.
//
//   "consider a 10,000 server cloud computing environment, if there are 100
//    software performance counters of interests, and each of them are
//    sampled every 15 seconds, we will expect 2.4 million data points per
//    minutes... preprocessing and indexing the data into multiple scales
//    can speed up the query significantly. At the same time, raw data out
//    of these bands can be considered as noise and be eliminated, thus
//    reducing storage requirements."
//
// google-benchmark timings for ingest and for the paper's four query bands
// (trend / pattern / balancer correlation / anomaly), multi-scale store vs
// raw scan, plus the memory-footprint comparison the paper's storage
// argument rests on.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/rng.h"
#include "core/table.h"
#include "core/units.h"
#include "telemetry/anomaly.h"
#include "telemetry/multiscale.h"
#include "telemetry/store.h"

using namespace epm;
using telemetry::make_key;

namespace {

constexpr double kStep = 15.0;

/// A day of one CPU counter: diurnal + noise + occasional spikes.
std::vector<double> synthesize_day(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  const auto n = static_cast<std::size_t>(kSecondsPerDay / kStep);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double hour = static_cast<double>(i) * kStep / 3600.0;
    const double diurnal = 50.0 + 30.0 * std::sin(2.0 * 3.14159265 * (hour - 8.0) / 24.0);
    double v = diurnal + rng.normal(0.0, 3.0);
    if (rng.bernoulli(0.0005)) v += 40.0;  // rare spikes
    out.push_back(v);
  }
  return out;
}

const std::vector<double>& shared_day() {
  static const std::vector<double> day = synthesize_day(1);
  return day;
}

void BM_IngestMultiScale(benchmark::State& state) {
  const auto& day = shared_day();
  for (auto _ : state) {
    telemetry::MultiScaleSeries series;
    for (std::size_t i = 0; i < day.size(); ++i) {
      series.append(static_cast<double>(i) * kStep, day[i]);
    }
    benchmark::DoNotOptimize(series.total_samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(day.size()));
}
BENCHMARK(BM_IngestMultiScale);

void BM_IngestRaw(benchmark::State& state) {
  const auto& day = shared_day();
  for (auto _ : state) {
    telemetry::RawStore raw;
    for (std::size_t i = 0; i < day.size(); ++i) {
      raw.append(make_key(0, 0), static_cast<double>(i) * kStep, day[i]);
    }
    benchmark::DoNotOptimize(raw.total_samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(day.size()));
}
BENCHMARK(BM_IngestRaw);

/// Query benchmarks run against `days` of pre-ingested data.
struct QueryFixture {
  telemetry::MultiScaleSeries series;
  telemetry::RawStore raw;
  double horizon_s = 0.0;

  explicit QueryFixture(int days) {
    for (int d = 0; d < days; ++d) {
      const auto day = synthesize_day(static_cast<std::uint64_t>(d + 1));
      for (std::size_t i = 0; i < day.size(); ++i) {
        const double t = d * kSecondsPerDay + static_cast<double>(i) * kStep;
        series.append(t, day[i]);
        raw.append(make_key(0, 0), t, day[i]);
      }
    }
    horizon_s = days * kSecondsPerDay;
  }
};

QueryFixture& fixture() {
  static QueryFixture f(14);  // two weeks of one counter
  return f;
}

void BM_TrendQueryMultiScale(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto agg = f.series.range(0.0, f.horizon_s);
    benchmark::DoNotOptimize(agg.mean());
  }
}
BENCHMARK(BM_TrendQueryMultiScale);

void BM_TrendQueryRawScan(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto stats = f.raw.range(make_key(0, 0), 0.0, f.horizon_s);
    benchmark::DoNotOptimize(stats.mean);
  }
}
BENCHMARK(BM_TrendQueryRawScan);

void BM_RecentWindowMultiScale(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto agg = f.series.range(f.horizon_s - 3600.0, f.horizon_s);
    benchmark::DoNotOptimize(agg.max);
  }
}
BENCHMARK(BM_RecentWindowMultiScale);

void BM_RecentWindowRawScan(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    const auto stats = f.raw.range(make_key(0, 0), f.horizon_s - 3600.0, f.horizon_s);
    benchmark::DoNotOptimize(stats.max);
  }
}
BENCHMARK(BM_RecentWindowRawScan);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n==== EXP-F (sec. 5.3): telemetry at fleet scale ====\n";

  // The paper's arithmetic, reproduced exactly.
  const double servers = 10000.0;
  const double counters = 100.0;
  const double per_minute = servers * counters * (60.0 / kStep);
  std::cout << "  10,000 servers x 100 counters @ 15 s = " << fmt_si(per_minute, 1)
            << " points/minute (paper: 2.4 million)\n\n";

  // Storage comparison for a representative slice of the fleet (full fleet
  // would be ~1M series; per-series costs scale linearly).
  {
    QueryFixture f(14);
    const double raw_mb = static_cast<double>(f.raw.memory_bytes()) / 1e6;
    const double ms_mb = static_cast<double>(f.series.memory_bytes()) / 1e6;
    std::cout << "  Two weeks of one counter @ 15 s: raw " << fmt(raw_mb, 2)
              << " MB vs multi-scale " << fmt(ms_mb, 3) << " MB ("
              << fmt(raw_mb / ms_mb, 0) << "x smaller after band retention)\n";
    std::cout << "  Fleet-scale projection (1M counters): raw "
              << fmt(raw_mb * 1e6 / 1e6, 0) << " TB/2wk vs multi-scale "
              << fmt(ms_mb * 1e6 / 1e6, 1) << " TB retained\n\n";

    // Band queries still answer correctly from the pyramid.
    const auto trend = f.series.range(0.0, f.horizon_s);
    const auto raw_trend = f.raw.range(make_key(0, 0), 0.0, f.horizon_s);
    std::cout << "  Trend query agreement: multi-scale mean " << fmt(trend.mean(), 3)
              << " vs raw-scan mean " << fmt(raw_trend.mean, 3) << "\n\n";
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
