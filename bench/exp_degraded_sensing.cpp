// Extension experiment (EXP-T): control under degraded observability.
//
// The paper calls the sensing plane of a data center huge, noisy, and
// unreliable (§5.3) — yet every macro-management decision in §3.2 consumes
// it. This experiment degrades the reference facility's sensing (dropout,
// stuck-at, extra noise) and actuation (silently failing commands) at
// escalating intensity and compares two controller builds on identical
// hardware, demand, and fault schedules:
//
//   naive    — trusts the first raw reading, fire-and-forget actuation;
//   hardened — median-votes redundant sensors, range/rate/stuck-at gates
//              with last-known-good fallback, widens safety margins with
//              estimate age, and retries failed commands under bounded
//              exponential backoff.
//
// The gate requires the hardened arm to weakly dominate the naive arm on
// BOTH SLA-violation epochs and thermal alarms at every intensity, and the
// runtime invariant monitor (energy conservation, served <= offered,
// temperature bounds, PUE floor) to stay clean on every run.
//
// Emits one BENCH_sensing.json record per swept point (set EPM_BENCH_REPORT
// to redirect).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "faults/fault_plan.h"
#include "sensing/scenario.h"
#include "sweep_runner.h"

using namespace epm;

namespace {

struct Point {
  double intensity = 0.0;
  bool hardened = false;
};

std::string sensing_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_sensing.json";
}

void append_sensing_record(const Point& point,
                           const sensing::DegradedScenarioOutcome& out) {
  const std::string path = sensing_report_path();
  if (path == "-") return;
  std::ofstream file(path, std::ios::app);
  if (!file) return;
  file << "{\"name\":\"degraded_sensing\",\"intensity\":" << point.intensity
       << ",\"hardened\":" << (point.hardened ? "true" : "false")
       << ",\"offered\":" << out.offered_requests
       << ",\"served\":" << out.served_requests
       << ",\"dropped\":" << out.dropped_requests
       << ",\"sla_violation_epochs\":" << out.sla_violation_epochs
       << ",\"thermal_alarms\":" << out.thermal_alarms
       << ",\"max_zone_c\":" << out.max_zone_temp_c
       << ",\"max_estimate_age_s\":" << out.max_estimate_age_s
       << ",\"sensor_dropped\":" << out.sensor_dropped
       << ",\"sensor_stuck\":" << out.sensor_stuck
       << ",\"estimator_fallbacks\":" << out.estimator_fallbacks
       << ",\"commands_failed\":" << out.commands_failed
       << ",\"command_retries\":" << out.command_retries
       << ",\"it_kwh\":" << out.it_energy_kwh
       << ",\"faults\":" << out.faults_injected
       << ",\"conserved\":" << (out.faults_conserved ? "true" : "false")
       << ",\"invariants_ok\":" << (out.invariants_ok ? "true" : "false")
       << "}\n";
}

}  // namespace

int main() {
  std::cout << banner("EXP-T: control under degraded observability");

  const std::vector<double> intensities = {0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<Point> grid;
  for (const double intensity : intensities) {
    grid.push_back({intensity, false});
    grid.push_back({intensity, true});
  }

  const auto results = bench::run_sweep(
      grid,
      [&](const Point& point) {
        sensing::DegradedScenarioConfig config;
        config.hardened = point.hardened;
        const faults::FaultPlan plan = sensing::make_sensing_fault_plan(
            point.intensity, config.horizon_s, config.seed + 17,
            /*service_count=*/2);
        return sensing::run_degraded_scenario(config, plan);
      },
      "degraded_sensing_sweep");

  Table table({"intensity", "arm", "faults", "served", "SLA viol", "alarms",
               "max zone", "stale max", "retries", "failed"});
  bool dominated = true;
  bool invariants_clean = true;
  bool conserved = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& out = results[i];
    append_sensing_record(grid[i], out);
    table.add_row({fmt(grid[i].intensity, 1),
                   grid[i].hardened ? "hardened" : "naive",
                   std::to_string(out.faults_injected),
                   fmt_percent(out.served_fraction(), 2),
                   std::to_string(out.sla_violation_epochs),
                   std::to_string(out.thermal_alarms),
                   fmt(out.max_zone_temp_c, 1) + " C",
                   fmt(out.max_estimate_age_s, 0) + " s",
                   std::to_string(out.command_retries),
                   std::to_string(out.commands_failed)});
    if (!out.invariants_ok) {
      invariants_clean = false;
      std::cout << "  INVARIANT VIOLATIONS (intensity " << grid[i].intensity
                << ", " << (grid[i].hardened ? "hardened" : "naive") << "):\n"
                << out.invariant_report << "\n";
    }
    if (!out.faults_conserved) conserved = false;
    if (grid[i].hardened) {
      const auto& naive = results[i - 1];
      if (out.sla_violation_epochs > naive.sla_violation_epochs ||
          out.thermal_alarms > naive.thermal_alarms) {
        dominated = false;
      }
    }
  }
  std::cout << table.render();

  std::cout << "\n  Hardened weakly dominates naive (SLA violations AND "
               "thermal alarms, every intensity): "
            << (dominated ? "yes" : "NO") << "\n";
  std::cout << "  Invariant monitor clean on every run: "
            << (invariants_clean ? "yes" : "NO")
            << "; fault onset/clear conservation: " << (conserved ? "yes" : "NO")
            << "\n";
  std::cout
      << "  Paper: the sensing plane is 'huge, noisy, and unreliable' (§5.3), "
         "yet every §3.2 decision consumes it.\n  Measured: the naive "
         "controller chases stuck trough-level demand into SLA debt and lets "
         "failed CRAC\n  commands cook the hot zone; validation + staleness-"
         "widened margins + retry/backoff hold both lines\n  at every fault "
         "intensity.\n";
  return (dominated && invariants_clean && conserved) ? 0 : 1;
}
