// Extension experiment (paper §3.2): how do different tiers scale when user
// demand increases or decreases?
//
// A three-tier service (web -> app -> storage) with per-tier fan-out and
// service demands is sized across a demand sweep, jointly over fleet sizes,
// P-states, and the split of the end-to-end latency budget. Shows that the
// tiers scale non-proportionally and that optimizing the budget split beats
// splitting the SLA equally.
#include <iostream>

#include "core/table.h"
#include "macro/tiers.h"

using namespace epm;

namespace {

macro::TieredServiceSpec service() {
  macro::TieredServiceSpec spec;
  macro::TierSpec web;
  web.name = "web";
  web.fanout = 1.0;
  web.service_demand_s = 0.002;
  macro::TierSpec app;
  app.name = "app";
  app.fanout = 2.0;
  app.service_demand_s = 0.005;
  macro::TierSpec db;
  db.name = "db";
  db.fanout = 4.0;
  db.service_demand_s = 0.001;
  spec.tiers = {web, app, db};
  spec.end_to_end_sla_s = 0.06;
  return spec;
}

}  // namespace

int main() {
  std::cout << banner(
      "Extension (sec. 3.2): tier scaling under a 60 ms end-to-end SLA");
  std::cout << "  web (1x fan-out, 2 ms), app (2x, 5 ms), storage (4x, 1 ms); "
               "joint fleet x P-state x budget split.\n\n";

  const auto spec = service();

  Table table({"external rps", "web n@P", "app n@P", "db n@P", "budget split (ms)",
               "end-to-end (ms)", "power (kW)", "equal-split power", "saved"});
  for (double rate : {250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    const auto opt = macro::size_tiers(spec, rate);
    const auto equal = macro::size_tiers_equal_split(spec, rate);
    if (!opt.feasible) continue;
    auto np = [&](std::size_t i) {
      return std::to_string(opt.tiers[i].servers) + "@P" +
             std::to_string(opt.tiers[i].pstate);
    };
    const std::string split = fmt(opt.tiers[0].latency_budget_s * 1e3, 0) + "/" +
                              fmt(opt.tiers[1].latency_budget_s * 1e3, 0) + "/" +
                              fmt(opt.tiers[2].latency_budget_s * 1e3, 0);
    table.add_row(
        {fmt(rate, 0), np(0), np(1), np(2), split,
         fmt(opt.end_to_end_response_s * 1e3, 1), fmt(opt.total_power_w / 1e3, 2),
         equal.feasible ? fmt(equal.total_power_w / 1e3, 2) : "infeasible",
         equal.feasible
             ? fmt_percent(1.0 - opt.total_power_w / equal.total_power_w, 1)
             : "-"});
  }
  std::cout << table.render();

  // Scaling ratios: servers per 1000 external rps at low vs high demand.
  const auto low = macro::size_tiers(spec, 500.0);
  const auto high = macro::size_tiers(spec, 8000.0);
  if (low.feasible && high.feasible) {
    Table ratios({"tier", "servers @500 rps", "servers @8000 rps",
                  "scale factor (demand x16)"});
    const char* names[] = {"web", "app", "db"};
    for (std::size_t i = 0; i < 3; ++i) {
      ratios.add_row({names[i], std::to_string(low.tiers[i].servers),
                      std::to_string(high.tiers[i].servers),
                      fmt(static_cast<double>(high.tiers[i].servers) /
                              static_cast<double>(low.tiers[i].servers),
                          1) + "x"});
    }
    std::cout << "\n" << ratios.render();
  }

  std::cout << "\n  Paper: macro management must know 'how do different tiers "
               "scale when user demands increase or\n"
               "  decrease'. Measured: tiers scale at different rates (small "
               "fleets carry fixed queueing overheads), the\n"
               "  optimizer hands most of the latency budget to the heavy app "
               "tier, and budget-split optimization beats\n"
               "  the equal split most at low demand where P-state choices "
               "differ across tiers.\n";
  return 0;
}
