// Federation throughput bench, shared by bench/exp_kernel_throughput and
// `epmctl federation`.
//
// One measured scenario: the reference multi-datacenter retry-storm fleet
// (faults::run_fleet_storm) executed A/B on both fabrics —
//
//   kernel_federation_single   every datacenter on ONE kernel, run serially
//   kernel_federation          the same world sharded one-datacenter-per-
//                              shard on sim::ShardedSimulator, windows
//                              executed by the worker pool
//
// The two arms run the identical FleetStormConfig and must produce the
// bit-identical FleetStormOutcome (fleet_storm_outcomes_equal) — a fast
// federation that diverges from the single-kernel ground truth fails the
// gate. The perf verdict is relative, interleaved best-of-N, so it does not
// depend on machine speed: the federated arm must beat the single kernel by
// `min_federation_speedup` at the configured shard count. The speedup gate
// arms only when the machine has at least `shards` hardware threads — on a
// smaller box a parallel speedup is not defined, so the ratio is reported
// but only bit-equality (and any wall ceiling) is enforced.
//
// The client populations run with internal threads pinned to 1 in BOTH
// arms, so the A/B isolates exactly the parallelism the federation claims:
// sharding the world by datacenter and overlapping the per-shard windows.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "bench_report.h"
#include "core/parallel.h"
#include "faults/fleet_storm.h"
#include "sim/fabric.h"
#include "sim/sharded_simulator.h"

namespace epm::bench {

struct FederationBenchConfig {
  /// World size: `dcs` datacenters of `clients_per_dc` clients each. The
  /// defaults make the headline 4-DC x 1M-client fleet.
  std::size_t dcs = 4;
  std::size_t clients_per_dc = 250'000;
  /// Federated arm decomposition; dcs % shards must be 0.
  std::size_t shards = 4;
  std::size_t threads = 4;
  /// A/B repetitions (best-of-N wall time, interleaved).
  std::size_t reps = 3;
  std::uint64_t seed = 42;
  /// Federated arm must beat the single kernel by this factor; 0 disables
  /// the relative gate (smoke mode — small worlds are barrier-dominated).
  double min_federation_speedup = 1.8;
  /// Absolute ceiling on the federated arm's wall time; 0 = no ceiling.
  double max_federated_wall_s = 0.0;
};

struct FederationBenchOutcome {
  double single_wall_s = 0.0;
  double federated_wall_s = 0.0;
  double speedup = 0.0;
  double single_aps = 0.0;     ///< fleet attempts/sec, single kernel
  double federated_aps = 0.0;  ///< fleet attempts/sec, federation
  std::uint64_t attempts = 0;  ///< fleet attempts per run (both arms equal)
  std::uint64_t forwarded = 0; ///< cross-datacenter forwards per run
  /// Both fabrics must agree bit-for-bit; a mismatch fails the gate.
  bool outcomes_match = true;
  bool gate_ok = false;
};

namespace detail {

inline std::uint64_t fleet_attempts(const faults::FleetStormOutcome& out) {
  std::uint64_t total = 0;
  for (const auto& dc : out.dcs) total += dc.attempts;
  return total;
}

inline double fed_now_wall_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace detail

inline FederationBenchOutcome run_federation_bench(
    const FederationBenchConfig& config) {
  ::setenv("EPM_BENCH_REPORT", "BENCH_kernel.json", /*overwrite=*/0);
  FederationBenchOutcome out;

  faults::FleetStormConfig storm = faults::make_reference_fleet_storm_config(
      config.dcs, config.clients_per_dc, config.seed);
  // Pin the populations' internal parallelism (see file comment): the only
  // difference between the arms is the fabric.
  storm.clients.threads = 1;
  const network::InterDcNetwork net = faults::make_fleet_network(storm);

  // Interleaved best-of-N: the minimum wall per arm measures unhindered
  // speed and keeps the A/B ratio stable on a loaded machine.
  double single_wall = 0.0;
  double fed_wall = 0.0;
  faults::FleetStormOutcome single_out;
  faults::FleetStormOutcome fed_out;
  for (std::size_t rep = 0; rep < config.reps; ++rep) {
    double t0 = detail::fed_now_wall_s();
    {
      sim::SingleKernelFabric fabric(storm.sites.size());
      single_out = faults::run_fleet_storm(storm, fabric);
    }
    const double single = detail::fed_now_wall_s() - t0;
    single_wall = rep == 0 ? single : std::min(single_wall, single);

    t0 = detail::fed_now_wall_s();
    {
      sim::ShardedSimulator fed(
          faults::make_fleet_sharded_config(net, config.shards,
                                            config.threads));
      sim::ShardedFabric fabric(fed);
      fed_out = faults::run_fleet_storm(storm, fabric);
    }
    const double fed = detail::fed_now_wall_s() - t0;
    fed_wall = rep == 0 ? fed : std::min(fed_wall, fed);
  }

  out.single_wall_s = single_wall;
  out.federated_wall_s = fed_wall;
  out.attempts = detail::fleet_attempts(single_out);
  out.forwarded = single_out.forwarded;
  out.single_aps = static_cast<double>(out.attempts) / single_wall;
  out.federated_aps = static_cast<double>(out.attempts) / fed_wall;
  out.speedup = out.single_aps > 0.0 ? out.federated_aps / out.single_aps : 0.0;
  out.outcomes_match = faults::fleet_storm_outcomes_equal(single_out, fed_out);

  append_bench_record({"kernel_federation_single", 1, single_wall,
                       static_cast<double>(out.attempts)});
  append_bench_record({"kernel_federation", config.threads, fed_wall,
                       static_cast<double>(out.attempts)});
  std::printf("  fleet single     %10.0f attempts/s (1 kernel, %zu DCs x %zu clients)\n",
              out.single_aps, config.dcs, config.clients_per_dc);
  std::printf("  fleet federated  %10.0f attempts/s (%zu shards, %zu threads, %llu forwards)\n",
              out.federated_aps, config.shards, config.threads,
              static_cast<unsigned long long>(out.forwarded));
  if (!out.outcomes_match) {
    std::printf("  fleet federated  FABRIC MISMATCH: federated outcome diverged "
                "from the single kernel\n");
  }

  bool gate_ok = out.outcomes_match;
  if (config.min_federation_speedup > 0.0) {
    const std::size_t hw = default_thread_count();
    if (hw >= config.shards) {
      const bool pass = out.speedup >= config.min_federation_speedup;
      gate_ok = gate_ok && pass;
      std::printf("  federation speedup %7.2fx vs single kernel (gate: >= %.1fx) %s\n",
                  out.speedup, config.min_federation_speedup,
                  pass ? "PASS" : "FAIL");
    } else {
      std::printf("  federation speedup %7.2fx vs single kernel (gate skipped: "
                  "%zu hardware thread%s < %zu shards)\n",
                  out.speedup, hw, hw == 1 ? "" : "s", config.shards);
    }
  }
  if (config.max_federated_wall_s > 0.0) {
    const bool pass = out.federated_wall_s <= config.max_federated_wall_s;
    gate_ok = gate_ok && pass;
    std::printf("  federated wall   %9.2fs (ceiling: <= %.1fs) %s\n",
                out.federated_wall_s, config.max_federated_wall_s,
                pass ? "PASS" : "FAIL");
  }
  out.gate_ok = gate_ok;
  return out;
}

}  // namespace epm::bench
