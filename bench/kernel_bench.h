// DES-kernel throughput microbench, shared by bench/exp_kernel_throughput
// and `epmctl kernelbench`.
//
// Measured sections (events/sec each, appended to BENCH_kernel.json):
//
//   kernel_schedule_fire      schedule N one-shots, drain them — with
//                             --threads independent simulator instances in
//                             parallel
//   kernel_schedule_cancel    schedule N, cancel every other one, drain
//   kernel_periodic           P periodic timers swept over a long horizon
//   kernel_hold_*             the classic hold model (pop one, push one at
//                             now + Exp(1), steady queue size), run A/B on
//                             the calendar-queue and binary-heap backends
//   kernel_client_sweep       the raw vectorized client-population sweep:
//                             collect / serve-batch / expire epochs over
//                             `sweep_clients` clients (client-visits/sec)
//   kernel_retry_storm_1m     the end-to-end retry-storm slice on the epoch
//                             engine, interleaved best-of-N A/B against
//                             kernel_retry_storm_1m_legacy (the PR 5
//                             heap-population path)
//   kernel_retry_storm_10m    the full 10M-client storm slice on the epoch
//                             engine, single shot, gated on absolute wall
//
// The pass/fail gates are *relative* where possible: the calendar backend
// must beat the binary heap by `min_hold_speedup` on the hold model, and
// the epoch engine must beat the legacy heap engine by `min_storm_speedup`
// on the same storm config inside the same run, so those verdicts do not
// depend on machine speed. The 10M section is the one absolute claim
// (single-digit seconds on a single node) and is gated on
// `max_storm_10m_wall_s`.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "faults/retry_storm.h"
#include "sim/simulator.h"

namespace epm::bench {

struct KernelBenchConfig {
  std::size_t threads = 1;
  std::uint64_t seed = 42;
  double min_hold_speedup = 3.0;
  /// Hold-model resident queue size and hold operations per backend. The
  /// resident set is deliberately large (the paper's "millions of users"
  /// regime): the binary heap pays O(log n) cache-missing sift passes per
  /// hold there, while the calendar queue stays O(1).
  std::size_t hold_resident = 1 << 21;
  std::size_t hold_ops = 1 << 21;
  /// Hold-model repetitions per backend (best-of-N wall time, interleaved).
  std::size_t hold_reps = 3;
  /// One-shot events per schedule-fire/cancel section (per thread).
  std::size_t oneshot_events = 1 << 20;
  /// Periodic timers and firings for the periodic section.
  std::size_t periodic_timers = 1 << 12;
  std::size_t periodic_firings = 1 << 20;
  /// Clients in the retry-storm A/B slice; 0 skips the section (tests).
  std::size_t storm_clients = 1'000'000;
  /// Retry-storm A/B repetitions (best-of-N wall time, interleaved).
  std::size_t storm_reps = 3;
  /// Epoch engine must beat the legacy heap engine by this factor on the
  /// A/B storm; 0 disables the relative gate (smoke mode).
  double min_storm_speedup = 3.0;
  /// Absolute ceiling on the A/B storm's epoch-engine wall time; 0 = no
  /// ceiling. Used by the CI smoke (reduced population, loose ceiling).
  double max_storm_wall_s = 0.0;
  /// Clients in the raw sweep section; 0 skips.
  std::size_t sweep_clients = 1'000'000;
  std::size_t sweep_epochs = 20;
  /// Clients in the big single-shot storm; 0 skips.
  std::size_t storm_10m_clients = 10'000'000;
  /// Absolute wall-clock gate for the big storm; 0 = report only.
  double max_storm_10m_wall_s = 10.0;
};

struct KernelBenchOutcome {
  double hold_calendar_eps = 0.0;  ///< hold-model events/sec, calendar queue
  double hold_heap_eps = 0.0;      ///< hold-model events/sec, binary heap
  double hold_speedup = 0.0;
  double storm_engine_aps = 0.0;  ///< A/B storm attempts/sec, epoch engine
  double storm_legacy_aps = 0.0;  ///< A/B storm attempts/sec, heap engine
  double storm_speedup = 0.0;
  double storm_wall_s = 0.0;  ///< best epoch-engine wall on the A/B storm
  /// The two engines must agree bit-for-bit on the A/B storm; a mismatch
  /// fails the gate (a fast wrong engine is worthless).
  bool storm_outcomes_match = true;
  double storm_10m_wall_s = 0.0;
  double storm_10m_aps = 0.0;
  bool gate_ok = false;
};

namespace detail {

inline double now_wall_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

inline double exp_draw(SplitMix64& rng) {
  const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  return -std::log1p(-u);
}

/// Self-perpetuating hold event: firing draws Exp(1) and schedules its own
/// successor, so the queue holds `resident` events at all times. 24-byte
/// capture: inline for EventFn, heap-boxed by the baseline's std::function.
template <typename Sim>
struct HoldEvent {
  Sim* sim;
  SplitMix64* rng;
  std::size_t* remaining;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    sim->schedule_at(sim->now() + exp_draw(*rng), HoldEvent{*this});
  }
};

/// The retry-storm slice used by the A/B and 10M sections: capacity scaled
/// with the population (20k reference clients -> 1000 rps) so the slice
/// exercises a loaded-but-stable service at any size.
inline faults::RetryStormConfig make_bench_storm_config(std::size_t clients,
                                                        std::uint64_t seed) {
  faults::RetryStormConfig storm;
  storm.clients.clients = clients;
  storm.clients.seed = seed;
  storm.horizon_s = 30.0;
  storm.epoch_s = 1.0;
  storm.outage_start_s = 10.0;
  storm.outage_duration_s = 5.0;
  storm.recovery_window_epochs = 2;
  const double scale = static_cast<double>(clients) / 20000.0;
  storm.service_capacity_rps = 1000.0 * scale;
  storm.batch_rps = 300.0 * scale;
  storm.naive_queue_capacity = static_cast<std::size_t>(120000.0 * scale);
  return storm;
}

/// The engines must agree on every client-visible total; a fast wrong
/// engine must fail the bench, not pass it.
inline bool storm_outcomes_equal(const faults::RetryStormOutcome& a,
                                 const faults::RetryStormOutcome& b) {
  return a.attempts == b.attempts && a.intents == b.intents &&
         a.retries == b.retries && a.served_fresh == b.served_fresh &&
         a.served_stale == b.served_stale && a.timed_out == b.timed_out &&
         a.abandoned == b.abandoned && a.dark_failures == b.dark_failures &&
         a.max_queue_depth == b.max_queue_depth;
}

template <typename Sim>
double hold_model_wall_s(std::size_t resident, std::size_t ops,
                         std::uint64_t seed, std::size_t* fired_out) {
  Sim sim;
  SplitMix64 rng(seed);
  std::size_t remaining = ops;
  for (std::size_t i = 0; i < resident; ++i) {
    sim.schedule_at(exp_draw(rng),
                    HoldEvent<Sim>{&sim, &rng, &remaining});
  }
  const double t0 = now_wall_s();
  std::size_t fired = 0;
  while (sim.step()) ++fired;
  const double wall = now_wall_s() - t0;
  if (fired_out != nullptr) *fired_out = fired;
  return wall;
}

}  // namespace detail

inline KernelBenchOutcome run_kernel_bench(const KernelBenchConfig& config) {
  // Default the report to BENCH_kernel.json unless the caller already chose
  // a destination (or suppressed it with "-").
  ::setenv("EPM_BENCH_REPORT", "BENCH_kernel.json", /*overwrite=*/0);
  KernelBenchOutcome out;

  // -- schedule-fire, one independent simulator instance per thread --------
  {
    ThreadPool pool(resolve_thread_count(
        static_cast<std::int64_t>(config.threads)));
    std::vector<std::size_t> fired(config.threads, 0);
    const double t0 = detail::now_wall_s();
    pool.parallel_for(config.threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        sim::Simulator sim;
        SplitMix64 rng(config.seed + i);
        std::size_t count = 0;
        for (std::size_t e = 0; e < config.oneshot_events; ++e) {
          sim.schedule_at(detail::exp_draw(rng) * 100.0,
                          [&count] { ++count; });
        }
        sim.run_all();
        fired[i] = count;
      }
    });
    const double wall = detail::now_wall_s() - t0;
    double items = 0.0;
    for (const std::size_t f : fired) items += static_cast<double>(f);
    append_bench_record({"kernel_schedule_fire", config.threads, wall, items});
    std::printf("  schedule-fire    %10.0f events/s (%zu thread%s)\n",
                items / wall, config.threads, config.threads == 1 ? "" : "s");
  }

  // -- schedule-cancel -----------------------------------------------------
  {
    sim::Simulator sim;
    SplitMix64 rng(config.seed);
    std::vector<sim::EventHandle> handles;
    handles.reserve(config.oneshot_events);
    std::size_t count = 0;
    const double t0 = detail::now_wall_s();
    for (std::size_t e = 0; e < config.oneshot_events; ++e) {
      handles.push_back(sim.schedule_at(detail::exp_draw(rng) * 100.0,
                                        [&count] { ++count; }));
    }
    for (std::size_t e = 0; e < handles.size(); e += 2) sim.cancel(handles[e]);
    sim.run_all();
    const double wall = detail::now_wall_s() - t0;
    const auto items = static_cast<double>(config.oneshot_events);
    append_bench_record({"kernel_schedule_cancel", 1, wall, items});
    std::printf("  schedule-cancel  %10.0f events/s (half cancelled)\n",
                items / wall);
  }

  // -- periodic ------------------------------------------------------------
  {
    sim::Simulator sim;
    SplitMix64 rng(config.seed);
    std::size_t count = 0;
    for (std::size_t p = 0; p < config.periodic_timers; ++p) {
      sim.schedule_periodic(detail::exp_draw(rng), 0.5 + detail::exp_draw(rng),
                            [&count] { ++count; });
    }
    const double t0 = detail::now_wall_s();
    while (count < config.periodic_firings && sim.step()) {
    }
    const double wall = detail::now_wall_s() - t0;
    append_bench_record({"kernel_periodic", 1, wall,
                         static_cast<double>(count)});
    std::printf("  periodic         %10.0f events/s (%zu timers)\n",
                static_cast<double>(count) / wall, config.periodic_timers);
  }

  // -- hold model, calendar vs binary heap (the gate) ----------------------
  {
    // Interleaved best-of-N: both hold runs are DRAM-resident at this size,
    // so a noisy co-tenant can slow either arm by 2x. The minimum wall time
    // per backend measures unhindered kernel speed and keeps the A/B ratio
    // stable across loaded machines.
    std::size_t fired = 0;
    double cal_wall = 0.0;
    double heap_wall = 0.0;
    for (int rep = 0; rep < static_cast<int>(config.hold_reps); ++rep) {
      const double cal = detail::hold_model_wall_s<sim::CalendarSimulator>(
          config.hold_resident, config.hold_ops, config.seed, &fired);
      cal_wall = rep == 0 ? cal : std::min(cal_wall, cal);
      const double heap = detail::hold_model_wall_s<sim::HeapSimulator>(
          config.hold_resident, config.hold_ops, config.seed, &fired);
      heap_wall = rep == 0 ? heap : std::min(heap_wall, heap);
    }
    out.hold_calendar_eps = static_cast<double>(fired) / cal_wall;
    append_bench_record({"kernel_hold_calendar", 1, cal_wall,
                         static_cast<double>(fired)});
    out.hold_heap_eps = static_cast<double>(fired) / heap_wall;
    append_bench_record({"kernel_hold_heap", 1, heap_wall,
                         static_cast<double>(fired)});

    out.hold_speedup = out.hold_calendar_eps / out.hold_heap_eps;
    std::printf("  hold calendar    %10.0f events/s (%zu resident)\n",
                out.hold_calendar_eps, config.hold_resident);
    std::printf("  hold binary-heap %10.0f events/s\n", out.hold_heap_eps);
  }

  // -- raw client sweep ----------------------------------------------------
  if (config.sweep_clients > 0) {
    workload::ClientPopulationConfig pop_config;
    pop_config.clients = config.sweep_clients;
    pop_config.seed = config.seed;
    pop_config.threads = config.threads;
    workload::ClientPopulation pop(pop_config);
    const double t0 = detail::now_wall_s();
    for (std::size_t e = 0; e < config.sweep_epochs; ++e) {
      const double t = static_cast<double>(e);
      const auto& due = pop.collect_due(t, 1.0);
      pop.on_served_batch(due.data(), due.size(), t + 1.0);
      pop.expire_timeouts(t + 1.0);
    }
    const double wall = detail::now_wall_s() - t0;
    const auto items = static_cast<double>(config.sweep_clients) *
                       static_cast<double>(config.sweep_epochs);
    append_bench_record({"kernel_client_sweep", config.threads, wall, items});
    std::printf("  client sweep     %10.0f client-visits/s (%zu clients, %zu epochs)\n",
                items / wall, config.sweep_clients, config.sweep_epochs);
  }

  // -- retry-storm A/B: epoch engine vs PR 5 heap engine -------------------
  if (config.storm_clients > 0) {
    const auto storm =
        detail::make_bench_storm_config(config.storm_clients, config.seed);
    // Interleaved best-of-N, same reasoning as the hold A/B: the minimum
    // wall per engine keeps the ratio stable on a loaded machine.
    double engine_wall = 0.0;
    double legacy_wall = 0.0;
    faults::RetryStormOutcome engine_out;
    faults::RetryStormOutcome legacy_out;
    for (std::size_t rep = 0; rep < config.storm_reps; ++rep) {
      double t0 = detail::now_wall_s();
      engine_out = faults::run_retry_storm(storm);
      const double engine = detail::now_wall_s() - t0;
      engine_wall = rep == 0 ? engine : std::min(engine_wall, engine);
      t0 = detail::now_wall_s();
      legacy_out = faults::run_retry_storm_legacy(storm);
      const double legacy = detail::now_wall_s() - t0;
      legacy_wall = rep == 0 ? legacy : std::min(legacy_wall, legacy);
    }
    out.storm_wall_s = engine_wall;
    out.storm_engine_aps =
        static_cast<double>(engine_out.attempts) / engine_wall;
    out.storm_legacy_aps =
        static_cast<double>(legacy_out.attempts) / legacy_wall;
    out.storm_speedup = out.storm_engine_aps / out.storm_legacy_aps;
    out.storm_outcomes_match = detail::storm_outcomes_equal(engine_out,
                                                            legacy_out);
    append_bench_record({"kernel_retry_storm_1m", 1, engine_wall,
                         static_cast<double>(engine_out.attempts)});
    append_bench_record({"kernel_retry_storm_1m_legacy", 1, legacy_wall,
                         static_cast<double>(legacy_out.attempts)});
    std::printf("  retry-storm      %10.0f attempts/s epoch engine (%llu attempts, %zu clients)\n",
                out.storm_engine_aps,
                static_cast<unsigned long long>(engine_out.attempts),
                config.storm_clients);
    std::printf("  retry-storm      %10.0f attempts/s legacy heap engine\n",
                out.storm_legacy_aps);
    if (!out.storm_outcomes_match) {
      std::printf("  retry-storm      ENGINE MISMATCH: epoch and legacy outcomes differ\n");
    }
  }

  // -- 10M-client storm (the absolute single-node claim) -------------------
  if (config.storm_10m_clients > 0) {
    const auto storm = detail::make_bench_storm_config(
        config.storm_10m_clients, config.seed);
    const double t0 = detail::now_wall_s();
    const auto outcome = faults::run_retry_storm(storm);
    out.storm_10m_wall_s = detail::now_wall_s() - t0;
    const auto items = static_cast<double>(outcome.attempts);
    out.storm_10m_aps = items / out.storm_10m_wall_s;
    append_bench_record({"kernel_retry_storm_10m", 1, out.storm_10m_wall_s,
                         items});
    std::printf("  retry-storm 10M  %10.0f attempts/s (%llu attempts, %.2f s wall)\n",
                out.storm_10m_aps,
                static_cast<unsigned long long>(outcome.attempts),
                out.storm_10m_wall_s);
  }

  bool gate_ok = out.hold_speedup >= config.min_hold_speedup;
  std::printf("  hold speedup     %9.2fx calendar vs heap (gate: >= %.1fx) %s\n",
              out.hold_speedup, config.min_hold_speedup,
              out.hold_speedup >= config.min_hold_speedup ? "PASS" : "FAIL");
  if (config.storm_clients > 0) {
    gate_ok = gate_ok && out.storm_outcomes_match;
    if (config.min_storm_speedup > 0.0) {
      const bool pass = out.storm_speedup >= config.min_storm_speedup;
      gate_ok = gate_ok && pass;
      std::printf("  storm speedup    %9.2fx epoch vs legacy engine (gate: >= %.1fx) %s\n",
                  out.storm_speedup, config.min_storm_speedup,
                  pass ? "PASS" : "FAIL");
    }
    if (config.max_storm_wall_s > 0.0) {
      const bool pass = out.storm_wall_s <= config.max_storm_wall_s;
      gate_ok = gate_ok && pass;
      std::printf("  storm wall       %9.2fs (ceiling: <= %.1fs) %s\n",
                  out.storm_wall_s, config.max_storm_wall_s,
                  pass ? "PASS" : "FAIL");
    }
  }
  if (config.storm_10m_clients > 0 && config.max_storm_10m_wall_s > 0.0) {
    const bool pass = out.storm_10m_wall_s <= config.max_storm_10m_wall_s;
    gate_ok = gate_ok && pass;
    std::printf("  10M storm wall   %9.2fs (ceiling: <= %.1fs) %s\n",
                out.storm_10m_wall_s, config.max_storm_10m_wall_s,
                pass ? "PASS" : "FAIL");
  }
  out.gate_ok = gate_ok;
  return out;
}

}  // namespace epm::bench
