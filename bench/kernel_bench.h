// DES-kernel throughput microbench, shared by bench/exp_kernel_throughput
// and `epmctl kernelbench`.
//
// Five measured sections (events/sec each, appended to BENCH_kernel.json):
//
//   kernel_schedule_fire   schedule N one-shots, drain them — with --threads
//                          independent simulator instances in parallel
//   kernel_schedule_cancel schedule N, cancel every other one, drain
//   kernel_periodic        P periodic timers swept over a long horizon
//   kernel_hold_*          the classic hold model (pop one, push one at
//                          now + Exp(1), steady queue size), run A/B on the
//                          calendar-queue and binary-heap backends
//   kernel_retry_storm_1m  a 1M-client retry-storm slice (SoA population +
//                          batch completion scheduling, end to end)
//
// The pass/fail gate is *relative*: the calendar backend must beat the
// binary-heap backend by `min_hold_speedup` on the hold model inside the
// same run, so the verdict does not depend on machine speed.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_report.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "faults/retry_storm.h"
#include "sim/simulator.h"

namespace epm::bench {

struct KernelBenchConfig {
  std::size_t threads = 1;
  std::uint64_t seed = 42;
  double min_hold_speedup = 3.0;
  /// Hold-model resident queue size and hold operations per backend. The
  /// resident set is deliberately large (the paper's "millions of users"
  /// regime): the binary heap pays O(log n) cache-missing sift passes per
  /// hold there, while the calendar queue stays O(1).
  std::size_t hold_resident = 1 << 21;
  std::size_t hold_ops = 1 << 21;
  /// Hold-model repetitions per backend (best-of-N wall time, interleaved).
  std::size_t hold_reps = 3;
  /// One-shot events per schedule-fire/cancel section (per thread).
  std::size_t oneshot_events = 1 << 20;
  /// Periodic timers and firings for the periodic section.
  std::size_t periodic_timers = 1 << 12;
  std::size_t periodic_firings = 1 << 20;
  /// Clients in the retry-storm slice; 0 skips the section (tests).
  std::size_t storm_clients = 1'000'000;
};

struct KernelBenchOutcome {
  double hold_calendar_eps = 0.0;  ///< hold-model events/sec, calendar queue
  double hold_heap_eps = 0.0;      ///< hold-model events/sec, binary heap
  double hold_speedup = 0.0;
  bool gate_ok = false;
};

namespace detail {

inline double now_wall_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

inline double exp_draw(SplitMix64& rng) {
  const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  return -std::log1p(-u);
}

/// Self-perpetuating hold event: firing draws Exp(1) and schedules its own
/// successor, so the queue holds `resident` events at all times. 24-byte
/// capture: inline for EventFn, heap-boxed by the baseline's std::function.
template <typename Sim>
struct HoldEvent {
  Sim* sim;
  SplitMix64* rng;
  std::size_t* remaining;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    sim->schedule_at(sim->now() + exp_draw(*rng), HoldEvent{*this});
  }
};

template <typename Sim>
double hold_model_wall_s(std::size_t resident, std::size_t ops,
                         std::uint64_t seed, std::size_t* fired_out) {
  Sim sim;
  SplitMix64 rng(seed);
  std::size_t remaining = ops;
  for (std::size_t i = 0; i < resident; ++i) {
    sim.schedule_at(exp_draw(rng),
                    HoldEvent<Sim>{&sim, &rng, &remaining});
  }
  const double t0 = now_wall_s();
  std::size_t fired = 0;
  while (sim.step()) ++fired;
  const double wall = now_wall_s() - t0;
  if (fired_out != nullptr) *fired_out = fired;
  return wall;
}

}  // namespace detail

inline KernelBenchOutcome run_kernel_bench(const KernelBenchConfig& config) {
  // Default the report to BENCH_kernel.json unless the caller already chose
  // a destination (or suppressed it with "-").
  ::setenv("EPM_BENCH_REPORT", "BENCH_kernel.json", /*overwrite=*/0);
  KernelBenchOutcome out;

  // -- schedule-fire, one independent simulator instance per thread --------
  {
    ThreadPool pool(resolve_thread_count(
        static_cast<std::int64_t>(config.threads)));
    std::vector<std::size_t> fired(config.threads, 0);
    const double t0 = detail::now_wall_s();
    pool.parallel_for(config.threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        sim::Simulator sim;
        SplitMix64 rng(config.seed + i);
        std::size_t count = 0;
        for (std::size_t e = 0; e < config.oneshot_events; ++e) {
          sim.schedule_at(detail::exp_draw(rng) * 100.0,
                          [&count] { ++count; });
        }
        sim.run_all();
        fired[i] = count;
      }
    });
    const double wall = detail::now_wall_s() - t0;
    double items = 0.0;
    for (const std::size_t f : fired) items += static_cast<double>(f);
    append_bench_record({"kernel_schedule_fire", config.threads, wall, items});
    std::printf("  schedule-fire    %10.0f events/s (%zu thread%s)\n",
                items / wall, config.threads, config.threads == 1 ? "" : "s");
  }

  // -- schedule-cancel -----------------------------------------------------
  {
    sim::Simulator sim;
    SplitMix64 rng(config.seed);
    std::vector<sim::EventHandle> handles;
    handles.reserve(config.oneshot_events);
    std::size_t count = 0;
    const double t0 = detail::now_wall_s();
    for (std::size_t e = 0; e < config.oneshot_events; ++e) {
      handles.push_back(sim.schedule_at(detail::exp_draw(rng) * 100.0,
                                        [&count] { ++count; }));
    }
    for (std::size_t e = 0; e < handles.size(); e += 2) sim.cancel(handles[e]);
    sim.run_all();
    const double wall = detail::now_wall_s() - t0;
    const auto items = static_cast<double>(config.oneshot_events);
    append_bench_record({"kernel_schedule_cancel", 1, wall, items});
    std::printf("  schedule-cancel  %10.0f events/s (half cancelled)\n",
                items / wall);
  }

  // -- periodic ------------------------------------------------------------
  {
    sim::Simulator sim;
    SplitMix64 rng(config.seed);
    std::size_t count = 0;
    for (std::size_t p = 0; p < config.periodic_timers; ++p) {
      sim.schedule_periodic(detail::exp_draw(rng), 0.5 + detail::exp_draw(rng),
                            [&count] { ++count; });
    }
    const double t0 = detail::now_wall_s();
    while (count < config.periodic_firings && sim.step()) {
    }
    const double wall = detail::now_wall_s() - t0;
    append_bench_record({"kernel_periodic", 1, wall,
                         static_cast<double>(count)});
    std::printf("  periodic         %10.0f events/s (%zu timers)\n",
                static_cast<double>(count) / wall, config.periodic_timers);
  }

  // -- hold model, calendar vs binary heap (the gate) ----------------------
  {
    // Interleaved best-of-N: both hold runs are DRAM-resident at this size,
    // so a noisy co-tenant can slow either arm by 2x. The minimum wall time
    // per backend measures unhindered kernel speed and keeps the A/B ratio
    // stable across loaded machines.
    std::size_t fired = 0;
    double cal_wall = 0.0;
    double heap_wall = 0.0;
    for (int rep = 0; rep < static_cast<int>(config.hold_reps); ++rep) {
      const double cal = detail::hold_model_wall_s<sim::CalendarSimulator>(
          config.hold_resident, config.hold_ops, config.seed, &fired);
      cal_wall = rep == 0 ? cal : std::min(cal_wall, cal);
      const double heap = detail::hold_model_wall_s<sim::HeapSimulator>(
          config.hold_resident, config.hold_ops, config.seed, &fired);
      heap_wall = rep == 0 ? heap : std::min(heap_wall, heap);
    }
    out.hold_calendar_eps = static_cast<double>(fired) / cal_wall;
    append_bench_record({"kernel_hold_calendar", 1, cal_wall,
                         static_cast<double>(fired)});
    out.hold_heap_eps = static_cast<double>(fired) / heap_wall;
    append_bench_record({"kernel_hold_heap", 1, heap_wall,
                         static_cast<double>(fired)});

    out.hold_speedup = out.hold_calendar_eps / out.hold_heap_eps;
    std::printf("  hold calendar    %10.0f events/s (%zu resident)\n",
                out.hold_calendar_eps, config.hold_resident);
    std::printf("  hold binary-heap %10.0f events/s\n", out.hold_heap_eps);
  }

  // -- 1M-client retry-storm slice -----------------------------------------
  if (config.storm_clients > 0) {
    faults::RetryStormConfig storm;
    storm.clients.clients = config.storm_clients;
    storm.clients.seed = config.seed;
    storm.horizon_s = 30.0;
    storm.epoch_s = 1.0;
    storm.outage_start_s = 10.0;
    storm.outage_duration_s = 5.0;
    storm.recovery_window_epochs = 2;
    // Scale capacity with the population (20k reference clients -> 1000 rps)
    // so the slice exercises a loaded-but-stable service.
    const double scale =
        static_cast<double>(config.storm_clients) / 20000.0;
    storm.service_capacity_rps = 1000.0 * scale;
    storm.batch_rps = 300.0 * scale;
    storm.naive_queue_capacity = static_cast<std::size_t>(120000.0 * scale);
    const double t0 = detail::now_wall_s();
    const auto outcome = faults::run_retry_storm(storm);
    const double wall = detail::now_wall_s() - t0;
    const auto items = static_cast<double>(outcome.attempts);
    append_bench_record({"kernel_retry_storm_1m", 1, wall, items});
    std::printf("  retry-storm 1M   %10.0f attempts/s (%llu attempts)\n",
                items / wall,
                static_cast<unsigned long long>(outcome.attempts));
  }

  out.gate_ok = out.hold_speedup >= config.min_hold_speedup;
  std::printf("  hold speedup     %9.2fx calendar vs heap (gate: >= %.1fx) %s\n",
              out.hold_speedup, config.min_hold_speedup,
              out.gate_ok ? "PASS" : "FAIL");
  return out;
}

}  // namespace epm::bench
