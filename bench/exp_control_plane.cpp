// Extension experiment (EXP-Z): survivable-control-plane drills.
//
// Four gated drills from the control-plane chaos harness
// (faults/control_chaos.h), exercising macro/control_plane (leases,
// journals) and sensing/fencing (token ledgers, dead-man switches):
//
//   * leader-kill — the lease leader dies permanently while the eco-exit
//     transition is half-issued and demand is about to double. The
//     defended arm (per-DC replicas, journal replay, actuator fencing)
//     must hold >= 99% of pre-fault goodput with zero thermal alarms and
//     zero SLA violations at EVERY swept fleet size; the naive arm (one
//     controller, no defenses) must violate at every one. The dcs=4
//     sweep additionally runs the WAN-partition variant: DC 0 is cut off
//     through the failover window and must trip its dead-man safe state
//     before the demand ramp.
//   * split-brain — the leader hangs through a follower takeover and
//     wakes with a stale lease. Every stale actuation must be fenced
//     (zero double actuations fleet-wide) and the imposter must step
//     down on first contact with a higher-token heartbeat.
//   * conformance — the leader-kill world must be bit-identical across
//     shards {1, 2, 4} x threads {1, 2, 8}.
//   * restore — a run snapshotted mid-failover (after the kill, before
//     the successor's claim) and restored into a fresh federation must
//     finish bit-identical to the uninterrupted run, at 1 and 8 threads.
//
// Emits one BENCH_controlplane.json record per drill (set
// EPM_BENCH_REPORT to redirect); the checked-in copy is the reference
// run the CI smoke lane compares against.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/table.h"
#include "faults/control_chaos.h"

using namespace epm;

namespace {

std::string report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_controlplane.json";
}

std::ofstream open_report() {
  const std::string path = report_path();
  if (path == "-") return {};
  return std::ofstream(path, std::ios::app);
}

void append_provenance(std::ofstream& file) {
  file << ",\"git_commit\":\"" << bench::detail::git_commit()
       << "\",\"cpu_model\":\"" << bench::detail::cpu_model() << "\"}\n";
}

struct ArmTotals {
  std::uint64_t fenced = 0;
  std::uint64_t doubles = 0;
  std::uint64_t safe_trips = 0;
};

ArmTotals totals_of(const faults::ControlChaosOutcome& out) {
  ArmTotals t;
  for (const faults::ControlDcOutcome& dc : out.dcs) {
    t.fenced += dc.fencing_rejections;
    t.doubles += dc.double_actuations;
    t.safe_trips += dc.safe_state_trips;
  }
  return t;
}

void append_kill_record(std::size_t dcs, bool partition,
                        const std::string& arm_name,
                        const faults::ControlLeaderKillReport& rep,
                        const faults::ControlChaosOutcome& arm) {
  auto file = open_report();
  if (!file) return;
  const ArmTotals t = totals_of(arm);
  file << "{\"name\":\"controlplane_leader_kill\",\"dcs\":" << dcs
       << ",\"partition\":" << (partition ? "true" : "false") << ",\"arm\":\""
       << arm_name << "\",\"threshold\":" << rep.goodput_threshold
       << ",\"prefault_frac\":" << arm.fleet_prefault_frac
       << ",\"end_frac\":" << arm.fleet_end_frac
       << ",\"sla_violations\":" << arm.total_sla_violations
       << ",\"alarms\":" << arm.total_alarms
       << ",\"fencing_rejections\":" << t.fenced
       << ",\"double_actuations\":" << t.doubles
       << ",\"safe_state_trips\":" << t.safe_trips
       << ",\"lease_unique\":" << (arm.lease_unique_ok ? "true" : "false")
       << ",\"gate_ok\":" << (rep.gate_ok ? "true" : "false");
  append_provenance(file);
}

void append_split_brain_record(std::size_t dcs,
                               const faults::ControlSplitBrainReport& rep) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"controlplane_split_brain\",\"dcs\":" << dcs
       << ",\"stale_fenced\":" << rep.stale_fenced
       << ",\"double_actuations\":" << rep.double_actuations
       << ",\"deposed\":" << (rep.stale_leader_deposed ? "true" : "false")
       << ",\"passed\":" << (rep.passed ? "true" : "false");
  append_provenance(file);
}

void append_conformance_record(std::size_t runs, bool identical) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"controlplane_conformance\",\"runs\":" << runs
       << ",\"identical\":" << (identical ? "true" : "false");
  append_provenance(file);
}

void append_restore_record(std::size_t threads,
                           const faults::ControlRestoreReport& rep) {
  auto file = open_report();
  if (!file) return;
  file << "{\"name\":\"controlplane_restore_equivalence\",\"threads\":"
       << threads << ",\"snapshot_bytes\":" << rep.snapshot_bytes
       << ",\"identical\":" << (rep.identical ? "true" : "false");
  append_provenance(file);
}

}  // namespace

int main() {
  std::cout << banner("EXP-Z: survivable control plane");
  bool gate_ok = true;

  // Drill 1: kill-the-leader across fleet sizes, plus the partition
  // variant at the reference size.
  Table kill_table({"dcs", "partition", "arm", "prefault", "end", "SLA viol",
                    "alarms", "fenced", "doubles", "safe trips"});
  const auto run_kill = [&](std::size_t dcs, bool partition) {
    const auto rep = faults::run_leader_kill_drill(dcs, /*threads=*/2,
                                                   /*seed=*/7, partition);
    for (const bool defended : {true, false}) {
      const auto& arm = defended ? rep.defended : rep.naive;
      const char* name = defended ? "defended" : "naive";
      append_kill_record(dcs, partition, name, rep, arm);
      const ArmTotals t = totals_of(arm);
      kill_table.add_row(
          {std::to_string(dcs), partition ? "yes" : "no", name,
           fmt_percent(arm.fleet_prefault_frac, 1),
           fmt_percent(arm.fleet_end_frac, 1),
           std::to_string(arm.total_sla_violations),
           std::to_string(arm.total_alarms), std::to_string(t.fenced),
           std::to_string(t.doubles), std::to_string(t.safe_trips)});
    }
    if (!rep.gate_ok) {
      gate_ok = false;
      std::cout << "  LEADER-KILL GATE FAILED at dcs=" << dcs
                << (partition ? " (partition)" : "")
                << " (defended end=" << fmt(rep.defended.fleet_end_frac, 4)
                << ", naive end=" << fmt(rep.naive.fleet_end_frac, 4)
                << ", threshold=" << fmt(rep.goodput_threshold, 2) << ")\n";
    }
    if (partition && rep.defended.dcs[0].safe_state_trips == 0) {
      gate_ok = false;
      std::cout << "  DEAD-MAN GATE FAILED: partitioned DC 0 never reverted "
                   "to safe state\n";
    }
    return rep;
  };
  for (const std::size_t dcs : {std::size_t{4}, std::size_t{6}}) {
    run_kill(dcs, /*partition=*/false);
  }
  run_kill(4, /*partition=*/true);
  std::cout << kill_table.render();

  // Drill 2: split-brain fencing.
  const auto sb = faults::run_split_brain_drill(/*dcs=*/4, /*threads=*/2,
                                                /*seed=*/7);
  append_split_brain_record(4, sb);
  std::cout << "  split-brain: " << sb.stale_fenced
            << " stale actuations fenced, " << sb.double_actuations
            << " double actuations, imposter "
            << (sb.stale_leader_deposed ? "deposed" : "STILL LEADING") << "\n";
  if (!sb.passed) {
    gate_ok = false;
    std::cout << "  SPLIT-BRAIN GATE FAILED:\n" << sb.outcome.report << "\n";
  }

  // Drill 3: shard/thread conformance of the leader-kill world.
  faults::ControlChaosConfig base;
  base.controller_faults = faults::make_leader_kill_plan();
  faults::ControlChaosConfig serial = base;
  serial.shards = 1;
  const auto reference = faults::run_control_plane(serial);
  bool identical = reference.lease_unique_ok && reference.fencing_clean;
  std::size_t runs = 1;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      faults::ControlChaosConfig c = base;
      c.shards = shards;
      c.threads = threads;
      const auto out = faults::run_control_plane(c);
      ++runs;
      if (!faults::control_outcomes_equal(reference, out)) {
        identical = false;
        std::cout << "  CONFORMANCE DIVERGED at shards=" << shards
                  << " threads=" << threads << "\n";
      }
    }
  }
  append_conformance_record(runs, identical);
  std::cout << "  conformance: " << runs
            << " runs across shards {1,2,4} x threads {1,2,8}, "
            << (identical ? "all bit-identical" : "DIVERGED") << "\n";
  if (!identical) gate_ok = false;

  // Drill 4: mid-failover snapshot/restore equivalence.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    faults::ControlChaosConfig c = base;
    c.threads = threads;
    const auto rep = faults::run_control_plane_with_restore(
        c, /*snapshot_at_s=*/14.0, /*kill_at_s=*/16.5);
    append_restore_record(threads, rep);
    std::cout << "  restore (" << threads << " thread"
              << (threads == 1 ? "" : "s") << "): snapshot "
              << rep.snapshot_bytes << " bytes, continuation "
              << (rep.identical ? "bit-identical" : "DIVERGED") << "\n";
    if (!rep.identical) gate_ok = false;
  }

  std::cout << "\n  Control-plane gates (defended >= 99% goodput with zero "
               "alarms while naive violates,\n  zero double actuations, "
               "bit-identical conformance and restore): "
            << (gate_ok ? "all pass" : "FAILED") << "\n";
  std::cout
      << "  Paper: elastic power management concentrates authority in a "
         "controller that turns\n  capacity off on purpose (SS4) — losing "
         "that controller mid-transition is the new\n  single point of "
         "failure. Measured: lease failover with journal replay finishes "
         "the\n  half-issued transition before the demand ramp, fencing "
         "tokens make a deposed leader\n  harmless, and a partitioned "
         "datacenter's dead-man switch reverts it to safe state.\n";
  return gate_ok ? 0 : 1;
}
