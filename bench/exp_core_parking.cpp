// Ablation (paper §4.1 + §4.3): DVFS vs core parking vs both, on one CMP.
//
//   "using the transistor and energy budget on additional cores is more
//    likely to yield higher performance" (§4.1)
//   "Core parking is a technique to selectively turn off cores to reduce
//    CPU power consumption." (§4.3)
//
// For a package with a realistic uncore floor, sweeps the offered load and
// reports the package power of four strategies: race-to-idle-less baseline
// (all cores, full speed), DVFS only, core parking only, and the joint
// optimum over (active cores x P-state). Then integrates a diurnal day.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "power/core_parking.h"
#include "workload/diurnal.h"

using namespace epm;

namespace {

constexpr std::size_t kPStates = 5;

/// Frequency fraction of P-state p (1.0 .. 0.5) and the cubic busy-power
/// scaling used throughout the library.
double freq_fraction(std::size_t p) {
  return 1.0 - 0.5 * static_cast<double>(p) / static_cast<double>(kPStates - 1);
}

/// Package power for `active` cores at P-state `p` serving `load` capacity
/// units (<= active capacity * freq fraction). Busy power scales ~ f^3 above
/// idle; capacity scales ~ f.
double package_power(const power::CmpPowerModel& model, std::size_t active,
                     std::size_t p, double load) {
  const auto& cls = model.config().classes[0];
  const double f = freq_fraction(p);
  const double cap = static_cast<double>(active) * cls.capacity_weight * f;
  if (cap + 1e-12 < load) return std::numeric_limits<double>::infinity();
  const double u = cap > 0.0 ? load / cap : 0.0;
  const double busy_at_f =
      cls.idle_power_w + (cls.busy_power_w - cls.idle_power_w) * f * f * f;
  const auto parked = static_cast<double>(cls.count - active);
  return model.config().uncore_power_w + parked * cls.parked_power_w +
         static_cast<double>(active) *
             (cls.idle_power_w + (busy_at_f - cls.idle_power_w) * u);
}

struct Strategy {
  const char* name;
  // Returns (power) for a given load in capacity units.
  double (*power)(const power::CmpPowerModel&, double);
};

double baseline_power(const power::CmpPowerModel& model, double load) {
  return package_power(model, model.config().classes[0].count, 0, load);
}

double dvfs_power(const power::CmpPowerModel& model, double load) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < kPStates; ++p) {
    best = std::min(best,
                    package_power(model, model.config().classes[0].count, p, load));
  }
  return best;
}

double parking_power(const power::CmpPowerModel& model, double load) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t n = 1; n <= model.config().classes[0].count; ++n) {
    best = std::min(best, package_power(model, n, 0, load));
  }
  return best;
}

double joint_power(const power::CmpPowerModel& model, double load) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t n = 1; n <= model.config().classes[0].count; ++n) {
    for (std::size_t p = 0; p < kPStates; ++p) {
      best = std::min(best, package_power(model, n, p, load));
    }
  }
  return best;
}

}  // namespace

int main() {
  std::cout << banner(
      "Ablation (sec. 4.1/4.3): DVFS vs core parking vs joint, one 8-core CMP");

  power::CmpPowerModel model{power::CmpConfig{}};
  const double max_cap = model.max_capacity();

  const Strategy strategies[] = {{"all cores @ P0 (baseline)", baseline_power},
                                 {"DVFS only", dvfs_power},
                                 {"core parking only", parking_power},
                                 {"joint (cores x P-state)", joint_power}};

  Table table({"load", "baseline (W)", "DVFS (W)", "parking (W)", "joint (W)",
               "joint saves"});
  for (double frac : {0.05, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}) {
    const double load = frac * max_cap;
    std::vector<double> watts;
    for (const auto& s : strategies) watts.push_back(s.power(model, load));
    table.add_row({fmt_percent(frac, 0), fmt(watts[0], 1), fmt(watts[1], 1),
                   fmt(watts[2], 1), fmt(watts[3], 1),
                   fmt_percent(1.0 - watts[3] / watts[0], 0)});
  }
  std::cout << table.render();

  // Daily energy under the standard diurnal curve, peak load = 90% capacity.
  const workload::DiurnalModel diurnal{workload::DiurnalConfig{}};
  Table day({"strategy", "daily package energy (Wh)", "saved vs baseline"});
  std::vector<double> daily(4, 0.0);
  for (int m = 0; m < 24 * 60; ++m) {
    const double load = 0.9 * max_cap * diurnal.demand_at(m * minutes(1.0));
    for (std::size_t s = 0; s < 4; ++s) {
      daily[s] += strategies[s].power(model, load) / 60.0;
    }
  }
  for (std::size_t s = 0; s < 4; ++s) {
    day.add_row({strategies[s].name, fmt(daily[s], 0),
                 fmt_percent(1.0 - daily[s] / daily[0], 1)});
  }
  std::cout << "\n" << day.render();

  std::cout << "\n  Paper: multi-core shifts the trade-off toward thread-level "
               "parallelism (Sec. 4.1), and parking idle\n"
               "  cores removes their idle power (Sec. 4.3). Measured: DVFS "
               "alone helps at mid loads (cubic savings) but\n"
               "  cannot touch idle cores; parking alone strands the uncore at "
               "high frequency; the joint policy wins\n"
               "  everywhere, with the biggest margins at light load where "
               "both levers stack.\n";
  return 0;
}
