// EXP-C (paper §3.1): oversubscription of power capacity.
//
//   "The host oversells its services to the extent that if every subscriber
//    uses the services at the same time, the capacity will be exceeded.
//    However, due to the statistical variations of utilization, with
//    overwhelming probability, the host is safe..."
//
// Sweeps the number of hosted services against a fixed UPS capacity and
// reports the oversubscription ratio, overflow risk (independence
// assumption vs time-aligned reality), and the capping backstop's cost.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "oversub/aggregation.h"
#include "sweep_runner.h"
#include "workload/messenger.h"

using namespace epm;

namespace {

/// Builds a service power profile from a Messenger-style demand week: the
/// service's cluster follows demand, so power = idle + dynamic * demand.
/// Services get heterogeneous daily peak hours and weekend behaviour — the
/// diversity statistical multiplexing feeds on (identical services would be
/// perfectly correlated and multiplex not at all).
oversub::ServicePowerProfile make_service(const std::string& name, std::uint64_t seed,
                                          double peak_kw) {
  workload::MessengerConfig config;
  config.step_s = 300.0;
  config.seed = seed;
  config.diurnal.peak_hour = std::fmod(8.0 + 1.7 * static_cast<double>(seed % 9), 24.0);
  config.diurnal.weekend_factor = 0.7 + 0.04 * static_cast<double>(seed % 7);
  const auto trace = workload::generate_messenger_trace(config, weeks(1.0));
  const double peak_conn = trace.connections.stats().max();
  // Power profile: 40% idle floor + 60% demand-proportional, rated at peak.
  TimeSeries power(0.0, 300.0);
  power.reserve(trace.connections.size());
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    const double level = trace.connections[i] / peak_conn;
    power.push_back(peak_kw * 1.0e3 * (0.4 + 0.6 * level));
  }
  return oversub::ServicePowerProfile(name, power, peak_kw * 1.0e3);
}

}  // namespace

int main() {
  std::cout << banner("EXP-C (sec. 3.1): power oversubscription vs overflow risk");

  const double capacity_w = 1.0e6;  // 1 MW UPS
  constexpr double kServicePeakKw = 100.0;

  std::cout << "  UPS capacity 1 MW; each service rated at 100 kW peak with a "
               "diurnal profile (40% floor).\n"
            << "  Static allocation would host exactly 10 services.\n\n";

  Table table({"services", "oversub ratio", "risk (independent)",
               "risk (time-aligned)", "capped epochs", "mean shed when capped"});
  oversub::RiskConfig risk_config;
  risk_config.monte_carlo_draws = 100000;

  // Every grid point rebuilds its services from fixed seeds and draws its
  // own Monte Carlo risk, so the sweep parallelizes without changing a row.
  struct Row {
    std::size_t services = 0;
    double ratio = 0.0;
    double independent = 0.0;
    double aligned = 0.0;
    oversub::CappingImpact impact;
  };
  const std::vector<std::size_t> grid{10, 11, 12, 13, 14, 16, 20};
  const auto rows = bench::run_sweep(
      grid,
      [&](std::size_t n) {
        std::vector<oversub::ServicePowerProfile> services;
        for (std::size_t i = 0; i < n; ++i) {
          services.push_back(
              make_service("svc" + std::to_string(i), 100 + i, kServicePeakKw));
        }
        Row row;
        row.services = n;
        row.ratio = oversub::oversubscription_ratio(services, capacity_w);
        row.independent = oversub::overflow_probability_independent(
            services, capacity_w, risk_config);
        row.aligned =
            oversub::overflow_probability_aligned(services, capacity_w, risk_config);
        row.impact = oversub::capping_impact_aligned(services, capacity_w);
        return row;
      },
      "oversubscription_sweep");
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.services), fmt(row.ratio, 2) + "x",
                   fmt_percent(row.independent, 3), fmt_percent(row.aligned, 3),
                   fmt_percent(row.impact.capped_fraction, 3),
                   fmt(to_kilowatts(row.impact.mean_shed_w), 1) + " kW"});
  }
  std::cout << table.render();

  // Packing limit at a 1e-3 aligned risk bound, heterogeneous services.
  {
    std::vector<oversub::ServicePowerProfile> pack;
    std::size_t safe = 0;
    double safe_ratio = 0.0;
    for (std::size_t i = 0; i < 32; ++i) {
      pack.push_back(make_service("svc" + std::to_string(i), 100 + i, kServicePeakKw));
      const double risk =
          oversub::overflow_probability_aligned(pack, capacity_w, risk_config);
      if (risk > 1.0e-3) break;
      safe = pack.size();
      safe_ratio = oversub::oversubscription_ratio(pack, capacity_w);
    }
    std::cout << "\n  Max heterogeneous services at <=0.1% time-aligned overflow "
                 "risk: "
              << safe << " (ratio " << fmt(safe_ratio, 2) << "x)\n";
    // Identical services are perfectly correlated and multiplex not at all.
    const auto prototype = make_service("proto", 101, kServicePeakKw);
    const auto identical =
        oversub::max_services_at_risk(prototype, capacity_w, 1.0e-3, 64, risk_config);
    std::cout << "  Same bound with perfectly correlated (identical) services: "
              << identical.services << " (ratio " << fmt(identical.ratio, 2)
              << "x) — correlation eats the multiplexing gain\n";
  }

  std::cout << "\n  Paper: oversubscription is 'a key to maximize the utilization "
               "of data center capacities', with capping\n"
               "  protecting 'the safety of the facility in the rare events that "
               "the demand exceeds the capacity'.\n"
               "  Measured: diurnal correlation makes the realistic (time-aligned) "
               "risk orders of magnitude higher than the\n"
               "  independence assumption suggests; modest oversubscription is "
               "still safe, and the capping backstop's\n"
               "  cost stays small until the ratio gets aggressive.\n";
  return 0;
}
