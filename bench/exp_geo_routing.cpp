// Extension experiment (paper §3.2, §5.3): geo-distributed routing across
// federated data centers.
//
//   "Where to migrate power consuming operations to best utilize cooling
//    and power conversion efficiency across data centers without
//    sacrificing user experience?" (§3.2)
//   "a single on-line application can span across data centers over several
//    continents. Requests can be routed among them in splits of a second."
//    (§5.3)
//
// Three sites (cool/cheap, moderate/near, hot/expensive) with time-shifted
// climates serve a global diurnal demand for one week. Compares single-home
// hosting against the weather- and price-aware geo coordinator.
//
// The closing section drops from the hourly fluid model to fleet scale: the
// reference 4-datacenter world (hundreds of thousands of closed-loop
// clients) runs request-level cross-datacenter re-routing on the sharded
// federation (sim::ShardedSimulator, one datacenter per shard), with the
// re-route latency taken from the physical inter-DC floors — the paper's
// "splits of a second" — and the outcome conformance-checked bit-for-bit
// against the same world on a single kernel.
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "faults/fleet_storm.h"
#include "macro/geo.h"
#include "sweep_runner.h"
#include "thermal/outside_air.h"

using namespace epm;

namespace {

macro::SiteConfig make_site(const std::string& name, std::size_t servers,
                            double price, double latency_s, bool economizer) {
  macro::SiteConfig site;
  site.name = name;
  site.servers = servers;
  site.plant.has_economizer = economizer;
  site.electricity_price_per_kwh = price;
  site.network_latency_s = latency_s;
  return site;
}

thermal::OutsideAirModel::Weather make_weather(double mean_c, double phase_shift_h,
                                               std::uint64_t seed) {
  thermal::OutsideAirConfig config;
  config.annual_mean_c = mean_c;
  config.hottest_hour = std::fmod(15.0 + phase_shift_h, 24.0);
  config.seed = seed;
  thermal::OutsideAirModel model(config);
  return model.sample_weather(weeks(1.0), hours(1.0));
}

}  // namespace

int main() {
  std::cout << banner(
      "Extension (sec. 3.2): geo routing across three federated data centers");

  const std::vector<thermal::OutsideAirModel::Weather> weather{
      make_weather(4.0, 0.0, 1), make_weather(14.0, 7.0, 2),
      make_weather(26.0, 10.0, 3)};

  // Global demand: diurnal, peaking at 85% of the total fleet capacity.
  const double total_capacity = 3.0 * 700.0 * 70.0;  // rps at 70% utilization

  struct Tally {
    double cost = 0.0;
    double energy_kwh = 0.0;
    double latency_weight = 0.0;
    double served = 0.0;
    double dropped = 0.0;
    double econ_hours = 0.0;
    std::vector<double> site_share{0.0, 0.0, 0.0};
  };

  // Each strategy replays the same week against its own coordinator, so the
  // two runs are independent sweep points.
  auto evaluate = [&](bool price_weather_aware) {
    // Nordic site (cold, cheap hydro, 50 ms away), mid-US home (moderate,
    // 10 ms), hot southern site (expensive peak power, 40 ms).
    std::vector<macro::SiteConfig> sites{
        make_site("nordic", 700, 0.07, 0.050, true),
        make_site("home", 700, 0.10, 0.010, true),
        make_site("southern", 700, 0.14, 0.040, false)};
    macro::GeoCoordinator geo(sites);

    Tally into;
    const std::size_t steps = weather[0].temperature_c.size();
    for (std::size_t h = 0; h < steps; ++h) {
      const double t = static_cast<double>(h) * hours(1.0);
      const double phase = 2.0 * std::numbers::pi * (to_hours(t) - 14.0) / 24.0;
      const double rate = total_capacity * (0.5 + 0.35 * std::cos(phase));
      std::vector<double> temps;
      std::vector<double> rhs;
      for (const auto& w : weather) {
        temps.push_back(w.temperature_c[h]);
        rhs.push_back(w.relative_humidity[h]);
      }
      const auto d = price_weather_aware ? geo.route(rate, temps, rhs)
                                         : geo.route_single_home(rate, 1, temps, rhs);
      into.cost += d.total_cost_per_hour;
      into.energy_kwh += to_kwh(d.total_power_w * 3600.0);
      into.latency_weight += d.mean_latency_s * d.served_rate_per_s;
      into.served += d.served_rate_per_s;
      into.dropped += d.dropped_rate_per_s;
      for (std::size_t s = 0; s < 3; ++s) {
        into.site_share[s] += d.allocations[s].arrival_rate_per_s;
        if (d.allocations[s].economizer_active) into.econ_hours += 1.0 / 3.0;
      }
    }
    return into;
  };

  const std::vector<bool> strategies{true, false};
  const auto tallies = bench::run_sweep(
      strategies, [&](bool aware_point) { return evaluate(aware_point); },
      "geo_routing_sweep");
  const Tally& aware = tallies[0];
  const Tally& homed = tallies[1];

  Table table({"strategy", "energy (MWh/wk)", "cost ($/wk)", "mean latency (ms)",
               "dropped", "nordic share", "home share", "southern share"});
  auto add = [&](const char* name, const Tally& t) {
    table.add_row({name, fmt(t.energy_kwh / 1000.0, 1), fmt(t.cost, 0),
                   fmt(t.latency_weight / t.served * 1e3, 1),
                   fmt_percent(t.dropped / (t.served + t.dropped), 2),
                   fmt_percent(t.site_share[0] / t.served, 0),
                   fmt_percent(t.site_share[1] / t.served, 0),
                   fmt_percent(t.site_share[2] / t.served, 0)});
  };
  add("single-home (home site, overflow by index)", homed);
  add("geo coordinator (price+weather aware)", aware);
  std::cout << table.render();

  std::cout << "\n  Savings: " << fmt_percent(1.0 - aware.cost / homed.cost, 1)
            << " of the weekly electricity bill, at a latency premium of "
            << fmt((aware.latency_weight / aware.served -
                    homed.latency_weight / homed.served) *
                       1e3,
                   1)
            << " ms mean.\n";

  std::cout << "\n  Paper: macro management should place power-consuming "
               "operations where cooling and conversion are\n"
               "  efficient without sacrificing user experience. Measured: the "
               "coordinator pushes load to the cold,\n"
               "  cheap site whenever its economizer runs and spills to the "
               "near site at the daily peak — cutting the\n"
               "  bill double-digit percent for a few milliseconds of extra "
               "network latency, and never to the hot site\n"
               "  unless capacity demands it.\n";

  // -- fleet scale: request-level re-routing on the sharded federation -----
  std::cout << "\n"
            << banner(
                   "Fleet scale (sec. 5.3): request-level re-routing on the "
                   "sharded federation");
  const faults::FleetStormConfig storm =
      faults::make_reference_fleet_storm_config(/*dcs=*/4,
                                                /*clients_per_dc=*/50'000,
                                                /*seed=*/11);
  const network::InterDcNetwork net = faults::make_fleet_network(storm);

  sim::ShardedSimulator fed(
      faults::make_fleet_sharded_config(net, /*shards=*/4, /*threads=*/0));
  sim::ShardedFabric fed_fabric(fed);
  const auto routed = faults::run_fleet_storm(storm, fed_fabric);

  sim::SingleKernelFabric single_fabric(storm.sites.size());
  const auto truth = faults::run_fleet_storm(storm, single_fabric);
  const bool match = faults::fleet_storm_outcomes_equal(routed, truth);

  Table fleet({"datacenter", "floor to pnw", "intents", "forwarded",
               "remote served", "goodput at end", "recovery"});
  for (std::size_t d = 0; d < routed.dcs.size(); ++d) {
    const auto& dc = routed.dcs[d];
    fleet.add_row(
        {dc.site,
         d == storm.outage_dc
             ? "-"
             : fmt(net.latency_floor_s(d, storm.outage_dc) * 1e3, 1) + " ms",
         std::to_string(dc.intents), std::to_string(dc.forwarded),
         std::to_string(dc.remote_served), fmt(dc.end_goodput_rps, 0) + "/s",
         dc.recovered ? fmt(dc.recovery_s, 0) + " s" : "never"});
  }
  std::cout << fleet.render();
  std::cout << "  200k closed-loop clients across 4 datacenters; a 20 s "
               "utility outage at 'pnw' re-routes\n  "
            << routed.forwarded << " requests to peers over the physical "
            << fmt(net.min_latency_floor_s() * 1e3, 1)
            << "+ ms latency floors (" << routed.remote_served
            << " served remotely),\n  fleet goodput "
            << fmt_percent(routed.fleet_goodput_fraction, 1) << "; "
            << fed.windows_run() << " conservative windows, "
            << fed.messages_sent() << " cross-shard messages; ledgers "
            << (routed.conservation_ok ? "clean" : "VIOLATED")
            << ";\n  federated outcome "
            << (match ? "bit-identical to the single-kernel run"
                      : "DIVERGED FROM THE SINGLE-KERNEL RUN")
            << ".\n";
  return match && routed.conservation_ok ? 0 : 1;
}
