// Extension experiment (EXP-S): fault storms vs. graceful degradation.
//
// The paper's elasticity argument cuts both ways: a facility that tracks
// demand tightly has no slack when the physical side fails. This experiment
// drives the reference two-service facility through escalating fault storms
// — always anchored by a scripted utility outage (§2.1's UPS window) and a
// CRAC failure (§2.2) — and compares the macro::DegradationPolicy against
// an uncoordinated baseline that keeps provisioning as if nothing happened.
//
// Served load counts requests delivered to users anywhere: locally served
// plus traffic the policy re-routed to a peer site (geo re-routing is
// precisely the action that serves users without spending the local UPS
// window). Shed and brown-out losses count against each arm.
//
// Emits one BENCH_faults.json record per swept point (set EPM_BENCH_REPORT
// to redirect): intensity, arm, served/offered/shed/rerouted/dropped,
// brown-out and trip epochs, energy.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "faults/fault_plan.h"
#include "faults/storm.h"
#include "sweep_runner.h"

using namespace epm;

namespace {

struct Point {
  double intensity = 0.0;
  bool policy = false;
};

std::string faults_report_path() {
  if (const char* env = std::getenv("EPM_BENCH_REPORT")) return env;
  return "BENCH_faults.json";
}

void append_faults_record(const Point& point, const faults::StormOutcome& out) {
  const std::string path = faults_report_path();
  if (path == "-") return;
  std::ofstream file(path, std::ios::app);
  if (!file) return;
  file << "{\"name\":\"fault_storm\",\"intensity\":" << point.intensity
       << ",\"policy\":" << (point.policy ? "true" : "false")
       << ",\"offered\":" << out.offered_requests
       << ",\"served_total\":" << out.served_requests + out.rerouted_requests
       << ",\"served_local\":" << out.served_requests
       << ",\"rerouted\":" << out.rerouted_requests
       << ",\"shed\":" << out.shed_requests
       << ",\"dropped\":" << out.dropped_requests
       << ",\"brownout_epochs\":" << out.brownout_epochs
       << ",\"trip_epochs\":" << out.trip_epochs
       << ",\"max_zone_c\":" << out.max_zone_temp_c
       << ",\"it_kwh\":" << out.it_energy_kwh
       << ",\"mech_kwh\":" << out.mechanical_energy_kwh
       << ",\"faults\":" << out.faults_injected
       << ",\"conserved\":" << (out.faults_conserved ? "true" : "false")
       << "}\n";
}

}  // namespace

int main() {
  std::cout << banner("EXP-S: fault storms vs. graceful degradation");

  const std::vector<double> intensities = {0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<Point> grid;
  for (const double intensity : intensities) {
    grid.push_back({intensity, false});
    grid.push_back({intensity, true});
  }

  const faults::StormConfig reference = faults::make_reference_storm_config();
  const auto results = bench::run_sweep(
      grid,
      [&](const Point& point) {
        faults::StormConfig config = reference;
        config.policy_enabled = point.policy;
        const faults::FaultPlan plan = faults::make_storm_plan(
            point.intensity, config.horizon_s, 2009,
            config.demand_rps.size(), 1);
        return faults::run_fault_storm(config, plan);
      },
      "fault_storm_sweep");

  Table table({"intensity", "arm", "faults", "served", "shed", "dropped",
               "brownout", "trip", "max zone", "IT kWh"});
  bool dominated = true;
  bool invariants_clean = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& out = results[i];
    append_faults_record(grid[i], out);
    if (!out.invariants_ok) {
      invariants_clean = false;
      std::cout << "  INVARIANT VIOLATIONS (intensity " << grid[i].intensity
                << ", " << (grid[i].policy ? "policy" : "uncoordinated")
                << "):\n"
                << out.invariant_report << "\n";
    }
    const double served_total = out.served_requests + out.rerouted_requests;
    table.add_row({fmt(grid[i].intensity, 1),
                   grid[i].policy ? "degradation policy" : "uncoordinated",
                   std::to_string(out.faults_injected),
                   fmt_percent(served_total / out.offered_requests, 1),
                   fmt_percent(out.shed_requests / out.offered_requests, 1),
                   fmt_percent(out.dropped_requests / out.offered_requests, 1),
                   std::to_string(out.brownout_epochs),
                   std::to_string(out.trip_epochs),
                   fmt(out.max_zone_temp_c, 1) + " C",
                   fmt(out.it_energy_kwh, 0)});
    if (grid[i].policy) {
      const auto& baseline = results[i - 1];
      const double baseline_total =
          baseline.served_requests + baseline.rerouted_requests;
      if (served_total <= baseline_total) dominated = false;
    }
  }
  std::cout << table.render();

  std::cout << "\n  Policy dominance (served incl. re-routes, every intensity): "
            << (dominated ? "yes" : "NO") << "\n";
  std::cout << "  Invariant monitor clean on every run: "
            << (invariants_clean ? "yes" : "NO") << "\n";
  std::cout
      << "  Paper: elastic power management must 'gracefully degrade' at the "
         "resource limit.\n  Measured: the uncoordinated stack rides the UPS "
         "blind and browns out mid-outage; the degradation\n  policy sheds the "
         "batch tier, re-routes interactive traffic, and stretches the same "
         "battery across the\n  storm — serving strictly more of the offered "
         "load at every storm intensity.\n";
  return (dominated && invariants_clean) ? 0 : 1;
}
