// EXP-D (paper §4.3, ref [18] Chen et al.): consolidation / On-Off
// scheduling for a connection-intensive service.
//
//   "a powered on server with zero workload consumes about 60% of its peak
//    power. Turning these devices off is the only way to eliminate the idle
//    power consumption... it takes time to wake up a slept component (or
//    server), and sometime, this wakeup process may consume more energy and
//    offset the benefit of sleeping."
//
// A week of Messenger demand against: static peak provisioning, reactive
// utilization-band On/Off, predictive (seasonal) provisioning, and the
// coordinated joint policy. Reports energy saved, SLA kept, and boot churn.
#include <iostream>
#include <memory>
#include <vector>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "core/units.h"
#include "macro/joint_policy.h"
#include "onoff/provisioners.h"
#include "workload/messenger.h"

using namespace epm;

namespace {

constexpr std::size_t kFleet = 120;
constexpr double kPeakRps = 8000.0;
constexpr double kEpoch = 60.0;

cluster::ServiceClusterConfig make_config() {
  cluster::ServiceClusterConfig config;
  config.server_count = kFleet;
  config.initially_active = kFleet;
  config.sla.target_mean_response_s = 0.1;
  return config;
}

struct Outcome {
  double energy_kwh = 0.0;
  double savings_vs_static = 0.0;
  std::size_t sla_violations = 0;
  std::size_t boots = 0;
  double boot_energy_kwh = 0.0;
  double mean_active = 0.0;
};

Outcome run(const TimeSeries& rate, onoff::Provisioner* provisioner,
            bool coordinated, bool use_sleep) {
  cluster::ServiceCluster cluster(make_config());
  double active_sum = 0.0;
  for (std::size_t i = 0; i < rate.size(); ++i) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = rate[i];
    load.service_demand_s = 0.01;
    const auto r = cluster.run_epoch(kEpoch, load);
    active_sum += static_cast<double>(r.serving);
    if (coordinated) {
      const auto d = macro::decide_joint(cluster.power_model(), kFleet,
                                         cluster.committed_count(),
                                         r.arrival_rate_per_s, r.service_demand_s,
                                         cluster.config().sla.target_mean_response_s);
      cluster.set_uniform_pstate(d.pstate);
      cluster.set_target_committed(d.servers, use_sleep);
    } else if (provisioner != nullptr) {
      cluster.set_target_committed(provisioner->decide(cluster, r), use_sleep);
    }
  }
  Outcome out;
  out.energy_kwh = to_kwh(cluster.total_energy_j());
  out.sla_violations = cluster.sla_violation_epochs();
  out.mean_active = active_sum / static_cast<double>(rate.size());
  double boot_energy = 0.0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    out.boots += cluster.server(s).boot_count();
    boot_energy += cluster.server(s).transition_energy_j();
  }
  out.boot_energy_kwh = to_kwh(boot_energy);
  return out;
}

}  // namespace

int main() {
  std::cout << banner(
      "EXP-D (sec. 4.3 / ref [18]): consolidation for a connection-intensive week");

  workload::MessengerConfig wl;
  wl.step_s = kEpoch;
  wl.seed = 18;
  const auto trace = workload::generate_messenger_trace(wl, weeks(1.0));
  const double peak = trace.connections.stats().max();
  const auto rate = trace.connections.scaled(kPeakRps / peak);

  const auto statically = run(rate, nullptr, false, false);

  onoff::UtilizationBandProvisioner reactive_policy;
  auto reactive = run(rate, &reactive_policy, false, false);

  onoff::PredictiveConfig predictive_config;
  // Messenger noise is ~3% of an 8000 rps peak ~ 4 servers; ignore target
  // jitter below that so prediction noise does not become boot churn.
  predictive_config.hysteresis_servers = 8;
  onoff::PredictiveProvisioner predictive_policy(predictive_config);
  auto predictive = run(rate, &predictive_policy, false, false);

  auto coordinated = run(rate, nullptr, true, false);
  auto coordinated_sleep = run(rate, nullptr, true, true);

  const double base = statically.energy_kwh;
  for (Outcome* o : {&reactive, &predictive, &coordinated, &coordinated_sleep}) {
    o->savings_vs_static = 1.0 - o->energy_kwh / base;
  }

  Table table({"policy", "energy (kWh)", "saved vs static", "SLA violations",
               "boots", "boot energy (kWh)", "mean active servers"});
  auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name, fmt(o.energy_kwh, 0), fmt_percent(o.savings_vs_static, 1),
                   std::to_string(o.sla_violations), std::to_string(o.boots),
                   fmt(o.boot_energy_kwh, 1), fmt(o.mean_active, 1)});
  };
  add("static peak provisioning", statically);
  add("reactive On/Off (utilization band)", reactive);
  add("predictive On/Off (seasonal, ref [18])", predictive);
  add("coordinated joint (On/Off x DVFS)", coordinated);
  add("coordinated joint + sleep states", coordinated_sleep);
  std::cout << table.render();

  std::cout << "\n  Paper: idle servers burn ~60% of peak, so load-following "
               "On/Off saves the idle floor off-peak; wake-up\n"
               "  latency/energy is the tax. Measured: On/Off alone saves ~25% "
               "of the week's server energy at (near) zero\n"
               "  SLA cost; the boot-energy tax stays under 1% of the savings; "
               "adding DVFS coordination reaches ~40%;\n"
               "  sleep states eliminate cold boots entirely (wakes are cheap), "
               "for a small standby-power premium.\n";
  return 0;
}
