// Extension experiment (paper §4.4): dynamic consolidation over a diurnal
// cycle.
//
//   "dynamically migrate VMs (and the services running on them) to improve
//    resource utilizations on active servers. And through doing so, shut
//    down inactive servers."
//
// 32 VMs with diurnal demand run for two days on a 16-host pool. Every hour
// a consolidation controller may re-pack the fleet and power freed hosts
// off. Compares: never consolidate (peak placement), consolidate eagerly
// every hour, and payback-aware consolidation (only when the migration
// energy repays within 1 h..
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/table.h"
#include "core/units.h"
#include "sweep_runner.h"
#include "vm/consolidation.h"
#include "workload/diurnal.h"

using namespace epm;

namespace {

constexpr std::size_t kVms = 32;
constexpr std::size_t kHosts = 16;
constexpr double kHostIdleW = 180.0;
constexpr double kWattsPerCore = 7.5;
constexpr double kHostBootJ = 280.0 * 120.0;

std::vector<vm::VmSpec> vms_at(double level) {
  std::vector<vm::VmSpec> vms(kVms);
  for (std::size_t i = 0; i < kVms; ++i) {
    vms[i].id = i;
    // Two size classes so the packing is non-trivial.
    vms[i].cpu_cores = (i % 4 == 0 ? 6.0 : 3.0) * level;
    vms[i].disk_iops = 20.0;
    vms[i].net_mbps = 10.0;
    vms[i].memory_gb = 8.0;  // migrations are non-trivial transfers
  }
  return vms;
}

std::vector<vm::HostSpec> hosts() {
  std::vector<vm::HostSpec> out(kHosts);
  for (std::size_t i = 0; i < kHosts; ++i) out[i].id = i;
  return out;
}

double host_power_w(const std::vector<vm::VmSpec>& vms, const vm::Placement& placement) {
  double total = 0.0;
  for (const auto& members : placement.by_host(kHosts)) {
    if (members.empty()) continue;
    double cores = 0.0;
    for (auto m : members) cores += vms[m].cpu_cores;
    total += kHostIdleW + kWattsPerCore * cores;
  }
  return total;
}

/// True when the placement still fits current demands on every host.
bool placement_fits(const std::vector<vm::VmSpec>& vms, const vm::Placement& placement) {
  const auto host_list = hosts();
  for (std::size_t h = 0; h < kHosts; ++h) {
    vm::HostUsage usage;
    bool over = false;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      if (placement.assignment[i] != h) continue;
      if (!vm::fits(vms[i], host_list[h], usage)) over = true;
      usage = vm::add_usage(usage, vms[i]);
    }
    if (over) return false;
  }
  return true;
}

struct Tally {
  double host_energy_kwh = 0.0;
  double migration_energy_kwh = 0.0;
  double boot_energy_kwh = 0.0;
  std::size_t migrations = 0;
  double mean_hosts = 0.0;
  double total_kwh() const {
    return host_energy_kwh + migration_energy_kwh + boot_energy_kwh;
  }
};

enum class Policy { kNever, kEager, kPaybackAware };

Tally run(Policy policy) {
  const workload::DiurnalModel diurnal{workload::DiurnalConfig{}};
  const auto host_list = hosts();

  // Size the initial placement at peak demand.
  vm::Placement placement = vm::interference_aware(vms_at(1.0), host_list);
  Tally tally;
  double hosts_sum = 0.0;
  const int hours_total = 48;
  for (int h = 0; h < hours_total; ++h) {
    const double level = diurnal.demand_at(h * hours(1.0));
    const auto current = vms_at(level);

    if (policy != Policy::kNever) {
      vm::ConsolidationConfig config;
      config.host_idle_power_w = kHostIdleW;
      config.payback_horizon_s = 1.0 * kSecondsPerHour;
      config.migration.network_gbps = 0.5;   // shared management link
      config.migration.overhead_power_w = 200.0;
      const auto plan = vm::plan_consolidation(current, host_list, placement, config);
      const bool forced = !placement_fits(current, placement);
      const bool apply = policy == Policy::kEager
                             ? plan.hosts_freed > 0  // any host freed, any cost
                             : plan.worthwhile;      // must repay within 2 h
      if (apply || (forced && plan.hosts_after <= kHosts)) {
        if (plan.hosts_after > placement.hosts_used) {
          // Expansion: previously-off hosts boot back up.
          tally.boot_energy_kwh +=
              to_kwh(static_cast<double>(plan.hosts_after - placement.hosts_used) *
                     kHostBootJ);
        }
        tally.migration_energy_kwh += to_kwh(plan.migration_energy_j);
        tally.migrations += plan.moves.moves.size();
        placement = plan.target;
      }
    }

    tally.host_energy_kwh += to_kwh(host_power_w(current, placement) * hours(1.0));
    hosts_sum += static_cast<double>(placement.hosts_used);
  }
  tally.mean_hosts = hosts_sum / hours_total;
  return tally;
}

}  // namespace

int main() {
  std::cout << banner(
      "Extension (sec. 4.4): dynamic consolidation over two diurnal days");
  std::cout << "  32 VMs (diurnal demand, trough = 50% of peak) on up to 16 "
               "hosts; hourly control.\n\n";

  // Each policy's two-day run is independent and deterministic, so the
  // sweep fans out across cores without changing a digit of the table.
  const std::vector<Policy> policies{Policy::kNever, Policy::kEager,
                                     Policy::kPaybackAware};
  const auto tallies =
      bench::run_sweep(policies, run, "dynamic_consolidation_sweep");
  const Tally& never = tallies[0];
  const Tally& eager = tallies[1];
  const Tally& aware = tallies[2];

  Table table({"policy", "host energy (kWh)", "migration (kWh)", "boot (kWh)",
               "total (kWh)", "migrations", "mean hosts on", "saved"});
  auto add = [&](const char* name, const Tally& t) {
    table.add_row({name, fmt(t.host_energy_kwh, 1), fmt(t.migration_energy_kwh, 2),
                   fmt(t.boot_energy_kwh, 2), fmt(t.total_kwh(), 1),
                   std::to_string(t.migrations), fmt(t.mean_hosts, 1),
                   fmt_percent(1.0 - t.total_kwh() / never.total_kwh(), 1)});
  };
  add("never consolidate (peak placement)", never);
  add("eager (re-pack every hour)", eager);
  add("payback-aware (1 h horizon)", aware);
  std::cout << table.render();

  std::cout << "\n  Paper: VM migration enables shutting down inactive servers; "
               "the challenge is knowing when it pays.\n"
               "  Measured: overnight demand lets the fleet shrink from 8 to ~5 "
               "hosts, worth ~10% of the two-day energy.\n"
               "  At these (cheap) migration costs eager re-packing edges ahead "
               "on pure energy; the payback-aware policy\n"
               "  recovers ~95% of the saving with ~20% fewer migrations — and "
               "its advantage grows with migration cost\n"
               "  and with the service disruption each move risks (downtime is "
               "not priced into energy at all).\n";
  return 0;
}
