// Golden-regression tests for the figure reproductions (ROADMAP: "figure
// code cannot silently drift"). Every repro::fig*() table is regenerated at
// its fixed seed and diffed against the CSV checked in under
// tests/golden/data/. The benches render these same tables, so a green run
// here certifies the printed figures too.
//
// To refresh the goldens intentionally (after an acknowledged numerics
// change), run the suite once with EPM_UPDATE_GOLDENS=1; it rewrites the
// CSVs in the source tree and passes.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "repro/figures.h"

namespace {

using epm::repro::FigureTable;

std::string golden_path(const std::string& name) {
  return std::string(EPM_GOLDEN_DIR) + "/" + name + ".csv";
}

bool update_mode() {
  const char* env = std::getenv("EPM_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << path
                  << " — regenerate with EPM_UPDATE_GOLDENS=1";
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Tolerances are deliberately tight: the tables are fixed-seed and the CSVs
// round-trip doubles at full precision, so anything beyond libm-level jitter
// between toolchains is a real numerics change.
constexpr double kRelTol = 1.0e-9;
constexpr double kAbsTol = 1.0e-12;

void expect_table_matches_golden(const FigureTable& fresh) {
  if (update_mode()) {
    std::ofstream out(golden_path(fresh.name));
    ASSERT_TRUE(out) << "cannot write " << golden_path(fresh.name);
    out << fresh.to_csv();
    SUCCEED() << "updated golden " << fresh.name;
    return;
  }
  const std::string csv = read_file(golden_path(fresh.name));
  if (csv.empty()) return;  // read_file already reported the failure
  const FigureTable golden = FigureTable::from_csv(fresh.name, csv);

  ASSERT_EQ(golden.columns, fresh.columns) << fresh.name << ": column drift";
  ASSERT_EQ(golden.rows.size(), fresh.rows.size())
      << fresh.name << ": row-count drift";
  for (std::size_t r = 0; r < golden.rows.size(); ++r) {
    ASSERT_EQ(golden.rows[r].size(), fresh.rows[r].size())
        << fresh.name << " row " << r << ": width drift";
    for (std::size_t c = 0; c < golden.rows[r].size(); ++c) {
      const double want = golden.rows[r][c];
      const double got = fresh.rows[r][c];
      const double tol = kAbsTol + kRelTol * std::abs(want);
      EXPECT_NEAR(got, want, tol)
          << fresh.name << " [" << r << "][" << fresh.columns[c] << "]";
    }
  }
}

TEST(FiguresGolden, Fig1PowerFlow) {
  expect_table_matches_golden(epm::repro::fig1_power_flow());
}

TEST(FiguresGolden, Fig1StageShares) {
  expect_table_matches_golden(epm::repro::fig1_stage_shares());
}

TEST(FiguresGolden, Fig2CoolingDynamics) {
  expect_table_matches_golden(epm::repro::fig2_cooling_dynamics());
}

TEST(FiguresGolden, Fig3DailyStats) {
  expect_table_matches_golden(epm::repro::fig3_daily_stats());
}

TEST(FiguresGolden, Fig3Callouts) {
  expect_table_matches_golden(epm::repro::fig3_callouts());
}

TEST(FiguresGolden, Fig4StackOutcomes) {
  expect_table_matches_golden(epm::repro::fig4_stack_outcomes());
}

TEST(FiguresGolden, Fig4DecisionCounts) {
  expect_table_matches_golden(epm::repro::fig4_decision_counts());
}

// The CSV serialization itself must round-trip bit-exactly; the golden
// mechanism depends on it.
TEST(FiguresGolden, CsvRoundTripIsExact) {
  for (const auto& table : epm::repro::all_figure_tables()) {
    const FigureTable back = FigureTable::from_csv(table.name, table.to_csv());
    ASSERT_EQ(back.columns, table.columns) << table.name;
    ASSERT_EQ(back.rows.size(), table.rows.size()) << table.name;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        EXPECT_DOUBLE_EQ(back.rows[r][c], table.rows[r][c])
            << table.name << " [" << r << "][" << c << "]";
      }
    }
  }
}

TEST(FiguresGolden, FromCsvRejectsMalformedInput) {
  EXPECT_THROW(FigureTable::from_csv("x", ""), std::invalid_argument);
  EXPECT_THROW(FigureTable::from_csv("x", "a,b\n1.0\n"),
               std::invalid_argument);
}

}  // namespace
