#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace epm::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, EventFn{}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const std::size_t ran = sim.run_until(3.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // clock advances even with no event
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  sim.cancel(EventHandle{});
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(10.0, 5.0, [&] { times.push_back(sim.now()); });
  sim.run_until(26.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Simulator, PeriodicCancelStopsFutureFirings) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_periodic(1.0, 1.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 3);
  sim.cancel(h);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_periodic(1.0, 1.0, [&] {
    if (++fired == 2) sim.cancel(h);
  });
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  auto h1 = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NestedSchedulingDuringRun) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_at(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(Simulator, MassCancellationStress) {
  // 10k periodic events cancelled up front: the hash-set tombstone lookup
  // makes the drain O(1) per event where the old linear scan was O(n),
  // turning this from minutes into milliseconds.
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  handles.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    handles.push_back(
        sim.schedule_periodic(1.0 + 0.001 * i, 1.0, [&] { ++fired; }));
  }
  EXPECT_EQ(sim.pending(), 10000u);
  for (const auto& h : handles) sim.cancel(h);
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(1000.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 0u);  // tombstones drained with the queue

  const std::chrono::duration<double> wall = clock::now() - start;
  EXPECT_LT(wall.count(), 2.0);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace epm::sim
