#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <utility>
#include <vector>

namespace epm::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, EventFn{}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const std::size_t ran = sim.run_until(3.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // clock advances even with no event
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  sim.cancel(EventHandle{});
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(10.0, 5.0, [&] { times.push_back(sim.now()); });
  sim.run_until(26.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Simulator, PeriodicCancelStopsFutureFirings) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_periodic(1.0, 1.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 3);
  sim.cancel(h);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_periodic(1.0, 1.0, [&] {
    if (++fired == 2) sim.cancel(h);
  });
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator sim;
  auto h1 = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NestedSchedulingDuringRun) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_at(1.5, [&] { times.push_back(sim.now()); });
  });
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(Simulator, MassCancellationStress) {
  // 10k periodic events cancelled up front: cancellation is an O(1) status
  // flip and the drain skips dead entries in O(1) each, where a linear
  // queue scan per cancel was O(n) — minutes instead of milliseconds.
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  handles.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    handles.push_back(
        sim.schedule_periodic(1.0 + 0.001 * i, 1.0, [&] { ++fired; }));
  }
  EXPECT_EQ(sim.pending(), 10000u);
  for (const auto& h : handles) sim.cancel(h);
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(1000.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 0u);  // tombstones drained with the queue

  const std::chrono::duration<double> wall = clock::now() - start;
  EXPECT_LT(wall.count(), 2.0);
}

TEST(Simulator, PendingExactAcrossCancelThenDrain) {
  // Regression: pending() must drop at cancel() time and stay exact while
  // the cancelled calendar entries drain lazily through the freelist.
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule_at(1.0 + i, [] {}));
  }
  for (int i = 0; i < 100; i += 2) sim.cancel(handles[i]);
  EXPECT_EQ(sim.pending(), 50u);
  sim.run_until(50.5);  // drains a mix of live and cancelled entries
  EXPECT_EQ(sim.pending(), 25u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, SelfCancelFromCallbackKeepsPendingExact) {
  Simulator sim;
  EventHandle h;
  h = sim.schedule_at(1.0, [&] { sim.cancel(h); });  // fires, then self-cancels
  sim.schedule_at(2.0, [] {});
  sim.run_until(1.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  sim.cancel(h);  // already fired; must not disturb accounting
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RecycledSlotIgnoresStaleHandle) {
  // A handle kept across its event's firing must never cancel the unrelated
  // event that later reuses the slot (generation counters).
  Simulator sim;
  auto stale = sim.schedule_at(1.0, [] {});
  sim.run_all();
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });  // recycles the freed slot
  sim.cancel(stale);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, BatchKeepsFifoOrderAtOneTimestamp) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(-1); });  // scheduled first
  std::vector<EventFn> batch;
  for (int i = 0; i < 8; ++i) {
    batch.emplace_back(EventFn{[&order, i] { order.push_back(i); }});
  }
  sim.schedule_batch_at(5.0, batch.begin(), batch.end());
  sim.schedule_at(5.0, [&] { order.push_back(99); });  // scheduled last
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7, 99}));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, OversizedCaptureRoutesThroughArena) {
  Simulator sim;
  std::array<double, 16> payload{};  // 128 bytes: over EventFn::kInlineSize
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<double>(i);
  }
  double sum = 0.0;
  sim.schedule_at(1.0, [payload, &sum] {
    for (const double v : payload) sum += v;
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(sum, 120.0);
}

TEST(EventFn, InlineAndBoxedCapturesBothInvoke) {
  int hits = 0;
  EventFn small{[&hits] { ++hits; }};
  EXPECT_TRUE(small.is_inline());
  small();

  std::array<char, 256> big{};
  big[0] = 1;
  EventFn boxed{[big, &hits] { hits += big[0]; }};
  EXPECT_FALSE(boxed.is_inline());
  boxed();
  EXPECT_EQ(hits, 2);

  EventFn moved = std::move(boxed);  // boxed pointer relocates, no re-copy
  moved();
  EXPECT_EQ(hits, 3);
  EXPECT_FALSE(static_cast<bool>(boxed));  // NOLINT(bugprone-use-after-move)
}

TEST(ClosureArena, RecyclesBlocksThroughFreelist) {
  ClosureArena arena;
  void* a = arena.allocate(100);  // 128-byte class
  arena.release(a, 100);
  void* b = arena.allocate(100);
  EXPECT_EQ(a, b);  // freelist handed back the same block
  arena.release(b, 100);
  EXPECT_GT(arena.reserved_bytes(), 0u);
}

TEST(CalendarSimulator, WheelGrowsWithOccupancy) {
  CalendarSimulator sim;
  const std::size_t initial = sim.bucket_count();
  for (int i = 0; i < 100000; ++i) {
    sim.schedule_at(static_cast<double>(i) * 1e-3, [] {});
  }
  EXPECT_GT(sim.bucket_count(), initial);
  EXPECT_GT(sim.bucket_width_s(), 0.0);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(CalendarSimulator, FarFutureEventsFireInOrder) {
  // Events far beyond the wheel horizon sit in the overflow tier and must
  // still interleave correctly with near-future events as the wheel rebases.
  CalendarSimulator sim;
  std::vector<double> times;
  for (const double t : {1e9, 1.0, 1e6, 2.0, 5e8, 1e3}) {
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 1e3, 1e6, 5e8, 1e9}));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace epm::sim
