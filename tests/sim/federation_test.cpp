// Differential conformance suite for the sharded federation.
//
// Ground truth is a single sim::Simulator (via SingleKernelFabric): the
// same randomized cross-shard script runs on it and on ShardedSimulator at
// every shard/thread combination, and every firing (timestamp + identity,
// per shard), every pending() probe, and the final clocks must match
// exactly. The script derives every decision from a per-event hash of
// (seed, shard, event id) — never from global execution order — so both
// executions see the very same event tree even though their interleavings
// differ.
//
// Also here: the "degenerate federation" golden invariants (figure tables
// and the retry-storm scenario replayed through a 1-shard federation are
// bit-identical to their direct computations), concurrent storms on
// different shards of one federation, and the cross-kernel regression tests
// for faults::FaultInjector and sensing::ActuatorPlane.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "faults/retry_storm.h"
#include "network/interdc_link.h"
#include "repro/figures.h"
#include "sensing/actuator_plane.h"
#include "sim/fabric.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace epm::sim {
namespace {

// ---------------------------------------------------------------------------
// Randomized cross-shard scripts
// ---------------------------------------------------------------------------

/// Distinct per-pair lookahead floors; the continuous event times the
/// script draws never coincide across shards, so the merged fire order the
/// single kernel produces is unambiguous.
std::vector<double> script_floors(std::size_t shards) {
  std::vector<double> floors(shards * shards, 0.0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t d = 0; d < shards; ++d) {
      if (s != d) floors[s * shards + d] = 0.011 + 0.003 * (s * shards + d);
    }
  }
  return floors;
}

/// A self-expanding event forest over a Fabric. Event (shard, id) logs its
/// firing, then spawns 0-2 local children and possibly one cross-shard
/// message, all decided by SplitMix64(hash(seed, shard, id)) — identical on
/// every fabric because nothing depends on execution order. Ids grow by 8x
/// per generation (children id*8+k) and spawning stops past kMaxSpawnId,
/// which bounds every tree without any order-dependent state.
struct ScriptWorld {
  static constexpr std::uint64_t kMaxSpawnId = 500000;
  static constexpr std::uint64_t kRootsPerShard = 800;

  Fabric& fab;
  std::uint64_t seed;
  std::size_t shards;
  std::vector<double> floors;
  /// Per-shard logs: only the shard's own kernel appends to its log, so
  /// multi-threaded federation runs are race-free, and the per-kernel order
  /// is exactly the kernel's execution order.
  std::vector<std::vector<std::pair<double, std::uint64_t>>> logs;

  ScriptWorld(Fabric& fabric, std::uint64_t s)
      : fab(fabric),
        seed(s),
        shards(fabric.shard_count()),
        floors(script_floors(shards)),
        logs(shards) {}

  static double uniform(SplitMix64& rng) {
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  }

  void seed_roots() {
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::uint64_t r = 0; r < kRootsPerShard; ++r) {
        SplitMix64 rng(seed ^ 0x5eedULL ^ (s * SplitMix64::kGamma) ^
                       (r * 0x94d049bb133111ebULL));
        const double start = uniform(rng);
        const std::uint64_t id = r + 1;
        fab.kernel(s).schedule_at(start, [this, s, id] { fire(s, id); });
      }
    }
  }

  void fire(std::size_t shard, std::uint64_t id) {
    const double now = fab.kernel(shard).now();
    logs[shard].emplace_back(now, id);
    if (id > kMaxSpawnId) return;
    SplitMix64 rng(seed ^ (0xbf58476d1ce4e5b9ULL * (shard + 1)) ^
                   (id * 0x94d049bb133111ebULL));
    const std::uint64_t locals = rng.next() % 3;
    for (std::uint64_t k = 0; k < locals; ++k) {
      const std::uint64_t child = id * 8 + 1 + k;
      const double delay = 1e-7 + uniform(rng) * 2.0;
      fab.kernel(shard).schedule_at(
          now + delay, [this, shard, child] { fire(shard, child); });
    }
    if (rng.next() % 100 < 60) {
      // Cross-shard message (a loopback when shards == 1). The delay sits
      // just above the pair's floor, exercising deliveries barely past the
      // conservative horizon.
      const std::size_t dst =
          shards == 1 ? shard
                      : (shard + 1 + rng.next() % (shards - 1)) % shards;
      const double delay =
          floors[shard * shards + dst] + 1e-7 + uniform(rng) * 1.5;
      const std::uint64_t child = id * 8 + 7;
      fab.send(shard, dst, delay, [this, dst, child] { fire(dst, child); });
    }
  }
};

struct ScriptResult {
  std::vector<std::vector<std::pair<double, std::uint64_t>>> logs;
  std::vector<std::pair<std::size_t, double>> probes;  ///< (pending, now)
  std::vector<double> final_clocks;
  std::size_t fires = 0;
};

ScriptResult run_script(Fabric& fab, std::uint64_t seed) {
  ScriptWorld world(fab, seed);
  world.seed_roots();
  ScriptResult result;
  // A ladder of partial runs exercises run_until's inclusive final-stretch
  // window and the exactness of pending() at every barrier.
  for (const double t : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 1e6}) {
    fab.run_until(t);
    result.probes.emplace_back(fab.pending(), fab.kernel(0).now());
  }
  result.logs = std::move(world.logs);
  for (std::size_t s = 0; s < fab.shard_count(); ++s) {
    result.final_clocks.push_back(fab.kernel(s).now());
    result.fires += result.logs[s].size();
  }
  return result;
}

TEST(FederationDifferential, ShardedMatchesSingleKernelOnRandomScripts) {
  for (const std::uint64_t seed : {11ULL, 2026ULL, 777216ULL}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      SingleKernelFabric single(shards);
      const ScriptResult truth = run_script(single, seed);
      ASSERT_GE(truth.fires, 10000u)
          << "script too small to be meaningful; seed " << seed << " shards "
          << shards;

      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ShardedConfig config;
        config.shards = shards;
        config.threads = threads;
        if (shards > 1) config.lookahead_s = script_floors(shards);
        ShardedSimulator fed(config);
        ShardedFabric fabric(fed);
        const ScriptResult got = run_script(fabric, seed);

        const auto label = [&] {
          return ::testing::Message()
                 << "seed " << seed << " shards " << shards << " threads "
                 << threads;
        };
        ASSERT_EQ(got.logs.size(), truth.logs.size()) << label();
        for (std::size_t s = 0; s < shards; ++s) {
          ASSERT_EQ(got.logs[s].size(), truth.logs[s].size())
              << label() << " shard " << s;
          for (std::size_t i = 0; i < got.logs[s].size(); ++i) {
            ASSERT_EQ(got.logs[s][i].first, truth.logs[s][i].first)
                << label() << " shard " << s << " fire " << i;
            ASSERT_EQ(got.logs[s][i].second, truth.logs[s][i].second)
                << label() << " shard " << s << " fire " << i;
          }
        }
        EXPECT_EQ(got.probes, truth.probes) << label();
        EXPECT_EQ(got.final_clocks, truth.final_clocks) << label();
        EXPECT_EQ(got.probes.back().first, 0u) << label();
      }
    }
  }
}

TEST(FederationDifferential, RunAllDrainsEverythingIdentically) {
  const std::uint64_t seed = 4242;
  SingleKernelFabric single(2);
  ScriptWorld truth(single, seed);
  truth.seed_roots();
  single.sim().run_all();

  ShardedConfig config;
  config.shards = 2;
  config.threads = 2;
  config.lookahead_s = script_floors(2);
  ShardedSimulator fed(config);
  ShardedFabric fabric(fed);
  ScriptWorld got(fabric, seed);
  got.seed_roots();
  fed.run_all();

  EXPECT_EQ(got.logs, truth.logs);
  EXPECT_EQ(fed.pending(), 0u);
  EXPECT_GT(fed.messages_sent(), 0u);
  EXPECT_GT(fed.windows_run(), 0u);
}

// ---------------------------------------------------------------------------
// Degenerate federation: 1 shard replays direct computations bit-for-bit
// ---------------------------------------------------------------------------

TEST(FederationGolden, DegenerateFederationReplaysFigureTables) {
  // Each golden-gated figure table, recomputed inside an event on a 1-shard
  // federation, must match the direct computation bit-for-bit: running
  // under the federation must not perturb any numerics. (The direct tables
  // are themselves diffed against the checked-in CSVs by the FiguresGolden
  // suite, so this chains the federation to the goldens.)
  const auto direct = repro::all_figure_tables();
  std::vector<repro::FigureTable> federated;
  ShardedSimulator fed(ShardedConfig{});
  fed.shard(0).schedule_at(
      1.0, [&federated] { federated = repro::all_figure_tables(); });
  fed.run_all();
  ASSERT_EQ(federated.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(federated[i].name, direct[i].name);
    EXPECT_EQ(federated[i].columns, direct[i].columns) << direct[i].name;
    EXPECT_EQ(federated[i].rows, direct[i].rows) << direct[i].name;
  }
}

faults::RetryStormConfig small_storm(workload::RetryBackoff backoff,
                                     bool defended, std::uint64_t seed) {
  faults::RetryStormConfig config =
      faults::make_reference_retry_storm_config(backoff, 120.0, defended);
  config.clients.clients = 4000;
  config.clients.seed = seed;
  config.service_capacity_rps = 200.0;
  config.batch_rps = 60.0;
  config.naive_queue_capacity = 24000;
  config.defense.bucket = {180.0, 180.0};
  config.defense.queue_capacity = 360;
  config.outage_start_s = 120.0;
  config.horizon_s = 600.0;
  config.sla_goodput_fraction = 0.8;
  return config;
}

void expect_storm_outcomes_identical(const faults::RetryStormOutcome& a,
                                     const faults::RetryStormOutcome& b) {
  EXPECT_EQ(a.intents, b.intents);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.served_fresh, b.served_fresh);
  EXPECT_EQ(a.served_stale, b.served_stale);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.dark_failures, b.dark_failures);
  EXPECT_EQ(a.shed_breaker, b.shed_breaker);
  EXPECT_EQ(a.shed_bucket, b.shed_bucket);
  EXPECT_EQ(a.shed_queue, b.shed_queue);
  EXPECT_EQ(a.prefault_goodput_rps, b.prefault_goodput_rps);
  EXPECT_EQ(a.end_offered_rps, b.end_offered_rps);
  EXPECT_EQ(a.end_goodput_rps, b.end_goodput_rps);
  EXPECT_EQ(a.end_interactive_capacity_rps, b.end_interactive_capacity_rps);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.recovery_s, b.recovery_s);
  EXPECT_EQ(a.metastable, b.metastable);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.breaker_probes, b.breaker_probes);
  EXPECT_EQ(a.telemetry_samples, b.telemetry_samples);
  EXPECT_EQ(a.telemetry_shed, b.telemetry_shed);
  EXPECT_EQ(a.telemetry_retried, b.telemetry_retried);
  EXPECT_EQ(a.telemetry_abandoned, b.telemetry_abandoned);
  EXPECT_EQ(a.conservation_ok, b.conservation_ok);
  EXPECT_EQ(a.invariants_ok, b.invariants_ok);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.decision_counts, b.decision_counts);
}

TEST(FederationGolden, DegenerateFederationReplaysRetryStorm) {
  // The retry-storm scenario, replayed through a 1-shard federation: the
  // driver-event chain must reproduce the serial epoch loop exactly (the
  // kernel's same-timestamp FIFO fires each epoch's completion cohort
  // before the next driver event).
  for (const bool defended : {true, false}) {
    const auto config =
        small_storm(workload::RetryBackoff::kExponential, defended, 7);
    const auto serial = faults::run_retry_storm(config);
    ShardedSimulator fed(ShardedConfig{});
    const auto federated = faults::run_retry_storm_federated(config, fed, 0);
    expect_storm_outcomes_identical(federated, serial);
  }
}

TEST(FederationGolden, ConcurrentStormsOnSeparateShardsDoNotInterfere) {
  // Two different scenarios armed on two shards of one federation, run
  // together, must each match their own serial outcome — the federation
  // isolation property the kernel_federation bench relies on.
  const auto config_a =
      small_storm(workload::RetryBackoff::kExponential, true, 11);
  const auto config_b =
      small_storm(workload::RetryBackoff::kImmediate, false, 13);
  const auto serial_a = faults::run_retry_storm(config_a);
  const auto serial_b = faults::run_retry_storm(config_b);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedConfig fed_config;
    fed_config.shards = 2;
    fed_config.threads = threads;
    fed_config.uniform_lookahead_s = 0.020;
    ShardedSimulator fed(fed_config);
    faults::FederatedRetryStorm storm_a(config_a, fed, 0);
    faults::FederatedRetryStorm storm_b(config_b, fed, 1);
    fed.run_until(std::max(storm_a.end_s(), storm_b.end_s()));
    expect_storm_outcomes_identical(storm_a.finish(), serial_a);
    expect_storm_outcomes_identical(storm_b.finish(), serial_b);
  }
}

TEST(FederationGolden, FinishTwiceThrows) {
  const auto config =
      small_storm(workload::RetryBackoff::kExponential, true, 11);
  ShardedSimulator fed(ShardedConfig{});
  faults::FederatedRetryStorm storm(config, fed, 0);
  fed.run_until(storm.end_s());
  (void)storm.finish();
  EXPECT_THROW((void)storm.finish(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Cross-kernel regressions: FaultInjector and ActuatorPlane under federation
// ---------------------------------------------------------------------------

TEST(FederationInjector, PlansArmedOnTwoShardsDeliverOnTheirOwnClocks) {
  // The latent single-kernel assumption this PR removed: FaultInjector used
  // to capture one Simulator&. Through the ScheduleHook, two injectors
  // armed on two shards of one federation each observe their own kernel's
  // clock.
  ShardedConfig config;
  config.shards = 2;
  config.threads = 2;
  config.uniform_lookahead_s = 0.5;
  ShardedSimulator fed(config);

  const auto hook_for = [&fed](std::size_t shard) {
    return faults::FaultInjector::ScheduleHook(
        [&fed, shard](double when_s, std::function<void(double)> edge) {
          fed.shard(shard).schedule_at(
              when_s, [&fed, shard, edge = std::move(edge)] {
                edge(fed.shard(shard).now());
              });
        });
  };

  faults::FaultInjector injector_a(
      hook_for(0), faults::FaultPlan::parse("outage@100+50;crac:0@120+100"));
  faults::FaultInjector injector_b(
      hook_for(1), faults::FaultPlan::parse("crash:3@10+5;surge:1@90+30x2.0"));

  std::vector<double> edges_a, edges_b;
  injector_a.subscribe([&](const faults::FaultEvent&, bool, double now_s) {
    edges_a.push_back(now_s);
    return true;
  });
  injector_b.subscribe([&](const faults::FaultEvent&, bool, double now_s) {
    edges_b.push_back(now_s);
    return true;
  });
  injector_a.arm();
  injector_b.arm();
  fed.run_until(300.0);

  EXPECT_TRUE(injector_a.conserved());
  EXPECT_TRUE(injector_b.conserved());
  EXPECT_EQ(edges_a, (std::vector<double>{100.0, 120.0, 150.0, 220.0}));
  EXPECT_EQ(edges_b, (std::vector<double>{10.0, 15.0, 90.0, 120.0}));
}

TEST(FederationInjector, SimulatorConstructorStillDelegates) {
  // The legacy single-kernel constructor must behave exactly as before the
  // hook refactor.
  Simulator sim;
  faults::FaultInjector injector(sim, faults::FaultPlan::parse("outage@5+2"));
  std::vector<std::pair<bool, double>> edges;
  injector.subscribe([&](const faults::FaultEvent&, bool onset, double now) {
    edges.push_back({onset, now});
    return true;
  });
  injector.arm();
  sim.run_all();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<bool, double>{true, 5.0}));
  EXPECT_EQ(edges[1], (std::pair<bool, double>{false, 7.0}));
  EXPECT_TRUE(injector.conserved());
}

TEST(FederationInjector, NullHookRejected) {
  EXPECT_THROW(faults::FaultInjector(faults::FaultInjector::ScheduleHook{},
                                     faults::FaultPlan::parse("outage@5+2")),
               std::invalid_argument);
}

TEST(FederationActuator, IndependentPlanesOnTwoShardClocksMatchSerialRuns) {
  // ActuatorPlane is already per-instance and clock-passed (the PR 7 audit
  // found no captured kernel); this pins that: two planes driven from two
  // shard clocks reproduce standalone drives exactly.
  const auto drive = [](sensing::ActuatorPlane& plane, double base_s) {
    sensing::ActuatorCommand command;
    command.kind = sensing::CommandKind::kPstate;
    command.target = 2;
    command.value = 1.0;
    plane.issue(command, base_s);
    plane.tick(base_s + 30.0);
    command.value = 2.0;
    plane.issue(command, base_s + 60.0);
    plane.tick(base_s + 90.0);
  };

  sensing::ActuatorPlaneConfig plane_config;
  plane_config.max_attempts = 3;

  sensing::ActuatorPlane serial_a(plane_config);
  serial_a.set_applier([](const sensing::ActuatorCommand&) { return true; });
  drive(serial_a, 10.0);
  sensing::ActuatorPlane serial_b(plane_config);
  serial_b.set_applier([](const sensing::ActuatorCommand&) { return true; });
  drive(serial_b, 17.0);

  ShardedConfig config;
  config.shards = 2;
  config.threads = 2;
  config.uniform_lookahead_s = 1.0;
  ShardedSimulator fed(config);
  sensing::ActuatorPlane fed_a(plane_config);
  fed_a.set_applier([](const sensing::ActuatorCommand&) { return true; });
  sensing::ActuatorPlane fed_b(plane_config);
  fed_b.set_applier([](const sensing::ActuatorCommand&) { return true; });
  fed.shard(0).schedule_at(
      10.0, [&fed_a, &fed, &drive] { drive(fed_a, fed.shard(0).now()); });
  fed.shard(1).schedule_at(
      17.0, [&fed_b, &fed, &drive] { drive(fed_b, fed.shard(1).now()); });
  fed.run_until(200.0);

  EXPECT_EQ(fed_a.issued(), serial_a.issued());
  EXPECT_EQ(fed_a.acked(), serial_a.acked());
  EXPECT_EQ(fed_a.failed(), serial_a.failed());
  EXPECT_EQ(fed_a.retries(), serial_a.retries());
  EXPECT_EQ(fed_b.issued(), serial_b.issued());
  EXPECT_EQ(fed_b.acked(), serial_b.acked());
  EXPECT_EQ(fed_b.failed(), serial_b.failed());
  EXPECT_EQ(fed_b.retries(), serial_b.retries());
}

// ---------------------------------------------------------------------------
// Kernel primitives added for the federation: run_before / next_time
// ---------------------------------------------------------------------------

template <typename Sim>
void run_before_is_half_open() {
  Sim sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&fired] { fired.push_back(1); });
  sim.schedule_at(2.0, [&fired] { fired.push_back(2); });
  sim.schedule_at(2.0, [&fired] { fired.push_back(3); });
  sim.schedule_at(3.0, [&fired] { fired.push_back(4); });

  EXPECT_EQ(sim.next_time(), 1.0);
  EXPECT_EQ(sim.run_before(2.0), 1u);  // strictly before: only t = 1
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 1.0);  // run_before leaves now() at the last event
  EXPECT_EQ(sim.next_time(), 2.0);

  EXPECT_EQ(sim.run_before(2.5), 2u);  // both t = 2 events, FIFO order
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.next_time(), 3.0);

  EXPECT_EQ(sim.run_before(3.0), 0u);  // t = 3 is excluded
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.next_time(), std::numeric_limits<double>::infinity());
}

TEST(ShardedSimKernel, RunBeforeIsHalfOpenOnCalendar) {
  run_before_is_half_open<CalendarSimulator>();
}

TEST(ShardedSimKernel, RunBeforeIsHalfOpenOnHeap) {
  run_before_is_half_open<HeapSimulator>();
}

template <typename Sim>
void next_time_skips_cancelled_events() {
  Sim sim;
  bool fired = false;
  const auto dead = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [&fired] { fired = true; });
  sim.cancel(dead);
  EXPECT_EQ(sim.next_time(), 2.0);
  EXPECT_EQ(sim.run_before(5.0), 1u);
  EXPECT_TRUE(fired);
}

TEST(ShardedSimKernel, NextTimeSkipsCancelledOnCalendar) {
  next_time_skips_cancelled_events<CalendarSimulator>();
}

TEST(ShardedSimKernel, NextTimeSkipsCancelledOnHeap) {
  next_time_skips_cancelled_events<HeapSimulator>();
}

// ---------------------------------------------------------------------------
// Degraded links through the federation mailboxes
// ---------------------------------------------------------------------------

/// One tagged delivery as the hook observed it.
struct TaggedLog {
  std::size_t dst;
  double when_s;
  std::uint64_t tag;
  std::vector<std::uint64_t> payload;

  bool operator==(const TaggedLog& o) const {
    return dst == o.dst && when_s == o.when_s && tag == o.tag &&
           payload == o.payload;
  }
};

ShardedConfig plan_config(std::size_t shards, std::size_t threads) {
  ShardedConfig config;
  config.shards = shards;
  config.threads = threads;
  config.uniform_lookahead_s = 0.05;
  return config;
}

/// Runs a fixed tagged-message script (each shard sends to its successor
/// throughout the degradation windows) and returns everything observable.
struct PlanRunResult {
  std::vector<TaggedLog> logs;
  std::uint64_t sent = 0;
  std::uint64_t redelivered = 0;
  double now_s = 0.0;
};

PlanRunResult run_link_plan_script(const network::InterDcLinkPlan& plan,
                                   std::size_t threads) {
  const std::size_t shards = plan.site_count();
  ShardedSimulator fed(plan_config(shards, threads));
  PlanRunResult result;
  // The hook runs serially at barriers, so one shared log is race-free.
  fed.set_tagged_delivery([&result](std::size_t dst, double when_s,
                                    std::uint64_t tag,
                                    const std::vector<std::uint64_t>& p) {
    result.logs.push_back({dst, when_s, tag, p});
  });
  fed.set_link_plan(&plan);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::uint64_t k = 0; k < 40; ++k) {
      const double t = 0.05 + 0.1 * static_cast<double>(k);
      fed.shard(s).schedule_at(t, [&fed, s, k, shards] {
        fed.send_tagged(s, (s + 1) % shards, 0.06, 1,
                        {static_cast<std::uint64_t>(s), k});
      });
    }
  }
  fed.run_all();
  result.sent = fed.messages_sent();
  result.redelivered = fed.messages_redelivered();
  result.now_s = fed.now();
  return result;
}

TEST(FederationLinkPlan, DegradedRunsAreConformantAcrossThreadCounts) {
  network::InterDcLinkPlan plan(3);
  plan.slow(0, 1, 0.5, 3.0, 3.0);
  plan.lose(1, 2, 1.0, 4.0, 0.7);
  plan.partition(2, 0, 2.0, 5.0);  // closed: redelivery, no parking
  const PlanRunResult serial = run_link_plan_script(plan, 1);
  EXPECT_EQ(120U, serial.sent);
  EXPECT_EQ(120U, serial.logs.size());  // degraded, never dropped
  EXPECT_GT(serial.redelivered, 0U);
  for (const std::size_t threads : {2U, 8U}) {
    const PlanRunResult threaded = run_link_plan_script(plan, threads);
    EXPECT_EQ(serial.logs, threaded.logs) << "threads=" << threads;
    EXPECT_EQ(serial.sent, threaded.sent);
    EXPECT_EQ(serial.redelivered, threaded.redelivered);
    EXPECT_EQ(serial.now_s, threaded.now_s);
  }
}

TEST(FederationLinkPlan, AttachedPlanKeepsEachPairAnOrderedConnection) {
  // With a plan attached the (src, dst) channel is one ordered connection:
  // a later send never undercuts an earlier send's (possibly redelivered)
  // delivery time, so per-pair FIFO holds even through lossy windows.
  network::InterDcLinkPlan plan(2);
  plan.lose(0, 1, 0.0, 6.0, 0.9);
  const PlanRunResult run = run_link_plan_script(plan, 1);
  double last_01 = 0.0;
  std::uint64_t next_k = 0;
  for (const TaggedLog& log : run.logs) {
    if (log.dst != 1 || log.payload[0] != 0) continue;
    EXPECT_GE(log.when_s, last_01);
    last_01 = log.when_s;
    EXPECT_EQ(next_k, log.payload[1]);  // strictly in send order
    ++next_k;
  }
  EXPECT_EQ(40U, next_k);
}

TEST(FederationLinkPlan, OpenPartitionParksThenHealsInFifoOrder) {
  network::InterDcLinkPlan plan(2);
  plan.partition(0, 1, 1.0);
  ShardedSimulator fed(plan_config(2, 1));
  std::vector<TaggedLog> logs;
  fed.set_tagged_delivery([&logs](std::size_t dst, double when_s,
                                  std::uint64_t tag,
                                  const std::vector<std::uint64_t>& p) {
    logs.push_back({dst, when_s, tag, p});
  });
  fed.set_link_plan(&plan);
  for (std::uint64_t k = 0; k < 5; ++k) {
    const double t = 1.1 + 0.1 * static_cast<double>(k);
    fed.shard(0).schedule_at(
        t, [&fed, k] { fed.send_tagged(0, 1, 0.06, 7, {k}); });
  }
  fed.run_until(3.0);
  EXPECT_EQ(5U, fed.messages_parked());
  EXPECT_EQ(0U, fed.pending());  // parked messages are not pending events
  EXPECT_TRUE(logs.empty());

  plan.heal(0, 1, 5.0);  // at/beyond the committed horizon
  fed.run_until(10.0);
  EXPECT_EQ(0U, fed.messages_parked());
  EXPECT_GE(fed.messages_redelivered(), 5U);
  ASSERT_EQ(5U, logs.size());
  double last = 0.0;
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(k, logs[k].payload[0]);  // FIFO drain in send order
    EXPECT_GE(logs[k].when_s, 5.0);    // nothing lands before the heal
    EXPECT_GE(logs[k].when_s, last);
    last = logs[k].when_s;
  }
}

TEST(FederationLinkPlan, ParkedCapacityOverflowThrows) {
  network::LinkPolicy policy;
  policy.parked_capacity = 2;
  network::InterDcLinkPlan plan(2, policy);
  plan.partition(0, 1, 0.5);
  ShardedSimulator fed(plan_config(2, 1));
  fed.set_tagged_delivery([](std::size_t, double, std::uint64_t,
                             const std::vector<std::uint64_t>&) {});
  fed.set_link_plan(&plan);
  for (std::uint64_t k = 0; k < 3; ++k) {
    fed.shard(0).schedule_at(
        1.0 + 0.1 * static_cast<double>(k),
        [&fed, k] { fed.send_tagged(0, 1, 0.06, 7, {k}); });
  }
  EXPECT_THROW(fed.run_until(3.0), std::runtime_error);
}

TEST(FederationLinkPlan, SetLinkPlanRequirements) {
  ShardedSimulator fed(plan_config(2, 1));
  fed.set_tagged_delivery([](std::size_t, double, std::uint64_t,
                             const std::vector<std::uint64_t>&) {});
  network::InterDcLinkPlan wrong_size(3);
  EXPECT_THROW(fed.set_link_plan(&wrong_size), std::invalid_argument);

  // Swapping or detaching the plan while messages are parked would strand
  // them: rejected.
  network::InterDcLinkPlan plan(2);
  plan.partition(0, 1, 0.5);
  fed.set_link_plan(&plan);
  fed.shard(0).schedule_at(1.0,
                           [&fed] { fed.send_tagged(0, 1, 0.06, 7, {1}); });
  fed.run_until(2.0);
  ASSERT_EQ(1U, fed.messages_parked());
  EXPECT_THROW(fed.set_link_plan(nullptr), std::invalid_argument);
  network::InterDcLinkPlan other(2);
  EXPECT_THROW(fed.set_link_plan(&other), std::invalid_argument);
}

TEST(FederationLinkPlan, HealInsideExecutedHorizonIsRejected) {
  network::InterDcLinkPlan plan(2);
  plan.partition(0, 1, 1.0);
  ShardedSimulator fed(plan_config(2, 1));
  fed.set_tagged_delivery([](std::size_t, double, std::uint64_t,
                             const std::vector<std::uint64_t>&) {});
  fed.set_link_plan(&plan);
  fed.shard(0).schedule_at(1.5,
                           [&fed] { fed.send_tagged(0, 1, 0.06, 7, {1}); });
  fed.run_until(8.0);
  ASSERT_EQ(1U, fed.messages_parked());
  // The plan accepts the heal (it is after the partition start), but the
  // federation must refuse to deliver into its already-executed horizon.
  plan.heal(0, 1, 4.0);
  EXPECT_THROW(fed.run_until(10.0), std::logic_error);
}

TEST(FederationLinkPlan, SaveStateCarriesParkedTaggedMessages) {
  network::InterDcLinkPlan plan(2);
  plan.partition(0, 1, 1.0);
  ShardedSimulator fed(plan_config(2, 1));
  fed.set_tagged_delivery([](std::size_t, double, std::uint64_t,
                             const std::vector<std::uint64_t>&) {});
  fed.set_link_plan(&plan);
  for (std::uint64_t k = 0; k < 3; ++k) {
    fed.shard(0).schedule_at(
        1.1 + 0.1 * static_cast<double>(k),
        [&fed, k] { fed.send_tagged(0, 1, 0.06, 7, {k}); });
  }
  fed.run_until(2.0);
  ASSERT_EQ(3U, fed.messages_parked());
  SnapshotWriter w;
  fed.save_state(w);
  const auto bytes = w.take();

  // Rebuild from nothing, restore, heal, drain: the parked backlog crossed
  // the snapshot and still arrives in FIFO order.
  network::InterDcLinkPlan plan2(2);
  plan2.partition(0, 1, 1.0);
  ShardedSimulator fed2(plan_config(2, 1));
  std::vector<TaggedLog> logs;
  fed2.set_tagged_delivery([&logs](std::size_t dst, double when_s,
                                   std::uint64_t tag,
                                   const std::vector<std::uint64_t>& p) {
    logs.push_back({dst, when_s, tag, p});
  });
  fed2.set_link_plan(&plan2);
  SnapshotReader r(bytes);
  fed2.restore_state(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_DOUBLE_EQ(2.0, fed2.now());
  EXPECT_EQ(3U, fed2.messages_parked());
  EXPECT_EQ(fed.messages_sent(), fed2.messages_sent());
  fed2.shard(0).restore_clock(2.0);
  fed2.shard(1).restore_clock(2.0);

  plan2.heal(0, 1, 5.0);
  fed2.run_until(10.0);
  EXPECT_EQ(0U, fed2.messages_parked());
  ASSERT_EQ(3U, logs.size());
  for (std::uint64_t k = 0; k < 3; ++k) {
    EXPECT_EQ(k, logs[k].payload[0]);
    EXPECT_GE(logs[k].when_s, 5.0);
  }

  // A federation with the wrong shard count refuses the snapshot.
  ShardedSimulator fed3(plan_config(3, 1));
  SnapshotReader r3(bytes);
  EXPECT_THROW(fed3.restore_state(r3), std::invalid_argument);
}

TEST(FederationLinkPlan, SaveStateRejectsParkedClosureMessages) {
  network::InterDcLinkPlan plan(2);
  plan.partition(0, 1, 1.0);
  ShardedSimulator fed(plan_config(2, 1));
  fed.set_link_plan(&plan);
  // A closure (untagged) message cannot be serialized once parked.
  fed.shard(0).schedule_at(1.5, [&fed] { fed.send(0, 1, 0.06, [] {}); });
  fed.run_until(2.0);
  ASSERT_EQ(1U, fed.messages_parked());
  SnapshotWriter w;
  EXPECT_THROW(fed.save_state(w), std::runtime_error);
}

}  // namespace
}  // namespace epm::sim
