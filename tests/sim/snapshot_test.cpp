// Checkpoint/restore plumbing: the snapshot byte streams, the TaggedKernel
// record table, and the bit-identical continuation invariant (record-id
// order == kernel seq order among pending events).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace epm::sim {
namespace {

TEST(Snapshot, WriterReaderRoundTrip) {
  SnapshotWriter w;
  w.begin_section(0x74736574, 3);  // "test"
  w.write_u8(7);
  w.write_u32(123456789U);
  w.write_u64(0xdeadbeefcafef00dULL);
  w.write_f64(-1.25e-3);
  w.write_string("federation");
  w.write_payload({1, 2, 3});

  SnapshotReader r(w.bytes());
  r.expect_section(0x74736574, 3);
  EXPECT_EQ(7, r.read_u8());
  EXPECT_EQ(123456789U, r.read_u32());
  EXPECT_EQ(0xdeadbeefcafef00dULL, r.read_u64());
  EXPECT_DOUBLE_EQ(-1.25e-3, r.read_f64());
  EXPECT_EQ("federation", r.read_string());
  EXPECT_EQ((std::vector<std::uint64_t>{1, 2, 3}), r.read_payload());
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, ReaderRejectsCorruption) {
  SnapshotWriter w;
  w.begin_section(0x74736574, 3);
  w.write_u64(42);

  // Wrong magic and wrong version both fail loudly.
  SnapshotReader wrong_magic(w.bytes());
  EXPECT_THROW(wrong_magic.expect_section(0x74736575, 3), std::runtime_error);
  SnapshotReader wrong_version(w.bytes());
  EXPECT_THROW(wrong_version.expect_section(0x74736574, 2), std::runtime_error);

  // Truncation fails on the read, never silently zero-fills.
  std::vector<std::uint8_t> cut(w.bytes().begin(), w.bytes().end() - 3);
  SnapshotReader truncated(cut);
  truncated.expect_section(0x74736574, 3);
  EXPECT_THROW(truncated.read_u64(), std::runtime_error);
}

TEST(TaggedKernel, FiresRecordsAndSurvivesSaveRestore) {
  Simulator sim;
  TaggedKernel tk(sim);
  std::vector<std::pair<double, std::uint64_t>> fired;
  tk.on(1, [&](double now, const TagPayload& p) {
    fired.emplace_back(now, p.at(0));
  });
  tk.schedule_tagged_at(1.0, 1, {10});
  tk.schedule_tagged_at(3.0, 1, {30});
  tk.schedule_tagged_at(2.0, 1, {20});
  EXPECT_EQ(3U, tk.tagged_pending());

  sim.run_until(1.5);
  ASSERT_EQ(1U, fired.size());
  EXPECT_EQ(10U, fired[0].second);

  // Snapshot mid-run, rebuild a cold kernel, restore, finish: the
  // continuation fires the remaining records identically.
  SnapshotWriter w;
  tk.save(w);
  const auto bytes = w.take();

  Simulator sim2;
  TaggedKernel tk2(sim2);
  std::vector<std::pair<double, std::uint64_t>> fired2;
  tk2.on(1, [&](double now, const TagPayload& p) {
    fired2.emplace_back(now, p.at(0));
  });
  SnapshotReader r(bytes);
  tk2.restore(r);
  EXPECT_DOUBLE_EQ(1.5, sim2.now());
  EXPECT_EQ(2U, tk2.tagged_pending());

  sim.run_all();
  sim2.run_all();
  ASSERT_EQ(3U, fired.size());
  EXPECT_EQ((std::vector<std::pair<double, std::uint64_t>>(
                fired.begin() + 1, fired.end())),
            fired2);
  EXPECT_DOUBLE_EQ(sim.now(), sim2.now());
}

TEST(TaggedKernel, SameTimestampTiesResolveInRecordIdOrder) {
  // Two records at the same timestamp must fire in scheduling order, and a
  // restore must preserve that order (fresh seq numbers are assigned in
  // record-id order).
  const auto run = [](bool through_snapshot) {
    Simulator sim;
    TaggedKernel tk(sim);
    std::vector<std::uint64_t> order;
    tk.on(1, [&](double, const TagPayload& p) { order.push_back(p.at(0)); });
    for (std::uint64_t i = 0; i < 8; ++i) tk.schedule_tagged_at(5.0, 1, {i});
    if (through_snapshot) {
      SnapshotWriter w;
      tk.save(w);
      const auto bytes = w.take();
      Simulator sim2;
      TaggedKernel tk2(sim2);
      std::vector<std::uint64_t> order2;
      tk2.on(1, [&](double, const TagPayload& p) { order2.push_back(p.at(0)); });
      SnapshotReader r(bytes);
      tk2.restore(r);
      sim2.run_all();
      return order2;
    }
    sim.run_all();
    return order;
  };
  const auto direct = run(false);
  const auto restored = run(true);
  EXPECT_EQ((std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}), direct);
  EXPECT_EQ(direct, restored);
}

TEST(TaggedKernel, PeriodicRecordsReArmAcrossRestore) {
  Simulator sim;
  TaggedKernel tk(sim);
  std::vector<double> ticks;
  tk.on(2, [&](double now, const TagPayload&) { ticks.push_back(now); });
  tk.schedule_tagged_periodic(1.0, 2.0, 2, {});
  sim.run_until(4.0);  // fires at 1, 3
  EXPECT_EQ((std::vector<double>{1.0, 3.0}), ticks);
  EXPECT_EQ(1U, tk.tagged_pending());  // the self-rescheduled next firing

  SnapshotWriter w;
  tk.save(w);
  const auto bytes = w.take();
  Simulator sim2;
  TaggedKernel tk2(sim2);
  std::vector<double> ticks2;
  tk2.on(2, [&](double now, const TagPayload&) { ticks2.push_back(now); });
  SnapshotReader r(bytes);
  tk2.restore(r);
  sim2.run_until(8.0);
  EXPECT_EQ((std::vector<double>{5.0, 7.0}), ticks2);
}

TEST(TaggedKernel, CancelAndErrorPaths) {
  Simulator sim;
  TaggedKernel tk(sim);
  int fired = 0;
  tk.on(1, [&](double, const TagPayload&) { ++fired; });
  // Double registration of a tag is a bug.
  EXPECT_THROW(tk.on(1, [](double, const TagPayload&) {}),
               std::invalid_argument);
  // Scheduling an unregistered tag is rejected up front.
  EXPECT_THROW(tk.schedule_tagged_at(1.0, 99, {}), std::invalid_argument);

  const std::uint64_t id = tk.schedule_tagged_at(1.0, 1, {});
  tk.cancel_tagged(id);
  tk.cancel_tagged(id);  // unknown/already-cancelled ids are a no-op
  sim.run_all();
  EXPECT_EQ(0, fired);

  // An untagged pending event makes the kernel unsnapshottable.
  tk.schedule_tagged_at(10.0, 1, {});
  sim.schedule_at(11.0, [] {});
  SnapshotWriter w;
  EXPECT_THROW(tk.save(w), std::runtime_error);
}

TEST(SimulatorRestoreClock, RewindsAndSweepsCancelledEntries) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_at(5.0, [&] { ++fired; });
  sim.cancel(h);
  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(20.0, sim.now());
  // restore_clock rebases an idle kernel to any time, past included; the
  // cancelled tombstone must not block the rewind.
  sim.restore_clock(2.5);
  EXPECT_DOUBLE_EQ(2.5, sim.now());
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(1, fired);
  EXPECT_DOUBLE_EQ(3.0, sim.now());
}

}  // namespace
}  // namespace epm::sim
