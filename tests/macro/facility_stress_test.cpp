// Stress-path integration tests: the facility under power overload, the
// macro manager's risk alerts on an undersized envelope, and the
// uncoordinated stack leaving CRACs on autopilot.
#include <gtest/gtest.h>

#include "macro/coordinator.h"
#include "macro/uncoordinated.h"

namespace epm::macro {
namespace {

FacilityConfig undersized_facility() {
  auto config = make_reference_facility(40);
  // Shrink the UPS to ~45% of the fleet's peak draw.
  config.power.critical_capacity_w = 2 * 40 * 300.0 * 0.45;
  config.power.rack_capacity_w = config.power.critical_capacity_w;  // racks ample
  return config;
}

TEST(FacilityStress, OverloadFlagsWhenFleetExceedsUps) {
  Facility facility(undersized_facility());
  // Full fleet at high demand busts the undersized UPS.
  std::size_t overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    const auto step = facility.step({3800.0, 2500.0}, 20.0);
    if (step.power_overloaded) ++overloaded;
  }
  EXPECT_GT(overloaded, 5u);
  EXPECT_EQ(facility.total_overload_epochs(), overloaded);
}

TEST(FacilityStress, MacroBudgetingAvoidsMostOverloads) {
  Facility plain(undersized_facility());
  Facility managed_facility(undersized_facility());
  MacroResourceManager manager(managed_facility);

  std::size_t plain_overloads = 0;
  std::size_t managed_overloads = 0;
  for (int i = 0; i < 120; ++i) {
    if (plain.step({1500.0, 1000.0}, 20.0).power_overloaded) ++plain_overloads;
    if (manager.step({1500.0, 1000.0}, 20.0).power_overloaded) ++managed_overloads;
  }
  // The static full fleet idles above the tiny UPS the whole time; the
  // macro manager right-sizes under its budget and stays clear after the
  // first coordination rounds.
  EXPECT_GT(plain_overloads, 100u);
  EXPECT_LT(managed_overloads, 30u);
}

TEST(FacilityStress, RiskAlertsFireOnSaturatedPlans) {
  Facility facility(make_reference_facility(10));  // tiny fleet
  MacroResourceManager manager(facility);
  // Demand far beyond what 10 servers/service can carry.
  for (int i = 0; i < 30; ++i) manager.step({50000.0, 50000.0}, 20.0);
  EXPECT_GT(manager.log().count(DecisionKind::kRiskAlert), 0u);
  // And the clusters really are saturated: violations abound.
  EXPECT_GT(facility.total_sla_violation_epochs(), 20u);
}

TEST(FacilityStress, UncoordinatedLeavesCracsOnAutopilot) {
  Facility facility(make_reference_facility(40));
  UncoordinatedStack stack(facility);
  for (int i = 0; i < 90; ++i) stack.step({2000.0, 1500.0}, 20.0);
  // 90 minutes at a 15-minute control period: the CRAC acted on its own.
  EXPECT_GE(facility.room().crac(0).control_actions(), 5u);
}

TEST(FacilityStress, ManagerStepCountsMatchFacility) {
  Facility facility(make_reference_facility(20));
  MacroResourceManager manager(facility);
  for (int i = 0; i < 25; ++i) manager.step({500.0, 300.0}, 20.0);
  EXPECT_EQ(facility.epochs_run(), 25u);
  EXPECT_NEAR(facility.now_s(), 25 * 60.0, 1e-6);
}

}  // namespace
}  // namespace epm::macro
