#include "macro/tiers.h"

#include <gtest/gtest.h>

namespace epm::macro {
namespace {

TieredServiceSpec three_tier_service() {
  TieredServiceSpec spec;
  TierSpec web;
  web.name = "web";
  web.fanout = 1.0;
  web.service_demand_s = 0.002;
  TierSpec app;
  app.name = "app";
  app.fanout = 2.0;
  app.service_demand_s = 0.005;
  TierSpec db;
  db.name = "db";
  db.fanout = 4.0;
  db.service_demand_s = 0.001;
  spec.tiers = {web, app, db};
  spec.end_to_end_sla_s = 0.06;
  return spec;
}

TEST(SizeTiers, FeasibleAndMeetsEndToEndSla) {
  const auto decision = size_tiers(three_tier_service(), 1000.0);
  ASSERT_TRUE(decision.feasible);
  ASSERT_EQ(decision.tiers.size(), 3u);
  EXPECT_LE(decision.end_to_end_response_s, 0.06 + 1e-9);
  for (const auto& tier : decision.tiers) {
    EXPECT_GE(tier.servers, 1u);
    EXPECT_LE(tier.predicted_utilization, 0.90 + 1e-9);
  }
}

TEST(SizeTiers, BudgetsSumToSla) {
  const auto decision = size_tiers(three_tier_service(), 1000.0);
  ASSERT_TRUE(decision.feasible);
  double total = 0.0;
  for (const auto& tier : decision.tiers) total += tier.latency_budget_s;
  EXPECT_NEAR(total, 0.06, 1e-9);
}

TEST(SizeTiers, BeatsOrMatchesEqualSplit) {
  const auto spec = three_tier_service();
  for (double rate : {200.0, 1000.0, 4000.0}) {
    const auto optimized = size_tiers(spec, rate);
    const auto equal = size_tiers_equal_split(spec, rate);
    ASSERT_TRUE(optimized.feasible) << "rate " << rate;
    if (equal.feasible) {
      EXPECT_LE(optimized.total_power_w, equal.total_power_w + 1e-6)
          << "rate " << rate;
    }
  }
}

TEST(SizeTiers, HeavyTierGetsMoreBudget) {
  // The app tier (fanout 2 x 5 ms) dominates the work; it should receive a
  // larger latency budget than the cheap web tier (1 x 2 ms).
  const auto decision = size_tiers(three_tier_service(), 2000.0);
  ASSERT_TRUE(decision.feasible);
  EXPECT_GT(decision.tiers[1].latency_budget_s, decision.tiers[0].latency_budget_s);
}

TEST(SizeTiers, TierFleetsScaleWithDemand) {
  const auto spec = three_tier_service();
  const auto low = size_tiers(spec, 500.0);
  const auto high = size_tiers(spec, 4000.0);
  ASSERT_TRUE(low.feasible);
  ASSERT_TRUE(high.feasible);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(high.tiers[i].servers, low.tiers[i].servers) << "tier " << i;
  }
  EXPECT_GT(high.total_power_w, low.total_power_w);
}

TEST(SizeTiers, DbTierHasMostServersUnderFanout) {
  // 4x fan-out at the storage tier: its request rate is 4x the external
  // rate, so (despite tiny per-request demand) it needs real capacity.
  const auto decision = size_tiers(three_tier_service(), 4000.0);
  ASSERT_TRUE(decision.feasible);
  // db rate = 16000/s at 1ms -> >= 16 busy-server equivalents.
  EXPECT_GE(decision.tiers[2].servers, 16u);
}

TEST(SizeTiers, SingleTierDegeneratesToJointPolicy) {
  TieredServiceSpec spec;
  TierSpec only;
  only.service_demand_s = 0.01;
  spec.tiers = {only};
  spec.end_to_end_sla_s = 0.1;
  const auto decision = size_tiers(spec, 1000.0);
  ASSERT_TRUE(decision.feasible);
  power::ServerPowerModel model{power::ServerPowerConfig{}};
  JointPolicyConfig joint;
  joint.switching_penalty_w = 0.0;
  const auto direct = decide_joint(model, 2000, 0, 1000.0, 0.01, 0.1, joint);
  EXPECT_EQ(decision.tiers[0].servers, direct.servers);
  EXPECT_EQ(decision.tiers[0].pstate, direct.pstate);
}

TEST(SizeTiers, InfeasibleWhenSlaTooTight) {
  auto spec = three_tier_service();
  spec.end_to_end_sla_s = 0.005;  // below the sum of bare service times
  const auto decision = size_tiers(spec, 1000.0);
  EXPECT_FALSE(decision.feasible);
}

TEST(SizeTiers, ZeroDemandUsesMinimalFleets) {
  const auto decision = size_tiers(three_tier_service(), 0.0);
  ASSERT_TRUE(decision.feasible);
  for (const auto& tier : decision.tiers) EXPECT_EQ(tier.servers, 1u);
}

TEST(SizeTiers, Validation) {
  TieredServiceSpec empty;
  EXPECT_THROW(size_tiers(empty, 100.0), std::invalid_argument);
  auto spec = three_tier_service();
  EXPECT_THROW(size_tiers(spec, -1.0), std::invalid_argument);
  TierSizingConfig config;
  config.budget_steps = 2;  // fewer steps than tiers
  EXPECT_THROW(size_tiers(spec, 100.0, config), std::invalid_argument);
  spec.tiers[0].fanout = 0.5;
  EXPECT_THROW(size_tiers(spec, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::macro
