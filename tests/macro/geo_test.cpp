#include "macro/geo.h"

#include <gtest/gtest.h>

namespace epm::macro {
namespace {

std::vector<SiteConfig> three_sites() {
  SiteConfig cool;  // cold climate, economizer, cheap power, farther away
  cool.name = "cool";
  cool.servers = 500;
  cool.plant.has_economizer = true;
  cool.electricity_price_per_kwh = 0.09;
  cool.network_latency_s = 0.050;

  SiteConfig home;  // moderate everything, closest to users
  home.name = "home";
  home.servers = 500;
  home.plant.has_economizer = true;  // modern site; rarely cold enough
  home.electricity_price_per_kwh = 0.10;
  home.network_latency_s = 0.010;

  SiteConfig hot;  // hot climate, expensive power
  hot.name = "hot";
  hot.servers = 500;
  hot.electricity_price_per_kwh = 0.16;
  hot.network_latency_s = 0.040;
  return {cool, home, hot};
}

GeoCoordinator make_coordinator() { return GeoCoordinator(three_sites()); }

TEST(GeoCoordinator, UnitCostOrdersSites) {
  auto geo = make_coordinator();
  // Cold weather at the cool site (economizer active) vs hot everywhere.
  const double cool_cost = geo.unit_cost_per_rps(0, 5.0, 0.5);
  const double home_cost = geo.unit_cost_per_rps(1, 20.0, 0.5);
  const double hot_cost = geo.unit_cost_per_rps(2, 33.0, 0.5);
  EXPECT_LT(cool_cost, home_cost);
  EXPECT_LT(home_cost, hot_cost);
}

TEST(GeoCoordinator, EconomizerLowersUnitCost) {
  auto geo = make_coordinator();
  const double winter = geo.unit_cost_per_rps(0, 2.0, 0.5);
  const double summer = geo.unit_cost_per_rps(0, 25.0, 0.5);
  EXPECT_LT(winter, summer);
}

TEST(GeoCoordinator, RouteConservesDemand) {
  auto geo = make_coordinator();
  const double rate = 40000.0;
  const auto decision = geo.route(rate, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_NEAR(decision.served_rate_per_s + decision.dropped_rate_per_s, rate, 1e-6);
  double sum = 0.0;
  for (const auto& a : decision.allocations) sum += a.arrival_rate_per_s;
  EXPECT_NEAR(sum, decision.served_rate_per_s, 1e-6);
}

TEST(GeoCoordinator, CheapCoolSiteFillsFirst) {
  auto geo = make_coordinator();
  // Demand below one site's capacity: everything lands on the cool site.
  const auto decision = geo.route(20000.0, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_NEAR(decision.allocations[0].arrival_rate_per_s, 20000.0, 1e-6);
  EXPECT_DOUBLE_EQ(decision.allocations[2].arrival_rate_per_s, 0.0);
  EXPECT_TRUE(decision.allocations[0].economizer_active);
}

TEST(GeoCoordinator, FollowTheWeather) {
  auto geo = make_coordinator();
  // In the cool site's summer heat wave, its advantage shrinks enough that
  // the (closer, cheaper-cooling) home site should win.
  const auto decision = geo.route(20000.0, {30.0, 12.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_GT(decision.allocations[1].arrival_rate_per_s, 0.0);
  EXPECT_DOUBLE_EQ(decision.allocations[0].arrival_rate_per_s, 0.0);
}

TEST(GeoCoordinator, CapacityOverflowsToNextSite) {
  auto geo = make_coordinator();
  // 500 servers * 70 rps usable = 35000 rps per site.
  const auto decision = geo.route(50000.0, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_NEAR(decision.allocations[0].arrival_rate_per_s, 35000.0, 1.0);
  EXPECT_NEAR(decision.allocations[1].arrival_rate_per_s, 15000.0, 1.0);
  EXPECT_DOUBLE_EQ(decision.dropped_rate_per_s, 0.0);
}

TEST(GeoCoordinator, DropsWhenAllSitesFull) {
  auto geo = make_coordinator();
  const auto decision = geo.route(200000.0, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_GT(decision.dropped_rate_per_s, 0.0);
  EXPECT_NEAR(decision.served_rate_per_s, 3 * 35000.0, 3.0);
}

TEST(GeoCoordinator, LatencySlaExcludesFarSites) {
  auto sites = three_sites();
  sites[0].network_latency_s = 0.2;  // 2x0.2 + response > 0.25 SLA
  GeoCoordinator geo(std::move(sites));
  EXPECT_FALSE(geo.latency_feasible(0));
  EXPECT_TRUE(geo.latency_feasible(1));
  const auto decision = geo.route(20000.0, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(decision.allocations[0].arrival_rate_per_s, 0.0);
  EXPECT_GT(decision.allocations[1].arrival_rate_per_s, 0.0);
}

TEST(GeoCoordinator, SingleHomeBaselineCostsMore) {
  auto geo = make_coordinator();
  const std::vector<double> temps{5.0, 20.0, 33.0};
  const std::vector<double> rh{0.5, 0.5, 0.5};
  const auto aware = geo.route(30000.0, temps, rh);
  const auto homed = geo.route_single_home(30000.0, 2, temps, rh);  // hot home
  EXPECT_GT(homed.total_cost_per_hour, aware.total_cost_per_hour);
  EXPECT_NEAR(homed.served_rate_per_s, aware.served_rate_per_s, 1e-6);
}

TEST(GeoCoordinator, MeanLatencyWeightedByTraffic) {
  auto geo = make_coordinator();
  const auto decision = geo.route(20000.0, {5.0, 20.0, 33.0}, {0.5, 0.5, 0.5});
  // All on the cool site: 2 * 0.05 network + M/G/1-PS response at ~0.7.
  EXPECT_NEAR(decision.mean_latency_s, 0.1 + 0.01 / 0.3, 3e-4);
}

TEST(GeoCoordinator, Validation) {
  EXPECT_THROW(GeoCoordinator({}), std::invalid_argument);
  auto geo = make_coordinator();
  EXPECT_THROW(geo.route(-1.0, {1, 2, 3}, {0.5, 0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(geo.route(1.0, {1.0}, {0.5}), std::invalid_argument);
  EXPECT_THROW(geo.unit_cost_per_rps(9, 1.0, 0.5), std::invalid_argument);
  auto bad = three_sites();
  bad[0].distribution_overhead = 0.9;
  EXPECT_THROW(GeoCoordinator(std::move(bad)), std::invalid_argument);
}

}  // namespace
}  // namespace epm::macro
