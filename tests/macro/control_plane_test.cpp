// Unit tests for the survivable control plane's core: lease election
// (epoch-partitioned tokens, staggered TTLs, crash/hang semantics), the
// replicated command journal (idempotent merge, token fencing, replay
// order), and the controller replica (staged program issuance, failover
// replay).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "macro/control_plane/controller.h"
#include "macro/control_plane/journal.h"
#include "macro/control_plane/lease.h"
#include "sim/snapshot.h"

namespace epm::macro {
namespace {

LeaseConfig lease_config(std::uint64_t replicas, std::uint64_t id) {
  LeaseConfig c;
  c.replicas = replicas;
  c.id = id;
  c.ttl_s = 2.0;
  c.ttl_stagger_s = 0.5;
  c.initial_leader = 0;
  return c;
}

TEST(LeaseState, SeededLeaderHeartbeatsFromTimeZero) {
  LeaseState leader(lease_config(4, 0));
  EXPECT_EQ(LeaseRole::kLeader, leader.role());
  EXPECT_EQ(4U, leader.token());  // smallest positive token == 0 mod 4
  EXPECT_EQ(LeaseAction::kHeartbeat, leader.tick(0.0));

  LeaseState follower(lease_config(4, 1));
  EXPECT_EQ(LeaseRole::kFollower, follower.role());
  EXPECT_EQ(4U, follower.max_token_seen());
  EXPECT_EQ(0U, follower.believed_leader());
  EXPECT_EQ(LeaseAction::kNone, follower.tick(0.0));
}

TEST(LeaseState, StaggeredTtlElectsTheLowestFollowerFirst) {
  LeaseState r1(lease_config(4, 1));
  LeaseState r2(lease_config(4, 2));
  // Last heartbeat at t = 1.0; r1's deadline is 2.5, r2's is 3.0.
  r1.on_heartbeat(4, 0, 1.0);
  r2.on_heartbeat(4, 0, 1.0);
  EXPECT_EQ(LeaseAction::kNone, r1.tick(3.4));
  EXPECT_EQ(LeaseAction::kClaimed, r1.tick(3.5));
  EXPECT_EQ(5U, r1.token());  // next token above 4 congruent to 1 mod 4
  EXPECT_TRUE(r1.is_leader());
  // r1's claim heartbeat lands before r2's 4.0 deadline: r2 adopts it.
  EXPECT_EQ(LeaseAction::kNone, r2.tick(3.9));
  r2.on_heartbeat(5, 1, 3.95);
  EXPECT_EQ(LeaseAction::kNone, r2.tick(4.1));
  EXPECT_EQ(1U, r2.believed_leader());
}

TEST(LeaseState, TokensPartitionByReplicaModulus) {
  // Even claiming blind, two replicas can never mint the same token.
  LeaseState r1(lease_config(3, 1));
  LeaseState r2(lease_config(3, 2));
  ASSERT_EQ(LeaseAction::kClaimed, r1.tick(10.0));
  ASSERT_EQ(LeaseAction::kClaimed, r2.tick(10.0));
  EXPECT_NE(r1.token(), r2.token());
  EXPECT_EQ(1U, r1.token() % 3);
  EXPECT_EQ(2U, r2.token() % 3);
  // The higher token deposes the lower on first contact.
  if (r2.token() > r1.token()) {
    r1.on_heartbeat(r2.token(), 2, 10.1);
    EXPECT_EQ(LeaseRole::kFollower, r1.role());
    EXPECT_EQ(1U, r1.depositions());
    EXPECT_TRUE(r2.is_leader());
  }
}

TEST(LeaseState, StaleHeartbeatsAreCountedAndIgnored) {
  LeaseState r1(lease_config(4, 1));
  r1.on_heartbeat(8, 0, 1.0);  // newer leader view
  const double before = r1.last_heartbeat_s();
  r1.on_heartbeat(4, 0, 2.0);  // stale token
  EXPECT_EQ(1U, r1.stale_heartbeats());
  EXPECT_EQ(before, r1.last_heartbeat_s());  // stale HBs never refresh TTL
}

TEST(LeaseState, CrashLosesVolatileStateAndRestartRejoinsFromJournal) {
  LeaseState r0(lease_config(4, 0));
  ASSERT_TRUE(r0.is_leader());
  r0.crash();
  EXPECT_EQ(LeaseRole::kCrashed, r0.role());
  EXPECT_EQ(LeaseAction::kNone, r0.tick(100.0));
  EXPECT_EQ(1U, r0.crashes());
  // Restart: follower, fencing floor from the durable journal, full grace.
  r0.restart(50.0, 12);
  EXPECT_EQ(LeaseRole::kFollower, r0.role());
  EXPECT_EQ(12U, r0.max_token_seen());
  EXPECT_EQ(LeaseAction::kNone, r0.tick(51.0));
  // Grace expired with no leader: claims above the journal token.
  EXPECT_EQ(LeaseAction::kClaimed, r0.tick(52.5));
  EXPECT_EQ(16U, r0.token());
}

TEST(LeaseState, HungLeaderWakesStaleAndIsDeposed) {
  LeaseState r0(lease_config(4, 0));
  ASSERT_TRUE(r0.is_leader());
  r0.hang();
  EXPECT_EQ(LeaseAction::kNone, r0.tick(5.0));
  EXPECT_TRUE(r0.hung());
  // A heartbeat delivered while hung is lost on the floor.
  r0.on_heartbeat(5, 1, 5.5);
  EXPECT_EQ(4U, r0.max_token_seen());
  r0.resume();
  // Woken, it still believes it leads — the split-brain window.
  EXPECT_EQ(LeaseAction::kHeartbeat, r0.tick(6.0));
  EXPECT_EQ(4U, r0.token());
  // First higher-token heartbeat deposes it.
  r0.on_heartbeat(5, 1, 6.1);
  EXPECT_EQ(LeaseRole::kFollower, r0.role());
  EXPECT_EQ(1U, r0.depositions());
}

TEST(LeaseState, SaveRestoreRoundTripsExactly) {
  LeaseState a(lease_config(4, 1));
  a.on_heartbeat(4, 0, 1.0);
  ASSERT_EQ(LeaseAction::kClaimed, a.tick(9.0));
  a.on_heartbeat(10, 2, 9.5);

  sim::SnapshotWriter w;
  a.save(w);
  const std::vector<std::uint8_t> bytes = w.take();

  LeaseState b(lease_config(4, 1));
  sim::SnapshotReader r(bytes);
  b.restore(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.role(), b.role());
  EXPECT_EQ(a.token(), b.token());
  EXPECT_EQ(a.max_token_seen(), b.max_token_seen());
  EXPECT_EQ(a.claimed_tokens(), b.claimed_tokens());
  EXPECT_EQ(a.depositions(), b.depositions());
  EXPECT_EQ(a.last_heartbeat_s(), b.last_heartbeat_s());

  LeaseState wrong(lease_config(4, 2));
  sim::SnapshotReader r2(bytes);
  EXPECT_THROW(wrong.restore(r2), std::invalid_argument);
}

TEST(CommandJournal, UidBindsOriginTokenAndSurvivesRetokenedReplay) {
  CommandJournal origin;
  const ControlCommand cmd =
      origin.append_new(7, ControlOp::kPowerCap, 2, 0.7, 0);
  EXPECT_EQ((7ULL << kJournalSeqBits) | 0ULL, cmd.uid);
  EXPECT_EQ(7U, origin.max_token());

  // Replication to a peer, then a replay under a higher token: the uid is
  // unchanged, so the merge is a duplicate, not a new command.
  CommandJournal peer;
  EXPECT_TRUE(peer.merge(cmd, 0));
  ControlCommand replay = cmd;
  replay.token = 11;
  EXPECT_FALSE(peer.merge(replay, 0));
  EXPECT_EQ(1U, peer.duplicates());
  EXPECT_EQ(1U, peer.size());
}

TEST(CommandJournal, MergeFencesDeposedTokensAndAdvancesSeq) {
  CommandJournal peer;
  ControlCommand fresh;
  fresh.uid = (9ULL << kJournalSeqBits) | 4ULL;
  fresh.seq = 4;
  fresh.token = 9;
  EXPECT_TRUE(peer.merge(fresh, 9));

  // A deposed leader's record (token below the fence) is rejected.
  ControlCommand stale;
  stale.uid = (5ULL << kJournalSeqBits) | 5ULL;
  stale.seq = 5;
  stale.token = 5;
  EXPECT_FALSE(peer.merge(stale, 9));
  EXPECT_EQ(1U, peer.rejected_stale());

  // next_seq advanced past the merged record, so a new command here never
  // collides with the replicated slot.
  const ControlCommand next =
      peer.append_new(9, ControlOp::kFleetActive, 0, 20.0, kAdHocStep);
  EXPECT_EQ(5U, next.seq);
}

TEST(CommandJournal, ReplayOrderIsSeqOrderedAndRoundTrips) {
  CommandJournal j;
  j.append_new(3, ControlOp::kPowerCap, 0, 0.7, 0);
  j.append_new(3, ControlOp::kCracSetpoint, 1, 27.0, 1);
  j.append_new(3, ControlOp::kFleetActive, 2, 14.0, 2);
  const std::vector<ControlCommand> order = j.replay_order();
  ASSERT_EQ(3U, order.size());
  EXPECT_EQ(0U, order[0].seq);
  EXPECT_EQ(2U, order[2].seq);
  EXPECT_TRUE(j.has_program_step(1));
  EXPECT_FALSE(j.has_program_step(3));

  sim::SnapshotWriter w;
  j.save(w);
  const std::vector<std::uint8_t> bytes = w.take();
  CommandJournal back;
  sim::SnapshotReader r(bytes);
  back.restore(r);
  EXPECT_TRUE(r.at_end());
  ASSERT_EQ(3U, back.size());
  const std::vector<ControlCommand> replayed = back.replay_order();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(order[i].uid, replayed[i].uid);
    EXPECT_EQ(order[i].value, replayed[i].value);
    EXPECT_EQ(order[i].program_step, replayed[i].program_step);
  }
}

TEST(CommandJournal, EncodeDecodeRoundTripsEveryField) {
  ControlCommand cmd;
  cmd.uid = (13ULL << kJournalSeqBits) | 7ULL;
  cmd.seq = 7;
  cmd.token = 15;
  cmd.op = ControlOp::kPauseConsolidation;
  cmd.dc = 3;
  cmd.value = -0.0;  // signed-zero must survive bit-exactly
  cmd.program_step = kAdHocStep;
  const ControlCommand back = decode_command(encode_command(cmd));
  EXPECT_EQ(cmd.uid, back.uid);
  EXPECT_EQ(cmd.seq, back.seq);
  EXPECT_EQ(cmd.token, back.token);
  EXPECT_EQ(cmd.op, back.op);
  EXPECT_EQ(cmd.dc, back.dc);
  EXPECT_EQ(std::signbit(cmd.value), std::signbit(back.value));
  EXPECT_EQ(cmd.program_step, back.program_step);
}

ControllerConfig controller_config(std::uint64_t replicas, std::uint64_t id,
                                   std::uint64_t dcs) {
  ControllerConfig c;
  c.lease = lease_config(replicas, id);
  c.lease.replicas = replicas;
  c.datacenters = dcs;
  c.max_steps_per_tick = 2;
  return c;
}

std::vector<ProgramStep> two_phase_program() {
  return {
      {1.0, 0, ControlOp::kPowerCap, 0.7},
      {1.0, 1, ControlOp::kPowerCap, 0.7},
      {5.0, 0, ControlOp::kPowerCap, 1.0},
      {5.0, 1, ControlOp::kPowerCap, 1.0},
  };
}

TEST(ControllerReplica, LeaderIssuesDueStepsAtTheStagingWidth) {
  ControllerReplica leader(controller_config(1, 0, 2), two_phase_program());
  // t = 0: heartbeats only (no step due yet).
  std::vector<Outbound> out = leader.tick(0.0);
  ASSERT_EQ(2U, out.size());
  EXPECT_EQ(OutboundKind::kHeartbeat, out[0].kind);

  // t = 1: both phase-1 steps fit in one tick (width 2): two commands plus
  // one journal replication each (to DC 1, the only peer index != 0).
  out = leader.tick(1.0);
  std::size_t commands = 0, records = 0;
  for (const Outbound& msg : out) {
    if (msg.kind == OutboundKind::kCommand) ++commands;
    if (msg.kind == OutboundKind::kJournalRecord) ++records;
  }
  EXPECT_EQ(2U, commands);
  EXPECT_EQ(2U, records);
  EXPECT_EQ(2U, leader.commands_issued());
  // Steps already journaled are not re-issued.
  out = leader.tick(2.0);
  for (const Outbound& msg : out) {
    EXPECT_EQ(OutboundKind::kHeartbeat, msg.kind);
  }
}

TEST(ControllerReplica, FailoverReplaysTheJournalUnderTheNewToken) {
  // Old leader (replica 0 of 2) issues both phase-1 steps, replicating to
  // its peer; the peer then takes over and must replay them.
  ControllerReplica old_leader(controller_config(2, 0, 2),
                               two_phase_program());
  ControllerReplica successor(controller_config(2, 1, 2),
                              two_phase_program());
  for (const Outbound& msg : old_leader.tick(1.0)) {
    if (msg.kind == OutboundKind::kJournalRecord) {
      successor.on_journal_record(msg.cmd);
    }
  }
  ASSERT_EQ(2U, successor.journal().size());

  // TTL (2.0 + 1 * 0.5) expires with no heartbeat since t = 1.0... claim.
  std::vector<Outbound> out = successor.tick(4.0);
  std::size_t replayed = 0;
  std::uint64_t new_token = 0;
  std::uint64_t original_uids = 0;
  for (const Outbound& msg : out) {
    if (msg.kind != OutboundKind::kCommand) continue;
    if (msg.cmd.program_step <= 1) {
      ++replayed;
      new_token = msg.cmd.token;
      if (msg.cmd.uid >> kJournalSeqBits == 2U) ++original_uids;
    }
  }
  EXPECT_EQ(2U, replayed);
  EXPECT_EQ(2U, successor.commands_replayed());
  EXPECT_EQ(successor.lease().token(), new_token);
  // uids still carry the origin token (2 = replica 0's seed), not the new
  // one — that is what makes the replay idempotent at the actuators.
  EXPECT_EQ(2U, original_uids);
}

TEST(ControllerReplica, CrashedAndHungReplicasDropJournalRecords) {
  ControllerReplica rep(controller_config(2, 1, 2), two_phase_program());
  ControlCommand cmd;
  cmd.uid = (2ULL << kJournalSeqBits) | 0ULL;
  cmd.token = 2;
  rep.hang();
  rep.on_journal_record(cmd);
  EXPECT_EQ(1U, rep.journal_drops());
  EXPECT_EQ(0U, rep.journal().size());
  rep.resume();
  rep.on_journal_record(cmd);
  EXPECT_EQ(1U, rep.journal().size());
}

TEST(ControllerReplica, SaveRestoreRoundTripsLeaseAndJournal) {
  ControllerReplica a(controller_config(2, 0, 2), two_phase_program());
  a.tick(0.0);
  a.tick(1.0);
  sim::SnapshotWriter w;
  a.save(w);

  const std::vector<std::uint8_t> bytes = w.take();
  ControllerReplica b(controller_config(2, 0, 2), two_phase_program());
  sim::SnapshotReader r(bytes);
  b.restore(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.commands_issued(), b.commands_issued());
  EXPECT_EQ(a.journal().size(), b.journal().size());
  EXPECT_EQ(a.lease().token(), b.lease().token());
  // The restored replica continues identically: phase-2 steps at t = 5.
  const std::vector<Outbound> oa = a.tick(5.0);
  const std::vector<Outbound> ob = b.tick(5.0);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].kind, ob[i].kind);
    EXPECT_EQ(oa[i].dst, ob[i].dst);
    EXPECT_EQ(oa[i].cmd.uid, ob[i].cmd.uid);
  }
}

}  // namespace
}  // namespace epm::macro
