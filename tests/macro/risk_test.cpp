#include "macro/risk.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epm::macro {
namespace {

class RiskTest : public ::testing::Test {
 protected:
  power::ServerPowerModel model_{power::ServerPowerConfig{}};

  ServicePlan healthy_plan() const {
    ServicePlan plan;
    plan.name = "web";
    plan.model = &model_;
    plan.servers = 20;      // 2000 rps capacity at P0
    plan.pstate = 0;
    plan.predicted_arrival_rate = 1000.0;  // rho 0.5
    plan.service_demand_s = 0.01;
    plan.sla_target_s = 0.1;
    plan.zone_share = {1.0, 0.0};
    return plan;
  }

  FacilityEnvelope roomy_envelope() const {
    FacilityEnvelope env;
    env.power_budget_w = 50.0e3;
    env.zone_conductance_w_per_c = {3.0e3, 3.0e3};
    env.zone_alarm_c = {32.0, 32.0};
    env.zone_supply_c = {18.0, 18.0};
    env.zone_margin_c = 2.0;
    return env;
  }
};

TEST_F(RiskTest, CleanPlanHasNoFindings) {
  const auto assessment = assess_plan({healthy_plan()}, roomy_envelope());
  EXPECT_FALSE(assessment.any_risk());
  EXPECT_TRUE(assessment.diagnostics.empty());
  ASSERT_EQ(assessment.services.size(), 1u);
  EXPECT_NEAR(assessment.services[0].predicted_utilization, 0.5, 1e-9);
  EXPECT_NEAR(assessment.services[0].predicted_response_s, 0.02, 1e-9);
  // 20 servers at rho 0.5: 20 * (180 + 60).
  EXPECT_NEAR(assessment.predicted_it_power_w, 20.0 * 240.0, 1e-6);
}

TEST_F(RiskTest, SlaRiskFlagged) {
  auto plan = healthy_plan();
  plan.sla_target_s = 0.015;  // response 0.02 > 0.015
  const auto assessment = assess_plan({plan}, roomy_envelope());
  EXPECT_TRUE(assessment.sla_risk());
  EXPECT_TRUE(assessment.services[0].sla_at_risk);
  EXPECT_FALSE(assessment.services[0].saturated);
  ASSERT_EQ(assessment.diagnostics.size(), 1u);
  EXPECT_NE(assessment.diagnostics[0].find("exceeds SLA"), std::string::npos);
}

TEST_F(RiskTest, SaturationFlagged) {
  auto plan = healthy_plan();
  plan.predicted_arrival_rate = 3000.0;  // 1.5x capacity
  const auto assessment = assess_plan({plan}, roomy_envelope());
  EXPECT_TRUE(assessment.services[0].saturated);
  EXPECT_TRUE(std::isinf(assessment.services[0].predicted_response_s));
  EXPECT_NE(assessment.diagnostics[0].find("saturates"), std::string::npos);
  // Power is capped at u=1 for the prediction.
  EXPECT_NEAR(assessment.predicted_it_power_w, 20.0 * 300.0, 1e-6);
}

TEST_F(RiskTest, PowerBudgetRiskFlagged) {
  auto env = roomy_envelope();
  env.power_budget_w = 4000.0;  // below the 4800 W prediction
  const auto assessment = assess_plan({healthy_plan()}, env);
  EXPECT_TRUE(assessment.power_at_risk);
  EXPECT_FALSE(assessment.thermal_at_risk);
  EXPECT_NE(assessment.diagnostics[0].find("exceeds budget"), std::string::npos);
}

TEST_F(RiskTest, UnbudgetedFacilityNeverPowerRisks) {
  auto env = roomy_envelope();
  env.power_budget_w = 0.0;
  const auto assessment = assess_plan({healthy_plan()}, env);
  EXPECT_FALSE(assessment.power_at_risk);
}

TEST_F(RiskTest, ThermalRiskFlagged) {
  auto plan = healthy_plan();
  plan.servers = 200;                     // ~48 kW into zone 0
  plan.predicted_arrival_rate = 10000.0;  // rho 0.5 at the larger fleet
  auto env = roomy_envelope();
  env.power_budget_w = 100.0e3;
  const auto assessment = assess_plan({plan}, env);
  // Zone 0 steady state: 18 + 48000/3000 = 34 C > 32 - 2.
  EXPECT_TRUE(assessment.thermal_at_risk);
  EXPECT_GT(assessment.predicted_zone_temp_c[0], 32.0);
  EXPECT_NEAR(assessment.predicted_zone_temp_c[1], 18.0, 1e-9);
}

TEST_F(RiskTest, MultiServiceAggregation) {
  auto a = healthy_plan();
  auto b = healthy_plan();
  b.name = "batch";
  b.zone_share = {0.0, 1.0};
  const auto assessment = assess_plan({a, b}, roomy_envelope());
  EXPECT_EQ(assessment.services.size(), 2u);
  EXPECT_NEAR(assessment.predicted_it_power_w, 2 * 20.0 * 240.0, 1e-6);
  EXPECT_NEAR(assessment.predicted_zone_temp_c[0], assessment.predicted_zone_temp_c[1],
              1e-9);
}

TEST_F(RiskTest, Validation) {
  EXPECT_THROW(assess_plan({}, roomy_envelope()), std::invalid_argument);
  auto plan = healthy_plan();
  plan.model = nullptr;
  EXPECT_THROW(assess_plan({plan}, roomy_envelope()), std::invalid_argument);
  plan = healthy_plan();
  plan.zone_share = {1.0};  // wrong arity
  EXPECT_THROW(assess_plan({plan}, roomy_envelope()), std::invalid_argument);
  auto env = roomy_envelope();
  env.zone_alarm_c.pop_back();
  EXPECT_THROW(assess_plan({healthy_plan()}, env), std::invalid_argument);
}

}  // namespace
}  // namespace epm::macro
