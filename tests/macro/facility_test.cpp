#include "macro/facility.h"

#include <gtest/gtest.h>

namespace epm::macro {
namespace {

FacilityConfig small_facility() {
  auto config = make_reference_facility(/*servers_per_service=*/20);
  return config;
}

TEST(Facility, ReferenceConfigConstructs) {
  Facility facility(small_facility());
  EXPECT_EQ(facility.service_count(), 2u);
  EXPECT_EQ(facility.service_name(0), "web");
  EXPECT_EQ(facility.service_name(1), "batch");
  EXPECT_EQ(facility.room().zone_count(), 2u);
  EXPECT_DOUBLE_EQ(facility.now_s(), 0.0);
}

TEST(Facility, StepAdvancesEverything) {
  Facility facility(small_facility());
  const auto step = facility.step({500.0, 300.0}, 20.0);
  EXPECT_EQ(step.services.size(), 2u);
  EXPECT_GT(step.it_power_w, 0.0);
  EXPECT_GT(step.mechanical_power_w, 0.0);
  EXPECT_GT(step.utility_draw_w, step.it_power_w);
  EXPECT_GT(step.pue, 1.0);
  EXPECT_DOUBLE_EQ(facility.now_s(), 60.0);
  EXPECT_EQ(facility.epochs_run(), 1u);
}

TEST(Facility, EnergyAccumulates) {
  Facility facility(small_facility());
  for (int i = 0; i < 5; ++i) facility.step({500.0, 300.0}, 20.0);
  EXPECT_GT(facility.total_it_energy_j(), 0.0);
  EXPECT_GT(facility.total_mechanical_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(facility.total_energy_j(),
                   facility.total_it_energy_j() + facility.total_mechanical_energy_j());
}

TEST(Facility, ZoneSharesNormalized) {
  Facility facility(small_facility());
  facility.set_zone_share(0, {2.0, 2.0});
  const auto& share = facility.zone_share(0);
  EXPECT_DOUBLE_EQ(share[0], 0.5);
  EXPECT_DOUBLE_EQ(share[1], 0.5);
  EXPECT_THROW(facility.set_zone_share(0, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(facility.set_zone_share(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(facility.set_zone_share(9, {1.0, 0.0}), std::invalid_argument);
}

TEST(Facility, HeatFollowsZoneShares) {
  Facility facility(small_facility());
  // Pin all heat to zone 0.
  facility.set_zone_share(0, {1.0, 0.0});
  facility.set_zone_share(1, {1.0, 0.0});
  for (int i = 0; i < 60; ++i) facility.step({1500.0, 1500.0}, 20.0);
  EXPECT_GT(facility.room().zone(0).temperature_c(),
            facility.room().zone(1).temperature_c());
}

TEST(Facility, SlaViolationsAggregate) {
  Facility facility(small_facility());
  // Overload the web service massively.
  for (int i = 0; i < 3; ++i) facility.step({1.0e6, 10.0}, 20.0);
  EXPECT_GT(facility.total_sla_violation_epochs(), 0u);
}

TEST(Facility, DemandVectorValidated) {
  Facility facility(small_facility());
  EXPECT_THROW(facility.step({1.0}, 20.0), std::invalid_argument);
}

TEST(Facility, ReferenceFacilityPowerBudgetSized) {
  const auto config = make_reference_facility(50);
  // UPS capacity covers both services' peak with margin.
  EXPECT_NEAR(config.power.critical_capacity_w, 2 * 50 * 300.0 * 1.15, 1.0);
}

}  // namespace
}  // namespace epm::macro
