#include "macro/degradation.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using epm::faults::FaultEvent;
using epm::faults::FaultType;
using epm::macro::DegradationAction;
using epm::macro::DegradationPolicy;
using epm::macro::DegradationPolicyConfig;

FaultEvent outage(double start_s = 0.0, double duration_s = 600.0) {
  return {FaultType::kUtilityOutage, start_s, duration_s, 0, 1.0};
}

TEST(DegradationPolicy, NeutralWithoutActiveFaults) {
  DegradationPolicy policy(DegradationPolicyConfig{}, 2);
  const DegradationAction action = policy.react(0.0, 1.0e9);
  EXPECT_FALSE(policy.any_fault_active());
  EXPECT_FALSE(action.power_emergency);
  EXPECT_FALSE(action.cooling_emergency);
  EXPECT_FALSE(action.throttle);
  EXPECT_DOUBLE_EQ(action.serve_scale[0], 1.0);
  EXPECT_DOUBLE_EQ(action.serve_scale[1], 1.0);
  EXPECT_DOUBLE_EQ(action.shed_scale[1], 0.0);
  EXPECT_DOUBLE_EQ(action.setpoint_delta_c, 0.0);
}

TEST(DegradationPolicy, OutageWithThinBatteryShedsAndReroutes) {
  DegradationPolicyConfig config;
  DegradationPolicy policy(config, 2);
  EXPECT_TRUE(policy.on_fault(outage(), true, 0.0));

  // Comfortable ride-through: emergency posture but no shedding yet.
  DegradationAction calm = policy.react(0.0, config.required_ride_through_s * 2);
  EXPECT_TRUE(calm.power_emergency);
  EXPECT_DOUBLE_EQ(calm.shed_scale[config.low_tier_service], 0.0);
  EXPECT_FALSE(calm.throttle);

  // Thin ride-through: shed the batch tier, re-route interactive, throttle,
  // raise setpoints.
  DegradationAction urgent =
      policy.react(60.0, config.required_ride_through_s / 10.0);
  EXPECT_DOUBLE_EQ(urgent.shed_scale[1], config.low_tier_shed_fraction);
  EXPECT_DOUBLE_EQ(urgent.reroute_scale[0], config.reroute_fraction);
  EXPECT_DOUBLE_EQ(urgent.reroute_scale[1], 0.0);
  EXPECT_TRUE(urgent.throttle);
  EXPECT_TRUE(urgent.consolidation_paused);
  EXPECT_DOUBLE_EQ(urgent.setpoint_delta_c, config.setpoint_raise_c);
  EXPECT_DOUBLE_EQ(urgent.serve_scale[0], 1.0 - config.reroute_fraction);
  EXPECT_DOUBLE_EQ(urgent.serve_scale[1], 1.0 - config.low_tier_shed_fraction);

  // Clearing the outage restores the neutral posture exactly.
  policy.on_fault(outage(), false, 600.0);
  DegradationAction after = policy.react(660.0, 1.0e9);
  EXPECT_FALSE(after.power_emergency);
  EXPECT_DOUBLE_EQ(after.serve_scale[0], 1.0);
  EXPECT_DOUBLE_EQ(after.serve_scale[1], 1.0);
  EXPECT_FALSE(policy.any_fault_active());
}

TEST(DegradationPolicy, CracFailureTriggersCoolingEmergency) {
  DegradationPolicyConfig config;
  DegradationPolicy policy(config, 2);
  policy.on_fault({FaultType::kCracFailure, 0.0, 600.0, 0, 1.0}, true, 0.0);
  EXPECT_DOUBLE_EQ(policy.cooling_loss(), 1.0);

  const DegradationAction action = policy.react(0.0, 1.0e9);
  EXPECT_TRUE(action.cooling_emergency);
  EXPECT_FALSE(action.power_emergency);
  EXPECT_DOUBLE_EQ(action.shed_scale[1], config.cooling_shed_fraction);
  EXPECT_DOUBLE_EQ(action.healthy_setpoint_delta_c, -config.setpoint_drop_c);
  EXPECT_DOUBLE_EQ(action.reroute_scale[0], 0.0);
}

TEST(DegradationPolicy, PartialDerateShedsProportionally) {
  DegradationPolicyConfig config;
  DegradationPolicy policy(config, 2);
  policy.on_fault({FaultType::kCoolingDerate, 0.0, 600.0, 0, 0.5}, true, 0.0);
  const DegradationAction action = policy.react(0.0, 1.0e9);
  EXPECT_DOUBLE_EQ(policy.cooling_loss(), 0.5);
  EXPECT_DOUBLE_EQ(action.shed_scale[1], 0.5 * config.cooling_shed_fraction);
  EXPECT_DOUBLE_EQ(action.healthy_setpoint_delta_c,
                   -0.5 * config.setpoint_drop_c);

  policy.on_fault({FaultType::kCoolingDerate, 0.0, 600.0, 0, 0.5}, false, 600.0);
  EXPECT_DOUBLE_EQ(policy.cooling_loss(), 0.0);
  EXPECT_FALSE(policy.react(660.0, 1.0e9).cooling_emergency);
}

TEST(DegradationPolicy, SensorFaultsAreNotHandled) {
  DegradationPolicy policy(DegradationPolicyConfig{}, 2);
  EXPECT_FALSE(
      policy.on_fault({FaultType::kSensorDropout, 0.0, 60.0, 0, 1.0}, true, 0.0));
  EXPECT_FALSE(
      policy.on_fault({FaultType::kSensorStuck, 0.0, 60.0, 1, 1.0}, true, 0.0));
  // They still count as active (consolidation pauses conservatively).
  EXPECT_TRUE(policy.any_fault_active());
}

TEST(DegradationPolicy, PostureTransitionsLandInDecisionLog) {
  epm::macro::DecisionLog log;
  DegradationPolicyConfig config;
  DegradationPolicy policy(config, 2, &log);
  policy.on_fault(outage(), true, 0.0);
  policy.react(0.0, 0.0);
  policy.react(60.0, 0.0);  // same posture — must not double-log

  EXPECT_EQ(log.count(epm::macro::DecisionKind::kRiskAlert), 1u);
  EXPECT_EQ(log.count(epm::macro::DecisionKind::kLoadShedding), 1u);
  EXPECT_EQ(log.count(epm::macro::DecisionKind::kLoadBalancing), 1u);
  EXPECT_EQ(log.count(epm::macro::DecisionKind::kPowerCapping), 1u);
  EXPECT_EQ(log.count(epm::macro::DecisionKind::kCoolingControl), 1u);
}

TEST(DegradationPolicy, RejectsBadConfig) {
  DegradationPolicyConfig bad_tier;
  bad_tier.low_tier_service = 5;
  EXPECT_THROW(DegradationPolicy(bad_tier, 2), std::invalid_argument);

  DegradationPolicyConfig bad_shed;
  bad_shed.low_tier_shed_fraction = 1.5;
  EXPECT_THROW(DegradationPolicy(bad_shed, 2), std::invalid_argument);
}

}  // namespace
