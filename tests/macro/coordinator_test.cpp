#include "macro/coordinator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "macro/uncoordinated.h"

namespace epm::macro {
namespace {

std::vector<double> demand_at(double t_s) {
  // Mild diurnal demand in requests/s for {web, batch}.
  const double phase = t_s / 86400.0 * 2.0 * 3.14159265358979;
  const double web = 900.0 + 500.0 * std::sin(phase);
  const double batch = 600.0 + 200.0 * std::sin(phase + 1.0);
  return {std::max(web, 50.0), std::max(batch, 50.0)};
}

TEST(MacroResourceManager, ProducesDecisionsOfEveryCoreKind) {
  Facility facility(make_reference_facility(40));
  MacroResourceManager manager(facility);
  for (int i = 0; i < 60; ++i) {
    manager.step(demand_at(facility.now_s()), 22.0);
  }
  const auto& log = manager.log();
  EXPECT_GT(log.count(DecisionKind::kServerAllocation), 0u);
  EXPECT_GT(log.count(DecisionKind::kDvfs), 0u);
  EXPECT_GT(log.count(DecisionKind::kCoolingControl), 0u);
  EXPECT_GT(log.size(), 10u);
}

TEST(MacroResourceManager, ScalesFleetDownOffPeak) {
  Facility facility(make_reference_facility(40));
  MacroResourceManager manager(facility);
  // Constant low demand: the fleet should shrink well below 40.
  for (int i = 0; i < 60; ++i) manager.step({200.0, 200.0}, 22.0);
  EXPECT_LT(facility.service(0).committed_count(), 20u);
  EXPECT_LT(facility.service(1).committed_count(), 20u);
}

TEST(MacroResourceManager, KeepsSlaUnderSteadyLoad) {
  Facility facility(make_reference_facility(40));
  MacroResourceManager manager(facility);
  std::size_t violations_after_warmup = 0;
  for (int i = 0; i < 120; ++i) {
    const auto step = manager.step({1500.0, 800.0}, 22.0);
    if (i >= 20) {
      for (const auto& svc : step.services) {
        if (svc.sla_violated) ++violations_after_warmup;
      }
    }
  }
  // Steady demand, ample fleet: nearly no violations after warm-up.
  EXPECT_LE(violations_after_warmup, 4u);
}

TEST(MacroResourceManager, CoolingOverrideDisablesCracAutopilot) {
  Facility facility(make_reference_facility(40));
  MacroResourceManager manager(facility);
  manager.step({500.0, 500.0}, 22.0);
  // Coordinated mode pins the CRAC; its own controller must not act.
  const auto actions_before = facility.room().crac(0).control_actions();
  for (int i = 0; i < 30; ++i) manager.step({500.0, 500.0}, 22.0);
  EXPECT_EQ(facility.room().crac(0).control_actions(), actions_before);
}

TEST(MacroResourceManager, EnergyBeatsUncoordinatedAtEqualOrBetterSla) {
  // The paper's core claim (§1, §3.2): coordination across cyber and
  // physical beats per-knob local policies.
  const auto config = make_reference_facility(40);

  Facility coordinated_facility(config);
  MacroResourceManager manager(coordinated_facility);
  Facility uncoordinated_facility(config);
  UncoordinatedStack baseline(uncoordinated_facility);

  for (int i = 0; i < 240; ++i) {  // 4 simulated hours
    const auto demand = demand_at(coordinated_facility.now_s());
    manager.step(demand, 22.0);
    baseline.step(demand, 22.0);
  }

  const double coord_energy = coordinated_facility.total_energy_j();
  const double uncoord_energy = uncoordinated_facility.total_energy_j();
  EXPECT_LT(coord_energy, uncoord_energy);
}

TEST(MacroResourceManager, PowerBudgetTriggersCapping) {
  auto config = make_reference_facility(40);
  Facility facility(config);
  MacroManagerConfig mc;
  mc.power_budget_w = 5000.0;  // absurdly tight: forces capping
  MacroResourceManager manager(facility, mc);
  for (int i = 0; i < 20; ++i) manager.step({3000.0, 3000.0}, 22.0);
  EXPECT_GT(manager.capping_epochs(), 0u);
  EXPECT_GT(manager.log().count(DecisionKind::kPowerCapping), 0u);
}

TEST(UncoordinatedStack, ReactsToLoad) {
  Facility facility(make_reference_facility(40));
  UncoordinatedStack baseline(facility);
  for (int i = 0; i < 30; ++i) baseline.step({200.0, 200.0}, 22.0);
  // The delay-threshold policy should have shrunk the fleet from 40.
  EXPECT_LT(facility.service(0).committed_count(), 40u);
}

TEST(DecisionLog, CountsByKind) {
  DecisionLog log;
  log.record({0.0, DecisionKind::kDvfs, "web", "P1"});
  log.record({1.0, DecisionKind::kDvfs, "web", "P2"});
  log.record({2.0, DecisionKind::kRiskAlert, "", "x"});
  EXPECT_EQ(log.count(DecisionKind::kDvfs), 2u);
  EXPECT_EQ(log.count(DecisionKind::kPlacement), 0u);
  const auto counts = log.counts_by_kind();
  EXPECT_EQ(counts.at("dvfs"), 2u);
  EXPECT_EQ(to_string(DecisionKind::kCoolingControl), "cooling-control");
}

}  // namespace
}  // namespace epm::macro
