#include "macro/joint_policy.h"

#include <gtest/gtest.h>

#include "cluster/queueing.h"

namespace epm::macro {
namespace {

class JointPolicyTest : public ::testing::Test {
 protected:
  power::ServerPowerModel model_{power::ServerPowerConfig{}};
};

TEST_F(JointPolicyTest, MeetsSlaPrediction) {
  const auto d = decide_joint(model_, 100, 10, 2000.0, 0.01, 0.5);
  ASSERT_TRUE(d.feasible);
  EXPECT_LE(d.predicted_response_s, 0.5 * 0.8 + 1e-9);
  EXPECT_LE(d.predicted_utilization, 0.90 + 1e-9);
  EXPECT_GE(d.servers, 1u);
}

TEST_F(JointPolicyTest, MinimizesPowerOverBruteForce) {
  JointPolicyConfig config;
  config.switching_penalty_w = 0.0;  // pure power objective for this check
  const double lambda = 1500.0;
  const double demand = 0.01;
  const double target = 0.5;
  const auto d = decide_joint(model_, 100, 0, lambda, demand, target, config);
  ASSERT_TRUE(d.feasible);
  // Brute-force search over every feasible (n, p) pair.
  double best = 1e18;
  for (std::size_t p = 0; p < model_.pstate_count(); ++p) {
    for (std::size_t n = 1; n <= 100; ++n) {
      const double cap = model_.relative_capacity(p);
      const double rate = static_cast<double>(n) * cap / demand;
      const double rho = lambda / rate;
      if (rho >= 0.90) continue;
      const double resp = cluster::mg1ps_response_time_s(demand / cap, rho);
      if (resp > target * 0.8) continue;
      best = std::min(best,
                      predicted_cluster_power_w(model_, n, p, lambda, demand));
    }
  }
  EXPECT_NEAR(d.predicted_power_w, best, 1e-6);
}

TEST_F(JointPolicyTest, SlowerStatesWinAtLowLoad) {
  // With light load and a relaxed SLA, running fewer/slower servers with
  // high utilization beats many fast idle ones.
  JointPolicyConfig config;
  config.switching_penalty_w = 0.0;
  const auto d = decide_joint(model_, 100, 50, 200.0, 0.01, 1.0, config);
  ASSERT_TRUE(d.feasible);
  EXPECT_GT(d.pstate, 0u);
  EXPECT_LT(d.servers, 10u);
}

TEST_F(JointPolicyTest, ZeroLoadUsesMinServers) {
  JointPolicyConfig config;
  config.min_servers = 2;
  const auto d = decide_joint(model_, 100, 10, 0.0, 0.01, 0.5, config);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.servers, 2u);
  EXPECT_EQ(d.pstate, model_.pstate_count() - 1);  // slowest is cheapest
}

TEST_F(JointPolicyTest, InfeasibleFallsBackToFullFleet) {
  // Target below even an unloaded server's response time.
  const auto d = decide_joint(model_, 10, 5, 100.0, 0.01, 0.005);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.servers, 10u);
  EXPECT_EQ(d.pstate, 0u);
}

TEST_F(JointPolicyTest, SwitchingPenaltyStabilizes) {
  // With a large penalty, a marginally cheaper config that requires churn
  // loses to staying put.
  JointPolicyConfig cheap;
  cheap.switching_penalty_w = 0.0;
  JointPolicyConfig sticky;
  sticky.switching_penalty_w = 1.0e5;
  const double lambda = 700.0;
  const auto moved = decide_joint(model_, 100, 30, lambda, 0.01, 0.5, cheap);
  const auto stayed = decide_joint(model_, 100, 30, lambda, 0.01, 0.5, sticky);
  // The sticky policy should land at least as close to 30 servers.
  const auto dist = [](std::size_t a, std::size_t b) {
    return a > b ? a - b : b - a;
  };
  EXPECT_LE(dist(stayed.servers, 30), dist(moved.servers, 30));
}

TEST_F(JointPolicyTest, PredictedPowerFormula) {
  // 10 servers at P0 serving rho=0.5: 10 * (idle + dyn*0.5).
  const double lambda = 500.0;
  const double power = predicted_cluster_power_w(model_, 10, 0, lambda, 0.01);
  EXPECT_NEAR(power, 10.0 * (180.0 + 120.0 * 0.5), 1e-9);
}

TEST_F(JointPolicyTest, Validation) {
  EXPECT_THROW(decide_joint(model_, 0, 0, 1.0, 0.01, 0.5), std::invalid_argument);
  EXPECT_THROW(decide_joint(model_, 10, 0, -1.0, 0.01, 0.5), std::invalid_argument);
  EXPECT_THROW(decide_joint(model_, 10, 0, 1.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(decide_joint(model_, 10, 0, 1.0, 0.01, 0.0), std::invalid_argument);
  JointPolicyConfig bad;
  bad.response_headroom = 1.5;
  EXPECT_THROW(decide_joint(model_, 10, 0, 1.0, 0.01, 0.5, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace epm::macro
