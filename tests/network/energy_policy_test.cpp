#include "network/energy_policy.h"

#include <gtest/gtest.h>

namespace epm::network {
namespace {

class EnergyPolicyTest : public ::testing::Test {
 protected:
  SwitchPowerModel model_{SwitchPowerConfig{}};
};

TEST_F(EnergyPolicyTest, AlwaysOnIsLoadIndependent) {
  const auto idle = evaluate_link(model_, LinkPolicy::kAlwaysOn, 0.0);
  const auto busy = evaluate_link(model_, LinkPolicy::kAlwaysOn, 9.0);
  EXPECT_DOUBLE_EQ(idle.power_w, busy.power_w);
  EXPECT_DOUBLE_EQ(idle.power_w, 5.0);
  EXPECT_DOUBLE_EQ(idle.added_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(busy.awake_fraction, 1.0);
}

TEST_F(EnergyPolicyTest, SleepingSavesAtLowLoad) {
  const auto light = evaluate_link(model_, LinkPolicy::kSleeping, 0.1);
  const auto always = evaluate_link(model_, LinkPolicy::kAlwaysOn, 0.1);
  EXPECT_LT(light.power_w, 0.5 * always.power_w);
  EXPECT_LT(light.awake_fraction, 0.2);
  // The price: buffering + wake delay.
  EXPECT_GT(light.added_delay_s, 0.004);
}

TEST_F(EnergyPolicyTest, SleepingIdlePortNearSleepFloor) {
  const auto idle = evaluate_link(model_, LinkPolicy::kSleeping, 0.0);
  EXPECT_DOUBLE_EQ(idle.power_w, 0.1);
  EXPECT_DOUBLE_EQ(idle.added_delay_s, 0.0);
}

TEST_F(EnergyPolicyTest, SleepingConvergesToAlwaysOnAtFullLoad) {
  const auto full = evaluate_link(model_, LinkPolicy::kSleeping, 10.0);
  EXPECT_DOUBLE_EQ(full.awake_fraction, 1.0);
  EXPECT_DOUBLE_EQ(full.power_w, 5.0);
}

TEST_F(EnergyPolicyTest, RateAdaptationDownshifts) {
  const auto slow = evaluate_link(model_, LinkPolicy::kRateAdaptation, 0.05);
  EXPECT_EQ(slow.rate, 0u);
  EXPECT_DOUBLE_EQ(slow.power_w, 0.7);
  EXPECT_GT(slow.added_delay_s, 0.0);  // slower serialization
  const auto fast = evaluate_link(model_, LinkPolicy::kRateAdaptation, 5.0);
  EXPECT_EQ(fast.rate, 2u);
  EXPECT_DOUBLE_EQ(fast.power_w, 5.0);
}

TEST_F(EnergyPolicyTest, RateAdaptationDelaySmallerThanSleeping) {
  // Ref [23]'s qualitative finding at moderate loads: rate adaptation costs
  // microseconds of serialization, sleeping costs the buffering interval.
  const auto ra = evaluate_link(model_, LinkPolicy::kRateAdaptation, 0.5);
  const auto sleep = evaluate_link(model_, LinkPolicy::kSleeping, 0.5);
  EXPECT_LT(ra.added_delay_s, sleep.added_delay_s);
}

TEST_F(EnergyPolicyTest, SleepingBeatsRateAdaptationAtVeryLowLoad) {
  const auto ra = evaluate_link(model_, LinkPolicy::kRateAdaptation, 0.01);
  const auto sleep = evaluate_link(model_, LinkPolicy::kSleeping, 0.01);
  EXPECT_LT(sleep.power_w, ra.power_w);
}

TEST_F(EnergyPolicyTest, Validation) {
  EXPECT_THROW(evaluate_link(model_, LinkPolicy::kAlwaysOn, -1.0),
               std::invalid_argument);
  EXPECT_THROW(evaluate_link(model_, LinkPolicy::kAlwaysOn, 11.0),
               std::invalid_argument);
  SleepingConfig bad;
  bad.burst_interval_s = 0.0;
  EXPECT_THROW(evaluate_link(model_, LinkPolicy::kSleeping, 1.0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace epm::network
