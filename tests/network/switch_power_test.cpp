#include "network/switch_power.h"

#include <gtest/gtest.h>

namespace epm::network {
namespace {

TEST(SwitchPowerModel, PortPowerByRate) {
  SwitchPowerModel model{SwitchPowerConfig{}};
  EXPECT_DOUBLE_EQ(model.port_power_w(0), 0.7);
  EXPECT_DOUBLE_EQ(model.port_power_w(2), 5.0);
  EXPECT_DOUBLE_EQ(model.max_rate_gbps(), 10.0);
  EXPECT_THROW(model.port_power_w(9), std::invalid_argument);
}

TEST(SwitchPowerModel, RateForLoadPicksSlowestSufficient) {
  SwitchPowerModel model{SwitchPowerConfig{}};
  EXPECT_EQ(model.rate_for_load(0.0), 0u);
  EXPECT_EQ(model.rate_for_load(0.05), 0u);
  EXPECT_EQ(model.rate_for_load(0.5), 1u);
  EXPECT_EQ(model.rate_for_load(1.0), 1u);
  EXPECT_EQ(model.rate_for_load(4.0), 2u);
  EXPECT_EQ(model.rate_for_load(99.0), 2u);  // clamps at the top rate
}

TEST(SwitchPowerModel, SwitchPowerSums) {
  SwitchPowerModel model{SwitchPowerConfig{}};
  // Chassis + 2 full-rate ports + 46 sleeping.
  const double power = model.switch_power_w({2, 2}, 46);
  EXPECT_DOUBLE_EQ(power, 90.0 + 2 * 5.0 + 46 * 0.1);
  EXPECT_THROW(model.switch_power_w({0}, 48), std::invalid_argument);
}

TEST(SwitchPowerModel, Validation) {
  SwitchPowerConfig bad;
  bad.rates = {{1.0, 2.0}, {0.5, 3.0}};  // non-ascending capacity
  EXPECT_THROW(SwitchPowerModel{bad}, std::invalid_argument);
  bad = SwitchPowerConfig{};
  bad.rates = {{1.0, 2.0}, {10.0, 1.0}};  // faster but cheaper
  EXPECT_THROW(SwitchPowerModel{bad}, std::invalid_argument);
  bad = SwitchPowerConfig{};
  bad.sleep_power_w = 10.0;  // above the slowest rate
  EXPECT_THROW(SwitchPowerModel{bad}, std::invalid_argument);
  bad = SwitchPowerConfig{};
  bad.rates.clear();
  EXPECT_THROW(SwitchPowerModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::network
