// Inter-datacenter latency floors: the physics layer the federation's
// conservative lookahead is derived from.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "network/interdc.h"

namespace epm::network {
namespace {

constexpr double kEarthRadiusM = 6.371e6;
constexpr double kPi = 3.14159265358979323846;

TEST(InterDc, GreatCircleKnownDistances) {
  // Coincident points.
  EXPECT_EQ(great_circle_m(45.0, -120.0, 45.0, -120.0), 0.0);
  // One degree of longitude along the equator: 2*pi*R / 360.
  EXPECT_NEAR(great_circle_m(0.0, 0.0, 0.0, 1.0),
              2.0 * kPi * kEarthRadiusM / 360.0, 1.0);
  // Pole to pole: half the circumference.
  EXPECT_NEAR(great_circle_m(90.0, 0.0, -90.0, 0.0), kPi * kEarthRadiusM,
              1.0);
  // Symmetric in its endpoints.
  EXPECT_EQ(great_circle_m(45.6, -121.2, 39.0, -77.5),
            great_circle_m(39.0, -77.5, 45.6, -121.2));
  // Antimeridian wrap: 10 degrees across the date line equals 10 degrees
  // anywhere else on the equator.
  EXPECT_NEAR(great_circle_m(0.0, 175.0, 0.0, -175.0),
              great_circle_m(0.0, 0.0, 0.0, 10.0), 1e-3);
}

TEST(InterDc, FiberFloorFormula) {
  // distance * detour / (2/3 c).
  const double c = 2.99792458e8;
  EXPECT_NEAR(fiber_latency_floor_s(1.0e6, 1.0), 1.0e6 / (c * 2.0 / 3.0),
              1e-15);
  EXPECT_NEAR(fiber_latency_floor_s(1.0e6, 1.3),
              1.3 * fiber_latency_floor_s(1.0e6, 1.0), 1e-15);
  EXPECT_EQ(fiber_latency_floor_s(0.0, 2.0), 0.0);
  EXPECT_THROW(fiber_latency_floor_s(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(fiber_latency_floor_s(1.0, 0.9), std::invalid_argument);
}

TEST(InterDc, DerivedNetworkHasSymmetricClampedFloors) {
  const std::vector<InterDcSite> sites = {
      {"pnw", 45.60, -121.18},
      {"virginia", 39.04, -77.49},
      {"metro-twin", 45.60, -121.19},  // ~1 km away: exercises the clamp
  };
  const InterDcNetwork net(sites, 1.3, 1e-3);
  ASSERT_EQ(net.site_count(), 3u);
  EXPECT_EQ(net.site(0).name, "pnw");

  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) {
        EXPECT_EQ(net.latency_floor_s(i, j), 0.0);
      } else {
        EXPECT_EQ(net.latency_floor_s(i, j), net.latency_floor_s(j, i));
        EXPECT_GE(net.latency_floor_s(i, j), 1e-3);
      }
    }
  }
  // The metro pair hits the clamp exactly; the transcontinental pair is a
  // physics-derived floor well above it.
  EXPECT_EQ(net.latency_floor_s(0, 2), 1e-3);
  EXPECT_GT(net.latency_floor_s(0, 1), 0.015);
  EXPECT_EQ(net.min_latency_floor_s(), 1e-3);

  // lookahead_matrix() is the row-major layout ShardedConfig takes.
  const std::vector<double>& m = net.lookahead_matrix();
  ASSERT_EQ(m.size(), 9u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(m[i * 3 + j], net.latency_floor_s(i, j));
    }
  }
}

TEST(InterDc, ExplicitMatrixValidation) {
  const std::vector<InterDcSite> sites = {{"a", 0.0, 0.0}, {"b", 0.0, 1.0}};
  // Valid explicit matrix round-trips.
  const InterDcNetwork net(sites, {0.0, 0.02, 0.03, 0.0});
  EXPECT_EQ(net.latency_floor_s(0, 1), 0.02);
  EXPECT_EQ(net.latency_floor_s(1, 0), 0.03);
  EXPECT_EQ(net.min_latency_floor_s(), 0.02);

  EXPECT_THROW(InterDcNetwork(sites, {0.0, 0.02, 0.03}),  // wrong size
               std::invalid_argument);
  EXPECT_THROW(InterDcNetwork(sites, {0.0, 0.0, 0.03, 0.0}),  // zero floor
               std::invalid_argument);
  EXPECT_THROW(InterDcNetwork(sites, {0.0, -0.1, 0.03, 0.0}),  // negative
               std::invalid_argument);
  EXPECT_THROW(InterDcNetwork(sites, {0.1, 0.02, 0.03, 0.0}),  // diagonal != 0
               std::invalid_argument);
  EXPECT_THROW(InterDcNetwork({}, 1.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(InterDcNetwork(sites, 1.3, 0.0),  // non-positive clamp
               std::invalid_argument);
  EXPECT_THROW(InterDcNetwork({{"", 0.0, 0.0}, {"b", 0.0, 1.0}}, 1.3, 1e-3),
               std::invalid_argument);  // unnamed site
  EXPECT_THROW(net.latency_floor_s(0, 2), std::invalid_argument);
  EXPECT_THROW(net.site(5), std::invalid_argument);
}

}  // namespace
}  // namespace epm::network
