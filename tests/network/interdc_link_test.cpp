// Degraded inter-DC links: window semantics, overlap rejection, heal
// errors, and the purity/monotonicity contract of adjust() that the
// federation's bit-identical determinism rests on.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "network/interdc_link.h"

namespace epm::network {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(InterDcLink, PristinePlanLeavesDeliveriesAlone) {
  InterDcLinkPlan plan(3);
  EXPECT_TRUE(plan.pristine());
  const LinkDelivery d = plan.adjust(0, 1, 10.0, 10.5, 0);
  EXPECT_TRUE(d.deliverable);
  EXPECT_DOUBLE_EQ(10.5, d.when_s);
  EXPECT_EQ(0U, d.redeliveries);
}

TEST(InterDcLink, SlowWindowStretchesPropagation) {
  InterDcLinkPlan plan(2);
  plan.slow(0, 1, 5.0, 20.0, 3.0);
  // Send inside the window: 0.5 s of propagation becomes 1.5 s.
  const LinkDelivery in = plan.adjust(0, 1, 10.0, 10.5, 0);
  EXPECT_TRUE(in.deliverable);
  EXPECT_DOUBLE_EQ(11.5, in.when_s);
  EXPECT_EQ(0U, in.redeliveries);
  // Send outside the window: untouched (the send time governs).
  const LinkDelivery out = plan.adjust(0, 1, 20.0, 20.5, 1);
  EXPECT_DOUBLE_EQ(20.5, out.when_s);
}

TEST(InterDcLink, LossyWindowDelaysButNeverLoses) {
  LinkPolicy policy;
  policy.jitter_frac = 0.0;
  InterDcLinkPlan plan(2, policy);
  plan.lose(0, 1, 0.0, 100.0, 1.0);  // every in-window attempt is lost
  const LinkDelivery d = plan.adjust(0, 1, 10.0, 10.2, 0);
  EXPECT_TRUE(d.deliverable);
  // Certain loss walks the backoff ladder until the attempt clears the
  // window end — delayed past it, but always delivered.
  EXPECT_GE(d.when_s, 100.0);
  EXPECT_GT(d.redeliveries, 0U);

  InterDcLinkPlan lucky(2, policy);
  lucky.lose(0, 1, 0.0, 100.0, 0.0);  // zero loss: nominal delivery
  const LinkDelivery n = lucky.adjust(0, 1, 10.0, 10.2, 0);
  EXPECT_DOUBLE_EQ(10.2, n.when_s);
  EXPECT_EQ(0U, n.redeliveries);
}

TEST(InterDcLink, ClosedPartitionRedeliversAfterHealTime) {
  InterDcLinkPlan plan(2);
  plan.partition(0, 1, 10.0, 30.0);
  const LinkDelivery d = plan.adjust(0, 1, 12.0, 12.05, 0);
  EXPECT_TRUE(d.deliverable);
  EXPECT_GE(d.when_s, 30.0);  // first attempt at/after the window end
  EXPECT_GT(d.redeliveries, 0U);
  // Delivery never precedes the nominal arrival even if the backoff walk
  // lands exactly at the heal.
  EXPECT_GE(d.when_s, 12.05);
}

TEST(InterDcLink, OpenPartitionParksUntilHealed) {
  InterDcLinkPlan plan(2);
  plan.partition(0, 1, 10.0);
  EXPECT_FALSE(plan.partitioned_at(0, 1, 9.9));
  EXPECT_TRUE(plan.partitioned_at(0, 1, 10.0));
  EXPECT_FALSE(plan.partitioned_at(1, 0, 10.0));  // direction matters
  const LinkDelivery d = plan.adjust(0, 1, 12.0, 12.05, 0);
  EXPECT_FALSE(d.deliverable);

  plan.heal(0, 1, 40.0);
  EXPECT_FALSE(plan.partitioned_at(0, 1, 12.0));
  const LinkDelivery healed = plan.adjust(0, 1, 12.0, 12.05, 0);
  EXPECT_TRUE(healed.deliverable);
  EXPECT_GE(healed.when_s, 40.0);
}

TEST(InterDcLink, OverlappingWindowsAreRejected) {
  InterDcLinkPlan plan(2);
  plan.slow(0, 1, 10.0, 20.0, 2.0);
  EXPECT_THROW(plan.slow(0, 1, 15.0, 25.0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.partition(0, 1, 19.0), std::invalid_argument);
  EXPECT_THROW(plan.lose(0, 1, 0.0, 10.5, 0.1), std::invalid_argument);
  // Touching windows are fine (half-open intervals).
  EXPECT_NO_THROW(plan.slow(0, 1, 20.0, 25.0, 2.0));
  // Same interval on the opposite direction is an independent link.
  EXPECT_NO_THROW(plan.slow(1, 0, 10.0, 20.0, 2.0));
}

TEST(InterDcLink, HealErrors) {
  InterDcLinkPlan plan(2);
  // Nothing to heal.
  EXPECT_THROW(plan.heal(0, 1, 40.0), std::invalid_argument);
  // A closed partition is not healable either.
  plan.partition(0, 1, 10.0, 30.0);
  EXPECT_THROW(plan.heal(0, 1, 40.0), std::invalid_argument);
  // Heal must follow the partition start.
  plan.partition(0, 1, 50.0);
  EXPECT_THROW(plan.heal(0, 1, 45.0), std::invalid_argument);
  EXPECT_NO_THROW(plan.heal(0, 1, 60.0));
}

TEST(InterDcLink, InvalidWindowsAndPoliciesAreRejected) {
  InterDcLinkPlan plan(2);
  EXPECT_THROW(plan.slow(0, 0, 0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.slow(0, 2, 0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.slow(0, 1, 5.0, 5.0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.slow(0, 1, 0.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(plan.slow(0, 1, 0.0, kInf, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.lose(0, 1, 0.0, kInf, 0.1), std::invalid_argument);
  EXPECT_THROW(plan.lose(0, 1, 0.0, 1.0, 1.5), std::invalid_argument);

  LinkPolicy bad;
  bad.jitter_frac = 1.0;
  EXPECT_THROW(InterDcLinkPlan(2, bad), std::invalid_argument);
  bad = LinkPolicy{};
  bad.backoff_cap_s = 0.01;  // below the redelivery timeout
  EXPECT_THROW(InterDcLinkPlan(2, bad), std::invalid_argument);
  bad = LinkPolicy{};
  bad.parked_capacity = 0;
  EXPECT_THROW(InterDcLinkPlan(2, bad), std::invalid_argument);
}

TEST(InterDcLink, AdjustIsPureAndNeverEarly) {
  InterDcLinkPlan plan(3);
  plan.slow(0, 1, 5.0, 15.0, 2.5);
  plan.lose(0, 1, 20.0, 40.0, 0.5);
  plan.partition(0, 1, 50.0, 70.0);
  for (std::uint64_t msg = 0; msg < 64; ++msg) {
    const double send = 0.5 * static_cast<double>(msg);
    const double nominal = send + 0.05;
    const LinkDelivery a = plan.adjust(0, 1, send, nominal, msg);
    const LinkDelivery b = plan.adjust(0, 1, send, nominal, msg);
    // Pure: byte-identical on every repeat, regardless of call order.
    EXPECT_EQ(a.deliverable, b.deliverable);
    EXPECT_EQ(a.when_s, b.when_s);
    EXPECT_EQ(a.redeliveries, b.redeliveries);
    // Never earlier than the nominal arrival.
    if (a.deliverable) {
      EXPECT_GE(a.when_s, nominal);
    }
  }
  // Unrelated pairs are untouched (per-pair timelines are independent).
  const LinkDelivery other = plan.adjust(0, 2, 10.0, 10.05, 0);
  EXPECT_DOUBLE_EQ(10.05, other.when_s);
}

TEST(InterDcLink, RedeliveryJitterIsSeededPerMessage) {
  LinkPolicy policy;
  policy.jitter_frac = 0.5;
  InterDcLinkPlan plan(2, policy);
  plan.partition(0, 1, 10.0, 30.0);
  // Distinct messages draw distinct jitter streams: their redelivery times
  // differ, but each stays deterministic.
  const LinkDelivery m0 = plan.adjust(0, 1, 12.0, 12.05, 0);
  const LinkDelivery m1 = plan.adjust(0, 1, 12.0, 12.05, 1);
  EXPECT_NE(m0.when_s, m1.when_s);
  EXPECT_EQ(m0.when_s, plan.adjust(0, 1, 12.0, 12.05, 0).when_s);

  LinkPolicy reseeded = policy;
  reseeded.seed ^= 0xabcdef;
  InterDcLinkPlan plan2(2, reseeded);
  plan2.partition(0, 1, 10.0, 30.0);
  EXPECT_NE(m0.when_s, plan2.adjust(0, 1, 12.0, 12.05, 0).when_s);
}

}  // namespace
}  // namespace epm::network
