// Fleet retry storm: the multi-datacenter world model the federation
// tentpole exists for. The load-bearing assertion is fabric equality —
// the identical FleetStormConfig produces the bit-identical outcome on a
// single kernel and on every shard/thread decomposition of the federation.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>

#include "faults/fleet_storm.h"
#include "macro/geo.h"
#include "sim/fabric.h"
#include "sim/sharded_simulator.h"

namespace epm::faults {
namespace {

FleetStormOutcome run_on_single(const FleetStormConfig& config) {
  sim::SingleKernelFabric fabric(config.sites.size());
  return run_fleet_storm(config, fabric);
}

FleetStormOutcome run_on_federation(const FleetStormConfig& config,
                                    std::size_t shards, std::size_t threads) {
  const network::InterDcNetwork net = make_fleet_network(config);
  sim::ShardedSimulator fed(make_fleet_sharded_config(net, shards, threads));
  sim::ShardedFabric fabric(fed);
  return run_fleet_storm(config, fabric);
}

TEST(FederationFleetStorm, OutcomeIsIdenticalOnEveryFabricDecomposition) {
  const FleetStormConfig config = make_reference_fleet_storm_config(4, 2000, 5);
  const FleetStormOutcome truth = run_on_single(config);

  // The scenario must be non-trivial or the equality proves nothing: the
  // outage datacenter re-routes real work, peers complete some of it, and
  // every ledger balances.
  ASSERT_EQ(truth.dcs.size(), 4u);
  EXPECT_TRUE(truth.conservation_ok) << truth.conservation_report;
  EXPECT_GT(truth.forwarded, 0u);
  EXPECT_GT(truth.remote_served, 0u);
  EXPECT_GT(truth.fleet_goodput_fraction, 0.5);
  EXPECT_TRUE(truth.dcs[config.outage_dc].recovered);
  EXPECT_GT(truth.dcs[config.outage_dc].dark_failures +
                truth.dcs[config.outage_dc].forwarded,
            0u);

  const struct {
    std::size_t shards;
    std::size_t threads;
  } grid[] = {{1, 1}, {2, 1}, {2, 2}, {4, 4}, {4, 8}};
  for (const auto& g : grid) {
    const FleetStormOutcome got = run_on_federation(config, g.shards, g.threads);
    EXPECT_TRUE(fleet_storm_outcomes_equal(got, truth))
        << "shards " << g.shards << " threads " << g.threads
        << " diverged from the single-kernel ground truth";
  }
}

TEST(FederationFleetStorm, UndefendedFleetIsAlsoFabricInvariant) {
  FleetStormConfig config = make_reference_fleet_storm_config(2, 1500, 9);
  config.defense.enabled = false;
  const FleetStormOutcome truth = run_on_single(config);
  EXPECT_TRUE(truth.conservation_ok) << truth.conservation_report;
  EXPECT_TRUE(
      fleet_storm_outcomes_equal(run_on_federation(config, 2, 2), truth));
}

TEST(FederationFleetStorm, ReroutingOffMeansNoCrossDatacenterFlow) {
  FleetStormConfig config = make_reference_fleet_storm_config(4, 1000, 5);
  config.reroute_fraction = 0.0;
  const FleetStormOutcome truth = run_on_single(config);

  EXPECT_EQ(truth.forwarded, 0u);
  EXPECT_EQ(truth.remote_served, 0u);
  EXPECT_EQ(truth.remote_shed, 0u);
  for (const auto& dc : truth.dcs) {
    EXPECT_EQ(dc.forwarded, 0u) << dc.site;
    EXPECT_EQ(dc.remote_admitted, 0u) << dc.site;
  }
  EXPECT_TRUE(truth.conservation_ok) << truth.conservation_report;
  // The outage datacenter eats the storm alone: everything that would have
  // ridden through peers dies dark instead.
  EXPECT_GT(truth.dcs[config.outage_dc].dark_failures, 0u);
  // Fabric equality must hold in the degenerate no-traffic case too (the
  // federation still runs windows; there is just nothing in the mailboxes).
  EXPECT_TRUE(
      fleet_storm_outcomes_equal(run_on_federation(config, 4, 2), truth));
}

TEST(FederationFleetStorm, PartialReroutingForwardsTheConfiguredFraction) {
  FleetStormConfig full = make_reference_fleet_storm_config(2, 1500, 3);
  FleetStormConfig half = full;
  half.reroute_fraction = 0.5;
  const FleetStormOutcome full_out = run_on_single(full);
  const FleetStormOutcome half_out = run_on_single(half);
  EXPECT_GT(half_out.forwarded, 0u);
  EXPECT_LT(half_out.forwarded, full_out.forwarded);
  EXPECT_TRUE(half_out.conservation_ok) << half_out.conservation_report;
  EXPECT_TRUE(
      fleet_storm_outcomes_equal(run_on_federation(half, 2, 2), half_out));
}

TEST(FederationFleetStorm, OutcomesEqualDetectsDivergence) {
  const FleetStormConfig config = make_reference_fleet_storm_config(2, 800, 5);
  const FleetStormOutcome a = run_on_single(config);
  EXPECT_TRUE(fleet_storm_outcomes_equal(a, a));
  FleetStormOutcome b = a;
  b.dcs[1].served_fresh += 1;
  EXPECT_FALSE(fleet_storm_outcomes_equal(a, b));
  FleetStormOutcome c = a;
  c.events_run += 1;
  EXPECT_FALSE(fleet_storm_outcomes_equal(a, c));
}

TEST(FederationFleetStorm, ValidationRejectsBrokenConfigs) {
  // Shard count must divide the datacenter count.
  {
    const FleetStormConfig config =
        make_reference_fleet_storm_config(4, 500, 5);
    const network::InterDcNetwork net = make_fleet_network(config);
    EXPECT_THROW(make_fleet_sharded_config(net, 3, 1), std::invalid_argument);
    sim::ShardedSimulator fed(make_fleet_sharded_config(net, 2, 1));
    sim::ShardedFabric fabric(fed);
    FleetStormConfig three_dcs = make_reference_fleet_storm_config(3, 500, 5);
    EXPECT_THROW(run_fleet_storm(three_dcs, fabric), std::invalid_argument);
  }
  // A fleet needs at least two sites and at most the remote-ref owner bound.
  {
    FleetStormConfig config = make_reference_fleet_storm_config(2, 500, 5);
    config.sites.resize(1);
    EXPECT_THROW(make_fleet_network(config), std::invalid_argument);
  }
  // Bad scalar fields.
  {
    FleetStormConfig config = make_reference_fleet_storm_config(2, 500, 5);
    config.reroute_fraction = 1.5;
    sim::SingleKernelFabric fabric(2);
    EXPECT_THROW(run_fleet_storm(config, fabric), std::invalid_argument);
    config.reroute_fraction = -0.1;
    EXPECT_THROW(run_fleet_storm(config, fabric), std::invalid_argument);
  }
  {
    FleetStormConfig config = make_reference_fleet_storm_config(2, 500, 5);
    config.outage_dc = 7;  // out of range for a 2-DC fleet
    sim::SingleKernelFabric fabric(2);
    EXPECT_THROW(run_fleet_storm(config, fabric), std::invalid_argument);
  }
}

TEST(FederationFleetStorm, ReferenceNetworkFloorsAreSoundLookaheads) {
  const FleetStormConfig config = make_reference_fleet_storm_config(4, 500, 5);
  const network::InterDcNetwork net = make_fleet_network(config);
  ASSERT_EQ(net.site_count(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t d = 0; d < 4; ++d) {
      if (s == d) {
        EXPECT_EQ(net.latency_floor_s(s, d), 0.0);
        continue;
      }
      // Positive, symmetric (derived from great-circle distance), and at
      // least the metro clamp.
      EXPECT_GE(net.latency_floor_s(s, d), config.min_latency_floor_s);
      EXPECT_EQ(net.latency_floor_s(s, d), net.latency_floor_s(d, s));
      EXPECT_GE(net.latency_floor_s(s, d), net.min_latency_floor_s());
    }
  }
  // The derived shard config's lookahead must never exceed the true floor
  // of any datacenter pair it covers, or a legal fleet send could be
  // rejected — and grouped decompositions use cross-group minima.
  const sim::ShardedConfig two = make_fleet_sharded_config(net, 2, 1);
  ASSERT_EQ(two.lookahead_s.size(), 4u);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      if (a == b) continue;
      for (std::size_t src = a * 2; src < a * 2 + 2; ++src) {
        for (std::size_t dst = b * 2; dst < b * 2 + 2; ++dst) {
          EXPECT_LE(two.lookahead_s[a * 2 + b], net.latency_floor_s(src, dst));
        }
      }
    }
  }
}

}  // namespace
}  // namespace epm::faults
