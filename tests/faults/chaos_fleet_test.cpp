// The chaos harness end-to-end: plain-run conservation, kill-and-restore
// bit-identity (serial and threaded), the partition zero-loss drill, and
// the defended-vs-naive recovery gate under a correlated regional event.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/chaos_fleet.h"
#include "network/interdc_link.h"

namespace epm::faults {
namespace {

ChaosFleetConfig small_config() {
  ChaosFleetConfig config;
  config.dcs = 3;
  config.epoch_s = 0.5;
  config.drive_until_s = 20.0;
  config.horizon_s = 30.0;
  config.arrival_rate_rps = 120.0;
  config.seed = 5;
  return config;
}

TEST(ChaosFleet, PlainRunConservesItemsAndKeepsFifo) {
  const ChaosFleetOutcome out = run_chaos_fleet(small_config());
  EXPECT_TRUE(out.fifo_ok);
  EXPECT_TRUE(out.conservation_ok) << out.conservation_report;
  EXPECT_DOUBLE_EQ(30.0, out.final_now_s);
  EXPECT_EQ(0U, out.messages_parked_end);
  EXPECT_EQ(0U, out.messages_redelivered);
  EXPECT_GT(out.messages_sent, 0U);
  std::uint64_t generated = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t received = 0;
  for (const ChaosDcOutcome& dc : out.dcs) {
    EXPECT_GT(dc.generated, 0U);
    EXPECT_GT(dc.epochs, 0U);
    generated += dc.generated;
    forwarded += dc.forwarded_items;
    received += dc.received_items;
  }
  EXPECT_GT(generated, 0U);
  EXPECT_EQ(forwarded, received);
}

TEST(ChaosFleet, RunsAreDeterministicAcrossThreadCounts) {
  ChaosFleetConfig serial = small_config();
  ChaosFleetConfig threaded = small_config();
  threaded.threads = 3;
  const ChaosFleetOutcome a = run_chaos_fleet(serial);
  const ChaosFleetOutcome b = run_chaos_fleet(threaded);
  EXPECT_TRUE(chaos_outcomes_equal(a, b));
  // A different seed is a different run — the equality check has teeth.
  ChaosFleetConfig reseeded = small_config();
  reseeded.seed = 6;
  EXPECT_FALSE(chaos_outcomes_equal(a, run_chaos_fleet(reseeded)));
}

TEST(ChaosFleet, KillAndRestoreContinuationIsBitIdentical) {
  const ChaosRestoreReport r =
      run_chaos_fleet_with_restore(small_config(), 10.0, 16.0);
  EXPECT_TRUE(r.identical);
  EXPECT_GT(r.snapshot_bytes, 0U);
  EXPECT_TRUE(chaos_outcomes_equal(r.uninterrupted, r.restored));
  EXPECT_TRUE(r.restored.conservation_ok)
      << r.restored.conservation_report;
}

TEST(ChaosFleet, KillAndRestoreHoldsUnderThreadedFederation) {
  ChaosFleetConfig config = small_config();
  config.threads = 3;
  const ChaosRestoreReport r =
      run_chaos_fleet_with_restore(config, 10.0, 16.0);
  EXPECT_TRUE(r.identical);
  // Snapshot at the kill point itself is the degenerate-but-legal case.
  const ChaosRestoreReport edge =
      run_chaos_fleet_with_restore(config, 12.0, 12.0);
  EXPECT_TRUE(edge.identical);
}

TEST(ChaosFleet, PartitionDrillParksHealsAndLosesNothing) {
  const ChaosPartitionReport r =
      run_chaos_partition_drill(small_config(), 8.0, 14.0, 16.0);
  EXPECT_TRUE(r.parked_seen);
  EXPECT_GT(r.parked_at_check, 0U);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.zero_loss);
  EXPECT_TRUE(r.fifo_ok);
  EXPECT_TRUE(r.passed);
  EXPECT_GE(r.redelivered, r.parked_at_check);
  EXPECT_TRUE(r.outcome.conservation_ok) << r.outcome.conservation_report;
  EXPECT_EQ(0U, r.outcome.messages_parked_end);
}

TEST(ChaosFleet, DegradedLinkPlanPreservesConservation) {
  ChaosFleetConfig config = small_config();
  network::InterDcLinkPlan plan(config.dcs);
  plan.slow(0, 1, 5.0, 12.0, 4.0);
  plan.lose(1, 2, 6.0, 15.0, 0.6);
  const ChaosFleetOutcome degraded = run_chaos_fleet(config, &plan);
  EXPECT_TRUE(degraded.fifo_ok);
  EXPECT_TRUE(degraded.conservation_ok) << degraded.conservation_report;
  EXPECT_GT(degraded.messages_redelivered, 0U);
  // Degradation delays but never destroys: same items end-to-end as the
  // pristine run of the same config.
  const ChaosFleetOutcome clean = run_chaos_fleet(config);
  std::uint64_t degraded_generated = 0;
  std::uint64_t clean_generated = 0;
  for (const ChaosDcOutcome& dc : degraded.dcs) degraded_generated += dc.generated;
  for (const ChaosDcOutcome& dc : clean.dcs) clean_generated += dc.generated;
  EXPECT_EQ(clean_generated, degraded_generated);
}

TEST(ChaosFleet, ConfigValidationFailsLoudly) {
  ChaosFleetConfig bad = small_config();
  bad.epoch_s = 0.0;
  EXPECT_THROW(run_chaos_fleet(bad), std::invalid_argument);
  bad = small_config();
  bad.drive_until_s = bad.horizon_s + 1.0;  // drive past the horizon
  EXPECT_THROW(run_chaos_fleet(bad), std::invalid_argument);
  bad = small_config();
  bad.forward_fraction = 1.5;
  EXPECT_THROW(run_chaos_fleet(bad), std::invalid_argument);
  // Restore drill bounds: 0 < snapshot <= kill < horizon.
  EXPECT_THROW(run_chaos_fleet_with_restore(small_config(), 0.0, 16.0),
               std::invalid_argument);
  EXPECT_THROW(run_chaos_fleet_with_restore(small_config(), 18.0, 16.0),
               std::invalid_argument);
  EXPECT_THROW(run_chaos_fleet_with_restore(small_config(), 10.0, 30.0),
               std::invalid_argument);
  // Plan size must match the fleet.
  network::InterDcLinkPlan wrong_size(5);
  EXPECT_THROW(run_chaos_fleet(small_config(), &wrong_size),
               std::invalid_argument);
}

TEST(ChaosRecovery, DefendedRecoversWhereNaiveDoesNot) {
  const ChaosRecoveryReport r = run_chaos_recovery(
      4, /*clients_per_dc=*/2000, /*seed=*/42, make_reference_grid_script());
  EXPECT_TRUE(r.gate_ok);
  EXPECT_TRUE(r.defended.recovered);
  EXPECT_FALSE(r.naive.recovered);
  EXPECT_GE(r.defended.ratio, r.threshold);
  EXPECT_LT(r.naive.ratio, r.threshold);
  EXPECT_TRUE(r.defended.conservation_ok);
  EXPECT_TRUE(r.naive.conservation_ok);
  // The grid broadcasts actually reached the defended fleet.
  EXPECT_GT(r.defended.grid_signals, 0U);
}

TEST(ChaosRecovery, UnknownGridTargetsFailWithResolveDiagnostic) {
  try {
    run_chaos_recovery(4, 500, 42, "outage:region/nowhere@32+16");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(std::string::npos, message.find("unknown region 'nowhere'"));
    EXPECT_NE(std::string::npos, message.find("americas"));
  }
}

}  // namespace
}  // namespace epm::faults
