// Hierarchical fault domains: tree resolution diagnostics, plan parsing,
// correlated expansion determinism, the reference topology, and the
// unknown-target rejection regression for FaultPlan (the injector's input).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_domain.h"
#include "faults/fault_plan.h"
#include "faults/fleet_storm.h"
#include "faults/storm.h"
#include "macro/geo.h"

namespace epm::faults {
namespace {

FaultDomainTree reference_tree(std::size_t dcs) {
  std::vector<std::string> names;
  for (const macro::SiteConfig& s : macro::make_reference_fleet_sites(dcs)) {
    names.push_back(s.name);
  }
  return make_reference_fault_domains(names);
}

TEST(FaultDomainTree, ReferenceTopology) {
  const FaultDomainTree tree = reference_tree(6);
  EXPECT_EQ(6U, tree.datacenter_count());
  EXPECT_EQ(3U, tree.feed_count());
  EXPECT_EQ(3U, tree.region_count());
  EXPECT_EQ(12U, tree.cluster_count());  // interactive + batch per DC

  // americas covers pnw, virginia, saopaulo — exactly the reference-site
  // datacenter indices 0, 1, 4.
  EXPECT_EQ((std::vector<std::size_t>{0, 1, 4}),
            tree.datacenters_under(DomainLevel::kRegion, "americas"));
  EXPECT_EQ((std::vector<std::size_t>{2}),
            tree.datacenters_under(DomainLevel::kGridFeed, "grid-eu"));
  EXPECT_EQ((std::vector<std::size_t>{3, 5}),
            tree.datacenters_under(DomainLevel::kGridFeed, "grid-apac"));
  EXPECT_EQ((std::vector<std::size_t>{1}),
            tree.datacenters_under(DomainLevel::kDatacenter, "virginia"));
  EXPECT_EQ((std::vector<std::size_t>{3}),
            tree.datacenters_under(DomainLevel::kCluster, "singapore/batch"));
  EXPECT_EQ(tree.region_of(0), tree.region_of(4));
  EXPECT_NE(tree.feed_of(0), tree.feed_of(2));
}

TEST(FaultDomainTree, UnknownDatacentersGetPrivateDomains) {
  const FaultDomainTree tree =
      make_reference_fault_domains({"pnw", "mars-base"});
  EXPECT_EQ((std::vector<std::size_t>{1}),
            tree.datacenters_under(DomainLevel::kRegion, "mars-base-region"));
  EXPECT_EQ((std::vector<std::size_t>{1}),
            tree.datacenters_under(DomainLevel::kGridFeed, "grid-mars-base"));
  // The two datacenters share nothing upstream.
  EXPECT_NE(tree.feed_of(0), tree.feed_of(1));
}

TEST(FaultDomainTree, ResolveRejectsUnknownNamesWithOneLineDiagnostic) {
  const FaultDomainTree tree = reference_tree(4);
  try {
    tree.resolve(DomainLevel::kRegion, "atlantis");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(std::string::npos, message.find("unknown region 'atlantis'"));
    EXPECT_NE(std::string::npos, message.find("americas"));
    EXPECT_EQ(std::string::npos, message.find('\n'));  // one line
  }
  EXPECT_THROW(tree.datacenters_under(DomainLevel::kGridFeed, "grid-xx"),
               std::invalid_argument);
  EXPECT_FALSE(tree.has(DomainLevel::kDatacenter, "atlantis"));
  EXPECT_TRUE(tree.has(DomainLevel::kDatacenter, "ireland"));
}

TEST(DomainFaultPlan, ParseRoundTripsAndValidates) {
  const std::string spec =
      "outage:region/americas@40+25;"
      "brownout:feed/grid-eu@70+30x0.6;"
      "price-spike:dc/tokyo@100+50x2.5;"
      "demand-response:cluster/pnw/batch@120+60";
  const DomainFaultPlan plan = DomainFaultPlan::parse(spec);
  ASSERT_EQ(4U, plan.size());
  EXPECT_EQ(spec, plan.to_string());
  EXPECT_EQ(GridEventKind::kOutage, plan.events()[0].kind);
  EXPECT_EQ(DomainLevel::kCluster, plan.events()[3].level);
  EXPECT_EQ("pnw/batch", plan.events()[3].target);
  EXPECT_DOUBLE_EQ(0.6, plan.events()[1].severity);

  EXPECT_THROW(DomainFaultPlan::parse("meteor:region/americas@40+25"),
               std::invalid_argument);
  EXPECT_THROW(DomainFaultPlan::parse("outage:americas@40+25"),
               std::invalid_argument);  // missing level
  EXPECT_THROW(DomainFaultPlan::parse("outage:region/americas@40"),
               std::invalid_argument);  // missing duration
  EXPECT_THROW(DomainFaultPlan::parse("brownout:region/americas@40+25x1.5"),
               std::invalid_argument);  // brownout severity outside (0, 1]
}

TEST(DomainExpansion, FansOutCorrelatedStaggeredFaults) {
  const FaultDomainTree tree = reference_tree(6);
  const DomainFaultPlan plan =
      DomainFaultPlan::parse("outage:region/americas@40+25");
  DomainExpansionConfig config;
  config.seed = 7;
  const auto expanded = expand_to_datacenters(tree, plan, config);
  ASSERT_EQ(3U, expanded.size());  // pnw, virginia, saopaulo
  std::vector<std::size_t> hit;
  for (const ExpandedDcFault& f : expanded) {
    hit.push_back(f.dc);
    // Correlated: every onset within the stagger of the scripted start,
    // every clear within the (larger) stagger of the scripted end.
    EXPECT_GE(f.onset_s, 40.0);
    EXPECT_LT(f.onset_s, 40.0 + config.onset_stagger_s);
    EXPECT_GE(f.clear_s, 65.0);
    EXPECT_LT(f.clear_s, 65.0 + config.clear_stagger_s);
    EXPECT_EQ(GridEventKind::kOutage, f.kind);
    EXPECT_EQ(0U, f.source_event);
  }
  std::sort(hit.begin(), hit.end());
  EXPECT_EQ((std::vector<std::size_t>{0, 1, 4}), hit);
  // Not lockstep: the staggers differ across datacenters.
  EXPECT_NE(expanded[0].onset_s, expanded[1].onset_s);

  // Deterministic: same seed reproduces bit-identically; a different seed
  // moves the staggers.
  const auto again = expand_to_datacenters(tree, plan, config);
  ASSERT_EQ(expanded.size(), again.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    EXPECT_EQ(expanded[i].onset_s, again[i].onset_s);
    EXPECT_EQ(expanded[i].clear_s, again[i].clear_s);
  }
  DomainExpansionConfig reseeded = config;
  reseeded.seed = 8;
  const auto moved = expand_to_datacenters(tree, plan, reseeded);
  EXPECT_NE(expanded[0].onset_s, moved[0].onset_s);

  // Unknown targets fail at expansion with the resolve() diagnostic.
  const DomainFaultPlan bad =
      DomainFaultPlan::parse("outage:region/atlantis@40+25");
  EXPECT_THROW(expand_to_datacenters(tree, bad, config),
               std::invalid_argument);
}

TEST(DomainExpansion, MapsOntoFleetDisruptions) {
  const FaultDomainTree tree = reference_tree(4);
  const DomainFaultPlan plan = DomainFaultPlan::parse(
      "outage:dc/pnw@30+20;brownout:feed/grid-eu@35+10x0.4;"
      "price-spike:dc/singapore@50+5x3.0");
  DomainExpansionConfig config;
  const auto disruptions =
      to_fleet_disruptions(expand_to_datacenters(tree, plan, config));
  ASSERT_EQ(3U, disruptions.size());
  const auto find_dc = [&](std::size_t dc) {
    for (const FleetDisruption& d : disruptions) {
      if (d.dc == dc) return d;
    }
    throw std::logic_error("dc not found");
  };
  const FleetDisruption outage = find_dc(0);
  EXPECT_DOUBLE_EQ(0.0, outage.capacity_factor);
  EXPECT_TRUE(outage.drop_sessions);
  const FleetDisruption brownout = find_dc(2);  // ireland
  EXPECT_DOUBLE_EQ(0.6, brownout.capacity_factor);
  EXPECT_FALSE(brownout.drop_sessions);
  const FleetDisruption spike = find_dc(3);
  EXPECT_DOUBLE_EQ(1.0, spike.capacity_factor);  // signal-only
  for (const FleetDisruption& d : disruptions) EXPECT_TRUE(d.broadcast);
}

// The ctl-kill grid token (controller-kill at a fault domain): it parses
// and round-trips like the power events, expands to every datacenter under
// the domain with the same correlated staggers, and maps onto a
// signal-only disruption — serving capacity is untouched, only the
// co-located controllers die.
TEST(DomainFaultPlan, ControllerKillRoundTripsAndExpands) {
  const std::string spec =
      "ctl-kill:region/americas@13+10;ctl-kill:dc/ireland@40+5";
  const DomainFaultPlan plan = DomainFaultPlan::parse(spec);
  ASSERT_EQ(2U, plan.size());
  EXPECT_EQ(spec, plan.to_string());
  EXPECT_EQ(GridEventKind::kControllerKill, plan.events()[0].kind);
  EXPECT_EQ(GridEventKind::kControllerKill, plan.events()[1].kind);
  EXPECT_EQ(DomainLevel::kRegion, plan.events()[0].level);
  EXPECT_EQ("ireland", plan.events()[1].target);
  EXPECT_EQ(DomainFaultPlan::parse(plan.to_string()).to_string(),
            plan.to_string());

  const FaultDomainTree tree = reference_tree(4);
  DomainExpansionConfig config;
  config.seed = 7;
  const auto expanded = expand_to_datacenters(tree, plan, config);
  // americas in the 4-DC reference fleet is pnw + virginia (DCs 0-1);
  // ireland is DC 2.
  ASSERT_EQ(3U, expanded.size());
  std::vector<std::size_t> hit;
  for (const ExpandedDcFault& f : expanded) {
    hit.push_back(f.dc);
    EXPECT_EQ(GridEventKind::kControllerKill, f.kind);
  }
  std::sort(hit.begin(), hit.end());
  EXPECT_EQ((std::vector<std::size_t>{0, 1, 2}), hit);

  // Signal-only on the fleet side: full capacity, no dropped sessions.
  const auto disruptions = to_fleet_disruptions(expanded);
  ASSERT_EQ(3U, disruptions.size());
  for (const FleetDisruption& d : disruptions) {
    EXPECT_DOUBLE_EQ(1.0, d.capacity_factor);
    EXPECT_FALSE(d.drop_sessions);
  }

  // Near-miss tokens stay rejected.
  EXPECT_THROW(DomainFaultPlan::parse("ctl-crash:region/americas@13+10"),
               std::invalid_argument);
  EXPECT_THROW(DomainFaultPlan::parse("ctlkill:region/americas@13+10"),
               std::invalid_argument);
}

// Satellite regression: a fat-fingered fault plan must be rejected with a
// one-line diagnostic before anything is armed, not silently fault nothing.
TEST(FaultPlanTargets, UnknownTargetsRejectedBeforeInjection) {
  const FaultPlan plan = FaultPlan::parse("crash:7@100+60");
  try {
    plan.validate_targets(/*service_count=*/2, /*crac_count=*/1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(std::string::npos, message.find("unknown service 7"));
    EXPECT_NE(std::string::npos, message.find("facility has 2"));
    EXPECT_EQ(std::string::npos, message.find('\n'));
  }
  EXPECT_THROW(FaultPlan::parse("crac:3@100+60").validate_targets(2, 2),
               std::invalid_argument);
  // In-range plans pass; outages carry no index to validate.
  EXPECT_NO_THROW(FaultPlan::parse("crash:1@100+60;outage@10+5")
                      .validate_targets(2, 1));

  // End-to-end: the storm runner rejects the plan before running anything.
  StormConfig config = make_reference_storm_config(8);
  config.horizon_s = 600.0;
  EXPECT_THROW(
      run_fault_storm(config, FaultPlan::parse("crash:99@100+60")),
      std::invalid_argument);
}

}  // namespace
}  // namespace epm::faults
