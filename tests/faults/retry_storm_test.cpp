#include "faults/retry_storm.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/parallel.h"

namespace epm::faults {
namespace {

using workload::RetryBackoff;

// 1/5-scale replica of the reference scenario (same time constants, same
// dynamics) so a full run costs a fraction of the bench point. The SLA
// fraction is loosened to 0.8: at ~100 rps the per-epoch goodput noise is
// ~10% of the mean, which would make a 0.9 recovery window flaky.
RetryStormConfig small_config(RetryBackoff backoff, bool defended) {
  RetryStormConfig config =
      make_reference_retry_storm_config(backoff, 120.0, defended);
  config.clients.clients = 4000;
  config.service_capacity_rps = 200.0;
  config.batch_rps = 60.0;
  config.naive_queue_capacity = 24000;
  config.defense.bucket = {180.0, 180.0};
  config.defense.queue_capacity = 360;  // sojourn <= 1.8 s < 4 s timeout
  config.outage_start_s = 120.0;
  config.horizon_s = 600.0;
  config.sla_goodput_fraction = 0.8;
  return config;
}

TEST(RetryStorm, DefendedArmRecoversWithNoStaleWork) {
  const RetryStormOutcome out =
      run_retry_storm(small_config(RetryBackoff::kImmediate, true));
  EXPECT_TRUE(out.recovered);
  EXPECT_GT(out.prefault_goodput_rps, 0.0);
  EXPECT_GE(out.end_goodput_rps, 0.9 * out.prefault_goodput_rps);
  // The bounded queue keeps sojourn under the client timeout: the defended
  // service never wastes capacity on requests the client abandoned.
  EXPECT_EQ(out.served_stale, 0u);
  EXPECT_GT(out.breaker_trips, 0u);
  EXPECT_GT(out.breaker_probes, 0u);
  EXPECT_GT(out.dark_failures, 0u);
  EXPECT_TRUE(out.conservation_ok) << out.conservation_report;
  EXPECT_TRUE(out.invariants_ok) << out.invariant_report;
  // The macro policy engaged (risk alert + load-shedding decisions logged).
  EXPECT_GT(out.decision_counts.size(), 0u);
}

TEST(RetryStorm, NaiveImmediateRetryGoesMetastable) {
  const RetryStormOutcome out =
      run_retry_storm(small_config(RetryBackoff::kImmediate, false));
  EXPECT_FALSE(out.recovered);
  EXPECT_TRUE(out.metastable);
  // The signature of the metastable state: offered load still above
  // capacity at the horizon, goodput collapsed, served work mostly stale.
  EXPECT_GT(out.end_offered_rps, out.end_interactive_capacity_rps);
  EXPECT_LT(out.end_goodput_rps, 0.5 * out.prefault_goodput_rps);
  EXPECT_GT(out.served_stale, 0u);
  EXPECT_GT(out.shed_queue, 0u);
  // No admission stack in the naive arm.
  EXPECT_EQ(out.shed_breaker, 0u);
  EXPECT_EQ(out.shed_bucket, 0u);
  EXPECT_EQ(out.breaker_trips, 0u);
  EXPECT_TRUE(out.conservation_ok) << out.conservation_report;
  EXPECT_TRUE(out.invariants_ok) << out.invariant_report;
}

TEST(RetryStorm, ExponentialBackoffAloneAvoidsTheMeltdown) {
  // Jittered exponential backoff desynchronizes the retry flood enough that
  // even the undefended service drains the surge — the classic client-side
  // defense, reproduced rather than asserted away.
  const RetryStormOutcome out =
      run_retry_storm(small_config(RetryBackoff::kExponential, false));
  EXPECT_TRUE(out.recovered);
  EXPECT_FALSE(out.metastable);
}

TEST(RetryStorm, RetryAmplificationIsConserved) {
  const RetryStormOutcome out =
      run_retry_storm(small_config(RetryBackoff::kFixed, true));
  // Every attempt is an intent or a retry; every shed lands in exactly one
  // bucket; telemetry mirrors the ledger through the sensor plane.
  EXPECT_EQ(out.attempts, out.intents + out.retries);
  EXPECT_EQ(out.telemetry_shed,
            out.shed_breaker + out.shed_bucket + out.shed_queue);
  EXPECT_EQ(out.telemetry_retried, out.retries);
  EXPECT_EQ(out.telemetry_abandoned, out.abandoned);
  EXPECT_GT(out.telemetry_samples, 0u);
  EXPECT_EQ(out.epochs, 600u);
}

TEST(RetryStorm, DefendedReferencePointMatchesBenchGate) {
  // One full-scale bench point, exactly as exp_retry_storm sweeps it.
  const RetryStormOutcome out = run_retry_storm(
      make_reference_retry_storm_config(RetryBackoff::kImmediate, 120.0, true));
  EXPECT_TRUE(out.recovered);
  EXPECT_LE(out.recovery_s, 300.0);
  EXPECT_EQ(out.served_stale, 0u);
  EXPECT_TRUE(out.conservation_ok) << out.conservation_report;
  EXPECT_TRUE(out.invariants_ok) << out.invariant_report;
}

TEST(RetryStorm, RejectsBadConfig) {
  RetryStormConfig config = small_config(RetryBackoff::kImmediate, true);
  config.horizon_s = config.outage_start_s;  // outage past the horizon
  EXPECT_THROW(run_retry_storm(config), std::invalid_argument);
  config = small_config(RetryBackoff::kImmediate, true);
  config.batch_rps = config.service_capacity_rps;
  EXPECT_THROW(run_retry_storm(config), std::invalid_argument);
  config = small_config(RetryBackoff::kImmediate, true);
  config.outage_start_s = 30.0;  // too early for a pre-fault SLA window
  EXPECT_THROW(run_retry_storm(config), std::invalid_argument);
  config = small_config(RetryBackoff::kImmediate, true);
  config.recovery_window_epochs = 0;
  EXPECT_THROW(run_retry_storm(config), std::invalid_argument);
}

// The bench sweeps scenario points on the ThreadPool; outcomes must be
// bit-identical at 1, 2, and 8 threads ("Parallel" opts into the TSan run).
TEST(RetryStormParallelDeterminism, SweepIsBitIdenticalAcrossThreadCounts) {
  struct Point {
    RetryBackoff backoff;
    bool defended;
  };
  const std::vector<Point> grid = {
      {RetryBackoff::kImmediate, false},
      {RetryBackoff::kImmediate, true},
      {RetryBackoff::kExponential, false},
      {RetryBackoff::kExponential, true},
  };
  auto sweep = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_map(grid.size(), [&](std::size_t i) {
      return run_retry_storm(small_config(grid[i].backoff, grid[i].defended));
    });
  };
  const auto base = sweep(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto other = sweep(threads);
    ASSERT_EQ(base.size(), other.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].intents, other[i].intents);
      EXPECT_EQ(base[i].attempts, other[i].attempts);
      EXPECT_EQ(base[i].retries, other[i].retries);
      EXPECT_EQ(base[i].served_fresh, other[i].served_fresh);
      EXPECT_EQ(base[i].served_stale, other[i].served_stale);
      EXPECT_EQ(base[i].timed_out, other[i].timed_out);
      EXPECT_EQ(base[i].abandoned, other[i].abandoned);
      EXPECT_EQ(base[i].dark_failures, other[i].dark_failures);
      EXPECT_EQ(base[i].shed_breaker, other[i].shed_breaker);
      EXPECT_EQ(base[i].shed_bucket, other[i].shed_bucket);
      EXPECT_EQ(base[i].shed_queue, other[i].shed_queue);
      EXPECT_EQ(base[i].breaker_trips, other[i].breaker_trips);
      EXPECT_EQ(base[i].breaker_probes, other[i].breaker_probes);
      EXPECT_EQ(base[i].max_queue_depth, other[i].max_queue_depth);
      EXPECT_EQ(base[i].recovered, other[i].recovered);
      EXPECT_EQ(base[i].metastable, other[i].metastable);
      EXPECT_DOUBLE_EQ(base[i].prefault_goodput_rps,
                       other[i].prefault_goodput_rps);
      EXPECT_DOUBLE_EQ(base[i].end_offered_rps, other[i].end_offered_rps);
      EXPECT_DOUBLE_EQ(base[i].end_goodput_rps, other[i].end_goodput_rps);
      EXPECT_DOUBLE_EQ(base[i].recovery_s, other[i].recovery_s);
      EXPECT_EQ(base[i].decision_counts, other[i].decision_counts);
    }
  }
}

}  // namespace
}  // namespace epm::faults
