#include "faults/injector.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace {

using epm::faults::FaultEvent;
using epm::faults::FaultInjector;
using epm::faults::FaultPlan;
using epm::faults::FaultType;

TEST(FaultInjector, DeliversOnsetAndClearInOrder) {
  epm::sim::Simulator sim;
  FaultInjector injector(sim,
                         FaultPlan::parse("outage@100+50;crac:0@120+100"));

  struct Edge {
    FaultType type;
    bool onset;
    double at_s;
  };
  std::vector<Edge> edges;
  injector.subscribe([&](const FaultEvent& e, bool onset, double now_s) {
    edges.push_back({e.type, onset, now_s});
    return true;
  });
  injector.arm();
  sim.run_all();

  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0].type, FaultType::kUtilityOutage);
  EXPECT_TRUE(edges[0].onset);
  EXPECT_DOUBLE_EQ(edges[0].at_s, 100.0);
  EXPECT_EQ(edges[1].type, FaultType::kCracFailure);
  EXPECT_TRUE(edges[1].onset);
  EXPECT_DOUBLE_EQ(edges[1].at_s, 120.0);
  EXPECT_FALSE(edges[2].onset);  // outage clears at 150
  EXPECT_DOUBLE_EQ(edges[2].at_s, 150.0);
  EXPECT_FALSE(edges[3].onset);  // crac clears at 220
  EXPECT_DOUBLE_EQ(edges[3].at_s, 220.0);
}

TEST(FaultInjector, TracksActiveEventsMidPlan) {
  epm::sim::Simulator sim;
  FaultInjector injector(sim,
                         FaultPlan::parse("outage@100+50;crac:0@120+100"));
  injector.subscribe(
      [](const FaultEvent&, bool, double) { return true; });
  injector.arm();

  sim.run_until(99.0);
  EXPECT_TRUE(injector.active_events().empty());

  sim.run_until(130.0);
  EXPECT_EQ(injector.active_events().size(), 2u);
  EXPECT_TRUE(injector.any_active(FaultType::kUtilityOutage));
  EXPECT_TRUE(injector.any_active(FaultType::kCracFailure));

  sim.run_until(160.0);
  EXPECT_FALSE(injector.any_active(FaultType::kUtilityOutage));
  ASSERT_EQ(injector.active_events(FaultType::kCracFailure).size(), 1u);
  EXPECT_FALSE(injector.conserved());  // crac failure not yet cleared

  sim.run_all();
  EXPECT_TRUE(injector.conserved());
  EXPECT_EQ(injector.observed_count(), 2u);
  EXPECT_EQ(injector.handled_count(), 2u);
  EXPECT_EQ(injector.cleared_count(), 2u);
}

// Conservation demands somebody *handled* each fault, not just saw it.
TEST(FaultInjector, UnhandledFaultBreaksConservation) {
  epm::sim::Simulator sim;
  FaultInjector injector(sim, FaultPlan::parse("outage@10+20"));
  injector.subscribe(
      [](const FaultEvent&, bool, double) { return false; });
  injector.arm();
  sim.run_all();
  EXPECT_EQ(injector.observed_count(), 1u);
  EXPECT_EQ(injector.cleared_count(), 1u);
  EXPECT_EQ(injector.handled_count(), 0u);
  EXPECT_FALSE(injector.conserved());
}

TEST(FaultInjector, EmptyPlanIsTriviallyConserved) {
  epm::sim::Simulator sim;
  FaultInjector injector(sim, FaultPlan{});
  injector.arm();
  sim.run_all();
  EXPECT_TRUE(injector.conserved());
  EXPECT_EQ(injector.observed_count(), 0u);
}

TEST(FaultInjector, RejectsMisuse) {
  epm::sim::Simulator sim;
  FaultInjector injector(sim, FaultPlan::parse("outage@10+20"));
  EXPECT_THROW(injector.subscribe(nullptr), std::invalid_argument);
  injector.arm();
  EXPECT_THROW(injector.subscribe(
                   [](const FaultEvent&, bool, double) { return true; }),
               std::logic_error);
  EXPECT_THROW(injector.arm(), std::logic_error);
}

}  // namespace
