// The control-plane chaos harness end-to-end: clean no-fault runs, the
// kill-the-leader drill (defended vs naive, with and without a WAN
// partition), the split-brain drill, grid-script controller kills, and
// mid-failover save/restore bit-identity.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/control_chaos.h"
#include "network/interdc_link.h"

namespace epm::faults {
namespace {

ControlChaosConfig base_config() {
  ControlChaosConfig config;
  config.dcs = 4;
  config.seed = 7;
  return config;
}

TEST(ControlChaos, NoFaultRunIsCleanAndOnlyTheSeedLeaderActs) {
  const ControlChaosOutcome out = run_control_plane(base_config());
  EXPECT_EQ(0U, out.total_sla_violations) << out.report;
  EXPECT_EQ(0U, out.total_alarms) << out.report;
  EXPECT_TRUE(out.lease_unique_ok);
  EXPECT_TRUE(out.fencing_clean);
  EXPECT_TRUE(out.conservation_ok) << out.report;
  EXPECT_DOUBLE_EQ(42.0, out.final_now_s);
  EXPECT_GT(out.control_messages, 0U);
  ASSERT_EQ(4U, out.replicas.size());
  // Replica 0 holds its seeded lease the whole run; nobody else claims.
  EXPECT_EQ(1U, out.replicas[0].claims);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_TRUE(out.replicas[r].hosted);
    EXPECT_EQ(0U, out.replicas[r].claims);
    EXPECT_EQ(0U, out.replicas[r].depositions);
  }
  for (const ControlDcOutcome& dc : out.dcs) {
    EXPECT_GT(dc.epochs, 0U);
    EXPECT_GT(dc.commands_applied, 0U);  // the eco program reached every DC
    EXPECT_EQ(0U, dc.safe_state_trips);
    EXPECT_EQ(0U, dc.double_actuations);
    EXPECT_GT(dc.heartbeats_seen, 0U);
  }
  // Every replica converges on the same journal: all 24 program steps.
  for (const ControlReplicaOutcome& r : out.replicas) {
    EXPECT_EQ(24U, r.journal_entries);
  }
}

TEST(ControlChaos, OutcomeIsBitIdenticalAcrossShardAndThreadCounts) {
  ControlChaosConfig serial = base_config();
  serial.shards = 1;
  const ControlChaosOutcome reference = run_control_plane(serial);
  for (const std::size_t shards : {2U, 4U}) {
    for (const std::size_t threads : {1U, 2U, 8U}) {
      ControlChaosConfig c = base_config();
      c.shards = shards;
      c.threads = threads;
      const ControlChaosOutcome out = run_control_plane(c);
      EXPECT_TRUE(control_outcomes_equal(reference, out))
          << "shards=" << shards << " threads=" << threads << "\nref: "
          << reference.report << "\ngot: " << out.report;
    }
  }
}

TEST(ControlChaos, LeaderKillGateDefendedSurvivesNaiveViolates) {
  const ControlLeaderKillReport rep =
      run_leader_kill_drill(/*dcs=*/4, /*threads=*/2, /*seed=*/7,
                            /*with_partition=*/false);
  EXPECT_TRUE(rep.defended_clean)
      << "defended: " << rep.defended.report;
  EXPECT_TRUE(rep.naive_violates) << "naive: " << rep.naive.report;
  EXPECT_TRUE(rep.gate_ok);

  // Defended: replica 1 (shortest staggered TTL) takes over exactly once
  // and resumes the half-issued eco exit.
  EXPECT_EQ(1U, rep.defended.replicas[1].claims);
  EXPECT_GT(rep.defended.replicas[1].commands_replayed, 0U);
  EXPECT_GT(rep.defended.replicas[1].commands_issued, 0U);
  EXPECT_EQ(1U, rep.defended.replicas[0].crashes);
  // The replay was suppressed by uid where already applied — rejections on
  // the actuator ledgers, zero double actuations anywhere.
  std::uint64_t rejections = 0;
  for (const ControlDcOutcome& dc : rep.defended.dcs) {
    rejections += dc.fencing_rejections;
    EXPECT_EQ(0U, dc.double_actuations);
  }
  EXPECT_GT(rejections, 0U);

  // Naive: the dead controller strands the unreached DCs in eco mode.
  EXPECT_LT(rep.naive.fleet_end_frac, 0.9);
  EXPECT_GT(rep.naive.total_sla_violations, 0U);
  EXPECT_GT(rep.naive.total_alarms, 0U);
}

TEST(ControlChaos, LeaderKillGateHoldsAtOtherFleetSizes) {
  for (const std::size_t dcs : {3U, 6U}) {
    const ControlLeaderKillReport rep =
        run_leader_kill_drill(dcs, /*threads=*/2, /*seed=*/11,
                              /*with_partition=*/false);
    EXPECT_TRUE(rep.gate_ok)
        << "dcs=" << dcs << "\ndefended: " << rep.defended.report
        << "\nnaive: " << rep.naive.report;
  }
}

TEST(ControlChaos, PartitionedDcFallsBackToSafeStateBeforeTheRamp) {
  const ControlLeaderKillReport rep =
      run_leader_kill_drill(/*dcs=*/4, /*threads=*/2, /*seed=*/7,
                            /*with_partition=*/true);
  EXPECT_TRUE(rep.gate_ok)
      << "defended: " << rep.defended.report
      << "\nnaive: " << rep.naive.report;
  // DC 0 was cut off from the new leader through the failover window: its
  // dead-man's switch must have tripped it to safe defaults.
  EXPECT_GE(rep.defended.dcs[0].safe_state_trips, 1U);
  for (std::size_t d = 1; d < 4; ++d) {
    EXPECT_EQ(0U, rep.defended.dcs[d].safe_state_trips);
  }
}

TEST(ControlChaos, SplitBrainActuationsAreFencedAndTheImposterDeposed) {
  const ControlSplitBrainReport rep =
      run_split_brain_drill(/*dcs=*/4, /*threads=*/2, /*seed=*/7);
  EXPECT_TRUE(rep.passed) << rep.outcome.report;
  EXPECT_GT(rep.stale_fenced, 0U);
  EXPECT_EQ(0U, rep.double_actuations);
  EXPECT_TRUE(rep.stale_leader_deposed);
  // The woken leader's heartbeats were recognized as stale by its peers.
  std::uint64_t stale_heartbeats = 0;
  for (const ControlReplicaOutcome& r : rep.outcome.replicas) {
    stale_heartbeats += r.stale_heartbeats;
  }
  EXPECT_GT(stale_heartbeats, 0U);
  // Second rejection layer: its journal replications were fenced too.
  std::uint64_t journal_rejections = 0;
  for (const ControlReplicaOutcome& r : rep.outcome.replicas) {
    journal_rejections += r.journal_rejected_stale;
  }
  EXPECT_GT(journal_rejections, 0U);
  // And the fleet stayed clean throughout.
  EXPECT_EQ(0U, rep.outcome.total_sla_violations) << rep.outcome.report;
  EXPECT_EQ(0U, rep.outcome.total_alarms);
}

TEST(ControlChaos, GridScriptKillsCoLocatedControllersTogether) {
  ControlChaosConfig config = base_config();
  config.grid_script = make_reference_control_grid_script();
  const ControlChaosOutcome out = run_control_plane(config);
  // In the 4-DC reference fleet the americas region hosts pnw and virginia
  // (DCs 0-1): both controllers died with the grid event; the surviving
  // replica with the shortest staggered TTL (ireland, DC 2) took over.
  EXPECT_EQ(1U, out.replicas[0].crashes);
  EXPECT_EQ(1U, out.replicas[1].crashes);
  EXPECT_EQ(0U, out.replicas[2].crashes);
  EXPECT_EQ(0U, out.replicas[3].crashes);
  EXPECT_EQ(1U, out.replicas[2].claims);
  EXPECT_EQ(0U, out.replicas[3].claims);
  EXPECT_EQ(0U, out.total_sla_violations) << out.report;
  EXPECT_EQ(0U, out.total_alarms) << out.report;
  EXPECT_TRUE(out.lease_unique_ok);
  EXPECT_TRUE(out.fencing_clean);
  EXPECT_TRUE(out.conservation_ok);
}

TEST(ControlChaos, RestoredRunFinishesBitIdenticalThroughTheFailover) {
  ControlChaosConfig config = base_config();
  config.controller_faults = make_leader_kill_plan();
  // Snapshot after the kill but before the successor's claim (kill at
  // 13.25, claim at 16.0): the failover itself replays from the snapshot.
  const ControlRestoreReport rep =
      run_control_plane_with_restore(config, /*snapshot_at_s=*/14.0,
                                     /*kill_at_s=*/16.5);
  EXPECT_TRUE(rep.identical)
      << "uninterrupted: " << rep.uninterrupted.report
      << "\nrestored: " << rep.restored.report;
  EXPECT_GT(rep.snapshot_bytes, 0U);
  EXPECT_EQ(1U, rep.restored.replicas[1].claims);
}

TEST(ControlChaos, RejectsMalformedConfigurations) {
  ControlChaosConfig bad = base_config();
  bad.shards = 3;  // does not divide 4
  EXPECT_THROW(run_control_plane(bad), std::invalid_argument);

  ControlChaosConfig wrong_fault = base_config();
  wrong_fault.controller_faults = "crash:0@5+1";  // a server fault, not ctl-*
  EXPECT_THROW(run_control_plane(wrong_fault), std::invalid_argument);

  ControlChaosConfig out_of_range = base_config();
  out_of_range.controller_faults = "ctl-crash:9@5+1";  // only 4 replicas
  EXPECT_THROW(run_control_plane(out_of_range), std::invalid_argument);

  // A link plan with mismatched sharding is rejected up front.
  ControlChaosConfig two_shards = base_config();
  two_shards.shards = 2;
  network::InterDcLinkPlan plan(4);
  EXPECT_THROW(run_control_plane(two_shards, &plan), std::invalid_argument);

  EXPECT_THROW(run_leader_kill_drill(2, 1, 1, false), std::invalid_argument);
}

}  // namespace
}  // namespace epm::faults
