#include "faults/storm.h"

#include <gtest/gtest.h>

#include "faults/fault_plan.h"

namespace {

using epm::faults::FaultPlan;
using epm::faults::FaultType;
using epm::faults::StormConfig;
using epm::faults::StormOutcome;

TEST(FaultStorm, QuietStormServesEverythingOffered) {
  StormConfig config = epm::faults::make_reference_storm_config(40);
  config.horizon_s = 2.0 * 3600.0;
  const StormOutcome out = epm::faults::run_fault_storm(config, FaultPlan{});
  EXPECT_EQ(out.epochs, 120u);
  EXPECT_GT(out.offered_requests, 0.0);
  EXPECT_GT(out.served_fraction(), 0.99);
  EXPECT_EQ(out.brownout_epochs, 0u);
  EXPECT_EQ(out.trip_epochs, 0u);
  EXPECT_DOUBLE_EQ(out.shed_requests, 0.0);
  EXPECT_DOUBLE_EQ(out.rerouted_requests, 0.0);
  EXPECT_TRUE(out.faults_conserved);
  EXPECT_EQ(out.faults_injected, 0u);
  EXPECT_GT(out.it_energy_kwh, 0.0);
  EXPECT_GT(out.mechanical_energy_kwh, 0.0);
}

TEST(FaultStorm, StormPlanIsFullyConservedAndAccounted) {
  const StormConfig config = epm::faults::make_reference_storm_config(40);
  const FaultPlan plan = epm::faults::make_storm_plan(
      1.0, config.horizon_s, 77, config.demand_rps.size(), 1);
  const StormOutcome out = epm::faults::run_fault_storm(config, plan);

  EXPECT_TRUE(out.faults_conserved);
  EXPECT_EQ(out.faults_injected, plan.size());
  EXPECT_EQ(out.faults_handled, plan.size());
  EXPECT_EQ(out.faults_cleared, plan.size());

  EXPECT_GT(out.offered_requests, 0.0);
  EXPECT_GE(out.served_requests, 0.0);
  EXPECT_LE(out.served_requests, out.offered_requests);
  EXPECT_GE(out.shed_requests, 0.0);
  EXPECT_GE(out.rerouted_requests, 0.0);
  EXPECT_GE(out.dropped_requests, 0.0);
  EXPECT_GE(out.min_state_of_charge, 0.0);
  EXPECT_LE(out.min_state_of_charge, 1.0);
  // The scripted outage must actually bite the UPS.
  EXPECT_LT(out.min_state_of_charge, 1.0);
  EXPECT_GT(out.telemetry_samples, 0u);
}

// The acceptance property in miniature: under the utility-outage +
// CRAC-failure storm, the degradation policy must serve strictly more than
// the uncoordinated baseline (which browns out when the UPS empties).
TEST(FaultStorm, PolicyOutservesUncoordinatedBaseline) {
  StormConfig with_policy = epm::faults::make_reference_storm_config(40);
  StormConfig baseline = with_policy;
  baseline.policy_enabled = false;
  const FaultPlan plan = epm::faults::make_storm_plan(
      1.0, with_policy.horizon_s, 7, with_policy.demand_rps.size(), 1);

  const StormOutcome managed = epm::faults::run_fault_storm(with_policy, plan);
  const StormOutcome unmanaged = epm::faults::run_fault_storm(baseline, plan);

  EXPECT_DOUBLE_EQ(managed.offered_requests, unmanaged.offered_requests);
  // Served load is what reaches users anywhere: locally served plus traffic
  // the policy re-routed to a peer site (the baseline never re-routes).
  EXPECT_GT(managed.served_requests + managed.rerouted_requests,
            unmanaged.served_requests + unmanaged.rerouted_requests);
  EXPECT_LE(managed.brownout_epochs, unmanaged.brownout_epochs);
  // The policy's whole point: the baseline goes dark, the policy does not
  // (or at least far less).
  EXPECT_GT(unmanaged.brownout_epochs, 0u);
  EXPECT_GT(managed.decision_counts.size(), 0u);
}

TEST(FaultStorm, SensorFaultsDegradeTelemetryOnly) {
  StormConfig config = epm::faults::make_reference_storm_config(40);
  config.horizon_s = 3600.0;
  const FaultPlan plan =
      FaultPlan::parse("sensor-drop:0@600+900;sensor-stuck:1@600+900");
  const StormOutcome out = epm::faults::run_fault_storm(config, plan);
  EXPECT_GT(out.dropped_samples, 0u);
  EXPECT_GT(out.degraded_samples, 0u);
  EXPECT_TRUE(out.faults_conserved);
  // Sensor faults must not cost any served load.
  EXPECT_GT(out.served_fraction(), 0.99);
}

TEST(FaultStorm, FlashCrowdRaisesOfferedLoad) {
  StormConfig config = epm::faults::make_reference_storm_config(40);
  config.horizon_s = 3600.0;
  const StormOutcome quiet = epm::faults::run_fault_storm(config, FaultPlan{});
  const StormOutcome surged = epm::faults::run_fault_storm(
      config, FaultPlan::parse("surge:0@600+1200x2.5"));
  EXPECT_GT(surged.offered_requests, quiet.offered_requests);
}

TEST(FaultStorm, IdenticalInputsGiveIdenticalOutcomes) {
  const StormConfig config = epm::faults::make_reference_storm_config(40);
  const FaultPlan plan = epm::faults::make_storm_plan(
      0.8, config.horizon_s, 3, config.demand_rps.size(), 1);
  const StormOutcome a = epm::faults::run_fault_storm(config, plan);
  const StormOutcome b = epm::faults::run_fault_storm(config, plan);
  EXPECT_DOUBLE_EQ(a.served_requests, b.served_requests);
  EXPECT_DOUBLE_EQ(a.offered_requests, b.offered_requests);
  EXPECT_DOUBLE_EQ(a.it_energy_kwh, b.it_energy_kwh);
  EXPECT_DOUBLE_EQ(a.mechanical_energy_kwh, b.mechanical_energy_kwh);
  EXPECT_DOUBLE_EQ(a.max_zone_temp_c, b.max_zone_temp_c);
  EXPECT_EQ(a.brownout_epochs, b.brownout_epochs);
  EXPECT_EQ(a.decision_counts, b.decision_counts);
}

}  // namespace
