#include "faults/fault_plan.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using epm::faults::FaultEvent;
using epm::faults::FaultPlan;
using epm::faults::FaultPlanConfig;
using epm::faults::FaultType;

TEST(FaultPlan, ParseToStringRoundTrip) {
  const std::string spec =
      "outage@3600+1200;crac:0@7200+1800;surge:1@10000+300x3";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].type, FaultType::kUtilityOutage);
  EXPECT_DOUBLE_EQ(plan.events()[0].start_s, 3600.0);
  EXPECT_DOUBLE_EQ(plan.events()[0].duration_s, 1200.0);
  EXPECT_EQ(plan.events()[1].type, FaultType::kCracFailure);
  EXPECT_EQ(plan.events()[2].type, FaultType::kFlashCrowd);
  EXPECT_EQ(plan.events()[2].target, 1u);
  EXPECT_DOUBLE_EQ(plan.events()[2].severity, 3.0);

  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.fingerprint(), plan.fingerprint());
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, TypeTokensRoundTripForAllTypes) {
  for (std::size_t i = 0; i < epm::faults::kFaultTypeCount; ++i) {
    const auto type = static_cast<FaultType>(i);
    EXPECT_EQ(epm::faults::fault_type_from_string(epm::faults::to_string(type)),
              type);
  }
  EXPECT_THROW(epm::faults::fault_type_from_string("melts"),
               std::invalid_argument);
}

TEST(FaultPlan, ScriptedValidatesAndSortsEvents) {
  std::vector<FaultEvent> events;
  events.push_back({FaultType::kServerCrash, 500.0, 60.0, 1, 0.2});
  events.push_back({FaultType::kUtilityOutage, 100.0, 300.0, 0, 1.0});
  const FaultPlan plan = FaultPlan::scripted(events);
  EXPECT_DOUBLE_EQ(plan.events().front().start_s, 100.0);
  EXPECT_DOUBLE_EQ(plan.events().back().start_s, 500.0);
  EXPECT_DOUBLE_EQ(plan.horizon_s(), 560.0);
  EXPECT_EQ(plan.count(FaultType::kUtilityOutage), 1u);
  EXPECT_EQ(plan.count(FaultType::kCracFailure), 0u);

  EXPECT_THROW(FaultPlan::scripted({{FaultType::kServerCrash, -1.0, 60.0}}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::scripted({{FaultType::kServerCrash, 0.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::scripted({{FaultType::kServerCrash, 0.0, 60.0, 0, -0.5}}),
      std::invalid_argument);
}

TEST(FaultPlan, ParseRejectsMalformedEntries) {
  EXPECT_THROW(FaultPlan::parse("outage3600+1200"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("outage@3600"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("meteor@0+60"), std::invalid_argument);
}

// Fuzz-style malformed-input corpus: every entry must be rejected with a
// std::invalid_argument whose message contains the expected fragment —
// usually the offending token itself — so a bad plan string is diagnosable
// from the exception alone.
TEST(FaultPlan, ParseNamesTheBadTokenForEveryMalformedEntry) {
  struct Case {
    const char* spec;
    const char* needle;  // must appear in the exception message
  };
  const Case corpus[] = {
      // Structural damage.
      {"outage@100+60@200", "duplicate '@'"},
      {"crash:0@@100+60", "duplicate '@'"},
      {"@100+60", "missing type"},
      {":0@100+60", "missing type"},
      {"outage@", "missing '+duration'"},
      {"crash:0@100", "missing '+duration'"},
      // Truncated numeric tokens.
      {"crash:0@+60", "empty start"},
      {"crash:0@100+", "empty duration"},
      {"crash:0@100+60x", "empty severity"},
      // Non-numeric and non-finite values.
      {"crash:0@12abc+60", "'12abc'"},
      {"crash:0@nan+60", "'nan'"},
      {"crash:0@inf+60", "'inf'"},
      {"crash:0@1e400+60", "'1e400'"},  // overflows to +inf
      {"crash:0@100+nan", "'nan'"},
      {"crash:0@100+60xabc", "'abc'"},
      // Out-of-domain values.
      {"crash:0@-5+60", "start must be >= 0"},
      {"crash:0@100+-60", "duration must be > 0"},
      {"crash:0@100+0", "duration must be > 0"},
      {"crash:0@100+60x-1", "severity must be >= 0"},
      // Broken target indices.
      {"crash:@100+60", "bad target token"},
      {"crash:-1@100+60", "'-1'"},
      {"crash:1e3@100+60", "'1e3'"},
      {"crash:7up@100+60", "'7up'"},
      {"crash:99999999999999999999999@100+60", "bad target token"},
      // Unknown types.
      {"meteor@0+60", "meteor"},
      {"sensor-dropp@0+60", "sensor-dropp"},
  };
  for (const auto& c : corpus) {
    try {
      (void)FaultPlan::parse(c.spec);
      FAIL() << "accepted malformed spec: " << c.spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "spec '" << c.spec << "' threw '" << e.what()
          << "' which does not mention '" << c.needle << "'";
    }
  }
}

// Whitespace and empty entries are tolerated, not errors.
TEST(FaultPlan, ParseToleratesWhitespaceAndEmptyEntries) {
  const FaultPlan plan =
      FaultPlan::parse(" outage@100+60 ; ;; crash : 1 @ 10 + 30 x 0.5 ");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].type, FaultType::kServerCrash);
  EXPECT_EQ(plan.events()[0].target, 1u);
  EXPECT_DOUBLE_EQ(plan.events()[0].severity, 0.5);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ; ").empty());
}

// Property: format -> parse -> fingerprint is the identity for any valid
// plan, including the sensing/actuation fault types and doubles whose
// default formatting is awkward (1e+06 collides with the '+' separator,
// 17-significant-digit values need full round-trip precision).
TEST(FaultPlan, FormatParseFingerprintRoundTripsEveryTypeAndAwkwardDoubles) {
  std::vector<FaultEvent> events;
  for (std::size_t i = 0; i < epm::faults::kFaultTypeCount; ++i) {
    events.push_back({static_cast<FaultType>(i), 1e6 + 7.0 * i,
                      600.0 + 0.1 * i, i, 0.25 + 0.05 * i});
  }
  events.push_back(
      {FaultType::kSensorNoise, 0.1234567890123456789, 2e6, 3, 1e-9});
  events.push_back({FaultType::kActuatorFail, 3.0e7, 86400.0 / 3.0, 1, 0.97});
  const FaultPlan plan = FaultPlan::scripted(events);

  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.fingerprint(), plan.fingerprint());
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(again.events()[i].start_s, plan.events()[i].start_s);
    EXPECT_EQ(again.events()[i].duration_s, plan.events()[i].duration_s);
    EXPECT_EQ(again.events()[i].severity, plan.events()[i].severity);
  }

  // Sampled plans across several seeds round-trip too: the plan text is a
  // faithful serialization, not an approximation.
  for (const std::uint64_t seed : {1ull, 2009ull, 0xdeadbeefull}) {
    FaultPlanConfig config;
    config.horizon_s = 7.0 * 86400.0;
    config.seed = seed;
    for (std::size_t i = 0; i < epm::faults::kFaultTypeCount; ++i) {
      config.rates[i] = {2.0 + static_cast<double>(i), 900.0, 60.0,
                         0.05, 0.95, 3};
    }
    const FaultPlan sampled = FaultPlan::sampled(config);
    ASSERT_FALSE(sampled.empty());
    EXPECT_EQ(FaultPlan::parse(sampled.to_string()).fingerprint(),
              sampled.fingerprint())
        << "seed " << seed;
  }
}

TEST(FaultPlan, SampledIsDeterministicInSeed) {
  FaultPlanConfig config;
  config.horizon_s = 7.0 * 86400.0;
  config.seed = 2009;
  config.rate(FaultType::kServerCrash) = {4.0, 900.0, 60.0, 0.05, 0.25, 2};
  config.rate(FaultType::kCoolingDerate) = {2.0, 1800.0, 300.0, 0.2, 0.6, 1};
  config.rate(FaultType::kFlashCrowd) = {1.0, 600.0, 120.0, 1.5, 3.0, 2};

  const FaultPlan a = FaultPlan::sampled(config);
  const FaultPlan b = FaultPlan::sampled(config);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  config.seed = 2010;
  const FaultPlan c = FaultPlan::sampled(config);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// Per-type streams are independent: enabling a second fault type must not
// perturb the first type's arrivals, durations, or severities.
TEST(FaultPlan, SampledStreamsAreIndependentAcrossTypes) {
  FaultPlanConfig crash_only;
  crash_only.horizon_s = 7.0 * 86400.0;
  crash_only.seed = 7;
  crash_only.rate(FaultType::kServerCrash) = {3.0, 900.0, 60.0, 0.1, 0.3, 2};

  FaultPlanConfig crash_plus_surge = crash_only;
  crash_plus_surge.rate(FaultType::kFlashCrowd) = {2.0, 600.0, 120.0, 1.5,
                                                   2.5, 2};

  const FaultPlan lean = FaultPlan::sampled(crash_only);
  const FaultPlan rich = FaultPlan::sampled(crash_plus_surge);
  ASSERT_FALSE(lean.empty());
  EXPECT_GT(rich.size(), lean.size());

  std::vector<FaultEvent> lean_crashes;
  for (const auto& e : lean.events()) {
    if (e.type == FaultType::kServerCrash) lean_crashes.push_back(e);
  }
  std::vector<FaultEvent> rich_crashes;
  for (const auto& e : rich.events()) {
    if (e.type == FaultType::kServerCrash) rich_crashes.push_back(e);
  }
  ASSERT_EQ(lean_crashes.size(), rich_crashes.size());
  for (std::size_t i = 0; i < lean_crashes.size(); ++i) {
    EXPECT_DOUBLE_EQ(lean_crashes[i].start_s, rich_crashes[i].start_s);
    EXPECT_DOUBLE_EQ(lean_crashes[i].duration_s, rich_crashes[i].duration_s);
    EXPECT_DOUBLE_EQ(lean_crashes[i].severity, rich_crashes[i].severity);
    EXPECT_EQ(lean_crashes[i].target, rich_crashes[i].target);
  }
}

TEST(FaultPlan, SampledRespectsHorizonAndDurationFloor) {
  FaultPlanConfig config;
  config.horizon_s = 86400.0;
  config.seed = 11;
  config.rate(FaultType::kPsuTrip) = {20.0, 300.0, 120.0, 0.1, 0.3, 3};
  const FaultPlan plan = FaultPlan::sampled(config);
  ASSERT_FALSE(plan.empty());
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_LT(e.start_s, config.horizon_s);
    EXPECT_GE(e.duration_s, 120.0);
    EXPECT_LT(e.target, 3u);
    EXPECT_GE(e.severity, 0.1);
    EXPECT_LE(e.severity, 0.3);
  }
}

TEST(FaultPlan, MergedWithConcatenatesAndResorts) {
  const FaultPlan early = FaultPlan::parse("outage@100+60");
  const FaultPlan late = FaultPlan::parse("crash:0@10+30x0.2");
  const FaultPlan merged = early.merged_with(late);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.events()[0].type, FaultType::kServerCrash);
  EXPECT_EQ(merged.events()[1].type, FaultType::kUtilityOutage);
}

// The storm profile must always contain its scripted utility-outage +
// CRAC-failure core — that pair is what the acceptance sweep stresses.
TEST(FaultPlan, StormPlanAlwaysContainsOutageAndCracCore) {
  for (const double intensity : {0.0, 0.5, 1.0, 2.0}) {
    const FaultPlan plan =
        epm::faults::make_storm_plan(intensity, 6.0 * 3600.0, 42, 2, 1);
    EXPECT_GE(plan.count(FaultType::kUtilityOutage), 1u) << intensity;
    EXPECT_GE(plan.count(FaultType::kCracFailure), 1u) << intensity;
    if (intensity == 0.0) {
      EXPECT_EQ(plan.size(), plan.count(FaultType::kUtilityOutage) +
                                 plan.count(FaultType::kCracFailure));
    } else {
      EXPECT_GT(plan.size(), 2u) << intensity;
    }
  }
  EXPECT_THROW(epm::faults::make_storm_plan(-0.1, 3600.0, 1, 2, 1),
               std::invalid_argument);
}

// Controller fault tokens (the survivable-control-plane extension): the
// three ctl-* types parse, print, and fingerprint like every other type,
// and validate_targets checks the replica index against the controller
// count when one is given.
TEST(FaultPlan, ControllerTokensRoundTripAndValidate) {
  const std::string spec =
      "ctl-crash:0@13.25+40;ctl-hang:2@10.25+6;ctl-restart:1@30+0.5";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].type, FaultType::kControllerHang);  // sorted
  EXPECT_EQ(plan.events()[1].type, FaultType::kControllerCrash);
  EXPECT_EQ(plan.events()[2].type, FaultType::kControllerRestart);
  EXPECT_EQ(plan.events()[0].target, 2u);
  EXPECT_DOUBLE_EQ(plan.events()[1].start_s, 13.25);

  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.fingerprint(), plan.fingerprint());
  EXPECT_EQ(again.to_string(), plan.to_string());

  // Replica indices are validated only when a controller count is supplied:
  // the default kAnyTarget keeps pre-control-plane callers unchanged.
  EXPECT_NO_THROW(plan.validate_targets(8, 2));
  EXPECT_NO_THROW(plan.validate_targets(8, 2, /*controller_count=*/3));
  try {
    plan.validate_targets(8, 2, /*controller_count=*/2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(std::string::npos, message.find("controller replica"));
    EXPECT_NE(std::string::npos, message.find("2"));
    EXPECT_EQ(std::string::npos, message.find('\n'));  // one line
  }
  // Controller indices are NOT clamped by the service/CRAC counts.
  EXPECT_NO_THROW(
      FaultPlan::parse("ctl-crash:5@1+1").validate_targets(1, 1, 6));
  EXPECT_THROW(FaultPlan::parse("ctl-crash:6@1+1").validate_targets(1, 1, 6),
               std::invalid_argument);
}

// The malformed-entry corpus extends to the ctl-* tokens: near-miss type
// names and structurally damaged controller entries are rejected with the
// same diagnosable one-line messages as every other fault type.
TEST(FaultPlan, ControllerTokenCorpusRejectsNearMisses) {
  struct Case {
    const char* spec;
    const char* needle;
  };
  const Case corpus[] = {
      {"ctl@0+60", "ctl"},                      // bare prefix is not a type
      {"ctl-@0+60", "ctl-"},                    // empty suffix
      {"ctl-kill:0@0+60", "ctl-kill"},          // grid-script token, not a
                                                // FaultPlan type
      {"ctl-crashh:0@0+60", "ctl-crashh"},      // trailing typo
      {"ctlcrash:0@0+60", "ctlcrash"},          // missing dash
      {"CTL-CRASH:0@0+60", "CTL-CRASH"},        // tokens are case-sensitive
      {"ctl-crash:0@@0+60", "duplicate '@'"},
      {"ctl-hang:0@10", "missing '+duration'"},
      {"ctl-restart:-1@0+60", "'-1'"},
      {"ctl-crash:0@10+0", "duration must be > 0"},
  };
  for (const auto& c : corpus) {
    try {
      (void)FaultPlan::parse(c.spec);
      FAIL() << "accepted malformed spec: " << c.spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "spec '" << c.spec << "' threw '" << e.what()
          << "' which does not mention '" << c.needle << "'";
    }
  }
}

TEST(FaultPlan, FingerprintIsSensitiveToEveryField) {
  const FaultPlan base = FaultPlan::parse("crash:0@100+60x0.2");
  EXPECT_NE(base.fingerprint(),
            FaultPlan::parse("crash:0@101+60x0.2").fingerprint());
  EXPECT_NE(base.fingerprint(),
            FaultPlan::parse("crash:0@100+61x0.2").fingerprint());
  EXPECT_NE(base.fingerprint(),
            FaultPlan::parse("crash:1@100+60x0.2").fingerprint());
  EXPECT_NE(base.fingerprint(),
            FaultPlan::parse("crash:0@100+60x0.3").fingerprint());
  EXPECT_NE(base.fingerprint(),
            FaultPlan::parse("psu:0@100+60x0.2").fingerprint());
}

}  // namespace
