#include "workload/client_population.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace epm::workload {
namespace {

ClientPopulationConfig tiny_config() {
  ClientPopulationConfig config;
  config.clients = 4;
  config.think_time_s = 10.0;
  config.request_timeout_s = 2.0;
  config.reconnect_spread_s = 5.0;
  config.start_spread_s = 0.0;  // everyone due at t = 0
  config.retry.backoff = RetryBackoff::kImmediate;
  config.retry.max_attempts = 3;
  config.retry.abandon_cooldown_s = 0.0;
  config.seed = 42;
  return config;
}

TEST(RetryBackoffNames, RoundTrip) {
  for (const auto backoff :
       {RetryBackoff::kImmediate, RetryBackoff::kFixed,
        RetryBackoff::kExponential}) {
    EXPECT_EQ(retry_backoff_from_string(to_string(backoff)), backoff);
  }
  EXPECT_THROW(retry_backoff_from_string("bogus"), std::invalid_argument);
}

TEST(ClientPopulation, ServedIntentIsFreshAndReschedulesThinking) {
  ClientPopulation pop(tiny_config());
  const auto& due = pop.collect_due(0.0, 1.0);
  ASSERT_EQ(due.size(), 4u);
  for (const auto id : due) pop.on_admitted(id, 0.0);
  EXPECT_EQ(pop.waiting_count(), 4u);
  for (const auto id : due) pop.on_served(id, 0.5);
  pop.expire_timeouts(1.0);

  const ClientLedger& led = pop.ledger();
  EXPECT_EQ(led.intents, 4u);
  EXPECT_EQ(led.attempts, 4u);
  EXPECT_EQ(led.served, 4u);
  EXPECT_EQ(led.stale_served, 0u);
  EXPECT_EQ(led.timed_out, 0u);
  EXPECT_EQ(pop.in_flight(), 0u);
  EXPECT_TRUE(pop.conservation_ok());
}

TEST(ClientPopulation, TimeoutFiresRetryAndLateCompletionIsStale) {
  ClientPopulation pop(tiny_config());
  const auto due = pop.collect_due(0.0, 1.0);  // copy: batch_ is reused
  for (const auto id : due) pop.on_admitted(id, 0.0);
  // Nothing served before the 2 s deadline: every attempt times out and
  // (immediate backoff) is re-offered as a retry.
  pop.expire_timeouts(2.0);
  EXPECT_EQ(pop.ledger().timed_out, 4u);
  EXPECT_EQ(pop.backoff_count(), 4u);

  // The service finally answers the abandoned attempts: stale, not served.
  for (const auto id : due) pop.on_served(id, 2.5);
  EXPECT_EQ(pop.ledger().served, 0u);
  EXPECT_EQ(pop.ledger().stale_served, 4u);

  // The retries surface in the next collect window.
  const auto& again = pop.collect_due(2.0, 1.0);
  EXPECT_EQ(again.size(), 4u);
  EXPECT_EQ(pop.ledger().retries, 4u);
  EXPECT_EQ(pop.ledger().attempts, 8u);
  for (const auto id : again) pop.on_rejected(id, 2.0);
  pop.expire_timeouts(3.0);
  EXPECT_TRUE(pop.conservation_ok()) << pop.conservation_report();
}

TEST(ClientPopulation, CompletionExactlyAtDeadlineCountsFresh) {
  ClientPopulation pop(tiny_config());
  const auto due = pop.collect_due(0.0, 1.0);
  for (const auto id : due) pop.on_admitted(id, 0.0);
  // Epoch loops drain the queue before expiring deadlines; a completion at
  // exactly t = deadline must beat the expiry.
  for (const auto id : due) pop.on_served(id, 2.0);
  pop.expire_timeouts(2.0);
  EXPECT_EQ(pop.ledger().served, 4u);
  EXPECT_EQ(pop.ledger().timed_out, 0u);
}

TEST(ClientPopulation, ExhaustedAttemptBudgetAbandonsToLost) {
  ClientPopulation pop(tiny_config());  // max_attempts = 3, no cooldown
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    const auto due = pop.collect_due(t, 1.0);
    ASSERT_EQ(due.size(), 4u) << "round " << round;
    for (const auto id : due) pop.on_rejected(id, t);
    t += 1.0;
  }
  EXPECT_EQ(pop.ledger().abandoned, 4u);
  EXPECT_EQ(pop.lost_count(), 4u);
  EXPECT_EQ(pop.ledger().retries, 8u);
  // Lost clients never come back.
  for (double probe = t; probe < t + 100.0; probe += 10.0) {
    EXPECT_TRUE(pop.collect_due(probe, 10.0).empty());
  }
  EXPECT_TRUE(pop.conservation_ok()) << pop.conservation_report();
}

TEST(ClientPopulation, CooldownReturnsAbandonedClientsAsFreshIntents) {
  ClientPopulationConfig config = tiny_config();
  config.retry.abandon_cooldown_s = 5.0;
  config.retry.jitter_frac = 0.0;
  ClientPopulation pop(config);
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    const auto due = pop.collect_due(t, 1.0);
    for (const auto id : due) pop.on_rejected(id, t);
    t += 1.0;
  }
  EXPECT_EQ(pop.ledger().abandoned, 4u);
  EXPECT_EQ(pop.lost_count(), 0u);
  // All four come back exactly cooldown after their abandon (t = 2 + 5).
  const auto& back = pop.collect_due(7.0, 1.0);
  EXPECT_EQ(back.size(), 4u);
  EXPECT_EQ(pop.ledger().intents, 8u);
}

TEST(ClientPopulation, DisconnectSeversInFlightWorkAndSchedulesReconnects) {
  ClientPopulationConfig config = tiny_config();
  config.clients = 6;
  ClientPopulation pop(config);
  const auto due = pop.collect_due(0.0, 1.0);
  ASSERT_EQ(due.size(), 6u);
  // Two waiting in the service, two in backoff, two still thinking.
  pop.on_admitted(due[0], 0.0);
  pop.on_admitted(due[1], 0.0);
  pop.on_rejected(due[2], 0.0);
  pop.on_rejected(due[3], 0.0);
  pop.on_served(due[4], 0.5);
  pop.on_served(due[5], 0.5);

  pop.disconnect_all(1.0);
  const ClientLedger& led = pop.ledger();
  EXPECT_EQ(led.disconnects, 6u);
  EXPECT_EQ(led.dropped, 2u);
  EXPECT_EQ(led.retry_cancelled, 2u);
  EXPECT_EQ(led.disconnected_intents, 4u);
  EXPECT_EQ(pop.in_flight(), 0u);
  EXPECT_TRUE(pop.conservation_ok()) << pop.conservation_report();

  // A completion for a severed session is stale work.
  pop.on_served(due[0], 1.5);
  EXPECT_EQ(pop.ledger().stale_served, 1u);

  // Everyone reconnects eventually (Exp(5 s) spread): all six re-intent.
  std::size_t reconnected = 0;
  for (double t = 1.0; t < 200.0 && reconnected < 6; t += 1.0) {
    reconnected += pop.collect_due(t, 1.0).size();
  }
  EXPECT_EQ(reconnected, 6u);
}

TEST(ClientPopulation, DisconnectFractionZeroIsANoOpAndOneIsAll) {
  ClientPopulation pop(tiny_config());
  pop.disconnect_fraction(0.0, 1.0);
  EXPECT_EQ(pop.ledger().disconnects, 0u);
  pop.disconnect_fraction(1.0, 1.0);
  EXPECT_EQ(pop.ledger().disconnects, 4u);
  EXPECT_THROW(pop.disconnect_fraction(1.5, 2.0), std::invalid_argument);
}

TEST(ClientPopulation, ExponentialBackoffGrowsAndIsCapped) {
  ClientPopulationConfig config = tiny_config();
  config.clients = 1;
  config.retry.backoff = RetryBackoff::kExponential;
  config.retry.base_delay_s = 2.0;
  config.retry.multiplier = 2.0;
  config.retry.max_delay_s = 5.0;
  config.retry.jitter_frac = 0.0;  // exact delays
  config.retry.max_attempts = 8;
  ClientPopulation pop(config);

  // Failure after attempt k schedules the retry base * 2^(k-1), capped at 5.
  const std::vector<double> expected_gaps = {2.0, 4.0, 5.0, 5.0};
  double t = 0.0;
  auto due = pop.collect_due(t, 0.5);
  ASSERT_EQ(due.size(), 1u);
  for (const double gap : expected_gaps) {
    pop.on_rejected(due[0], t);
    // Not due just before the expected retry time, due right at it.
    EXPECT_TRUE(pop.collect_due(t + gap - 0.01, 0.005).empty());
    due = pop.collect_due(t + gap, 0.01);
    ASSERT_EQ(due.size(), 1u) << "gap " << gap;
    t += gap;
  }
}

TEST(ClientPopulation, StationaryLaunchHoldsTheSteadyArrivalRate) {
  // With start_spread == think_time the superposed renewal process is
  // stationary: the intent rate must sit at clients / think_time from the
  // first window, with no mid-warmup surge (a uniform start window used to
  // double the rate around t = start_spread).
  ClientPopulationConfig config;
  config.clients = 20000;
  config.think_time_s = 40.0;
  config.start_spread_s = 40.0;
  config.request_timeout_s = 4.0;
  config.seed = 7;
  ClientPopulation pop(config);
  const double rate = static_cast<double>(config.clients) / config.think_time_s;
  for (int window = 0; window < 6; ++window) {
    std::uint64_t arrivals = 0;
    for (int step = 0; step < 20; ++step) {
      const double t = window * 20.0 + step;
      const auto& due = pop.collect_due(t, 1.0);
      arrivals += due.size();
      for (const auto id : due) {
        pop.on_admitted(id, t);
        pop.on_served(id, t);  // ideal service: closed loop at zero latency
      }
      pop.expire_timeouts(t + 1.0);
    }
    EXPECT_NEAR(static_cast<double>(arrivals) / 20.0, rate, rate * 0.05)
        << "window " << window;
  }
  EXPECT_TRUE(pop.conservation_ok()) << pop.conservation_report();
}

TEST(ClientPopulation, DeterministicUnderSeedAcrossIdenticalDrives) {
  auto drive = [](std::uint64_t seed) {
    ClientPopulationConfig config = tiny_config();
    config.clients = 200;
    config.start_spread_s = 10.0;
    config.seed = seed;
    ClientPopulation pop(config);
    for (int epoch = 0; epoch < 50; ++epoch) {
      const double t = epoch;
      const auto due = pop.collect_due(t, 1.0);
      for (std::size_t i = 0; i < due.size(); ++i) {
        // Reject every third attempt, serve the rest.
        if (i % 3 == 0) {
          pop.on_rejected(due[i], t);
        } else {
          pop.on_admitted(due[i], t);
          pop.on_served(due[i], t + 0.5);
        }
      }
      if (epoch == 20) pop.disconnect_fraction(0.5, t + 0.9);
      pop.expire_timeouts(t + 1.0);
    }
    return pop.ledger();
  };
  const ClientLedger a = drive(11);
  const ClientLedger b = drive(11);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.disconnects, b.disconnects);
  EXPECT_EQ(a.abandoned, b.abandoned);
  const ClientLedger c = drive(12);
  EXPECT_NE(a.attempts, c.attempts);
}

TEST(ClientPopulation, RejectsBadConfigAndBadCalls) {
  ClientPopulationConfig config = tiny_config();
  config.clients = 0;
  EXPECT_THROW(ClientPopulation{config}, std::invalid_argument);
  config = tiny_config();
  config.retry.max_attempts = 0;
  EXPECT_THROW(ClientPopulation{config}, std::invalid_argument);
  config = tiny_config();
  config.retry.jitter_frac = 1.0;
  EXPECT_THROW(ClientPopulation{config}, std::invalid_argument);
  config = tiny_config();
  config.think_time_s = 0.0;
  EXPECT_THROW(ClientPopulation{config}, std::invalid_argument);

  ClientPopulation pop(tiny_config());
  EXPECT_THROW(pop.on_admitted(99, 0.0), std::invalid_argument);
  // Answering a client that has no attempt in flight is a driver bug.
  EXPECT_THROW(pop.on_rejected(0, 0.0), std::logic_error);
  EXPECT_THROW(pop.on_admitted(0, 0.0), std::logic_error);
}

}  // namespace
}  // namespace epm::workload
