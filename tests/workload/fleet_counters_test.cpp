// Reference fleet-counter mix (workload/fleet_counters.h): the synthetic
// firehose the EXP-AA compression and throughput gates are defined against.
// The generator must be deterministic, emit tick-major order (per-series
// timestamps non-decreasing), produce the documented integer-valued mix,
// and stamp ground-truth spikes the detector can be scored on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "workload/fleet_counters.h"

namespace epm::workload {
namespace {

TEST(FleetCounters, SameConfigSameBatchBitForBit) {
  FleetCountersConfig config;
  config.servers = 20;
  config.counters_per_server = 5;
  config.ticks = 12;
  config.spike_probability = 0.1;
  const auto a = synthesize_fleet_counters(config);
  const auto b = synthesize_fleet_counters(config);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].key, b.samples[i].key);
    EXPECT_EQ(a.samples[i].time_s, b.samples[i].time_s);
    EXPECT_EQ(a.samples[i].value, b.samples[i].value);
  }
  ASSERT_EQ(a.spikes.size(), b.spikes.size());
  for (std::size_t i = 0; i < a.spikes.size(); ++i) {
    EXPECT_EQ(a.spikes[i].key, b.spikes[i].key);
    EXPECT_EQ(a.spikes[i].time_s, b.spikes[i].time_s);
  }
}

TEST(FleetCounters, EmitsEverySeriesTickMajorWithMonotoneTimes) {
  FleetCountersConfig config;
  config.servers = 10;
  config.counters_per_server = 4;
  config.ticks = 15;
  const auto batch = synthesize_fleet_counters(config);
  ASSERT_EQ(batch.samples.size(),
            static_cast<std::size_t>(10) * 4 * 15);
  std::map<telemetry::CounterKey, double> last_time;
  std::map<telemetry::CounterKey, std::size_t> counts;
  double last_tick_floor = 0.0;
  for (const auto& sample : batch.samples) {
    // Tick-major: coarse time never rewinds across the whole batch...
    const double tick_floor =
        std::floor(sample.time_s / config.cadence_s) * config.cadence_s;
    EXPECT_GE(tick_floor + config.cadence_s, last_tick_floor);
    last_tick_floor = tick_floor;
    // ...and per-series timestamps are strictly non-decreasing.
    const auto it = last_time.find(sample.key);
    if (it != last_time.end()) EXPECT_GT(sample.time_s, it->second);
    last_time[sample.key] = sample.time_s;
    ++counts[sample.key];
    // /proc-style counters: integer-valued doubles.
    EXPECT_EQ(sample.value, std::floor(sample.value));
  }
  EXPECT_EQ(counts.size(), 40u);
  for (const auto& [key, n] : counts) EXPECT_EQ(n, 15u) << key;
}

TEST(FleetCounters, SpikesAreStampedAndPresentInTheSamples) {
  FleetCountersConfig config;
  config.servers = 25;
  config.counters_per_server = 8;
  config.ticks = 30;
  config.spike_probability = 0.2;
  const auto batch = synthesize_fleet_counters(config);
  ASSERT_GT(batch.spikes.size(), 0u);
  // ~20% of 200 series host one spike each.
  EXPECT_GT(batch.spikes.size(), 15u);
  EXPECT_LT(batch.spikes.size(), 90u);
  for (const auto& spike : batch.spikes) {
    // The stamped (key, time) pair exists in the emitted samples, in the
    // scheduled second half of the horizon.
    const bool found = std::any_of(
        batch.samples.begin(), batch.samples.end(),
        [&](const telemetry::Sample& s) {
          return s.key == spike.key && s.time_s == spike.time_s;
        });
    EXPECT_TRUE(found) << "spike key " << spike.key;
    EXPECT_GE(spike.time_s, config.cadence_s * (config.ticks / 2));
  }
}

TEST(FleetCounters, NoSpikesByDefault) {
  FleetCountersConfig config;
  config.servers = 5;
  config.counters_per_server = 5;
  config.ticks = 10;
  EXPECT_TRUE(synthesize_fleet_counters(config).spikes.empty());
}

}  // namespace
}  // namespace epm::workload
