#include "workload/request_model.h"

#include <gtest/gtest.h>

namespace epm::workload {
namespace {

TEST(RequestModel, DeterministicFluidMode) {
  RequestModelConfig config;
  config.stochastic_arrivals = false;
  config.requests_per_demand_unit = 0.1;
  config.fanout = 3.0;
  RequestModel model(config);
  const auto load = model.offered_load(1000.0, 60.0);
  EXPECT_DOUBLE_EQ(load.arrival_rate_per_s, 1000.0 * 0.1 * 3.0);
  EXPECT_DOUBLE_EQ(load.service_demand_s, config.mean_service_demand_s);
  EXPECT_DOUBLE_EQ(load.cpu_load(), load.arrival_rate_per_s * load.service_demand_s);
}

TEST(RequestModel, StochasticModeIsUnbiased) {
  RequestModelConfig config;
  config.stochastic_arrivals = true;
  config.requests_per_demand_unit = 0.05;
  RequestModel model(config);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum += model.offered_load(1000.0, 60.0).arrival_rate_per_s;
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RequestModel, ZeroDemandZeroLoad) {
  RequestModel model{RequestModelConfig{}};
  const auto load = model.offered_load(0.0, 60.0);
  EXPECT_DOUBLE_EQ(load.arrival_rate_per_s, 0.0);
}

TEST(RequestModel, RejectsBadInput) {
  RequestModel model{RequestModelConfig{}};
  EXPECT_THROW(model.offered_load(-1.0, 60.0), std::invalid_argument);
  EXPECT_THROW(model.offered_load(1.0, 0.0), std::invalid_argument);
  RequestModelConfig bad;
  bad.fanout = 0.5;
  EXPECT_THROW(RequestModel{bad}, std::invalid_argument);
  bad = RequestModelConfig{};
  bad.mean_service_demand_s = 0.0;
  EXPECT_THROW(RequestModel{bad}, std::invalid_argument);
}

TEST(ToArrivalRates, MapsWholeSeries) {
  RequestModelConfig config;
  config.stochastic_arrivals = false;
  config.requests_per_demand_unit = 2.0;
  RequestModel model(config);
  TimeSeries demand(0.0, 60.0, {1.0, 2.0, 3.0});
  const auto rates = to_arrival_rates(model, demand);
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 6.0);
  EXPECT_DOUBLE_EQ(rates.step_s(), 60.0);
}

}  // namespace
}  // namespace epm::workload
