// Equivalence, determinism, and conservation suites for the vectorized
// client-population epoch engine:
//
//   * ClientSweepStreams     — the block RNG contract: raw-counter block
//     draws reproduce a SplitMix64 object's stream bit-for-bit, per client;
//   * ClientSweepEquivalence — the sweep engine reproduces the legacy heap
//     engine's batches (order included), ledger, and occupancy exactly
//     under randomized drives, and the templated storm driver produces
//     identical outcomes on both engines;
//   * ClientSweepDeterminism — the sharded sweep is bit-identical at 1, 2,
//     and 8 threads (fixed shard partition, deterministic merge);
//   * ClientSweepProperty    — the 12-counter ledger and all four
//     conservation identities hold every epoch on a randomized 100k-client
//     storm driven through the branch-free transitions.
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "faults/retry_storm.h"
#include "workload/client_population.h"
#include "workload/client_population_legacy.h"

namespace epm {
namespace {

workload::ClientPopulationConfig random_sweep_config(Rng& rng,
                                                     std::size_t clients) {
  workload::ClientPopulationConfig config;
  config.clients = clients;
  config.think_time_s = rng.uniform(2.0, 30.0);
  config.request_timeout_s = rng.uniform(1.0, 6.0);
  config.reconnect_spread_s = rng.uniform(1.0, 20.0);
  config.start_spread_s = rng.uniform(0.0, 10.0);
  const workload::RetryBackoff backoffs[] = {
      workload::RetryBackoff::kImmediate, workload::RetryBackoff::kFixed,
      workload::RetryBackoff::kExponential};
  config.retry.backoff = backoffs[rng.uniform_int(0, 2)];
  config.retry.base_delay_s = rng.uniform(0.0, 3.0);
  config.retry.multiplier = rng.uniform(1.0, 3.0);
  config.retry.max_delay_s = rng.uniform(3.0, 30.0);
  config.retry.jitter_frac = rng.uniform(0.0, 0.9);
  config.retry.max_attempts = static_cast<std::size_t>(rng.uniform_int(1, 6));
  config.retry.abandon_cooldown_s =
      rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform(1.0, 20.0) : 0.0;
  config.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return config;
}

bool ledgers_equal(const workload::ClientLedger& a,
                   const workload::ClientLedger& b) {
  return a.intents == b.intents && a.attempts == b.attempts &&
         a.retries == b.retries && a.served == b.served &&
         a.stale_served == b.stale_served && a.rejected == b.rejected &&
         a.timed_out == b.timed_out && a.dropped == b.dropped &&
         a.abandoned == b.abandoned &&
         a.retry_cancelled == b.retry_cancelled &&
         a.disconnected_intents == b.disconnected_intents &&
         a.disconnects == b.disconnects;
}

// The epoch engine derives per-client streams from the closed-form counter
// seed instead of walking a sequential seeder and per-client SplitMix64
// objects. This is the regression pin: for every client, block draws over
// the raw counter state must reproduce the object stream bit-for-bit.
TEST(ClientSweepStreams, BlockDrawsMatchSplitMix64PerClient) {
  for (const std::uint64_t seed : {0ull, 7ull, 42ull, 0xdeadbeefull}) {
    SplitMix64 seeder(seed);
    (void)seeder.next();  // draw 1 seeds the disconnect stream
    for (std::uint64_t id = 0; id < 1000; ++id) {
      SplitMix64 object(seeder.next());
      std::uint64_t raw = SplitMix64::mix(seed + (id + 2) * SplitMix64::kGamma);
      ASSERT_EQ(raw, object.state()) << "seed " << seed << " client " << id;
      for (int draw = 0; draw < 16; ++draw) {
        const std::uint64_t block = SplitMix64::mix(raw += SplitMix64::kGamma);
        ASSERT_EQ(block, object.next())
            << "seed " << seed << " client " << id << " draw " << draw;
      }
    }
  }
}

// Lockstep drive: both engines see the identical verdict/serve/disconnect
// script. Batches must match element-for-element (the (due, id) merge order
// is contractual), and the ledger and occupancy must agree after every
// epoch.
TEST(ClientSweepEquivalence, MatchesLegacyEngineUnderRandomDrive) {
  Rng meta(2024);
  for (int round = 0; round < 6; ++round) {
    const auto config = random_sweep_config(meta, 2000);
    workload::ClientPopulation sweep(config);
    workload::LegacyClientPopulation legacy(config);
    Rng drive(meta.next_u64());
    std::deque<std::uint32_t> queued;
    std::vector<std::uint32_t> cohort;
    for (int epoch = 0; epoch < 80; ++epoch) {
      const double t0 = epoch;
      const double t1 = t0 + 1.0;
      if (epoch == 25) {
        const double fraction = drive.uniform(0.0, 1.0);
        sweep.disconnect_fraction(fraction, t0);
        legacy.disconnect_fraction(fraction, t0);
      }
      if (epoch == 50) {
        sweep.disconnect_all(t0);
        legacy.disconnect_all(t0);
      }
      const auto batch = sweep.collect_due(t0, 1.0);  // copy: batch_ reused
      const auto& legacy_batch = legacy.collect_due(t0, 1.0);
      ASSERT_EQ(batch, legacy_batch) << "round " << round << " epoch " << epoch;
      for (const std::uint32_t id : batch) {
        if (drive.uniform(0.0, 1.0) < 0.3) {
          sweep.on_rejected(id, t0);
          legacy.on_rejected(id, t0);
        } else {
          sweep.on_admitted(id, t0);
          legacy.on_admitted(id, t0);
          queued.push_back(id);
        }
      }
      const auto serves = static_cast<std::size_t>(
          drive.uniform_int(0, static_cast<std::int64_t>(queued.size())));
      cohort.assign(queued.begin(),
                    queued.begin() + static_cast<std::ptrdiff_t>(serves));
      queued.erase(queued.begin(),
                   queued.begin() + static_cast<std::ptrdiff_t>(serves));
      // The sweep engine takes the cohort as one batch; the legacy engine
      // serves one at a time — the contract says these are equivalent.
      sweep.on_served_batch(cohort.data(), cohort.size(), t1);
      for (const std::uint32_t id : cohort) legacy.on_served(id, t1);
      sweep.expire_timeouts(t1);
      legacy.expire_timeouts(t1);

      ASSERT_TRUE(ledgers_equal(sweep.ledger(), legacy.ledger()))
          << "round " << round << " epoch " << epoch;
      ASSERT_EQ(sweep.waiting_count(), legacy.waiting_count());
      ASSERT_EQ(sweep.backoff_count(), legacy.backoff_count());
      ASSERT_EQ(sweep.lost_count(), legacy.lost_count());
      ASSERT_TRUE(sweep.conservation_ok()) << sweep.conservation_report();
      ASSERT_TRUE(legacy.conservation_ok()) << legacy.conservation_report();
    }
  }
}

// The templated storm driver must produce the same scenario outcome on both
// engines — the in-run A/B in bench/exp_kernel_throughput gates on exactly
// this equality at 1M clients; this pins it at test scale for every build.
TEST(ClientSweepEquivalence, StormDriverMatchesLegacyEngineOutcomes) {
  for (const bool defended : {false, true}) {
    auto config = faults::make_reference_retry_storm_config(
        workload::RetryBackoff::kExponential, 120.0, defended);
    config.clients.clients = 4000;
    config.service_capacity_rps = 200.0;
    config.batch_rps = 60.0;
    config.defense.bucket = {180.0, 180.0};
    config.defense.queue_capacity = 360;
    config.naive_queue_capacity = 24000;
    config.horizon_s = 600.0;
    const auto engine = faults::run_retry_storm(config);
    const auto legacy = faults::run_retry_storm_legacy(config);
    EXPECT_EQ(engine.intents, legacy.intents);
    EXPECT_EQ(engine.attempts, legacy.attempts);
    EXPECT_EQ(engine.retries, legacy.retries);
    EXPECT_EQ(engine.served_fresh, legacy.served_fresh);
    EXPECT_EQ(engine.served_stale, legacy.served_stale);
    EXPECT_EQ(engine.timed_out, legacy.timed_out);
    EXPECT_EQ(engine.abandoned, legacy.abandoned);
    EXPECT_EQ(engine.dark_failures, legacy.dark_failures);
    EXPECT_EQ(engine.shed_breaker, legacy.shed_breaker);
    EXPECT_EQ(engine.shed_bucket, legacy.shed_bucket);
    EXPECT_EQ(engine.shed_queue, legacy.shed_queue);
    EXPECT_EQ(engine.max_queue_depth, legacy.max_queue_depth);
    EXPECT_EQ(engine.recovered, legacy.recovered);
    EXPECT_DOUBLE_EQ(engine.end_goodput_rps, legacy.end_goodput_rps);
    EXPECT_TRUE(engine.conservation_ok) << engine.conservation_report;
    EXPECT_TRUE(legacy.conservation_ok) << legacy.conservation_report;
  }
}

/// One scripted drive, returning a digest of everything observable: batch
/// order checksum, full ledger, and final occupancy.
struct SweepDigest {
  std::uint64_t batch_checksum = 0;
  workload::ClientLedger ledger;
  std::size_t waiting = 0;
  std::size_t backoff = 0;
  std::size_t lost = 0;
};

SweepDigest drive_sharded(const workload::ClientPopulationConfig& base,
                          std::size_t threads, std::uint64_t drive_seed) {
  workload::ClientPopulationConfig config = base;
  config.threads = threads;
  workload::ClientPopulation pop(config);
  Rng drive(drive_seed);
  std::deque<std::uint32_t> queued;
  std::vector<std::uint32_t> cohort;
  SweepDigest digest;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const double t0 = epoch;
    const double t1 = t0 + 1.0;
    if (epoch == 30) pop.disconnect_all(t0);
    for (const std::uint32_t id : pop.collect_due(t0, 1.0)) {
      digest.batch_checksum = digest.batch_checksum * 1315423911u + id;
      if (drive.uniform(0.0, 1.0) < 0.3) {
        pop.on_rejected(id, t0);
      } else {
        pop.on_admitted(id, t0);
        queued.push_back(id);
      }
    }
    const auto serves = static_cast<std::size_t>(
        drive.uniform_int(0, static_cast<std::int64_t>(queued.size())));
    cohort.assign(queued.begin(),
                  queued.begin() + static_cast<std::ptrdiff_t>(serves));
    queued.erase(queued.begin(),
                 queued.begin() + static_cast<std::ptrdiff_t>(serves));
    pop.on_served_batch(cohort.data(), cohort.size(), t1);
    pop.expire_timeouts(t1);
  }
  digest.ledger = pop.ledger();
  digest.waiting = pop.waiting_count();
  digest.backoff = pop.backoff_count();
  digest.lost = pop.lost_count();
  return digest;
}

// The fixed 64-shard partition and deterministic shard-order merge mean the
// thread count can never leak into results: 1, 2, and 8 workers must agree
// on every bit of the batch stream and ledger, across seeds.
TEST(ClientSweepDeterminism, BitIdenticalAcrossThreadCounts) {
  Rng meta(77);
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    auto config = random_sweep_config(meta, 5000);
    config.seed = seed;
    const std::uint64_t drive_seed = meta.next_u64();
    const auto one = drive_sharded(config, 1, drive_seed);
    const auto two = drive_sharded(config, 2, drive_seed);
    const auto eight = drive_sharded(config, 8, drive_seed);
    for (const auto* other : {&two, &eight}) {
      EXPECT_EQ(one.batch_checksum, other->batch_checksum) << "seed " << seed;
      EXPECT_TRUE(ledgers_equal(one.ledger, other->ledger)) << "seed " << seed;
      EXPECT_EQ(one.waiting, other->waiting);
      EXPECT_EQ(one.backoff, other->backoff);
      EXPECT_EQ(one.lost, other->lost);
    }
  }
}

// 100k clients through a randomized storm drive: the 12-counter ledger and
// all four conservation identities (attempt flow, attempt composition,
// failure routing, intent settlement — see ClientPopulation::conservation_ok)
// must hold at every epoch boundary, and the run must end with the books
// balanced under the branch-free table/mask transitions.
TEST(ClientSweepProperty, ConservationHoldsOnRandomized100kStorm) {
  Rng meta(424242);
  auto config = random_sweep_config(meta, 100'000);
  config.threads = 2;  // conservation must also hold on the parallel sweep
  workload::ClientPopulation pop(config);
  Rng drive(meta.next_u64());
  std::deque<std::uint32_t> queued;
  std::vector<std::uint32_t> cohort;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const double t0 = epoch;
    const double t1 = t0 + 1.0;
    if (epoch == 12) pop.disconnect_all(t0);  // outage onset mid-run
    if (epoch == 24) pop.disconnect_fraction(0.25, t0);
    for (const std::uint32_t id : pop.collect_due(t0, 1.0)) {
      if (drive.uniform(0.0, 1.0) < 0.4) {
        pop.on_rejected(id, t0);
      } else {
        pop.on_admitted(id, t0);
        queued.push_back(id);
      }
    }
    const auto serves = static_cast<std::size_t>(
        drive.uniform_int(0, static_cast<std::int64_t>(queued.size())));
    cohort.assign(queued.begin(),
                  queued.begin() + static_cast<std::ptrdiff_t>(serves));
    queued.erase(queued.begin(),
                 queued.begin() + static_cast<std::ptrdiff_t>(serves));
    pop.on_served_batch(cohort.data(), cohort.size(), t1);
    pop.expire_timeouts(t1);
    ASSERT_TRUE(pop.conservation_ok())
        << "epoch " << epoch << ": " << pop.conservation_report();
  }
  const auto& led = pop.ledger();
  EXPECT_EQ(led.attempts, led.intents + led.retries);
  EXPECT_GT(led.attempts, 0u);
}

}  // namespace
}  // namespace epm
