#include "workload/diurnal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.h"

namespace epm::workload {
namespace {

TEST(DiurnalModel, PeakAtConfiguredHourOnWeekday) {
  DiurnalConfig config;
  config.peak_hour = 14.0;
  DiurnalModel model(config);
  const double peak = model.demand_at(hours(14.0));  // t=0 is Monday
  // Sample every 15 minutes across the day: nothing should beat the peak.
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_LE(model.demand_at(hours(h)), peak + 1e-12) << "hour " << h;
  }
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST(DiurnalModel, TroughToPeakRatioHonored) {
  DiurnalConfig config;
  config.trough_to_peak = 0.5;
  config.second_harmonic = 0.0;  // symmetric curve: trough at peak+12h
  DiurnalModel model(config);
  const double peak = model.demand_at(hours(config.peak_hour));
  const double trough = model.demand_at(hours(config.peak_hour + 12.0));
  EXPECT_NEAR(trough / peak, 0.5, 1e-9);
}

TEST(DiurnalModel, WeekendScaling) {
  DiurnalConfig config;
  config.weekend_factor = 0.8;
  config.start_weekday = 0;  // Monday
  DiurnalModel model(config);
  const double monday = model.demand_at(hours(14.0));
  const double saturday = model.demand_at(days(5) + hours(14.0));
  EXPECT_NEAR(saturday / monday, 0.8, 1e-9);
}

TEST(DiurnalModel, WeekdayIndexing) {
  DiurnalConfig config;
  config.start_weekday = 3;  // Thursday
  DiurnalModel model(config);
  EXPECT_EQ(model.weekday_of(0.0), 3);
  EXPECT_EQ(model.weekday_of(days(1)), 4);
  EXPECT_EQ(model.weekday_of(days(4)), 0);  // wraps to Monday
  EXPECT_TRUE(model.is_weekend(days(2)));   // Saturday
  EXPECT_FALSE(model.is_weekend(days(4)));
}

TEST(DiurnalModel, HourOfDay) {
  EXPECT_DOUBLE_EQ(DiurnalModel::hour_of_day(0.0), 0.0);
  EXPECT_DOUBLE_EQ(DiurnalModel::hour_of_day(hours(25.0)), 1.0);
  EXPECT_NEAR(DiurnalModel::hour_of_day(days(3) + hours(13.5)), 13.5, 1e-9);
}

TEST(DiurnalModel, RejectsBadConfig) {
  DiurnalConfig bad;
  bad.peak_hour = 24.0;
  EXPECT_THROW(DiurnalModel{bad}, std::invalid_argument);
  bad = DiurnalConfig{};
  bad.trough_to_peak = 0.0;
  EXPECT_THROW(DiurnalModel{bad}, std::invalid_argument);
  bad = DiurnalConfig{};
  bad.weekend_factor = 1.5;
  EXPECT_THROW(DiurnalModel{bad}, std::invalid_argument);
  bad = DiurnalConfig{};
  bad.start_weekday = 7;
  EXPECT_THROW(DiurnalModel{bad}, std::invalid_argument);
}

TEST(SampleDemand, SamplesUniformGrid) {
  DiurnalModel model(DiurnalConfig{});
  const auto s = sample_demand(model, hours(2.0), minutes(30.0));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.step_s(), minutes(30.0));
  EXPECT_DOUBLE_EQ(s[0], model.demand_at(0.0));
  EXPECT_DOUBLE_EQ(s[3], model.demand_at(minutes(90.0)));
}

// Property: demand stays within (0, 1] for a sweep of shapes.
class DiurnalRangeProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DiurnalRangeProperty, DemandWithinUnitRange) {
  const auto [peak_hour, trough, harmonic] = GetParam();
  DiurnalConfig config;
  config.peak_hour = peak_hour;
  config.trough_to_peak = trough;
  config.second_harmonic = harmonic;
  DiurnalModel model(config);
  for (double t = 0.0; t < weeks(1.0); t += minutes(17.0)) {
    const double d = model.demand_at(t);
    ASSERT_GT(d, 0.0);
    ASSERT_LE(d, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DiurnalRangeProperty,
    ::testing::Combine(::testing::Values(2.0, 14.0, 22.0),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(0.0, 0.15, 0.4)));

}  // namespace
}  // namespace epm::workload
