#include "workload/messenger.h"

#include <gtest/gtest.h>

#include "core/units.h"

namespace epm::workload {
namespace {

MessengerTrace week_trace(std::uint64_t seed = 42) {
  MessengerConfig config;
  config.seed = seed;
  config.step_s = 60.0;  // 1-minute samples keep the test fast
  return generate_messenger_trace(config, weeks(1.0));
}

TEST(Messenger, SeriesCoverTheHorizon) {
  const auto trace = week_trace();
  EXPECT_EQ(trace.login_rate_per_s.size(), trace.connections.size());
  EXPECT_NEAR(trace.connections.end_s(), weeks(1.0), 60.0);
}

TEST(Messenger, DeterministicForSeed) {
  const auto a = week_trace(7);
  const auto b = week_trace(7);
  ASSERT_EQ(a.connections.size(), b.connections.size());
  for (std::size_t i = 0; i < a.connections.size(); i += 97) {
    ASSERT_DOUBLE_EQ(a.connections[i], b.connections[i]);
    ASSERT_DOUBLE_EQ(a.login_rate_per_s[i], b.login_rate_per_s[i]);
  }
  EXPECT_EQ(a.flash_crowds.size(), b.flash_crowds.size());
}

TEST(Messenger, DifferentSeedsDiffer) {
  const auto a = week_trace(1);
  const auto b = week_trace(2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.connections.size(); i += 13) {
    if (a.login_rate_per_s[i] != b.login_rate_per_s[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Messenger, NonNegativeSeries) {
  const auto trace = week_trace();
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    ASSERT_GE(trace.connections[i], 0.0);
    ASSERT_GE(trace.login_rate_per_s[i], 0.0);
  }
}

TEST(Messenger, AfternoonRoughlyTwiceMidnight) {
  // Paper: "the number of users in the early afternoon is almost twice as
  // much as those after midnight".
  MessengerConfig config;
  config.step_s = 60.0;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  const auto shape = summarize_messenger_trace(trace, DiurnalModel(config.diurnal));
  EXPECT_GT(shape.afternoon_to_midnight_ratio, 1.6);
  EXPECT_LT(shape.afternoon_to_midnight_ratio, 2.6);
}

TEST(Messenger, WeekdaysAboveWeekends) {
  MessengerConfig config;
  config.step_s = 60.0;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  const auto shape = summarize_messenger_trace(trace, DiurnalModel(config.diurnal));
  EXPECT_GT(shape.weekday_to_weekend_ratio, 1.05);
}

TEST(Messenger, FlashCrowdsPresentAndSpiky) {
  MessengerConfig config;
  config.step_s = 60.0;
  config.flash.rate_per_day = 2.0;
  config.seed = 11;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  EXPECT_GT(trace.flash_crowds.size(), 4u);   // ~14 expected
  EXPECT_LT(trace.flash_crowds.size(), 40u);
  // Peak login rate should exceed the flash-free weekday peak.
  MessengerConfig calm = config;
  calm.flash.rate_per_day = 0.0;
  calm.noise_cv = 0.0;
  const auto calm_trace = generate_messenger_trace(calm, weeks(1.0));
  EXPECT_GT(trace.login_rate_per_s.stats().max(),
            1.2 * calm_trace.login_rate_per_s.stats().max());
}

TEST(Messenger, NoFlashNoNoiseLoginPeakMatchesNormalization) {
  MessengerConfig config;
  config.step_s = 60.0;
  config.flash.rate_per_day = 0.0;
  config.noise_cv = 0.0;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  EXPECT_NEAR(trace.login_rate_per_s.stats().max(), config.peak_login_rate_per_s,
              config.peak_login_rate_per_s * 0.01);
}

TEST(Messenger, ConnectionsNearSteadyStateOfLoginRate) {
  // With no noise/flash, connections should track lambda * mean_session.
  MessengerConfig config;
  config.step_s = 60.0;
  config.flash.rate_per_day = 0.0;
  config.noise_cv = 0.0;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  const double mean_lambda = trace.login_rate_per_s.stats().mean();
  const double mean_conn = trace.connections.stats().mean();
  EXPECT_NEAR(mean_conn, mean_lambda * config.mean_session_s,
              0.05 * mean_lambda * config.mean_session_s);
}

TEST(Messenger, InvalidConfigThrows) {
  MessengerConfig config;
  config.step_s = 0.0;
  EXPECT_THROW(generate_messenger_trace(config, days(1.0)), std::invalid_argument);
  config = MessengerConfig{};
  config.mean_session_s = -1.0;
  EXPECT_THROW(generate_messenger_trace(config, days(1.0)), std::invalid_argument);
  config = MessengerConfig{};
  EXPECT_THROW(generate_messenger_trace(config, 0.0), std::invalid_argument);
}

TEST(Messenger, FlashCrowdMagnitudesWithinConfiguredRange) {
  MessengerConfig config;
  config.step_s = 300.0;
  config.flash.rate_per_day = 3.0;
  const auto trace = generate_messenger_trace(config, weeks(2.0));
  ASSERT_FALSE(trace.flash_crowds.empty());
  for (const auto& fc : trace.flash_crowds) {
    EXPECT_GE(fc.magnitude, config.flash.magnitude_min);
    EXPECT_LE(fc.magnitude, config.flash.magnitude_max);
    EXPECT_GE(fc.start_s, 0.0);
    EXPECT_LT(fc.start_s, weeks(2.0));
  }
}

}  // namespace
}  // namespace epm::workload
