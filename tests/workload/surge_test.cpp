#include "workload/surge.h"

#include <gtest/gtest.h>

#include "core/units.h"

namespace epm::workload {
namespace {

TEST(SurgeModel, BaselineBeforeSurge) {
  SurgeModel model{SurgeConfig{}};
  EXPECT_DOUBLE_EQ(model.demand_at(0.0), 50.0);
  EXPECT_DOUBLE_EQ(model.demand_at(hours(23.0)), 50.0);
}

TEST(SurgeModel, RampEndsAtPeak) {
  SurgeConfig config;
  SurgeModel model{config};
  const double ramp_end = config.surge_start_s + config.ramp_s;
  EXPECT_NEAR(model.demand_at(ramp_end), config.peak, 1e-6);
  EXPECT_NEAR(model.demand_at(config.surge_start_s), config.baseline, 1e-6);
}

TEST(SurgeModel, RampIsMonotone) {
  SurgeConfig config;
  SurgeModel model{config};
  double prev = model.demand_at(config.surge_start_s);
  for (double t = config.surge_start_s; t <= config.surge_start_s + config.ramp_s;
       t += hours(1.0)) {
    const double v = model.demand_at(t);
    ASSERT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST(SurgeModel, PlateauHoldsPeak) {
  SurgeConfig config;
  SurgeModel model{config};
  const double plateau_mid =
      config.surge_start_s + config.ramp_s + config.plateau_s / 2.0;
  EXPECT_DOUBLE_EQ(model.demand_at(plateau_mid), config.peak);
}

TEST(SurgeModel, RecedesTowardPostSurgeLevel) {
  SurgeConfig config;
  SurgeModel model{config};
  const double recede_start = config.surge_start_s + config.ramp_s + config.plateau_s;
  // "traffic fell to a level that was well below the peak"
  const double late = model.demand_at(recede_start + 8.0 * config.recede_tau_s);
  EXPECT_NEAR(late, config.post_surge, 0.01 * config.peak);
  EXPECT_LT(late, 0.2 * config.peak);
  EXPECT_GT(late, config.baseline);
}

TEST(SurgeModel, PaperGrowthFactor) {
  // 50 -> 3500 servers: a 70x surge in three days.
  SurgeConfig config;
  SurgeModel model{config};
  const double peak = model.demand_at(config.surge_start_s + config.ramp_s);
  EXPECT_NEAR(peak / config.baseline, 70.0, 0.5);
  EXPECT_DOUBLE_EQ(config.ramp_s, days(3.0));
}

TEST(SurgeModel, RejectsBadConfig) {
  SurgeConfig bad;
  bad.peak = bad.baseline;
  EXPECT_THROW(SurgeModel{bad}, std::invalid_argument);
  bad = SurgeConfig{};
  bad.post_surge = bad.peak;
  EXPECT_THROW(SurgeModel{bad}, std::invalid_argument);
  bad = SurgeConfig{};
  bad.baseline = 0.0;
  EXPECT_THROW(SurgeModel{bad}, std::invalid_argument);
  bad = SurgeConfig{};
  bad.ramp_s = 0.0;
  EXPECT_THROW(SurgeModel{bad}, std::invalid_argument);
}

TEST(SampleSurge, GridMatchesModel) {
  SurgeConfig config;
  SurgeModel model{config};
  const auto s = sample_surge(model, days(7.0), hours(1.0));
  EXPECT_EQ(s.size(), 168u);
  EXPECT_DOUBLE_EQ(s[0], model.demand_at(0.0));
  EXPECT_DOUBLE_EQ(s[100], model.demand_at(hours(100.0)));
}

}  // namespace
}  // namespace epm::workload
