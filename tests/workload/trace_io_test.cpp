#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace epm::workload {
namespace {

TEST(TraceIo, RoundTrip) {
  TimeSeries a(0.0, 15.0, {1.0, 2.0, 3.0});
  TimeSeries b(0.0, 15.0, {10.0, 20.0, 30.0});
  std::ostringstream out;
  write_csv(out, {{"alpha", a}, {"beta", b}});

  std::istringstream in(out.str());
  const auto cols = read_csv(in);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].name, "alpha");
  EXPECT_EQ(cols[1].name, "beta");
  ASSERT_EQ(cols[0].series.size(), 3u);
  EXPECT_DOUBLE_EQ(cols[0].series.step_s(), 15.0);
  EXPECT_DOUBLE_EQ(cols[0].series[1], 2.0);
  EXPECT_DOUBLE_EQ(cols[1].series[2], 30.0);
}

TEST(TraceIo, SingleRowRoundTrip) {
  TimeSeries a(5.0, 1.0, {9.0});
  std::ostringstream out;
  write_csv(out, {{"x", a}});
  std::istringstream in(out.str());
  const auto cols = read_csv(in);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_DOUBLE_EQ(cols[0].series.start_s(), 5.0);
  EXPECT_DOUBLE_EQ(cols[0].series[0], 9.0);
}

TEST(TraceIo, WriteRejectsMismatchedSeries) {
  TimeSeries a(0.0, 15.0, {1.0, 2.0});
  TimeSeries b(0.0, 30.0, {1.0, 2.0});
  std::ostringstream out;
  EXPECT_THROW(write_csv(out, {{"a", a}, {"b", b}}), std::invalid_argument);
  EXPECT_THROW(write_csv(out, {}), std::invalid_argument);
  EXPECT_THROW(write_csv(out, {{"bad,name", a}}), std::invalid_argument);
}

TEST(TraceIo, ReadRejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("wrong_header,foo\n0,1\n");
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("time_s,a\n0,1\n15\n");  // ragged
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("time_s,a\n0,xyz\n");  // non-numeric
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("time_s,a\n0,1\n15,2\n45,3\n");  // non-uniform step
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("time_s,a\n");  // header only
    EXPECT_THROW(read_csv(in), std::invalid_argument);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/epm_trace_io_test.csv";
  TimeSeries a(0.0, 15.0, {1.5, 2.5});
  write_csv_file(path, {{"v", a}});
  const auto cols = read_csv_file(path);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_DOUBLE_EQ(cols[0].series[1], 2.5);
  EXPECT_THROW(read_csv_file("/nonexistent/epm.csv"), std::invalid_argument);
}

}  // namespace
}  // namespace epm::workload
