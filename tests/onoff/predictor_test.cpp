#include "onoff/predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/units.h"

namespace epm::onoff {
namespace {

TEST(EwmaPredictor, TracksLevel) {
  EwmaPredictor p(0.5);
  for (int i = 0; i < 50; ++i) p.observe(static_cast<double>(i), 10.0);
  EXPECT_NEAR(p.predict(100.0), 10.0, 1e-9);
  EXPECT_NEAR(p.residual_stddev(), 0.0, 1e-9);
}

TEST(EwmaPredictor, ResidualsReflectNoise) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 200; ++i) {
    p.observe(static_cast<double>(i), i % 2 == 0 ? 8.0 : 12.0);
  }
  EXPECT_GT(p.residual_stddev(), 1.0);
}

TEST(SeasonalPredictor, LearnsDailySinusoid) {
  SeasonalPredictorConfig config;
  config.period_s = kSecondsPerDay;
  config.bucket_s = 3600.0;
  SeasonalPredictor p(config);
  auto signal = [](double t) {
    return 100.0 + 50.0 * std::sin(2.0 * std::numbers::pi * t / kSecondsPerDay);
  };
  // Train on 5 days of hourly samples.
  for (double t = 0.0; t < days(5.0); t += 3600.0) p.observe(t, signal(t));
  // Predictions for day 6 should track the signal closely.
  double max_err = 0.0;
  for (double t = days(5.0); t < days(6.0); t += 3600.0) {
    max_err = std::max(max_err, std::abs(p.predict(t) - signal(t)));
  }
  EXPECT_LT(max_err, 10.0);
}

TEST(SeasonalPredictor, WeeklyProfileBorrowsYesterdayWhenCold) {
  // Weekly profile, only Monday observed: Tuesday-at-14h should borrow
  // Monday-at-14h (daily fallback), not the global mean.
  SeasonalPredictor p;  // weekly period, hourly buckets, daily fallback
  for (double t = 0.0; t < days(1.0); t += 3600.0) {
    const double hour = t / 3600.0;
    p.observe(t, hour == 14.0 ? 500.0 : 100.0);
  }
  EXPECT_NEAR(p.predict(days(1.0) + hours(14.0)), 500.0, 30.0);
  EXPECT_NEAR(p.predict(days(3.0) + hours(3.0)), 100.0, 30.0);
}

TEST(SeasonalPredictor, FallbackDisabled) {
  SeasonalPredictorConfig config;
  config.fallback_period_s = 0.0;
  SeasonalPredictor p(config);
  for (double t = 0.0; t < days(1.0); t += 3600.0) {
    const double hour = t / 3600.0;
    p.observe(t, hour == 14.0 ? 500.0 : 100.0);
  }
  // Without the fallback, a cold Tuesday bucket uses the global mean.
  const double global_mean = (23.0 * 100.0 + 500.0) / 24.0;
  EXPECT_NEAR(p.predict(days(1.0) + hours(14.0)), global_mean, 30.0);
}

TEST(SeasonalPredictor, ColdBucketsFallBackToGlobalMean) {
  SeasonalPredictor p;
  p.observe(0.0, 50.0);  // only bucket 0 warm
  const double far_future = days(3.0) + hours(7.0);
  EXPECT_NEAR(p.predict(far_future), 50.0, 1e-9);
}

TEST(SeasonalPredictor, EmptyPredictsZero) {
  SeasonalPredictor p;
  EXPECT_DOUBLE_EQ(p.predict(123.0), 0.0);
  EXPECT_EQ(p.observations(), 0u);
}

TEST(SeasonalPredictor, ResidualStddevShrinksWithLearning) {
  SeasonalPredictorConfig config;
  config.period_s = kSecondsPerDay;
  config.bucket_s = 3600.0;
  SeasonalPredictor p(config);
  auto signal = [](double t) {
    return 100.0 + 50.0 * std::sin(2.0 * std::numbers::pi * t / kSecondsPerDay);
  };
  for (double t = 0.0; t < days(2.0); t += 3600.0) p.observe(t, signal(t));
  const double early = p.residual_stddev();
  SeasonalPredictor trained(config);
  for (double t = 0.0; t < days(14.0); t += 3600.0) trained.observe(t, signal(t));
  EXPECT_LT(trained.residual_stddev(), early);
}

TEST(SeasonalPredictor, RejectsBadConfig) {
  SeasonalPredictorConfig bad;
  bad.bucket_s = 0.0;
  EXPECT_THROW(SeasonalPredictor{bad}, std::invalid_argument);
  bad = SeasonalPredictorConfig{};
  bad.period_s = 60.0;
  bad.bucket_s = 3600.0;
  EXPECT_THROW(SeasonalPredictor{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::onoff
