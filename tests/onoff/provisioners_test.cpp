#include "onoff/provisioners.h"

#include <gtest/gtest.h>

namespace epm::onoff {
namespace {

cluster::ServiceClusterConfig cluster_config(std::size_t total = 20,
                                             std::size_t active = 10) {
  cluster::ServiceClusterConfig config;
  config.server_count = total;
  config.initially_active = active;
  return config;
}

workload::OfferedLoad load_of(double rate) {
  workload::OfferedLoad load;
  load.arrival_rate_per_s = rate;
  load.service_demand_s = 0.01;
  return load;
}

TEST(ServersForLoad, CeilingOfRequired) {
  // 100 rps/server at full speed; 65% target -> 65 rps usable per server.
  EXPECT_EQ(servers_for_load(650.0, 0.01, 1.0, 0.65), 10u);
  EXPECT_EQ(servers_for_load(651.0, 0.01, 1.0, 0.65), 11u);
  EXPECT_EQ(servers_for_load(0.0, 0.01, 1.0, 0.65), 0u);
  EXPECT_THROW(servers_for_load(1.0, 0.01, 1.0, 1.0), std::invalid_argument);
}

TEST(StaticProvisioner, Constant) {
  cluster::ServiceCluster cluster(cluster_config());
  StaticProvisioner prov(15);
  const auto r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(prov.decide(cluster, r), 15u);
}

TEST(DelayThresholdProvisioner, AddsOnHighDelay) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 0.02;
  cluster::ServiceCluster cluster(config);
  DelayThresholdProvisioner prov;
  // rho 0.9 -> response 0.1 s > 0.02 target.
  const auto r = cluster.run_epoch(60.0, load_of(900.0));
  EXPECT_EQ(prov.decide(cluster, r), 12u);  // +2 by default
}

TEST(DelayThresholdProvisioner, ShrinksOnlyAfterDwell) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 0.5;
  cluster::ServiceCluster cluster(config);
  DelayThresholdProvisioner prov;
  // Very low load: response ~0.01 << 0.25 (down threshold).
  auto r = cluster.run_epoch(60.0, load_of(50.0));
  EXPECT_EQ(prov.decide(cluster, r), 10u);  // dwell 1
  EXPECT_EQ(prov.decide(cluster, r), 10u);  // dwell 2
  EXPECT_EQ(prov.decide(cluster, r), 9u);   // dwell 3 -> shrink by one
}

TEST(DelayThresholdProvisioner, RespectsMinimumAndFleet) {
  cluster::ServiceClusterConfig config = cluster_config(3, 1);
  config.sla.target_mean_response_s = 0.5;
  cluster::ServiceCluster cluster(config);
  DelayThresholdConfig pc;
  pc.min_servers = 1;
  pc.down_dwell_epochs = 1;
  pc.add_step = 10;
  DelayThresholdProvisioner prov(pc);
  auto r = cluster.run_epoch(60.0, load_of(50.0));
  // Low delay at 1 server: stays at minimum.
  if (r.mean_response_s < 0.25) {
    EXPECT_EQ(prov.decide(cluster, r), 1u);
  }
  // Overload: target clamped to fleet size.
  r = cluster.run_epoch(60.0, load_of(500.0));
  EXPECT_EQ(prov.decide(cluster, r), 3u);
}

TEST(UtilizationBandProvisioner, ResizesToTarget) {
  cluster::ServiceCluster cluster(cluster_config());
  UtilizationBandProvisioner prov;
  // rho 0.9 > 0.8 upper bound: resize to lambda/(100*0.65) = 14.
  const auto r = cluster.run_epoch(60.0, load_of(900.0));
  EXPECT_EQ(prov.decide(cluster, r), 14u);
}

TEST(UtilizationBandProvisioner, HoldsInsideBand) {
  cluster::ServiceCluster cluster(cluster_config());
  UtilizationBandProvisioner prov;
  const auto r = cluster.run_epoch(60.0, load_of(600.0));  // rho 0.6
  EXPECT_EQ(prov.decide(cluster, r), 10u);
}

TEST(UtilizationBandProvisioner, DwellPreventsImmediateSecondChange) {
  cluster::ServiceCluster cluster(cluster_config());
  UtilizationBandConfig config;
  config.min_dwell_epochs = 3;
  UtilizationBandProvisioner prov(config);
  auto r = cluster.run_epoch(60.0, load_of(900.0));
  const auto first = prov.decide(cluster, r);
  EXPECT_NE(first, 10u);
  cluster.set_target_committed(first, false);
  // Another out-of-band epoch immediately after: held by dwell.
  r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(prov.decide(cluster, r), cluster.committed_count());
}

TEST(PredictiveProvisioner, LearnsAndProvisionsAhead) {
  cluster::ServiceCluster cluster(cluster_config());
  PredictiveConfig config;
  config.predictor.period_s = 86400.0;
  config.predictor.bucket_s = 3600.0;
  PredictiveProvisioner prov(config);
  // Feed a constant 650 rps; the predictor should converge to ~10 servers
  // (650 / (100 * 0.65)).
  std::size_t target = 0;
  for (int i = 0; i < 50; ++i) {
    const auto r = cluster.run_epoch(60.0, load_of(650.0));
    target = prov.decide(cluster, r);
  }
  EXPECT_GE(target, 10u);
  EXPECT_LE(target, 12u);  // margin sigmas may add a little
}

TEST(PredictiveProvisioner, MinimumWhenNoLoad) {
  cluster::ServiceCluster cluster(cluster_config());
  PredictiveProvisioner prov;
  std::size_t target = 99;
  for (int i = 0; i < 10; ++i) {
    const auto r = cluster.run_epoch(60.0, load_of(0.0));
    target = prov.decide(cluster, r);
  }
  EXPECT_EQ(target, 1u);
}

TEST(Provisioners, ConfigValidation) {
  DelayThresholdConfig bad;
  bad.down_factor = 2.0;
  EXPECT_THROW(DelayThresholdProvisioner{bad}, std::invalid_argument);
  UtilizationBandConfig ubad;
  ubad.lower = 0.9;
  EXPECT_THROW(UtilizationBandProvisioner{ubad}, std::invalid_argument);
  PredictiveConfig pbad;
  pbad.target_utilization = 0.0;
  EXPECT_THROW(PredictiveProvisioner{pbad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::onoff
