// Randomized invariant sweeps for the workload generators: the Fig. 3
// shape statistics must hold across seeds and parameterizations, not just
// for the benchmark's seed.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/units.h"
#include "workload/messenger.h"
#include "workload/surge.h"

namespace epm::workload {
namespace {

class MessengerShapeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessengerShapeProperty, ShapeHoldsAcrossSeeds) {
  MessengerConfig config;
  config.seed = GetParam();
  config.step_s = 120.0;
  const auto trace = generate_messenger_trace(config, weeks(1.0));
  const auto shape = summarize_messenger_trace(trace, DiurnalModel(config.diurnal));
  EXPECT_GT(shape.afternoon_to_midnight_ratio, 1.5) << "seed " << GetParam();
  EXPECT_LT(shape.afternoon_to_midnight_ratio, 2.8) << "seed " << GetParam();
  EXPECT_GT(shape.weekday_to_weekend_ratio, 1.0) << "seed " << GetParam();
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    ASSERT_GE(trace.connections[i], 0.0);
    ASSERT_GE(trace.login_rate_per_s[i], 0.0);
  }
}

TEST_P(MessengerShapeProperty, FlashCrowdRateScalesWithConfig) {
  MessengerConfig calm;
  calm.seed = GetParam();
  calm.step_s = 300.0;
  calm.flash.rate_per_day = 0.5;
  MessengerConfig stormy = calm;
  stormy.flash.rate_per_day = 4.0;
  const auto few = generate_messenger_trace(calm, weeks(2.0));
  const auto many = generate_messenger_trace(stormy, weeks(2.0));
  EXPECT_LT(few.flash_crowds.size(), many.flash_crowds.size());
  // Poisson(7) vs Poisson(56): generous 3-sigma-ish bands.
  EXPECT_LE(few.flash_crowds.size(), 18u);
  EXPECT_GE(many.flash_crowds.size(), 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessengerShapeProperty,
                         ::testing::Values(1, 17, 99, 12345));

class SurgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SurgeProperty, RandomConfigsKeepTheSurgeShape) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    SurgeConfig config;
    config.baseline = rng.uniform(10.0, 200.0);
    config.peak = config.baseline * rng.uniform(5.0, 100.0);
    config.post_surge = config.baseline + (config.peak - config.baseline) *
                                              rng.uniform(0.01, 0.3);
    config.surge_start_s = rng.uniform(0.0, days(2.0));
    config.ramp_s = rng.uniform(hours(6.0), days(5.0));
    config.plateau_s = rng.uniform(0.0, days(2.0));
    config.recede_tau_s = rng.uniform(hours(6.0), days(3.0));
    const SurgeModel model(config);
    // Before the surge: exactly baseline; at ramp end: exactly peak.
    ASSERT_DOUBLE_EQ(model.demand_at(config.surge_start_s * 0.5), config.baseline);
    ASSERT_NEAR(model.demand_at(config.surge_start_s + config.ramp_s), config.peak,
                config.peak * 1e-6);
    // Everywhere within [baseline, peak].
    const double end = config.surge_start_s + config.ramp_s + config.plateau_s +
                       8.0 * config.recede_tau_s;
    for (double t = 0.0; t < end; t += end / 200.0) {
      const double v = model.demand_at(t);
      ASSERT_GE(v, config.baseline - 1e-9);
      ASSERT_LE(v, config.peak + 1e-9);
    }
    // Long after: recedes to post_surge.
    ASSERT_NEAR(model.demand_at(end + 20.0 * config.recede_tau_s), config.post_surge,
                config.peak * 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SurgeProperty, ::testing::Values(3, 4));

}  // namespace
}  // namespace epm::workload
