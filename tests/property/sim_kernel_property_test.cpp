// Property suite: the calendar-queue scheduler and the binary-heap baseline
// are observationally identical. Both backends execute the same randomized
// script of schedule/cancel/periodic/advance operations, and every firing
// (timestamp + identity), every pending() probe, and the final clock must
// match exactly — the contract that lets `Simulator` alias either backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "sim/simulator.h"

namespace epm::sim {
namespace {

struct ScriptResult {
  std::vector<std::pair<double, int>> fires;  ///< (time, script handle index)
  std::vector<std::size_t> pending_probes;
  double final_now = 0.0;
};

/// Runs the op script derived from `seed` on one backend. All decisions are
/// drawn from the RNG plus state that evolves identically on both backends
/// (fired flags follow the fire order, which this suite asserts is shared),
/// so the two runs see the very same script.
template <typename Sim>
ScriptResult run_script(std::uint64_t seed, int ops) {
  Sim sim;
  SplitMix64 rng(seed);
  ScriptResult result;
  std::vector<EventHandle> handles;
  std::vector<bool> fired;     // one-shots only; periodics stay false
  std::vector<bool> periodic;
  std::vector<bool> cancelled;

  const auto uniform = [&rng] {
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  };
  const auto record = [&result, &sim](int idx) {
    result.fires.emplace_back(sim.now(), idx);
  };

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.next() % 100;
    if (roll < 55) {  // schedule_at, mostly near future, sometimes far
      const int idx = static_cast<int>(handles.size());
      const double horizon = roll < 50 ? 10.0 : 1e5;
      handles.push_back(sim.schedule_at(
          sim.now() + uniform() * horizon,
          [&fired, &record, idx] {
            fired[idx] = true;
            record(idx);
          }));
      fired.push_back(false);
      periodic.push_back(false);
      cancelled.push_back(false);
    } else if (roll < 65) {  // schedule_after
      const int idx = static_cast<int>(handles.size());
      handles.push_back(sim.schedule_after(uniform() * 5.0,
                                           [&fired, &record, idx] {
                                             fired[idx] = true;
                                             record(idx);
                                           }));
      fired.push_back(false);
      periodic.push_back(false);
      cancelled.push_back(false);
    } else if (roll < 70) {  // schedule_periodic
      const int idx = static_cast<int>(handles.size());
      handles.push_back(sim.schedule_periodic(sim.now() + uniform() * 2.0,
                                              0.25 + uniform() * 2.0,
                                              [&record, idx] { record(idx); }));
      fired.push_back(false);
      periodic.push_back(true);
      cancelled.push_back(false);
    } else if (roll < 85) {  // cancel a live handle
      if (!handles.empty()) {
        const auto pick = static_cast<std::size_t>(rng.next() % handles.size());
        // Only cancel handles that have not completed: cancelling a fired
        // one-shot is a no-op by contract, but picking live targets keeps
        // the script exercising real cancellations.
        if (!cancelled[pick] && (periodic[pick] || !fired[pick])) {
          sim.cancel(handles[pick]);
          cancelled[pick] = true;
        }
      }
    } else if (roll < 95) {  // advance the clock a little
      sim.run_until(sim.now() + uniform() * 3.0);
      result.pending_probes.push_back(sim.pending());
    } else {  // single step
      sim.step();
      result.pending_probes.push_back(sim.pending());
    }
  }

  // Stop the periodic generators, then drain everything that remains.
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (periodic[i] && !cancelled[i]) sim.cancel(handles[i]);
  }
  sim.run_all();
  result.pending_probes.push_back(sim.pending());
  result.final_now = sim.now();
  return result;
}

TEST(SimKernelProperty, BackendsAgreeOnRandomizedScripts) {
  for (const std::uint64_t seed : {11ULL, 2026ULL, 777216ULL}) {
    const ScriptResult cal = run_script<CalendarSimulator>(seed, 10000);
    const ScriptResult heap = run_script<HeapSimulator>(seed, 10000);
    ASSERT_EQ(cal.fires.size(), heap.fires.size()) << "seed " << seed;
    for (std::size_t i = 0; i < cal.fires.size(); ++i) {
      ASSERT_EQ(cal.fires[i].first, heap.fires[i].first)
          << "seed " << seed << " fire " << i;
      ASSERT_EQ(cal.fires[i].second, heap.fires[i].second)
          << "seed " << seed << " fire " << i;
    }
    EXPECT_EQ(cal.pending_probes, heap.pending_probes) << "seed " << seed;
    EXPECT_EQ(cal.final_now, heap.final_now) << "seed " << seed;
    EXPECT_EQ(cal.pending_probes.back(), 0u) << "seed " << seed;
  }
}

TEST(SimKernelProperty, BackendsAgreeOnBatchSchedules) {
  // Epoch-style usage: at each boundary, batch-schedule a burst of
  // completions for the next boundary, mixed with stray singles.
  const auto run = [](auto& sim) {
    SplitMix64 rng(99);
    std::vector<std::pair<double, int>> log;
    int id = 0;
    for (int epoch = 1; epoch <= 50; ++epoch) {
      const double t = static_cast<double>(epoch);
      std::vector<EventFn> batch;
      const int burst = 1 + static_cast<int>(rng.next() % 40);
      for (int i = 0; i < burst; ++i) {
        const int my = id++;
        batch.emplace_back(EventFn{[&log, &sim, my] {
          log.emplace_back(sim.now(), my);
        }});
      }
      sim.schedule_batch_at(t, batch.begin(), batch.end());
      if (rng.next() % 2 == 0) {
        const int my = id++;
        sim.schedule_at(t, [&log, &sim, my] { log.emplace_back(sim.now(), my); });
      }
      sim.run_until(t);
    }
    return log;
  };
  CalendarSimulator cal;
  HeapSimulator heap;
  const auto cal_log = run(cal);
  const auto heap_log = run(heap);
  EXPECT_EQ(cal_log, heap_log);
  EXPECT_EQ(cal.pending(), heap.pending());
}

}  // namespace
}  // namespace epm::sim
