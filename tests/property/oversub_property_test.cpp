// Randomized invariant sweeps for the oversubscription risk estimators.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.h"
#include "oversub/aggregation.h"

namespace epm::oversub {
namespace {

ServicePowerProfile random_profile(Rng& rng, const std::string& name) {
  TimeSeries trace(0.0, 900.0);
  const double mean = rng.uniform(50.0, 200.0);
  const double swing = rng.uniform(0.0, mean * 0.8);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (int i = 0; i < 96 * 3; ++i) {
    const double x = 2.0 * std::numbers::pi * (i % 96) / 96.0;
    trace.push_back(std::max(1.0, mean + swing * std::sin(x + phase) +
                                      rng.normal(0.0, mean * 0.02)));
  }
  return ServicePowerProfile(name, trace);
}

class OversubProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OversubProperty, RiskDecreasesWithCapacity) {
  Rng rng(GetParam());
  RiskConfig config;
  config.monte_carlo_draws = 20000;
  for (int round = 0; round < 10; ++round) {
    std::vector<ServicePowerProfile> services;
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    for (std::size_t i = 0; i < n; ++i) {
      services.push_back(random_profile(rng, "s" + std::to_string(i)));
    }
    double total_peak = 0.0;
    for (const auto& s : services) total_peak += s.rated_peak_w();
    double prev_aligned = 1.1;
    double prev_indep = 1.1;
    for (double frac : {0.4, 0.7, 1.0, 1.3}) {
      const double cap = total_peak * frac;
      const double aligned = overflow_probability_aligned(services, cap, config);
      const double indep = overflow_probability_independent(services, cap, config);
      ASSERT_LE(aligned, prev_aligned + 0.01);
      ASSERT_LE(indep, prev_indep + 0.01);
      prev_aligned = aligned;
      prev_indep = indep;
    }
    // Capacity at the summed peaks: never overflows.
    ASSERT_DOUBLE_EQ(overflow_probability_aligned(services, total_peak + 1.0, config),
                     0.0);
  }
}

TEST_P(OversubProperty, AddingAServiceNeverLowersRisk) {
  Rng rng(GetParam() + 3);
  RiskConfig config;
  config.monte_carlo_draws = 20000;
  std::vector<ServicePowerProfile> services;
  services.push_back(random_profile(rng, "base"));
  const double capacity = services[0].rated_peak_w() * 3.0;
  double prev = -1.0;
  for (int i = 0; i < 6; ++i) {
    const double risk = overflow_probability_aligned(services, capacity, config);
    ASSERT_GE(risk, prev - 1e-9);
    prev = risk;
    services.push_back(random_profile(rng, "extra" + std::to_string(i)));
  }
}

TEST_P(OversubProperty, NormalApproxRespectsCorrelationOrdering) {
  Rng rng(GetParam() + 7);
  for (int round = 0; round < 20; ++round) {
    std::vector<ServicePowerProfile> services;
    for (int i = 0; i < 5; ++i) {
      services.push_back(random_profile(rng, "n" + std::to_string(i)));
    }
    double mean_sum = 0.0;
    for (const auto& s : services) mean_sum += s.mean_w();
    const double capacity = mean_sum * rng.uniform(1.05, 1.5);
    double prev = -1.0;
    for (double rho : {0.0, 0.3, 0.6, 0.9}) {
      const double risk = overflow_probability_normal(services, capacity, rho);
      ASSERT_GE(risk, prev - 1e-12) << "rho " << rho;
      prev = risk;
    }
  }
}

TEST_P(OversubProperty, CappingImpactConsistentWithRisk) {
  Rng rng(GetParam() + 11);
  for (int round = 0; round < 10; ++round) {
    std::vector<ServicePowerProfile> services;
    for (int i = 0; i < 4; ++i) {
      services.push_back(random_profile(rng, "c" + std::to_string(i)));
    }
    double total_peak = 0.0;
    for (const auto& s : services) total_peak += s.rated_peak_w();
    const double capacity = total_peak * rng.uniform(0.6, 0.95);
    const double risk = overflow_probability_aligned(services, capacity);
    const auto impact = capping_impact_aligned(services, capacity);
    // The fraction of time capped IS the aligned overflow probability.
    ASSERT_NEAR(impact.capped_fraction, risk, 1e-9);
    if (impact.capped_fraction > 0.0) {
      ASSERT_GT(impact.mean_shed_w, 0.0);
      ASSERT_GE(impact.worst_shed_w, impact.mean_shed_w - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OversubProperty, ::testing::Values(91, 92));

}  // namespace
}  // namespace epm::oversub
