// Randomized invariant sweeps for power capping.
#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"
#include "power/capping.h"

namespace epm::power {
namespace {

class CappingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CappingProperty, CapsConserveAndRespectBounds) {
  Rng rng(GetParam());
  const double idle = 150.0;
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::vector<double> draws;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      draws.push_back(idle + rng.uniform(0.0, 200.0));
      total += draws.back();
    }
    const double budget = rng.uniform(idle * static_cast<double>(n) * 0.5, total * 1.2);
    const auto decision = plan_caps(draws, idle, budget);

    // Caps never exceed the original draws and never dip below idle.
    double capped_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(decision.caps_w[i], draws[i] + 1e-9);
      ASSERT_GE(decision.caps_w[i], idle - 1e-9);
      capped_total += decision.caps_w[i];
    }
    if (!decision.capped) {
      // Under budget: untouched.
      ASSERT_NEAR(capped_total, total, 1e-9);
      ASSERT_LE(total, budget + 1e-9);
    } else if (!decision.infeasible) {
      // Capped and feasible: lands exactly on the budget.
      ASSERT_NEAR(capped_total, budget, 1e-6);
      ASSERT_NEAR(decision.shed_w, total - budget, 1e-6);
    } else {
      // Infeasible: everything at the idle floor.
      ASSERT_NEAR(capped_total, idle * static_cast<double>(n), 1e-9);
      ASSERT_LT(budget, idle * static_cast<double>(n) + 1e-9);
    }
  }
}

TEST_P(CappingProperty, LargerBudgetNeverTightensCaps) {
  Rng rng(GetParam() + 1000);
  const double idle = 150.0;
  for (int round = 0; round < 100; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 20));
    std::vector<double> draws;
    for (std::size_t i = 0; i < n; ++i) draws.push_back(idle + rng.uniform(0.0, 150.0));
    const double total = std::accumulate(draws.begin(), draws.end(), 0.0);
    const double small = rng.uniform(idle * static_cast<double>(n), total);
    const double large = small + rng.uniform(0.0, total - small);
    const auto tight = plan_caps(draws, idle, small);
    const auto loose = plan_caps(draws, idle, large);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GE(loose.caps_w[i], tight.caps_w[i] - 1e-9) << "server " << i;
    }
  }
}

TEST_P(CappingProperty, ThrottleSettingAlwaysFitsUnderAchievableCaps) {
  Rng rng(GetParam() + 2000);
  const ServerPowerModel model{ServerPowerConfig{}};
  for (int round = 0; round < 300; ++round) {
    const double u = rng.uniform(0.0, 1.0);
    // Any cap at or above the idle floor is achievable (duty floor aside).
    const double cap = rng.uniform(model.idle_power_w(), model.peak_power_w());
    const auto setting = throttle_for_cap(model, u, cap);
    if (setting.duty > 0.05 + 1e-12) {  // not pinned at the duty floor
      ASSERT_LE(model.active_power_w(setting.pstate, u, setting.duty), cap + 1e-9)
          << "u=" << u << " cap=" << cap;
    }
    ASSERT_GT(setting.relative_capacity, 0.0);
    ASSERT_LE(setting.relative_capacity, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappingProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace epm::power
