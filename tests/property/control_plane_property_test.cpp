// Property suite for the survivable control plane (ISSUE 9 satellite):
//
//   * at most one live lease per epoch — every claimed token fleet-wide is
//     unique and congruent to its claimant, across 3 seeds x shards
//     {1, 2, 4} x threads {1, 2, 8}, under leader death AND split-brain;
//   * a deposed leader's journaled commands are rejected at both layers
//     (actuator ledger, peer journals) in every one of those runs;
//   * lease + journal + fencing state save/restore through sim/snapshot is
//     bit-identical mid-failover.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "faults/control_chaos.h"

namespace epm::faults {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 101, 20260809};
constexpr std::size_t kShardCounts[] = {1, 2, 4};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

ControlChaosConfig config_for(std::uint64_t seed, std::size_t shards,
                              std::size_t threads) {
  ControlChaosConfig config;
  config.dcs = 4;
  config.seed = seed;
  config.shards = shards;
  config.threads = threads;
  return config;
}

TEST(ControlPlaneProperty, AtMostOneLiveLeasePerEpochUnderLeaderDeath) {
  for (const std::uint64_t seed : kSeeds) {
    // The sharding/threading grid must not only keep the property — it must
    // produce the exact same world.
    ControlChaosOutcome reference;
    bool have_reference = false;
    for (const std::size_t shards : kShardCounts) {
      for (const std::size_t threads : kThreadCounts) {
        ControlChaosConfig config = config_for(seed, shards, threads);
        config.controller_faults = make_leader_kill_plan();
        const ControlChaosOutcome out = run_control_plane(config);
        EXPECT_TRUE(out.lease_unique_ok)
            << "seed=" << seed << " shards=" << shards
            << " threads=" << threads << "\n" << out.report;
        EXPECT_TRUE(out.fencing_clean) << out.report;
        EXPECT_TRUE(out.conservation_ok) << out.report;
        // Exactly one failover: the seed claim plus replica 1's takeover.
        EXPECT_EQ(1U, out.replicas[0].claims);
        EXPECT_EQ(1U, out.replicas[1].claims);
        EXPECT_EQ(0U, out.replicas[2].claims + out.replicas[3].claims);
        if (!have_reference) {
          reference = out;
          have_reference = true;
        } else {
          EXPECT_TRUE(control_outcomes_equal(reference, out))
              << "seed=" << seed << " shards=" << shards
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ControlPlaneProperty, DeposedLeaderCommandsRejectedAtBothLayers) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::size_t shards : kShardCounts) {
      for (const std::size_t threads : kThreadCounts) {
        ControlChaosConfig config = config_for(seed, shards, threads);
        config.controller_faults = make_split_brain_plan();
        const ControlChaosOutcome out = run_control_plane(config);
        EXPECT_TRUE(out.lease_unique_ok) << out.report;

        // Layer 1: the actuator ledgers fenced the stale-token actuations.
        std::uint64_t stale_rejected = 0;
        std::uint64_t double_actuations = 0;
        for (const ControlDcOutcome& dc : out.dcs) {
          stale_rejected += dc.stale_rejected;
          double_actuations += dc.double_actuations;
        }
        EXPECT_GT(stale_rejected, 0U)
            << "seed=" << seed << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(0U, double_actuations);

        // Layer 2: the peers' journals rejected its replication records.
        std::uint64_t journal_rejections = 0;
        for (const ControlReplicaOutcome& r : out.replicas) {
          journal_rejections += r.journal_rejected_stale;
        }
        EXPECT_GT(journal_rejections, 0U);

        // And the imposter stepped down on first contact.
        EXPECT_GE(out.replicas[0].depositions, 1U);
      }
    }
  }
}

TEST(ControlPlaneProperty, LeaseAndJournalStateRestoreBitIdentical) {
  // Snapshot windows straddling the interesting edges: mid-transition
  // before the kill, between kill and claim, and mid-replay.
  const double kWindows[][2] = {{12.5, 13.0}, {14.0, 16.5}, {16.0, 17.5}};
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& window : kWindows) {
      ControlChaosConfig config = config_for(seed, /*shards=*/2,
                                             /*threads=*/2);
      config.controller_faults = make_leader_kill_plan();
      const ControlRestoreReport rep = run_control_plane_with_restore(
          config, /*snapshot_at_s=*/window[0], /*kill_at_s=*/window[1]);
      EXPECT_TRUE(rep.identical)
          << "seed=" << seed << " snapshot_at=" << window[0]
          << "\nuninterrupted: " << rep.uninterrupted.report
          << "\nrestored: " << rep.restored.report;
    }
  }
}

}  // namespace
}  // namespace epm::faults
