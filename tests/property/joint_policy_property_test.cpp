// Randomized invariant sweeps for the coordinated joint optimizer: every
// feasible decision must actually satisfy the constraints it claims, and no
// brute-force configuration may beat it on the pure-power objective.
#include <gtest/gtest.h>

#include "cluster/queueing.h"
#include "core/rng.h"
#include "macro/joint_policy.h"

namespace epm::macro {
namespace {

class JointPolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JointPolicyProperty, FeasibleDecisionsSatisfyConstraints) {
  Rng rng(GetParam());
  const power::ServerPowerModel model{power::ServerPowerConfig{}};
  JointPolicyConfig config;
  config.switching_penalty_w = 0.0;
  for (int round = 0; round < 300; ++round) {
    const auto max_servers = static_cast<std::size_t>(rng.uniform_int(1, 300));
    const double lambda = rng.uniform(0.0, 10000.0);
    const double demand = rng.uniform(0.001, 0.05);
    const double sla = rng.uniform(0.01, 1.0);
    const auto d = decide_joint(model, max_servers, 0, lambda, demand, sla, config);
    if (!d.feasible) continue;
    ASSERT_GE(d.servers, 1u);
    ASSERT_LE(d.servers, max_servers);
    ASSERT_LT(d.predicted_utilization, config.max_utilization + 1e-9);
    ASSERT_LE(d.predicted_response_s, sla * config.response_headroom + 1e-9)
        << "lambda=" << lambda << " demand=" << demand << " sla=" << sla;
  }
}

TEST_P(JointPolicyProperty, NoBruteForceConfigBeatsTheDecision) {
  Rng rng(GetParam() + 50);
  const power::ServerPowerModel model{power::ServerPowerConfig{}};
  JointPolicyConfig config;
  config.switching_penalty_w = 0.0;
  for (int round = 0; round < 25; ++round) {
    const std::size_t max_servers = 80;
    const double lambda = rng.uniform(100.0, 6000.0);
    const double demand = 0.01;
    const double sla = rng.uniform(0.03, 0.5);
    const auto d = decide_joint(model, max_servers, 0, lambda, demand, sla, config);
    if (!d.feasible) continue;
    const double target = sla * config.response_headroom;
    for (std::size_t p = 0; p < model.pstate_count(); ++p) {
      for (std::size_t n = 1; n <= max_servers; ++n) {
        const double cap = model.relative_capacity(p);
        const double rate = static_cast<double>(n) * cap / demand;
        const double rho = lambda / rate;
        if (rho >= config.max_utilization) continue;
        const double resp = cluster::mg1ps_response_time_s(demand / cap, rho);
        if (resp > target) continue;
        const double power = predicted_cluster_power_w(model, n, p, lambda, demand);
        ASSERT_GE(power + 1e-6, d.predicted_power_w)
            << "n=" << n << " p=" << p << " beats the optimizer";
      }
    }
  }
}

TEST_P(JointPolicyProperty, PowerMonotoneInDemand) {
  Rng rng(GetParam() + 99);
  const power::ServerPowerModel model{power::ServerPowerConfig{}};
  JointPolicyConfig config;
  config.switching_penalty_w = 0.0;
  for (int round = 0; round < 50; ++round) {
    const double sla = rng.uniform(0.05, 0.5);
    const double low = rng.uniform(0.0, 3000.0);
    const double high = low + rng.uniform(0.0, 3000.0);
    const auto d_low = decide_joint(model, 500, 0, low, 0.01, sla, config);
    const auto d_high = decide_joint(model, 500, 0, high, 0.01, sla, config);
    if (d_low.feasible && d_high.feasible) {
      ASSERT_LE(d_low.predicted_power_w, d_high.predicted_power_w + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JointPolicyProperty, ::testing::Values(7, 8));

}  // namespace
}  // namespace epm::macro
