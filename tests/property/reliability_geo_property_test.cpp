// Randomized invariant sweeps for the reliability blocks and the geo
// coordinator.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "macro/geo.h"
#include "reliability/availability.h"

namespace epm {
namespace {

reliability::Block random_block(Rng& rng, int depth) {
  using reliability::Block;
  using reliability::ComponentSpec;
  if (depth == 0 || rng.bernoulli(0.4)) {
    return Block::component(ComponentSpec{"leaf", rng.uniform(100.0, 1.0e5),
                                          rng.uniform(0.1, 48.0),
                                          rng.uniform(0.0, 40.0)});
  }
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 3));
  std::vector<Block> children;
  for (std::size_t i = 0; i < n; ++i) children.push_back(random_block(rng, depth - 1));
  if (rng.bernoulli(0.5)) return Block::series("s", std::move(children));
  const auto required = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(n)));
  return Block::parallel("p", required, std::move(children));
}

class ReliabilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliabilityProperty, AvailabilityIsAProbabilityAndMaintenanceHurts) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const auto block = random_block(rng, 3);
    const double plain = block.availability(false);
    const double with_maintenance = block.availability(true);
    ASSERT_GE(plain, 0.0);
    ASSERT_LE(plain, 1.0);
    ASSERT_LE(with_maintenance, plain + 1e-12);
    ASSERT_GE(with_maintenance, 0.0);
  }
}

TEST_P(ReliabilityProperty, RedundancyNeverHurts) {
  Rng rng(GetParam() + 5);
  using reliability::Block;
  for (int round = 0; round < 100; ++round) {
    const reliability::ComponentSpec spec{"c", rng.uniform(100.0, 1.0e5),
                                          rng.uniform(0.1, 48.0), 0.0};
    const auto single = Block::component(spec);
    const auto redundant =
        Block::parallel("p", 1, {Block::component(spec), Block::component(spec)});
    ASSERT_GE(redundant.availability(), single.availability() - 1e-12);
    // And requiring both is worse than requiring one.
    const auto both =
        Block::parallel("p2", 2, {Block::component(spec), Block::component(spec)});
    ASSERT_LE(both.availability(), single.availability() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliabilityProperty, ::testing::Values(21, 22));

class GeoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeoProperty, RoutingNeverBeatsCapacityOrConservation) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    std::vector<macro::SiteConfig> sites;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t i = 0; i < n; ++i) {
      macro::SiteConfig site;
      site.name = "s" + std::to_string(i);
      site.servers = static_cast<std::size_t>(rng.uniform_int(50, 800));
      site.plant.has_economizer = rng.bernoulli(0.5);
      site.electricity_price_per_kwh = rng.uniform(0.04, 0.25);
      site.network_latency_s = rng.uniform(0.001, 0.09);
      sites.push_back(site);
    }
    macro::GeoCoordinator geo(sites);
    std::vector<double> temps;
    std::vector<double> rh;
    double capacity = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      temps.push_back(rng.uniform(-5.0, 35.0));
      rh.push_back(rng.uniform(0.1, 0.9));
      if (geo.latency_feasible(i)) {
        capacity += static_cast<double>(sites[i].servers) * 70.0;
      }
    }
    const double rate = rng.uniform(0.0, capacity * 1.5 + 1.0);
    const auto decision = geo.route(rate, temps, rh);
    ASSERT_NEAR(decision.served_rate_per_s + decision.dropped_rate_per_s, rate, 1e-6);
    ASSERT_LE(decision.served_rate_per_s, capacity + 1e-6);
    double cost_check = 0.0;
    for (const auto& alloc : decision.allocations) {
      ASSERT_GE(alloc.arrival_rate_per_s, 0.0);
      ASSERT_LE(alloc.servers_on, sites[alloc.site].servers);
      cost_check += alloc.cost_per_hour;
    }
    ASSERT_NEAR(cost_check, decision.total_cost_per_hour, 1e-9);
  }
}

TEST_P(GeoProperty, CostAwareRoutingNeverCostsMoreThanSingleHome) {
  Rng rng(GetParam() + 9);
  for (int round = 0; round < 20; ++round) {
    std::vector<macro::SiteConfig> sites;
    for (std::size_t i = 0; i < 3; ++i) {
      macro::SiteConfig site;
      site.name = "s" + std::to_string(i);
      site.servers = 400;
      site.electricity_price_per_kwh = rng.uniform(0.05, 0.2);
      site.network_latency_s = rng.uniform(0.001, 0.06);
      sites.push_back(site);
    }
    macro::GeoCoordinator geo(sites);
    const std::vector<double> temps{rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0),
                                    rng.uniform(0.0, 30.0)};
    const std::vector<double> rh{0.5, 0.5, 0.5};
    const double rate = rng.uniform(1000.0, 25000.0);
    const auto aware = geo.route(rate, temps, rh);
    for (std::size_t home = 0; home < 3; ++home) {
      const auto homed = geo.route_single_home(rate, home, temps, rh);
      if (homed.served_rate_per_s >= aware.served_rate_per_s - 1e-6) {
        ASSERT_LE(aware.total_cost_per_hour, homed.total_cost_per_hour + 1e-6)
            << "home " << home;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoProperty, ::testing::Values(31, 32));

}  // namespace
}  // namespace epm
