// Randomized invariant sweeps for the multi-tier sizer.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "macro/tiers.h"

namespace epm::macro {
namespace {

TieredServiceSpec random_service(Rng& rng) {
  TieredServiceSpec spec;
  const auto tiers = static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t i = 0; i < tiers; ++i) {
    TierSpec tier;
    tier.name = "t" + std::to_string(i);
    tier.fanout = rng.uniform(1.0, 5.0);
    tier.service_demand_s = rng.uniform(0.001, 0.02);
    tier.max_servers = 2000;
    spec.tiers.push_back(tier);
  }
  // Generous SLA relative to the summed service times so most draws are
  // feasible; infeasible draws are asserted to report so.
  double service_sum = 0.0;
  for (const auto& t : spec.tiers) service_sum += t.service_demand_s;
  spec.end_to_end_sla_s = service_sum * rng.uniform(2.0, 20.0);
  return spec;
}

class TiersProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TiersProperty, FeasibleDecisionsMeetTheirContract) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto spec = random_service(rng);
    const double rate = rng.uniform(0.0, 5000.0);
    const auto decision = size_tiers(spec, rate);
    if (!decision.feasible) continue;
    ASSERT_EQ(decision.tiers.size(), spec.tiers.size());
    double budget_sum = 0.0;
    double power_sum = 0.0;
    for (std::size_t i = 0; i < decision.tiers.size(); ++i) {
      const auto& tier = decision.tiers[i];
      ASSERT_GE(tier.servers, 1u);
      ASSERT_LE(tier.servers, spec.tiers[i].max_servers);
      ASSERT_LE(tier.predicted_response_s, tier.latency_budget_s + 1e-9);
      budget_sum += tier.latency_budget_s;
      power_sum += tier.predicted_power_w;
    }
    ASSERT_NEAR(budget_sum, spec.end_to_end_sla_s, 1e-9);
    ASSERT_LE(decision.end_to_end_response_s, spec.end_to_end_sla_s + 1e-9);
    ASSERT_NEAR(decision.total_power_w, power_sum, 1e-6);
  }
}

TEST_P(TiersProperty, OptimizedNeverWorseThanEqualSplit) {
  Rng rng(GetParam() + 31);
  for (int round = 0; round < 25; ++round) {
    const auto spec = random_service(rng);
    const double rate = rng.uniform(10.0, 4000.0);
    const auto optimized = size_tiers(spec, rate);
    const auto equal = size_tiers_equal_split(spec, rate);
    if (equal.feasible) {
      ASSERT_TRUE(optimized.feasible);
      ASSERT_LE(optimized.total_power_w, equal.total_power_w + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiersProperty, ::testing::Values(61, 62));

}  // namespace
}  // namespace epm::macro
