// Randomized invariant sweeps for the fault-injection subsystem.
//
//   * conservation — every injected fault is observed, handled, and cleared;
//   * safety — storm outcomes never go negative, never over-serve, and the
//     UPS state of charge stays inside [0, 1] under arbitrary fault soup;
//   * monotonicity — adding capacity-fault events to a plan can only hold
//     the served load equal or push it down, never up (the degradation
//     policy is a pure function of the active fault set, so "more broken"
//     can never mean "serves more");
//   * determinism — plans and whole storm sweeps are bit-identical at 1, 2,
//     and 8 threads ("Parallel" in the suite name opts into the TSan run).
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "faults/storm.h"
#include "sim/simulator.h"

namespace epm::faults {
namespace {

FaultPlanConfig random_plan_config(Rng& rng) {
  FaultPlanConfig config;
  config.horizon_s = rng.uniform(3600.0, 2.0 * 86400.0);
  config.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  for (std::size_t i = 0; i < kFaultTypeCount; ++i) {
    auto& spec = config.rates[i];
    // Roughly half the types enabled per draw.
    spec.rate_per_day = rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform(0.5, 8.0) : 0.0;
    spec.mean_duration_s = rng.uniform(120.0, 3600.0);
    spec.min_duration_s = 60.0;
    spec.severity_lo = rng.uniform(0.05, 0.5);
    spec.severity_hi = spec.severity_lo + rng.uniform(0.0, 1.0);
    spec.target_count = static_cast<std::size_t>(rng.uniform_int(1, 3));
  }
  return config;
}

class FaultsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultsProperty, SampledPlansAreConservedByTheInjector) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const FaultPlanConfig config = random_plan_config(rng);
    const FaultPlan plan = FaultPlan::sampled(config);
    ASSERT_EQ(plan.fingerprint(), FaultPlan::sampled(config).fingerprint());

    sim::Simulator sim;
    FaultInjector injector(sim, plan);
    injector.subscribe([](const FaultEvent&, bool, double) { return true; });
    injector.arm();
    sim.run_all();
    ASSERT_TRUE(injector.conserved());
    ASSERT_EQ(injector.observed_count(), plan.size());
    ASSERT_EQ(injector.cleared_count(), plan.size());
    ASSERT_TRUE(injector.active_events().empty());
  }
}

TEST_P(FaultsProperty, StormOutcomesStayPhysicalUnderArbitraryFaultSoup) {
  Rng rng(GetParam());
  StormConfig config = make_reference_storm_config(30);
  config.horizon_s = 2.0 * 3600.0;
  for (int round = 0; round < 3; ++round) {
    FaultPlanConfig soup;
    soup.horizon_s = config.horizon_s;
    soup.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
    soup.rate(FaultType::kServerCrash) = {24.0, 900.0, 60.0, 0.1, 0.6, 2};
    soup.rate(FaultType::kPsuTrip) = {12.0, 600.0, 60.0, 0.1, 0.4, 2};
    soup.rate(FaultType::kCracFailure) = {6.0, 1200.0, 300.0, 1.0, 1.0, 1};
    soup.rate(FaultType::kCoolingDerate) = {12.0, 1800.0, 300.0, 0.2, 0.8, 1};
    soup.rate(FaultType::kSensorDropout) = {24.0, 600.0, 60.0, 1.0, 1.0, 2};
    soup.rate(FaultType::kSensorStuck) = {24.0, 600.0, 60.0, 1.0, 1.0, 2};
    soup.rate(FaultType::kUtilityOutage) = {6.0, 900.0, 120.0, 1.0, 1.0, 1};
    soup.rate(FaultType::kFlashCrowd) = {12.0, 600.0, 120.0, 1.2, 3.0, 2};
    const FaultPlan plan = FaultPlan::sampled(soup);

    const StormOutcome out = run_fault_storm(config, plan);
    ASSERT_TRUE(out.faults_conserved);
    ASSERT_GE(out.served_requests, 0.0);
    ASSERT_GE(out.shed_requests, 0.0);
    ASSERT_GE(out.rerouted_requests, 0.0);
    ASSERT_GE(out.dropped_requests, 0.0);
    ASSERT_LE(out.served_requests, out.offered_requests + 1e-6);
    ASSERT_LE(out.served_requests + out.shed_requests + out.rerouted_requests,
              out.offered_requests + out.dropped_requests + 1e-6);
    ASSERT_GE(out.min_state_of_charge, 0.0);
    ASSERT_LE(out.min_state_of_charge, 1.0);
    ASSERT_GE(out.max_zone_temp_c, 0.0);
    ASSERT_GT(out.it_energy_kwh, 0.0);
  }
}

// Build a pool of capacity faults (crashes, PSU trips, outages) and run the
// storm on every prefix: each added fault must hold served load equal or
// push it down. Sensor faults and surges are excluded by design — surges
// raise *offered* load, which is a different axis than degradation.
TEST_P(FaultsProperty, MoreCapacityFaultsNeverServeMoreLoad) {
  Rng rng(GetParam());
  StormConfig config = make_reference_storm_config(30);
  config.horizon_s = 2.0 * 3600.0;

  std::vector<FaultEvent> pool;
  const FaultType kinds[] = {FaultType::kServerCrash, FaultType::kPsuTrip,
                             FaultType::kUtilityOutage};
  for (int i = 0; i < 5; ++i) {
    FaultEvent event;
    event.type = kinds[rng.uniform_int(0, 2)];
    event.start_s = rng.uniform(0.0, config.horizon_s * 0.8);
    event.duration_s = rng.uniform(300.0, 1800.0);
    event.target = static_cast<std::size_t>(rng.uniform_int(0, 1));
    event.severity =
        event.type == FaultType::kUtilityOutage ? 1.0 : rng.uniform(0.1, 0.5);
    pool.push_back(event);
  }
  // Prefixes grow in start-time order so each plan extends the previous
  // run's timeline instead of rewriting its past.
  std::sort(pool.begin(), pool.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.start_s < b.start_s;
            });

  double prev_served = -1.0;
  for (std::size_t k = 0; k <= pool.size(); ++k) {
    const std::vector<FaultEvent> prefix(pool.begin(),
                                         pool.begin() + static_cast<long>(k));
    const StormOutcome out =
        run_fault_storm(config, FaultPlan::scripted(prefix));
    if (k > 0) {
      ASSERT_LE(out.served_requests, prev_served + 1e-6)
          << "adding fault #" << k << " (" << to_string(pool[k - 1].type)
          << " @" << pool[k - 1].start_s << ") increased served load";
    }
    prev_served = out.served_requests;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultsProperty,
                         ::testing::Values(101, 202, 303));

// Determinism across thread counts: sampling plans and running whole storm
// sweeps on a ThreadPool must be bit-identical at 1, 2, and 8 threads.
TEST(FaultsParallelDeterminism, PlanFingerprintsMatchAcrossThreadCounts) {
  const std::size_t points = 12;
  std::vector<std::vector<std::uint64_t>> per_threads;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    per_threads.push_back(pool.parallel_map(points, [](std::size_t i) {
      FaultPlanConfig config;
      config.horizon_s = 86400.0;
      config.seed = 1000 + i;
      config.rate(FaultType::kServerCrash) = {5.0, 900.0, 60.0, 0.1, 0.4, 2};
      config.rate(FaultType::kUtilityOutage) = {2.0, 900.0, 120.0, 1.0, 1.0, 1};
      config.rate(FaultType::kFlashCrowd) = {3.0, 600.0, 120.0, 1.5, 2.5, 2};
      return FaultPlan::sampled(config).fingerprint();
    }));
  }
  EXPECT_EQ(per_threads[0], per_threads[1]);
  EXPECT_EQ(per_threads[0], per_threads[2]);
}

TEST(FaultsParallelDeterminism, StormSweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> intensities = {0.0, 0.5, 1.0, 1.5};
  StormConfig config = make_reference_storm_config(30);
  config.horizon_s = 3600.0;

  auto sweep = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_map(intensities.size(), [&](std::size_t i) {
      const FaultPlan plan = make_storm_plan(intensities[i], config.horizon_s,
                                             99, config.demand_rps.size(), 1);
      return run_fault_storm(config, plan);
    });
  };

  const auto base = sweep(1);
  for (const std::size_t threads : {2u, 8u}) {
    const auto other = sweep(threads);
    ASSERT_EQ(base.size(), other.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_DOUBLE_EQ(base[i].served_requests, other[i].served_requests);
      EXPECT_DOUBLE_EQ(base[i].offered_requests, other[i].offered_requests);
      EXPECT_DOUBLE_EQ(base[i].dropped_requests, other[i].dropped_requests);
      EXPECT_DOUBLE_EQ(base[i].it_energy_kwh, other[i].it_energy_kwh);
      EXPECT_DOUBLE_EQ(base[i].mechanical_energy_kwh,
                       other[i].mechanical_energy_kwh);
      EXPECT_DOUBLE_EQ(base[i].max_zone_temp_c, other[i].max_zone_temp_c);
      EXPECT_DOUBLE_EQ(base[i].min_state_of_charge,
                       other[i].min_state_of_charge);
      EXPECT_EQ(base[i].brownout_epochs, other[i].brownout_epochs);
      EXPECT_EQ(base[i].epochs, other[i].epochs);
      EXPECT_EQ(base[i].decision_counts, other[i].decision_counts);
    }
  }
}

}  // namespace
}  // namespace epm::faults
