// Randomized invariant sweeps for the thermal models.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "thermal/cooling_plant.h"
#include "thermal/room.h"
#include "thermal/zone.h"

namespace epm::thermal {
namespace {

class ThermalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThermalProperty, ZoneTemperatureStaysPhysical) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    ZoneConfig config;
    config.heat_capacity_j_per_c = rng.uniform(1.0e5, 5.0e6);
    config.conductance_w_per_c = rng.uniform(500.0, 8.0e3);
    config.supply_lag_s = rng.uniform(0.0, 900.0);
    config.initial_temp_c = rng.uniform(15.0, 30.0);
    ThermalZone zone(config);
    const double supply = rng.uniform(12.0, 27.0);
    const double heat = rng.uniform(0.0, 40.0e3);
    const double steady = zone.steady_state_c(heat, supply);
    // The lagged supply starts at the initial temperature and relaxes toward
    // the command, so the transient target ranges over
    // [min(supply, initial), max(supply, initial)] + heat/G.
    const double dT = heat / config.conductance_w_per_c;
    const double lo = std::min({config.initial_temp_c, supply, steady}) - 1e-6;
    const double hi =
        std::max({config.initial_temp_c,
                  std::max(supply, config.initial_temp_c) + dT}) +
        1e-6;
    for (int step = 0; step < 200; ++step) {
      zone.step(rng.uniform(1.0, 600.0), heat, supply);
      ASSERT_GE(zone.temperature_c(), lo);
      ASSERT_LE(zone.temperature_c(), hi);
    }
    // Long enough: converged to the steady state.
    zone.step(1.0e7, heat, supply);
    zone.step(1.0e7, heat, supply);
    ASSERT_NEAR(zone.temperature_c(), steady, 0.05);
  }
}

TEST_P(ThermalProperty, CracSupplyAlwaysWithinRange) {
  Rng rng(GetParam() + 5);
  for (int round = 0; round < 50; ++round) {
    CracConfig config;
    config.gain = rng.uniform(0.1, 5.0);
    config.zone_sensitivity = {rng.uniform(0.01, 1.0), rng.uniform(0.01, 1.0)};
    Crac crac(config);
    for (int step = 0; step < 100; ++step) {
      crac.control_step({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
      ASSERT_GE(crac.supply_temp_c(), config.min_supply_c - 1e-12);
      ASSERT_LE(crac.supply_temp_c(), config.max_supply_c + 1e-12);
    }
  }
}

TEST_P(ThermalProperty, CoolingDrawNonNegativeAndMonotoneInHeat) {
  Rng rng(GetParam() + 9);
  for (int round = 0; round < 100; ++round) {
    CoolingPlantConfig config;
    config.has_economizer = rng.bernoulli(0.5);
    const CoolingPlant plant(config);
    const double supply = rng.uniform(12.0, 27.0);
    const double outside = rng.uniform(-20.0, 40.0);
    const double h1 = rng.uniform(0.0, 500.0e3);
    const double h2 = h1 + rng.uniform(0.0, 500.0e3);
    const auto d1 = plant.power_draw(h1, supply, outside);
    const auto d2 = plant.power_draw(h2, supply, outside);
    ASSERT_GE(d1.total_w(), 0.0);
    ASSERT_LE(d1.total_w(), d2.total_w() + 1e-9);
    // Economizer mode never burns more than chiller mode for the same heat.
    if (d1.economizer_active) {
      CoolingPlantConfig no_econ = config;
      no_econ.has_economizer = false;
      const CoolingPlant chiller_only(no_econ);
      ASSERT_LE(d1.total_w(), chiller_only.power_draw(h1, supply, outside).total_w() + 1e-9);
    }
  }
}

TEST_P(ThermalProperty, RoomConvergesToZoneSteadyStates) {
  Rng rng(GetParam() + 13);
  for (int round = 0; round < 10; ++round) {
    MachineRoomConfig config;
    ZoneConfig zone;
    zone.supply_lag_s = rng.uniform(0.0, 600.0);
    config.zones = {zone};
    CracConfig crac;
    crac.zone_sensitivity = {1.0};
    config.cracs = {crac};
    config.airflow_share = {{1.0}};
    MachineRoom room(config);
    const double heat = rng.uniform(1.0e3, 30.0e3);
    room.run_until(48.0 * 3600.0, {heat});
    // In equilibrium the zone sits at supply + heat/G for the final supply.
    const double expected =
        room.crac(0).supply_temp_c() + heat / zone.conductance_w_per_c;
    ASSERT_NEAR(room.zone(0).temperature_c(), expected, 0.2) << "heat " << heat;
    ASSERT_NEAR(room.heat_removal_w(), heat, heat * 0.02 + 10.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThermalProperty, ::testing::Values(41, 42));

}  // namespace
}  // namespace epm::thermal
