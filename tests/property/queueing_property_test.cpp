// Randomized invariant sweeps for the queueing formulas.
#include <gtest/gtest.h>

#include "cluster/queueing.h"
#include "core/rng.h"

namespace epm::cluster {
namespace {

class QueueingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueingProperty, ErlangCIsAProbability) {
  Rng rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    const auto servers = static_cast<std::size_t>(rng.uniform_int(1, 64));
    const double offered = rng.uniform(0.0, static_cast<double>(servers) * 0.999);
    const double pw = erlang_c(offered, servers);
    ASSERT_GE(pw, 0.0);
    ASSERT_LE(pw, 1.0 + 1e-12) << "offered " << offered << " n " << servers;
  }
}

TEST_P(QueueingProperty, ErlangCMonotoneInOfferedLoad) {
  Rng rng(GetParam() + 10);
  for (int round = 0; round < 100; ++round) {
    const auto servers = static_cast<std::size_t>(rng.uniform_int(1, 32));
    const double a = rng.uniform(0.0, static_cast<double>(servers) * 0.99);
    const double b = rng.uniform(a, static_cast<double>(servers) * 0.999);
    ASSERT_LE(erlang_c(a, servers), erlang_c(b, servers) + 1e-12);
  }
}

TEST_P(QueueingProperty, MoreServersNeverHurt) {
  Rng rng(GetParam() + 20);
  for (int round = 0; round < 100; ++round) {
    const double mu = rng.uniform(1.0, 100.0);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const double lambda = rng.uniform(0.0, static_cast<double>(n) * mu * 0.95);
    ASSERT_LE(mmn_response_time_s(lambda, mu, n + 1),
              mmn_response_time_s(lambda, mu, n) + 1e-12);
  }
}

TEST_P(QueueingProperty, ResponseAlwaysAtLeastServiceTime) {
  Rng rng(GetParam() + 30);
  for (int round = 0; round < 200; ++round) {
    const double mu = rng.uniform(1.0, 100.0);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 16));
    const double lambda = rng.uniform(0.0, static_cast<double>(n) * mu * 0.95);
    ASSERT_GE(mmn_response_time_s(lambda, mu, n), 1.0 / mu - 1e-12);
    const double rho = rng.uniform(0.0, 0.99);
    ASSERT_GE(mg1ps_response_time_s(1.0 / mu, rho), 1.0 / mu - 1e-12);
  }
}

TEST_P(QueueingProperty, QuantilesMonotoneInQ) {
  Rng rng(GetParam() + 40);
  for (int round = 0; round < 100; ++round) {
    const double mean = rng.uniform(0.001, 10.0);
    const double q1 = rng.uniform(0.01, 0.98);
    const double q2 = rng.uniform(q1, 0.99);
    ASSERT_LE(response_quantile_s(mean, q1), response_quantile_s(mean, q2) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueingProperty, ::testing::Values(5, 6));

}  // namespace
}  // namespace epm::cluster
