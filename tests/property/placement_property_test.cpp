// Randomized invariant sweeps for every placement algorithm: whatever the
// input population, a placement must respect host capacities in all four
// resource dimensions, produce valid indices, and honor its special
// guarantees (IO-intensive separation for interference_aware).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.h"
#include "vm/interference.h"
#include "vm/placement.h"

namespace epm::vm {
namespace {

std::vector<VmSpec> random_population(Rng& rng, std::size_t count) {
  std::vector<VmSpec> vms(count);
  for (std::size_t i = 0; i < count; ++i) {
    vms[i].id = i;
    vms[i].cpu_cores = rng.uniform(0.5, 8.0);
    vms[i].disk_iops = rng.uniform(1.0, 250.0);
    vms[i].net_mbps = rng.uniform(1.0, 300.0);
    vms[i].memory_gb = rng.uniform(1.0, 24.0);
    if (rng.bernoulli(0.4)) {
      TimeSeries profile(0.0, 3600.0);
      const double phase = rng.uniform(0.0, 24.0);
      for (int h = 0; h < 24; ++h) {
        profile.push_back(0.6 + 0.4 * std::cos(2.0 * std::numbers::pi *
                                               (h - phase) / 24.0));
      }
      vms[i].load_profile = profile;
    }
  }
  return vms;
}

void assert_capacities_respected(const std::vector<VmSpec>& vms,
                                 const std::vector<HostSpec>& hosts,
                                 const Placement& placement) {
  ASSERT_EQ(placement.assignment.size(), vms.size());
  std::vector<HostUsage> usage(hosts.size());
  std::size_t placed = 0;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const std::size_t h = placement.assignment[i];
    if (h == kUnplaced) continue;
    ASSERT_LT(h, hosts.size());
    usage[h] = add_usage(usage[h], vms[i]);
    ++placed;
  }
  ASSERT_EQ(placed + placement.unplaced, vms.size());
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    ASSERT_LE(usage[h].cpu_cores, hosts[h].cpu_cores + 1e-6);
    ASSERT_LE(usage[h].disk_iops, hosts[h].disk_iops + 1e-6);
    ASSERT_LE(usage[h].net_mbps, hosts[h].net_mbps + 1e-6);
    ASSERT_LE(usage[h].memory_gb, hosts[h].memory_gb + 1e-6);
  }
}

class PlacementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementProperty, AllAlgorithmsRespectCapacities) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const auto vms =
        random_population(rng, static_cast<std::size_t>(rng.uniform_int(1, 40)));
    std::vector<HostSpec> hosts(static_cast<std::size_t>(rng.uniform_int(1, 12)));
    for (std::size_t h = 0; h < hosts.size(); ++h) hosts[h].id = h;

    assert_capacities_respected(vms, hosts, first_fit_decreasing(vms, hosts));
    assert_capacities_respected(vms, hosts, interference_aware(vms, hosts));
    assert_capacities_respected(vms, hosts, correlation_aware(vms, hosts));
  }
}

TEST_P(PlacementProperty, InterferenceAwareLimitsIoTenants) {
  Rng rng(GetParam() + 77);
  InterferenceConfig config;
  for (int round = 0; round < 30; ++round) {
    const auto vms =
        random_population(rng, static_cast<std::size_t>(rng.uniform_int(2, 30)));
    std::vector<HostSpec> hosts(8);
    for (std::size_t h = 0; h < hosts.size(); ++h) hosts[h].id = h;
    const auto placement = interference_aware(vms, hosts, config, 1);
    for (const auto& members : placement.by_host(hosts.size())) {
      std::size_t io_heavy = 0;
      for (auto m : members) {
        if (vms[m].disk_iops > config.io_intensive_fraction * hosts[0].disk_iops) {
          ++io_heavy;
        }
      }
      ASSERT_LE(io_heavy, 1u);
    }
  }
}

TEST_P(PlacementProperty, HostsUsedConsistentWithAssignment) {
  Rng rng(GetParam() + 178);
  const auto vms = random_population(rng, 25);
  std::vector<HostSpec> hosts(10);
  for (std::size_t h = 0; h < hosts.size(); ++h) hosts[h].id = h;
  for (const auto& placement :
       {first_fit_decreasing(vms, hosts), interference_aware(vms, hosts),
        correlation_aware(vms, hosts)}) {
    std::vector<bool> used(hosts.size(), false);
    for (std::size_t h : placement.assignment) {
      if (h != kUnplaced) used[h] = true;
    }
    std::size_t count = 0;
    for (bool u : used) {
      if (u) ++count;
    }
    ASSERT_EQ(count, placement.hosts_used);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace epm::vm
