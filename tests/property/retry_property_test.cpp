// Randomized invariant sweeps for the overload-defense stack:
//
//   * breaker safety — allow() is never true while the breaker is open, and
//     half-open epochs never grant more than the probe budget;
//   * breaker liveness — an open breaker always matures into half-open once
//     open_duration_s elapses, and healthy probes eventually close it;
//   * determinism — the same seeded drive reproduces the same state/verdict
//     sequence bit-for-bit;
//   * retry-budget conservation — all four ClientLedger identities hold at
//     every epoch boundary under arbitrary admission verdicts, service
//     delays, and mid-run disconnect storms.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/admission.h"
#include "core/rng.h"
#include "workload/client_population.h"

namespace epm {
namespace {

cluster::CircuitBreakerConfig random_breaker_config(Rng& rng) {
  cluster::CircuitBreakerConfig config;
  config.failure_ratio = rng.uniform(0.1, 1.0);
  config.min_volume = static_cast<std::uint64_t>(rng.uniform_int(1, 50));
  config.open_duration_s = rng.uniform(0.0, 10.0);
  config.half_open_probes = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
  config.close_after_healthy_epochs =
      static_cast<std::size_t>(rng.uniform_int(1, 4));
  return config;
}

/// Drives a breaker through `epochs` epochs of random traffic and failure
/// mix, asserting the safety properties every epoch. Returns a trace of
/// per-epoch (state, granted) pairs for determinism comparison.
std::vector<std::pair<int, int>> drive_breaker(
    const cluster::CircuitBreakerConfig& config, std::uint64_t seed,
    int epochs) {
  Rng rng(seed);
  cluster::CircuitBreaker breaker(config);
  std::vector<std::pair<int, int>> trace;
  for (int e = 0; e < epochs; ++e) {
    const double t0 = e;
    breaker.begin_epoch(t0);
    const auto state = breaker.state();
    const int offered = static_cast<int>(rng.uniform_int(0, 60));
    int granted = 0;
    for (int i = 0; i < offered; ++i) granted += breaker.allow() ? 1 : 0;

    // Safety: an open breaker leaks nothing; half-open stays within the
    // probe budget; closed admits everything.
    if (state == cluster::BreakerState::kOpen) {
      EXPECT_EQ(granted, 0) << "epoch " << e;
    } else if (state == cluster::BreakerState::kHalfOpen) {
      EXPECT_LE(granted,
                static_cast<int>(breaker.config().half_open_probes))
          << "epoch " << e;
    } else {
      EXPECT_EQ(granted, offered) << "epoch " << e;
    }

    // Random downstream outcomes for whatever was admitted.
    const auto observations = static_cast<std::uint64_t>(granted);
    const auto failures = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(observations)));
    breaker.on_epoch_end(observations, failures, t0 + 1.0);
    trace.emplace_back(static_cast<int>(state), granted);
  }
  return trace;
}

class RetryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetryProperty, BreakerNeverServesWhileOpenAndProbesStayBounded) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const auto config = random_breaker_config(rng);
    drive_breaker(config, rng.uniform_int(1, 1 << 30), 200);
  }
}

TEST_P(RetryProperty, BreakerDriveIsDeterministicUnderSeed) {
  Rng rng(GetParam());
  const auto config = random_breaker_config(rng);
  const auto seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  EXPECT_EQ(drive_breaker(config, seed, 300), drive_breaker(config, seed, 300));
}

TEST(CircuitBreakerLiveness, OpenAlwaysMaturesAndHealthyProbesClose) {
  cluster::CircuitBreakerConfig config;
  config.open_duration_s = 7.0;
  config.half_open_probes = 2;
  config.close_after_healthy_epochs = 3;
  cluster::CircuitBreaker breaker(config);
  breaker.begin_epoch(0.0);
  breaker.on_epoch_end(100, 100, 1.0);
  ASSERT_EQ(breaker.state(), cluster::BreakerState::kOpen);
  // Strictly before open_duration_s: still open.
  breaker.begin_epoch(7.9);
  EXPECT_EQ(breaker.state(), cluster::BreakerState::kOpen);
  // At/after maturity: half-open, and three healthy probe epochs close it.
  double t = 8.0;
  breaker.begin_epoch(t);
  ASSERT_EQ(breaker.state(), cluster::BreakerState::kHalfOpen);
  for (int e = 0; e < 3; ++e) {
    EXPECT_TRUE(breaker.allow());
    breaker.on_epoch_end(1, 0, t + 1.0);
    t += 1.0;
    if (e < 2) {
      breaker.begin_epoch(t);
      ASSERT_EQ(breaker.state(), cluster::BreakerState::kHalfOpen);
    }
  }
  EXPECT_EQ(breaker.state(), cluster::BreakerState::kClosed);
}

workload::ClientPopulationConfig random_population_config(Rng& rng) {
  workload::ClientPopulationConfig config;
  config.clients = static_cast<std::size_t>(rng.uniform_int(50, 500));
  config.think_time_s = rng.uniform(2.0, 30.0);
  config.request_timeout_s = rng.uniform(1.0, 6.0);
  config.reconnect_spread_s = rng.uniform(1.0, 20.0);
  config.start_spread_s = rng.uniform(0.0, 10.0);
  const workload::RetryBackoff backoffs[] = {
      workload::RetryBackoff::kImmediate, workload::RetryBackoff::kFixed,
      workload::RetryBackoff::kExponential};
  config.retry.backoff = backoffs[rng.uniform_int(0, 2)];
  config.retry.base_delay_s = rng.uniform(0.0, 3.0);
  config.retry.multiplier = rng.uniform(1.0, 3.0);
  config.retry.max_delay_s = rng.uniform(3.0, 30.0);
  config.retry.jitter_frac = rng.uniform(0.0, 0.9);
  config.retry.max_attempts = static_cast<std::size_t>(rng.uniform_int(1, 6));
  // Half the draws let abandoned clients come back.
  config.retry.abandon_cooldown_s =
      rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform(1.0, 20.0) : 0.0;
  config.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  return config;
}

// Conservation under arbitrary drive: random admission verdicts, random
// service order and delay (including stale completions after the client
// moved on), and disconnect storms — the four ledger identities must hold
// at every epoch boundary, and every intent must be accounted for at the
// horizon.
TEST_P(RetryProperty, RetryBudgetIsConservedUnderArbitraryDrive) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const auto config = random_population_config(rng);
    workload::ClientPopulation pop(config);
    std::deque<std::uint32_t> queued;
    for (int epoch = 0; epoch < 120; ++epoch) {
      const double t0 = epoch;
      const double t1 = t0 + 1.0;
      for (const std::uint32_t id : pop.collect_due(t0, 1.0)) {
        if (rng.uniform(0.0, 1.0) < 0.3) {
          pop.on_rejected(id, t0);
        } else {
          pop.on_admitted(id, t0);
          queued.push_back(id);
        }
      }
      // Serve a random amount of the backlog; under-capacity epochs let the
      // queue build past the client timeout, producing stale completions.
      const auto serves = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(queued.size())));
      for (std::size_t i = 0; i < serves; ++i) {
        pop.on_served(queued.front(), t1);
        queued.pop_front();
      }
      pop.expire_timeouts(t1);
      if (rng.uniform(0.0, 1.0) < 0.05) {
        pop.disconnect_fraction(rng.uniform(0.0, 1.0), t1);
      }
      ASSERT_TRUE(pop.conservation_ok())
          << "round " << round << " epoch " << epoch << ": "
          << pop.conservation_report();
    }
    // Horizon accounting: issued attempts = answered + still waiting.
    const auto& led = pop.ledger();
    ASSERT_EQ(led.attempts, led.intents + led.retries);
    ASSERT_EQ(led.intents,
              led.served + led.abandoned + led.disconnected_intents +
                  static_cast<std::uint64_t>(pop.in_flight()));
  }
}

// The population's attempt stream is a pure function of (config, verdicts):
// identical drives reproduce identical ledgers bit-for-bit.
TEST_P(RetryProperty, PopulationDriveIsDeterministicUnderSeed) {
  Rng meta(GetParam());
  const auto config = random_population_config(meta);
  const auto drive_seed =
      static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 30));
  auto drive = [&]() {
    Rng rng(drive_seed);
    workload::ClientPopulation pop(config);
    std::uint64_t checksum = 0;
    for (int epoch = 0; epoch < 100; ++epoch) {
      const double t0 = epoch;
      for (const std::uint32_t id : pop.collect_due(t0, 1.0)) {
        checksum = checksum * 1315423911u + id;
        if (rng.uniform(0.0, 1.0) < 0.4) {
          pop.on_rejected(id, t0);
        } else {
          pop.on_admitted(id, t0);
          pop.on_served(id, t0 + 0.5);
        }
      }
      pop.expire_timeouts(t0 + 1.0);
    }
    return std::make_pair(checksum, pop.ledger().attempts);
  };
  EXPECT_EQ(drive(), drive());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryProperty,
                         ::testing::Values(404, 505, 606));

}  // namespace
}  // namespace epm
