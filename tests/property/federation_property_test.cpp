// Property tests for the conservative federation protocol.
//
// These pin the safety contract itself rather than any one world model:
// no event fires before the committed horizon, cross-shard deliveries
// respect the per-pair lookahead floor, per-(src,dst) mailboxes are FIFO
// at equal timestamps, and every way of breaking the protocol (undersized
// delays, shard impersonation, re-entrant runs, malformed configs) is
// rejected loudly instead of silently corrupting the event order.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "sim/sharded_simulator.h"

namespace epm::sim {
namespace {

ShardedConfig uniform_config(std::size_t shards, std::size_t threads,
                             double lookahead_s) {
  ShardedConfig config;
  config.shards = shards;
  config.threads = threads;
  config.uniform_lookahead_s = lookahead_s;
  return config;
}

// ---------------------------------------------------------------------------
// Conservative safety
// ---------------------------------------------------------------------------

TEST(FederationProperty, NoEventFiresBeforeTheCommittedHorizon) {
  // horizon_s() is the completed execution horizon, advanced at each
  // barrier AFTER the window runs — so from inside any event callback the
  // current event's timestamp must be at or beyond it, or the coordinator
  // committed a range it had not actually finished. Serial federation
  // (threads = 1) so reading horizon_s() from callbacks is race-free.
  ShardedSimulator fed(uniform_config(3, 1, 0.05));
  std::vector<std::pair<double, double>> samples;  // (event time, horizon)
  SplitMix64 rng(99);

  // A little mesh of relaying events: each hop logs, then relays to the
  // next shard with a delay just above the floor plus jitter.
  struct Relay {
    ShardedSimulator* fed;
    std::vector<std::pair<double, double>>* samples;
    SplitMix64* rng;
    void operator()(std::size_t shard, int hops) const {
      const double now = fed->shard(shard).now();
      samples->emplace_back(now, fed->horizon_s());
      if (hops <= 0) return;
      const double jitter =
          static_cast<double>(rng->next() >> 11) * 0x1.0p-53 * 0.2;
      const std::size_t dst = (shard + 1) % fed->shard_count();
      fed->send(shard, dst, 0.05 + 1e-9 + jitter,
                [self = *this, dst, hops] { self(dst, hops - 1); });
    }
  };
  const Relay relay{&fed, &samples, &rng};
  for (std::size_t s = 0; s < 3; ++s) {
    for (int r = 0; r < 20; ++r) {
      const double start =
          static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
      fed.shard(s).schedule_at(start, [relay, s] { relay(s, 40); });
    }
  }
  fed.run_all();

  ASSERT_GE(samples.size(), 60u * 41u);
  for (const auto& [when, horizon] : samples) {
    ASSERT_GE(when, horizon);
  }
  EXPECT_EQ(fed.pending(), 0u);
}

TEST(FederationProperty, CrossShardDeliveryRespectsTheLookaheadFloor) {
  // Every cross-shard message carries its send time; on arrival the
  // destination clock must be at least send time + the pair's floor.
  // Violations are counted per destination shard (each shard's kernel only
  // writes its own slot), so this runs race-free at 8 worker threads.
  ShardedConfig config;
  config.shards = 4;
  config.threads = 8;
  config.lookahead_s.assign(16, 0.0);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t d = 0; d < 4; ++d) {
      if (s != d) config.lookahead_s[s * 4 + d] = 0.01 + 0.002 * (s * 4 + d);
    }
  }
  ShardedSimulator fed(config);
  std::vector<std::size_t> violations(4, 0);
  std::vector<std::size_t> arrivals(4, 0);
  SplitMix64 seeder(7);

  struct Hop {
    ShardedSimulator* fed;
    const std::vector<double>* floors;
    std::vector<std::size_t>* violations;
    std::vector<std::size_t>* arrivals;
    void operator()(std::size_t shard, std::uint64_t id) const {
      const double now = fed->shard(shard).now();
      if (id > 4000) return;
      SplitMix64 rng(id * 0x9e3779b97f4a7c15ULL + shard);
      const std::size_t dst = (shard + 1 + rng.next() % 3) % 4;
      const double floor = (*floors)[shard * 4 + dst];
      const double delay =
          floor + static_cast<double>(rng.next() >> 11) * 0x1.0p-53 * 0.5;
      fed->send(shard, dst, delay,
                [self = *this, dst, id, now, floor] {
                  ++(*self.arrivals)[dst];
                  if (self.fed->shard(dst).now() < now + floor) {
                    ++(*self.violations)[dst];
                  }
                  self(dst, id * 2 + 1);
                });
    }
  };
  const Hop hop{&fed, &config.lookahead_s, &violations, &arrivals};
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::uint64_t r = 1; r <= 50; ++r) {
      const double start =
          static_cast<double>(SplitMix64::mix(seeder.next()) >> 11) *
          0x1.0p-53;
      fed.shard(s).schedule_at(start, [hop, s, r] { hop(s, r); });
    }
  }
  fed.run_all();

  std::size_t total = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    total += arrivals[d];
    EXPECT_EQ(violations[d], 0u) << "destination shard " << d;
  }
  EXPECT_GT(total, 1000u);
}

// ---------------------------------------------------------------------------
// Mailbox ordering
// ---------------------------------------------------------------------------

TEST(FederationProperty, MailboxIsFifoPerPairAtEqualTimestamps) {
  // Two sources interleave sends to one destination, all for the same
  // delivery instant. Per-(src,dst) FIFO must hold, and the barrier drain
  // order (src ascending, then append order) pins the cross-source tie
  // deterministically.
  ShardedSimulator fed(uniform_config(3, 1, 0.5));
  std::vector<int> order;
  const auto mark = [&order](int tag) { return [&order, tag] { order.push_back(tag); }; };
  fed.send(0, 2, 1.0, mark(1));  // src 0, first
  fed.send(1, 2, 1.0, mark(3));  // src 1, first
  fed.send(0, 2, 1.0, mark(2));  // src 0, second
  fed.send(1, 2, 1.0, mark(4));  // src 1, second
  fed.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(FederationProperty, MidRunEqualTimestampsDrainInSourceOrder) {
  // The same tie arranged from inside events: shard 1 and shard 0 both
  // target shard 2 with messages landing at the same instant; the barrier
  // drain delivers source 0's first regardless of which worker ran first.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ShardedSimulator fed(uniform_config(3, threads, 0.5));
    std::vector<int> order;
    fed.shard(1).schedule_at(1.0, [&fed, &order] {
      fed.send(1, 2, 2.0, [&order] { order.push_back(10); });
    });
    fed.shard(0).schedule_at(1.0, [&fed, &order] {
      fed.send(0, 2, 2.0, [&order] { order.push_back(20); });
    });
    fed.run_until(4.0);
    EXPECT_EQ(order, (std::vector<int>{20, 10})) << "threads " << threads;
  }
}

TEST(FederationProperty, SetupSendsAloneStillRun) {
  // A federation whose only work arrives through send() (no local events
  // anywhere) must still execute it — setup-time mailboxes are drained on
  // run entry, not just at window barriers.
  ShardedSimulator fed(uniform_config(2, 1, 0.1));
  bool ran = false;
  fed.send(0, 1, 0.5, [&ran] { ran = true; });
  EXPECT_EQ(fed.run_all(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_EQ(fed.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol violations are rejected loudly
// ---------------------------------------------------------------------------

TEST(FederationProperty, UndersizedSendRejectedAtSetup) {
  ShardedSimulator fed(uniform_config(2, 1, 0.25));
  EXPECT_THROW(fed.send(0, 1, 0.1, [] {}), std::invalid_argument);
  EXPECT_THROW(fed.send(0, 1, 0.24999, [] {}), std::invalid_argument);
  fed.send(0, 1, 0.25, [] {});  // exactly the floor is legal
  // Loopbacks carry no conservative constraint but still reject negatives.
  fed.send(0, 0, 0.0, [] {});
  EXPECT_THROW(fed.send(0, 0, -0.1, [] {}), std::invalid_argument);
}

TEST(FederationProperty, UndersizedSendRejectedFromInsideAnEvent) {
  // The rejection must also fire mid-run, and the exception must surface
  // from run_until on both the serial and the pooled path (worker-thread
  // exceptions are rethrown on the coordinator).
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedSimulator fed(uniform_config(2, threads, 0.25));
    fed.shard(0).schedule_at(1.0, [&fed] { fed.send(0, 1, 0.1, [] {}); });
    EXPECT_THROW(fed.run_until(5.0), std::invalid_argument)
        << "threads " << threads;
  }
}

TEST(FederationProperty, ShardImpersonationRejected) {
  // An event executing on shard 0 may only send as shard 0: sending as
  // shard 1 would corrupt the (src,dst) FIFO and the lookahead proof.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedSimulator fed(uniform_config(2, threads, 0.25));
    fed.shard(0).schedule_at(1.0, [&fed] { fed.send(1, 0, 9.0, [] {}); });
    EXPECT_THROW(fed.run_until(5.0), std::logic_error)
        << "threads " << threads;
  }
}

TEST(FederationProperty, ReentrantRunRejected) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedSimulator fed(uniform_config(2, threads, 0.25));
    fed.shard(0).schedule_at(1.0, [&fed] { fed.run_until(10.0); });
    fed.shard(1).schedule_at(1.0, [] {});  // keep both shards busy
    EXPECT_THROW(fed.run_until(5.0), std::logic_error)
        << "threads " << threads;
  }
}

TEST(FederationProperty, ConfigValidation) {
  // Multi-shard with no lookahead at all: the conservative window width
  // would be zero and no progress is provable.
  EXPECT_THROW(ShardedSimulator(uniform_config(2, 1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(uniform_config(0, 1, 1.0)),
               std::invalid_argument);

  ShardedConfig bad_size;
  bad_size.shards = 2;
  bad_size.lookahead_s = {1.0, 1.0, 1.0};  // must be 2x2
  EXPECT_THROW(ShardedSimulator{bad_size}, std::invalid_argument);

  ShardedConfig zero_entry;
  zero_entry.shards = 2;
  zero_entry.lookahead_s = {0.0, 1.0, 0.0, 0.0};  // [1][0] == 0
  EXPECT_THROW(ShardedSimulator{zero_entry}, std::invalid_argument);

  ShardedConfig negative_entry;
  negative_entry.shards = 2;
  negative_entry.lookahead_s = {0.0, 1.0, -0.5, 0.0};
  EXPECT_THROW(ShardedSimulator{negative_entry}, std::invalid_argument);

  ShardedConfig infinite_entry;
  infinite_entry.shards = 2;
  infinite_entry.lookahead_s = {0.0, 1.0,
                                std::numeric_limits<double>::infinity(), 0.0};
  EXPECT_THROW(ShardedSimulator{infinite_entry}, std::invalid_argument);

  // Diagonal entries are ignored — garbage there must not reject.
  ShardedConfig garbage_diagonal;
  garbage_diagonal.shards = 2;
  garbage_diagonal.lookahead_s = {-7.0, 0.5, 0.5, -7.0};
  ShardedSimulator ok{garbage_diagonal};
  EXPECT_EQ(ok.min_lookahead_s(), 0.5);
  EXPECT_EQ(ok.lookahead_s(0, 1), 0.5);
  EXPECT_EQ(ok.lookahead_s(0, 0),
            std::numeric_limits<double>::infinity());
}

TEST(FederationProperty, IndexAndArgumentValidation) {
  ShardedSimulator fed(uniform_config(2, 1, 0.25));
  EXPECT_THROW(fed.shard(2), std::invalid_argument);
  EXPECT_THROW(fed.send(2, 0, 1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(fed.send(0, 2, 1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(fed.send(0, 1, 1.0, EventFn{}), std::invalid_argument);
  EXPECT_THROW(fed.run_until(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(fed.lookahead_s(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace epm::sim
