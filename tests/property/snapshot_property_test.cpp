// Property suite for deterministic checkpoint/restore (the robustness
// acceptance grid): for every (seed, shard count, thread count) combination
// the federated chaos world must (a) run bit-identically regardless of the
// worker-thread count and (b) survive a mid-run kill-and-restore with a
// bit-identical continuation.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "faults/chaos_fleet.h"

namespace epm::faults {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 17, 424242};
constexpr std::size_t kShards[] = {1, 2, 4};
constexpr std::size_t kThreads[] = {1, 2, 8};

ChaosFleetConfig grid_config(std::uint64_t seed, std::size_t shards,
                             std::size_t threads) {
  ChaosFleetConfig config;
  config.dcs = shards;
  config.threads = threads;
  config.epoch_s = 0.5;
  config.drive_until_s = 16.0;
  config.horizon_s = 24.0;
  config.arrival_rate_rps = 100.0;
  config.seed = seed;
  return config;
}

std::string label(std::uint64_t seed, std::size_t shards,
                  std::size_t threads) {
  return "seed=" + std::to_string(seed) +
         " shards=" + std::to_string(shards) +
         " threads=" + std::to_string(threads);
}

TEST(SnapshotProperty, OutcomesAreThreadCountInvariant) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::size_t shards : kShards) {
      const ChaosFleetOutcome baseline =
          run_chaos_fleet(grid_config(seed, shards, 1));
      EXPECT_TRUE(baseline.conservation_ok)
          << label(seed, shards, 1) << ": " << baseline.conservation_report;
      for (const std::size_t threads : kThreads) {
        const ChaosFleetOutcome out =
            run_chaos_fleet(grid_config(seed, shards, threads));
        EXPECT_TRUE(chaos_outcomes_equal(baseline, out))
            << label(seed, shards, threads)
            << " diverged from the serial run";
      }
    }
  }
}

TEST(SnapshotProperty, KillAndRestoreIsBitIdenticalAcrossTheGrid) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::size_t shards : kShards) {
      for (const std::size_t threads : kThreads) {
        const ChaosRestoreReport r = run_chaos_fleet_with_restore(
            grid_config(seed, shards, threads), /*snapshot_at_s=*/8.0,
            /*kill_at_s=*/12.0);
        EXPECT_TRUE(r.identical) << label(seed, shards, threads);
        EXPECT_TRUE(chaos_outcomes_equal(r.uninterrupted, r.restored))
            << label(seed, shards, threads);
        EXPECT_GT(r.snapshot_bytes, 0U) << label(seed, shards, threads);
        EXPECT_TRUE(r.restored.conservation_ok)
            << label(seed, shards, threads) << ": "
            << r.restored.conservation_report;
      }
    }
  }
}

TEST(SnapshotProperty, SnapshotsAreSeedSensitive) {
  // Restore does not launder determinism: different seeds stay different
  // runs even through the snapshot path.
  const ChaosRestoreReport a =
      run_chaos_fleet_with_restore(grid_config(1, 2, 1), 8.0, 12.0);
  const ChaosRestoreReport b =
      run_chaos_fleet_with_restore(grid_config(17, 2, 1), 8.0, 12.0);
  EXPECT_TRUE(a.identical);
  EXPECT_TRUE(b.identical);
  EXPECT_FALSE(chaos_outcomes_equal(a.restored, b.restored));
}

}  // namespace
}  // namespace epm::faults
