#include "dvfs/governors.h"

#include <gtest/gtest.h>

namespace epm::dvfs {
namespace {

cluster::ServiceClusterConfig cluster_config() {
  cluster::ServiceClusterConfig config;
  config.server_count = 10;
  config.initially_active = 10;
  return config;
}

workload::OfferedLoad load_of(double rate) {
  workload::OfferedLoad load;
  load.arrival_rate_per_s = rate;
  load.service_demand_s = 0.01;
  return load;
}

TEST(StaticGovernor, AlwaysReturnsPinnedState) {
  cluster::ServiceCluster cluster(cluster_config());
  StaticGovernor gov(2);
  const auto r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(gov.decide(cluster, r), 2u);
  EXPECT_EQ(gov.name(), "static");
}

TEST(OndemandGovernor, StepsDownWhenUnderloaded) {
  cluster::ServiceCluster cluster(cluster_config());
  OndemandGovernor gov(0, OndemandConfig{});
  const auto r = cluster.run_epoch(60.0, load_of(100.0));  // rho 0.1
  EXPECT_EQ(gov.decide(cluster, r), 1u);
  EXPECT_EQ(gov.decide(cluster, r), 2u);  // keeps stepping down
}

TEST(OndemandGovernor, JumpsToMaxWhenOverloaded) {
  cluster::ServiceCluster cluster(cluster_config());
  OndemandGovernor gov(3, OndemandConfig{});
  const auto r = cluster.run_epoch(60.0, load_of(900.0));  // rho 0.9
  EXPECT_EQ(gov.decide(cluster, r), 0u);
}

TEST(OndemandGovernor, HoldsInsideBand) {
  cluster::ServiceCluster cluster(cluster_config());
  OndemandGovernor gov(2, OndemandConfig{});
  const auto r = cluster.run_epoch(60.0, load_of(600.0));  // rho 0.6
  EXPECT_EQ(gov.decide(cluster, r), 2u);
}

TEST(OndemandGovernor, ClampsAtSlowest) {
  cluster::ServiceCluster cluster(cluster_config());
  OndemandGovernor gov(4, OndemandConfig{});
  const auto r = cluster.run_epoch(60.0, load_of(10.0));
  EXPECT_EQ(gov.decide(cluster, r), 4u);  // already slowest (5 states)
}

TEST(OndemandGovernor, RejectsBadBand) {
  OndemandConfig bad;
  bad.downscale_utilization = 0.9;
  EXPECT_THROW(OndemandGovernor(0, bad), std::invalid_argument);
}

TEST(ResponseTimePiGovernor, SpeedsUpWhenSlow) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 0.011;  // essentially always "slow"
  cluster::ServiceCluster cluster(config);
  cluster.set_uniform_pstate(4);
  ResponseTimePiGovernor gov;
  auto r = cluster.run_epoch(60.0, load_of(450.0));  // rho 0.9 at half speed
  // Error positive -> speed rises -> a faster P-state.
  const auto p = gov.decide(cluster, r);
  EXPECT_LT(p, 4u);
}

TEST(ResponseTimePiGovernor, SlowsDownWhenFast) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 1.0;  // hugely relaxed
  cluster::ServiceCluster cluster(config);
  ResponseTimePiGovernor gov;
  std::size_t p = 0;
  for (int i = 0; i < 20; ++i) {
    const auto r = cluster.run_epoch(60.0, load_of(100.0));
    p = gov.decide(cluster, r);
    cluster.set_uniform_pstate(p);
  }
  EXPECT_EQ(p, cluster.power_model().pstate_count() - 1);
}

TEST(PerfSettingGovernor, PicksSlowestMeetingTarget) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 0.5;  // loose: slowest state fine
  cluster::ServiceCluster cluster(config);
  PerfSettingGovernor gov;
  const auto r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(gov.decide(cluster, r), cluster.power_model().pstate_count() - 1);
}

TEST(PerfSettingGovernor, RunsFlatOutWhenTargetTight) {
  cluster::ServiceClusterConfig config = cluster_config();
  config.sla.target_mean_response_s = 0.011;  // barely above service time
  cluster::ServiceCluster cluster(config);
  PerfSettingGovernor gov(1.0);
  const auto r = cluster.run_epoch(60.0, load_of(900.0));
  EXPECT_EQ(gov.decide(cluster, r), 0u);
}

TEST(PerfSettingGovernor, RejectsBadHeadroom) {
  EXPECT_THROW(PerfSettingGovernor(0.0), std::invalid_argument);
  EXPECT_THROW(PerfSettingGovernor(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace epm::dvfs
