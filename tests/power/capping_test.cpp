#include "power/capping.h"

#include <gtest/gtest.h>

#include <numeric>

namespace epm::power {
namespace {

TEST(PlanCaps, NoCappingUnderBudget) {
  const std::vector<double> draws{200.0, 250.0, 300.0};
  const auto decision = plan_caps(draws, 180.0, 1000.0);
  EXPECT_FALSE(decision.capped);
  EXPECT_FALSE(decision.infeasible);
  EXPECT_EQ(decision.caps_w, draws);
  EXPECT_DOUBLE_EQ(decision.shed_w, 0.0);
}

TEST(PlanCaps, CapsMeetBudgetExactly) {
  const std::vector<double> draws{300.0, 300.0, 300.0};  // 900 total
  const auto decision = plan_caps(draws, 180.0, 750.0);
  EXPECT_TRUE(decision.capped);
  EXPECT_FALSE(decision.infeasible);
  const double total =
      std::accumulate(decision.caps_w.begin(), decision.caps_w.end(), 0.0);
  EXPECT_NEAR(total, 750.0, 1e-9);
  EXPECT_NEAR(decision.shed_w, 150.0, 1e-9);
  for (double cap : decision.caps_w) EXPECT_GE(cap, 180.0);
}

TEST(PlanCaps, ProportionalAboveIdle) {
  const std::vector<double> draws{280.0, 200.0};  // dynamic: 100, 20
  const auto decision = plan_caps(draws, 180.0, 420.0);  // shed 60 of 120 dyn
  EXPECT_TRUE(decision.capped);
  // Scale = (420-360)/120 = 0.5.
  EXPECT_NEAR(decision.caps_w[0], 180.0 + 50.0, 1e-9);
  EXPECT_NEAR(decision.caps_w[1], 180.0 + 10.0, 1e-9);
}

TEST(PlanCaps, InfeasibleWhenBudgetBelowIdleFloor) {
  const std::vector<double> draws{300.0, 300.0};
  const auto decision = plan_caps(draws, 180.0, 300.0);  // idle total = 360
  EXPECT_TRUE(decision.capped);
  EXPECT_TRUE(decision.infeasible);
  for (double cap : decision.caps_w) EXPECT_DOUBLE_EQ(cap, 180.0);
}

TEST(PlanCaps, EmptyServerList) {
  const auto decision = plan_caps({}, 180.0, 100.0);
  EXPECT_FALSE(decision.capped);
  EXPECT_TRUE(decision.caps_w.empty());
}

TEST(PlanCaps, RejectsDrawBelowIdle) {
  EXPECT_THROW(plan_caps({100.0}, 180.0, 500.0), std::invalid_argument);
}

TEST(ThrottleForCap, FastestFittingPStateWins) {
  ServerPowerModel model{ServerPowerConfig{}};
  // Generous cap: P0 fits.
  const auto full = throttle_for_cap(model, 0.5, 1000.0);
  EXPECT_EQ(full.pstate, 0u);
  EXPECT_DOUBLE_EQ(full.duty, 1.0);
  // Tight cap between P-states: picks the fastest that fits.
  const double cap = model.active_power_w(2, 0.5) + 1.0;
  const auto mid = throttle_for_cap(model, 0.5, cap);
  EXPECT_LE(model.active_power_w(mid.pstate, 0.5, mid.duty), cap + 1e-9);
  EXPECT_LE(mid.pstate, 2u);
}

TEST(ThrottleForCap, FallsBackToDutyThrottling) {
  ServerPowerModel model{ServerPowerConfig{}};
  const std::size_t slowest = model.pstate_count() - 1;
  // Cap below the slowest P-state's busy power at u=1.
  const double cap = model.active_power_w(slowest, 1.0) - 10.0;
  const auto setting = throttle_for_cap(model, 1.0, cap);
  EXPECT_EQ(setting.pstate, slowest);
  EXPECT_LT(setting.duty, 1.0);
  EXPECT_GE(setting.duty, 0.05);
  EXPECT_LE(model.active_power_w(setting.pstate, 1.0, setting.duty), cap + 1e-9);
}

TEST(ThrottleForCap, DutyFloorRespectedForImpossibleCaps) {
  ServerPowerModel model{ServerPowerConfig{}};
  // Cap below idle cannot be met; duty bottoms out at the floor.
  const auto setting = throttle_for_cap(model, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(setting.duty, 0.05);
}

TEST(ThrottleForCap, ZeroUtilizationKeepsSlowestPlainState) {
  ServerPowerModel model{ServerPowerConfig{}};
  const auto setting = throttle_for_cap(model, 0.0, model.idle_power_w() + 1.0);
  EXPECT_DOUBLE_EQ(setting.duty, 1.0);
}

}  // namespace
}  // namespace epm::power
