#include "power/ups.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epm::power {
namespace {

TEST(UpsBattery, StartsAtConfiguredSoc) {
  UpsBatteryConfig config;
  config.initial_soc = 0.5;
  UpsBattery ups(config);
  EXPECT_NEAR(ups.state_of_charge(), 0.5, 1e-12);
  EXPECT_FALSE(ups.depleted());
}

TEST(UpsBattery, DischargeDeliversEnergy) {
  UpsBattery ups{UpsBatteryConfig{}};
  const double before = ups.stored_energy_j();
  const double delivered = ups.discharge(1.0e6, 60.0);
  EXPECT_DOUBLE_EQ(delivered, 6.0e7);
  EXPECT_DOUBLE_EQ(ups.stored_energy_j(), before - delivered);
}

TEST(UpsBattery, DischargeLimitedByRateAndCapacity) {
  UpsBatteryConfig config;
  config.energy_capacity_j = 1000.0;
  config.max_discharge_w = 10.0;
  UpsBattery ups(config);
  // Load above limit is clamped to the discharge limit.
  EXPECT_DOUBLE_EQ(ups.discharge(100.0, 1.0), 10.0);
  // Draining more than stored empties it.
  const double delivered = ups.discharge(10.0, 1e6);
  EXPECT_DOUBLE_EQ(delivered, 990.0);
  EXPECT_TRUE(ups.depleted());
  EXPECT_DOUBLE_EQ(ups.discharge(10.0, 10.0), 0.0);
}

TEST(UpsBattery, ChargeRespectsEfficiencyAndHeadroom) {
  UpsBatteryConfig config;
  config.energy_capacity_j = 1000.0;
  config.initial_soc = 0.0;
  config.max_charge_w = 100.0;
  config.charge_efficiency = 0.5;
  UpsBattery ups(config);
  const double drawn = ups.charge(100.0, 10.0);  // 1000 J in, 500 J stored
  EXPECT_DOUBLE_EQ(ups.stored_energy_j(), 500.0);
  EXPECT_DOUBLE_EQ(drawn, 1000.0);
  // Filling to the brim stops at capacity.
  ups.charge(100.0, 1e9);
  EXPECT_DOUBLE_EQ(ups.stored_energy_j(), 1000.0);
}

TEST(UpsBattery, RideThroughTime) {
  UpsBatteryConfig config;
  config.energy_capacity_j = 3600.0;
  UpsBattery ups(config);
  EXPECT_DOUBLE_EQ(ups.ride_through_s(1.0), 3600.0);
  EXPECT_TRUE(std::isinf(ups.ride_through_s(0.0)));
  EXPECT_DOUBLE_EQ(ups.ride_through_s(config.max_discharge_w * 2.0), 0.0);
}

TEST(UpsBattery, RejectsBadInput) {
  UpsBattery ups{UpsBatteryConfig{}};
  EXPECT_THROW(ups.discharge(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ups.charge(1.0, -1.0), std::invalid_argument);
  UpsBatteryConfig bad;
  bad.charge_efficiency = 0.0;
  EXPECT_THROW(UpsBattery{bad}, std::invalid_argument);
  bad = UpsBatteryConfig{};
  bad.initial_soc = 2.0;
  EXPECT_THROW(UpsBattery{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::power
