#include "power/psu.h"

#include <gtest/gtest.h>

namespace epm::power {
namespace {

TEST(Psu, EfficiencyWithinConfiguredBounds) {
  Psu psu{PsuConfig{}};
  for (double out = 0.0; out <= 450.0; out += 25.0) {
    const double eff = psu.efficiency_at(out);
    ASSERT_GE(eff, 0.77);
    ASSERT_LE(eff, 0.92 + 1e-9);
  }
}

TEST(Psu, PeakEfficiencyAtConfiguredLoadPoint) {
  PsuConfig config;
  Psu psu(config);
  const double at_peak = psu.efficiency_at(config.rated_output_w * 0.5);
  EXPECT_NEAR(at_peak, config.peak_efficiency, 1e-9);
  EXPECT_LT(psu.efficiency_at(config.rated_output_w * 0.1), at_peak);
  EXPECT_LE(psu.efficiency_at(config.rated_output_w), at_peak);
}

TEST(Psu, LightLoadIsLessEfficient) {
  Psu psu{PsuConfig{}};
  EXPECT_LT(psu.efficiency_at(45.0), psu.efficiency_at(225.0));
}

TEST(Psu, InputPowerExceedsOutput) {
  Psu psu{PsuConfig{}};
  for (double out : {50.0, 150.0, 300.0, 450.0}) {
    EXPECT_GT(psu.input_power_w(out), out);
    EXPECT_NEAR(psu.loss_w(out), psu.input_power_w(out) - out, 1e-9);
  }
  EXPECT_DOUBLE_EQ(psu.input_power_w(0.0), 0.0);
}

TEST(Psu, InputPowerMonotoneInOutput) {
  Psu psu{PsuConfig{}};
  double prev = 0.0;
  for (double out = 10.0; out <= 450.0; out += 10.0) {
    const double in = psu.input_power_w(out);
    ASSERT_GT(in, prev);
    prev = in;
  }
}

TEST(Psu, RejectsBadConfigAndInput) {
  PsuConfig bad;
  bad.rated_output_w = 0.0;
  EXPECT_THROW(Psu{bad}, std::invalid_argument);
  bad = PsuConfig{};
  bad.efficiency_at_10pct = 0.95;  // above peak
  EXPECT_THROW(Psu{bad}, std::invalid_argument);
  Psu psu{PsuConfig{}};
  EXPECT_THROW(psu.efficiency_at(-1.0), std::invalid_argument);
  EXPECT_THROW(psu.input_power_w(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::power
