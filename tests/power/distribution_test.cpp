#include "power/distribution.h"

#include <gtest/gtest.h>

namespace epm::power {
namespace {

TEST(PowerDistributionTree, SingleNodeConservation) {
  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "grid", 0.0, 0.0, 0.0});
  tree.set_direct_load(tree.root(), 1000.0);
  const auto report = tree.evaluate();
  EXPECT_DOUBLE_EQ(report.utility_draw_w, 1000.0);
  EXPECT_DOUBLE_EQ(report.total_loss_w, 0.0);
}

TEST(PowerDistributionTree, LossesPropagateUpstream) {
  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "grid", 0.0, 0.0, 0.0});
  const NodeId ups = tree.add_node(
      tree.root(), NodeSpec{NodeKind::kUps, "ups", 10000.0, 100.0, 0.10});
  const NodeId rack =
      tree.add_node(ups, NodeSpec{NodeKind::kRack, "rack", 5000.0, 0.0, 0.0});
  tree.set_direct_load(rack, 900.0);
  const auto report = tree.evaluate();
  // Rack is lossless: input == output == 900.
  EXPECT_DOUBLE_EQ(report.flows[rack].input_w, 900.0);
  // UPS: fixed 100 + 900 / 0.9 = 1100.
  EXPECT_NEAR(report.flows[ups].input_w, 1100.0, 1e-9);
  EXPECT_NEAR(report.utility_draw_w, 1100.0, 1e-9);
  EXPECT_NEAR(report.total_loss_w, 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.critical_power_w, 900.0);
}

TEST(PowerDistributionTree, OverloadFlagged) {
  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "grid", 0.0, 0.0, 0.0});
  const NodeId rack =
      tree.add_node(tree.root(), NodeSpec{NodeKind::kRack, "rack", 500.0, 0.0, 0.0});
  tree.set_direct_load(rack, 600.0);
  const auto report = tree.evaluate();
  ASSERT_EQ(report.overloaded.size(), 1u);
  EXPECT_EQ(report.overloaded[0], rack);
  EXPECT_TRUE(report.flows[rack].overloaded);
}

TEST(PowerDistributionTree, ZeroCapacityMeansUnlimited) {
  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "grid", 0.0, 0.0, 0.0});
  tree.set_direct_load(tree.root(), 1e9);
  EXPECT_TRUE(tree.evaluate().overloaded.empty());
}

TEST(PowerDistributionTree, AccessorsAndValidation) {
  PowerDistributionTree tree(NodeSpec{NodeKind::kUtility, "grid", 0.0, 0.0, 0.0});
  EXPECT_THROW(tree.add_node(99, NodeSpec{}), std::invalid_argument);
  EXPECT_THROW(tree.set_direct_load(0, -5.0), std::invalid_argument);
  NodeSpec bad;
  bad.loss_fraction = 1.0;
  EXPECT_THROW(tree.add_node(0, bad), std::invalid_argument);
  EXPECT_EQ(tree.parent(tree.root()), kNoNode);
}

TEST(Tier2Topology, StructureMatchesConfig) {
  Tier2TopologyConfig config;
  config.pdu_count = 3;
  config.racks_per_pdu = 5;
  auto topo = build_tier2_topology(config);
  EXPECT_EQ(topo.rack_ids.size(), 15u);
  EXPECT_EQ(topo.tree.nodes_of_kind(NodeKind::kPdu).size(), 3u);
  EXPECT_EQ(topo.tree.nodes_of_kind(NodeKind::kUps).size(), 1u);
  EXPECT_EQ(topo.tree.nodes_of_kind(NodeKind::kMechanical).size(), 1u);
  EXPECT_EQ(topo.tree.spec(topo.ups_id).kind, NodeKind::kUps);
}

TEST(Tier2Topology, PueNearTwoWithConservativeCooling) {
  // Paper §2.2: "most data centers have PUE close to 2". With distribution
  // losses and a mechanical load comparable to ~80% of IT power, the model
  // should land in that neighborhood.
  Tier2TopologyConfig config;
  auto topo = build_tier2_topology(config);
  const double it_load = 600.0e3;  // 60% of a 1 MW UPS
  const double per_rack = it_load / static_cast<double>(topo.rack_ids.size());
  for (NodeId rack : topo.rack_ids) topo.tree.set_direct_load(rack, per_rack);
  topo.tree.set_direct_load(topo.mechanical_id, 0.8 * it_load);
  const auto report = topo.tree.evaluate();
  EXPECT_DOUBLE_EQ(report.critical_power_w, it_load);
  EXPECT_NEAR(report.mechanical_power_w, 0.8 * it_load, 1e-6);
  EXPECT_GT(report.pue, 1.8);
  EXPECT_LT(report.pue, 2.2);
}

TEST(Tier2Topology, PueImprovesWithLessCooling) {
  Tier2TopologyConfig config;
  auto topo = build_tier2_topology(config);
  const double it_load = 600.0e3;
  const double per_rack = it_load / static_cast<double>(topo.rack_ids.size());
  for (NodeId rack : topo.rack_ids) topo.tree.set_direct_load(rack, per_rack);
  topo.tree.set_direct_load(topo.mechanical_id, 0.8 * it_load);
  const double pue_heavy = topo.tree.evaluate().pue;
  topo.tree.set_direct_load(topo.mechanical_id, 0.2 * it_load);
  const double pue_light = topo.tree.evaluate().pue;
  EXPECT_LT(pue_light, pue_heavy);
  EXPECT_GT(pue_light, 1.0);
}

TEST(ToString, NodeKinds) {
  EXPECT_EQ(to_string(NodeKind::kUps), "UPS");
  EXPECT_EQ(to_string(NodeKind::kRack), "rack");
  EXPECT_EQ(to_string(NodeKind::kMechanical), "mechanical");
}

}  // namespace
}  // namespace epm::power
