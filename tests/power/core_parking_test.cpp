#include "power/core_parking.h"

#include <gtest/gtest.h>

namespace epm::power {
namespace {

CmpConfig homogeneous8() {
  CmpConfig config;  // default: one class of 8 cores
  return config;
}

CmpConfig big_little() {
  CmpConfig config;
  CoreClass big;
  big.name = "big";
  big.count = 4;
  big.capacity_weight = 1.0;
  big.idle_power_w = 8.0;
  big.busy_power_w = 30.0;
  CoreClass little;
  little.name = "little";
  little.count = 4;
  little.capacity_weight = 0.4;
  little.idle_power_w = 2.0;
  little.busy_power_w = 6.0;
  config.classes = {big, little};
  return config;
}

TEST(CmpPowerModel, CapacityAndTotals) {
  CmpPowerModel model(homogeneous8());
  EXPECT_EQ(model.total_cores(), 8u);
  EXPECT_DOUBLE_EQ(model.max_capacity(), 8.0);
  EXPECT_DOUBLE_EQ(model.capacity({4}), 4.0);
  CmpPowerModel hetero(big_little());
  EXPECT_DOUBLE_EQ(hetero.max_capacity(), 4.0 + 1.6);
  EXPECT_DOUBLE_EQ(hetero.capacity({2, 3}), 2.0 + 1.2);
}

TEST(CmpPowerModel, PowerAccounting) {
  CmpPowerModel model(homogeneous8());
  // All parked except nothing: uncore + 8 parked.
  EXPECT_DOUBLE_EQ(model.power_w({0}, 0.0), 60.0 + 8 * 0.5);
  // All cores idle: uncore + 8 * 6.
  EXPECT_DOUBLE_EQ(model.power_w(model.all_cores(), 0.0), 60.0 + 8 * 6.0);
  // All busy: uncore + 8 * 22.
  EXPECT_DOUBLE_EQ(model.power_w(model.all_cores(), 1.0), 60.0 + 8 * 22.0);
  // Half parked at 50% utilization.
  EXPECT_DOUBLE_EQ(model.power_w({4}, 0.5), 60.0 + 4 * 0.5 + 4 * (6.0 + 8.0));
}

TEST(CmpPowerModel, ParkingSavesAtLowLoad) {
  CmpPowerModel model(homogeneous8());
  // Work worth 2 cores: 8 unparked at u=0.25 vs 2 unparked at u=1.
  const double spread = model.power_w(model.all_cores(), 0.25);
  const double parked = model.power_w({2}, 1.0);
  EXPECT_LT(parked, spread);
}

TEST(CmpPowerModel, OptimalSelectionMeetsCapacityAtMinPower) {
  CmpPowerModel model(homogeneous8());
  const auto sel = model.optimal_active_cores(2.0);
  EXPECT_GE(model.capacity(sel), 2.0);
  // Exhaustive check: no selection meeting 2.0 is cheaper.
  const double chosen =
      model.power_w(sel, 2.0 / model.capacity(sel));
  for (std::size_t n = 0; n <= 8; ++n) {
    const double cap = model.capacity({n});
    if (cap < 2.0) continue;
    EXPECT_GE(model.power_w({n}, 2.0 / cap) + 1e-12, chosen) << "n=" << n;
  }
}

TEST(CmpPowerModel, HeterogeneousPrefersLittleCoresForLightWork) {
  CmpPowerModel model(big_little());
  // 0.8 capacity units: two little cores (12 W busy) beat one big (30 W).
  const auto sel = model.optimal_active_cores(0.8);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 2u);
}

TEST(CmpPowerModel, HeterogeneousUsesBigCoresForHeavyWork) {
  CmpPowerModel model(big_little());
  const auto sel = model.optimal_active_cores(5.0);
  EXPECT_GE(sel[0], 4u);  // needs every big core: 4 + 1.6 little max
  EXPECT_GE(model.capacity(sel), 5.0);
}

TEST(CmpPowerModel, Validation) {
  CmpPowerModel model(homogeneous8());
  EXPECT_THROW(model.capacity({9}), std::invalid_argument);
  EXPECT_THROW(model.capacity({1, 1}), std::invalid_argument);
  EXPECT_THROW(model.power_w({4}, 1.5), std::invalid_argument);
  EXPECT_THROW(model.optimal_active_cores(99.0), std::invalid_argument);
  CmpConfig bad = homogeneous8();
  bad.classes[0].busy_power_w = 1.0;  // below idle
  EXPECT_THROW(CmpPowerModel{bad}, std::invalid_argument);
  bad = homogeneous8();
  bad.classes.clear();
  EXPECT_THROW(CmpPowerModel{bad}, std::invalid_argument);
}

TEST(CoreParkingPolicy, UnparksUnderPressureParksWhenIdle) {
  CmpPowerModel model(homogeneous8());
  CoreParkingPolicy policy(model);
  // Park down under light load.
  for (int i = 0; i < 10; ++i) policy.decide(0.1);
  std::size_t unparked = policy.current()[0];
  EXPECT_EQ(unparked, 1u);  // one per decision until the floor
  // Ramp up under pressure.
  for (int i = 0; i < 10; ++i) policy.decide(0.95);
  EXPECT_EQ(policy.current()[0], 8u);
}

TEST(CoreParkingPolicy, HoldsInsideBand) {
  CmpPowerModel model(homogeneous8());
  CoreParkingPolicy policy(model);
  const auto before = policy.current();
  policy.decide(0.6);
  EXPECT_EQ(policy.current(), before);
}

TEST(CoreParkingPolicy, HeterogeneousUnparkOrder) {
  CmpPowerModel model(big_little());
  CoreParkingPolicy policy(model);
  // Park everything possible first.
  for (int i = 0; i < 16; ++i) policy.decide(0.1);
  // little cores (0.4/6 = 0.067 cap/W) are *more* efficient than big
  // (1/30 = 0.033), so unparking should start with little cores.
  const auto before = policy.current();
  policy.decide(0.95);
  const auto after = policy.current();
  EXPECT_EQ(after[1], before[1] + 1);
}

TEST(CoreParkingPolicy, RespectsMinCores) {
  CmpPowerModel model(homogeneous8());
  CoreParkingPolicyConfig config;
  config.min_cores = 3;
  CoreParkingPolicy policy(model, config);
  for (int i = 0; i < 20; ++i) policy.decide(0.0);
  EXPECT_EQ(policy.current()[0], 3u);
}

TEST(CoreParkingPolicy, Validation) {
  CmpPowerModel model(homogeneous8());
  CoreParkingPolicyConfig bad;
  bad.park_utilization = 0.9;
  EXPECT_THROW(CoreParkingPolicy(model, bad), std::invalid_argument);
  CoreParkingPolicy policy(model);
  EXPECT_THROW(policy.decide(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace epm::power
