#include "power/server_power.h"

#include <gtest/gtest.h>

#include <tuple>

namespace epm::power {
namespace {

TEST(ServerPowerModel, PaperIdleFraction) {
  // Paper §4.3: "a powered on server with zero workload consumes about 60%
  // of its peak power."
  ServerPowerModel model{ServerPowerConfig{}};
  EXPECT_NEAR(model.idle_power_w() / model.peak_power_w(), 0.60, 1e-12);
  EXPECT_DOUBLE_EQ(model.active_power_w(0, 0.0), model.idle_power_w());
  EXPECT_DOUBLE_EQ(model.active_power_w(0, 1.0), model.peak_power_w());
}

TEST(ServerPowerModel, PStatesOrderedFastestFirst) {
  ServerPowerModel model{ServerPowerConfig{}};
  ASSERT_EQ(model.pstate_count(), 5u);
  for (std::size_t p = 1; p < model.pstate_count(); ++p) {
    EXPECT_LT(model.pstates()[p].frequency_hz, model.pstates()[p - 1].frequency_hz);
    EXPECT_LT(model.busy_power_w(p), model.busy_power_w(p - 1));
  }
  EXPECT_DOUBLE_EQ(model.pstates().front().frequency_hz, 2.4e9);
  EXPECT_DOUBLE_EQ(model.pstates().back().frequency_hz, 1.2e9);
}

TEST(ServerPowerModel, PowerMonotoneInUtilization) {
  ServerPowerModel model{ServerPowerConfig{}};
  for (std::size_t p = 0; p < model.pstate_count(); ++p) {
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
      const double w = model.active_power_w(p, u);
      ASSERT_GT(w, prev);
      prev = w;
    }
  }
}

TEST(ServerPowerModel, CubicDvfsSavings) {
  // At half frequency the dynamic term should drop by ~8x with exponent 3.
  ServerPowerConfig config;
  config.min_frequency_hz = 1.2e9;
  config.max_frequency_hz = 2.4e9;
  ServerPowerModel model(config);
  const double idle = model.idle_power_w();
  const double dyn_full = model.busy_power_w(0) - idle;
  const double dyn_half = model.busy_power_w(model.pstate_count() - 1) - idle;
  EXPECT_NEAR(dyn_half / dyn_full, 0.125, 1e-9);
}

TEST(ServerPowerModel, CapacityLinearInFrequencyAndDuty) {
  ServerPowerModel model{ServerPowerConfig{}};
  EXPECT_DOUBLE_EQ(model.relative_capacity(0), 1.0);
  EXPECT_DOUBLE_EQ(model.relative_capacity(model.pstate_count() - 1), 0.5);
  EXPECT_DOUBLE_EQ(model.relative_capacity(0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(model.capacity_rps(0), 100.0);
}

TEST(ServerPowerModel, DutyThrottleReducesPower) {
  ServerPowerModel model{ServerPowerConfig{}};
  const double full = model.active_power_w(0, 1.0, 1.0);
  const double half = model.active_power_w(0, 1.0, 0.5);
  EXPECT_LT(half, full);
  EXPECT_GT(half, model.idle_power_w());
  // Idle power unaffected by throttling.
  EXPECT_DOUBLE_EQ(model.active_power_w(0, 0.0, 0.5), model.idle_power_w());
}

TEST(ServerPowerModel, LowestPstateWithCapacity) {
  ServerPowerModel model{ServerPowerConfig{}};
  // Slowest state has 0.5 relative capacity.
  EXPECT_EQ(model.lowest_pstate_with_capacity(0.4), model.pstate_count() - 1);
  EXPECT_EQ(model.lowest_pstate_with_capacity(1.0), 0u);
  EXPECT_EQ(model.lowest_pstate_with_capacity(0.0), model.pstate_count() - 1);
  // Capacity 0.8 needs the state with >= 0.8 relative frequency.
  const std::size_t p = model.lowest_pstate_with_capacity(0.8);
  EXPECT_GE(model.relative_capacity(p), 0.8);
  if (p + 1 < model.pstate_count()) {
    EXPECT_LT(model.relative_capacity(p + 1), 0.8);
  }
}

TEST(ServerPowerModel, BootEnergy) {
  ServerPowerConfig config;
  config.boot_time_s = 100.0;
  config.boot_power_w = 250.0;
  ServerPowerModel model(config);
  EXPECT_DOUBLE_EQ(model.boot_energy_j(), 25000.0);
}

TEST(ServerPowerModel, SinglePStateModel) {
  ServerPowerConfig config;
  config.pstate_count = 1;
  ServerPowerModel model(config);
  EXPECT_EQ(model.pstate_count(), 1u);
  EXPECT_DOUBLE_EQ(model.relative_capacity(0), 1.0);
  EXPECT_DOUBLE_EQ(model.busy_power_w(0), config.peak_power_w);
}

TEST(ServerPowerModel, RejectsBadConfig) {
  ServerPowerConfig bad;
  bad.idle_fraction = 1.0;
  EXPECT_THROW(ServerPowerModel{bad}, std::invalid_argument);
  bad = ServerPowerConfig{};
  bad.min_frequency_hz = 3.0e9;  // above max
  EXPECT_THROW(ServerPowerModel{bad}, std::invalid_argument);
  bad = ServerPowerConfig{};
  bad.pstate_count = 0;
  EXPECT_THROW(ServerPowerModel{bad}, std::invalid_argument);
  bad = ServerPowerConfig{};
  bad.dvfs_exponent = 0.5;
  EXPECT_THROW(ServerPowerModel{bad}, std::invalid_argument);
}

TEST(ServerPowerModel, RejectsBadQueries) {
  ServerPowerModel model{ServerPowerConfig{}};
  EXPECT_THROW(model.active_power_w(99, 0.5), std::invalid_argument);
  EXPECT_THROW(model.active_power_w(0, 1.5), std::invalid_argument);
  EXPECT_THROW(model.active_power_w(0, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(model.busy_power_w(99), std::invalid_argument);
}

// Property sweep over DVFS exponents and idle fractions: busy power at any
// P-state stays within [idle, peak] and decreases with the P-state index.
class PowerCurveProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PowerCurveProperty, BusyPowerWithinBoundsAndMonotone) {
  const auto [exponent, idle_fraction] = GetParam();
  ServerPowerConfig config;
  config.dvfs_exponent = exponent;
  config.idle_fraction = idle_fraction;
  config.pstate_count = 7;
  ServerPowerModel model(config);
  double prev = model.busy_power_w(0) + 1.0;
  for (std::size_t p = 0; p < model.pstate_count(); ++p) {
    const double w = model.busy_power_w(p);
    ASSERT_LE(w, config.peak_power_w + 1e-9);
    ASSERT_GE(w, model.idle_power_w() - 1e-9);
    ASSERT_LT(w, prev);
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, PowerCurveProperty,
                         ::testing::Combine(::testing::Values(1.0, 2.0, 3.0),
                                            ::testing::Values(0.3, 0.6, 0.8)));

}  // namespace
}  // namespace epm::power
