#include "power/component_power.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace epm::power {
namespace {

TEST(MemoryPowerModel, BanksForWorkingSet) {
  MemoryPowerModel model{MemoryConfig{}};  // 8 x 8 GB
  EXPECT_DOUBLE_EQ(model.total_gb(), 64.0);
  EXPECT_EQ(model.banks_for_working_set(0.0), 1u);   // at least one bank
  EXPECT_EQ(model.banks_for_working_set(8.0), 1u);
  EXPECT_EQ(model.banks_for_working_set(8.1), 2u);
  EXPECT_EQ(model.banks_for_working_set(64.0), 8u);
  EXPECT_THROW(model.banks_for_working_set(65.0), std::invalid_argument);
}

TEST(MemoryPowerModel, PowerScalesWithActiveBanks) {
  MemoryPowerModel model{MemoryConfig{}};
  EXPECT_DOUBLE_EQ(model.power_w(8), 8 * 3.0);
  EXPECT_DOUBLE_EQ(model.power_w(1), 3.0 + 7 * 0.3);
  EXPECT_LT(model.power_for_working_set_w(10.0), model.power_w(8));
  EXPECT_THROW(model.power_w(0), std::invalid_argument);
  EXPECT_THROW(model.power_w(9), std::invalid_argument);
}

TEST(MemoryPowerModel, Validation) {
  MemoryConfig bad;
  bad.per_bank_asleep_w = 5.0;  // above active
  EXPECT_THROW(MemoryPowerModel{bad}, std::invalid_argument);
  bad = MemoryConfig{};
  bad.banks = 0;
  EXPECT_THROW(MemoryPowerModel{bad}, std::invalid_argument);
}

class DiskTest : public ::testing::Test {
 protected:
  DiskPowerModel model_{DiskConfig{}};  // 8 W spin, 0.8 W standby, 60 J up
};

TEST_F(DiskTest, BreakevenFormula) {
  // 60 J / (8 - 0.8) W = 8.33 s.
  EXPECT_NEAR(model_.breakeven_idle_s(), 60.0 / 7.2, 1e-9);
}

TEST_F(DiskTest, GapEnergyPiecewise) {
  const double timeout = 10.0;
  // Short gap: never spins down.
  EXPECT_DOUBLE_EQ(model_.gap_energy_j(5.0, timeout), 8.0 * 5.0);
  // Long gap: spinning through the timeout, standby after, plus spin-up.
  EXPECT_DOUBLE_EQ(model_.gap_energy_j(30.0, timeout),
                   8.0 * 10.0 + 0.8 * 20.0 + 60.0);
  EXPECT_DOUBLE_EQ(model_.gap_energy_spinning_j(30.0), 240.0);
}

TEST_F(DiskTest, SpinDownPaysExactlyBeyondBreakeven) {
  // Immediate spin-down (timeout 0): cheaper than spinning iff the gap
  // exceeds the break-even length.
  const double be = model_.breakeven_idle_s();
  EXPECT_GT(model_.gap_energy_j(be * 0.5, 0.0),
            model_.gap_energy_spinning_j(be * 0.5));
  EXPECT_LT(model_.gap_energy_j(be * 2.0, 0.0),
            model_.gap_energy_spinning_j(be * 2.0));
  EXPECT_NEAR(model_.gap_energy_j(be, 0.0), model_.gap_energy_spinning_j(be), 1e-9);
}

TEST_F(DiskTest, ExpectedIdlePowerMatchesMonteCarlo) {
  Rng rng(3);
  for (const double mean_gap : {5.0, 20.0, 120.0}) {
    const double timeout = model_.competitive_timeout_s();
    const double analytic = model_.expected_idle_power_w(mean_gap, timeout);
    const double simulated =
        model_.simulate_idle_power_w(mean_gap, timeout, 200000, rng);
    EXPECT_NEAR(simulated, analytic, analytic * 0.02) << "mean gap " << mean_gap;
  }
}

TEST_F(DiskTest, LongGapsRewardSpinDown) {
  const double timeout = model_.competitive_timeout_s();
  // Gaps much longer than break-even: spin-down approaches standby power.
  EXPECT_LT(model_.expected_idle_power_w(600.0, timeout), 1.5);
  // Gaps much shorter: spin-down is pointless but the timeout protects us —
  // power stays at the spinning level (never spins down within short gaps).
  EXPECT_NEAR(model_.expected_idle_power_w(1.0, timeout), 8.0, 0.1);
}

TEST_F(DiskTest, SkiRentalBoundHolds) {
  // The break-even timeout is 2-competitive against the clairvoyant optimum
  // on every individual gap: opt(g) = min(spin(g), immediate spin-down(g)).
  const double timeout = model_.competitive_timeout_s();
  for (double gap = 0.5; gap < 200.0; gap *= 1.7) {
    const double policy = model_.gap_energy_j(gap, timeout);
    const double opt =
        std::min(model_.gap_energy_spinning_j(gap), model_.gap_energy_j(gap, 0.0));
    EXPECT_LE(policy, 2.0 * opt + 1e-9) << "gap " << gap;
  }
}

TEST_F(DiskTest, TimeoutSweepHasInteriorOptimumForExponentialGaps) {
  // For exponential gaps with a mean well above break-even, some finite
  // timeout beats both extremes (never spin down / instant spin-down is
  // actually optimal among timeouts for exponential, by memorylessness the
  // expected power is monotone in T — check that the analytic formula
  // agrees: smaller T is never worse when mean >> breakeven).
  const double mean_gap = 120.0;
  double prev = model_.expected_idle_power_w(mean_gap, 0.0);
  for (double timeout : {5.0, 20.0, 60.0}) {
    const double p = model_.expected_idle_power_w(mean_gap, timeout);
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
}

TEST_F(DiskTest, Validation) {
  EXPECT_THROW(model_.gap_energy_j(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(model_.expected_idle_power_w(0.0, 1.0), std::invalid_argument);
  DiskConfig bad;
  bad.standby_w = 9.0;  // above spinning
  EXPECT_THROW(DiskPowerModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::power
