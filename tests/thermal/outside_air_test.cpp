#include "thermal/outside_air.h"

#include <gtest/gtest.h>

#include "core/units.h"

namespace epm::thermal {
namespace {

TEST(OutsideAir, SeasonalShape) {
  OutsideAirConfig config;
  config.weather_noise_c = 0.0;
  config.diurnal_amplitude_c = 0.0;
  OutsideAirModel model(config);
  const double summer = model.mean_temperature_c(days(config.hottest_day));
  const double winter = model.mean_temperature_c(days(config.hottest_day + 182.0));
  EXPECT_NEAR(summer, config.annual_mean_c + config.seasonal_amplitude_c, 0.1);
  EXPECT_NEAR(winter, config.annual_mean_c - config.seasonal_amplitude_c, 0.1);
}

TEST(OutsideAir, DiurnalShape) {
  OutsideAirConfig config;
  config.weather_noise_c = 0.0;
  config.seasonal_amplitude_c = 0.0;
  OutsideAirModel model(config);
  const double afternoon = model.mean_temperature_c(hours(config.hottest_hour));
  const double night = model.mean_temperature_c(hours(config.hottest_hour + 12.0));
  EXPECT_GT(afternoon, night);
  EXPECT_NEAR(afternoon - night, 2.0 * config.diurnal_amplitude_c, 0.1);
}

TEST(OutsideAir, SampleDeterministicPerSeed) {
  OutsideAirConfig config;
  config.seed = 5;
  OutsideAirModel a(config);
  OutsideAirModel b(config);
  const auto sa = a.sample(days(10.0), hours(1.0));
  const auto sb = b.sample(days(10.0), hours(1.0));
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); i += 17) {
    ASSERT_DOUBLE_EQ(sa[i], sb[i]);
  }
}

TEST(OutsideAir, NoiseStaysBounded) {
  OutsideAirModel model(OutsideAirConfig{});
  const auto s = model.sample(days(365.0), hours(1.0));
  // Mean + seasonal(11) + diurnal(5) + ~4 sigma of 2C noise.
  for (std::size_t i = 0; i < s.size(); ++i) {
    ASSERT_LT(s[i], 12.0 + 11.0 + 5.0 + 10.0);
    ASSERT_GT(s[i], 12.0 - 11.0 - 5.0 - 10.0);
  }
}

TEST(OutsideAir, AnnualMeanRecovered) {
  OutsideAirModel model(OutsideAirConfig{});
  const auto s = model.sample(days(365.0), hours(1.0));
  EXPECT_NEAR(s.stats().mean(), 12.0, 1.5);
}

TEST(OutsideAir, HumidityAntiCorrelatesWithTemperature) {
  OutsideAirConfig config;
  OutsideAirModel model(config);
  // RH lowest at the warmest hour, highest 12 h later.
  const double dry = model.mean_relative_humidity(hours(config.hottest_hour));
  const double damp = model.mean_relative_humidity(hours(config.hottest_hour + 12.0));
  EXPECT_LT(dry, damp);
  EXPECT_NEAR(dry, config.mean_rh - config.diurnal_rh_amplitude, 1e-9);
}

TEST(OutsideAir, WeatherSampleCoupled) {
  OutsideAirConfig config;
  config.seed = 9;
  OutsideAirModel model(config);
  const auto weather = model.sample_weather(days(30.0), hours(1.0));
  ASSERT_EQ(weather.temperature_c.size(), weather.relative_humidity.size());
  for (std::size_t i = 0; i < weather.relative_humidity.size(); ++i) {
    ASSERT_GE(weather.relative_humidity[i], 0.05);
    ASSERT_LE(weather.relative_humidity[i], 1.0);
  }
  // Deviations anti-correlate: residual temp vs residual RH is negative.
  std::vector<double> temp_dev;
  std::vector<double> rh_dev;
  for (std::size_t i = 0; i < weather.temperature_c.size(); ++i) {
    const double t = weather.temperature_c.time_at(i);
    temp_dev.push_back(weather.temperature_c[i] - model.mean_temperature_c(t));
    rh_dev.push_back(weather.relative_humidity[i] - model.mean_relative_humidity(t));
  }
  EXPECT_LT(pearson_correlation(temp_dev, rh_dev), -0.5);
}

TEST(OutsideAir, RejectsBadConfig) {
  OutsideAirConfig bad;
  bad.seasonal_amplitude_c = -1.0;
  EXPECT_THROW(OutsideAirModel{bad}, std::invalid_argument);
  OutsideAirModel model(OutsideAirConfig{});
  EXPECT_THROW(model.sample(0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::thermal
