#include "thermal/room.h"

#include <gtest/gtest.h>

namespace epm::thermal {
namespace {

MachineRoomConfig simple_room() {
  MachineRoomConfig room;
  ZoneConfig z;
  z.supply_lag_s = 60.0;
  room.zones = {z};
  CracConfig c;
  c.zone_sensitivity = {1.0};
  room.cracs = {c};
  room.airflow_share = {{1.0}};
  return room;
}

TEST(MachineRoom, AdvancesClock) {
  MachineRoom room(simple_room());
  room.run_until(600.0, {5000.0});
  EXPECT_NEAR(room.now_s(), 600.0, 1e-6);
}

TEST(MachineRoom, ZoneWarmsUnderHeat) {
  MachineRoom room(simple_room());
  const double before = room.zone(0).temperature_c();
  room.run_until(3600.0, {20000.0});
  EXPECT_GT(room.zone(0).temperature_c(), before);
}

TEST(MachineRoom, CracControlRunsOnSchedule) {
  MachineRoom room(simple_room());
  room.run_until(3600.0, {20000.0});
  // 15-minute control period -> 4 actions in an hour.
  EXPECT_EQ(room.crac(0).control_actions(), 4u);
}

TEST(MachineRoom, CracEventuallyCoolsHotRoom) {
  MachineRoom room(simple_room());
  room.run_until(6.0 * 3600.0, {20000.0});
  // The controller should have pushed supply temp down.
  EXPECT_LT(room.crac(0).supply_temp_c(), 18.0);
}

TEST(MachineRoom, AlarmsRecordedOnce) {
  auto config = simple_room();
  config.zones[0].alarm_temp_c = 25.0;
  config.cracs[0].min_supply_c = 22.0;  // cannot cool enough
  config.cracs[0].initial_supply_c = 22.0;
  MachineRoom room(config);
  room.run_until(4.0 * 3600.0, {30000.0});  // +10C over conductance
  EXPECT_EQ(room.alarms().size(), 1u);  // edge-triggered, not repeated
  EXPECT_EQ(room.alarms()[0].zone, 0u);
  EXPECT_EQ(room.zones_in_alarm().size(), 1u);
}

TEST(MachineRoom, ManualModeDisablesCracControl) {
  MachineRoom room(simple_room());
  room.set_crac_auto(0, false);
  room.crac(0).set_supply_temp_c(16.0);
  room.run_until(2.0 * 3600.0, {20000.0});
  EXPECT_DOUBLE_EQ(room.crac(0).supply_temp_c(), 16.0);
}

TEST(MachineRoom, HeatRemovalApproachesInjectedHeat) {
  MachineRoom room(simple_room());
  room.run_until(8.0 * 3600.0, {15000.0});
  EXPECT_NEAR(room.heat_removal_w(), 15000.0, 1500.0);
}

TEST(MachineRoom, RecirculationCouplesZones) {
  auto config = make_sensitivity_scenario_room();
  MachineRoom room(config);
  // Heat only zone A; recirculation should warm zone B above supply+0.
  room.run_until(2.0 * 3600.0, {20000.0, 0.0});
  const double supply = room.crac(0).supply_temp_c();
  EXPECT_GT(room.zone(1).temperature_c(), supply + 0.1);
}

TEST(MachineRoom, SensitivityScenarioShape) {
  const auto config = make_sensitivity_scenario_room(0.95, 0.05);
  ASSERT_EQ(config.zones.size(), 2u);
  ASSERT_EQ(config.cracs.size(), 1u);
  EXPECT_DOUBLE_EQ(config.cracs[0].zone_sensitivity[0], 0.95);
  MachineRoom room(config);
  EXPECT_EQ(room.zone_count(), 2u);
  EXPECT_EQ(room.crac_count(), 1u);
}

TEST(MachineRoom, ValidatesConfiguration) {
  auto bad = simple_room();
  bad.airflow_share = {{0.0}};
  EXPECT_THROW(MachineRoom{bad}, std::invalid_argument);
  bad = simple_room();
  bad.airflow_share = {};
  EXPECT_THROW(MachineRoom{bad}, std::invalid_argument);
  bad = simple_room();
  bad.cracs[0].zone_sensitivity = {1.0, 1.0};  // more zones than exist
  EXPECT_THROW(MachineRoom{bad}, std::invalid_argument);
  MachineRoom room(simple_room());
  EXPECT_THROW(room.run_until(100.0, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(room.run_until(100.0, {-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace epm::thermal
