#include "thermal/zone.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epm::thermal {
namespace {

ZoneConfig fast_zone() {
  ZoneConfig z;
  z.heat_capacity_j_per_c = 1.0e5;
  z.conductance_w_per_c = 1.0e3;
  z.supply_lag_s = 0.0;
  return z;
}

TEST(ThermalZone, SteadyStateFormula) {
  ThermalZone zone(fast_zone());
  // T_inf = supply + Q/G.
  EXPECT_DOUBLE_EQ(zone.steady_state_c(5000.0, 18.0), 23.0);
  EXPECT_DOUBLE_EQ(zone.steady_state_c(0.0, 18.0), 18.0);
}

TEST(ThermalZone, ConvergesToSteadyState) {
  ThermalZone zone(fast_zone());
  for (int i = 0; i < 200; ++i) zone.step(10.0, 5000.0, 18.0);
  EXPECT_NEAR(zone.temperature_c(), 23.0, 0.01);
}

TEST(ThermalZone, ExponentialApproachMatchesTimeConstant) {
  auto config = fast_zone();
  config.initial_temp_c = 18.0;
  ThermalZone zone(config);
  // tau = C/G = 100 s. After one tau the gap should close by 1-1/e.
  const double t_inf = zone.steady_state_c(5000.0, 18.0);
  zone.step(100.0, 5000.0, 18.0);
  const double expected = t_inf + (18.0 - t_inf) * std::exp(-1.0);
  EXPECT_NEAR(zone.temperature_c(), expected, 1e-9);
}

TEST(ThermalZone, StableForHugeTimeStep) {
  ThermalZone zone(fast_zone());
  zone.step(1.0e7, 5000.0, 18.0);  // dt >> tau must not blow up
  EXPECT_NEAR(zone.temperature_c(), 23.0, 1e-6);
}

TEST(ThermalZone, SupplyLagDelaysResponse) {
  auto lagged = fast_zone();
  lagged.supply_lag_s = 600.0;
  ThermalZone with_lag(lagged);
  ThermalZone without_lag(fast_zone());
  // Drop the supply temperature; the lagged zone cools more slowly.
  for (int i = 0; i < 10; ++i) {
    with_lag.step(30.0, 5000.0, 12.0);
    without_lag.step(30.0, 5000.0, 12.0);
  }
  EXPECT_GT(with_lag.temperature_c(), without_lag.temperature_c());
}

TEST(ThermalZone, AlarmThreshold) {
  auto config = fast_zone();
  config.alarm_temp_c = 30.0;
  ThermalZone zone(config);
  EXPECT_FALSE(zone.in_alarm());
  // 15 kW over 1 kW/C = +15 C above an 18 C supply -> 33 C steady state.
  for (int i = 0; i < 100; ++i) zone.step(30.0, 15000.0, 18.0);
  EXPECT_TRUE(zone.in_alarm());
}

TEST(ThermalZone, MoreHeatMeansHotter) {
  ThermalZone a(fast_zone());
  ThermalZone b(fast_zone());
  for (int i = 0; i < 50; ++i) {
    a.step(30.0, 3000.0, 18.0);
    b.step(30.0, 9000.0, 18.0);
  }
  EXPECT_LT(a.temperature_c(), b.temperature_c());
}

TEST(ThermalZone, ResetRestoresState) {
  ThermalZone zone(fast_zone());
  zone.step(100.0, 9000.0, 18.0);
  zone.reset(20.0, 18.0);
  EXPECT_DOUBLE_EQ(zone.temperature_c(), 20.0);
  EXPECT_DOUBLE_EQ(zone.lagged_supply_c(), 18.0);
}

TEST(ThermalZone, RejectsBadInput) {
  ThermalZone zone(fast_zone());
  EXPECT_THROW(zone.step(0.0, 100.0, 18.0), std::invalid_argument);
  EXPECT_THROW(zone.step(1.0, -1.0, 18.0), std::invalid_argument);
  ZoneConfig bad = fast_zone();
  bad.heat_capacity_j_per_c = 0.0;
  EXPECT_THROW(ThermalZone{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::thermal
