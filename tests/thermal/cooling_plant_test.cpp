#include "thermal/cooling_plant.h"

#include <gtest/gtest.h>

namespace epm::thermal {
namespace {

TEST(CoolingPlant, CopImprovesWithWarmerSupply) {
  CoolingPlant plant{CoolingPlantConfig{}};
  EXPECT_GT(plant.cop_at(24.0), plant.cop_at(14.0));
  EXPECT_DOUBLE_EQ(plant.cop_at(18.0), 3.5);
}

TEST(CoolingPlant, CopFloored) {
  CoolingPlantConfig config;
  config.min_cop = 2.0;
  CoolingPlant plant(config);
  EXPECT_DOUBLE_EQ(plant.cop_at(-100.0), 2.0);
}

TEST(CoolingPlant, ChillerPowerScalesWithHeat) {
  CoolingPlant plant{CoolingPlantConfig{}};
  const auto low = plant.power_draw(100.0e3, 18.0, 30.0);
  const auto high = plant.power_draw(200.0e3, 18.0, 30.0);
  EXPECT_FALSE(low.economizer_active);
  EXPECT_NEAR(high.chiller_power_w, 2.0 * low.chiller_power_w, 1e-6);
  EXPECT_NEAR(high.fan_power_w, 2.0 * low.fan_power_w, 1e-6);
  EXPECT_NEAR(low.chiller_power_w, 100.0e3 / 3.5, 1e-6);
}

TEST(CoolingPlant, EconomizerDisabledByDefault) {
  CoolingPlant plant{CoolingPlantConfig{}};
  EXPECT_FALSE(plant.economizer_usable(-10.0, 18.0));
}

TEST(CoolingPlant, EconomizerUsableWhenColdEnough) {
  CoolingPlantConfig config;
  config.has_economizer = true;
  config.economizer_approach_c = 4.0;
  CoolingPlant plant(config);
  EXPECT_TRUE(plant.economizer_usable(10.0, 18.0));   // 10 <= 18-4
  EXPECT_FALSE(plant.economizer_usable(15.0, 18.0));  // too warm
  EXPECT_FALSE(plant.economizer_usable(-20.0, 18.0)); // below frost limit
}

TEST(CoolingPlant, EconomizerEliminatesChillerPower) {
  CoolingPlantConfig config;
  config.has_economizer = true;
  CoolingPlant plant(config);
  const auto free_cooling = plant.power_draw(100.0e3, 18.0, 5.0);
  EXPECT_TRUE(free_cooling.economizer_active);
  EXPECT_DOUBLE_EQ(free_cooling.chiller_power_w, 0.0);
  EXPECT_GT(free_cooling.fan_power_w, 0.0);
  const auto chilled = plant.power_draw(100.0e3, 18.0, 25.0);
  EXPECT_GT(chilled.total_w(), free_cooling.total_w());
}

TEST(CoolingPlant, HumidityEnvelopeBlocksEconomizer) {
  CoolingPlantConfig config;
  config.has_economizer = true;
  CoolingPlant plant(config);
  // Cold but soaking-wet air cannot be used directly...
  EXPECT_FALSE(plant.economizer_usable(5.0, 18.0, 0.95));
  // ...nor desert-dry air...
  EXPECT_FALSE(plant.economizer_usable(5.0, 18.0, 0.05));
  // ...but in-envelope air can.
  EXPECT_TRUE(plant.economizer_usable(5.0, 18.0, 0.45));
  const auto wet = plant.power_draw(100.0e3, 18.0, 5.0, 0.95);
  EXPECT_FALSE(wet.economizer_active);
  EXPECT_GT(wet.chiller_power_w, 0.0);
  const auto dry_enough = plant.power_draw(100.0e3, 18.0, 5.0, 0.45);
  EXPECT_TRUE(dry_enough.economizer_active);
  EXPECT_DOUBLE_EQ(dry_enough.chiller_power_w, 0.0);
}

TEST(CoolingPlant, HumidityValidation) {
  CoolingPlant plant{CoolingPlantConfig{}};
  EXPECT_THROW(plant.economizer_usable(5.0, 18.0, 1.5), std::invalid_argument);
  CoolingPlantConfig bad;
  bad.min_intake_rh = 0.9;
  bad.max_intake_rh = 0.5;
  EXPECT_THROW(CoolingPlant{bad}, std::invalid_argument);
}

TEST(CoolingPlant, RejectsBadInput) {
  CoolingPlant plant{CoolingPlantConfig{}};
  EXPECT_THROW(plant.power_draw(-1.0, 18.0, 20.0), std::invalid_argument);
  CoolingPlantConfig bad;
  bad.cop_at_reference = 0.0;
  EXPECT_THROW(CoolingPlant{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::thermal
