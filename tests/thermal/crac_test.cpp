#include "thermal/crac.h"

#include <gtest/gtest.h>

namespace epm::thermal {
namespace {

CracConfig two_zone_crac() {
  CracConfig c;
  c.zone_sensitivity = {0.8, 0.2};
  return c;
}

TEST(Crac, ObservedReturnIsSensitivityWeighted) {
  Crac crac(two_zone_crac());
  EXPECT_NEAR(crac.observed_return_c({20.0, 30.0}), 0.8 * 20.0 + 0.2 * 30.0, 1e-12);
}

TEST(Crac, BlindZoneBarelyMoves) {
  CracConfig c;
  c.zone_sensitivity = {0.95, 0.05};
  Crac crac(c);
  // Zone B is scorching but the CRAC barely sees it.
  EXPECT_LT(crac.observed_return_c({22.0, 40.0}), 23.0);
}

TEST(Crac, CoolsWhenObservedAboveSetpoint) {
  Crac crac(two_zone_crac());
  const double before = crac.supply_temp_c();
  crac.control_step({30.0, 30.0});  // observed 30 > 24 setpoint
  EXPECT_LT(crac.supply_temp_c(), before);
}

TEST(Crac, WarmsWhenObservedBelowSetpoint) {
  // "The CRAC then believes that there is not much heat generated in its
  //  effective zone and thus increases the temperature of the cooling air."
  Crac crac(two_zone_crac());
  const double before = crac.supply_temp_c();
  crac.control_step({18.0, 18.0});
  EXPECT_GT(crac.supply_temp_c(), before);
}

TEST(Crac, DeadbandSuppressesSmallErrors) {
  Crac crac(two_zone_crac());
  const double before = crac.supply_temp_c();
  crac.control_step({24.3, 24.3});  // within +-0.5 deadband
  EXPECT_DOUBLE_EQ(crac.supply_temp_c(), before);
}

TEST(Crac, SupplyClampedToRange) {
  CracConfig c = two_zone_crac();
  c.gain = 10.0;
  Crac crac(c);
  for (int i = 0; i < 20; ++i) crac.control_step({60.0, 60.0});
  EXPECT_DOUBLE_EQ(crac.supply_temp_c(), c.min_supply_c);
  for (int i = 0; i < 40; ++i) crac.control_step({5.0, 5.0});
  EXPECT_DOUBLE_EQ(crac.supply_temp_c(), c.max_supply_c);
}

TEST(Crac, ControlActionCounter) {
  Crac crac(two_zone_crac());
  crac.control_step({25.0, 25.0});
  crac.control_step({25.0, 25.0});
  EXPECT_EQ(crac.control_actions(), 2u);
}

TEST(Crac, ManualOverrideValidated) {
  Crac crac(two_zone_crac());
  crac.set_supply_temp_c(20.0);
  EXPECT_DOUBLE_EQ(crac.supply_temp_c(), 20.0);
  EXPECT_THROW(crac.set_supply_temp_c(5.0), std::invalid_argument);
  EXPECT_THROW(crac.set_supply_temp_c(40.0), std::invalid_argument);
}

TEST(Crac, RejectsBadConfig) {
  CracConfig bad = two_zone_crac();
  bad.zone_sensitivity = {};
  EXPECT_THROW(Crac{bad}, std::invalid_argument);
  bad = two_zone_crac();
  bad.zone_sensitivity = {0.0, 0.0};
  EXPECT_THROW(Crac{bad}, std::invalid_argument);
  bad = two_zone_crac();
  bad.control_period_s = 0.0;
  EXPECT_THROW(Crac{bad}, std::invalid_argument);
  Crac crac(two_zone_crac());
  EXPECT_THROW(crac.observed_return_c({20.0}), std::invalid_argument);
}

}  // namespace
}  // namespace epm::thermal
