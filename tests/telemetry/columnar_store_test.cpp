// ColumnarTelemetryStore vs LegacyTelemetryStore: the two implementations
// must answer the shared band-query API bit-identically on equal input, at
// every ingest thread count (1/2/8 exercises the serial path, the minimal
// 1-producer/1-drainer pipeline, and a 4x4 ring matrix). Also the shard-mix
// fix: stride-64 server enumerations must spread across shards instead of
// serializing on one. Suite names match the TSan/ASan CI regexes
// ("Telemetry") so the ring pipeline races under both sanitizers.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "core/parallel.h"
#include "telemetry/store.h"
#include "workload/fleet_counters.h"

namespace epm::telemetry {
namespace {

bool aggregates_identical(const Aggregate& a, const Aggregate& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min && a.max == b.max;
}

bool means_identical(const MultiScaleSeries::BinnedMeans& a,
                     const MultiScaleSeries::BinnedMeans& b) {
  return a.times_s == b.times_s && a.means == b.means;
}

workload::FleetCountersBatch reference_batch() {
  workload::FleetCountersConfig mix;
  mix.servers = 40;
  mix.counters_per_server = 8;
  mix.ticks = 20;  // 6,400 samples: above the 4,096 pipelined-path floor
  mix.seed = 0xabc;
  return workload::synthesize_fleet_counters(mix);
}

template <typename StoreA, typename StoreB>
void expect_identical_answers(const StoreA& a, const StoreB& b,
                              std::uint32_t servers, std::uint32_t counters,
                              double horizon_s) {
  ASSERT_EQ(a.total_samples(), b.total_samples());
  ASSERT_EQ(a.series_count(), b.series_count());
  for (std::uint32_t s = 0; s < servers; ++s) {
    for (std::uint32_t c = 0; c < counters; ++c) {
      const auto key = make_key(s, c);
      ASSERT_TRUE(aggregates_identical(a.range(key, 0.0, horizon_s),
                                       b.range(key, 0.0, horizon_s)))
          << "range, server " << s << " counter " << c;
      ASSERT_TRUE(
          aggregates_identical(a.range(key, horizon_s - 120.0, horizon_s),
                               b.range(key, horizon_s - 120.0, horizon_s)))
          << "trailing range, server " << s << " counter " << c;
      ASSERT_TRUE(means_identical(a.daily_trend(key, 0.0, horizon_s),
                                  b.daily_trend(key, 0.0, horizon_s)))
          << "daily_trend, server " << s << " counter " << c;
      ASSERT_TRUE(means_identical(a.hourly_pattern(key, 0.0, horizon_s),
                                  b.hourly_pattern(key, 0.0, horizon_s)))
          << "hourly_pattern, server " << s << " counter " << c;
    }
  }
}

TEST(TelemetryColumnarStore, BitIdenticalToLegacyAtEveryThreadCount) {
  const auto batch = reference_batch();
  const double horizon_s = 20.0 * 15.0 + 15.0;

  LegacyTelemetryStore legacy;
  for (const auto& sample : batch.samples) {
    legacy.append(sample.key, sample.time_s, sample.value, sample.degraded);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ColumnarTelemetryStore columnar;
    columnar.bulk_append(batch.samples, threads);
    expect_identical_answers(legacy, columnar, 40, 8, horizon_s);
  }
}

TEST(TelemetryColumnarStore, LegacyBulkAppendMatchesLegacySerial) {
  const auto batch = reference_batch();
  const double horizon_s = 20.0 * 15.0 + 15.0;
  LegacyTelemetryStore serial;
  for (const auto& sample : batch.samples) {
    serial.append(sample.key, sample.time_s, sample.value, sample.degraded);
  }
  LegacyTelemetryStore parallel;
  parallel.bulk_append(batch.samples, /*threads=*/2);
  expect_identical_answers(serial, parallel, 40, 8, horizon_s);
}

TEST(TelemetryColumnarStore, BulkAppendMatchesSerialAppendOnSharedPool) {
  const auto batch = reference_batch();
  ColumnarTelemetryStore serial;
  for (const auto& sample : batch.samples) {
    serial.append(sample.key, sample.time_s, sample.value, sample.degraded);
  }
  ThreadPool pool(4);
  ColumnarTelemetryStore pooled;
  pooled.bulk_append(batch.samples, pool);
  expect_identical_answers(serial, pooled, 40, 8, 20.0 * 15.0 + 15.0);
  EXPECT_EQ(serial.degraded_samples(), pooled.degraded_samples());
}

TEST(TelemetryColumnarStore, AnomaliesAreDeterministicAcrossThreadCounts) {
  workload::FleetCountersConfig mix;
  mix.servers = 30;
  mix.counters_per_server = 6;
  mix.ticks = 80;
  mix.seed = 0xdead;
  mix.spike_probability = 0.05;
  const auto batch = workload::synthesize_fleet_counters(mix);
  ASSERT_FALSE(batch.spikes.empty());

  std::vector<AnomalyEvent> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ColumnarTelemetryStore store;
    store.bulk_append(batch.samples, threads);
    store.flush();
    const auto events = store.anomalies();
    if (threads == 1) {
      reference = events;
      // Every injected ground-truth spike is recalled.
      for (const auto& spike : batch.spikes) {
        const bool hit =
            std::any_of(events.begin(), events.end(), [&](const AnomalyEvent& e) {
              return e.key == spike.key && e.time_s == spike.time_s;
            });
        EXPECT_TRUE(hit) << "missed spike on key " << spike.key;
      }
      // Events arrive ordered by (time, key) — deterministic despite the
      // unordered shard maps.
      for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_TRUE(events[i - 1].time_s < events[i].time_s ||
                    (events[i - 1].time_s == events[i].time_s &&
                     events[i - 1].key <= events[i].key));
      }
    } else {
      ASSERT_EQ(events.size(), reference.size()) << threads << " threads";
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].key, reference[i].key);
        EXPECT_EQ(events[i].time_s, reference[i].time_s);
        EXPECT_EQ(events[i].value, reference[i].value);
        EXPECT_EQ(events[i].zscore, reference[i].zscore);
      }
    }
  }
}

TEST(TelemetryColumnarStore, RawRangeMatchesRawStoreScan) {
  const auto batch = reference_batch();
  ColumnarTelemetryStore store(MultiScaleConfig{},
                               TelemetryTuning{.block_capacity = 16});
  RawStore raw;
  for (const auto& sample : batch.samples) {
    store.append(sample.key, sample.time_s, sample.value);
    raw.append(sample.key, sample.time_s, sample.value);
  }
  const double horizon_s = 20.0 * 15.0 + 15.0;
  for (std::uint32_t s = 0; s < 40; s += 7) {
    const auto key = make_key(s, 3);
    const auto got = store.raw_range(key, 30.0, horizon_s - 30.0);
    const auto expect = raw.range(key, 30.0, horizon_s - 30.0);
    EXPECT_EQ(got.count, expect.count);
    EXPECT_EQ(got.min, expect.min);
    EXPECT_EQ(got.max, expect.max);
    // Fleet counters are integer-valued, so the sum is grouping-free.
    EXPECT_EQ(got.mean(), expect.mean);
  }
}

TEST(TelemetryColumnarStore, TracksFaultAccountingLikeLegacy) {
  ColumnarTelemetryStore store;
  store.append(make_key(0, 0), 0.0, 1.0, /*degraded=*/true);
  store.append(make_key(0, 0), 15.0, 2.0);
  store.record_dropout(3);
  store.record_shed(2);
  store.record_abandoned(1);
  store.record_retried(5);
  EXPECT_EQ(store.total_samples(), 2u);
  EXPECT_EQ(store.degraded_samples(), 1u);
  EXPECT_EQ(store.dropped_samples(), 3u);
  EXPECT_EQ(store.shed_requests(), 2u);
  EXPECT_EQ(store.abandoned_requests(), 1u);
  EXPECT_EQ(store.retried_requests(), 5u);
  EXPECT_TRUE(store.contains(make_key(0, 0)));
  EXPECT_FALSE(store.contains(make_key(1, 0)));
  EXPECT_THROW(store.column_series(make_key(1, 0)), std::invalid_argument);
  EXPECT_EQ(store.column_series(make_key(0, 0)).total_samples(), 2u);
}

TEST(TelemetryShardBalance, HashMixSpreadsStride64Enumerations) {
  // The regression the mix fixes: servers enumerated with stride 64 (e.g.
  // one column of a 64-wide rack grid) all satisfy server % 64 == 0, so the
  // old modulo layout serialized them on a single shard.
  constexpr std::size_t kServers = 4096;
  std::array<std::size_t, kTelemetryShards> load{};
  std::set<std::size_t> shards_hit;
  for (std::size_t i = 0; i < kServers; ++i) {
    const auto server = static_cast<std::uint32_t>(i * 64);
    const std::size_t shard = telemetry_shard_of(make_key(server, 0));
    ASSERT_LT(shard, kTelemetryShards);
    ++load[shard];
    shards_hit.insert(shard);
    // The modulo layout would have put every one of these on shard 0.
    EXPECT_EQ(server % kTelemetryShards, 0u);
  }
  EXPECT_EQ(shards_hit.size(), kTelemetryShards);  // all shards used
  // No shard carries more than 2x the fair share (64 per shard).
  const std::size_t fair = kServers / kTelemetryShards;
  for (const std::size_t l : load) {
    EXPECT_LE(l, 2 * fair);
    EXPECT_GE(l, fair / 4);
  }
}

TEST(TelemetryShardBalance, ShardOfDependsOnlyOnServer) {
  // All counters of one server land on one shard (per-series order needs a
  // single drainer per server), and the two stores agree on the layout.
  for (std::uint32_t server : {0u, 1u, 63u, 64u, 1000u, 0xffffffffu}) {
    const std::size_t shard = telemetry_shard_of(make_key(server, 0));
    for (std::uint32_t counter : {1u, 2u, 99u}) {
      EXPECT_EQ(telemetry_shard_of(make_key(server, counter)), shard);
    }
    EXPECT_EQ(LegacyTelemetryStore::shard_of(make_key(server, 7)), shard);
    EXPECT_EQ(ColumnarTelemetryStore::shard_of(make_key(server, 7)), shard);
  }
}

}  // namespace
}  // namespace epm::telemetry
