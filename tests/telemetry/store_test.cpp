#include "telemetry/store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel.h"

namespace epm::telemetry {
namespace {

TEST(CounterKey, PackAndUnpack) {
  const CounterKey key = make_key(1234, 56);
  EXPECT_EQ(server_of(key), 1234u);
  EXPECT_EQ(counter_of(key), 56u);
  EXPECT_NE(make_key(1, 2), make_key(2, 1));
}

TEST(TelemetryStore, LazySeriesCreation) {
  TelemetryStore store;
  EXPECT_EQ(store.series_count(), 0u);
  store.append(make_key(0, 0), 0.0, 1.0);
  store.append(make_key(0, 1), 0.0, 2.0);
  store.append(make_key(0, 0), 15.0, 3.0);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.total_samples(), 3u);
  EXPECT_TRUE(store.contains(make_key(0, 0)));
  EXPECT_FALSE(store.contains(make_key(9, 9)));
  EXPECT_THROW(store.range(make_key(9, 9), 0.0, 1.0), std::invalid_argument);
}

TEST(TelemetryStore, HourlyPatternQuery) {
  TelemetryStore store;
  const CounterKey key = make_key(1, 1);
  // Two hours: 40 then 80.
  for (int i = 0; i < 2 * 240; ++i) {
    store.append(key, i * 15.0, i < 240 ? 40.0 : 80.0);
  }
  const auto pattern = store.hourly_pattern(key, 0.0, 7200.0);
  ASSERT_EQ(pattern.means.size(), 2u);
  EXPECT_DOUBLE_EQ(pattern.means[0], 40.0);
  EXPECT_DOUBLE_EQ(pattern.means[1], 80.0);
}

TEST(TelemetryStore, DailyTrendQuery) {
  // Coarse samples (15 min) keep this fast: 3 days with rising means.
  MultiScaleConfig config;
  config.levels = {{900.0, 0}, {3600.0, 0}, {86400.0, 0}};
  TelemetryStore store(config);
  const CounterKey key = make_key(2, 7);
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i < 96; ++i) {
      store.append(key, d * 86400.0 + i * 900.0, 10.0 * (d + 1));
    }
  }
  const auto trend = store.daily_trend(key, 0.0, 3.0 * 86400.0);
  ASSERT_EQ(trend.means.size(), 3u);
  EXPECT_DOUBLE_EQ(trend.means[0], 10.0);
  EXPECT_DOUBLE_EQ(trend.means[2], 30.0);
}

TEST(TelemetryStore, MemoryAccounting) {
  TelemetryStore store;
  store.append(make_key(0, 0), 0.0, 1.0);
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(RawStore, RangeScan) {
  RawStore raw;
  const CounterKey key = make_key(3, 3);
  for (int i = 0; i < 100; ++i) {
    raw.append(key, i * 15.0, static_cast<double>(i));
  }
  const auto stats = raw.range(key, 150.0, 300.0);  // samples 10..19
  EXPECT_EQ(stats.count, 10u);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 19.0);
  EXPECT_DOUBLE_EQ(stats.mean, 14.5);
  EXPECT_EQ(raw.total_samples(), 100u);
  EXPECT_GT(raw.memory_bytes(), 100 * 2 * sizeof(double) - 1);
}

TEST(RawStore, EmptyRangeAndUnknownKey) {
  RawStore raw;
  const CounterKey key = make_key(1, 1);
  raw.append(key, 0.0, 1.0);
  const auto stats = raw.range(key, 100.0, 200.0);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_THROW(raw.range(make_key(5, 5), 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(raw.append(key, -10.0, 1.0), std::invalid_argument);
}

namespace {

/// A deterministic fleet batch in arrival (time-major) order.
std::vector<Sample> fleet_batch(std::uint32_t servers, std::uint32_t counters,
                                std::size_t steps) {
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(servers) * counters * steps);
  for (std::size_t i = 0; i < steps; ++i) {
    for (std::uint32_t s = 0; s < servers; ++s) {
      for (std::uint32_t c = 0; c < counters; ++c) {
        samples.push_back({make_key(s, c), static_cast<double>(i) * 15.0,
                           static_cast<double>((i * 31 + s * 7 + c) % 97)});
      }
    }
  }
  return samples;
}

/// Every series aggregate must agree bitwise between two stores.
void expect_stores_identical(const TelemetryStore& a, const TelemetryStore& b,
                             std::uint32_t servers, std::uint32_t counters,
                             double horizon_s) {
  ASSERT_EQ(a.total_samples(), b.total_samples());
  ASSERT_EQ(a.series_count(), b.series_count());
  for (std::uint32_t s = 0; s < servers; ++s) {
    for (std::uint32_t c = 0; c < counters; ++c) {
      const auto key = make_key(s, c);
      const auto lhs = a.range(key, 0.0, horizon_s);
      const auto rhs = b.range(key, 0.0, horizon_s);
      EXPECT_EQ(lhs.count, rhs.count) << "server " << s << " counter " << c;
      EXPECT_DOUBLE_EQ(lhs.sum, rhs.sum) << "server " << s << " counter " << c;
      EXPECT_DOUBLE_EQ(lhs.min, rhs.min) << "server " << s << " counter " << c;
      EXPECT_DOUBLE_EQ(lhs.max, rhs.max) << "server " << s << " counter " << c;
    }
  }
}

}  // namespace

TEST(TelemetryStoreParallel, BulkMatchesSerialAppend) {
  const std::uint32_t servers = 9;
  const std::uint32_t counters = 4;
  const std::size_t steps = 50;
  const auto batch = fleet_batch(servers, counters, steps);

  TelemetryStore serial;
  for (const auto& sample : batch) {
    serial.append(sample.key, sample.time_s, sample.value);
  }
  TelemetryStore bulk;
  bulk.bulk_append(batch, /*threads=*/4);
  expect_stores_identical(serial, bulk, servers, counters, steps * 15.0);
}

TEST(TelemetryStoreParallel, BitIdenticalAcrossThreadCounts) {
  const std::uint32_t servers = 130;  // > kShards so shards hold several servers
  const std::uint32_t counters = 3;
  const std::size_t steps = 20;
  const auto batch = fleet_batch(servers, counters, steps);

  TelemetryStore at1;
  at1.bulk_append(batch, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    TelemetryStore at;
    at.bulk_append(batch, threads);
    expect_stores_identical(at1, at, servers, counters, steps * 15.0);
  }
}

TEST(TelemetryStoreParallel, InterleavesWithSingleAppends) {
  TelemetryStore store;
  store.append(make_key(0, 0), 0.0, 1.0);
  store.bulk_append({{make_key(0, 0), 15.0, 2.0}, {make_key(1, 0), 15.0, 3.0}},
                    2);
  store.append(make_key(1, 0), 30.0, 4.0);
  EXPECT_EQ(store.total_samples(), 4u);
  EXPECT_EQ(store.series_count(), 2u);
  const auto agg = store.range(make_key(0, 0), 0.0, 100.0);
  EXPECT_EQ(agg.count, 2u);
  EXPECT_DOUBLE_EQ(agg.sum, 3.0);
}

TEST(TelemetryStoreParallel, EmptyBatchIsNoOp) {
  TelemetryStore store;
  store.bulk_append({}, 4);
  EXPECT_EQ(store.total_samples(), 0u);
  EXPECT_EQ(store.series_count(), 0u);
}

TEST(TelemetryStoreParallel, SharedPoolReuse) {
  ThreadPool pool(3);
  TelemetryStore store;
  const auto batch = fleet_batch(5, 2, 10);
  auto later = batch;  // second batch continues where the first left off
  for (auto& sample : later) sample.time_s += 10 * 15.0;
  store.bulk_append(batch, pool);
  store.bulk_append(later, pool);
  EXPECT_EQ(store.total_samples(), 2 * batch.size());
}

TEST(StoreAgreement, MultiScaleMatchesRawScan) {
  // The §5.3 claim only holds if the fast path gives the same answers.
  TelemetryStore store;
  RawStore raw;
  const CounterKey key = make_key(7, 7);
  for (int i = 0; i < 1000; ++i) {
    const double v = 50.0 + 30.0 * ((i % 17) / 17.0);
    store.append(key, i * 15.0, v);
    raw.append(key, i * 15.0, v);
  }
  const double t0 = 0.0;
  const double t1 = 1000 * 15.0;
  const auto fast = store.range(key, t0, t1);
  const auto slow = raw.range(key, t0, t1);
  EXPECT_EQ(fast.count, slow.count);
  EXPECT_NEAR(fast.mean(), slow.mean, 1e-9);
  EXPECT_DOUBLE_EQ(fast.min, slow.min);
  EXPECT_DOUBLE_EQ(fast.max, slow.max);
}

}  // namespace
}  // namespace epm::telemetry
