#include "telemetry/store.h"

#include <gtest/gtest.h>

namespace epm::telemetry {
namespace {

TEST(CounterKey, PackAndUnpack) {
  const CounterKey key = make_key(1234, 56);
  EXPECT_EQ(server_of(key), 1234u);
  EXPECT_EQ(counter_of(key), 56u);
  EXPECT_NE(make_key(1, 2), make_key(2, 1));
}

TEST(TelemetryStore, LazySeriesCreation) {
  TelemetryStore store;
  EXPECT_EQ(store.series_count(), 0u);
  store.append(make_key(0, 0), 0.0, 1.0);
  store.append(make_key(0, 1), 0.0, 2.0);
  store.append(make_key(0, 0), 15.0, 3.0);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.total_samples(), 3u);
  EXPECT_TRUE(store.contains(make_key(0, 0)));
  EXPECT_FALSE(store.contains(make_key(9, 9)));
  EXPECT_THROW(store.series(make_key(9, 9)), std::invalid_argument);
}

TEST(TelemetryStore, HourlyPatternQuery) {
  TelemetryStore store;
  const CounterKey key = make_key(1, 1);
  // Two hours: 40 then 80.
  for (int i = 0; i < 2 * 240; ++i) {
    store.append(key, i * 15.0, i < 240 ? 40.0 : 80.0);
  }
  const auto pattern = store.hourly_pattern(key, 0.0, 7200.0);
  ASSERT_EQ(pattern.means.size(), 2u);
  EXPECT_DOUBLE_EQ(pattern.means[0], 40.0);
  EXPECT_DOUBLE_EQ(pattern.means[1], 80.0);
}

TEST(TelemetryStore, DailyTrendQuery) {
  // Coarse samples (15 min) keep this fast: 3 days with rising means.
  MultiScaleConfig config;
  config.levels = {{900.0, 0}, {3600.0, 0}, {86400.0, 0}};
  TelemetryStore store(config);
  const CounterKey key = make_key(2, 7);
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i < 96; ++i) {
      store.append(key, d * 86400.0 + i * 900.0, 10.0 * (d + 1));
    }
  }
  const auto trend = store.daily_trend(key, 0.0, 3.0 * 86400.0);
  ASSERT_EQ(trend.means.size(), 3u);
  EXPECT_DOUBLE_EQ(trend.means[0], 10.0);
  EXPECT_DOUBLE_EQ(trend.means[2], 30.0);
}

TEST(TelemetryStore, MemoryAccounting) {
  TelemetryStore store;
  store.append(make_key(0, 0), 0.0, 1.0);
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(RawStore, RangeScan) {
  RawStore raw;
  const CounterKey key = make_key(3, 3);
  for (int i = 0; i < 100; ++i) {
    raw.append(key, i * 15.0, static_cast<double>(i));
  }
  const auto stats = raw.range(key, 150.0, 300.0);  // samples 10..19
  EXPECT_EQ(stats.count, 10u);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.max, 19.0);
  EXPECT_DOUBLE_EQ(stats.mean, 14.5);
  EXPECT_EQ(raw.total_samples(), 100u);
  EXPECT_GT(raw.memory_bytes(), 100 * 2 * sizeof(double) - 1);
}

TEST(RawStore, EmptyRangeAndUnknownKey) {
  RawStore raw;
  const CounterKey key = make_key(1, 1);
  raw.append(key, 0.0, 1.0);
  const auto stats = raw.range(key, 100.0, 200.0);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_THROW(raw.range(make_key(5, 5), 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(raw.append(key, -10.0, 1.0), std::invalid_argument);
}

TEST(StoreAgreement, MultiScaleMatchesRawScan) {
  // The §5.3 claim only holds if the fast path gives the same answers.
  TelemetryStore store;
  RawStore raw;
  const CounterKey key = make_key(7, 7);
  for (int i = 0; i < 1000; ++i) {
    const double v = 50.0 + 30.0 * ((i % 17) / 17.0);
    store.append(key, i * 15.0, v);
    raw.append(key, i * 15.0, v);
  }
  const double t0 = 0.0;
  const double t1 = 1000 * 15.0;
  const auto fast = store.series(key).range(t0, t1);
  const auto slow = raw.range(key, t0, t1);
  EXPECT_EQ(fast.count, slow.count);
  EXPECT_NEAR(fast.mean(), slow.mean, 1e-9);
  EXPECT_DOUBLE_EQ(fast.min, slow.min);
  EXPECT_DOUBLE_EQ(fast.max, slow.max);
}

}  // namespace
}  // namespace epm::telemetry
