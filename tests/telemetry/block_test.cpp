// ColumnSeries / SealedBlock (block.h): the seal pipeline must answer band
// queries bit-identically to a MultiScaleSeries fed the same samples, keep
// exact raw history through compression, downsample with the laned summary,
// and surface spikes through the streaming detector. Suite name "SeriesBlock"
// keeps these under the TSan/ASan CI regexes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "telemetry/block.h"
#include "telemetry/multiscale.h"

namespace epm::telemetry {
namespace {

bool aggregates_identical(const Aggregate& a, const Aggregate& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min && a.max == b.max;
}

TelemetryTuning tiny_blocks(std::size_t capacity) {
  TelemetryTuning tuning;
  tuning.block_capacity = capacity;
  return tuning;
}

TEST(SeriesBlock, LaneSummaryMatchesStrictScalarFold) {
  Rng rng(5);
  for (std::size_t n = 0; n <= 33; ++n) {
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(-1e6, 1e6);
    const Aggregate laned = lane_summary(values.data(), n);
    Aggregate strict;
    for (const double v : values) strict.add(v);
    EXPECT_TRUE(aggregates_identical(laned, strict)) << "n=" << n;
  }
}

TEST(SeriesBlock, SealsAtCapacityAndFlushSealsTheRemainder) {
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(8));
  for (int i = 0; i < 21; ++i) {
    series.append(15.0 * i, static_cast<double>(i));
  }
  EXPECT_EQ(series.blocks().size(), 2u);  // 8 + 8 sealed
  EXPECT_EQ(series.open_samples(), 5u);
  EXPECT_EQ(series.total_samples(), 21u);
  series.flush();
  EXPECT_EQ(series.blocks().size(), 3u);
  EXPECT_EQ(series.open_samples(), 0u);
  series.flush();  // idempotent on empty open block
  EXPECT_EQ(series.blocks().size(), 3u);
}

TEST(SeriesBlock, SealedBlockDecodesBitExactly) {
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(16));
  std::vector<double> times;
  std::vector<double> values;
  Rng rng(9);
  for (int i = 0; i < 16; ++i) {
    times.push_back(15.0 * i + 3.0);
    values.push_back(std::floor(rng.uniform(0.0, 1000.0)));
    series.append(times.back(), values.back());
  }
  ASSERT_EQ(series.blocks().size(), 1u);
  const SealedBlock& block = series.blocks().front();
  EXPECT_EQ(block.samples, 16u);
  EXPECT_EQ(block.first_time_s, times.front());
  EXPECT_EQ(block.last_time_s, times.back());
  std::vector<double> got_times;
  std::vector<double> got_values;
  block.decode(got_times, got_values);
  EXPECT_EQ(got_times, times);
  EXPECT_EQ(got_values, values);
  EXPECT_LT(block.payload_bytes(), 16u * 16u);  // compressed below raw
}

TEST(SeriesBlock, RejectsTimeRegressions) {
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(8));
  series.append(100.0, 1.0);
  EXPECT_THROW(series.append(99.0, 1.0), std::invalid_argument);
  EXPECT_THROW(series.append(-1.0, 1.0), std::invalid_argument);
  series.append(100.0, 2.0);  // equal timestamps are allowed
  EXPECT_EQ(series.total_samples(), 2u);
}

TEST(SeriesBlock, BandQueriesMatchMultiScaleSeriesBitForBit) {
  // A day of 15 s samples through a 7-sample block (many seals + a partial
  // open block) must answer every band query exactly as the legacy cascade.
  MultiScaleConfig config;
  ColumnSeries columnar(config, tiny_blocks(7));
  MultiScaleSeries legacy(config);
  Rng rng(11);
  double value = 40.0;
  const auto samples = static_cast<std::size_t>(86400.0 / 15.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = 15.0 * static_cast<double>(i);
    value += rng.uniform(-0.75, 0.75);
    columnar.append(t, value);
    legacy.append(t, value);
  }
  ASSERT_EQ(columnar.level_count(), legacy.level_count());

  const double windows[][2] = {{0.0, 86400.0},        {86400.0 - 3600.0, 86400.0},
                               {1000.0, 2000.0},      {0.0, 15.0},
                               {80000.0, 90000.0},    {86399.0, 86400.0},
                               {20000.0, 20000.0}};
  for (const auto& w : windows) {
    EXPECT_TRUE(aggregates_identical(columnar.range(w[0], w[1]),
                                     legacy.range(w[0], w[1])))
        << "range [" << w[0] << ", " << w[1] << ")";
    for (std::size_t level = 0; level < legacy.level_count(); ++level) {
      EXPECT_TRUE(
          aggregates_identical(columnar.range_at_level(level, w[0], w[1]),
                               legacy.range_at_level(level, w[0], w[1])))
          << "level " << level << " [" << w[0] << ", " << w[1] << ")";
      const auto a = columnar.means_at_level(level, w[0], w[1]);
      const auto b = legacy.means_at_level(level, w[0], w[1]);
      EXPECT_EQ(a.times_s, b.times_s) << "level " << level;
      EXPECT_EQ(a.means, b.means) << "level " << level;
    }
  }

  // Flushing moves the open block into the chain without changing answers.
  const Aggregate before = columnar.range(0.0, 86400.0);
  columnar.flush();
  EXPECT_TRUE(aggregates_identical(before, columnar.range(0.0, 86400.0)));
}

TEST(SeriesBlock, RawRangeIsExactAcrossSealedAndOpenSamples) {
  // Integer values make the sum association-free, so the reference fold is
  // exact whatever block granularity contributes summaries.
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(16));
  Rng rng(21);
  std::vector<double> times;
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {  // 6 sealed blocks + 4 open samples
    times.push_back(15.0 * i);
    values.push_back(static_cast<double>(rng.uniform_int(0, 1000)));
    series.append(times.back(), values.back());
  }
  const double queries[][2] = {{0.0, 1500.0},  {0.0, 10.0},    {100.0, 900.0},
                               {1400.0, 1500.0}, {237.0, 1201.0}, {1485.0, 1e9}};
  for (const auto& q : queries) {
    Aggregate expect;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] >= q[0] && times[i] < q[1]) expect.add(values[i]);
    }
    const Aggregate got = series.raw_range(q[0], q[1]);
    EXPECT_EQ(got.count, expect.count) << "[" << q[0] << ", " << q[1] << ")";
    EXPECT_EQ(got.sum, expect.sum);
    if (expect.count > 0) {
      EXPECT_EQ(got.min, expect.min);
      EXPECT_EQ(got.max, expect.max);
    }
  }
}

TEST(SeriesBlock, StreamingDetectorFlagsSpikeAfterWarmup) {
  TelemetryTuning tuning = tiny_blocks(32);
  ColumnSeries series(MultiScaleConfig{}, tuning);
  // 64 calm samples, then one huge spike, then calm again.
  Rng rng(3);
  const double spike_t = 15.0 * 64.0;
  for (int i = 0; i < 96; ++i) {
    const double t = 15.0 * i;
    const double v = i == 64 ? 5000.0 : 50.0 + rng.uniform(-1.0, 1.0);
    series.append(t, v);
  }
  series.flush();
  const auto& events = series.anomalies();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().time_s, spike_t);
  EXPECT_EQ(events.front().value, 5000.0);
  EXPECT_GT(events.front().zscore, 6.0);
}

TEST(SeriesBlock, WarmupSamplesNeverAlarm) {
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(8));
  // A violent step inside the 32-sample warmup must stay silent — the batch
  // detector has the same blind spot.
  for (int i = 0; i < 30; ++i) {
    series.append(15.0 * i, i == 10 ? 1e6 : 1.0);
  }
  series.flush();
  EXPECT_TRUE(series.anomalies().empty());
}

TEST(SeriesBlock, MemoryAccountingShrinksBelowRaw) {
  ColumnSeries series(MultiScaleConfig{}, tiny_blocks(1024));
  for (int i = 0; i < 4096; ++i) {
    series.append(15.0 * i, 100.0 + (i % 3));
  }
  series.flush();
  EXPECT_EQ(series.raw_sample_bytes(), 4096u * 16u);
  EXPECT_LT(series.compressed_payload_bytes(), series.raw_sample_bytes() / 8);
}

}  // namespace
}  // namespace epm::telemetry
