// IngestRing: the lock-free SPSC ring the columnar firehose feeds ingest
// through. FIFO order is load-bearing — the store's determinism argument
// (per-series sample order == batch order at any thread count) rests on
// every ring delivering its items exactly in push order. The concurrent
// suites here run under TSan in CI (the regex matches "IngestRing").
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/ring.h"

namespace epm::telemetry {
namespace {

TEST(IngestRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IngestRing<int>(2).capacity(), 2u);
  EXPECT_EQ(IngestRing<int>(3).capacity(), 4u);
  EXPECT_EQ(IngestRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(IngestRing<int>(1024).capacity(), 1024u);
}

TEST(IngestRing, RejectsDegenerateCapacity) {
  EXPECT_THROW(IngestRing<int>(1), std::invalid_argument);
}

TEST(IngestRing, SingleThreadFifoAndFullEmpty) {
  IngestRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  // Freed slots are reusable (wraparound).
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(IngestRing, PopChunkPreservesOrderAcrossWrap) {
  IngestRing<int> ring(8);
  int buf[8];
  // Offset head/tail so the chunk pop straddles the wrap point.
  for (int i = 0; i < 5; ++i) ring.push(i);
  int out = 0;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_pop(out));
  for (int i = 0; i < 8; ++i) ring.push(100 + i);
  EXPECT_EQ(ring.pop_chunk(buf, 3), 3u);
  EXPECT_EQ(buf[0], 100);
  EXPECT_EQ(buf[2], 102);
  EXPECT_EQ(ring.pop_chunk(buf, 8), 5u);
  EXPECT_EQ(buf[0], 103);
  EXPECT_EQ(buf[4], 107);
  EXPECT_EQ(ring.pop_chunk(buf, 8), 0u);
}

TEST(IngestRing, DrainedRequiresCloseAndEmpty) {
  IngestRing<int> ring(4);
  ring.push(1);
  EXPECT_FALSE(ring.drained());  // not closed
  ring.close();
  EXPECT_FALSE(ring.drained());  // closed but not empty
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.drained());
}

TEST(IngestRing, ConcurrentProducerConsumerIsFifoAndLossless) {
  // One producer thread races one consumer through a small ring, forcing
  // many full/empty transitions; the consumer must see exactly 0..n-1.
  constexpr std::uint32_t kItems = 200'000;
  IngestRing<std::uint32_t> ring(64);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  std::uint32_t expected = 0;
  std::uint32_t item = 0;
  bool ordered = true;
  while (true) {
    if (ring.try_pop(item)) {
      ordered = ordered && item == expected;
      ++expected;
    } else if (ring.drained()) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kItems);
}

TEST(IngestRing, ConcurrentChunkedConsumerSeesEveryItemInOrder) {
  // Same race, consumed through pop_chunk (the drainer's fast path).
  constexpr std::uint32_t kItems = 200'000;
  IngestRing<std::uint32_t> ring(128);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  std::uint32_t expected = 0;
  std::uint32_t buf[37];  // deliberately not a power of two
  bool ordered = true;
  while (true) {
    const std::size_t n = ring.pop_chunk(buf, 37);
    if (n == 0) {
      if (ring.drained()) break;
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ordered = ordered && buf[i] == expected;
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kItems);
}

}  // namespace
}  // namespace epm::telemetry
