#include "telemetry/multiscale.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace epm::telemetry {
namespace {

TEST(Aggregate, AddAndMerge) {
  Aggregate a;
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Aggregate b;
  b.add(5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
  EXPECT_EQ(a.count, 3u);
  Aggregate empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 3u);
  empty.merge(a);
  EXPECT_EQ(empty.count, 3u);
}

MultiScaleConfig tiny_config() {
  // 10 s base with tight retention, 60 s and 600 s above it.
  MultiScaleConfig config;
  config.levels = {{10.0, 12}, {60.0, 1440}, {600.0, 0}};
  return config;
}

TEST(MultiScaleSeries, AggregatesMatchRawData) {
  MultiScaleSeries series(tiny_config());
  double sum = 0.0;
  for (int i = 0; i < 6; ++i) {
    series.append(i * 10.0, static_cast<double>(i));
    sum += i;
  }
  const auto agg = series.range_at_level(1, 0.0, 60.0);  // one 60 s bin
  EXPECT_EQ(agg.count, 6u);
  EXPECT_DOUBLE_EQ(agg.sum, sum);
  EXPECT_DOUBLE_EQ(agg.min, 0.0);
  EXPECT_DOUBLE_EQ(agg.max, 5.0);
}

TEST(MultiScaleSeries, EveryLevelSeesEverySample) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 100; ++i) series.append(i * 10.0, 1.0);
  for (std::size_t level = 0; level < series.level_count(); ++level) {
    const auto agg = series.range_at_level(level, 0.0, 1000.0);
    EXPECT_GT(agg.count, 0u) << "level " << level;
  }
  // Coarse level retains everything.
  EXPECT_EQ(series.range_at_level(2, 0.0, 1000.0).count, 100u);
}

TEST(MultiScaleSeries, FineLevelEvicts) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 100; ++i) series.append(i * 10.0, 1.0);
  EXPECT_LE(series.level_bins(0), 12u);  // retention bound
  // Early window no longer served by level 0...
  const auto early_fine = series.range_at_level(0, 0.0, 100.0);
  EXPECT_EQ(early_fine.count, 0u);
  // ...but range() transparently falls back to a retained level. The
  // answer is bin-aligned: [0, 100) straddles 60 s bins 0 and 1, so both
  // whole bins (12 samples) are included.
  const auto early = series.range(0.0, 100.0);
  EXPECT_EQ(early.count, 12u);
}

TEST(MultiScaleSeries, RangePrefersFinestRetainedLevel) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 100; ++i) series.append(i * 10.0, static_cast<double>(i % 7));
  // Recent window: answered from the fine level -> exact.
  const auto recent = series.range(900.0, 990.0);
  EXPECT_EQ(recent.count, 9u);
}

TEST(MultiScaleSeries, PartialBinQueriesAreBinAligned) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 12; ++i) series.append(i * 10.0, 1.0);
  // [5, 15) clips into bins 0 and 1 -> both included whole.
  const auto agg = series.range_at_level(0, 5.0, 15.0);
  EXPECT_EQ(agg.count, 2u);
}

TEST(MultiScaleSeries, SparseDataPadsEmptyBins) {
  MultiScaleSeries series(tiny_config());
  series.append(0.0, 1.0);
  series.append(50.0, 2.0);  // skips 4 bins
  const auto agg = series.range_at_level(0, 0.0, 60.0);
  EXPECT_EQ(agg.count, 2u);
  const auto means = series.means_at_level(0, 0.0, 60.0);
  EXPECT_EQ(means.means.size(), 2u);  // empty bins skipped
  EXPECT_DOUBLE_EQ(means.times_s[1], 50.0);
}

TEST(MultiScaleSeries, MeansAtLevel) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 12; ++i) {
    series.append(i * 10.0, i < 6 ? 10.0 : 20.0);
  }
  const auto means = series.means_at_level(1, 0.0, 120.0);
  ASSERT_EQ(means.means.size(), 2u);
  EXPECT_DOUBLE_EQ(means.means[0], 10.0);
  EXPECT_DOUBLE_EQ(means.means[1], 20.0);
}

TEST(MultiScaleSeries, MemoryBounded) {
  MultiScaleSeries series(tiny_config());
  for (int i = 0; i < 100000; ++i) series.append(i * 10.0, 1.0);
  // Level 0 capped at 12 bins; level 1/2 unlimited but coarse.
  const std::size_t raw_bytes = 100000 * sizeof(double) * 2;
  EXPECT_LT(series.memory_bytes(), raw_bytes / 10);
  EXPECT_EQ(series.total_samples(), 100000u);
}

TEST(MultiScaleSeries, RejectsTimeTravelAndBadConfig) {
  MultiScaleSeries series(tiny_config());
  series.append(100.0, 1.0);
  EXPECT_THROW(series.append(50.0, 1.0), std::invalid_argument);
  MultiScaleConfig bad;
  bad.levels = {{60.0, 0}, {90.0, 0}};  // not an integer multiple
  EXPECT_THROW(MultiScaleSeries{bad}, std::invalid_argument);
  bad.levels = {};
  EXPECT_THROW(MultiScaleSeries{bad}, std::invalid_argument);
  EXPECT_THROW(series.range_at_level(99, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(series.range(10.0, 5.0), std::invalid_argument);
}

TEST(MultiScaleSeries, DefaultConfigPaperScales) {
  // 15 s -> 1 min -> 15 min -> 1 h -> 1 d ladder accepts a day of samples.
  MultiScaleSeries series;
  Rng rng(1);
  for (int i = 0; i < 5760; ++i) {  // one day at 15 s
    series.append(i * 15.0, 50.0 + rng.normal(0.0, 5.0));
  }
  const auto day = series.range(0.0, 86400.0);
  EXPECT_EQ(day.count, 5760u);
  EXPECT_NEAR(day.mean(), 50.0, 0.5);
}

}  // namespace
}  // namespace epm::telemetry
