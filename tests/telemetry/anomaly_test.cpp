#include "telemetry/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.h"
#include "core/units.h"

namespace epm::telemetry {
namespace {

TEST(DetectSpikes, FindsInjectedSpike) {
  Rng rng(1);
  TimeSeries series(0.0, 15.0);
  for (int i = 0; i < 500; ++i) {
    double v = 100.0 + rng.normal(0.0, 2.0);
    if (i == 300) v = 160.0;  // 30-sigma spike
    series.push_back(v);
  }
  const auto spikes = detect_spikes(series);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0].index, 300u);
  EXPECT_GT(spikes[0].zscore, 10.0);
}

TEST(DetectSpikes, QuietSeriesHasNone) {
  Rng rng(2);
  TimeSeries series(0.0, 15.0);
  for (int i = 0; i < 1000; ++i) series.push_back(100.0 + rng.normal(0.0, 2.0));
  EXPECT_TRUE(detect_spikes(series).empty());
}

TEST(DetectSpikes, FlatSeriesDoesNotDivideByZero) {
  TimeSeries series(0.0, 15.0, std::vector<double>(100, 5.0));
  EXPECT_TRUE(detect_spikes(series).empty());
}

TEST(DetectSpikes, SustainedShiftStopsAlarming) {
  TimeSeries series(0.0, 15.0);
  for (int i = 0; i < 100; ++i) series.push_back(10.0);
  for (int i = 0; i < 100; ++i) series.push_back(50.0);
  SpikeConfig config;
  config.window = 20;
  config.min_stddev = 0.5;
  const auto spikes = detect_spikes(series, config);
  ASSERT_FALSE(spikes.empty());
  // Once the window absorbs the new level, alarms stop.
  EXPECT_LT(spikes.back().index, 140u);
}

TEST(DetectSpikes, TooShortSeries) {
  TimeSeries series(0.0, 15.0, {1.0, 2.0});
  EXPECT_TRUE(detect_spikes(series).empty());
  EXPECT_THROW(detect_spikes(series, SpikeConfig{.window = 1}), std::invalid_argument);
}

TEST(RemoveSeasonal, StripsHourlyPattern) {
  // value = 100 + hour-of-day * 2 repeated daily; residual should be ~0.
  TimeSeries series(0.0, 3600.0);
  for (int i = 0; i < 24 * 7; ++i) {
    series.push_back(100.0 + 2.0 * (i % 24));
  }
  const auto residual = remove_seasonal(series, kSecondsPerDay, 3600.0);
  const auto stats = residual.stats();
  EXPECT_NEAR(stats.mean(), 0.0, 1e-9);
  EXPECT_NEAR(stats.max(), 0.0, 1e-9);
}

TEST(RemoveSeasonal, PreservesResidualStructure) {
  TimeSeries series(0.0, 3600.0);
  for (int i = 0; i < 24 * 7; ++i) {
    series.push_back(100.0 + 2.0 * (i % 24) + (i == 50 ? 30.0 : 0.0));
  }
  const auto residual = remove_seasonal(series, kSecondsPerDay, 3600.0);
  // The one-off excursion survives detrending.
  EXPECT_GT(residual[50], 20.0);
}

TEST(ResidualCorrelation, LoadBalancedReplicasCorrelate) {
  // Two replicas behind one balancer share the residual fluctuations.
  Rng rng(3);
  TimeSeries a(0.0, 3600.0);
  TimeSeries b(0.0, 3600.0);
  for (int i = 0; i < 24 * 14; ++i) {
    const double seasonal = 50.0 * std::sin(2.0 * std::numbers::pi * (i % 24) / 24.0);
    const double shared = rng.normal(0.0, 10.0);
    a.push_back(100.0 + seasonal + shared + rng.normal(0.0, 1.0));
    b.push_back(100.0 + seasonal + shared + rng.normal(0.0, 1.0));
  }
  EXPECT_GT(residual_correlation(a, b, kSecondsPerDay, 3600.0), 0.9);
}

TEST(ResidualCorrelation, IndependentResidualsDoNot) {
  Rng rng(4);
  TimeSeries a(0.0, 3600.0);
  TimeSeries b(0.0, 3600.0);
  for (int i = 0; i < 24 * 14; ++i) {
    const double seasonal = 50.0 * std::sin(2.0 * std::numbers::pi * (i % 24) / 24.0);
    a.push_back(100.0 + seasonal + rng.normal(0.0, 10.0));
    b.push_back(100.0 + seasonal + rng.normal(0.0, 10.0));
  }
  // Raw series correlate strongly (shared seasonality)...
  EXPECT_GT(pearson_correlation(a.values(), b.values()), 0.8);
  // ...but residuals do not: the balancer-health signal is in the residual.
  EXPECT_LT(std::abs(residual_correlation(a, b, kSecondsPerDay, 3600.0)), 0.2);
}

TEST(RemoveSeasonal, Validation) {
  TimeSeries series(0.0, 3600.0, {1.0, 2.0});
  EXPECT_THROW(remove_seasonal(series, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(remove_seasonal(series, 10.0, 60.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::telemetry
