#include "telemetry/banding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.h"
#include "core/units.h"

namespace epm::telemetry {
namespace {

/// A week of 1-minute CPU samples: rising trend + diurnal + noise + spikes.
TimeSeries synthetic_week(double noise_sd, std::uint64_t seed = 5) {
  Rng rng(seed);
  TimeSeries series(0.0, 60.0);
  const auto n = static_cast<std::size_t>(weeks(1.0) / 60.0);
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 60.0;
    const double day = t / kSecondsPerDay;
    const double hour = std::fmod(t, kSecondsPerDay) / kSecondsPerHour;
    double v = 40.0 + 2.0 * day +
               15.0 * std::sin(2.0 * std::numbers::pi * (hour - 8.0) / 24.0);
    if (noise_sd > 0.0) v += rng.normal(0.0, noise_sd);
    if (i == n / 2) v += 50.0;  // anomaly worth keeping
    series.push_back(v);
  }
  return series;
}

TEST(Banding, ReconstructionErrorBoundedByThreshold) {
  const auto series = synthetic_week(2.0);
  for (double threshold : {0.5, 2.0, 5.0, 10.0}) {
    const auto bands = band_compress(series, threshold);
    const auto recon = band_reconstruct(bands);
    ASSERT_EQ(recon.size(), series.size());
    EXPECT_LE(max_abs_error(series, recon), threshold + 1e-9)
        << "threshold " << threshold;
  }
}

TEST(Banding, ZeroThresholdIsLossless) {
  const auto series = synthetic_week(2.0);
  const auto bands = band_compress(series, 0.0);
  const auto recon = band_reconstruct(bands);
  EXPECT_LE(max_abs_error(series, recon), 1e-9);
}

TEST(Banding, AnomalySurvivesCompression) {
  const auto series = synthetic_week(2.0);
  const auto bands = band_compress(series, 10.0);
  const auto recon = band_reconstruct(bands);
  const std::size_t spike = series.size() / 2;
  // The 50-unit excursion is out-of-band signal, not noise: kept exactly.
  EXPECT_NEAR(recon[spike], series[spike], 1e-9);
}

TEST(Banding, CompressionRatioGrowsWithThreshold) {
  const auto series = synthetic_week(2.0);
  double prev_ratio = 0.0;
  for (double threshold : {1.0, 4.0, 8.0}) {
    const auto bands = band_compress(series, threshold);
    EXPECT_GE(bands.compression_ratio(), prev_ratio);
    prev_ratio = bands.compression_ratio();
  }
  // At 4 sigma nearly every residual is dropped: ratio should be large.
  const auto heavy = band_compress(series, 8.0);
  EXPECT_GT(heavy.compression_ratio(), 50.0);
  EXPECT_LT(heavy.residual_value.size(), series.size() / 100);
}

TEST(Banding, BandsCaptureTrendAndPattern) {
  const auto series = synthetic_week(0.0);
  const auto bands = band_compress(series, 1e9);  // drop every residual
  ASSERT_EQ(bands.daily_trend.size(), 7u);
  // Trend rises ~2/day.
  EXPECT_NEAR(bands.daily_trend[6] - bands.daily_trend[0], 12.0, 0.5);
  ASSERT_EQ(bands.hourly_profile.size(), 24u);
  // Diurnal peak (hour 14) minus trough (hour 2) ~ 2 * 15 = 30.
  const double peak = *std::max_element(bands.hourly_profile.begin(),
                                        bands.hourly_profile.end());
  const double trough = *std::min_element(bands.hourly_profile.begin(),
                                          bands.hourly_profile.end());
  EXPECT_NEAR(peak - trough, 30.0, 2.0);
}

TEST(Banding, NoiseOnlyResidualsDropped) {
  // Pure trend+pattern signal with sigma-2 noise and a 4-sigma threshold:
  // essentially everything but the injected anomaly is "noise".
  const auto series = synthetic_week(2.0);
  const auto bands = band_compress(series, 8.0);
  bool anomaly_kept = false;
  for (std::size_t k = 0; k < bands.residual_index.size(); ++k) {
    if (bands.residual_index[k] == series.size() / 2) anomaly_kept = true;
  }
  EXPECT_TRUE(anomaly_kept);
}

TEST(Banding, MemoryAccounting) {
  const auto series = synthetic_week(2.0);
  const auto bands = band_compress(series, 8.0);
  EXPECT_EQ(bands.raw_bytes(), series.size() * sizeof(double));
  EXPECT_LT(bands.memory_bytes(), bands.raw_bytes());
  EXPECT_EQ(bands.stored_values(),
            bands.daily_trend.size() + 24 + bands.residual_value.size());
}

TEST(Banding, Validation) {
  TimeSeries empty(0.0, 60.0);
  EXPECT_THROW(band_compress(empty, 1.0), std::invalid_argument);
  const auto series = synthetic_week(0.0);
  EXPECT_THROW(band_compress(series, -1.0), std::invalid_argument);
  BandDecomposition bad;
  EXPECT_THROW(band_reconstruct(bad), std::invalid_argument);
  TimeSeries a(0.0, 1.0, {1.0});
  TimeSeries b(0.0, 1.0, {1.0, 2.0});
  EXPECT_THROW(max_abs_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace epm::telemetry
