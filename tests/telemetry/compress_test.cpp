// Property test for the columnar codecs (compress.h): encode -> decode is
// a bit-exact identity over arbitrary doubles. 10,000 randomized series per
// seed x 3 seeds, mixing the shapes real counters produce (constant runs,
// monotone ramps, stuck-at alternation) with adversarial bit patterns
// (NaNs with payloads, denormals, infinities, signed zero) that arithmetic
// comparison would mangle — the codecs must treat every double as an opaque
// 64-bit pattern.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "telemetry/compress.h"

namespace epm::telemetry {
namespace {

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

double nasty_double(Rng& rng) {
  static const double kPool[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::signaling_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::epsilon(),
      1.0,
      -1.0,
      1e308,
      4.9e-324,
  };
  if (rng.bernoulli(0.5)) {
    return kPool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(std::size(kPool)) - 1))];
  }
  // A fully random bit pattern: hits NaN payloads, denormals, and every
  // exponent with equal prejudice.
  return std::bit_cast<double>(rng.next_u64());
}

/// One randomized series: (times, values) of length 0..40 in one of the
/// reference-mix shapes, or raw adversarial patterns.
void make_series(Rng& rng, std::vector<double>& times, std::vector<double>& values) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
  times.clear();
  values.clear();
  const int shape = static_cast<int>(rng.uniform_int(0, 4));
  double t = rng.uniform(0.0, 1e6);
  const double cadence = rng.bernoulli(0.5) ? 15.0 : rng.uniform(0.1, 120.0);
  double v = static_cast<double>(rng.uniform_int(-1000, 1000));
  const double stuck = static_cast<double>(rng.uniform_int(-1000, 1000));
  for (std::size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:  // constant run on a fixed cadence
        break;
      case 1:  // monotone ramp (cumulative counter)
        v += static_cast<double>(rng.uniform_int(0, 100));
        break;
      case 2:  // stuck-at alternation in runs
        if (rng.bernoulli(0.2)) v = rng.bernoulli(0.5) ? stuck : v + 1.0;
        break;
      case 3:  // adversarial values on a sane cadence
        v = nasty_double(rng);
        break;
      default:  // adversarial values AND times (codec-contract torture)
        v = nasty_double(rng);
        break;
    }
    times.push_back(shape == 4 ? nasty_double(rng) : t);
    values.push_back(v);
    t += cadence;
    if (shape != 4 && rng.bernoulli(0.05)) t += cadence * 37.0;  // gap
  }
}

TEST(TelemetryCompressProperty, EncodeDecodeIsBitExactOver30kRandomSeries) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<double> times;
    std::vector<double> values;
    std::vector<double> rt_times;
    std::vector<double> rt_values;
    for (int series = 0; series < 10'000; ++series) {
      make_series(rng, times, values);

      BitWriter tw;
      encode_times(times.data(), times.size(), tw);
      const auto time_bytes = tw.finish();
      BitReader tr(time_bytes);
      rt_times.assign(times.size(), 0.0);
      decode_times(tr, rt_times.data(), rt_times.size());
      ASSERT_TRUE(bit_equal(times, rt_times))
          << "time round-trip diverged (seed " << seed << ", series " << series
          << ", n " << times.size() << ")";

      BitWriter vw;
      encode_values(values.data(), values.size(), vw);
      const auto value_bytes = vw.finish();
      BitReader vr(value_bytes);
      rt_values.assign(values.size(), 0.0);
      decode_values(vr, rt_values.data(), rt_values.size());
      ASSERT_TRUE(bit_equal(values, rt_values))
          << "value round-trip diverged (seed " << seed << ", series " << series
          << ", n " << values.size() << ")";
    }
  }
}

TEST(TelemetryCompressProperty, BitStreamRoundTripsArbitraryWidths) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> chunks;
    BitWriter writer;
    for (int i = 0; i < 50; ++i) {
      const auto width = static_cast<unsigned>(rng.uniform_int(1, 64));
      const std::uint64_t bits =
          width == 64 ? rng.next_u64() : (rng.next_u64() & ((1ull << width) - 1));
      chunks.emplace_back(bits, width);
      writer.put(bits, width);
    }
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    for (const auto& [bits, width] : chunks) {
      ASSERT_EQ(reader.get(width), bits) << "width " << width;
    }
  }
}

TEST(TelemetryCompress, ConstantCadenceSeriesCompressesFarBelowRaw) {
  // 1024 identical values on a fixed 15 s cadence: after the two seed
  // samples, every timestamp is a predictor hit (1 bit) and every value an
  // identical-XOR (1 bit) — the whole block should land near 2 bits/point
  // against 128 raw.
  constexpr std::size_t kN = 1024;
  std::vector<double> times(kN);
  std::vector<double> values(kN, 42.0);
  for (std::size_t i = 0; i < kN; ++i) times[i] = 15.0 * static_cast<double>(i);
  BitWriter tw;
  encode_times(times.data(), kN, tw);
  BitWriter vw;
  encode_values(values.data(), kN, vw);
  const std::size_t payload = tw.finish().size() + vw.finish().size();
  EXPECT_LT(payload, kN * 16 / 32);  // >= 32x on the ideal series
}

}  // namespace
}  // namespace epm::telemetry
