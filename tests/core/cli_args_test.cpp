#include "core/cli_args.h"

#include <gtest/gtest.h>

namespace epm {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "epmctl");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SubcommandAndFlags) {
  const auto args = parse({"simulate", "--servers", "120", "--policy", "joint"});
  EXPECT_EQ(args.command(), "simulate");
  EXPECT_EQ(args.get("servers", std::int64_t{0}), 120);
  EXPECT_EQ(args.get("policy", std::string{}), "joint");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = parse({"simulate"});
  EXPECT_EQ(args.get("days", std::int64_t{7}), 7);
  EXPECT_DOUBLE_EQ(args.get("peak-rps", 3000.0), 3000.0);
  EXPECT_EQ(args.get("csv", std::string{"out.csv"}), "out.csv");
  EXPECT_FALSE(args.has("verbose"));
}

TEST(CliArgs, BooleanSwitches) {
  const auto args = parse({"run", "--verbose", "--seed", "9", "--quiet"});
  EXPECT_TRUE(args.get_switch("verbose"));
  EXPECT_TRUE(args.get_switch("quiet"));
  EXPECT_FALSE(args.get_switch("missing"));
  EXPECT_EQ(args.get("seed", std::int64_t{0}), 9);
}

TEST(CliArgs, NoSubcommand) {
  const auto args = parse({"--help"});
  EXPECT_TRUE(args.command().empty());
  EXPECT_TRUE(args.get_switch("help"));
}

TEST(CliArgs, EmptyInvocation) {
  const auto args = parse({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_TRUE(args.unused().empty());
}

TEST(CliArgs, NumericParsing) {
  const auto args = parse({"x", "--rate", "12.5", "--count", "3"});
  EXPECT_DOUBLE_EQ(args.get("rate", 0.0), 12.5);
  EXPECT_EQ(args.get("count", std::int64_t{0}), 3);
  // Integer flag read as double works; garbage does not.
  EXPECT_DOUBLE_EQ(args.get("count", 0.0), 3.0);
}

TEST(CliArgs, MalformedInputs) {
  EXPECT_THROW(parse({"run", "stray-positional"}), std::invalid_argument);
  EXPECT_THROW(parse({"run", "--"}), std::invalid_argument);
  const auto args = parse({"x", "--rate", "abc", "--flagval", "7"});
  EXPECT_THROW(args.get("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_switch("flagval"), std::invalid_argument);
}

TEST(CliArgs, UnusedFlagsReported) {
  const auto args = parse({"run", "--known", "1", "--typo", "2"});
  EXPECT_EQ(args.get("known", std::int64_t{0}), 1);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace epm
