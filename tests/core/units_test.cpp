#include "core/units.h"

#include <gtest/gtest.h>

#include "core/logging.h"
#include "core/require.h"

namespace epm {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  static_assert(minutes(1.0) == 60.0);
  static_assert(hours(1.0) == 3600.0);
  static_assert(days(1.0) == 86400.0);
  static_assert(weeks(1.0) == 7.0 * 86400.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(to_days(days(10.0)), 10.0);
}

TEST(Units, PowerAndEnergy) {
  static_assert(kilowatts(1.0) == 1.0e3);
  static_assert(megawatts(2.0) == 2.0e6);
  EXPECT_DOUBLE_EQ(to_kilowatts(kilowatts(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(to_megawatts(megawatts(0.5)), 0.5);
  // 1 kW for 1 hour is 1 kWh.
  EXPECT_DOUBLE_EQ(to_kwh(kilowatts(1.0) * hours(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(kwh(2.0), 7.2e6);
  EXPECT_DOUBLE_EQ(to_mwh(kwh(1000.0)), 1.0);
}

TEST(Units, Frequency) {
  static_assert(gigahertz(2.4) == 2.4e9);
  EXPECT_DOUBLE_EQ(to_gigahertz(gigahertz(1.2)), 1.2);
}

TEST(Require, ThrowsTypedExceptions) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(require(false, "bad argument"), std::invalid_argument);
  EXPECT_THROW(ensure(false, "broken invariant"), std::logic_error);
  try {
    require(false, "the message");
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
}

TEST(Logging, LevelGating) {
  const auto restore = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold calls are cheap no-ops; above-threshold calls emit to
  // stderr. Both must simply not crash and must honor the level.
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("emitted");
  log_error("emitted too");
  set_log_level(LogLevel::kOff);
  log_error("dropped again");
  set_log_level(restore);
}

}  // namespace
}  // namespace epm
