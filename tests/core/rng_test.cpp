#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace epm {
namespace {

TEST(SplitMix64, DeterministicAndWellMixed) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  SplitMix64 c(2);
  const auto va = a.next();
  EXPECT_EQ(va, b.next());
  EXPECT_NE(va, c.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child and parent should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 6));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(6);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(10);
  for (const double mean : {0.5, 5.0, 200.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.03 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, LognormalUnitMeanParameterization) {
  // mu = -sigma^2/2 should give mean ~1 (used by the workload noise).
  Rng rng(14);
  const double sigma = 0.3;
  const double mu = -0.5 * sigma * sigma;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(15);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(16);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace epm
