#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/rng.h"

namespace epm {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 4.0, 0.5};
  OnlineStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(1);
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(10.0);  // boundary -> overflow
  h.add(99.0);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, FractionAbove) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.fraction_above(0.75), 0.25, 0.02);
  EXPECT_NEAR(h.fraction_above(-1.0), 1.0, 1e-12);
  EXPECT_NEAR(h.fraction_above(2.0), 0.0, 1e-12);
}

TEST(Histogram, EmptyQuantile) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.5), 0.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, FirstValueSeedsLevel) {
  Ewma e(0.1);
  e.add(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(PearsonCorrelation, PerfectAndAnti) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, c), -1.0, 1e-12);
}

TEST(PearsonCorrelation, DegenerateIsZero) {
  const std::vector<double> flat{3, 3, 3};
  const std::vector<double> vary{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(flat, vary), 0.0);
}

TEST(SampleQuantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(sample_quantile({5, 1, 3}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(sample_quantile({5, 1, 3}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sample_quantile({5, 1, 3}, 1.0), 5.0);
}

// Property sweep: histogram quantiles track exact sample quantiles for
// several distributions.
class HistogramQuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramQuantileProperty, TracksExactQuantiles) {
  const int dist = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(dist));
  std::vector<double> samples;
  Histogram h(0.0, 20.0, 400);
  for (int i = 0; i < 50000; ++i) {
    double x = 0.0;
    switch (dist) {
      case 0:
        x = rng.uniform(0.0, 10.0);
        break;
      case 1:
        x = rng.exponential(0.5);
        break;
      case 2:
        x = std::fabs(rng.normal(5.0, 2.0));
        break;
      default:
        x = rng.lognormal(1.0, 0.5);
        break;
    }
    samples.push_back(x);
    h.add(x);
  }
  for (double q : {0.1, 0.5, 0.9}) {
    const double exact = sample_quantile(samples, q);
    EXPECT_NEAR(h.quantile(q), exact, 0.15 + exact * 0.02) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramQuantileProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace epm
