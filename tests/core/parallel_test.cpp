#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace epm {
namespace {

TEST(ThreadPool, ThreadCountResolution) {
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_EQ(resolve_thread_count(0), default_thread_count());
  EXPECT_EQ(resolve_thread_count(-5), default_thread_count());
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Chunks get disjoint index ranges, so these writes never race.
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, MapReturnsResultsInInputOrder) {
  ThreadPool pool(8);
  const auto squares =
      pool.parallel_map(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin >= 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed call.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, NestedCallsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t, std::size_t) {
                                   pool.parallel_for(
                                       2, [](std::size_t, std::size_t) {});
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DifferentPoolsMayNest) {
  ThreadPool outer(2);
  std::atomic<int> total{0};
  outer.parallel_for(2, [&](std::size_t begin, std::size_t end) {
    ThreadPool inner(2);
    inner.parallel_for(5, [&](std::size_t b, std::size_t e) {
      total += static_cast<int>(e - b);
    });
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 12);
}

TEST(ThreadPool, ReplicateBitIdenticalAcrossThreadCounts) {
  auto draw = [](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_replicate(
        33, 99, [](Rng& rng, std::size_t) { return rng.uniform01(); });
  };
  const auto at1 = draw(1);
  const auto at2 = draw(2);
  const auto at8 = draw(8);
  ASSERT_EQ(at1.size(), 33u);
  for (std::size_t i = 0; i < at1.size(); ++i) {
    EXPECT_DOUBLE_EQ(at1[i], at2[i]) << "replica " << i;
    EXPECT_DOUBLE_EQ(at1[i], at8[i]) << "replica " << i;
  }
}

TEST(ThreadPool, ReplicateStreamsAreIndependentOfIndexNeighbors) {
  // Stream i must not depend on how much randomness stream i-1 consumed.
  ThreadPool pool(2);
  const auto greedy = pool.parallel_replicate(4, 7, [](Rng& rng, std::size_t i) {
    if (i == 0) {
      for (int k = 0; k < 1000; ++k) rng.next_u64();  // burn
    }
    return rng.uniform01();
  });
  const auto frugal = pool.parallel_replicate(
      4, 7, [](Rng& rng, std::size_t) { return rng.uniform01(); });
  for (std::size_t i = 1; i < 4; ++i) EXPECT_DOUBLE_EQ(greedy[i], frugal[i]);
}

TEST(ThreadPool, ReplicateSeedChangesStreams) {
  ThreadPool pool(2);
  const auto a = pool.parallel_replicate(
      8, 1, [](Rng& rng, std::size_t) { return rng.uniform01(); });
  const auto b = pool.parallel_replicate(
      8, 2, [](Rng& rng, std::size_t) { return rng.uniform01(); });
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace epm
