#include "core/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epm {
namespace {

TEST(TimeSeries, TimingAccessors) {
  TimeSeries s(10.0, 2.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.start_s(), 10.0);
  EXPECT_DOUBLE_EQ(s.step_s(), 2.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.end_s(), 16.0);
  EXPECT_DOUBLE_EQ(s.time_at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.time_at(2), 14.0);
}

TEST(TimeSeries, RejectsNonPositiveStep) {
  EXPECT_THROW(TimeSeries(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(0.0, -1.0), std::invalid_argument);
}

TEST(TimeSeries, ValueAtZeroOrderHold) {
  TimeSeries s(0.0, 10.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.value_at(-5.0), 1.0);   // clamp before start
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(9.9), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(25.0), 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(999.0), 3.0);  // clamp after end
}

TEST(TimeSeries, ValueAtEmptyThrows) {
  TimeSeries s(0.0, 1.0);
  EXPECT_THROW(s.value_at(0.0), std::invalid_argument);
}

TEST(TimeSeries, StatsAndStatsBetween) {
  TimeSeries s(0.0, 1.0, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.stats().mean(), 2.5);
  const auto mid = s.stats_between(1.0, 3.0);  // samples at t=1,2
  EXPECT_EQ(mid.count(), 2u);
  EXPECT_DOUBLE_EQ(mid.mean(), 2.5);
}

TEST(TimeSeries, DownsampleMean) {
  TimeSeries s(0.0, 1.0, {1.0, 3.0, 5.0, 7.0, 9.0});
  const auto d = s.downsample_mean(2);
  EXPECT_DOUBLE_EQ(d.step_s(), 2.0);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);  // trailing partial group
}

TEST(TimeSeries, DownsampleMax) {
  TimeSeries s(0.0, 1.0, {1.0, 3.0, 5.0, 2.0});
  const auto d = s.downsample(2, max_of);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(TimeSeries, MapAndScale) {
  TimeSeries s(0.0, 1.0, {1.0, 2.0});
  const auto m = s.map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  const auto sc = s.scaled(10.0);
  EXPECT_DOUBLE_EQ(sc[0], 10.0);
}

TEST(TimeSeries, AdditionRequiresMatchingTiming) {
  TimeSeries a(0.0, 1.0, {1.0, 2.0});
  TimeSeries b(0.0, 1.0, {10.0, 20.0});
  const auto c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 11.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  TimeSeries wrong_len(0.0, 1.0, {1.0});
  EXPECT_THROW(a + wrong_len, std::invalid_argument);
  TimeSeries wrong_step(0.0, 2.0, {1.0, 2.0});
  EXPECT_THROW(a + wrong_step, std::invalid_argument);
}

TEST(TimeSeries, DownsampleZeroFactorThrows) {
  TimeSeries s(0.0, 1.0, {1.0});
  EXPECT_THROW(s.downsample_mean(0), std::invalid_argument);
}

}  // namespace
}  // namespace epm
