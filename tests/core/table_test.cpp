#include "core/table.h"

#include <gtest/gtest.h>

namespace epm {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percent) { EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%"); }

TEST(Fmt, Si) {
  EXPECT_EQ(fmt_si(1500.0, 1), "1.5 k");
  EXPECT_EQ(fmt_si(2.5e6, 1), "2.5 M");
  EXPECT_EQ(fmt_si(3.0e9, 0), "3 G");
  EXPECT_EQ(fmt_si(12.0, 0), "12");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render(0);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(AsciiChart, ProducesRows) {
  const std::string chart = ascii_chart({1.0, 2.0, 3.0, 2.0, 1.0}, 20, 4);
  EXPECT_FALSE(chart.empty());
  // 4 rows of output.
  std::size_t newlines = 0;
  for (char c : chart) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 4u);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(AsciiChart, EmptyInputIsEmpty) {
  EXPECT_TRUE(ascii_chart({}, 10, 4).empty());
}

TEST(Banner, ContainsTitle) {
  EXPECT_NE(banner("Hello").find("Hello"), std::string::npos);
}

}  // namespace
}  // namespace epm
