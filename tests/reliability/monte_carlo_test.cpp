#include "reliability/monte_carlo.h"

#include <gtest/gtest.h>

namespace epm::reliability {
namespace {

TEST(MonteCarlo, SingleComponentMatchesAnalytic) {
  auto block = Block::component({"c", 100.0, 10.0, 0.0});  // A = 10/11
  MonteCarloConfig config;
  config.years = 60.0;
  config.replicas = 6;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(), 0.01);
  EXPECT_GT(result.outage_count, 0u);
  EXPECT_NEAR(result.mean_outage_h, 10.0, 2.0);
}

TEST(MonteCarlo, ParallelRedundancyMatchesAnalytic) {
  auto c = Block::component({"c", 100.0, 10.0, 0.0});
  auto block = Block::parallel("p", 1, {c, c});
  MonteCarloConfig config;
  config.years = 120.0;
  config.replicas = 6;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(), 0.005);
}

TEST(MonteCarlo, MaintenanceWindowCounted) {
  // Component that never fails but takes 87.6 h/yr of maintenance (1%).
  auto block = Block::component({"m", 1.0e9, 0.0, 87.6});
  MonteCarloConfig config;
  config.years = 30.0;
  config.replicas = 4;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, 0.99, 0.002);
}

TEST(MonteCarlo, DeterministicForSeed) {
  auto block = make_tier_topology(1);
  MonteCarloConfig config;
  config.years = 10.0;
  config.replicas = 2;
  const auto a = simulate_availability(block, config);
  const auto b = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.outage_count, b.outage_count);
}

TEST(MonteCarlo, Tier2WithinAnalyticBand) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 80.0;
  config.replicas = 4;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(true), 0.003);
}

TEST(MonteCarloParallel, BitIdenticalAcrossThreadCounts) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 20.0;
  config.replicas = 12;
  auto run_at = [&](std::size_t threads) {
    config.threads = threads;
    return simulate_availability(block, config);
  };
  const auto at1 = run_at(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto at = run_at(threads);
    EXPECT_DOUBLE_EQ(at.availability, at1.availability) << threads << " threads";
    EXPECT_DOUBLE_EQ(at.mean_outage_h, at1.mean_outage_h) << threads << " threads";
    EXPECT_DOUBLE_EQ(at.max_outage_h, at1.max_outage_h) << threads << " threads";
    EXPECT_EQ(at.outage_count, at1.outage_count) << threads << " threads";
  }
}

TEST(MonteCarloParallel, ThreadsZeroMeansDefault) {
  auto block = make_tier_topology(1);
  MonteCarloConfig config;
  config.years = 5.0;
  config.replicas = 3;
  config.threads = 0;  // resolves to default_thread_count()
  const auto defaulted = simulate_availability(block, config);
  config.threads = 1;
  const auto serial = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(defaulted.availability, serial.availability);
  EXPECT_EQ(defaulted.outage_count, serial.outage_count);
}

TEST(MonteCarlo, Validation) {
  auto block = Block::component({"c", 1.0, 1.0, 0.0});
  MonteCarloConfig bad;
  bad.years = 0.0;
  EXPECT_THROW(simulate_availability(block, bad), std::invalid_argument);
  bad = MonteCarloConfig{};
  bad.replicas = 0;
  EXPECT_THROW(simulate_availability(block, bad), std::invalid_argument);
}

}  // namespace
}  // namespace epm::reliability
