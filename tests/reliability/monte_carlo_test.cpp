#include "reliability/monte_carlo.h"

#include <gtest/gtest.h>

namespace epm::reliability {
namespace {

TEST(MonteCarlo, SingleComponentMatchesAnalytic) {
  auto block = Block::component({"c", 100.0, 10.0, 0.0});  // A = 10/11
  MonteCarloConfig config;
  config.years = 60.0;
  config.replicas = 6;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(), 0.01);
  EXPECT_GT(result.outage_count, 0u);
  EXPECT_NEAR(result.mean_outage_h, 10.0, 2.0);
}

TEST(MonteCarlo, ParallelRedundancyMatchesAnalytic) {
  auto c = Block::component({"c", 100.0, 10.0, 0.0});
  auto block = Block::parallel("p", 1, {c, c});
  MonteCarloConfig config;
  config.years = 120.0;
  config.replicas = 6;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(), 0.005);
}

TEST(MonteCarlo, MaintenanceWindowCounted) {
  // Component that never fails but takes 87.6 h/yr of maintenance (1%).
  auto block = Block::component({"m", 1.0e9, 0.0, 87.6});
  MonteCarloConfig config;
  config.years = 30.0;
  config.replicas = 4;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, 0.99, 0.002);
}

TEST(MonteCarlo, DeterministicForSeed) {
  auto block = make_tier_topology(1);
  MonteCarloConfig config;
  config.years = 10.0;
  config.replicas = 2;
  const auto a = simulate_availability(block, config);
  const auto b = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.outage_count, b.outage_count);
}

TEST(MonteCarlo, Tier2WithinAnalyticBand) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 80.0;
  config.replicas = 4;
  const auto result = simulate_availability(block, config);
  EXPECT_NEAR(result.availability, block.availability(true), 0.003);
}

TEST(MonteCarloParallel, BitIdenticalAcrossThreadCounts) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 20.0;
  config.replicas = 12;
  auto run_at = [&](std::size_t threads) {
    config.threads = threads;
    return simulate_availability(block, config);
  };
  const auto at1 = run_at(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto at = run_at(threads);
    EXPECT_DOUBLE_EQ(at.availability, at1.availability) << threads << " threads";
    EXPECT_DOUBLE_EQ(at.mean_outage_h, at1.mean_outage_h) << threads << " threads";
    EXPECT_DOUBLE_EQ(at.max_outage_h, at1.max_outage_h) << threads << " threads";
    EXPECT_EQ(at.outage_count, at1.outage_count) << threads << " threads";
  }
}

TEST(MonteCarloParallel, ThreadsZeroMeansDefault) {
  auto block = make_tier_topology(1);
  MonteCarloConfig config;
  config.years = 5.0;
  config.replicas = 3;
  config.threads = 0;  // resolves to default_thread_count()
  const auto defaulted = simulate_availability(block, config);
  config.threads = 1;
  const auto serial = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(defaulted.availability, serial.availability);
  EXPECT_EQ(defaulted.outage_count, serial.outage_count);
}

// Regression: a topology so reliable that no replica samples a single
// failure used to report availability exactly 1.0 with a zero-width
// confidence interval — certainty the finite horizon cannot support. The
// Wilson term must keep the interval open below 1.
TEST(MonteCarlo, ZeroFailuresYieldsOpenConfidenceInterval) {
  // MTBF of ~11 million years against a 2-year horizon: effectively never
  // fails inside the simulation.
  auto block = Block::component({"solid", 1.0e11, 1.0, 0.0});
  MonteCarloConfig config;
  config.years = 2.0;
  config.replicas = 4;
  const auto result = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_EQ(result.outage_count, 0u);
  EXPECT_DOUBLE_EQ(result.availability_stddev, 0.0);
  EXPECT_DOUBLE_EQ(result.ci_hi, 1.0);
  EXPECT_LT(result.ci_lo, 1.0) << "interval must stay open below 1";
  EXPECT_GT(result.ci_width(), 0.0);
  // ...but barely: ~70k simulated hours with zero observed downtime pins
  // the Wilson bound very close to 1.
  EXPECT_GT(result.ci_lo, 0.9999);
}

TEST(MonteCarlo, ConfidenceIntervalContainsAnalytic) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 80.0;
  config.replicas = 8;
  const auto result = simulate_availability(block, config);
  const double analytic = block.availability(true);
  EXPECT_LE(result.ci_lo, analytic);
  EXPECT_GE(result.ci_hi, analytic);
  EXPECT_LE(result.ci_lo, result.availability);
  EXPECT_GE(result.ci_hi, result.availability);
  EXPECT_GE(result.ci_lo, 0.0);
  EXPECT_LE(result.ci_hi, 1.0);
}

TEST(MonteCarloParallel, ConfidenceIntervalBitIdenticalAcrossThreadCounts) {
  auto block = make_tier_topology(2);
  MonteCarloConfig config;
  config.years = 20.0;
  config.replicas = 12;
  config.threads = 1;
  const auto at1 = simulate_availability(block, config);
  config.threads = 8;
  const auto at8 = simulate_availability(block, config);
  EXPECT_DOUBLE_EQ(at1.ci_lo, at8.ci_lo);
  EXPECT_DOUBLE_EQ(at1.ci_hi, at8.ci_hi);
}

TEST(MonteCarlo, Validation) {
  auto block = Block::component({"c", 1.0, 1.0, 0.0});
  MonteCarloConfig bad;
  bad.years = 0.0;
  EXPECT_THROW(simulate_availability(block, bad), std::invalid_argument);
  bad = MonteCarloConfig{};
  bad.replicas = 0;
  EXPECT_THROW(simulate_availability(block, bad), std::invalid_argument);
}

}  // namespace
}  // namespace epm::reliability
