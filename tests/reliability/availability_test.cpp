#include "reliability/availability.h"

#include <gtest/gtest.h>

namespace epm::reliability {
namespace {

TEST(ComponentSpec, AvailabilityFormula) {
  ComponentSpec c{"x", 999.0, 1.0, 0.0};
  EXPECT_NEAR(c.availability(), 0.999, 1e-12);
  const ComponentSpec never_repaired{"y", 100.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(never_repaired.availability(), 1.0);
}

TEST(ComponentSpec, MaintenanceReducesAvailability) {
  ComponentSpec c{"x", 1e9, 0.0, 87.6};  // 87.6 h/yr = 1%
  EXPECT_NEAR(c.availability_with_maintenance(), 0.99, 1e-6);
}

TEST(Block, SeriesMultiplies) {
  auto b = Block::series("s", {Block::component({"a", 9.0, 1.0, 0.0}),    // 0.9
                               Block::component({"b", 8.0, 2.0, 0.0})});  // 0.8
  EXPECT_NEAR(b.availability(), 0.72, 1e-12);
}

TEST(Block, ParallelOneOfTwo) {
  auto b = Block::parallel("p", 1,
                           {Block::component({"a", 9.0, 1.0, 0.0}),     // 0.9
                            Block::component({"b", 8.0, 2.0, 0.0})});   // 0.8
  // 1 - 0.1*0.2 = 0.98.
  EXPECT_NEAR(b.availability(), 0.98, 1e-12);
}

TEST(Block, ParallelTwoOfThree) {
  // Three identical 0.9 components, need 2: 3*0.9^2*0.1 + 0.9^3 = 0.972.
  auto c = Block::component({"c", 9.0, 1.0, 0.0});
  auto b = Block::parallel("p", 2, {c, c, c});
  EXPECT_NEAR(b.availability(), 0.972, 1e-12);
}

TEST(Block, NestedComposition) {
  auto leg = Block::series("leg", {Block::component({"a", 9.0, 1.0, 0.0}),
                                   Block::component({"b", 9.0, 1.0, 0.0})});
  auto sys = Block::parallel("sys", 1, {leg, leg});
  // Leg availability 0.81; parallel: 1 - 0.19^2 = 0.9639.
  EXPECT_NEAR(sys.availability(), 0.9639, 1e-12);
}

TEST(Block, MaintenanceFlagRespected) {
  auto b = Block::component({"m", 1e9, 0.0, 876.0});  // 10% maintenance
  EXPECT_NEAR(b.availability(false), 1.0, 1e-6);
  EXPECT_NEAR(b.availability(true), 0.9, 1e-6);
}

TEST(Block, CollectLeaves) {
  auto sys = Block::parallel(
      "sys", 1,
      {Block::component({"a", 1.0, 1.0, 0.0}),
       Block::series("s", {Block::component({"b", 1.0, 1.0, 0.0}),
                           Block::component({"c", 1.0, 1.0, 0.0})})});
  std::vector<const Block*> leaves;
  sys.collect_leaves(leaves);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0]->name(), "a");
  EXPECT_EQ(leaves[2]->name(), "c");
}

TEST(Block, Validation) {
  EXPECT_THROW(Block::component({"x", 0.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Block::series("s", {}), std::invalid_argument);
  EXPECT_THROW(Block::parallel("p", 0, {Block::component({"a", 1.0, 1.0, 0.0})}),
               std::invalid_argument);
  EXPECT_THROW(Block::parallel("p", 3, {Block::component({"a", 1.0, 1.0, 0.0})}),
               std::invalid_argument);
}

TEST(TierTopologies, AvailabilityOrderingAndBands) {
  // Paper §2.1 / Uptime Institute [6]: tier availabilities rise I -> IV and
  // tier II sits at 99.741%.
  double prev = 0.0;
  for (int tier = 1; tier <= 4; ++tier) {
    const auto topo = make_tier_topology(tier);
    const double a = topo.availability(/*include_maintenance=*/true);
    EXPECT_GT(a, prev) << "tier " << tier;
    EXPECT_NEAR(a, uptime_institute_reference(tier), 0.0015) << "tier " << tier;
    prev = a;
  }
}

TEST(TierTopologies, Tier2ReproducesPaperNumber) {
  const auto tier2 = make_tier_topology(2);
  EXPECT_NEAR(tier2.availability(true), 0.99741, 0.0008);
}

TEST(TierTopologies, RedundancyHelpsBeyondMaintenance) {
  // Ignoring maintenance, tier II's N+1 modules beat tier I outright.
  EXPECT_GT(make_tier_topology(2).availability(false),
            make_tier_topology(1).availability(false));
}

TEST(TierTopologies, InvalidTierRejected) {
  EXPECT_THROW(make_tier_topology(0), std::invalid_argument);
  EXPECT_THROW(make_tier_topology(5), std::invalid_argument);
  EXPECT_THROW(uptime_institute_reference(9), std::invalid_argument);
}

TEST(DowntimeHours, Conversion) {
  EXPECT_NEAR(downtime_hours_per_year(0.99741), 22.7, 0.1);
  EXPECT_DOUBLE_EQ(downtime_hours_per_year(1.0), 0.0);
  EXPECT_THROW(downtime_hours_per_year(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace epm::reliability
