#include "cluster/service_cluster.h"

#include <gtest/gtest.h>

namespace epm::cluster {
namespace {

ServiceClusterConfig small_cluster(std::size_t total = 10, std::size_t active = 10) {
  ServiceClusterConfig config;
  config.server_count = total;
  config.initially_active = active;
  return config;
}

workload::OfferedLoad load_of(double rate, double demand = 0.01) {
  workload::OfferedLoad load;
  load.arrival_rate_per_s = rate;
  load.service_demand_s = demand;
  return load;
}

TEST(ServiceCluster, UtilizationMatchesLoad) {
  ServiceCluster cluster(small_cluster());
  // 10 servers at 100 rps each = 1000 rps capacity; offer 500 -> rho 0.5.
  const auto r = cluster.run_epoch(60.0, load_of(500.0));
  EXPECT_EQ(r.serving, 10u);
  EXPECT_NEAR(r.utilization, 0.5, 1e-9);
  EXPECT_FALSE(r.sla_violated);
  EXPECT_DOUBLE_EQ(r.dropped_rate_per_s, 0.0);
  // M/G/1-PS: 0.01 / 0.5 = 0.02 s.
  EXPECT_NEAR(r.mean_response_s, 0.02, 1e-9);
}

TEST(ServiceCluster, PowerAccountsIdleFloor) {
  ServiceCluster cluster(small_cluster());
  const auto idle = cluster.run_epoch(60.0, load_of(0.0));
  EXPECT_NEAR(idle.server_power_w, 10.0 * 180.0, 1e-6);  // 60% of 300 W
  const auto busy = cluster.run_epoch(60.0, load_of(950.0));
  EXPECT_GT(busy.server_power_w, idle.server_power_w);
  EXPECT_LE(busy.server_power_w, 10.0 * 300.0 + 1e-6);
}

TEST(ServiceCluster, EnergyAccumulates) {
  ServiceCluster cluster(small_cluster());
  cluster.run_epoch(60.0, load_of(100.0));
  cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_GT(cluster.total_energy_j(), 0.0);
  EXPECT_EQ(cluster.epochs_run(), 2u);
}

TEST(ServiceCluster, OverloadShedsAndViolatesSla) {
  ServiceCluster cluster(small_cluster());
  const auto r = cluster.run_epoch(60.0, load_of(2000.0));  // 2x capacity
  EXPECT_TRUE(r.sla_violated);
  EXPECT_GT(r.dropped_rate_per_s, 900.0);
  EXPECT_DOUBLE_EQ(r.mean_response_s, cluster.config().sla.overload_response_s);
  EXPECT_GT(cluster.total_dropped_requests(), 0.0);
}

TEST(ServiceCluster, BrownOutWithNoServers) {
  ServiceCluster cluster(small_cluster(10, 0));
  const auto r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(r.serving, 0u);
  EXPECT_DOUBLE_EQ(r.dropped_rate_per_s, 100.0);
  EXPECT_TRUE(r.sla_violated);
}

TEST(ServiceCluster, SlaViolationWhenResponseExceedsTarget) {
  ServiceClusterConfig config = small_cluster();
  config.sla.target_mean_response_s = 0.015;  // tight: rho>1/3 violates
  ServiceCluster cluster(config);
  const auto ok = cluster.run_epoch(60.0, load_of(200.0));  // rho 0.2
  EXPECT_FALSE(ok.sla_violated);
  const auto slow = cluster.run_epoch(60.0, load_of(800.0));  // rho 0.8
  EXPECT_TRUE(slow.sla_violated);
  EXPECT_EQ(cluster.sla_violation_epochs(), 1u);
}

TEST(ServiceCluster, TargetCommittedScalesUpWithBootDelay) {
  ServiceCluster cluster(small_cluster(10, 2));
  EXPECT_EQ(cluster.committed_count(), 2u);
  cluster.set_target_committed(6, /*use_sleep=*/false);
  EXPECT_EQ(cluster.committed_count(), 6u);
  EXPECT_EQ(cluster.serving_count(), 2u);  // boots take time
  // First epoch: boots not yet done (120 s boot > 60 s epoch).
  auto r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(r.serving, 2u);
  EXPECT_EQ(r.booting, 4u);
  // Second epoch: boots complete at its start.
  r = cluster.run_epoch(60.0, load_of(100.0));
  EXPECT_EQ(r.serving, 6u);
}

TEST(ServiceCluster, TargetCommittedScalesDown) {
  ServiceCluster cluster(small_cluster(10, 8));
  cluster.set_target_committed(3, /*use_sleep=*/true);
  EXPECT_EQ(cluster.committed_count(), 3u);
  EXPECT_EQ(cluster.count_in_state(ServerState::kSleeping), 5u);
  cluster.set_target_committed(5, true);
  // Wakes sleepers first (fast transition).
  EXPECT_EQ(cluster.count_in_state(ServerState::kWaking), 2u);
}

TEST(ServiceCluster, TargetClampedToFleet) {
  ServiceCluster cluster(small_cluster(4, 4));
  cluster.set_target_committed(100, false);
  EXPECT_EQ(cluster.committed_count(), 4u);
}

TEST(ServiceCluster, SleepersUseSleepPower) {
  ServiceCluster cluster(small_cluster(4, 4));
  cluster.set_target_committed(2, /*use_sleep=*/true);
  const auto r = cluster.run_epoch(60.0, load_of(0.0));
  // 2 active idle (180 W) + 2 sleeping (9 W).
  EXPECT_NEAR(r.server_power_w, 2 * 180.0 + 2 * 9.0, 1e-6);
}

TEST(ServiceCluster, OffPowerIsZero) {
  ServiceCluster cluster(small_cluster(4, 4));
  cluster.set_target_committed(1, /*use_sleep=*/false);
  const auto r = cluster.run_epoch(60.0, load_of(0.0));
  EXPECT_NEAR(r.server_power_w, 180.0, 1e-6);
  EXPECT_EQ(r.off, 3u);
}

TEST(ServiceCluster, UniformDvfsLowersCapacityAndPower) {
  ServiceCluster cluster(small_cluster());
  cluster.set_uniform_pstate(cluster.power_model().pstate_count() - 1);
  const auto r = cluster.run_epoch(60.0, load_of(400.0));
  // Capacity halved: 500 rps -> rho 0.8.
  EXPECT_NEAR(r.utilization, 0.8, 1e-9);
}

TEST(ServiceCluster, RejectsBadInput) {
  ServiceClusterConfig zero_servers;
  zero_servers.server_count = 0;
  EXPECT_THROW(ServiceCluster{zero_servers}, std::invalid_argument);
  ServiceClusterConfig bad;
  bad.initially_active = bad.server_count + 1;
  EXPECT_THROW(ServiceCluster{bad}, std::invalid_argument);
  ServiceCluster cluster(small_cluster());
  EXPECT_THROW(cluster.run_epoch(0.0, load_of(1.0)), std::invalid_argument);
  EXPECT_THROW(cluster.run_epoch(60.0, load_of(1.0, 0.0)), std::invalid_argument);
  EXPECT_THROW(cluster.server(99), std::invalid_argument);
}

}  // namespace
}  // namespace epm::cluster
