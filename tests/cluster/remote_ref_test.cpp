// Packed remote work references (owner datacenter + client id in one
// uint32) — the identity cross-datacenter forwards carry through the
// existing admission queues.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "cluster/remote_ref.h"

namespace epm::cluster {
namespace {

TEST(RemoteRef, RoundTripsEveryFieldCombination) {
  for (std::uint32_t owner = 0; owner <= kRemoteRefMaxOwner; ++owner) {
    for (const std::uint32_t id :
         {0u, 1u, 12345u, kRemoteRefMaxId - 1, kRemoteRefMaxId}) {
      const std::uint32_t ref = pack_remote_ref(owner, id);
      EXPECT_EQ(remote_ref_owner(ref), owner);
      EXPECT_EQ(remote_ref_client(ref), id);
    }
  }
}

TEST(RemoteRef, LocalIdsAreOwnerZeroRefs) {
  // A plain client id (owner 0) packs to itself, so local queue entries
  // need no translation when a datacenter starts forwarding.
  EXPECT_EQ(pack_remote_ref(0, 777u), 777u);
  EXPECT_EQ(remote_ref_owner(777u), 0u);
  EXPECT_EQ(remote_ref_client(777u), 777u);
}

TEST(RemoteRef, BoundsAreEnforced) {
  EXPECT_THROW(pack_remote_ref(kRemoteRefMaxOwner + 1, 0),
               std::invalid_argument);
  EXPECT_THROW(pack_remote_ref(0, kRemoteRefMaxId + 1),
               std::invalid_argument);
  // The documented geometry: 4 owner bits, 28 id bits.
  EXPECT_EQ(kRemoteRefMaxOwner, 15u);
  EXPECT_EQ(kRemoteRefMaxId, (1u << 28) - 1);
}

}  // namespace
}  // namespace epm::cluster
