// The overload-mode DES has no stability precondition — utilization > 1 is
// the point. Its closed-form anchor is the M/M/n/K loss queue: in overload
// the blocking probability and accepted throughput stay finite, and the
// finite-horizon DES must land on them within sampling tolerance.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/queueing.h"
#include "cluster/request_des.h"

namespace epm::cluster {
namespace {

TEST(MmnkBlocking, MatchesMm1kClosedForm) {
  // M/M/1/K: P_block = (1 - rho) rho^K / (1 - rho^(K+1)), K = total jobs.
  // rho = 2, one server, no waiting room (K = 1): p ~ {1, 2} -> 2/3.
  EXPECT_NEAR(mmnk_blocking_probability(2.0, 1, 0), 2.0 / 3.0, 1e-12);
  // rho = 2, one waiting slot (K = 2): p ~ {1, 2, 4} -> 4/7.
  EXPECT_NEAR(mmnk_blocking_probability(2.0, 1, 1), 4.0 / 7.0, 1e-12);
  // Critically loaded rho = 1, K = 5: all states equally likely -> 1/6.
  EXPECT_NEAR(mmnk_blocking_probability(1.0, 1, 4), 1.0 / 6.0, 1e-12);
}

TEST(MmnkBlocking, ZeroWaitingRoomIsErlangB) {
  // 10 erlangs offered to 12 trunks: Erlang-B = 0.11973 (same anchor as the
  // erlang_c test, which divides this value out of its own recurrence).
  EXPECT_NEAR(mmnk_blocking_probability(10.0, 12, 0), 0.11973, 5e-5);
  EXPECT_DOUBLE_EQ(mmnk_blocking_probability(0.0, 4, 8), 0.0);
}

TEST(MmnkBlocking, DeepOverloadSaturatesAtServiceCapacity) {
  // lambda >> n mu: accepted throughput pins at n mu; blocking -> 1 - n/a.
  const double lambda = 5000.0;
  const double mu = 10.0;
  EXPECT_NEAR(mmnk_throughput_per_s(lambda, mu, 8, 32), 8.0 * mu, 0.01);
  // The normalized recurrence must survive absurd offered loads without
  // overflow (naive factorial sums blow past 1e308 immediately here).
  const double p = mmnk_blocking_probability(1e6, 4, 1000);
  EXPECT_GT(p, 0.999);
  EXPECT_LE(p, 1.0);
}

TEST(MmnkBlocking, MoreWaitingRoomNeverIncreasesBlocking) {
  double prev = 1.0;
  for (std::size_t k = 0; k <= 64; k += 8) {
    const double p = mmnk_blocking_probability(6.0, 4, k);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST(MmnkBlocking, RejectsBadArguments) {
  EXPECT_THROW(mmnk_blocking_probability(1.0, 0, 4), std::invalid_argument);
  EXPECT_THROW(mmnk_blocking_probability(-1.0, 2, 4), std::invalid_argument);
  EXPECT_THROW(mmnk_throughput_per_s(10.0, 0.0, 2, 4), std::invalid_argument);
}

OverloadDesConfig overload_config() {
  OverloadDesConfig config;
  config.arrival_rate_per_s = 300.0;  // rho = 300 / (4 * 20) = 3.75
  config.mean_service_s = 0.05;
  config.servers = 4;
  config.queue_capacity = 16;
  config.distribution = ServiceDistribution::kExponential;
  config.horizon_s = 2000.0;
  config.seed = 20260805;
  return config;
}

TEST(OverloadDes, ShedFractionMatchesMmnkInOverload) {
  const OverloadDesConfig config = overload_config();
  const OverloadDesResult result = simulate_overload(config);
  const double offered = config.arrival_rate_per_s * config.mean_service_s;
  const double p_block =
      mmnk_blocking_probability(offered, config.servers, config.queue_capacity);
  // ~600k arrivals: the empirical shed fraction sits within a few tenths of
  // a percent of the closed form.
  EXPECT_GT(result.offered, 500000u);
  EXPECT_NEAR(result.shed_fraction(), p_block, 0.005);
  EXPECT_EQ(result.offered, result.admitted + result.shed);
}

TEST(OverloadDes, GoodputMatchesMmnkAcceptedThroughput) {
  OverloadDesConfig config = overload_config();
  // In deep overload with a bounded queue, sojourn is bounded by
  // (servers + K) * mean_service / servers = 0.25 s; a 1 s deadline makes
  // every completion goodput, so goodput == accepted throughput.
  config.deadline_s = 1.0;
  const OverloadDesResult result = simulate_overload(config);
  const double mu = 1.0 / config.mean_service_s;
  const double accepted = mmnk_throughput_per_s(
      config.arrival_rate_per_s, mu, config.servers, config.queue_capacity);
  EXPECT_NEAR(result.throughput_per_s, accepted, accepted * 0.02);
  EXPECT_NEAR(result.goodput_per_s, accepted, accepted * 0.02);
  EXPECT_EQ(result.goodput, result.completed);
  // All four servers pinned busy the whole horizon.
  EXPECT_GT(result.utilization, 0.99);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

TEST(OverloadDes, TightDeadlineSplitsGoodputFromThroughput) {
  OverloadDesConfig config = overload_config();
  // Mean sojourn in deep overload ~ (K + n) / (n mu) = 0.25 s: a deadline
  // below that discards most completions from goodput but none from
  // throughput.
  config.deadline_s = 0.1;
  const OverloadDesResult result = simulate_overload(config);
  EXPECT_LT(result.goodput, result.completed / 2);
  EXPECT_GT(result.goodput, 0u);
  EXPECT_DOUBLE_EQ(result.goodput_per_s,
                   static_cast<double>(result.goodput) / config.horizon_s);
}

TEST(OverloadDes, PureLossModeMatchesErlangB) {
  OverloadDesConfig config = overload_config();
  config.queue_capacity = 0;
  const OverloadDesResult result = simulate_overload(config);
  const double offered = config.arrival_rate_per_s * config.mean_service_s;
  const double erlang_b =
      mmnk_blocking_probability(offered, config.servers, 0);
  EXPECT_NEAR(result.shed_fraction(), erlang_b, 0.005);
  // No waiting room: every admitted request's sojourn is pure service time.
  EXPECT_NEAR(result.response_s.mean(), config.mean_service_s,
              config.mean_service_s * 0.05);
}

TEST(OverloadDes, DeterministicUnderSeed) {
  const OverloadDesConfig config = overload_config();
  const OverloadDesResult a = simulate_overload(config);
  const OverloadDesResult b = simulate_overload(config);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.response_s.mean(), b.response_s.mean());
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);

  OverloadDesConfig reseeded = config;
  reseeded.seed += 1;
  const OverloadDesResult c = simulate_overload(reseeded);
  EXPECT_NE(a.shed, c.shed);
}

}  // namespace
}  // namespace epm::cluster
