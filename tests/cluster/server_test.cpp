#include "cluster/server.h"

#include <gtest/gtest.h>

namespace epm::cluster {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  power::ServerPowerModel model_{power::ServerPowerConfig{}};
};

TEST_F(ServerTest, BootSequence) {
  Server s(0, model_, ServerState::kOff);
  EXPECT_DOUBLE_EQ(s.power_w(), 0.0);
  EXPECT_TRUE(s.power_on());
  EXPECT_EQ(s.state(), ServerState::kBooting);
  EXPECT_DOUBLE_EQ(s.power_w(), 280.0);  // boot power
  s.tick(60.0);
  EXPECT_EQ(s.state(), ServerState::kBooting);  // 120 s boot
  s.tick(60.0);
  EXPECT_EQ(s.state(), ServerState::kActive);
  EXPECT_TRUE(s.serving());
  EXPECT_EQ(s.boot_count(), 1u);
}

TEST_F(ServerTest, BootEnergyAccounted) {
  Server s(0, model_, ServerState::kOff);
  s.power_on();
  s.tick(200.0);  // longer than boot: only 120 s of boot power counts
  EXPECT_NEAR(s.transition_energy_j(), 280.0 * 120.0, 1e-9);
}

TEST_F(ServerTest, SleepAndWake) {
  Server s(0, model_, ServerState::kActive);
  EXPECT_TRUE(s.sleep());
  EXPECT_EQ(s.state(), ServerState::kSleeping);
  EXPECT_DOUBLE_EQ(s.power_w(), 9.0);
  EXPECT_TRUE(s.wake());
  EXPECT_EQ(s.state(), ServerState::kWaking);
  s.tick(15.0);
  EXPECT_EQ(s.state(), ServerState::kActive);
}

TEST_F(ServerTest, InvalidCommandsIgnored) {
  Server s(0, model_, ServerState::kActive);
  EXPECT_FALSE(s.power_on());   // already on
  EXPECT_FALSE(s.wake());       // not sleeping
  EXPECT_TRUE(s.power_off());
  EXPECT_FALSE(s.power_off());  // already off
  EXPECT_FALSE(s.sleep());      // off servers cannot sleep
}

TEST_F(ServerTest, PowerOffFromAnyState) {
  Server s(0, model_, ServerState::kOff);
  s.power_on();
  EXPECT_TRUE(s.power_off());  // abort boot
  EXPECT_EQ(s.state(), ServerState::kOff);
}

TEST_F(ServerTest, ActivePowerTracksUtilizationAndPstate) {
  Server s(0, model_, ServerState::kActive);
  s.set_utilization(0.0);
  EXPECT_DOUBLE_EQ(s.power_w(), model_.idle_power_w());
  s.set_utilization(1.0);
  EXPECT_DOUBLE_EQ(s.power_w(), model_.peak_power_w());
  s.set_pstate(model_.pstate_count() - 1);
  EXPECT_LT(s.power_w(), model_.peak_power_w());
}

TEST_F(ServerTest, CapacityFractionOnlyWhileActive) {
  Server s(0, model_, ServerState::kActive);
  EXPECT_DOUBLE_EQ(s.capacity_fraction(), 1.0);
  s.set_pstate(model_.pstate_count() - 1);
  EXPECT_DOUBLE_EQ(s.capacity_fraction(), 0.5);
  s.set_duty(0.5);
  EXPECT_DOUBLE_EQ(s.capacity_fraction(), 0.25);
  s.sleep();
  EXPECT_DOUBLE_EQ(s.capacity_fraction(), 0.0);
}

TEST_F(ServerTest, UtilizationClearedOnStateExit) {
  Server s(0, model_, ServerState::kActive);
  s.set_utilization(0.8);
  s.sleep();
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);
}

TEST_F(ServerTest, RejectsBadInput) {
  Server s(0, model_, ServerState::kActive);
  EXPECT_THROW(s.set_pstate(99), std::invalid_argument);
  EXPECT_THROW(s.set_duty(0.0), std::invalid_argument);
  EXPECT_THROW(s.set_utilization(1.5), std::invalid_argument);
  EXPECT_THROW(s.tick(-1.0), std::invalid_argument);
  EXPECT_THROW(Server(0, model_, ServerState::kBooting), std::invalid_argument);
}

TEST_F(ServerTest, StateNames) {
  EXPECT_EQ(to_string(ServerState::kOff), "off");
  EXPECT_EQ(to_string(ServerState::kBooting), "booting");
  EXPECT_EQ(to_string(ServerState::kActive), "active");
  EXPECT_EQ(to_string(ServerState::kSleeping), "sleeping");
  EXPECT_EQ(to_string(ServerState::kWaking), "waking");
}

}  // namespace
}  // namespace epm::cluster
