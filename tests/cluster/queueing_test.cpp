#include "cluster/queueing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epm::cluster {
namespace {

TEST(ErlangC, KnownValues) {
  // Single server: Erlang-C equals the offered load (M/M/1 wait probability
  // = rho).
  EXPECT_NEAR(erlang_c(0.5, 1), 0.5, 1e-12);
  // 10 erlangs offered to 12 servers: Erlang-B(12,10) = 0.11973 by the
  // standard recurrence, hence C = B / (1 - (a/n)(1-B)) = 0.44937.
  EXPECT_NEAR(erlang_c(10.0, 12), 0.44937, 0.0005);
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 4), 0.0);
}

TEST(ErlangC, RejectsUnstable) {
  EXPECT_THROW(erlang_c(2.0, 2), std::invalid_argument);
  EXPECT_THROW(erlang_c(-0.1, 2), std::invalid_argument);
  EXPECT_THROW(erlang_c(0.5, 0), std::invalid_argument);
}

TEST(MmnResponse, MatchesMm1ClosedForm) {
  // M/M/1: T = 1/(mu - lambda).
  const double mu = 10.0;
  const double lambda = 6.0;
  EXPECT_NEAR(mmn_response_time_s(lambda, mu, 1), 1.0 / (mu - lambda), 1e-9);
}

TEST(MmnResponse, ZeroLoadIsServiceTime) {
  EXPECT_DOUBLE_EQ(mmn_response_time_s(0.0, 4.0, 3), 0.25);
}

TEST(MmnResponse, MonotoneInLambda) {
  double prev = 0.0;
  for (double lambda = 1.0; lambda < 29.0; lambda += 1.0) {
    const double t = mmn_response_time_s(lambda, 10.0, 3);
    ASSERT_GT(t, prev);
    prev = t;
  }
}

TEST(MmnResponse, MoreServersHelp) {
  EXPECT_LT(mmn_response_time_s(8.0, 10.0, 4), mmn_response_time_s(8.0, 10.0, 1));
}

TEST(MmnResponse, RejectsUnstable) {
  EXPECT_THROW(mmn_response_time_s(30.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(mmn_response_time_s(1.0, 0.0, 3), std::invalid_argument);
}

TEST(Mg1Ps, ClosedForm) {
  EXPECT_DOUBLE_EQ(mg1ps_response_time_s(0.1, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(mg1ps_response_time_s(0.1, 0.0), 0.1);
}

TEST(Mg1Ps, DivergesNearSaturation) {
  EXPECT_GT(mg1ps_response_time_s(0.1, 0.99), 9.0);
  EXPECT_THROW(mg1ps_response_time_s(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(mg1ps_response_time_s(0.0, 0.5), std::invalid_argument);
}

TEST(ResponseQuantile, ExponentialTail) {
  // p50 = mean * ln 2; p99 = mean * ln 100.
  EXPECT_NEAR(response_quantile_s(1.0, 0.5), std::log(2.0), 1e-12);
  EXPECT_NEAR(response_quantile_s(1.0, 0.99), std::log(100.0), 1e-12);
  EXPECT_THROW(response_quantile_s(1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::cluster
