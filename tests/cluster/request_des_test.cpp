// Ground-truth validation of the closed-form queueing models: per-request
// discrete-event simulation vs the formulas the epoch-driven fast path uses.
#include "cluster/request_des.h"

#include <gtest/gtest.h>

#include "cluster/queueing.h"

namespace epm::cluster {
namespace {

RequestDesConfig base_config() {
  RequestDesConfig config;
  config.arrival_rate_per_s = 70.0;
  config.mean_service_s = 0.01;  // mu = 100/s -> rho = 0.7
  config.measured_requests = 40000;
  return config;
}

TEST(RequestDes, Mm1FcfsMatchesClosedForm) {
  auto config = base_config();
  const auto result = simulate_requests(config);
  // M/M/1: T = 1/(mu - lambda) = 1/30.
  EXPECT_NEAR(result.response_s.mean(), 1.0 / 30.0, 0.0025);
  EXPECT_NEAR(result.utilization, 0.7, 0.02);
  EXPECT_EQ(result.completed, config.measured_requests);
}

TEST(RequestDes, MmnFcfsMatchesErlangC) {
  auto config = base_config();
  config.servers = 4;
  config.arrival_rate_per_s = 280.0;  // rho = 0.7 across 4 servers
  const auto result = simulate_requests(config);
  const double expected = mmn_response_time_s(280.0, 100.0, 4);
  EXPECT_NEAR(result.response_s.mean(), expected, expected * 0.05);
}

TEST(RequestDes, Md1WaitHalvesVsMm1) {
  // Pollaczek-Khinchine: deterministic service halves the queueing wait.
  auto exp_config = base_config();
  auto det_config = base_config();
  det_config.distribution = ServiceDistribution::kDeterministic;
  const double exp_wait =
      simulate_requests(exp_config).response_s.mean() - 0.01;
  const double det_wait =
      simulate_requests(det_config).response_s.mean() - 0.01;
  EXPECT_NEAR(det_wait / exp_wait, 0.5, 0.08);
}

TEST(RequestDes, Mg1PsInsensitivity) {
  // M/G/1-PS mean response depends on the service distribution only through
  // its mean: S / (1 - rho) for exponential, deterministic, and heavy-tailed
  // lognormal alike. This is what justifies the fast path's use of
  // mg1ps_response_time_s under varying request mixes.
  const double expected = mg1ps_response_time_s(0.01, 0.7);
  for (auto dist : {ServiceDistribution::kExponential,
                    ServiceDistribution::kDeterministic,
                    ServiceDistribution::kLognormal}) {
    auto config = base_config();
    config.discipline = ServiceDiscipline::kProcessorSharing;
    config.distribution = dist;
    config.service_cv = 2.0;  // heavy for the lognormal case
    if (dist == ServiceDistribution::kLognormal) {
      // Heavy tails converge slowly: rare huge jobs dominate the mean.
      config.measured_requests = 250000;
      config.warmup_requests = 10000;
    }
    const auto result = simulate_requests(config);
    EXPECT_NEAR(result.response_s.mean(), expected, expected * 0.10)
        << "distribution " << static_cast<int>(dist);
  }
}

TEST(RequestDes, JsqPsBeatsIndependentServerApproximation) {
  // The epoch fast path models n balanced PS servers as each seeing the
  // cluster utilization: T ~ S / (1 - rho). Join-shortest-queue routing is
  // strictly better than random splitting, so the measured response must be
  // bounded by the service time below and the approximation above.
  auto config = base_config();
  config.discipline = ServiceDiscipline::kProcessorSharing;
  config.servers = 4;
  config.arrival_rate_per_s = 280.0;
  const auto result = simulate_requests(config);
  const double approx = mg1ps_response_time_s(0.01, 0.7);
  EXPECT_GT(result.response_s.mean(), 0.01);
  EXPECT_LT(result.response_s.mean(), approx * 1.05);
}

TEST(RequestDes, QueueDepthTracksLittlesLaw) {
  auto config = base_config();
  const auto result = simulate_requests(config);
  // Little: E[N] = lambda * E[T].
  const double expected_n = 70.0 * result.response_s.mean();
  EXPECT_NEAR(result.queue_depth.mean(), expected_n, expected_n * 0.08);
}

TEST(RequestDes, DeterministicPerSeed) {
  auto config = base_config();
  config.measured_requests = 5000;
  const auto a = simulate_requests(config);
  const auto b = simulate_requests(config);
  EXPECT_DOUBLE_EQ(a.response_s.mean(), b.response_s.mean());
  EXPECT_DOUBLE_EQ(a.simulated_time_s, b.simulated_time_s);
}

TEST(RequestDes, ResponseGrowsWithLoad) {
  double prev = 0.0;
  for (double lambda : {30.0, 60.0, 90.0}) {
    auto config = base_config();
    config.arrival_rate_per_s = lambda;
    config.measured_requests = 20000;
    const double t = simulate_requests(config).response_s.mean();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(RequestDesParallel, BitIdenticalAcrossThreadCounts) {
  ReplicationConfig config;
  config.base = base_config();
  config.base.measured_requests = 5000;
  config.replications = 6;
  auto run_at = [&](std::size_t threads) {
    config.threads = threads;
    return simulate_replications(config);
  };
  const auto at1 = run_at(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto at = run_at(threads);
    EXPECT_DOUBLE_EQ(at.response_s.mean(), at1.response_s.mean())
        << threads << " threads";
    EXPECT_DOUBLE_EQ(at.response_s.variance(), at1.response_s.variance())
        << threads << " threads";
    EXPECT_DOUBLE_EQ(at.queue_depth.mean(), at1.queue_depth.mean())
        << threads << " threads";
    EXPECT_DOUBLE_EQ(at.replication_mean_response_s.mean(),
                     at1.replication_mean_response_s.mean())
        << threads << " threads";
    EXPECT_EQ(at.completed, at1.completed) << threads << " threads";
  }
}

TEST(RequestDesParallel, PooledCountsAddUp) {
  ReplicationConfig config;
  config.base = base_config();
  config.base.measured_requests = 2000;
  config.replications = 4;
  const auto result = simulate_replications(config);
  EXPECT_EQ(result.completed,
            config.replications * config.base.measured_requests);
  EXPECT_EQ(result.response_s.count(), result.completed);
  EXPECT_EQ(result.utilization.count(), config.replications);
  EXPECT_EQ(result.replication_mean_response_s.count(), config.replications);
  // Per-replication means scatter around the pooled mean.
  EXPECT_NEAR(result.replication_mean_response_s.mean(),
              result.response_s.mean(), result.response_s.mean() * 0.05);
}

TEST(RequestDesParallel, ReplicationsDifferFromEachOther) {
  // Each replication must get an independent RNG stream, not the base seed.
  ReplicationConfig config;
  config.base = base_config();
  config.base.measured_requests = 2000;
  config.replications = 4;
  const auto result = simulate_replications(config);
  EXPECT_GT(result.replication_mean_response_s.stddev(), 0.0);
}

TEST(RequestDesParallel, Validation) {
  ReplicationConfig config;
  config.base = base_config();
  config.replications = 0;
  EXPECT_THROW(simulate_replications(config), std::invalid_argument);
  config.replications = 2;
  config.base.servers = 0;
  EXPECT_THROW(simulate_replications(config), std::invalid_argument);
}

TEST(RequestDes, UnstableAndInvalidConfigsThrow) {
  auto config = base_config();
  config.arrival_rate_per_s = 100.0;  // rho = 1
  EXPECT_THROW(simulate_requests(config), std::invalid_argument);
  config = base_config();
  config.servers = 0;
  EXPECT_THROW(simulate_requests(config), std::invalid_argument);
  config = base_config();
  config.measured_requests = 0;
  EXPECT_THROW(simulate_requests(config), std::invalid_argument);
}

// Property sweep: FCFS M/M/n matches Erlang-C across fleet sizes and loads.
class MmnAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(MmnAgreement, DesMatchesFormula) {
  const auto [servers, rho] = GetParam();
  RequestDesConfig config;
  config.servers = servers;
  config.mean_service_s = 0.01;
  config.arrival_rate_per_s = rho * static_cast<double>(servers) * 100.0;
  // Estimator variance blows up near saturation; spend more samples there.
  config.measured_requests = static_cast<std::size_t>(30000.0 + 200000.0 * rho * rho);
  config.seed = 7 + servers;
  const auto result = simulate_requests(config);
  const double expected =
      mmn_response_time_s(config.arrival_rate_per_s, 100.0, servers);
  EXPECT_NEAR(result.response_s.mean(), expected, expected * 0.08)
      << "n=" << servers << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(FleetAndLoad, MmnAgreement,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(0.3, 0.6, 0.85)));

}  // namespace
}  // namespace epm::cluster
