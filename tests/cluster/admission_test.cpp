#include "cluster/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epm::cluster {
namespace {

TEST(BoundedQueue, FifoOrderWithAdmitTimestamps) {
  BoundedQueue queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.try_push(7, 1.0));
  EXPECT_TRUE(queue.try_push(9, 2.0));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.front().id, 7u);
  EXPECT_DOUBLE_EQ(queue.front().admitted_s, 1.0);
  queue.pop();
  EXPECT_EQ(queue.front().id, 9u);
  EXPECT_DOUBLE_EQ(queue.front().admitted_s, 2.0);
  queue.pop();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.accepted(), 2u);
  EXPECT_EQ(queue.shed(), 0u);
}

TEST(BoundedQueue, OverflowIsShedAndCounted) {
  BoundedQueue queue(2);
  EXPECT_TRUE(queue.try_push(0, 0.0));
  EXPECT_TRUE(queue.try_push(1, 0.0));
  EXPECT_FALSE(queue.try_push(2, 0.0));
  EXPECT_FALSE(queue.try_push(3, 0.0));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.accepted(), 2u);
  EXPECT_EQ(queue.shed(), 2u);
  // Draining frees capacity again.
  queue.pop();
  EXPECT_TRUE(queue.try_push(4, 1.0));
  EXPECT_EQ(queue.accepted(), 3u);
}

TEST(BoundedQueue, RejectsZeroCapacityAndEmptyAccess) {
  EXPECT_THROW(BoundedQueue(0), std::invalid_argument);
  BoundedQueue queue(1);
  EXPECT_THROW(queue.front(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(TokenBucket, StartsFullAndSpendsOneTokenPerAdmission) {
  TokenBucket bucket({10.0, 3.0});
  EXPECT_DOUBLE_EQ(bucket.tokens(), 3.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
  EXPECT_EQ(bucket.admitted(), 3u);
  EXPECT_EQ(bucket.denied(), 1u);
}

TEST(TokenBucket, RefillIsRateTimesElapsedCappedAtBurst) {
  TokenBucket bucket({10.0, 5.0});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_acquire());
  EXPECT_DOUBLE_EQ(bucket.tokens(), 0.0);
  bucket.refill(0.25);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 2.5);
  bucket.refill(100.0);  // capped at the bucket depth
  EXPECT_DOUBLE_EQ(bucket.tokens(), 5.0);
}

TEST(TokenBucket, SustainedRateMatchesConfiguredRate) {
  TokenBucket bucket({100.0, 100.0});
  // Offer 2x the sustained rate for 50 one-second epochs: after the initial
  // burst drains, admissions per epoch settle at exactly rate * dt.
  std::uint64_t admitted_late = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    bucket.refill(1.0);
    const std::uint64_t before = bucket.admitted();
    for (int i = 0; i < 200; ++i) bucket.try_acquire();
    if (epoch >= 10) admitted_late += bucket.admitted() - before;
  }
  EXPECT_EQ(admitted_late, 40u * 100u);
}

TEST(TokenBucket, RejectsBadConfig) {
  EXPECT_THROW(TokenBucket({0.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(TokenBucket({10.0, 0.5}), std::invalid_argument);
  TokenBucket bucket({10.0, 10.0});
  EXPECT_THROW(bucket.refill(-1.0), std::invalid_argument);
}

CircuitBreakerConfig small_breaker() {
  CircuitBreakerConfig config;
  config.failure_ratio = 0.5;
  config.min_volume = 10;
  config.open_duration_s = 5.0;
  config.half_open_probes = 3;
  config.close_after_healthy_epochs = 2;
  return config;
}

TEST(CircuitBreaker, ClosedTripsOnFailureRatioAtSufficientVolume) {
  CircuitBreaker breaker(small_breaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Below min_volume: even 100% failures never trip.
  breaker.begin_epoch(0.0);
  breaker.on_epoch_end(9, 9, 1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // At volume but below the ratio: stays closed.
  breaker.begin_epoch(1.0);
  breaker.on_epoch_end(100, 49, 2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Ratio reached (>= is inclusive): trips.
  breaker.begin_epoch(2.0);
  breaker.on_epoch_end(100, 50, 3.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, OpenFailsFastUntilDurationElapses) {
  CircuitBreaker breaker(small_breaker());
  breaker.begin_epoch(0.0);
  breaker.on_epoch_end(100, 100, 1.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // While open: every allow() is a fast rejection, time alone matures it.
  breaker.begin_epoch(2.0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.rejected(), 10u);
  breaker.on_epoch_end(0, 0, 3.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // open_duration_s after the trip, the next epoch starts half-open.
  breaker.begin_epoch(6.0);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, HalfOpenProbeBudgetRetripAndClose) {
  CircuitBreaker breaker(small_breaker());
  breaker.begin_epoch(0.0);
  breaker.on_epoch_end(100, 100, 1.0);
  breaker.begin_epoch(6.0);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // Exactly half_open_probes admissions per epoch, the rest rejected.
  int granted = 0;
  for (int i = 0; i < 10; ++i) granted += breaker.allow() ? 1 : 0;
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(breaker.probes_issued(), 3u);

  // Any probe failure re-trips immediately.
  breaker.on_epoch_end(3, 1, 7.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  // Mature again, then two consecutive healthy probe epochs close it.
  breaker.begin_epoch(12.0);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.allow();
  breaker.on_epoch_end(1, 0, 13.0);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.begin_epoch(13.0);
  breaker.allow();
  breaker.on_epoch_end(1, 0, 14.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, HalfOpenWithNoObservationsKeepsProbing) {
  CircuitBreaker breaker(small_breaker());
  breaker.begin_epoch(0.0);
  breaker.on_epoch_end(100, 100, 1.0);
  breaker.begin_epoch(6.0);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // No probe outcome observed (e.g. no clients due this epoch): the healthy
  // streak must not advance, but the breaker keeps offering probes.
  breaker.on_epoch_end(0, 0, 7.0);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.begin_epoch(7.0);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, RejectsBadConfig) {
  CircuitBreakerConfig config = small_breaker();
  config.failure_ratio = 0.0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
  config = small_breaker();
  config.failure_ratio = 1.5;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
  config = small_breaker();
  config.half_open_probes = 0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
  config = small_breaker();
  config.close_after_healthy_epochs = 0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
  config = small_breaker();
  config.open_duration_s = -1.0;
  EXPECT_THROW(CircuitBreaker{config}, std::invalid_argument);
}

}  // namespace
}  // namespace epm::cluster
