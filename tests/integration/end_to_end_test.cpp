// Whole-stack smoke test: Messenger-style demand driving the reference
// facility under the macro-resource manager, with the physical plant,
// power tree, telemetry, and decision log all engaged.
#include <gtest/gtest.h>

#include "macro/coordinator.h"
#include "telemetry/anomaly.h"
#include "telemetry/store.h"
#include "workload/messenger.h"

namespace epm {
namespace {

TEST(EndToEnd, MessengerDayThroughMacroManagedFacility) {
  // One day of Messenger-style demand at 1-minute epochs.
  workload::MessengerConfig wl;
  wl.step_s = 60.0;
  wl.peak_login_rate_per_s = 1400.0;
  wl.seed = 99;
  const auto trace = workload::generate_messenger_trace(wl, 86400.0);

  macro::Facility facility(macro::make_reference_facility(60));
  macro::MacroResourceManager manager(facility);
  telemetry::TelemetryStore telemetry;
  const auto power_key = telemetry::make_key(0, 0);
  const auto pue_key = telemetry::make_key(0, 1);

  // Scale connections into request rates the 60-server fleets can carry at
  // ~2/3 utilization at the peak.
  const double peak_conn = trace.connections.stats().max();
  TimeSeries it_power(0.0, 60.0);
  std::size_t overloads = 0;
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    const double level = trace.connections[i] / peak_conn;
    const std::vector<double> scaled{level * 4000.0, level * 2500.0};
    const auto step = manager.step(scaled, 18.0);
    telemetry.append(power_key, step.time_s, step.it_power_w);
    telemetry.append(pue_key, step.time_s, step.pue);
    it_power.push_back(step.it_power_w);
    if (step.power_overloaded) ++overloads;
  }

  // Physical sanity.
  EXPECT_EQ(overloads, 0u);
  EXPECT_EQ(facility.total_thermal_alarms(), 0u);
  const auto pue_day = telemetry.range(pue_key, 0.0, 86400.0);
  EXPECT_GT(pue_day.mean(), 1.0);
  EXPECT_LT(pue_day.mean(), 2.5);

  // The fleet tracked the diurnal shape: power at the afternoon peak beats
  // the post-midnight trough clearly.
  const auto peak = it_power.stats_between(13.0 * 3600.0, 16.0 * 3600.0);
  const auto trough = it_power.stats_between(2.0 * 3600.0, 5.0 * 3600.0);
  EXPECT_GT(peak.mean(), 1.2 * trough.mean());

  // SLA held for the vast majority of epochs.
  const double violation_rate =
      static_cast<double>(facility.total_sla_violation_epochs()) /
      static_cast<double>(2 * facility.epochs_run());
  EXPECT_LT(violation_rate, 0.05);

  // The decision log shows macro coordination actually ran.
  EXPECT_GT(manager.log().count(macro::DecisionKind::kServerAllocation), 100u);
  EXPECT_GT(manager.log().count(macro::DecisionKind::kCoolingControl), 100u);

  // Telemetry pipeline: the day of samples supports band queries.
  const auto pattern = telemetry.hourly_pattern(power_key, 0.0, 86400.0);
  EXPECT_EQ(pattern.means.size(), 24u);
}

}  // namespace
}  // namespace epm
