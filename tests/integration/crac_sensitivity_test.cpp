// Integration test for the paper's §5.1 CRAC sensitivity hazard (ref [30]):
// migrating load from the zone the CRAC watches to the zone it is blind to
// makes the CRAC raise its supply temperature and cook the loaded zone;
// coordinated cooling control (supply temp computed from server-side heat)
// avoids the thermal alarm.
#include <gtest/gtest.h>

#include "thermal/room.h"

namespace epm::thermal {
namespace {

constexpr double kHour = 3600.0;
constexpr double kHeatBefore_A = 27.0e3;  // watts in zone A pre-migration
constexpr double kHeatBefore_B = 3.0e3;
constexpr double kHeatAfter_B = 33.0e3;   // all load moved to zone B

MachineRoom make_room() {
  return MachineRoom(make_sensitivity_scenario_room(/*sensitivity_a=*/0.95,
                                                    /*sensitivity_b=*/0.05));
}

TEST(CracSensitivity, NormalOperationStaysCool) {
  auto room = make_room();
  room.run_until(6.0 * kHour, {kHeatBefore_A, kHeatBefore_B});
  EXPECT_TRUE(room.alarms().empty());
  EXPECT_LT(room.zone(0).temperature_c(), room.zone(0).config().alarm_temp_c);
}

TEST(CracSensitivity, ObliviousMigrationTriggersThermalAlarm) {
  auto room = make_room();
  // Phase 1: normal operation, CRAC settles against zone A's heat.
  room.run_until(6.0 * kHour, {kHeatBefore_A, kHeatBefore_B});
  ASSERT_TRUE(room.alarms().empty());

  // Phase 2: migrate all load A -> B and shut down A's servers, without
  // telling the cooling system.
  room.run_until(16.0 * kHour, {0.0, kHeatAfter_B});

  // "The CRAC then believes that there is not much heat generated in its
  //  effective zone and thus increases the temperature of the cooling air."
  EXPECT_GT(room.crac(0).supply_temp_c(), 19.0);
  // "Servers at B are then at risk of generating thermal alarms."
  ASSERT_FALSE(room.alarms().empty());
  EXPECT_EQ(room.alarms()[0].zone, 1u);
  EXPECT_GT(room.zone(1).temperature_c(), room.zone(1).config().alarm_temp_c);
}

TEST(CracSensitivity, CoordinatedMigrationStaysSafe) {
  auto room = make_room();
  room.run_until(6.0 * kHour, {kHeatBefore_A, kHeatBefore_B});
  ASSERT_TRUE(room.alarms().empty());

  // The macro layer performs the same migration but also overrides the CRAC
  // with a supply temperature computed from real per-zone heat:
  //   supply = (alarm - margin) - heat / conductance.
  const auto& zone_b = room.zone(1).config();
  const double margin_c = 3.0;
  const double supply_c =
      (zone_b.alarm_temp_c - margin_c) - kHeatAfter_B / zone_b.conductance_w_per_c;
  room.set_crac_auto(0, false);
  room.crac(0).set_supply_temp_c(supply_c);
  room.run_until(16.0 * kHour, {0.0, kHeatAfter_B});

  EXPECT_TRUE(room.alarms().empty());
  EXPECT_LT(room.zone(1).temperature_c(), zone_b.alarm_temp_c - 1.0);
}

TEST(CracSensitivity, SymmetricSensitivityIsSafeWithoutCoordination) {
  // Ablation: if the CRAC sees both zones equally, the oblivious migration
  // is harmless — the hazard is the *asymmetric observation*, not the
  // migration itself.
  MachineRoom room(make_sensitivity_scenario_room(0.5, 0.5));
  room.run_until(6.0 * kHour, {kHeatBefore_A, kHeatBefore_B});
  room.run_until(16.0 * kHour, {0.0, kHeatAfter_B});
  EXPECT_TRUE(room.alarms().empty());
}

}  // namespace
}  // namespace epm::thermal
