// Integration test for the paper's §5.1 composition hazard (ref [29]):
// an ondemand DVFS governor and a delay-threshold On/Off provisioner, each
// locally sensible, drive each other into a bloated low-frequency fleet,
// while the coordinated joint policy settles into a small fast one.
#include <gtest/gtest.h>

#include "cluster/service_cluster.h"
#include "dvfs/governors.h"
#include "macro/joint_policy.h"
#include "onoff/provisioners.h"

namespace epm {
namespace {

constexpr double kLambda = 3000.0;   // requests/s, steady plateau
constexpr double kDemand = 0.01;     // CPU-seconds per request
constexpr double kSlaTarget = 0.028; // seconds
constexpr int kEpochs = 150;

cluster::ServiceClusterConfig make_config() {
  cluster::ServiceClusterConfig config;
  config.server_count = 200;
  config.initially_active = 55;
  config.sla.target_mean_response_s = kSlaTarget;
  return config;
}

workload::OfferedLoad steady_load() {
  workload::OfferedLoad load;
  load.arrival_rate_per_s = kLambda;
  load.service_demand_s = kDemand;
  return load;
}

struct RunResult {
  double energy_j = 0.0;
  std::size_t fleet_changes = 0;
  std::size_t final_committed = 0;
  std::size_t final_pstate = 0;
  std::size_t sla_violations = 0;
};

RunResult run_uncoordinated() {
  cluster::ServiceCluster cluster(make_config());
  dvfs::OndemandConfig dvfs_config;
  dvfs_config.downscale_utilization = 0.60;
  dvfs_config.upscale_utilization = 0.90;
  dvfs::OndemandGovernor governor(0, dvfs_config);
  onoff::DelayThresholdConfig onoff_config;
  onoff_config.up_factor = 1.0;
  onoff_config.down_factor = 0.4;
  onoff_config.add_step = 8;
  onoff::DelayThresholdProvisioner provisioner(onoff_config);

  RunResult result;
  std::size_t pstate = 0;
  for (int i = 0; i < kEpochs; ++i) {
    const auto r = cluster.run_epoch(60.0, steady_load());
    // Each policy reacts alone, oblivious to the other (§5.1).
    pstate = governor.decide(cluster, r);
    cluster.set_uniform_pstate(pstate);
    const std::size_t before = cluster.committed_count();
    cluster.set_target_committed(provisioner.decide(cluster, r), true);
    if (cluster.committed_count() != before) ++result.fleet_changes;
  }
  result.energy_j = cluster.total_energy_j();
  result.final_committed = cluster.committed_count();
  result.final_pstate = pstate;
  result.sla_violations = cluster.sla_violation_epochs();
  return result;
}

RunResult run_coordinated() {
  cluster::ServiceCluster cluster(make_config());
  RunResult result;
  macro::JointDecision decision;
  for (int i = 0; i < kEpochs; ++i) {
    const auto r = cluster.run_epoch(60.0, steady_load());
    decision = macro::decide_joint(cluster.power_model(), cluster.server_count(),
                                   cluster.committed_count(), r.arrival_rate_per_s,
                                   r.service_demand_s, kSlaTarget);
    cluster.set_uniform_pstate(decision.pstate);
    const std::size_t before = cluster.committed_count();
    cluster.set_target_committed(decision.servers, true);
    if (cluster.committed_count() != before) ++result.fleet_changes;
  }
  result.energy_j = cluster.total_energy_j();
  result.final_committed = cluster.committed_count();
  result.final_pstate = decision.pstate;
  result.sla_violations = cluster.sla_violation_epochs();
  return result;
}

TEST(DvfsOnOffInteraction, ObliviousCompositionBloatsTheFleet) {
  const auto uncoordinated = run_uncoordinated();
  const auto coordinated = run_coordinated();

  // The §5.1 cycle: DVFS slows, delay rises, On/Off adds, utilization
  // falls, DVFS slows further... ending with far more servers on.
  EXPECT_GT(uncoordinated.final_committed, 2 * coordinated.final_committed);
  // ...all stuck at a slow P-state.
  EXPECT_EQ(uncoordinated.final_pstate,
            cluster::ServiceCluster(make_config()).power_model().pstate_count() - 1);
  EXPECT_EQ(coordinated.final_pstate, 0u);
}

TEST(DvfsOnOffInteraction, ObliviousCompositionWastesEnergy) {
  const auto uncoordinated = run_uncoordinated();
  const auto coordinated = run_coordinated();
  // "The energy expended on keeping a larger number of machines on may not
  //  necessarily be offset by DVS savings."
  EXPECT_GT(uncoordinated.energy_j, 1.3 * coordinated.energy_j);
}

TEST(DvfsOnOffInteraction, ObliviousCompositionChurns) {
  const auto uncoordinated = run_uncoordinated();
  const auto coordinated = run_coordinated();
  EXPECT_GT(uncoordinated.fleet_changes, coordinated.fleet_changes);
  EXPECT_GE(uncoordinated.fleet_changes, 10u);
}

TEST(DvfsOnOffInteraction, CoordinatedMeetsSlaAfterWarmup) {
  const auto coordinated = run_coordinated();
  // A handful of warm-up violations while boots complete are acceptable.
  EXPECT_LE(coordinated.sla_violations, 10u);
}

}  // namespace
}  // namespace epm
