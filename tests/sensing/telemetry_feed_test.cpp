// TelemetryFeed (sensing/telemetry_feed.h): the publication bridge between
// the sensor plane and the telemetry store. Owns the invalid-reading ->
// dropout, degraded-reading -> flagged-append idiom the fault engines used
// to hand-roll, plus band-query read-backs.
#include <gtest/gtest.h>

#include "sensing/telemetry_feed.h"
#include "telemetry/store.h"

namespace epm::sensing {
namespace {

using telemetry::make_key;

std::vector<SensorReading> one_reading(double value, bool valid, bool degraded) {
  SensorReading reading;
  reading.value = value;
  reading.valid = valid;
  reading.degraded = degraded;
  return {reading};
}

TEST(TelemetryFeed, StoresValidPrimaryReading) {
  telemetry::TelemetryStore store;
  TelemetryFeed feed(store);
  EXPECT_TRUE(feed.publish(make_key(1, 2), one_reading(42.0, true, false), 0.0));
  EXPECT_EQ(store.total_samples(), 1u);
  EXPECT_EQ(store.degraded_samples(), 0u);
  EXPECT_EQ(store.dropped_samples(), 0u);
  EXPECT_TRUE(store.contains(make_key(1, 2)));
}

TEST(TelemetryFeed, InvalidPrimaryBecomesDropoutNotSample) {
  telemetry::TelemetryStore store;
  TelemetryFeed feed(store);
  EXPECT_FALSE(feed.publish(make_key(1, 2), one_reading(42.0, false, false), 0.0));
  EXPECT_FALSE(feed.publish(make_key(1, 2), {}, 15.0));  // no readings at all
  EXPECT_EQ(store.total_samples(), 0u);
  EXPECT_EQ(store.dropped_samples(), 2u);
  EXPECT_FALSE(store.contains(make_key(1, 2)));
}

TEST(TelemetryFeed, DegradedPrimaryIsStoredAndFlagged) {
  telemetry::TelemetryStore store;
  TelemetryFeed feed(store);
  EXPECT_TRUE(feed.publish(make_key(3, 0), one_reading(10.0, true, true), 0.0));
  EXPECT_EQ(store.total_samples(), 1u);
  EXPECT_EQ(store.degraded_samples(), 1u);
}

TEST(TelemetryFeed, RecentMeanReadsBackTheTrailingWindow) {
  telemetry::TelemetryStore store;
  TelemetryFeed feed(store);
  const auto key = make_key(0, 7);
  // 10 minutes of 15 s samples: 100, 101, ..., value = 100 + i.
  for (int i = 0; i < 40; ++i) {
    feed.publish(key, one_reading(100.0 + i, true, false), 15.0 * i);
  }
  const double now_s = 15.0 * 40;
  // Trailing 5 minutes covers samples 20..39 (values 120..139, mean 129.5).
  EXPECT_DOUBLE_EQ(feed.recent_mean(key, now_s, 300.0), 129.5);
  // Full history.
  EXPECT_DOUBLE_EQ(feed.recent_mean(key, now_s, now_s), 119.5);
  // Unknown counters and empty windows answer 0.
  EXPECT_EQ(feed.recent_mean(make_key(9, 9), now_s, 300.0), 0.0);
  // A window clamped at t=0 still answers (no negative range).
  EXPECT_DOUBLE_EQ(feed.recent_mean(key, 15.0, 3600.0), 100.0);
}

}  // namespace
}  // namespace epm::sensing
