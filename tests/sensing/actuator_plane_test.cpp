#include "sensing/actuator_plane.h"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/types.h"

namespace {

using epm::faults::FaultEvent;
using epm::faults::FaultType;
using epm::sensing::ActuatorCommand;
using epm::sensing::ActuatorPlane;
using epm::sensing::ActuatorPlaneConfig;
using epm::sensing::CommandKind;

ActuatorCommand fleet_command(std::size_t target, double value) {
  return {CommandKind::kFleetSize, target, value, {}};
}

TEST(SensingActuatorPlane, AppliesSynchronouslyWhenHealthy) {
  ActuatorPlane plane(ActuatorPlaneConfig{});
  std::vector<double> applied;
  plane.set_applier([&applied](const ActuatorCommand& command) {
    applied.push_back(command.value);
    return true;
  });
  plane.issue(fleet_command(0, 10.0), 0.0);
  plane.issue(fleet_command(0, 12.0), 60.0);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_DOUBLE_EQ(applied[0], 10.0);
  EXPECT_DOUBLE_EQ(applied[1], 12.0);
  EXPECT_EQ(plane.acked(), 2u);
  EXPECT_EQ(plane.failed(), 0u);
  EXPECT_EQ(plane.pending_count(), 0u);
}

TEST(SensingActuatorPlane, RejectsInvalidConfig) {
  ActuatorPlaneConfig config;
  config.max_attempts = 0;
  EXPECT_THROW(ActuatorPlane{config}, std::invalid_argument);
  config = {};
  config.retry_backoff_s = 0.0;
  EXPECT_THROW(ActuatorPlane{config}, std::invalid_argument);
  config = {};
  config.backoff_multiplier = 0.5;
  EXPECT_THROW(ActuatorPlane{config}, std::invalid_argument);
}

TEST(SensingActuatorPlane, FaultDomainScopesFailuresToOneControlNetwork) {
  ActuatorPlane plane(ActuatorPlaneConfig{});
  // Cooling/BMS network (domain 1) down hard; compute network untouched.
  const FaultEvent fault{FaultType::kActuatorFail, 0.0, 600.0, 1, 1.0};
  EXPECT_TRUE(plane.on_fault(fault, true, 0.0));
  EXPECT_DOUBLE_EQ(plane.failure_probability(CommandKind::kCracSupply), 1.0);
  EXPECT_DOUBLE_EQ(plane.failure_probability(CommandKind::kZoneShare), 1.0);
  EXPECT_DOUBLE_EQ(plane.failure_probability(CommandKind::kFleetSize), 0.0);
  EXPECT_DOUBLE_EQ(plane.failure_probability(CommandKind::kPstate), 0.0);

  EXPECT_TRUE(plane.on_fault(fault, false, 600.0));
  EXPECT_EQ(plane.failure_probability(CommandKind::kCracSupply), 0.0);
}

TEST(SensingActuatorPlane, CertainFailureExhaustsAttemptsThenFails) {
  ActuatorPlaneConfig config;
  config.max_attempts = 3;
  config.retry_backoff_s = 60.0;
  ActuatorPlane plane(config);
  int applied = 0;
  plane.set_applier([&applied](const ActuatorCommand&) {
    ++applied;
    return true;
  });
  std::vector<std::string> lines;
  plane.set_logger(
      [&lines](double, const std::string& text) { lines.push_back(text); });

  const FaultEvent fault{FaultType::kActuatorFail, 0.0, 3600.0, 0, 1.0};
  plane.on_fault(fault, true, 0.0);
  plane.issue(fleet_command(0, 10.0), 0.0);
  EXPECT_EQ(plane.pending_count(), 1u);  // first attempt failed, queued

  // Drive time forward until all attempts are spent.
  for (double t = 60.0; t <= 600.0; t += 60.0) {
    plane.tick(t);
  }
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(plane.failed(), 1u);
  EXPECT_EQ(plane.retries(), 2u);  // attempts 2 and 3 were retries
  EXPECT_EQ(plane.pending_count(), 0u);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines.back().find("failed fleet-size:0"), std::string::npos);
}

TEST(SensingActuatorPlane, RetrySucceedsAfterFaultClears) {
  ActuatorPlaneConfig config;
  config.max_attempts = 5;
  config.retry_backoff_s = 60.0;
  ActuatorPlane plane(config);
  int applied = 0;
  plane.set_applier([&applied](const ActuatorCommand&) {
    ++applied;
    return true;
  });

  const FaultEvent fault{FaultType::kActuatorFail, 0.0, 120.0, 0, 1.0};
  plane.on_fault(fault, true, 0.0);
  plane.issue(fleet_command(0, 10.0), 0.0);
  EXPECT_EQ(applied, 0);

  plane.on_fault(fault, false, 120.0);  // network restored
  for (double t = 60.0; t <= 600.0 && plane.pending_count() > 0; t += 60.0) {
    plane.tick(t);
  }
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(plane.acked(), 1u);
  EXPECT_EQ(plane.failed(), 0u);
}

TEST(SensingActuatorPlane, BackoffGrowsExponentiallyWithCapAndJitter) {
  ActuatorPlaneConfig config;
  config.max_attempts = 10;
  config.retry_backoff_s = 60.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_s = 200.0;
  ActuatorPlane plane(config);

  std::vector<double> backoffs;
  plane.set_logger([&backoffs](double, const std::string& text) {
    const auto pos = text.find("backoff ");
    if (pos != std::string::npos) {
      backoffs.push_back(std::stod(text.substr(pos + 8)));
    }
  });
  plane.on_fault({FaultType::kActuatorFail, 0.0, 1e6, 0, 1.0}, true, 0.0);
  plane.issue(fleet_command(0, 10.0), 0.0);
  for (double t = 10.0; t <= 2000.0; t += 10.0) {
    plane.tick(t);
  }
  ASSERT_GE(backoffs.size(), 4u);
  // Jitter keeps each delay within [0.75, 1.25) of the nominal backoff.
  EXPECT_GE(backoffs[0], 0.75 * 60.0);
  EXPECT_LT(backoffs[0], 1.25 * 60.0);
  EXPECT_GE(backoffs[1], 0.75 * 120.0);
  EXPECT_LT(backoffs[1], 1.25 * 120.0);
  // Nominal backoff caps at max_backoff_s.
  for (const double b : backoffs) {
    EXPECT_LT(b, 1.25 * 200.0);
  }
}

TEST(SensingActuatorPlane, NewerCommandSupersedesPendingRetry) {
  ActuatorPlaneConfig config;
  config.max_attempts = 5;
  ActuatorPlane plane(config);
  std::vector<double> applied;
  plane.set_applier([&applied](const ActuatorCommand& command) {
    applied.push_back(command.value);
    return true;
  });

  const FaultEvent fault{FaultType::kActuatorFail, 0.0, 100.0, 0, 1.0};
  plane.on_fault(fault, true, 0.0);
  plane.issue(fleet_command(0, 10.0), 0.0);  // fails, queued for retry
  plane.on_fault(fault, false, 100.0);
  plane.issue(fleet_command(0, 20.0), 120.0);  // supersedes and applies
  EXPECT_EQ(plane.superseded(), 1u);
  EXPECT_EQ(plane.pending_count(), 0u);

  for (double t = 180.0; t <= 1200.0; t += 60.0) {
    plane.tick(t);
  }
  // The stale value 10 must never land after the fresh 20.
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_DOUBLE_EQ(applied[0], 20.0);
}

TEST(SensingActuatorPlane, PendingCommandTimesOutAsFailed) {
  ActuatorPlaneConfig config;
  config.max_attempts = 100;
  config.retry_backoff_s = 400.0;  // slower than the timeout
  config.command_timeout_s = 300.0;
  ActuatorPlane plane(config);
  plane.on_fault({FaultType::kActuatorFail, 0.0, 1e6, 0, 1.0}, true, 0.0);
  plane.issue(fleet_command(0, 10.0), 0.0);
  EXPECT_EQ(plane.pending_count(), 1u);
  plane.tick(300.0);
  EXPECT_EQ(plane.pending_count(), 0u);
  EXPECT_EQ(plane.failed(), 1u);
}

TEST(SensingActuatorPlane, OutcomesAreDeterministicPerSeed) {
  ActuatorPlaneConfig config;
  config.max_attempts = 4;
  ActuatorPlane a(config);
  ActuatorPlane b(config);
  for (ActuatorPlane* plane : {&a, &b}) {
    plane->on_fault({FaultType::kActuatorFail, 0.0, 1e6, 0, 0.5}, true, 0.0);
    for (std::size_t i = 0; i < 20; ++i) {
      plane->issue(fleet_command(i % 3, static_cast<double>(i)), i * 30.0);
      plane->tick(i * 30.0 + 15.0);
    }
  }
  EXPECT_EQ(a.acked(), b.acked());
  EXPECT_EQ(a.failed(), b.failed());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_GT(a.retries(), 0u);
}

}  // namespace
