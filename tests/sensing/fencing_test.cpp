// Actuator-side fencing: the monotone token ledger, the dead-man's switch,
// and the ActuatorPlane's fenced issue path — including the guarantee that
// the pre-control-plane issue() path is untouched.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sensing/actuator_plane.h"
#include "sensing/fencing.h"
#include "sim/snapshot.h"

namespace epm::sensing {
namespace {

TEST(FencingLedger, TokenWatermarkIsMonotone) {
  FencingLedger ledger;
  EXPECT_EQ(FencingVerdict::kApplied, ledger.admit(5, 1));
  EXPECT_EQ(FencingVerdict::kApplied, ledger.admit(7, 2));
  // A deposed leader's token can never come back, no matter the uid.
  EXPECT_EQ(FencingVerdict::kStaleToken, ledger.admit(5, 3));
  EXPECT_EQ(FencingVerdict::kStaleToken, ledger.admit(6, 4));
  EXPECT_EQ(7U, ledger.max_token());
  EXPECT_EQ(2U, ledger.rejected_stale());
  EXPECT_EQ(2U, ledger.applied());
  // Equal tokens are fine — same leader, several commands.
  EXPECT_EQ(FencingVerdict::kApplied, ledger.admit(7, 5));
}

TEST(FencingLedger, DuplicateUidsAreSuppressedAcrossTokens) {
  FencingLedger ledger;
  EXPECT_EQ(FencingVerdict::kApplied, ledger.admit(3, 42));
  // The failover replay re-sends uid 42 under the successor's token: the
  // token is fresh, the uid is not — idempotent, no double actuation.
  EXPECT_EQ(FencingVerdict::kDuplicate, ledger.admit(9, 42));
  EXPECT_EQ(1U, ledger.suppressed_duplicates());
  EXPECT_EQ(0U, ledger.double_actuations());
  // The duplicate still did NOT raise the watermark (it was not applied).
  EXPECT_EQ(FencingVerdict::kApplied, ledger.admit(4, 43));
}

TEST(FencingLedger, AuditOnlyModeCountsTheHarmItAllows) {
  FencingLedger naive(/*enforce=*/false);
  EXPECT_EQ(FencingVerdict::kApplied, naive.admit(5, 1));
  // Replay duplicate and stale token both get through — and are counted.
  EXPECT_EQ(FencingVerdict::kApplied, naive.admit(9, 1));
  EXPECT_EQ(FencingVerdict::kApplied, naive.admit(2, 7));
  EXPECT_EQ(1U, naive.double_actuations());
  EXPECT_EQ(1U, naive.stale_applied());
  EXPECT_EQ(3U, naive.applied());
}

TEST(FencingLedger, SaveRestoreRoundTripsAndChecksMode) {
  FencingLedger a;
  a.admit(5, 1);
  a.admit(7, 2);
  a.admit(5, 3);
  sim::SnapshotWriter w;
  a.save(w);
  const std::vector<std::uint8_t> bytes = w.take();

  FencingLedger b;
  sim::SnapshotReader r(bytes);
  b.restore(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.max_token(), b.max_token());
  EXPECT_EQ(a.applied(), b.applied());
  EXPECT_EQ(a.rejected_stale(), b.rejected_stale());
  // The uid set survives: the same replay is still a duplicate.
  EXPECT_EQ(FencingVerdict::kDuplicate, b.admit(8, 1));

  FencingLedger wrong(/*enforce=*/false);
  sim::SnapshotReader r2(bytes);
  EXPECT_THROW(wrong.restore(r2), std::invalid_argument);
}

TEST(DeadMansSwitch, TripsOnceThenReArmsOnFeed) {
  DeadMansSwitch dm(4.0);
  dm.feed(10.0);
  EXPECT_FALSE(dm.expired(13.9));
  EXPECT_TRUE(dm.expired(14.0));   // the edge: apply the safe state
  EXPECT_FALSE(dm.expired(15.0));  // edge-triggered, not level-triggered
  EXPECT_EQ(1U, dm.trips());
  EXPECT_TRUE(dm.tripped());
  dm.feed(16.0);  // leadership restored
  EXPECT_FALSE(dm.tripped());
  EXPECT_FALSE(dm.expired(19.9));
  EXPECT_TRUE(dm.expired(20.0));
  EXPECT_EQ(2U, dm.trips());
}

TEST(DeadMansSwitch, DisabledSwitchNeverTrips) {
  DeadMansSwitch off(0.0);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.expired(1e9));
  EXPECT_EQ(0U, off.trips());
}

TEST(DeadMansSwitch, SaveRestoreKeepsTheStarvationClock) {
  DeadMansSwitch a(4.0);
  a.feed(10.0);
  sim::SnapshotWriter w;
  a.save(w);
  const std::vector<std::uint8_t> bytes = w.take();
  DeadMansSwitch b(4.0);
  sim::SnapshotReader r(bytes);
  b.restore(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(10.0, b.last_feed_s());
  EXPECT_TRUE(b.expired(14.0));
}

TEST(ActuatorPlane, FencedIssueRejectsStaleAndDuplicate) {
  FencingLedger ledger;
  ActuatorPlane plane(ActuatorPlaneConfig{});
  plane.set_fencing(&ledger);
  std::vector<double> applied_values;
  plane.set_applier([&applied_values](const ActuatorCommand& c) {
    applied_values.push_back(c.value);
    return true;
  });

  ActuatorCommand cap;
  cap.kind = CommandKind::kPowerCap;
  cap.target = 0;
  cap.value = 0.7;
  EXPECT_NE(0U, plane.issue_fenced(cap, 1.0, /*token=*/5, /*uid=*/100));
  // Stale leader: rejected before the applier ever runs.
  cap.value = 0.3;
  EXPECT_EQ(0U, plane.issue_fenced(cap, 2.0, /*token=*/4, /*uid=*/101));
  // Failover replay of uid 100 under a higher token: suppressed.
  cap.value = 0.9;
  EXPECT_EQ(0U, plane.issue_fenced(cap, 3.0, /*token=*/6, /*uid=*/100));
  EXPECT_EQ(2U, plane.fencing_rejections());
  ASSERT_EQ(1U, applied_values.size());
  EXPECT_EQ(0.7, applied_values[0]);
  // A fresh command from the live leader still applies.
  cap.value = 1.0;
  EXPECT_NE(0U, plane.issue_fenced(cap, 4.0, /*token=*/6, /*uid=*/102));
  EXPECT_EQ(1.0, applied_values.back());
}

TEST(ActuatorPlane, UnfencedIssuePathIsUntouchedByTheLedger) {
  FencingLedger ledger;
  ActuatorPlane plane(ActuatorPlaneConfig{});
  plane.set_fencing(&ledger);
  std::size_t applications = 0;
  plane.set_applier([&applications](const ActuatorCommand&) {
    ++applications;
    return true;
  });
  ActuatorCommand cmd;
  cmd.kind = CommandKind::kFleetSize;
  cmd.value = 10.0;
  // The plain issue() path — what every pre-control-plane caller uses —
  // never consults the ledger, so the default path is bit-identical.
  plane.issue(cmd, 1.0);
  plane.issue(cmd, 2.0);
  EXPECT_EQ(2U, applications);
  EXPECT_EQ(0U, ledger.applied());
  EXPECT_EQ(0U, plane.fencing_rejections());
}

TEST(ActuatorPlane, FencedIssueWithoutLedgerIsPlainIssue) {
  ActuatorPlane plane(ActuatorPlaneConfig{});
  std::size_t applications = 0;
  plane.set_applier([&applications](const ActuatorCommand&) {
    ++applications;
    return true;
  });
  ActuatorCommand cmd;
  cmd.kind = CommandKind::kConsolidation;
  cmd.value = 1.0;
  EXPECT_NE(0U, plane.issue_fenced(cmd, 1.0, 3, 50));
  EXPECT_NE(0U, plane.issue_fenced(cmd, 2.0, 1, 50));  // no ledger, no fence
  EXPECT_EQ(2U, applications);
}

TEST(ActuatorPlane, SaveRestoreRoundTripsCountersAndPending) {
  ActuatorPlaneConfig config;
  config.max_attempts = 3;
  ActuatorPlane a(config);
  // An applier that always refuses leaves a pending retry in the queue.
  a.set_applier([](const ActuatorCommand&) { return false; });
  ActuatorCommand cmd;
  cmd.kind = CommandKind::kCracSupply;
  cmd.target = 1;
  cmd.value = 18.0;
  a.issue(cmd, 5.0);
  ASSERT_EQ(1U, a.pending_count());

  sim::SnapshotWriter w;
  a.save(w);
  const std::vector<std::uint8_t> bytes = w.take();
  ActuatorPlane b(config);
  sim::SnapshotReader r(bytes);
  b.restore(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a.pending_count(), b.pending_count());
  EXPECT_EQ(a.issued(), b.issued());
  EXPECT_EQ(a.retries(), b.retries());
  // The restored plane retries the same command at the same time: wire an
  // accepting applier and advance past the backoff.
  std::size_t applications = 0;
  b.set_applier([&applications](const ActuatorCommand& c) {
    applications += c.value == 18.0 ? 1 : 0;
    return true;
  });
  b.tick(500.0);
  EXPECT_EQ(1U, applications);
  EXPECT_EQ(0U, b.pending_count());
}

TEST(ActuatorPlane, ConsolidationKindRoutesTheComputeDomain) {
  EXPECT_EQ(0U, actuation_domain(CommandKind::kConsolidation));
  EXPECT_EQ("consolidation", to_string(CommandKind::kConsolidation));
}

}  // namespace
}  // namespace epm::sensing
