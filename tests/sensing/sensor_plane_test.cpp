#include "sensing/sensor_plane.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "faults/types.h"

namespace {

using epm::faults::FaultEvent;
using epm::faults::FaultType;
using epm::sensing::ChannelKind;
using epm::sensing::make_channel;
using epm::sensing::SensorPlane;
using epm::sensing::SensorPlaneConfig;

TEST(SensingSensorPlane, ExactPlaneIsBitExact) {
  SensorPlane plane(SensorPlaneConfig{});  // redundancy 1, zero noise
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  for (int i = 0; i < 5; ++i) {
    const double truth = 123.456 + 7.0 * i;
    const auto readings = plane.sample(key, truth, 60.0 * i);
    ASSERT_EQ(readings.size(), 1u);
    EXPECT_EQ(readings[0].value, truth);  // bitwise, not approximately
    EXPECT_TRUE(readings[0].valid);
    EXPECT_FALSE(readings[0].degraded);
    EXPECT_DOUBLE_EQ(readings[0].time_s, 60.0 * i);
  }
  EXPECT_EQ(plane.readings(), 5u);
  EXPECT_EQ(plane.dropped_readings(), 0u);
}

TEST(SensingSensorPlane, RejectsInvalidConfig) {
  SensorPlaneConfig config;
  config.redundancy = 0;
  EXPECT_THROW(SensorPlane{config}, std::invalid_argument);
  config = {};
  config.fault_domains = 0;
  EXPECT_THROW(SensorPlane{config}, std::invalid_argument);
  config = {};
  config.base_noise_frac = -0.1;
  EXPECT_THROW(SensorPlane{config}, std::invalid_argument);
}

TEST(SensingSensorPlane, NoiseIsSeedStableAndScalesWithTruth) {
  SensorPlaneConfig config;
  config.base_noise_frac = 0.1;
  const auto key = make_channel(ChannelKind::kItPower, 0);

  SensorPlane a(config);
  SensorPlane b(config);
  config.seed ^= 0x1234;
  SensorPlane c(config);

  const auto ra = a.sample(key, 1000.0, 0.0);
  const auto rb = b.sample(key, 1000.0, 0.0);
  const auto rc = c.sample(key, 1000.0, 0.0);
  EXPECT_EQ(ra[0].value, rb[0].value);  // same seed -> identical stream
  EXPECT_NE(ra[0].value, rc[0].value);  // different seed -> different stream
  EXPECT_NE(ra[0].value, 1000.0);       // noise actually applied
}

TEST(SensingSensorPlane, ChannelStreamsAreIndependentOfSamplingOrder) {
  SensorPlaneConfig config;
  config.base_noise_frac = 0.05;
  const auto x = make_channel(ChannelKind::kServiceArrival, 0);
  const auto y = make_channel(ChannelKind::kServiceArrival, 1);

  SensorPlane only_x(config);
  SensorPlane interleaved(config);
  for (int i = 0; i < 4; ++i) {
    const double truth = 500.0 + i;
    (void)interleaved.sample(y, 42.0, i * 60.0);  // extra channel activity
    const auto rx = only_x.sample(x, truth, i * 60.0);
    const auto ri = interleaved.sample(x, truth, i * 60.0);
    EXPECT_EQ(rx[0].value, ri[0].value);
  }
}

TEST(SensingSensorPlane, QuantizationRoundsReadings) {
  SensorPlaneConfig config;
  config.quantization = 0.5;
  SensorPlane plane(config);
  const auto key = make_channel(ChannelKind::kZoneTemp, 0);
  const auto readings = plane.sample(key, 22.26, 0.0);
  EXPECT_DOUBLE_EQ(readings[0].value, 22.5);
}

TEST(SensingSensorPlane, DropoutInvalidatesOnlyItsFaultDomain) {
  SensorPlaneConfig config;
  config.fault_domains = 3;
  SensorPlane plane(config);
  const auto svc0 = make_channel(ChannelKind::kServiceArrival, 0);
  const auto svc1 = make_channel(ChannelKind::kServiceArrival, 1);
  const auto zone = make_channel(ChannelKind::kZoneTemp, 0);  // last domain

  const FaultEvent fault{FaultType::kSensorDropout, 0.0, 600.0, 0, 1.0};
  EXPECT_TRUE(plane.on_fault(fault, /*onset=*/true, 0.0));
  EXPECT_TRUE(plane.dropout_active(svc0));
  EXPECT_FALSE(plane.dropout_active(svc1));
  EXPECT_FALSE(plane.dropout_active(zone));

  EXPECT_FALSE(plane.sample(svc0, 10.0, 0.0)[0].valid);
  EXPECT_TRUE(plane.sample(svc1, 10.0, 0.0)[0].valid);
  EXPECT_TRUE(plane.sample(zone, 22.0, 0.0)[0].valid);
  EXPECT_EQ(plane.dropped_readings(), 1u);

  EXPECT_TRUE(plane.on_fault(fault, /*onset=*/false, 600.0));
  EXPECT_TRUE(plane.sample(svc0, 10.0, 600.0)[0].valid);
}

TEST(SensingSensorPlane, StuckFreezesEachSensorAtItsLastValue) {
  SensorPlaneConfig config;
  config.redundancy = 2;
  SensorPlane plane(config);
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);

  const auto before = plane.sample(key, 10.0, 0.0);
  const FaultEvent fault{FaultType::kSensorStuck, 60.0, 600.0, 0, 1.0};
  EXPECT_TRUE(plane.on_fault(fault, true, 60.0));

  const auto frozen = plane.sample(key, 99.0, 60.0);
  ASSERT_EQ(frozen.size(), 2u);
  for (std::size_t r = 0; r < frozen.size(); ++r) {
    EXPECT_EQ(frozen[r].value, before[r].value);
    EXPECT_TRUE(frozen[r].valid);
    EXPECT_TRUE(frozen[r].degraded);
  }
  EXPECT_EQ(plane.stuck_readings(), 2u);

  EXPECT_TRUE(plane.on_fault(fault, false, 660.0));
  EXPECT_EQ(plane.sample(key, 99.0, 660.0)[0].value, 99.0);
}

TEST(SensingSensorPlane, NoiseFaultSeveritiesStackAndClearWithoutResidue) {
  SensorPlane plane(SensorPlaneConfig{});
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  const FaultEvent a{FaultType::kSensorNoise, 0.0, 600.0, 0, 0.1};
  const FaultEvent b{FaultType::kSensorNoise, 0.0, 900.0, 0, 0.25};
  EXPECT_TRUE(plane.on_fault(a, true, 0.0));
  EXPECT_TRUE(plane.on_fault(b, true, 0.0));
  EXPECT_DOUBLE_EQ(plane.fault_noise_frac(key), 0.35);
  EXPECT_TRUE(plane.sample(key, 100.0, 0.0)[0].degraded);
  EXPECT_EQ(plane.noisy_readings(), 1u);

  EXPECT_TRUE(plane.on_fault(a, false, 600.0));
  EXPECT_TRUE(plane.on_fault(b, false, 900.0));
  EXPECT_EQ(plane.fault_noise_frac(key), 0.0);  // exactly zero, no residue
  EXPECT_EQ(plane.sample(key, 100.0, 900.0)[0].value, 100.0);  // exact again
}

TEST(SensingSensorPlane, IgnoresNonSensorFaultTypes) {
  SensorPlane plane(SensorPlaneConfig{});
  EXPECT_FALSE(plane.on_fault({FaultType::kServerCrash, 0.0, 60.0, 0, 0.5},
                              true, 0.0));
  EXPECT_FALSE(plane.on_fault({FaultType::kActuatorFail, 0.0, 60.0, 0, 0.5},
                              true, 0.0));
  EXPECT_FALSE(plane.on_fault({FaultType::kUtilityOutage, 0.0, 60.0, 0, 1.0},
                              true, 0.0));
}

}  // namespace
