#include "sensing/scenario.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "faults/fault_plan.h"
#include "faults/types.h"

namespace {

using epm::ThreadPool;
using epm::faults::FaultEvent;
using epm::faults::FaultPlan;
using epm::faults::FaultType;
using epm::sensing::DegradedScenarioConfig;
using epm::sensing::DegradedScenarioOutcome;
using epm::sensing::make_sensing_fault_plan;
using epm::sensing::run_degraded_scenario;

/// Smaller plant / shorter horizon than the bench so the grid tests stay
/// cheap; the physics and control paths exercised are identical.
DegradedScenarioConfig small_config() {
  DegradedScenarioConfig config;
  config.servers_per_service = 16;
  config.horizon_s = 3600.0;
  return config;
}

void expect_same_outcome(const DegradedScenarioOutcome& a,
                         const DegradedScenarioOutcome& b) {
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.sla_violation_epochs, b.sla_violation_epochs);
  EXPECT_EQ(a.thermal_alarms, b.thermal_alarms);
  EXPECT_EQ(a.max_zone_temp_c, b.max_zone_temp_c);  // bitwise, not approx
  EXPECT_EQ(a.offered_requests, b.offered_requests);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.it_energy_kwh, b.it_energy_kwh);
  EXPECT_EQ(a.mechanical_energy_kwh, b.mechanical_energy_kwh);
  EXPECT_EQ(a.max_estimate_age_s, b.max_estimate_age_s);
  EXPECT_EQ(a.sensor_readings, b.sensor_readings);
  EXPECT_EQ(a.sensor_dropped, b.sensor_dropped);
  EXPECT_EQ(a.sensor_stuck, b.sensor_stuck);
  EXPECT_EQ(a.sensor_noisy, b.sensor_noisy);
  EXPECT_EQ(a.estimator_fallbacks, b.estimator_fallbacks);
  EXPECT_EQ(a.commands_issued, b.commands_issued);
  EXPECT_EQ(a.commands_acked, b.commands_acked);
  EXPECT_EQ(a.commands_failed, b.commands_failed);
  EXPECT_EQ(a.command_retries, b.command_retries);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_conserved, b.faults_conserved);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.invariants_ok, b.invariants_ok);
}

TEST(SensingScenario, RejectsInvalidConfig) {
  DegradedScenarioConfig config;
  config.servers_per_service = 0;
  EXPECT_THROW(run_degraded_scenario(config, FaultPlan{}),
               std::invalid_argument);
  config = {};
  config.horizon_s = 0.0;
  EXPECT_THROW(run_degraded_scenario(config, FaultPlan{}),
               std::invalid_argument);
}

TEST(SensingScenario, FaultPlanFactoryIsEmptyAtZeroIntensity) {
  EXPECT_TRUE(make_sensing_fault_plan(0.0, 14400.0, 1, 2).empty());
  EXPECT_THROW(make_sensing_fault_plan(-1.0, 14400.0, 1, 2),
               std::invalid_argument);
}

TEST(SensingScenario, FaultPlanFactoryHasScriptedCoreAndIsSeedStable) {
  const auto plan = make_sensing_fault_plan(1.0, 14400.0, 42, 2);
  // The scripted core guarantees a stuck-at window and a cooling-network
  // actuation outage at every positive intensity.
  EXPECT_GE(plan.count(FaultType::kSensorStuck), 1u);
  EXPECT_GE(plan.count(FaultType::kActuatorFail), 1u);

  const auto same = make_sensing_fault_plan(1.0, 14400.0, 42, 2);
  EXPECT_EQ(plan.fingerprint(), same.fingerprint());
  const auto reseeded = make_sensing_fault_plan(1.0, 14400.0, 43, 2);
  EXPECT_NE(plan.fingerprint(), reseeded.fingerprint());
}

// Satellite regression: pure sensing faults must not make the hardened
// controller cook the machine room. Dropout-only and stuck-only plans run
// against the fault-free baseline at the same seed; the validated
// estimator's fallback + staleness-widened margins have to absorb the
// observability loss without adding thermal alarms.
TEST(SensingScenario, DropoutOnlyFaultsDoNotIncreaseThermalAlarms) {
  DegradedScenarioConfig config;
  config.servers_per_service = 32;
  config.horizon_s = 2.0 * 3600.0;

  const auto clean = run_degraded_scenario(config, FaultPlan{});

  std::vector<FaultEvent> events;
  for (std::size_t domain = 0; domain < 3; ++domain) {
    events.push_back({FaultType::kSensorDropout, 900.0 + 1200.0 * domain,
                      600.0, domain, 1.0});
  }
  const auto faulty =
      run_degraded_scenario(config, FaultPlan::scripted(events));

  EXPECT_GT(faulty.sensor_dropped, 0u);
  EXPECT_GT(faulty.estimator_fallbacks, 0u);
  EXPECT_LE(faulty.thermal_alarms, clean.thermal_alarms);
  EXPECT_TRUE(faulty.invariants_ok) << faulty.invariant_report;
  EXPECT_TRUE(faulty.faults_conserved);
}

TEST(SensingScenario, StuckOnlyFaultsDoNotIncreaseThermalAlarms) {
  DegradedScenarioConfig config;
  config.servers_per_service = 32;
  config.horizon_s = 2.0 * 3600.0;

  const auto clean = run_degraded_scenario(config, FaultPlan{});

  std::vector<FaultEvent> events;
  for (std::size_t domain = 0; domain < 3; ++domain) {
    events.push_back({FaultType::kSensorStuck, 600.0 + 1500.0 * domain,
                      900.0, domain, 1.0});
  }
  const auto faulty =
      run_degraded_scenario(config, FaultPlan::scripted(events));

  EXPECT_GT(faulty.sensor_stuck, 0u);
  EXPECT_LE(faulty.thermal_alarms, clean.thermal_alarms);
  EXPECT_TRUE(faulty.invariants_ok) << faulty.invariant_report;
  EXPECT_TRUE(faulty.faults_conserved);
}

// Dominance smoke at one bench point: the hardened arm must be no worse
// than the naive arm on both gate metrics under the standard fault profile.
TEST(SensingScenario, HardenedArmWeaklyDominatesNaiveUnderFaults) {
  DegradedScenarioConfig config;
  const auto plan =
      make_sensing_fault_plan(1.0, config.horizon_s, config.seed + 17, 2);

  config.hardened = false;
  const auto naive = run_degraded_scenario(config, plan);
  config.hardened = true;
  const auto hardened = run_degraded_scenario(config, plan);

  EXPECT_LE(hardened.sla_violation_epochs, naive.sla_violation_epochs);
  EXPECT_LE(hardened.thermal_alarms, naive.thermal_alarms);
  EXPECT_GE(hardened.served_fraction(), naive.served_fraction());
  EXPECT_TRUE(naive.invariants_ok) << naive.invariant_report;
  EXPECT_TRUE(hardened.invariants_ok) << hardened.invariant_report;
  EXPECT_TRUE(naive.faults_conserved);
  EXPECT_TRUE(hardened.faults_conserved);
}

// Satellite determinism gate: evaluating the sweep grid through thread
// pools of 1, 2, and 8 workers must reproduce the serial outcomes bit for
// bit — every run owns its simulator, planes, and RNG streams, so thread
// count can only change scheduling, never results.
TEST(SensingScenario, OutcomesAreBitIdenticalAcrossSweepThreadCounts) {
  struct Point {
    double intensity;
    bool hardened;
  };
  const std::vector<Point> grid = {
      {0.0, false}, {0.0, true}, {1.0, false},
      {1.0, true},  {2.0, true},
  };

  auto evaluate = [&grid](std::size_t i) {
    DegradedScenarioConfig config = small_config();
    config.hardened = grid[i].hardened;
    const auto plan = make_sensing_fault_plan(
        grid[i].intensity, config.horizon_s, config.seed + 17, 2);
    return run_degraded_scenario(config, plan);
  };

  std::vector<DegradedScenarioOutcome> serial;
  serial.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    serial.push_back(evaluate(i));
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = pool.parallel_map(grid.size(), evaluate);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " point=" + std::to_string(i));
      expect_same_outcome(serial[i], parallel[i]);
    }
  }
}

}  // namespace
