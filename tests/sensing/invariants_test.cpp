#include "sensing/invariants.h"

#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using epm::sensing::InvariantInputs;
using epm::sensing::InvariantMonitor;
using epm::sensing::InvariantMonitorConfig;

InvariantMonitorConfig recording_config() {
  InvariantMonitorConfig config;
  config.throw_on_violation = false;
  return config;
}

/// A physically consistent epoch: 100 kW IT + 30 kW mechanical covered by
/// the utility draw, PUE > 1, modest temperatures, no drops.
InvariantInputs healthy_inputs() {
  InvariantInputs in;
  in.time_s = 3600.0;
  in.it_power_w = 100e3;
  in.mechanical_power_w = 30e3;
  in.utility_draw_w = 135e3;
  in.pue = 1.35;
  in.max_zone_temp_c = 28.5;
  in.zone_temps_c = {28.5, 26.0};
  in.arrival_rate_per_s = {4000.0, 2500.0};
  in.dropped_rate_per_s = {0.0, 12.5};
  in.state_of_charge = 0.93;
  return in;
}

TEST(InvariantMonitorTest, HealthyEpochPassesEveryCheck) {
  InvariantMonitor monitor(recording_config());
  monitor.check(healthy_inputs());
  EXPECT_TRUE(monitor.ok());
  EXPECT_EQ(monitor.violation_count(), 0u);
  EXPECT_EQ(monitor.checks(), 1u);
  EXPECT_NE(monitor.report().find("all invariants held"), std::string::npos);
}

TEST(InvariantMonitorTest, BrokenEnergyConservationIsNamedInTheReport) {
  InvariantMonitor monitor(recording_config());
  // A deliberately broken power tree: the utility supposedly delivers less
  // than the facility consumes — free energy.
  auto in = healthy_inputs();
  in.utility_draw_w = 90e3;
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].name, "energy-conservation");
  EXPECT_NE(monitor.report().find("energy-conservation"), std::string::npos);
  EXPECT_NE(monitor.report().find("t=3600"), std::string::npos);
}

TEST(InvariantMonitorTest, ServedAboveOfferedIsCaught) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.dropped_rate_per_s = {5000.0, 0.0};  // dropping more than was offered
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "served-within-offered");
}

TEST(InvariantMonitorTest, NegativeDropRateIsCaught) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.dropped_rate_per_s = {-1.0, 0.0};
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "served-within-offered");
}

TEST(InvariantMonitorTest, PueBelowOneIsCaughtOnlyUnderRealLoad) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.pue = 0.8;
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "pue-floor");

  // A dark facility reports PUE 0 by convention; that must not violate.
  InvariantMonitor dark(recording_config());
  InvariantInputs idle;
  idle.pue = 0.0;
  dark.check(idle);
  EXPECT_TRUE(dark.ok());
}

TEST(InvariantMonitorTest, TemperatureAndSocBoundsAreChecked) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.zone_temps_c[1] = 300.0;  // beyond any machine-room physics
  in.max_zone_temp_c = 300.0;
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "temperature-bounds");

  InvariantMonitor soc(recording_config());
  auto in2 = healthy_inputs();
  in2.state_of_charge = 1.7;
  soc.check(in2);
  EXPECT_FALSE(soc.ok());
  EXPECT_EQ(soc.violations()[0].name, "soc-bounds");
}

TEST(InvariantMonitorTest, NonFiniteStateShortCircuits) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.it_power_w = std::numeric_limits<double>::quiet_NaN();
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  ASSERT_EQ(monitor.violations().size(), 1u);  // later checks skipped
  EXPECT_EQ(monitor.violations()[0].name, "finite-state");
}

TEST(InvariantMonitorTest, NegativePowerIsCaught) {
  InvariantMonitor monitor(recording_config());
  auto in = healthy_inputs();
  in.mechanical_power_w = -500.0;
  monitor.check(in);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "non-negative-power");
}

TEST(InvariantMonitorTest, ThrowModeAbortsWithNamedReport) {
  InvariantMonitorConfig config;
  config.throw_on_violation = true;
  InvariantMonitor monitor(config);
  auto in = healthy_inputs();
  in.utility_draw_w = 0.0;
  try {
    monitor.check(in);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("energy-conservation"),
              std::string::npos);
  }
}

TEST(InvariantMonitorTest, CheckScalarBoundsArbitraryQuantities) {
  InvariantMonitor monitor(recording_config());
  monitor.check_scalar("soc-bounds", 0.5, 0.0, 1.0, 100.0);
  EXPECT_TRUE(monitor.ok());
  monitor.check_scalar("soc-bounds", -0.2, 0.0, 1.0, 200.0);
  EXPECT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].name, "soc-bounds");
}

TEST(InvariantMonitorTest, RecordingIsBoundedButCountingIsNot) {
  InvariantMonitorConfig config;
  config.throw_on_violation = false;
  config.max_recorded = 2;
  InvariantMonitor monitor(config);
  for (int i = 0; i < 5; ++i) {
    monitor.check_scalar("soc-bounds", 2.0, 0.0, 1.0, i * 60.0);
  }
  EXPECT_EQ(monitor.violations().size(), 2u);
  EXPECT_EQ(monitor.violation_count(), 5u);
}

}  // namespace
