#include "sensing/estimator.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace {

using epm::sensing::ChannelKind;
using epm::sensing::EstimatorConfig;
using epm::sensing::make_channel;
using epm::sensing::SensorReading;
using epm::sensing::ValidatedEstimator;

std::vector<SensorReading> readings(std::initializer_list<double> values,
                                    double time_s = 0.0, bool valid = true) {
  std::vector<SensorReading> out;
  for (double v : values) {
    out.push_back({v, time_s, valid, false});
  }
  return out;
}

TEST(SensingEstimator, RawModeIsBitExactPassthrough) {
  ValidatedEstimator estimator;  // defaults: validate=false, alpha=1
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  const double truth = 1234.5678901234567;
  const auto est = estimator.update(key, readings({truth}), 0.0);
  EXPECT_EQ(est.value, truth);  // bitwise
  EXPECT_DOUBLE_EQ(est.age_s, 0.0);
  EXPECT_FALSE(est.degraded);
  EXPECT_TRUE(est.has_value);
  EXPECT_EQ(estimator.accepted(), 1u);
}

TEST(SensingEstimator, RejectsInvalidConfig) {
  EstimatorConfig config;
  config.ewma_alpha = 0.0;
  EXPECT_THROW(ValidatedEstimator{config}, std::invalid_argument);
  config = {};
  config.max_margin_multiplier = 0.5;
  EXPECT_THROW(ValidatedEstimator{config}, std::invalid_argument);
}

TEST(SensingEstimator, MedianVoteRejectsAWildMinoritySensor) {
  EstimatorConfig config;
  config.validate = true;
  ValidatedEstimator estimator(config);
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  const auto est = estimator.update(key, readings({100.0, 5e6, 101.0}), 0.0);
  EXPECT_DOUBLE_EQ(est.value, 101.0);  // lower median of {100, 101, 5e6}
}

TEST(SensingEstimator, RangeGateFallsBackToLastKnownGood) {
  EstimatorConfig config;
  config.validate = true;
  config.use_median = false;
  ValidatedEstimator estimator(config);
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);

  EXPECT_DOUBLE_EQ(estimator.update(key, readings({200.0}, 0.0), 0.0).value,
                   200.0);
  const auto est = estimator.update(key, readings({-5.0}, 60.0), 60.0);
  EXPECT_DOUBLE_EQ(est.value, 200.0);  // negative arrival rate is impossible
  EXPECT_TRUE(est.degraded);
  EXPECT_DOUBLE_EQ(est.age_s, 60.0);
  EXPECT_EQ(estimator.rejected_range(), 1u);
}

TEST(SensingEstimator, DropoutFallsBackAndAgeGrows) {
  ValidatedEstimator estimator;  // raw mode also holds last on dropout
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  (void)estimator.update(key, readings({50.0}, 0.0), 0.0);
  const auto est =
      estimator.update(key, readings({0.0}, 120.0, /*valid=*/false), 120.0);
  EXPECT_DOUBLE_EQ(est.value, 50.0);
  EXPECT_DOUBLE_EQ(est.age_s, 120.0);
  EXPECT_TRUE(est.degraded);
  EXPECT_EQ(estimator.fallbacks(), 1u);
}

TEST(SensingEstimator, StuckDetectionTripsOnRepeatedMedians) {
  EstimatorConfig config;
  config.validate = true;
  config.stuck_after = 3;
  ValidatedEstimator estimator(config);
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);

  EXPECT_FALSE(estimator.update(key, readings({70.0}, 0.0), 0.0).degraded);
  EXPECT_FALSE(estimator.update(key, readings({70.0}, 60.0), 60.0).degraded);
  const auto est = estimator.update(key, readings({70.0}, 120.0), 120.0);
  EXPECT_TRUE(est.degraded);  // third bit-identical median -> stuck
  EXPECT_EQ(estimator.rejected_stuck(), 1u);

  // A changed value re-locks immediately.
  EXPECT_FALSE(estimator.update(key, readings({71.0}, 180.0), 180.0).degraded);
}

TEST(SensingEstimator, StuckDetectionSkipsQuasiConstantChannels) {
  EstimatorConfig config;
  config.validate = true;
  config.stuck_after = 3;
  ValidatedEstimator estimator(config);
  // Service demand is legitimately constant; bounds opt it out.
  const auto key = make_channel(ChannelKind::kServiceDemand, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(
        estimator.update(key, readings({0.01}, i * 60.0), i * 60.0).degraded);
  }
  EXPECT_EQ(estimator.rejected_stuck(), 0u);
}

TEST(SensingEstimator, RateGateRejectsThenRelocksOnPersistentShift) {
  EstimatorConfig config;
  config.validate = true;
  config.use_median = false;
  config.rate_relock_after = 3;
  ValidatedEstimator estimator(config);
  // Zone temp slew bound is 2 C/s.
  const auto key = make_channel(ChannelKind::kZoneTemp, 0);

  (void)estimator.update(key, readings({22.0}, 0.0), 0.0);
  // +58 C in one second beats the 2 C/s slew bound: reject, reject, then the
  // third consecutive violation is treated as a persistent level shift.
  EXPECT_TRUE(estimator.update(key, readings({80.0}, 1.0), 1.0).degraded);
  EXPECT_TRUE(estimator.update(key, readings({80.0}, 2.0), 2.0).degraded);
  EXPECT_EQ(estimator.rejected_rate(), 2u);
  const auto relocked = estimator.update(key, readings({80.0}, 3.0), 3.0);
  EXPECT_FALSE(relocked.degraded);
  EXPECT_DOUBLE_EQ(relocked.value, 80.0);
}

TEST(SensingEstimator, EwmaSmoothsAndAlphaOneIsExact) {
  EstimatorConfig config;
  config.validate = true;
  config.use_median = false;
  config.ewma_alpha = 0.5;
  ValidatedEstimator smoothing(config);
  const auto key = make_channel(ChannelKind::kServiceArrival, 0);
  (void)smoothing.update(key, readings({100.0}, 0.0), 0.0);
  const auto est = smoothing.update(key, readings({200.0}, 60.0), 60.0);
  EXPECT_DOUBLE_EQ(est.value, 150.0);

  config.ewma_alpha = 1.0;
  ValidatedEstimator exact(config);
  (void)exact.update(key, readings({100.0}, 0.0), 0.0);
  const double truth = 123.4567890123456789;
  EXPECT_EQ(exact.update(key, readings({truth}, 60.0), 60.0).value, truth);
}

TEST(SensingEstimator, MarginMultiplierGrowsWithAgeAndCaps) {
  EstimatorConfig config;
  config.stale_margin_gain_per_s = 0.01;
  config.max_margin_multiplier = 2.5;
  ValidatedEstimator estimator(config);
  EXPECT_EQ(estimator.margin_multiplier(0.0), 1.0);  // exactly 1 at age 0
  EXPECT_DOUBLE_EQ(estimator.margin_multiplier(50.0), 1.5);
  EXPECT_DOUBLE_EQ(estimator.margin_multiplier(1e6), 2.5);
}

}  // namespace
