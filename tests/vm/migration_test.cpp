#include "vm/migration.h"

#include <gtest/gtest.h>

#include "vm/placement.h"

namespace epm::vm {
namespace {

TEST(MigrationCost, ScalesWithMemory) {
  VmSpec small;
  small.memory_gb = 4.0;
  VmSpec large;
  large.memory_gb = 16.0;
  const auto cs = migration_cost(small);
  const auto cl = migration_cost(large);
  EXPECT_NEAR(cl.duration_s / cs.duration_s, 4.0, 1e-9);
  EXPECT_NEAR(cl.bytes_moved / cs.bytes_moved, 4.0, 1e-9);
  EXPECT_GT(cl.energy_j, cs.energy_j);
}

TEST(MigrationCost, ClosedForm) {
  VmSpec vm;
  vm.memory_gb = 8.0;
  MigrationCostConfig config;
  config.network_gbps = 10.0;
  config.dirty_factor = 1.25;
  const auto cost = migration_cost(vm, config);
  EXPECT_DOUBLE_EQ(cost.bytes_moved, 8.0e9 * 1.25);
  EXPECT_DOUBLE_EQ(cost.duration_s, cost.bytes_moved / (10.0e9 / 8.0));
  EXPECT_DOUBLE_EQ(cost.energy_j, 2.0 * config.overhead_power_w * cost.duration_s);
  EXPECT_DOUBLE_EQ(cost.downtime_s, config.downtime_s);
}

TEST(MigrationCost, RejectsBadConfig) {
  MigrationCostConfig bad;
  bad.network_gbps = 0.0;
  EXPECT_THROW(migration_cost(VmSpec{}, bad), std::invalid_argument);
  bad = MigrationCostConfig{};
  bad.dirty_factor = 0.9;
  EXPECT_THROW(migration_cost(VmSpec{}, bad), std::invalid_argument);
}

TEST(PlanMigration, DiffsAssignments) {
  std::vector<VmSpec> vms(3);
  for (std::size_t i = 0; i < 3; ++i) vms[i].id = i;
  const std::vector<std::size_t> from{0, 1, 2};
  const std::vector<std::size_t> to{0, 2, 1};
  const auto plan = plan_migration(vms, from, to);
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.moves[0].vm_index, 1u);
  EXPECT_EQ(plan.moves[0].from_host, 1u);
  EXPECT_EQ(plan.moves[0].to_host, 2u);
  EXPECT_GT(plan.total_duration_s, 0.0);
  EXPECT_GT(plan.total_energy_j, 0.0);
}

TEST(PlanMigration, SkipsUnplacedAndUnmoved) {
  std::vector<VmSpec> vms(3);
  const std::vector<std::size_t> from{0, kUnplaced, 1};
  const std::vector<std::size_t> to{0, 1, kUnplaced};
  const auto plan = plan_migration(vms, from, to);
  EXPECT_TRUE(plan.moves.empty());
}

TEST(PlanMigration, SizeMismatchRejected) {
  std::vector<VmSpec> vms(2);
  EXPECT_THROW(plan_migration(vms, {0}, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace epm::vm
