#include "vm/interference.h"

#include <gtest/gtest.h>

namespace epm::vm {
namespace {

VmSpec io_vm(std::size_t id, double iops = 150.0) {
  VmSpec vm;
  vm.id = id;
  vm.name = "io" + std::to_string(id);
  vm.cpu_cores = 1.0;
  vm.disk_iops = iops;
  return vm;
}

VmSpec cpu_vm(std::size_t id, double cores = 4.0) {
  VmSpec vm;
  vm.id = id;
  vm.name = "cpu" + std::to_string(id);
  vm.cpu_cores = cores;
  vm.disk_iops = 5.0;
  return vm;
}

TEST(Interference, SingleVmUndegraded) {
  const auto eval = evaluate_host({io_vm(0)}, HostSpec{});
  ASSERT_EQ(eval.vms.size(), 1u);
  EXPECT_DOUBLE_EQ(eval.vms[0].throughput_ratio, 1.0);
  EXPECT_EQ(eval.io_intensive_count, 1u);
  EXPECT_DOUBLE_EQ(eval.effective_disk_iops, 400.0);  // no amplification
}

TEST(Interference, TwoIoVmsDegradeNonAdditively) {
  // Paper §4.4: "putting two disk IO intensive applications on the same host
  // machine may cause significant throughput degradation."
  HostSpec host;  // 400 iops
  const auto one = evaluate_host({io_vm(0)}, host);
  const auto two = evaluate_host({io_vm(0), io_vm(1)}, host);
  EXPECT_EQ(two.io_intensive_count, 2u);
  // Effective capacity deflated: 400 / 1.35 < 300 demanded.
  EXPECT_LT(two.effective_disk_iops, 300.0);
  EXPECT_LT(two.worst_throughput_ratio, 1.0);
  EXPECT_LT(two.worst_throughput_ratio, one.worst_throughput_ratio);
  // Both tenants bottlenecked on disk.
  for (const auto& perf : two.vms) EXPECT_EQ(perf.bottleneck, 1);
}

TEST(Interference, DegradationWorsensWithMoreTenants) {
  HostSpec host;
  const auto two = evaluate_host({io_vm(0), io_vm(1)}, host);
  const auto three = evaluate_host({io_vm(0), io_vm(1), io_vm(2)}, host);
  EXPECT_LT(three.worst_throughput_ratio, two.worst_throughput_ratio);
  EXPECT_LT(three.effective_disk_iops, two.effective_disk_iops);
}

TEST(Interference, CpuAndIoMixCoexist) {
  // One IO-heavy plus CPU-bound fillers: no seek amplification, no
  // degradation while capacity lasts.
  HostSpec host;
  const auto eval = evaluate_host({io_vm(0), cpu_vm(1), cpu_vm(2)}, host);
  EXPECT_EQ(eval.io_intensive_count, 1u);
  EXPECT_DOUBLE_EQ(eval.worst_throughput_ratio, 1.0);
}

TEST(Interference, CpuOversubscriptionIsProportional) {
  HostSpec host;  // 16 cores
  const auto eval = evaluate_host({cpu_vm(0, 12.0), cpu_vm(1, 12.0)}, host);
  // 24 cores demanded on 16: everyone gets 2/3.
  ASSERT_EQ(eval.vms.size(), 2u);
  EXPECT_NEAR(eval.vms[0].throughput_ratio, 16.0 / 24.0, 1e-9);
  EXPECT_EQ(eval.vms[0].bottleneck, 0);
  EXPECT_DOUBLE_EQ(eval.cpu_utilization, 1.0);
}

TEST(Interference, NetworkBottleneckDetected) {
  HostSpec host;
  host.net_mbps = 100.0;
  VmSpec net_vm;
  net_vm.id = 0;
  net_vm.net_mbps = 150.0;
  net_vm.disk_iops = 0.0;
  net_vm.cpu_cores = 0.5;
  const auto eval = evaluate_host({net_vm}, host);
  EXPECT_EQ(eval.vms[0].bottleneck, 2);
  EXPECT_NEAR(eval.vms[0].throughput_ratio, 100.0 / 150.0, 1e-9);
}

TEST(Interference, EmptyHostIsClean) {
  const auto eval = evaluate_host({}, HostSpec{});
  EXPECT_TRUE(eval.vms.empty());
  EXPECT_DOUBLE_EQ(eval.worst_throughput_ratio, 1.0);
}

TEST(Interference, ConfigValidation) {
  InterferenceConfig bad;
  bad.io_intensive_fraction = 0.0;
  EXPECT_THROW(evaluate_host({io_vm(0)}, HostSpec{}, bad), std::invalid_argument);
  bad = InterferenceConfig{};
  bad.contention_penalty = -1.0;
  EXPECT_THROW(evaluate_host({io_vm(0)}, HostSpec{}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace epm::vm
