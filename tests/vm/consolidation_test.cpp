#include "vm/consolidation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace epm::vm {
namespace {

std::vector<HostSpec> make_hosts(std::size_t n) {
  std::vector<HostSpec> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i].id = i;
  return hosts;
}

VmSpec small_vm(std::size_t id, double cores = 2.0) {
  VmSpec vm;
  vm.id = id;
  vm.cpu_cores = cores;
  vm.disk_iops = 10.0;
  vm.net_mbps = 5.0;
  vm.memory_gb = 4.0;
  return vm;
}

/// Four 2-core VMs spread one per host (the "demand has receded" state).
Placement spread_placement() {
  Placement p;
  p.assignment = {0, 1, 2, 3};
  p.hosts_used = 4;
  return p;
}

TEST(Consolidation, PacksAndFreesHosts) {
  std::vector<VmSpec> vms{small_vm(0), small_vm(1), small_vm(2), small_vm(3)};
  const auto hosts = make_hosts(4);
  const auto plan = plan_consolidation(vms, hosts, spread_placement());
  // 4 x 2 cores fit on one 16-core host.
  EXPECT_EQ(plan.hosts_before, 4u);
  EXPECT_EQ(plan.hosts_after, 1u);
  EXPECT_EQ(plan.hosts_freed, 3u);
  EXPECT_DOUBLE_EQ(plan.power_saved_w, 3 * 180.0);
  EXPECT_EQ(plan.moves.moves.size(), 3u);
  EXPECT_TRUE(plan.worthwhile);
  EXPECT_LT(plan.payback_s, 3600.0);
}

TEST(Consolidation, AlreadyPackedIsNoop) {
  std::vector<VmSpec> vms{small_vm(0), small_vm(1)};
  const auto hosts = make_hosts(2);
  Placement packed;
  packed.assignment = {0, 0};
  packed.hosts_used = 1;
  const auto plan = plan_consolidation(vms, hosts, packed);
  EXPECT_EQ(plan.hosts_freed, 0u);
  EXPECT_TRUE(plan.moves.moves.empty());
  EXPECT_FALSE(plan.worthwhile);
  EXPECT_TRUE(std::isinf(plan.payback_s));
}

TEST(Consolidation, HugeMemoryMakesMigrationNotWorthIt) {
  std::vector<VmSpec> vms{small_vm(0), small_vm(1), small_vm(2), small_vm(3)};
  for (auto& vm : vms) vm.memory_gb = 16.0;  // 4 x 16 still fit on one host
  ConsolidationConfig config;
  config.payback_horizon_s = 600.0;       // must pay back in 10 minutes
  config.migration.network_gbps = 0.1;    // slow link: huge migration energy
  config.migration.overhead_power_w = 200.0;
  const auto plan =
      plan_consolidation(vms, make_hosts(4), spread_placement(), config);
  EXPECT_EQ(plan.hosts_freed, 3u);
  EXPECT_GT(plan.payback_s, config.payback_horizon_s);
  EXPECT_FALSE(plan.worthwhile);
}

TEST(Consolidation, RespectsInterferenceGuard) {
  // Two IO-heavy VMs spread on two hosts must NOT be packed together.
  std::vector<VmSpec> vms{small_vm(0), small_vm(1)};
  vms[0].disk_iops = 150.0;
  vms[1].disk_iops = 150.0;
  Placement spread;
  spread.assignment = {0, 1};
  spread.hosts_used = 2;
  const auto plan = plan_consolidation(vms, make_hosts(2), spread);
  EXPECT_EQ(plan.hosts_after, 2u);
  EXPECT_EQ(plan.hosts_freed, 0u);
  EXPECT_FALSE(plan.worthwhile);
}

TEST(Consolidation, IgnoresUnplacedVms) {
  std::vector<VmSpec> vms{small_vm(0), small_vm(1), small_vm(2)};
  Placement current;
  current.assignment = {0, 1, kUnplaced};
  current.hosts_used = 2;
  const auto plan = plan_consolidation(vms, make_hosts(2), current);
  EXPECT_EQ(plan.target.assignment[2], kUnplaced);
  EXPECT_EQ(plan.hosts_after, 1u);
}

TEST(Consolidation, EmptyFleet) {
  std::vector<VmSpec> vms{small_vm(0)};
  Placement current;
  current.assignment = {kUnplaced};
  current.hosts_used = 0;
  const auto plan = plan_consolidation(vms, make_hosts(2), current);
  EXPECT_FALSE(plan.worthwhile);
  EXPECT_TRUE(plan.moves.moves.empty());
}

TEST(Consolidation, Validation) {
  std::vector<VmSpec> vms{small_vm(0)};
  Placement wrong;
  wrong.assignment = {0, 1};  // arity mismatch
  EXPECT_THROW(plan_consolidation(vms, make_hosts(2), wrong), std::invalid_argument);
  Placement ok;
  ok.assignment = {0};
  ok.hosts_used = 1;
  ConsolidationConfig bad;
  bad.payback_horizon_s = 0.0;
  EXPECT_THROW(plan_consolidation(vms, make_hosts(2), ok, bad), std::invalid_argument);
}

}  // namespace
}  // namespace epm::vm
