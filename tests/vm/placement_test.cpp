#include "vm/placement.h"

#include <gtest/gtest.h>

#include <numbers>
#include <cmath>

namespace epm::vm {
namespace {

std::vector<HostSpec> make_hosts(std::size_t n) {
  std::vector<HostSpec> hosts(n);
  for (std::size_t i = 0; i < n; ++i) {
    hosts[i].id = i;
    hosts[i].name = "host" + std::to_string(i);
  }
  return hosts;
}

VmSpec simple_vm(std::size_t id, double cores) {
  VmSpec vm;
  vm.id = id;
  vm.cpu_cores = cores;
  vm.disk_iops = 10.0;
  vm.net_mbps = 5.0;
  vm.memory_gb = 2.0;
  return vm;
}

TEST(FirstFitDecreasing, PacksTightly) {
  // 4 VMs of 8 cores fit exactly onto 2 x 16-core hosts.
  std::vector<VmSpec> vms;
  for (std::size_t i = 0; i < 4; ++i) vms.push_back(simple_vm(i, 8.0));
  const auto placement = first_fit_decreasing(vms, make_hosts(4));
  EXPECT_EQ(placement.unplaced, 0u);
  EXPECT_EQ(placement.hosts_used, 2u);
}

TEST(FirstFitDecreasing, LargestFirstAvoidsFragmentation) {
  // 10+6 and 8+8 fit in two 16-core hosts only if large VMs go first.
  std::vector<VmSpec> vms{simple_vm(0, 6.0), simple_vm(1, 8.0), simple_vm(2, 10.0),
                          simple_vm(3, 8.0)};
  const auto placement = first_fit_decreasing(vms, make_hosts(2));
  EXPECT_EQ(placement.unplaced, 0u);
  EXPECT_EQ(placement.hosts_used, 2u);
}

TEST(FirstFitDecreasing, ReportsUnplaced) {
  std::vector<VmSpec> vms{simple_vm(0, 20.0)};  // bigger than any host
  const auto placement = first_fit_decreasing(vms, make_hosts(2));
  EXPECT_EQ(placement.unplaced, 1u);
  EXPECT_EQ(placement.assignment[0], kUnplaced);
  EXPECT_EQ(placement.hosts_used, 0u);
}

TEST(InterferenceAware, SeparatesIoIntensiveVms) {
  VmSpec io1 = simple_vm(0, 1.0);
  io1.disk_iops = 150.0;
  VmSpec io2 = simple_vm(1, 1.0);
  io2.disk_iops = 150.0;
  const auto hosts = make_hosts(3);
  const auto placement = interference_aware({io1, io2}, hosts);
  EXPECT_EQ(placement.unplaced, 0u);
  EXPECT_NE(placement.assignment[0], placement.assignment[1]);
}

TEST(InterferenceAware, FfdWouldColocateThem) {
  // Contrast: CPU-driven FFD puts both IO hogs on host 0.
  VmSpec io1 = simple_vm(0, 1.0);
  io1.disk_iops = 150.0;
  VmSpec io2 = simple_vm(1, 1.0);
  io2.disk_iops = 150.0;
  const auto placement = first_fit_decreasing({io1, io2}, make_hosts(3));
  EXPECT_EQ(placement.assignment[0], placement.assignment[1]);
}

TEST(InterferenceAware, CpuVmsStillPack) {
  std::vector<VmSpec> vms;
  for (std::size_t i = 0; i < 4; ++i) vms.push_back(simple_vm(i, 4.0));
  const auto placement = interference_aware(vms, make_hosts(4));
  EXPECT_EQ(placement.unplaced, 0u);
  EXPECT_EQ(placement.hosts_used, 1u);
}

TEST(InterferenceAware, AllowsMoreWithHigherLimit) {
  VmSpec io1 = simple_vm(0, 1.0);
  io1.disk_iops = 120.0;
  VmSpec io2 = simple_vm(1, 1.0);
  io2.disk_iops = 120.0;
  const auto placement =
      interference_aware({io1, io2}, make_hosts(1), InterferenceConfig{}, 2);
  EXPECT_EQ(placement.unplaced, 0u);
  EXPECT_EQ(placement.hosts_used, 1u);
}

TEST(ColocatedPeak, FlatVmsSumMeans) {
  std::vector<VmSpec> vms{simple_vm(0, 2.0), simple_vm(1, 3.0)};
  EXPECT_DOUBLE_EQ(colocated_peak(vms, {0, 1}, 0), 5.0);
  EXPECT_DOUBLE_EQ(colocated_peak(vms, {}, 0), 0.0);
}

TEST(ColocatedPeak, AntiCorrelatedProfilesPeakLower) {
  // Two VMs with opposite-phase profiles: together they stay flat.
  const std::size_t n = 24;
  std::vector<double> day(n);
  std::vector<double> night(n);
  for (std::size_t h = 0; h < n; ++h) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(h) / 24.0;
    day[h] = 1.0 + 0.8 * std::sin(phase);
    night[h] = 1.0 - 0.8 * std::sin(phase);
  }
  VmSpec a = simple_vm(0, 4.0);
  a.load_profile = TimeSeries(0.0, 3600.0, day);
  VmSpec b = simple_vm(1, 4.0);
  b.load_profile = TimeSeries(0.0, 3600.0, night);
  VmSpec c = simple_vm(2, 4.0);
  c.load_profile = TimeSeries(0.0, 3600.0, day);  // correlated with a

  const std::vector<VmSpec> vms{a, b, c};
  const double anti = colocated_peak(vms, {0, 1}, 0);
  const double corr = colocated_peak(vms, {0, 2}, 0);
  EXPECT_NEAR(anti, 8.0, 0.1);        // flat sum
  EXPECT_NEAR(corr, 2 * 4.0 * 1.8, 0.1);  // peaks aligned
  EXPECT_LT(anti, corr);
}

TEST(CorrelationAware, PrefersAntiCorrelatedCoTenants) {
  const std::size_t n = 24;
  std::vector<double> day(n);
  std::vector<double> night(n);
  for (std::size_t h = 0; h < n; ++h) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(h) / 24.0;
    day[h] = 1.0 + 0.8 * std::sin(phase);
    night[h] = 1.0 - 0.8 * std::sin(phase);
  }
  // Two day-peaking and two night-peaking VMs on two hosts: the
  // correlation-aware packer should mix phases per host.
  std::vector<VmSpec> vms;
  for (std::size_t i = 0; i < 4; ++i) {
    // Strictly decreasing sizes pin the FFD ordering to day,night,day,night.
    VmSpec vm = simple_vm(i, 7.0 - 0.01 * static_cast<double>(i));
    vm.load_profile = TimeSeries(0.0, 3600.0, (i % 2 == 0) ? day : night);
    vms.push_back(vm);
  }
  auto hosts = make_hosts(2);
  const auto placement = correlation_aware(vms, hosts);
  EXPECT_EQ(placement.unplaced, 0u);
  const auto groups = placement.by_host(2);
  for (const auto& members : groups) {
    ASSERT_EQ(members.size(), 2u);
    // Each host holds one day VM and one night VM.
    EXPECT_NE(members[0] % 2, members[1] % 2);
  }
}

TEST(Placement, ByHostGrouping) {
  std::vector<VmSpec> vms{simple_vm(0, 1.0), simple_vm(1, 1.0)};
  Placement placement;
  placement.assignment = {1, kUnplaced};
  const auto groups = placement.by_host(2);
  EXPECT_TRUE(groups[0].empty());
  ASSERT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[1][0], 0u);
}

TEST(Placement, NoHostsRejected) {
  EXPECT_THROW(first_fit_decreasing({simple_vm(0, 1.0)}, {}), std::invalid_argument);
  EXPECT_THROW(interference_aware({simple_vm(0, 1.0)}, {}), std::invalid_argument);
  EXPECT_THROW(correlation_aware({simple_vm(0, 1.0)}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace epm::vm
