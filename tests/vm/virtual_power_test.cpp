#include "vm/virtual_power.h"

#include <gtest/gtest.h>

namespace epm::vm {
namespace {

class VpmTest : public ::testing::Test {
 protected:
  power::ServerPowerModel model_{power::ServerPowerConfig{}};
};

TEST_F(VpmTest, SpeedFractionLadder) {
  SoftPStateRequest r;
  r.soft_pstate_count = 4;
  r.soft_pstate = 0;
  EXPECT_DOUBLE_EQ(VpmChannel::requested_speed_fraction(r), 1.0);
  r.soft_pstate = 3;
  EXPECT_DOUBLE_EQ(VpmChannel::requested_speed_fraction(r), 0.25);
  r.soft_pstate = 1;
  EXPECT_NEAR(VpmChannel::requested_speed_fraction(r), 0.75, 1e-12);
  SoftPStateRequest single;
  EXPECT_DOUBLE_EQ(VpmChannel::requested_speed_fraction(single), 1.0);
}

TEST_F(VpmTest, EmptyHostParksSlowest) {
  VpmChannel channel(model_);
  const auto decision = channel.apply({});
  EXPECT_EQ(decision.host_pstate, model_.pstate_count() - 1);
}

TEST_F(VpmTest, MostDemandingGuestSetsHostState) {
  VpmChannel channel(model_);
  SoftPStateRequest fast;
  fast.vm_id = 0;
  fast.soft_pstate = 0;
  fast.soft_pstate_count = 4;
  SoftPStateRequest slow;
  slow.vm_id = 1;
  slow.soft_pstate = 3;
  slow.soft_pstate_count = 4;
  const auto decision = channel.apply({fast, slow});
  // A guest asked for full speed: host must run P0.
  EXPECT_EQ(decision.host_pstate, 0u);
  ASSERT_EQ(decision.vm_duty.size(), 2u);
  EXPECT_DOUBLE_EQ(decision.vm_duty[0], 1.0);
  // The slow guest is squeezed to its 25% ask through scheduling duty.
  EXPECT_NEAR(decision.vm_duty[1], 0.25, 1e-9);
}

TEST_F(VpmTest, AllSlowGuestsLowerHostState) {
  VpmChannel channel(model_);
  SoftPStateRequest slow;
  slow.soft_pstate = 3;
  slow.soft_pstate_count = 4;  // wants 25%
  const auto decision = channel.apply({slow, slow});
  // Host picks the slowest real state covering 25%: the bottom one (50%).
  EXPECT_EQ(decision.host_pstate, model_.pstate_count() - 1);
  // Residual squeeze: 0.25 / 0.5 = 0.5 duty.
  EXPECT_NEAR(decision.vm_duty[0], 0.5, 1e-9);
}

TEST_F(VpmTest, DutyFloorApplies) {
  VpmRuleConfig config;
  config.min_duty = 0.4;
  VpmChannel channel(model_, config);
  SoftPStateRequest tiny;
  tiny.soft_pstate = 9;
  tiny.soft_pstate_count = 10;  // wants 10%
  SoftPStateRequest fast;
  const auto decision = channel.apply({fast, tiny});
  EXPECT_DOUBLE_EQ(decision.vm_duty[1], 0.4);
}

TEST_F(VpmTest, Validation) {
  VpmChannel channel(model_);
  SoftPStateRequest bad;
  bad.soft_pstate = 5;
  bad.soft_pstate_count = 4;
  EXPECT_THROW(channel.apply({bad}), std::invalid_argument);
  SoftPStateRequest badshare;
  badshare.cpu_share = 0.0;
  EXPECT_THROW(channel.apply({badshare}), std::invalid_argument);
  VpmRuleConfig badcfg;
  badcfg.min_duty = 0.0;
  EXPECT_THROW(VpmChannel(model_, badcfg), std::invalid_argument);
}

}  // namespace
}  // namespace epm::vm
