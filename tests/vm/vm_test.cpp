#include "vm/vm.h"

#include <gtest/gtest.h>

namespace epm::vm {
namespace {

TEST(VmFits, AllDimensionsChecked) {
  HostSpec host;
  host.cpu_cores = 4.0;
  host.disk_iops = 100.0;
  host.net_mbps = 100.0;
  host.memory_gb = 8.0;
  VmSpec vm;
  vm.cpu_cores = 2.0;
  vm.disk_iops = 50.0;
  vm.net_mbps = 50.0;
  vm.memory_gb = 4.0;
  HostUsage used;
  EXPECT_TRUE(fits(vm, host, used));
  used = add_usage(used, vm);
  EXPECT_TRUE(fits(vm, host, used));  // exactly fills
  used = add_usage(used, vm);
  EXPECT_FALSE(fits(vm, host, used));
}

TEST(VmFits, SingleDimensionBlocks) {
  HostSpec host;
  VmSpec vm;
  vm.cpu_cores = 1.0;
  vm.memory_gb = host.memory_gb + 1.0;  // memory alone blocks
  EXPECT_FALSE(fits(vm, host, HostUsage{}));
}

TEST(AddUsage, Accumulates) {
  VmSpec vm;
  vm.cpu_cores = 1.5;
  vm.disk_iops = 20.0;
  vm.net_mbps = 5.0;
  vm.memory_gb = 2.0;
  const auto used = add_usage(add_usage(HostUsage{}, vm), vm);
  EXPECT_DOUBLE_EQ(used.cpu_cores, 3.0);
  EXPECT_DOUBLE_EQ(used.disk_iops, 40.0);
  EXPECT_DOUBLE_EQ(used.net_mbps, 10.0);
  EXPECT_DOUBLE_EQ(used.memory_gb, 4.0);
}

TEST(IsDiskBound, ClassifiesByDominantPressure) {
  HostSpec reference;  // 16 cores, 400 iops
  VmSpec io_vm;
  io_vm.cpu_cores = 1.0;    // 1/16 = 0.0625 pressure
  io_vm.disk_iops = 200.0;  // 200/400 = 0.5 pressure
  EXPECT_TRUE(is_disk_bound(io_vm, reference));
  VmSpec cpu_vm;
  cpu_vm.cpu_cores = 8.0;   // 0.5 pressure
  cpu_vm.disk_iops = 10.0;  // 0.025 pressure
  EXPECT_FALSE(is_disk_bound(cpu_vm, reference));
}

}  // namespace
}  // namespace epm::vm
