#include "oversub/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace epm::oversub {
namespace {

/// Diurnal power trace for one service: peaks aligned across services.
TimeSeries diurnal_power(double mean_w, double swing_w, double phase = 0.0) {
  TimeSeries t(0.0, 900.0);
  for (int i = 0; i < 96 * 7; ++i) {  // one week at 15 min
    const double x = 2.0 * std::numbers::pi * (i % 96) / 96.0;
    t.push_back(mean_w + swing_w * std::sin(x + phase));
  }
  return t;
}

TEST(NormalTail, KnownValues) {
  EXPECT_NEAR(normal_tail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_tail(1.645), 0.05, 1e-3);
  EXPECT_NEAR(normal_tail(3.0), 0.00135, 1e-4);
}

TEST(OversubscriptionRatio, SumOfPeaksOverCapacity) {
  std::vector<ServicePowerProfile> services;
  services.emplace_back("a", diurnal_power(100.0, 50.0), 200.0);
  services.emplace_back("b", diurnal_power(100.0, 50.0), 300.0);
  EXPECT_DOUBLE_EQ(oversubscription_ratio(services, 250.0), 2.0);
}

TEST(OverflowProbability, ZeroWhenCapacityAmple) {
  std::vector<ServicePowerProfile> services;
  services.emplace_back("a", diurnal_power(100.0, 50.0));
  RiskConfig config;
  config.monte_carlo_draws = 20000;
  EXPECT_DOUBLE_EQ(overflow_probability_independent(services, 1000.0, config), 0.0);
  EXPECT_DOUBLE_EQ(overflow_probability_aligned(services, 1000.0, config), 0.0);
}

TEST(OverflowProbability, OneWhenCapacityHopeless) {
  std::vector<ServicePowerProfile> services;
  services.emplace_back("a", diurnal_power(100.0, 10.0));
  RiskConfig config;
  config.monte_carlo_draws = 20000;
  EXPECT_DOUBLE_EQ(overflow_probability_independent(services, 50.0, config), 1.0);
}

TEST(OverflowProbability, AlignedExceedsIndependentForCorrelatedServices) {
  // Ten services that all peak in the same afternoon: statistical
  // multiplexing looks great if you (wrongly) assume independence.
  std::vector<ServicePowerProfile> services;
  for (int i = 0; i < 10; ++i) {
    services.emplace_back("svc" + std::to_string(i), diurnal_power(100.0, 50.0));
  }
  // Capacity between the aligned peak (1500) and independent typical sums.
  const double capacity = 1300.0;
  RiskConfig config;
  config.monte_carlo_draws = 50000;
  const double independent =
      overflow_probability_independent(services, capacity, config);
  const double aligned = overflow_probability_aligned(services, capacity, config);
  EXPECT_GT(aligned, 4.0 * independent + 1e-6);
}

TEST(OverflowProbability, AntiCorrelatedServicesMultiplexWell) {
  // Two services in opposite phase never peak together (§5.2's packing
  // argument): their aligned sum is flat.
  std::vector<ServicePowerProfile> services;
  services.emplace_back("day", diurnal_power(100.0, 50.0, 0.0));
  services.emplace_back("night", diurnal_power(100.0, 50.0, std::numbers::pi));
  EXPECT_DOUBLE_EQ(overflow_probability_aligned(services, 210.0), 0.0);
  // Same marginals, aligned phases: frequent overflow.
  std::vector<ServicePowerProfile> aligned;
  aligned.emplace_back("day1", diurnal_power(100.0, 50.0, 0.0));
  aligned.emplace_back("day2", diurnal_power(100.0, 50.0, 0.0));
  EXPECT_GT(overflow_probability_aligned(aligned, 210.0), 0.2);
}

TEST(OverflowProbabilityNormal, MatchesMonteCarloOrder) {
  std::vector<ServicePowerProfile> services;
  for (int i = 0; i < 20; ++i) {
    services.emplace_back("s" + std::to_string(i), diurnal_power(100.0, 30.0));
  }
  // Independent normal approximation should agree with independent MC
  // within the same order of magnitude.
  const double capacity = 20 * 100.0 + 150.0;
  const double normal = overflow_probability_normal(services, capacity, 0.0);
  RiskConfig config;
  config.monte_carlo_draws = 200000;
  const double mc = overflow_probability_independent(services, capacity, config);
  EXPECT_GT(normal, mc / 10.0);
  EXPECT_LT(normal, mc * 10.0 + 1e-3);
  // Correlation raises the tail risk.
  EXPECT_GT(overflow_probability_normal(services, capacity, 0.8), normal);
}

TEST(MaxServicesAtRisk, FindsPackingLimit) {
  ServicePowerProfile prototype("svc", diurnal_power(100.0, 50.0), 160.0);
  // Capacity of 450 W: 3 aligned services peak at 450 -> risk 0; the 4th
  // busts it frequently.
  const auto packing = max_services_at_risk(prototype, 455.0, 1e-4, 32);
  EXPECT_EQ(packing.services, 3u);
  EXPECT_NEAR(packing.ratio, 3 * 160.0 / 455.0, 1e-9);
  EXPECT_LE(packing.risk, 1e-4);
}

TEST(MaxServicesAtRisk, ZeroWhenEvenOneTooBig) {
  ServicePowerProfile prototype("svc", diurnal_power(100.0, 50.0));
  const auto packing = max_services_at_risk(prototype, 60.0, 1e-4, 8);
  EXPECT_EQ(packing.services, 0u);
}

TEST(CappingImpact, QuantifiesBackstopCost) {
  std::vector<ServicePowerProfile> services;
  services.emplace_back("a", diurnal_power(100.0, 50.0));
  services.emplace_back("b", diurnal_power(100.0, 50.0));
  // Capacity at 250: aligned sum (200 + 100 sin) exceeds it ~1/3 of the day.
  const auto impact = capping_impact_aligned(services, 250.0);
  EXPECT_GT(impact.capped_fraction, 0.2);
  EXPECT_LT(impact.capped_fraction, 0.5);
  EXPECT_GT(impact.mean_shed_w, 0.0);
  EXPECT_NEAR(impact.worst_shed_w, 50.0, 2.0);
  // Ample capacity: no capping.
  const auto none = capping_impact_aligned(services, 1000.0);
  EXPECT_DOUBLE_EQ(none.capped_fraction, 0.0);
  EXPECT_DOUBLE_EQ(none.worst_shed_w, 0.0);
}

TEST(Aggregation, Validation) {
  std::vector<ServicePowerProfile> none;
  EXPECT_THROW(overflow_probability_independent(none, 100.0), std::invalid_argument);
  EXPECT_THROW(overflow_probability_aligned(none, 100.0), std::invalid_argument);
  EXPECT_THROW(overflow_probability_normal(none, 100.0), std::invalid_argument);
  std::vector<ServicePowerProfile> one;
  one.emplace_back("a", diurnal_power(100.0, 10.0));
  EXPECT_THROW(overflow_probability_independent(one, 0.0), std::invalid_argument);
  EXPECT_THROW(overflow_probability_normal(one, 100.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace epm::oversub
