#include "oversub/power_profile.h"

#include <gtest/gtest.h>

namespace epm::oversub {
namespace {

TimeSeries ramp_trace() {
  TimeSeries t(0.0, 60.0);
  for (int i = 0; i < 100; ++i) t.push_back(100.0 + static_cast<double>(i));
  return t;
}

TEST(ServicePowerProfile, MomentsFromTrace) {
  ServicePowerProfile profile("svc", ramp_trace());
  EXPECT_EQ(profile.name(), "svc");
  EXPECT_NEAR(profile.mean_w(), 149.5, 1e-9);
  EXPECT_DOUBLE_EQ(profile.rated_peak_w(), 199.0);
  EXPECT_EQ(profile.sample_count(), 100u);
}

TEST(ServicePowerProfile, ExplicitRatedPeak) {
  ServicePowerProfile profile("svc", ramp_trace(), 300.0);
  EXPECT_DOUBLE_EQ(profile.rated_peak_w(), 300.0);
}

TEST(ServicePowerProfile, Quantiles) {
  ServicePowerProfile profile("svc", ramp_trace());
  EXPECT_NEAR(profile.quantile(0.0), 100.0, 1e-9);
  EXPECT_NEAR(profile.quantile(1.0), 199.0, 1e-9);
  EXPECT_NEAR(profile.quantile(0.5), 149.5, 1.0);
}

TEST(ServicePowerProfile, AlignedSamplingWraps) {
  ServicePowerProfile profile("svc", ramp_trace());
  EXPECT_DOUBLE_EQ(profile.sample_at(0), 100.0);
  EXPECT_DOUBLE_EQ(profile.sample_at(100), 100.0);  // wraps
  EXPECT_DOUBLE_EQ(profile.sample_at(150), 150.0);
}

TEST(ServicePowerProfile, RandomSamplingFromEmpirical) {
  ServicePowerProfile profile("svc", ramp_trace());
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = profile.sample(rng);
    ASSERT_GE(v, 100.0);
    ASSERT_LE(v, 199.0);
  }
}

TEST(ServicePowerProfile, Validation) {
  EXPECT_THROW(ServicePowerProfile("x", TimeSeries(0.0, 1.0)), std::invalid_argument);
  TimeSeries negative(0.0, 1.0, {-5.0});
  EXPECT_THROW(ServicePowerProfile("x", negative), std::invalid_argument);
  ServicePowerProfile profile("svc", ramp_trace());
  EXPECT_THROW(profile.quantile(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace epm::oversub
