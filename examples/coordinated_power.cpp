// The macro-resource management layer (paper Fig. 4) running a full
// cyber-physical facility: two services across two thermal zones, one CRAC,
// a tier-2 power tree, and a cooling plant, coordinated every five minutes.
//
//   ./build/examples/coordinated_power
#include <cmath>
#include <iostream>
#include <numbers>

#include "core/table.h"
#include "core/units.h"
#include "macro/coordinator.h"

using namespace epm;

int main() {
  // The reference facility: "web" (tight SLA) and "batch" (relaxed SLA)
  // sharing 2 x 120 servers, two zones, one CRAC.
  macro::Facility facility(macro::make_reference_facility(120));
  macro::MacroResourceManager manager(facility);

  // Two diurnal days of demand (requests/second per service).
  Table table({"hour", "web rps", "web servers", "batch servers", "IT (kW)",
               "cooling (kW)", "PUE", "max zone (C)"});
  for (int epoch = 0; epoch < 2 * 24 * 60; ++epoch) {
    const double t = epoch * minutes(1.0);
    const double phase = 2.0 * std::numbers::pi * (to_hours(t) - 14.0) / 24.0;
    const double level = 0.55 + 0.45 * std::cos(phase);
    const auto step = manager.step({7000.0 * level, 4000.0 * level}, 16.0);
    if (epoch % 240 == 0) {
      table.add_row({fmt(to_hours(t), 0), fmt(step.services[0].arrival_rate_per_s, 0),
                     std::to_string(step.services[0].serving),
                     std::to_string(step.services[1].serving),
                     fmt(to_kilowatts(step.it_power_w), 1),
                     fmt(to_kilowatts(step.mechanical_power_w), 1), fmt(step.pue, 2),
                     fmt(step.max_zone_temp_c, 1)});
    }
  }
  std::cout << "\nTwo coordinated days of the reference facility:\n\n"
            << table.render();

  std::cout << "\nTotals: IT " << fmt(to_kwh(facility.total_it_energy_j()), 0)
            << " kWh + cooling " << fmt(to_kwh(facility.total_mechanical_energy_j()), 0)
            << " kWh; " << facility.total_sla_violation_epochs()
            << " SLA-violating service-epochs; " << facility.total_thermal_alarms()
            << " thermal alarms\n";

  std::cout << "\nWhat the coordinator decided (counts by kind):\n";
  Table kinds({"decision", "count"});
  for (const auto& [kind, count] : manager.log().counts_by_kind()) {
    kinds.add_row({kind, std::to_string(count)});
  }
  std::cout << kinds.render();

  std::cout << "\nA mid-day slice of the decision log:\n";
  Table slice({"t (h)", "kind", "service", "detail"});
  std::size_t shown = 0;
  for (const auto& d : manager.log().all()) {
    if (d.time_s < hours(12.0)) continue;
    slice.add_row({fmt(to_hours(d.time_s), 2), to_string(d.kind), d.service, d.detail});
    if (++shown == 6) break;
  }
  std::cout << slice.render();
  return 0;
}
