// Quickstart: size a small cluster, run one diurnal day through it with a
// simple elastic provisioning policy, and account energy.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "core/units.h"
#include "onoff/provisioners.h"
#include "workload/diurnal.h"

using namespace epm;

int main() {
  // 1. A workload: smooth diurnal demand peaking at 2pm, reaching 3000
  //    requests/second at the peak.
  const workload::DiurnalModel diurnal{workload::DiurnalConfig{}};
  const double peak_rps = 3000.0;

  // 2. A cluster of 50 servers (300 W peak, 60% idle floor, 5 P-states)
  //    with a 100 ms mean-response SLA.
  cluster::ServiceClusterConfig config;
  config.server_count = 50;
  config.initially_active = 50;
  config.sla.target_mean_response_s = 0.1;
  cluster::ServiceCluster cluster(config);

  // 3. An elastic On/Off policy that keeps utilization near 65%.
  onoff::UtilizationBandProvisioner provisioner;

  // 4. Run one day in 1-minute epochs.
  Table table({"hour", "offered rps", "active servers", "utilization",
               "mean response (ms)", "cluster power (kW)"});
  for (int epoch = 0; epoch < 24 * 60; ++epoch) {
    const double t = epoch * minutes(1.0);
    workload::OfferedLoad load;
    load.arrival_rate_per_s = peak_rps * diurnal.demand_at(t);
    load.service_demand_s = 0.01;  // 10 ms of CPU per request
    const auto result = cluster.run_epoch(minutes(1.0), load);
    cluster.set_target_committed(provisioner.decide(cluster, result), true);
    if (epoch % 180 == 0) {
      table.add_row({fmt(to_hours(t), 0), fmt(load.arrival_rate_per_s, 0),
                     std::to_string(result.serving), fmt_percent(result.utilization, 0),
                     fmt(result.mean_response_s * 1e3, 1),
                     fmt(to_kilowatts(result.server_power_w), 1)});
    }
  }
  std::cout << "\nOne diurnal day through a 50-server elastic cluster:\n\n"
            << table.render();

  std::cout << "\nDay totals: " << fmt(to_kwh(cluster.total_energy_j()), 1)
            << " kWh, " << cluster.sla_violation_epochs()
            << " SLA-violating epochs out of " << cluster.epochs_run() << "\n";

  // Compare against leaving every server on all day.
  cluster::ServiceCluster wasteful(config);
  for (int epoch = 0; epoch < 24 * 60; ++epoch) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = peak_rps * diurnal.demand_at(epoch * minutes(1.0));
    load.service_demand_s = 0.01;
    wasteful.run_epoch(minutes(1.0), load);
  }
  std::cout << "Static fleet for the same day: "
            << fmt(to_kwh(wasteful.total_energy_j()), 1) << " kWh ("
            << fmt_percent(1.0 - cluster.total_energy_j() / wasteful.total_energy_j(), 0)
            << " saved by elasticity)\n";
  return 0;
}
