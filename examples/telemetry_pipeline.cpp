// The §5.3 telemetry pipeline: ingest CPU counters from a small fleet into
// the multi-scale store, then run the paper's four query bands against the
// same data — long-term trend, within-day pattern, load-balancer residual
// correlation, and spike anomaly detection.
//
//   ./build/examples/telemetry_pipeline
#include <cmath>
#include <iostream>
#include <numbers>

#include "core/rng.h"
#include "core/table.h"
#include "core/units.h"
#include "telemetry/anomaly.h"
#include "telemetry/store.h"

using namespace epm;
using telemetry::make_key;

int main() {
  Rng rng(17);
  telemetry::TelemetryStore store;

  // Four servers behind one load balancer: shared diurnal + shared residual
  // (balancer spreads the same traffic), except server 3, whose weights
  // drifted — its residual is independent. Plus one injected spike.
  const std::size_t servers = 4;
  const double step = 15.0;
  const auto samples = static_cast<std::size_t>(days(7.0) / step);
  std::vector<TimeSeries> raw(servers, TimeSeries(0.0, step));
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) * step;
    const double hour = std::fmod(t, kSecondsPerDay) / 3600.0;
    const double diurnal =
        45.0 + 25.0 * std::sin(2.0 * std::numbers::pi * (hour - 8.0) / 24.0);
    const double shared = rng.normal(0.0, 4.0);
    for (std::size_t s = 0; s < servers; ++s) {
      double v = diurnal + (s == 3 ? rng.normal(0.0, 4.0) : shared) +
                 rng.normal(0.0, 0.8);
      if (s == 1 && i == samples / 2) v += 45.0;  // anomaly on server 1
      v = std::max(v, 0.0);
      store.append(make_key(static_cast<std::uint32_t>(s), 0), t, v);
      raw[s].push_back(v);
    }
  }
  store.flush();  // seal open blocks so the memory figure reflects the chain
  std::cout << "Ingested " << store.total_samples() << " samples ("
            << servers << " servers x 1 counter x 15 s x 7 days) into "
            << store.memory_bytes() / 1024 << " KiB of columnar state\n\n";

  // Band 1: long-term trend (daily means) for capacity planning.
  std::cout << "Band 1 - daily trend of server 0 CPU:\n";
  Table trend({"day", "mean CPU%"});
  const auto daily = store.daily_trend(make_key(0, 0), 0.0, days(7.0));
  for (std::size_t d = 0; d < daily.means.size(); ++d) {
    trend.add_row({std::to_string(d), fmt(daily.means[d], 1)});
  }
  std::cout << trend.render();

  // Band 2: within-day pattern (hourly means of day 3).
  std::cout << "\nBand 2 - hourly pattern, day 3 (peak should sit mid-afternoon):\n";
  const auto hourly = store.hourly_pattern(make_key(0, 0), days(3.0), days(4.0));
  std::cout << ascii_chart(hourly.means, 48, 6);

  // Band 3: load-balancer health via residual correlation.
  std::cout << "\nBand 3 - residual correlation vs server 0 after removing the "
               "hourly trend:\n";
  Table corr({"server", "raw correlation", "residual correlation", "verdict"});
  for (std::size_t s = 1; s < servers; ++s) {
    const double raw_corr = pearson_correlation(raw[0].values(), raw[s].values());
    const double resid =
        telemetry::residual_correlation(raw[0], raw[s], kSecondsPerDay, 3600.0);
    corr.add_row({std::to_string(s), fmt(raw_corr, 3), fmt(resid, 3),
                  resid > 0.5 ? "balanced with 0" : "NOT sharing 0's traffic"});
  }
  std::cout << corr.render();

  // Band 4: spike anomalies.
  std::cout << "\nBand 4 - spike detection (6-sigma against a 10-minute window):\n";
  telemetry::SpikeConfig spike_config;
  spike_config.sigmas = 6.0;
  for (std::size_t s = 0; s < servers; ++s) {
    const auto spikes = telemetry::detect_spikes(raw[s], spike_config);
    for (const auto& spike : spikes) {
      std::cout << "  server " << s << ": spike at t="
                << fmt(to_hours(raw[s].time_at(spike.index)), 1) << " h, value "
                << fmt(spike.value, 1) << " (z=" << fmt(spike.zscore, 1) << ")\n";
    }
    if (spikes.empty()) std::cout << "  server " << s << ": none\n";
  }
  return 0;
}
