// Generates a week of Messenger-style demand (paper Fig. 3), drives an
// elastic cluster with it, and exports both the workload and the cluster's
// response as CSV for external plotting.
//
//   ./build/examples/messenger_week [output.csv]
#include <iostream>
#include <string>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "core/units.h"
#include "onoff/provisioners.h"
#include "workload/messenger.h"
#include "workload/trace_io.h"

using namespace epm;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "messenger_week.csv";

  // One week of the paper's Fig. 3 workload at 1-minute samples.
  workload::MessengerConfig config;
  config.step_s = 60.0;
  config.seed = 3;
  const auto trace = workload::generate_messenger_trace(config, weeks(1.0));
  const auto shape =
      summarize_messenger_trace(trace, workload::DiurnalModel(config.diurnal));

  std::cout << "Generated one week of Messenger-style load:\n"
            << "  afternoon/midnight connections: "
            << fmt(shape.afternoon_to_midnight_ratio, 2) << "x (paper: ~2x)\n"
            << "  weekday/weekend demand:         "
            << fmt(shape.weekday_to_weekend_ratio, 2) << "x\n"
            << "  flash crowds:                   " << shape.flash_crowd_count << "\n\n";

  // Serve it: connections -> presence traffic -> a 150-server cluster with
  // predictive provisioning.
  const double peak = trace.connections.stats().max();
  cluster::ServiceClusterConfig cc;
  cc.server_count = 150;
  cc.initially_active = 150;
  cc.sla.target_mean_response_s = 0.1;
  cluster::ServiceCluster cluster(cc);
  onoff::PredictiveConfig pc;
  pc.hysteresis_servers = 4;
  onoff::PredictiveProvisioner provisioner(pc);

  TimeSeries active(0.0, 60.0);
  TimeSeries power_kw(0.0, 60.0);
  for (std::size_t i = 0; i < trace.connections.size(); ++i) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = 9000.0 * trace.connections[i] / peak;
    load.service_demand_s = 0.01;
    const auto r = cluster.run_epoch(60.0, load);
    cluster.set_target_committed(provisioner.decide(cluster, r), true);
    active.push_back(static_cast<double>(r.serving));
    power_kw.push_back(to_kilowatts(r.server_power_w));
  }

  std::cout << "Cluster over the week: " << fmt(to_kwh(cluster.total_energy_j()), 0)
            << " kWh, " << cluster.sla_violation_epochs() << "/"
            << cluster.epochs_run() << " SLA-violating epochs\n";

  workload::write_csv_file(
      output, {{"connections", trace.connections},
               {"login_rate_per_s", trace.login_rate_per_s},
               {"active_servers", active},
               {"cluster_power_kw", power_kw}});
  std::cout << "Wrote " << output << " (time_s, connections, login rate, "
            << "active servers, cluster power)\n";
  return 0;
}
