// Rides the Animoto surge (paper §3, ref [5]): demand grows 70x in three
// days, then recedes. Shows how an elastic cluster tracks it and what the
// surge costs under different policies.
//
//   ./build/examples/flash_crowd
#include <iostream>

#include "cluster/service_cluster.h"
#include "core/table.h"
#include "core/units.h"
#include "macro/joint_policy.h"
#include "workload/surge.h"

using namespace epm;

int main() {
  const workload::SurgeModel surge{workload::SurgeConfig{}};  // 50 -> 3500
  const auto demand = sample_surge(surge, days(8.0), minutes(5.0));
  std::cout << "Animoto-style surge (server-equivalents of demand):\n"
            << ascii_chart(demand.values(), 64, 8) << "\n";

  cluster::ServiceClusterConfig config;
  config.server_count = 4000;
  config.initially_active = 80;
  config.sla.target_mean_response_s = 0.1;
  cluster::ServiceCluster cluster(config);

  Table table({"day", "demand (svr-eq)", "committed", "serving", "booting",
               "P-state", "power (kW)"});
  for (std::size_t i = 0; i < demand.size(); ++i) {
    workload::OfferedLoad load;
    load.arrival_rate_per_s = demand[i] * 65.0;
    load.service_demand_s = 0.01;
    const auto r = cluster.run_epoch(minutes(5.0), load);
    // Coordinated joint sizing reacts every epoch.
    const auto d = macro::decide_joint(cluster.power_model(), config.server_count,
                                       cluster.committed_count(), r.arrival_rate_per_s,
                                       r.service_demand_s,
                                       config.sla.target_mean_response_s);
    cluster.set_uniform_pstate(d.pstate);
    cluster.set_target_committed(d.servers, false);
    if (i % 288 == 0) {  // daily rows
      table.add_row({fmt(to_days(demand.time_at(i)), 1), fmt(demand[i], 0),
                     std::to_string(cluster.committed_count()),
                     std::to_string(r.serving), std::to_string(r.booting),
                     "P" + std::to_string(d.pstate),
                     fmt(to_kilowatts(r.server_power_w), 0)});
    }
  }
  std::cout << table.render();

  std::cout << "\nSurge week: " << fmt(to_mwh(cluster.total_energy_j()), 1)
            << " MWh, " << cluster.sla_violation_epochs()
            << " SLA-violating epochs, "
            << fmt(cluster.total_dropped_requests(), 0) << " requests dropped\n"
            << "A statically peak-provisioned fleet would have burned ~"
            << fmt(to_mwh(3500.0 * 0.6 * 300.0 * days(8.0)), 1)
            << " MWh over the same period.\n";
  return 0;
}
