// Global fleet planning with the geo and tier coordinators: a three-tier
// application served from three federated data centers through a day of
// shifting weather and demand (paper §3.2's macro-management questions,
// answered by the library's planning APIs).
//
//   ./build/examples/global_fleet
#include <cmath>
#include <iostream>
#include <numbers>

#include "core/table.h"
#include "core/units.h"
#include "macro/geo.h"
#include "macro/tiers.h"
#include "thermal/outside_air.h"

using namespace epm;

int main() {
  // --- 1. The application: web -> app -> storage, 60 ms end-to-end.
  macro::TieredServiceSpec app;
  macro::TierSpec web;
  web.name = "web";
  web.fanout = 1.0;
  web.service_demand_s = 0.002;
  macro::TierSpec logic;
  logic.name = "app";
  logic.fanout = 2.0;
  logic.service_demand_s = 0.005;
  macro::TierSpec storage;
  storage.name = "db";
  storage.fanout = 4.0;
  storage.service_demand_s = 0.001;
  app.tiers = {web, logic, storage};
  app.end_to_end_sla_s = 0.06;

  // --- 2. The sites.
  auto make_site = [](const char* name, double price, double latency,
                      bool economizer) {
    macro::SiteConfig site;
    site.name = name;
    site.servers = 300;  // per-site capacity ~21k rps: the peak must spill
    site.plant.has_economizer = economizer;
    site.electricity_price_per_kwh = price;
    site.network_latency_s = latency;
    return site;
  };
  macro::GeoCoordinator geo({make_site("nordic", 0.07, 0.050, true),
                             make_site("home", 0.10, 0.010, true),
                             make_site("southern", 0.14, 0.040, false)});

  thermal::OutsideAirConfig nordic_climate;
  nordic_climate.annual_mean_c = 4.0;
  thermal::OutsideAirConfig home_climate;
  home_climate.annual_mean_c = 14.0;
  thermal::OutsideAirConfig southern_climate;
  southern_climate.annual_mean_c = 26.0;
  thermal::OutsideAirModel nordic(nordic_climate);
  thermal::OutsideAirModel home(home_climate);
  thermal::OutsideAirModel southern(southern_climate);
  auto w0 = nordic.sample_weather(days(1.0), hours(1.0));
  auto w1 = home.sample_weather(days(1.0), hours(1.0));
  auto w2 = southern.sample_weather(days(1.0), hours(1.0));

  // --- 3. One planning pass every 4 hours.
  Table table({"hour", "global rps", "routed (nordic/home/southern)",
               "web/app/db fleets", "cost ($/h)", "mean latency (ms)"});
  for (int h = 0; h < 24; h += 4) {
    const double phase = 2.0 * std::numbers::pi * (h - 14.0) / 24.0;
    const double rate = 30000.0 * (0.55 + 0.45 * std::cos(phase));

    // Where should the load live right now?
    const auto routing = geo.route(
        rate, {w0.temperature_c[h], w1.temperature_c[h], w2.temperature_c[h]},
        {w0.relative_humidity[h], w1.relative_humidity[h],
         w2.relative_humidity[h]});

    // How big must each tier be for the total served load?
    const auto sizing = macro::size_tiers(app, routing.served_rate_per_s);

    std::string routed;
    for (std::size_t s = 0; s < 3; ++s) {
      routed += fmt_percent(routing.allocations[s].arrival_rate_per_s /
                                std::max(routing.served_rate_per_s, 1.0),
                            0);
      if (s < 2) routed += "/";
    }
    std::string fleets = sizing.feasible
                             ? std::to_string(sizing.tiers[0].servers) + "/" +
                                   std::to_string(sizing.tiers[1].servers) + "/" +
                                   std::to_string(sizing.tiers[2].servers)
                             : "infeasible";
    table.add_row({std::to_string(h) + ":00", fmt(rate, 0), routed, fleets,
                   fmt(routing.total_cost_per_hour, 2),
                   fmt(routing.mean_latency_s * 1e3, 1)});
  }
  std::cout << "\nA day of global planning (demand peaks 14:00 home time):\n\n"
            << table.render();

  std::cout << "\nEach row is one coordinated decision: the geo layer picks "
               "the cheapest latency-feasible sites under\n"
               "current weather (economizers included), and the tier sizer "
               "turns the served rate into per-tier fleet\n"
               "sizes under the 60 ms end-to-end budget.\n";
  return 0;
}
