// Per-request discrete-event simulation of a server pool.
//
// The epoch-driven ServiceCluster evaluates response times from closed-form
// queueing approximations (Erlang-C / M/G/1-PS) because request-level
// events at data-center scale would be wasteful. This module is the
// ground-truth check: it simulates individual requests on the sim kernel —
// Poisson arrivals, a configurable service-time distribution, FCFS or
// processor-sharing discipline — so tests can validate the formulas the
// fast path depends on (and quantify where the approximations bend).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rng.h"
#include "core/stats.h"

namespace epm::cluster {

enum class ServiceDiscipline {
  kFcfs,              ///< M/M/n or M/G/n first-come-first-served
  kProcessorSharing,  ///< each server shares capacity among its requests
};

enum class ServiceDistribution {
  kExponential,
  kDeterministic,
  kLognormal,  ///< heavy-ish tail, cv configurable
};

struct RequestDesConfig {
  double arrival_rate_per_s = 50.0;
  double mean_service_s = 0.01;
  double service_cv = 1.0;  ///< used by the lognormal distribution
  std::size_t servers = 1;
  ServiceDiscipline discipline = ServiceDiscipline::kFcfs;
  ServiceDistribution distribution = ServiceDistribution::kExponential;
  /// Requests completed before statistics start (warm-up).
  std::size_t warmup_requests = 2000;
  /// Requests measured after warm-up.
  std::size_t measured_requests = 50000;
  std::uint64_t seed = 123;
};

struct RequestDesResult {
  OnlineStats response_s;   ///< sojourn times of measured requests
  OnlineStats queue_depth;  ///< sampled at arrival instants (incl. in service)
  double utilization = 0.0; ///< busy-server-time / (servers * elapsed)
  double simulated_time_s = 0.0;
  std::size_t completed = 0;
};

/// Runs the simulation to completion. Requires a stable configuration
/// (arrival rate < servers / mean_service); throws otherwise.
RequestDesResult simulate_requests(const RequestDesConfig& config);

}  // namespace epm::cluster
