// Per-request discrete-event simulation of a server pool.
//
// The epoch-driven ServiceCluster evaluates response times from closed-form
// queueing approximations (Erlang-C / M/G/1-PS) because request-level
// events at data-center scale would be wasteful. This module is the
// ground-truth check: it simulates individual requests on the sim kernel —
// Poisson arrivals, a configurable service-time distribution, FCFS or
// processor-sharing discipline — so tests can validate the formulas the
// fast path depends on (and quantify where the approximations bend).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rng.h"
#include "core/stats.h"

namespace epm::cluster {

enum class ServiceDiscipline {
  kFcfs,              ///< M/M/n or M/G/n first-come-first-served
  kProcessorSharing,  ///< each server shares capacity among its requests
};

enum class ServiceDistribution {
  kExponential,
  kDeterministic,
  kLognormal,  ///< heavy-ish tail, cv configurable
};

struct RequestDesConfig {
  double arrival_rate_per_s = 50.0;
  double mean_service_s = 0.01;
  double service_cv = 1.0;  ///< used by the lognormal distribution
  std::size_t servers = 1;
  ServiceDiscipline discipline = ServiceDiscipline::kFcfs;
  ServiceDistribution distribution = ServiceDistribution::kExponential;
  /// Requests completed before statistics start (warm-up).
  std::size_t warmup_requests = 2000;
  /// Requests measured after warm-up.
  std::size_t measured_requests = 50000;
  std::uint64_t seed = 123;
};

struct RequestDesResult {
  OnlineStats response_s;   ///< sojourn times of measured requests
  OnlineStats queue_depth;  ///< sampled at arrival instants (incl. in service)
  double utilization = 0.0; ///< busy-server-time / (servers * elapsed)
  double simulated_time_s = 0.0;
  std::size_t completed = 0;
};

/// Runs the simulation to completion. Requires a stable configuration
/// (arrival rate < servers / mean_service); throws otherwise.
RequestDesResult simulate_requests(const RequestDesConfig& config);

struct ReplicationConfig {
  /// Per-replication DES configuration. `base.seed` is ignored: each
  /// replication's seed is derived from `seed` below by index, so the
  /// streams are independent and the run is reproducible at any thread
  /// count.
  RequestDesConfig base;
  std::size_t replications = 8;
  std::uint64_t seed = 2027;
  /// Worker threads for the fan-out; 0 = default_thread_count().
  std::size_t threads = 0;
};

struct ReplicationResult {
  OnlineStats response_s;    ///< pooled over every measured request
  OnlineStats queue_depth;   ///< pooled arrival-instant samples
  OnlineStats utilization;   ///< one sample per replication
  /// Per-replication mean responses — the right basis for confidence
  /// intervals (individual sojourn times are autocorrelated; replication
  /// means are independent).
  OnlineStats replication_mean_response_s;
  std::size_t completed = 0;  ///< across all replications
};

/// Runs N independent DES replications concurrently and merges their
/// statistics in replication order (`OnlineStats::merge`), so the result is
/// bit-identical for any thread count, including 1.
ReplicationResult simulate_replications(const ReplicationConfig& config);

/// Finite-horizon overload mode: unlike simulate_requests there is no
/// stability precondition — arrival rate may exceed capacity — because the
/// system is an M/G/n/K loss queue (n servers plus a waiting room of
/// queue_capacity) observed over a fixed horizon. Instead of diverging, an
/// overloaded system sheds; the result measures shed fraction, throughput,
/// and goodput, which is what the closed-form M/M/n/K blocking probability
/// and the retry-storm defense are validated against.
struct OverloadDesConfig {
  double arrival_rate_per_s = 100.0;
  double mean_service_s = 0.05;
  double service_cv = 1.0;  ///< used by the lognormal distribution
  std::size_t servers = 4;
  /// Waiting-room slots beyond the servers; an arrival finding
  /// servers + queue_capacity jobs in the system is shed. 0 = pure loss.
  std::size_t queue_capacity = 16;
  ServiceDistribution distribution = ServiceDistribution::kExponential;
  double horizon_s = 2000.0;
  /// Completions slower than this do not count toward goodput
  /// (0 = every completion counts).
  double deadline_s = 0.0;
  std::uint64_t seed = 123;
};

struct OverloadDesResult {
  std::uint64_t offered = 0;    ///< arrivals within the horizon
  std::uint64_t admitted = 0;   ///< entered the system
  std::uint64_t shed = 0;       ///< blocked at a full system
  std::uint64_t completed = 0;  ///< finished within the horizon
  std::uint64_t goodput = 0;    ///< completed within deadline_s
  OnlineStats response_s;       ///< sojourn times of completed requests
  double throughput_per_s = 0.0;
  double goodput_per_s = 0.0;
  double utilization = 0.0;  ///< busy-server-time / (servers * horizon)

  double shed_fraction() const {
    return offered > 0 ? static_cast<double>(shed) / static_cast<double>(offered)
                       : 0.0;
  }
};

OverloadDesResult simulate_overload(const OverloadDesConfig& config);

}  // namespace epm::cluster
