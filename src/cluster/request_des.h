// Per-request discrete-event simulation of a server pool.
//
// The epoch-driven ServiceCluster evaluates response times from closed-form
// queueing approximations (Erlang-C / M/G/1-PS) because request-level
// events at data-center scale would be wasteful. This module is the
// ground-truth check: it simulates individual requests on the sim kernel —
// Poisson arrivals, a configurable service-time distribution, FCFS or
// processor-sharing discipline — so tests can validate the formulas the
// fast path depends on (and quantify where the approximations bend).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rng.h"
#include "core/stats.h"

namespace epm::cluster {

enum class ServiceDiscipline {
  kFcfs,              ///< M/M/n or M/G/n first-come-first-served
  kProcessorSharing,  ///< each server shares capacity among its requests
};

enum class ServiceDistribution {
  kExponential,
  kDeterministic,
  kLognormal,  ///< heavy-ish tail, cv configurable
};

struct RequestDesConfig {
  double arrival_rate_per_s = 50.0;
  double mean_service_s = 0.01;
  double service_cv = 1.0;  ///< used by the lognormal distribution
  std::size_t servers = 1;
  ServiceDiscipline discipline = ServiceDiscipline::kFcfs;
  ServiceDistribution distribution = ServiceDistribution::kExponential;
  /// Requests completed before statistics start (warm-up).
  std::size_t warmup_requests = 2000;
  /// Requests measured after warm-up.
  std::size_t measured_requests = 50000;
  std::uint64_t seed = 123;
};

struct RequestDesResult {
  OnlineStats response_s;   ///< sojourn times of measured requests
  OnlineStats queue_depth;  ///< sampled at arrival instants (incl. in service)
  double utilization = 0.0; ///< busy-server-time / (servers * elapsed)
  double simulated_time_s = 0.0;
  std::size_t completed = 0;
};

/// Runs the simulation to completion. Requires a stable configuration
/// (arrival rate < servers / mean_service); throws otherwise.
RequestDesResult simulate_requests(const RequestDesConfig& config);

struct ReplicationConfig {
  /// Per-replication DES configuration. `base.seed` is ignored: each
  /// replication's seed is derived from `seed` below by index, so the
  /// streams are independent and the run is reproducible at any thread
  /// count.
  RequestDesConfig base;
  std::size_t replications = 8;
  std::uint64_t seed = 2027;
  /// Worker threads for the fan-out; 0 = default_thread_count().
  std::size_t threads = 0;
};

struct ReplicationResult {
  OnlineStats response_s;    ///< pooled over every measured request
  OnlineStats queue_depth;   ///< pooled arrival-instant samples
  OnlineStats utilization;   ///< one sample per replication
  /// Per-replication mean responses — the right basis for confidence
  /// intervals (individual sojourn times are autocorrelated; replication
  /// means are independent).
  OnlineStats replication_mean_response_s;
  std::size_t completed = 0;  ///< across all replications
};

/// Runs N independent DES replications concurrently and merges their
/// statistics in replication order (`OnlineStats::merge`), so the result is
/// bit-identical for any thread count, including 1.
ReplicationResult simulate_replications(const ReplicationConfig& config);

}  // namespace epm::cluster
