// Remote work references for cross-datacenter request routing.
//
// When a datacenter forwards an attempt to a peer (geo re-route of a login
// storm, outage ride-through), the peer's admission stack must carry enough
// identity to route the completion back: which datacenter owns the client,
// and the client id inside that datacenter's population. Both fit one
// uint32 — the same id type cluster::BoundedQueue already stores — by
// packing the owner in the top bits:
//
//   [ owner : 4 bits | client id : 28 bits ]
//
// so remote entries flow through the existing admission/queue machinery
// unchanged, with zero extra bytes per queued request. 28 bits bounds a
// datacenter population at ~268M clients (two orders above the 10M-scale
// engine targets) and 4 bits bounds a fleet at 16 datacenters.
#pragma once

#include <cstdint>

#include "core/require.h"

namespace epm::cluster {

inline constexpr std::uint32_t kRemoteRefIdBits = 28;
inline constexpr std::uint32_t kRemoteRefMaxId =
    (std::uint32_t{1} << kRemoteRefIdBits) - 1;
inline constexpr std::uint32_t kRemoteRefMaxOwner =
    (std::uint32_t{1} << (32 - kRemoteRefIdBits)) - 1;

/// Packs (owner datacenter, client id) into one queueable uint32.
inline std::uint32_t pack_remote_ref(std::uint32_t owner_dc,
                                     std::uint32_t client_id) {
  require(owner_dc <= kRemoteRefMaxOwner,
          "pack_remote_ref: owner datacenter exceeds the 4-bit fleet bound");
  require(client_id <= kRemoteRefMaxId,
          "pack_remote_ref: client id exceeds the 28-bit population bound");
  return (owner_dc << kRemoteRefIdBits) | client_id;
}

inline std::uint32_t remote_ref_owner(std::uint32_t ref) {
  return ref >> kRemoteRefIdBits;
}

inline std::uint32_t remote_ref_client(std::uint32_t ref) {
  return ref & kRemoteRefMaxId;
}

}  // namespace epm::cluster
