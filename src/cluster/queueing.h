// Queueing approximations for the request path (paper §3: "users expect
// sub-second response time"; §5.1: DVFS raises utilization, which raises
// end-to-end delay — the coupling behind the DVFS/On-Off instability).
//
// At data-center scale we evaluate response times per control epoch from
// closed-form models rather than simulating millions of request events; the
// per-request discrete-event mode in tests validates these formulas.
#pragma once

#include <cstddef>

namespace epm::cluster {

/// Erlang-C probability that an arrival waits in an M/M/n queue.
/// `offered` = lambda/mu (erlangs), `servers` = n. Requires offered < n.
double erlang_c(double offered, std::size_t servers);

/// Mean response time (wait + service) of an M/M/n queue; lambda in 1/s,
/// per-server rate mu in 1/s. Requires lambda < n*mu.
double mmn_response_time_s(double lambda, double mu, std::size_t servers);

/// Mean response time of an M/G/1 processor-sharing server: S/(1-rho).
/// Insensitive to the service-time distribution beyond its mean.
double mg1ps_response_time_s(double mean_service_s, double utilization);

/// Approximate p-quantile of response time for an M/M/1-PS-like server,
/// using the exponential-tail approximation T_q = T_mean * ln(1/(1-q)).
double response_quantile_s(double mean_response_s, double q);

/// Blocking probability of an M/M/n/K loss-queue system (n servers plus a
/// waiting room of K; an arrival finding n+K jobs is shed). Valid in
/// overload — `offered` = lambda/mu may exceed n — which is exactly the
/// regime the finite-horizon overload DES is validated against. Computed
/// with the normalized birth-death recurrence, so it neither overflows nor
/// loses precision for large offered loads.
double mmnk_blocking_probability(double offered, std::size_t servers,
                                 std::size_t queue_capacity);

/// Accepted throughput of the same M/M/n/K system: lambda * (1 - P_block).
double mmnk_throughput_per_s(double lambda, double mu, std::size_t servers,
                             std::size_t queue_capacity);

}  // namespace epm::cluster
