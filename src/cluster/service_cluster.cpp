#include "cluster/service_cluster.h"

#include <algorithm>
#include <cmath>

#include "cluster/queueing.h"
#include "core/require.h"

namespace epm::cluster {

ServiceCluster::ServiceCluster(ServiceClusterConfig config)
    : config_(config), model_(config.server) {
  require(config_.server_count > 0, "ServiceCluster: need at least one server");
  require(config_.initially_active <= config_.server_count,
          "ServiceCluster: initially_active exceeds server_count");
  require(config_.max_utilization > 0.0 && config_.max_utilization < 1.0,
          "ServiceCluster: max_utilization outside (0,1)");
  require(config_.sla.target_mean_response_s > 0.0,
          "ServiceCluster: SLA target must be positive");
  servers_.reserve(config_.server_count);
  for (std::size_t i = 0; i < config_.server_count; ++i) {
    servers_.emplace_back(i, model_,
                          i < config_.initially_active ? ServerState::kActive
                                                       : ServerState::kOff);
  }
}

const Server& ServiceCluster::server(std::size_t i) const {
  require(i < servers_.size(), "ServiceCluster: server index out of range");
  return servers_[i];
}

Server& ServiceCluster::server(std::size_t i) {
  require(i < servers_.size(), "ServiceCluster: server index out of range");
  return servers_[i];
}

std::size_t ServiceCluster::count_in_state(ServerState state) const {
  std::size_t n = 0;
  for (const auto& s : servers_) {
    if (s.state() == state) ++n;
  }
  return n;
}

std::size_t ServiceCluster::committed_count() const {
  std::size_t n = 0;
  for (const auto& s : servers_) {
    const auto st = s.state();
    if (st == ServerState::kActive || st == ServerState::kBooting ||
        st == ServerState::kWaking) {
      ++n;
    }
  }
  return n;
}

std::size_t ServiceCluster::set_target_committed(std::size_t target, bool use_sleep) {
  const std::size_t usable = available_count();
  target = std::min(target, usable);
  std::size_t committed = committed_count();
  std::size_t commands = 0;
  if (committed < target) {
    // Prefer waking sleepers (fast) before cold boots.
    for (std::size_t i = 0; i < usable; ++i) {
      if (committed >= target) break;
      auto& s = servers_[i];
      if (s.state() == ServerState::kSleeping && s.wake()) {
        ++committed;
        ++commands;
      }
    }
    for (std::size_t i = 0; i < usable; ++i) {
      if (committed >= target) break;
      auto& s = servers_[i];
      if (s.state() == ServerState::kOff && s.power_on()) {
        ++committed;
        ++commands;
      }
    }
  } else if (committed > target) {
    // Retire Active servers first (transitional ones will finish and can be
    // retired next epoch; aborting boots mid-way is not modeled).
    for (std::size_t i = usable; i-- > 0 && committed > target;) {
      auto& s = servers_[i];
      if (s.state() != ServerState::kActive) continue;
      const bool done = use_sleep ? s.sleep() : s.power_off();
      if (done) {
        --committed;
        ++commands;
      }
    }
  }
  return commands;
}

void ServiceCluster::set_unavailable(std::size_t n) {
  n = std::min(n, servers_.size());
  // Force newly unavailable tail servers Off immediately (a crash or a
  // tripped feed does not wait for a graceful retire).
  for (std::size_t i = servers_.size() - n; i < servers_.size() - unavailable_;
       ++i) {
    if (servers_[i].state() != ServerState::kOff) {
      servers_[i].power_off();
    }
  }
  // Servers freed by a shrinking fault stay Off; provisioning reboots them
  // through set_target_committed when it wants them back.
  unavailable_ = n;
}

void ServiceCluster::set_uniform_pstate(std::size_t pstate) {
  for (auto& s : servers_) s.set_pstate(pstate);
}

void ServiceCluster::set_uniform_duty(double duty) {
  for (auto& s : servers_) s.set_duty(duty);
}

EpochResult ServiceCluster::run_epoch(double epoch_s, const workload::OfferedLoad& load) {
  require(epoch_s > 0.0, "ServiceCluster: epoch must be positive");
  require(load.arrival_rate_per_s >= 0.0 && load.service_demand_s > 0.0,
          "ServiceCluster: invalid offered load");

  // Advance transition timers first so a server whose boot completes inside
  // the epoch participates (coarse but conservative: it also pays boot power
  // for the tick it consumed).
  for (auto& s : servers_) s.tick(epoch_s);

  EpochResult r;
  r.time_s = now_s_;
  r.epoch_s = epoch_s;
  r.arrival_rate_per_s = load.arrival_rate_per_s;
  r.service_demand_s = load.service_demand_s;
  r.serving = serving_count();
  r.booting = count_in_state(ServerState::kBooting) + count_in_state(ServerState::kWaking);
  r.sleeping = count_in_state(ServerState::kSleeping);
  r.off = count_in_state(ServerState::kOff);

  // Aggregate serving capacity in requests/second.
  double capacity_rps = 0.0;
  for (const auto& s : servers_) {
    capacity_rps += s.capacity_fraction() / load.service_demand_s;
  }

  if (capacity_rps <= 0.0) {
    // Brown-out: nothing can serve.
    r.dropped_rate_per_s = load.arrival_rate_per_s;
    r.mean_response_s = config_.sla.overload_response_s;
    r.p99_response_s = config_.sla.overload_response_s;
    r.sla_violated = load.arrival_rate_per_s > 0.0;
  } else {
    double rho = load.arrival_rate_per_s / capacity_rps;
    if (rho > config_.max_utilization) {
      r.dropped_rate_per_s =
          load.arrival_rate_per_s - config_.max_utilization * capacity_rps;
      rho = config_.max_utilization;
      r.mean_response_s = config_.sla.overload_response_s;
      r.p99_response_s = config_.sla.overload_response_s;
      r.sla_violated = true;
    } else {
      // Balanced processor-sharing servers: each sees utilization rho and a
      // mean service time of demand / its capacity fraction. With uniform
      // settings the per-server service time is demand * serving / total
      // capacity-fraction; evaluate against the cluster-average server.
      const double total_capacity_fraction = capacity_rps * load.service_demand_s;
      const double mean_capacity_fraction =
          total_capacity_fraction / static_cast<double>(r.serving);
      const double service_s = load.service_demand_s / mean_capacity_fraction;
      r.mean_response_s = mg1ps_response_time_s(service_s, rho);
      r.p99_response_s = response_quantile_s(r.mean_response_s, 0.99);
      r.sla_violated = r.mean_response_s > config_.sla.target_mean_response_s;
    }
    r.utilization = rho;
    for (auto& s : servers_) {
      if (s.serving()) s.set_utilization(rho);
    }
  }

  for (const auto& s : servers_) r.server_power_w += s.power_w();
  r.energy_j = r.server_power_w * epoch_s;

  now_s_ += epoch_s;
  total_energy_j_ += r.energy_j;
  ++epochs_run_;
  if (r.sla_violated) ++sla_violations_;
  total_dropped_ += r.dropped_rate_per_s * epoch_s;
  return r;
}

}  // namespace epm::cluster
