#include "cluster/queueing.h"

#include <cmath>

#include "core/require.h"

namespace epm::cluster {

double erlang_c(double offered, std::size_t servers) {
  require(servers > 0, "erlang_c: need at least one server");
  require(offered >= 0.0, "erlang_c: negative offered load");
  require(offered < static_cast<double>(servers), "erlang_c: unstable (offered >= n)");
  if (offered == 0.0) return 0.0;
  // Iterative Erlang-B, then convert to Erlang-C; numerically stable.
  double b = 1.0;
  for (std::size_t k = 1; k <= servers; ++k) {
    b = offered * b / (static_cast<double>(k) + offered * b);
  }
  const double n = static_cast<double>(servers);
  return b / (1.0 - (offered / n) * (1.0 - b));
}

double mmn_response_time_s(double lambda, double mu, std::size_t servers) {
  require(mu > 0.0, "mmn_response_time_s: service rate must be positive");
  require(lambda >= 0.0, "mmn_response_time_s: negative arrival rate");
  const double n = static_cast<double>(servers);
  require(lambda < n * mu, "mmn_response_time_s: unstable system");
  if (lambda == 0.0) return 1.0 / mu;
  const double offered = lambda / mu;
  const double pw = erlang_c(offered, servers);
  const double wait = pw / (n * mu - lambda);
  return wait + 1.0 / mu;
}

double mg1ps_response_time_s(double mean_service_s, double utilization) {
  require(mean_service_s > 0.0, "mg1ps_response_time_s: service time must be positive");
  require(utilization >= 0.0 && utilization < 1.0,
          "mg1ps_response_time_s: utilization outside [0,1)");
  return mean_service_s / (1.0 - utilization);
}

double mmnk_blocking_probability(double offered, std::size_t servers,
                                 std::size_t queue_capacity) {
  require(servers > 0, "mmnk_blocking_probability: need at least one server");
  require(offered >= 0.0, "mmnk_blocking_probability: negative offered load");
  if (offered == 0.0) return 0.0;
  // Birth-death chain over 0..n+K jobs: p_{k} = p_{k-1} * a / min(k, n).
  // Track the last unnormalized term and the running sum, rescaling when the
  // term grows large so deep overload (a >> n) cannot overflow a double.
  const std::size_t states = servers + queue_capacity;
  double term = 1.0;
  double sum = 1.0;
  for (std::size_t k = 1; k <= states; ++k) {
    term *= offered / static_cast<double>(std::min(k, servers));
    sum += term;
    if (term > 1e280) {
      sum /= term;
      term = 1.0;
    }
  }
  return term / sum;
}

double mmnk_throughput_per_s(double lambda, double mu, std::size_t servers,
                             std::size_t queue_capacity) {
  require(mu > 0.0, "mmnk_throughput_per_s: service rate must be positive");
  require(lambda >= 0.0, "mmnk_throughput_per_s: negative arrival rate");
  return lambda *
         (1.0 - mmnk_blocking_probability(lambda / mu, servers, queue_capacity));
}

double response_quantile_s(double mean_response_s, double q) {
  require(mean_response_s >= 0.0, "response_quantile_s: negative mean");
  require(q > 0.0 && q < 1.0, "response_quantile_s: q outside (0,1)");
  return mean_response_s * std::log(1.0 / (1.0 - q));
}

}  // namespace epm::cluster
