// Overload-defense primitives for the request path (paper §3: flash crowds
// and login storms re-offer dropped load until an unprotected service is
// permanently saturated).
//
// Three small deterministic building blocks compose into an admission
// stack:
//
//   BoundedQueue    — a FIFO accept queue with a hard capacity; overflow is
//                     shed explicitly (and counted) instead of growing the
//                     backlog past the point where every queued request is
//                     already stale by the time it is served.
//   TokenBucket     — rate-based admission control ahead of the queue,
//                     smoothing reconnect surges to what the fleet can
//                     actually serve within the client timeout.
//   CircuitBreaker  — closed -> open -> half-open failure breaker with a
//                     deterministic per-epoch probe schedule, so clients
//                     fail fast against a dark service instead of filling
//                     the queue with doomed requests.
//
// Everything is plain arithmetic on caller-supplied time — no clocks, no
// randomness — so a scenario replays bit-for-bit at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace epm::cluster {

/// Bounded FIFO accept queue. Entries carry the admit timestamp so the
/// server can tell how long a request waited (and whether the client has
/// long since given up on it).
///
/// Storage is a power-of-two ring buffer grown geometrically on demand (up
/// to capacity), so a deliberately huge undefended-arm capacity — tens of
/// millions at 10M-client scale — costs memory only for the backlog that
/// actually materializes, and the steady state does no allocation at all
/// (the deque this replaced paid a node-block allocation every few hundred
/// pushes).
class BoundedQueue {
 public:
  struct Entry {
    std::uint32_t id = 0;
    double admitted_s = 0.0;
  };

  explicit BoundedQueue(std::size_t capacity);

  /// Accepts the request unless the queue is full; a full queue sheds it
  /// (returns false) and counts the loss.
  bool try_push(std::uint32_t id, double now_s);
  /// Oldest queued request; queue must be non-empty.
  const Entry& front() const;
  void pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t accepted() const { return accepted_; }
  /// Requests refused because the queue was at capacity.
  std::uint64_t shed() const { return shed_; }

 private:
  void grow();

  std::size_t capacity_;
  std::vector<Entry> ring_;  ///< power-of-two slots; index masked by mask_
  std::size_t mask_ = 0;
  std::size_t head_ = 0;  ///< slot of the oldest entry
  std::size_t size_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t shed_ = 0;
};

struct TokenBucketConfig {
  double rate_per_s = 1000.0;  ///< sustained admission rate
  double burst = 1000.0;       ///< bucket depth (admissions above rate)
};

/// Deterministic token-bucket admission: refill() advances the bucket by
/// elapsed time, try_acquire() spends one token per admitted request.
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketConfig config);

  void refill(double dt_s);
  /// True (and one token spent) when a token is available.
  bool try_acquire();

  double tokens() const { return tokens_; }
  std::uint64_t admitted() const { return admitted_; }
  /// Requests refused for lack of a token.
  std::uint64_t denied() const { return denied_; }
  const TokenBucketConfig& config() const { return config_; }

 private:
  TokenBucketConfig config_;
  double tokens_;
  std::uint64_t admitted_ = 0;
  std::uint64_t denied_ = 0;
};

enum class BreakerState {
  kClosed,    ///< normal operation; outcomes are watched
  kOpen,      ///< fail fast; nothing reaches the service
  kHalfOpen,  ///< a bounded probe budget per epoch tests recovery
};

std::string to_string(BreakerState state);

struct CircuitBreakerConfig {
  /// Trip when failures/observations >= this over an epoch.
  double failure_ratio = 0.5;
  /// Epochs with fewer observations than this never trip the breaker.
  std::uint64_t min_volume = 10;
  /// Time spent open before probing (half-open) begins.
  double open_duration_s = 5.0;
  /// Admissions allowed per epoch while half-open.
  std::uint64_t half_open_probes = 5;
  /// Consecutive healthy half-open epochs (probes observed, none failed)
  /// required to close.
  std::size_t close_after_healthy_epochs = 2;
};

/// Per-cluster circuit breaker driven at control-epoch granularity:
///
///   begin_epoch(t)              -> open matures into half-open, probe
///                                  budget resets
///   allow()                     -> per-request verdict (deterministic)
///   on_epoch_end(obs, fail, t)  -> closed trips on the failure ratio;
///                                  half-open re-trips on any failure or
///                                  closes after enough healthy epochs
///
/// While open, allow() is always false — the state machine cannot leak a
/// request into a dark service (asserted by the property suite).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config);

  void begin_epoch(double now_s);
  bool allow();
  void on_epoch_end(std::uint64_t observations, std::uint64_t failures,
                    double now_s);

  BreakerState state() const { return state_; }
  std::uint64_t trips() const { return trips_; }
  std::uint64_t probes_issued() const { return probes_issued_; }
  /// Requests refused by allow() (open, or half-open past the budget).
  std::uint64_t rejected() const { return rejected_; }
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void trip(double now_s);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_s_ = 0.0;
  std::uint64_t epoch_probes_ = 0;   ///< probes granted this epoch
  std::size_t healthy_epochs_ = 0;   ///< consecutive healthy half-open epochs
  std::uint64_t trips_ = 0;
  std::uint64_t probes_issued_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace epm::cluster
