#include "cluster/admission.h"

#include <algorithm>

#include "core/require.h"

namespace epm::cluster {

BoundedQueue::BoundedQueue(std::size_t capacity) : capacity_(capacity) {
  require(capacity_ >= 1, "BoundedQueue: capacity must be at least 1");
}

void BoundedQueue::grow() {
  // Double the ring (start at 64 slots) and unroll the wrapped contents
  // into the front of the new storage.
  const std::size_t new_slots = ring_.empty() ? 64 : ring_.size() * 2;
  std::vector<Entry> next(new_slots);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = ring_[(head_ + i) & mask_];
  }
  ring_ = std::move(next);
  mask_ = new_slots - 1;
  head_ = 0;
}

bool BoundedQueue::try_push(std::uint32_t id, double now_s) {
  if (size_ >= capacity_) {
    ++shed_;
    return false;
  }
  if (size_ == ring_.size()) grow();
  ring_[(head_ + size_) & mask_] = {id, now_s};
  ++size_;
  ++accepted_;
  return true;
}

const BoundedQueue::Entry& BoundedQueue::front() const {
  ensure(size_ > 0, "BoundedQueue: front() on empty queue");
  return ring_[head_];
}

void BoundedQueue::pop() {
  ensure(size_ > 0, "BoundedQueue: pop() on empty queue");
  head_ = (head_ + 1) & mask_;
  --size_;
}

TokenBucket::TokenBucket(TokenBucketConfig config)
    : config_(config), tokens_(config.burst) {
  require(config_.rate_per_s > 0.0, "TokenBucket: rate must be positive");
  require(config_.burst >= 1.0, "TokenBucket: burst below one token");
}

void TokenBucket::refill(double dt_s) {
  require(dt_s >= 0.0, "TokenBucket: negative refill interval");
  tokens_ = std::min(config_.burst, tokens_ + config_.rate_per_s * dt_s);
}

bool TokenBucket::try_acquire() {
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++admitted_;
    return true;
  }
  ++denied_;
  return false;
}

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  require(config_.failure_ratio > 0.0 && config_.failure_ratio <= 1.0,
          "CircuitBreaker: failure ratio outside (0, 1]");
  require(config_.open_duration_s >= 0.0,
          "CircuitBreaker: open duration must be non-negative");
  require(config_.half_open_probes >= 1,
          "CircuitBreaker: need at least one probe");
  require(config_.close_after_healthy_epochs >= 1,
          "CircuitBreaker: need at least one healthy epoch to close");
}

void CircuitBreaker::trip(double now_s) {
  state_ = BreakerState::kOpen;
  open_until_s_ = now_s + config_.open_duration_s;
  healthy_epochs_ = 0;
  ++trips_;
}

void CircuitBreaker::begin_epoch(double now_s) {
  epoch_probes_ = 0;
  if (state_ == BreakerState::kOpen && now_s >= open_until_s_) {
    state_ = BreakerState::kHalfOpen;
    healthy_epochs_ = 0;
  }
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++rejected_;
      return false;
    case BreakerState::kHalfOpen:
      if (epoch_probes_ < config_.half_open_probes) {
        ++epoch_probes_;
        ++probes_issued_;
        return true;
      }
      ++rejected_;
      return false;
  }
  return false;
}

void CircuitBreaker::on_epoch_end(std::uint64_t observations,
                                  std::uint64_t failures, double now_s) {
  switch (state_) {
    case BreakerState::kClosed:
      if (observations >= config_.min_volume && observations > 0 &&
          static_cast<double>(failures) >=
              config_.failure_ratio * static_cast<double>(observations)) {
        trip(now_s);
      }
      break;
    case BreakerState::kOpen:
      break;  // only time (begin_epoch) moves an open breaker
    case BreakerState::kHalfOpen:
      if (failures > 0) {
        trip(now_s);
      } else if (observations > 0) {
        if (++healthy_epochs_ >= config_.close_after_healthy_epochs) {
          state_ = BreakerState::kClosed;
        }
      }
      // No observations at all: stay half-open, keep probing.
      break;
  }
}

}  // namespace epm::cluster
