// The epoch-driven service cluster: the substrate the DVFS governors, On/Off
// provisioners, and the macro-resource manager all act on.
//
// Each control epoch the cluster receives an offered load (arrival rate +
// per-request CPU demand), balances it across serving servers in proportion
// to their throttled capacity, evaluates response time with the queueing
// approximations, and accounts power/energy including boot transients.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/server.h"
#include "power/server_power.h"
#include "workload/request_model.h"

namespace epm::cluster {

struct SlaConfig {
  /// Mean-response-time objective ("users expect sub-second response").
  double target_mean_response_s = 0.5;
  /// Response time charged to requests during overload / brown-out epochs.
  double overload_response_s = 5.0;
};

struct ServiceClusterConfig {
  std::size_t server_count = 100;
  std::size_t initially_active = 100;
  power::ServerPowerConfig server;
  SlaConfig sla;
  /// Per-server utilization is clipped here; arrivals beyond it are shed
  /// ("performances can degrade gracefully when reaching resource limits").
  double max_utilization = 0.98;
};

/// Everything a policy can observe about one epoch.
struct EpochResult {
  double time_s = 0.0;
  double epoch_s = 0.0;
  double arrival_rate_per_s = 0.0;
  double service_demand_s = 0.0;
  std::size_t serving = 0;
  std::size_t booting = 0;
  std::size_t sleeping = 0;
  std::size_t off = 0;
  double utilization = 0.0;        ///< per-server rho after balancing
  double mean_response_s = 0.0;
  double p99_response_s = 0.0;
  double dropped_rate_per_s = 0.0;
  bool sla_violated = false;
  double server_power_w = 0.0;     ///< cluster draw during this epoch
  double energy_j = 0.0;           ///< server_power_w * epoch_s
};

class ServiceCluster {
 public:
  explicit ServiceCluster(ServiceClusterConfig config);

  std::size_t server_count() const { return servers_.size(); }
  const Server& server(std::size_t i) const;
  Server& server(std::size_t i);
  const power::ServerPowerModel& power_model() const { return model_; }
  const ServiceClusterConfig& config() const { return config_; }

  std::size_t count_in_state(ServerState state) const;
  /// Servers that can serve now (Active).
  std::size_t serving_count() const { return count_in_state(ServerState::kActive); }
  /// Servers that will be serving once transitions finish (Active + Booting
  /// + Waking) — what provisioning policies should compare targets against.
  std::size_t committed_count() const;

  /// Brings the committed server count to `target`: powers on (or wakes)
  /// servers when short, sleeps (or powers off) excess Active servers when
  /// long. Returns the number of state commands issued. The target is
  /// clamped to available_count(); unavailable (crashed) servers are never
  /// commanded.
  std::size_t set_target_committed(std::size_t target, bool use_sleep);

  /// Fault hook: marks the tail `n` servers unavailable (crashed / behind a
  /// tripped PSU). Newly unavailable servers are forced Off immediately;
  /// when the fault clears (smaller `n`) the recovered servers stay Off
  /// until provisioning reboots them through set_target_committed.
  void set_unavailable(std::size_t n);
  std::size_t unavailable_count() const { return unavailable_; }
  /// Servers provisioning may command (server_count - unavailable_count).
  std::size_t available_count() const { return servers_.size() - unavailable_; }

  /// Applies a P-state / duty to every server (uniform DVFS policy).
  void set_uniform_pstate(std::size_t pstate);
  void set_uniform_duty(double duty);

  /// Advances one epoch under `load`. Transition timers tick first, so
  /// servers finishing a boot within the epoch serve for (part of) it.
  EpochResult run_epoch(double epoch_s, const workload::OfferedLoad& load);

  /// Totals since construction.
  double total_energy_j() const { return total_energy_j_; }
  std::size_t epochs_run() const { return epochs_run_; }
  std::size_t sla_violation_epochs() const { return sla_violations_; }
  double total_dropped_requests() const { return total_dropped_; }

 private:
  ServiceClusterConfig config_;
  power::ServerPowerModel model_;
  std::vector<Server> servers_;
  std::size_t unavailable_ = 0;  ///< tail servers held Off by a fault
  double now_s_ = 0.0;
  double total_energy_j_ = 0.0;
  std::size_t epochs_run_ = 0;
  std::size_t sla_violations_ = 0;
  double total_dropped_ = 0.0;
};

}  // namespace epm::cluster
