#include "cluster/request_des.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "core/require.h"
#include "sim/simulator.h"

namespace epm::cluster {
namespace {

class ServiceSampler {
 public:
  ServiceSampler(const RequestDesConfig& config, Rng& rng)
      : config_(config), rng_(rng) {
    if (config.distribution == ServiceDistribution::kLognormal) {
      const double cv = std::max(config.service_cv, 1e-6);
      sigma_ = std::sqrt(std::log(1.0 + cv * cv));
      mu_ = std::log(config.mean_service_s) - 0.5 * sigma_ * sigma_;
    }
  }

  double next() {
    switch (config_.distribution) {
      case ServiceDistribution::kExponential:
        return rng_.exponential(1.0 / config_.mean_service_s);
      case ServiceDistribution::kDeterministic:
        return config_.mean_service_s;
      case ServiceDistribution::kLognormal:
        return rng_.lognormal(mu_, sigma_);
    }
    return config_.mean_service_s;
  }

 private:
  const RequestDesConfig& config_;
  Rng& rng_;
  double mu_ = 0.0;
  double sigma_ = 0.0;
};

/// Per-server next-free times as a dense min-heap over a flat vector. Only
/// the earliest-free server is ever observed, so this is value-identical to
/// the ordered multiset it replaced — without the red-black node allocation
/// per completion.
class FreeAtHeap {
 public:
  /// All servers free at t = 0 (an all-equal vector is a valid heap).
  explicit FreeAtHeap(std::size_t servers) : free_at_(servers, 0.0) {}

  double pop_min() {
    std::pop_heap(free_at_.begin(), free_at_.end(), std::greater<>());
    const double earliest = free_at_.back();
    free_at_.pop_back();
    return earliest;
  }

  void push(double when_s) {
    free_at_.push_back(when_s);
    std::push_heap(free_at_.begin(), free_at_.end(), std::greater<>());
  }

 private:
  std::vector<double> free_at_;
};

void validate(const RequestDesConfig& config) {
  require(config.arrival_rate_per_s > 0.0, "simulate_requests: rate must be positive");
  require(config.mean_service_s > 0.0, "simulate_requests: service must be positive");
  require(config.servers >= 1, "simulate_requests: need at least one server");
  require(config.measured_requests >= 1, "simulate_requests: nothing to measure");
  const double capacity = static_cast<double>(config.servers) / config.mean_service_s;
  require(config.arrival_rate_per_s < capacity,
          "simulate_requests: unstable configuration (rate >= capacity)");
}

/// Exact sweep for FCFS with a shared queue: each arrival (in time order)
/// starts on the earliest-free server.
RequestDesResult run_fcfs(const RequestDesConfig& config) {
  Rng rng(config.seed);
  Rng arrivals_rng = rng.fork();
  Rng service_rng = rng.fork();
  ServiceSampler sampler(config, service_rng);

  RequestDesResult result;
  FreeAtHeap free_at(config.servers);
  // Jobs in the system, tracked by kernel departure events instead of a
  // departure-time multiset: each admitted job schedules a calendar event at
  // its finish time whose inline closure decrements the counter.
  sim::Simulator timeline;
  std::size_t in_system = 0;

  double t = 0.0;
  double busy_time = 0.0;
  const std::size_t total = config.warmup_requests + config.measured_requests;
  for (std::size_t i = 0; i < total; ++i) {
    t += arrivals_rng.exponential(config.arrival_rate_per_s);
    // Depart everything that finished before this arrival.
    timeline.run_until(t);
    const bool measured = i >= config.warmup_requests;
    if (measured) {
      result.queue_depth.add(static_cast<double>(in_system));
    }
    const double earliest_free = free_at.pop_min();
    const double start = std::max(t, earliest_free);
    const double service = sampler.next();
    const double finish = start + service;
    free_at.push(finish);
    ++in_system;
    timeline.schedule_at(finish, [&in_system] { --in_system; });
    busy_time += service;
    if (measured) {
      result.response_s.add(finish - t);
      ++result.completed;
    }
  }
  result.simulated_time_s = t;
  result.utilization =
      busy_time / (static_cast<double>(config.servers) * std::max(t, 1e-12));
  return result;
}

/// Processor sharing: arrivals join the server with the fewest jobs; each
/// server divides its unit capacity among its resident jobs.
RequestDesResult run_ps(const RequestDesConfig& config) {
  Rng rng(config.seed);
  Rng arrivals_rng = rng.fork();
  Rng service_rng = rng.fork();
  ServiceSampler sampler(config, service_rng);

  struct Job {
    double remaining_s;
    double arrived_s;
    bool measured;
  };
  std::vector<std::vector<Job>> servers(config.servers);
  std::vector<double> last_update(config.servers, 0.0);

  auto advance_server = [&](std::size_t s, double now) {
    auto& jobs = servers[s];
    if (!jobs.empty()) {
      const double share = (now - last_update[s]) / static_cast<double>(jobs.size());
      for (auto& job : jobs) job.remaining_s -= share;
    }
    last_update[s] = now;
  };
  auto next_departure = [&](std::size_t s) {
    const auto& jobs = servers[s];
    if (jobs.empty()) return std::numeric_limits<double>::infinity();
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& job : jobs) min_remaining = std::min(min_remaining, job.remaining_s);
    return last_update[s] + min_remaining * static_cast<double>(jobs.size());
  };

  RequestDesResult result;
  double busy_time = 0.0;
  const std::size_t total = config.warmup_requests + config.measured_requests;
  std::size_t generated = 0;
  double next_arrival = arrivals_rng.exponential(config.arrival_rate_per_s);
  double now = 0.0;

  while (result.completed < config.measured_requests) {
    // Next event: arrival or earliest departure across servers.
    double next_dep = std::numeric_limits<double>::infinity();
    std::size_t dep_server = 0;
    for (std::size_t s = 0; s < config.servers; ++s) {
      const double d = next_departure(s);
      if (d < next_dep) {
        next_dep = d;
        dep_server = s;
      }
    }
    const bool arrival_next = generated < total && next_arrival <= next_dep;
    ensure(arrival_next || next_dep < std::numeric_limits<double>::infinity(),
           "request_des: no next event (lost jobs?)");

    if (arrival_next) {
      now = next_arrival;
      // Busy-time accounting: a server is busy whenever it has jobs.
      for (std::size_t s = 0; s < config.servers; ++s) {
        if (!servers[s].empty()) busy_time += now - last_update[s];
        advance_server(s, now);
      }
      // Join the shortest queue.
      std::size_t target = 0;
      for (std::size_t s = 1; s < config.servers; ++s) {
        if (servers[s].size() < servers[target].size()) target = s;
      }
      const bool measured = generated >= config.warmup_requests;
      if (measured) {
        std::size_t in_system = 0;
        for (const auto& jobs : servers) in_system += jobs.size();
        result.queue_depth.add(static_cast<double>(in_system));
      }
      servers[target].push_back(Job{sampler.next(), now, measured});
      ++generated;
      next_arrival = now + arrivals_rng.exponential(config.arrival_rate_per_s);
    } else {
      now = next_dep;
      for (std::size_t s = 0; s < config.servers; ++s) {
        if (!servers[s].empty()) busy_time += now - last_update[s];
        advance_server(s, now);
      }
      auto& jobs = servers[dep_server];
      // Remove every job that has (numerically) finished.
      for (std::size_t j = jobs.size(); j-- > 0;) {
        if (jobs[j].remaining_s <= 1e-12) {
          if (jobs[j].measured) {
            result.response_s.add(now - jobs[j].arrived_s);
            ++result.completed;
          }
          jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(j));
        }
      }
    }
  }
  result.simulated_time_s = now;
  result.utilization =
      busy_time / (static_cast<double>(config.servers) * std::max(now, 1e-12));
  return result;
}

}  // namespace

RequestDesResult simulate_requests(const RequestDesConfig& config) {
  validate(config);
  return config.discipline == ServiceDiscipline::kFcfs ? run_fcfs(config)
                                                       : run_ps(config);
}

OverloadDesResult simulate_overload(const OverloadDesConfig& config) {
  require(config.arrival_rate_per_s > 0.0,
          "simulate_overload: rate must be positive");
  require(config.mean_service_s > 0.0,
          "simulate_overload: service must be positive");
  require(config.servers >= 1, "simulate_overload: need at least one server");
  require(config.horizon_s > 0.0, "simulate_overload: horizon must be positive");
  require(config.deadline_s >= 0.0, "simulate_overload: negative deadline");

  // Reuse the service-time sampler through its RequestDesConfig face.
  RequestDesConfig sampler_config;
  sampler_config.mean_service_s = config.mean_service_s;
  sampler_config.service_cv = config.service_cv;
  sampler_config.distribution = config.distribution;

  Rng rng(config.seed);
  Rng arrivals_rng = rng.fork();
  Rng service_rng = rng.fork();
  ServiceSampler sampler(sampler_config, service_rng);

  OverloadDesResult result;
  FreeAtHeap free_at(config.servers);
  // Occupancy via kernel departure events (see run_fcfs).
  sim::Simulator timeline;
  std::size_t in_system = 0;
  const std::size_t room = config.servers + config.queue_capacity;

  double busy_time = 0.0;
  double t = arrivals_rng.exponential(config.arrival_rate_per_s);
  while (t <= config.horizon_s) {
    timeline.run_until(t);
    ++result.offered;
    if (in_system >= room) {
      ++result.shed;
    } else {
      ++result.admitted;
      const double earliest_free = free_at.pop_min();
      const double start = std::max(t, earliest_free);
      const double service = sampler.next();
      const double finish = start + service;
      free_at.push(finish);
      ++in_system;
      timeline.schedule_at(finish, [&in_system] { --in_system; });
      busy_time += std::max(0.0, std::min(finish, config.horizon_s) -
                                     std::min(start, config.horizon_s));
      if (finish <= config.horizon_s) {
        ++result.completed;
        const double sojourn = finish - t;
        result.response_s.add(sojourn);
        if (config.deadline_s <= 0.0 || sojourn <= config.deadline_s) {
          ++result.goodput;
        }
      }
    }
    t += arrivals_rng.exponential(config.arrival_rate_per_s);
  }
  result.throughput_per_s =
      static_cast<double>(result.completed) / config.horizon_s;
  result.goodput_per_s = static_cast<double>(result.goodput) / config.horizon_s;
  result.utilization =
      busy_time / (static_cast<double>(config.servers) * config.horizon_s);
  return result;
}

ReplicationResult simulate_replications(const ReplicationConfig& config) {
  require(config.replications >= 1,
          "simulate_replications: need at least one replication");
  validate(config.base);

  ThreadPool pool(resolve_thread_count(static_cast<std::int64_t>(config.threads)));
  const auto runs = pool.parallel_replicate(
      config.replications, config.seed, [&](Rng& rng, std::size_t) {
        RequestDesConfig rep = config.base;
        rep.seed = rng.next_u64();
        return simulate_requests(rep);
      });

  // Ordered reduction keeps the merged floating-point state identical at
  // every thread count.
  ReplicationResult result;
  for (const auto& run : runs) {
    result.response_s.merge(run.response_s);
    result.queue_depth.merge(run.queue_depth);
    result.utilization.add(run.utilization);
    result.replication_mean_response_s.add(run.response_s.mean());
    result.completed += run.completed;
  }
  return result;
}

}  // namespace epm::cluster
