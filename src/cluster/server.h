// A managed server with the power-state machine the paper's On/Off
// scheduling acts on (§4.3): Off <-> Booting -> Active <-> Sleeping/Waking.
//
// Transitions have latencies and energy costs ("it takes time to wake up a
// slept component (or server), and sometime, this wakeup process may consume
// more energy and offset the benefit of sleeping"). Time advances through
// tick(dt); the cluster drives DVFS settings and utilization.
#pragma once

#include <cstddef>
#include <string>

#include "power/server_power.h"

namespace epm::cluster {

enum class ServerState { kOff, kBooting, kActive, kSleeping, kWaking };

std::string to_string(ServerState state);

class Server {
 public:
  /// `model` must outlive the server (shared hardware class).
  Server(std::size_t id, const power::ServerPowerModel& model,
         ServerState initial = ServerState::kOff);

  std::size_t id() const { return id_; }
  ServerState state() const { return state_; }
  const power::ServerPowerModel& model() const { return *model_; }
  bool serving() const { return state_ == ServerState::kActive; }

  /// Commands. Invalid commands for the current state are ignored (the
  /// managers issue them idempotently); each returns whether it took effect.
  bool power_on();   ///< Off -> Booting (full boot)
  bool power_off();  ///< Active/Sleeping/Waking/Booting -> Off (immediate)
  bool sleep();      ///< Active -> Sleeping
  bool wake();       ///< Sleeping -> Waking (short resume)

  /// DVFS / throttle setting used while Active.
  void set_pstate(std::size_t pstate);
  std::size_t pstate() const { return pstate_; }
  void set_duty(double duty);
  double duty() const { return duty_; }

  /// Utilization of the *throttled* capacity while Active, set by the
  /// cluster's load balancer each epoch.
  void set_utilization(double u);
  double utilization() const { return utilization_; }

  /// Serving capacity in CPU-seconds of reference-frequency work per second
  /// (i.e. the fraction of a full-speed core-set this server offers now).
  double capacity_fraction() const;

  /// Electrical draw in the current state.
  double power_w() const;

  /// Advances internal transition timers; completes Booting -> Active and
  /// Waking -> Active when their latency elapses.
  void tick(double dt_s);

  /// Cumulative energy spent on boots/wakes (for the "is sleeping worth it"
  /// accounting in EXP-D).
  double transition_energy_j() const { return transition_energy_j_; }
  std::size_t boot_count() const { return boot_count_; }

 private:
  std::size_t id_;
  const power::ServerPowerModel* model_;
  ServerState state_;
  std::size_t pstate_ = 0;
  double duty_ = 1.0;
  double utilization_ = 0.0;
  double transition_remaining_s_ = 0.0;
  double transition_energy_j_ = 0.0;
  std::size_t boot_count_ = 0;
};

}  // namespace epm::cluster
