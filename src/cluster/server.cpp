#include "cluster/server.h"

#include <algorithm>

#include "core/require.h"

namespace epm::cluster {

std::string to_string(ServerState state) {
  switch (state) {
    case ServerState::kOff:
      return "off";
    case ServerState::kBooting:
      return "booting";
    case ServerState::kActive:
      return "active";
    case ServerState::kSleeping:
      return "sleeping";
    case ServerState::kWaking:
      return "waking";
  }
  return "?";
}

Server::Server(std::size_t id, const power::ServerPowerModel& model, ServerState initial)
    : id_(id), model_(&model), state_(initial) {
  require(initial == ServerState::kOff || initial == ServerState::kActive ||
              initial == ServerState::kSleeping,
          "Server: initial state must be off, active, or sleeping");
}

bool Server::power_on() {
  if (state_ != ServerState::kOff) return false;
  state_ = ServerState::kBooting;
  transition_remaining_s_ = model_->config().boot_time_s;
  ++boot_count_;
  return true;
}

bool Server::power_off() {
  if (state_ == ServerState::kOff) return false;
  state_ = ServerState::kOff;
  transition_remaining_s_ = 0.0;
  utilization_ = 0.0;
  return true;
}

bool Server::sleep() {
  if (state_ != ServerState::kActive) return false;
  state_ = ServerState::kSleeping;
  utilization_ = 0.0;
  return true;
}

bool Server::wake() {
  if (state_ != ServerState::kSleeping) return false;
  state_ = ServerState::kWaking;
  transition_remaining_s_ = model_->config().wake_from_sleep_s;
  return true;
}

void Server::set_pstate(std::size_t pstate) {
  require(pstate < model_->pstate_count(), "Server: P-state out of range");
  pstate_ = pstate;
}

void Server::set_duty(double duty) {
  require(duty > 0.0 && duty <= 1.0, "Server: duty outside (0,1]");
  duty_ = duty;
}

void Server::set_utilization(double u) {
  require(u >= 0.0 && u <= 1.0, "Server: utilization outside [0,1]");
  utilization_ = u;
}

double Server::capacity_fraction() const {
  if (state_ != ServerState::kActive) return 0.0;
  return model_->relative_capacity(pstate_, duty_);
}

double Server::power_w() const {
  const auto& cfg = model_->config();
  switch (state_) {
    case ServerState::kOff:
      return cfg.off_power_w;
    case ServerState::kBooting:
    case ServerState::kWaking:
      return cfg.boot_power_w;
    case ServerState::kSleeping:
      return cfg.sleep_power_w;
    case ServerState::kActive:
      return model_->active_power_w(pstate_, utilization_, duty_);
  }
  return 0.0;
}

void Server::tick(double dt_s) {
  require(dt_s >= 0.0, "Server: negative dt");
  if (state_ == ServerState::kBooting || state_ == ServerState::kWaking) {
    const double spent = std::min(dt_s, transition_remaining_s_);
    transition_energy_j_ += model_->config().boot_power_w * spent;
    transition_remaining_s_ -= spent;
    if (transition_remaining_s_ <= 1e-9) {
      state_ = ServerState::kActive;
      transition_remaining_s_ = 0.0;
    }
  }
}

}  // namespace epm::cluster
