// Conservative parallel DES federation, sharded by datacenter/zone.
//
// The paper's elastic-power vision spans whole fleets (§3.2 geo-distributed
// coordination), but a multi-datacenter world on one event queue serializes
// everything through a single kernel. This module federates N independent
// calendar-queue kernels (one per shard — in practice one per datacenter)
// and exchanges cross-shard events (geo re-routes, replication traffic,
// grid events) through deterministic per-(src,dst) FIFO mailboxes.
//
// Synchronization protocol: **barrier-synchronized bounded-lag windows**
// (Lubachevsky-style), NOT null messages — see DESIGN.md for the rationale.
// Each round the coordinator computes the global next event time
//
//     ng = min over shards of shard.next_time()
//
// and lets every shard run, in parallel on a ThreadPool, all events with
// timestamp strictly inside the window [ng, ng + L), where L is the minimum
// cross-shard lookahead — the smallest inter-datacenter network latency
// floor. Conservative safety: an event at time t >= ng can only emit a
// cross-shard message with delivery time >= t + L >= ng + L, i.e. beyond
// the window, so no message ever arrives for a time range a shard has
// already executed. At the barrier the coordinator drains the mailboxes
// serially in (src, dst, send-order) order, which pins the destination
// kernel's sequence numbers — and therefore every same-timestamp tie —
// independently of thread count. Results are bit-identical at any
// shard/thread count by construction.
//
// Determinism contract (same bar as every subsystem in this repo):
//   * within a window, a shard touches only its own kernel and its own
//     outbox row — no shared mutable state, no locks, no atomics;
//   * window boundaries are a pure function of event timestamps and the
//     lookahead matrix — never of wall-clock or thread scheduling;
//   * mailbox drain order is (src shard asc, dst shard asc, append order),
//     fixed regardless of which worker ran which shard.
//
// A 1-shard federation degenerates to a plain `sim::Simulator` executing
// the identical event sequence ("degenerate federation" invariant — golden
// tests replay fig1-fig4 and the retry-storm scenario anchors through it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "network/interdc_link.h"
#include "sim/event_fn.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace epm::sim {

struct ShardedConfig {
  /// Number of shards (federated kernels); one per datacenter/zone.
  std::size_t shards = 1;
  /// Worker threads driving shard windows: 1 = serial (default, runs inline
  /// with no pool), 0 = default_thread_count(), n>1 = a pool of n.
  std::size_t threads = 1;
  /// Uniform cross-shard lookahead floor (seconds), used when the full
  /// matrix below is empty. Must be > 0 when shards > 1: this is the
  /// minimum inter-datacenter network latency, and the conservative
  /// window width derives from it.
  double uniform_lookahead_s = 0.0;
  /// Optional full lookahead matrix, row-major `shards x shards`;
  /// entry [src*shards + dst] is the minimum delay of any src->dst
  /// message. Diagonal entries are ignored (loopback sends are ordinary
  /// local schedules). Every off-diagonal entry must be positive and
  /// finite.
  std::vector<double> lookahead_s;
};

/// N federated event kernels with conservative windowed synchronization.
///
/// Thread rules: between runs, any single thread may touch any shard.
/// During a run, an event callback executing on shard i may touch only
/// shard(i) (schedule/cancel on its own kernel) and may emit cross-shard
/// traffic only through send(i, dst, ...). Re-entering run_until()/run_all()
/// from an event callback throws.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig config);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const {
    return pool_ ? pool_->thread_count() : 1;
  }

  /// Direct access to shard i's kernel, for world construction and for
  /// shard-local scheduling from that shard's own event callbacks.
  Simulator& shard(std::size_t i);
  const Simulator& shard(std::size_t i) const;

  /// Lookahead floor for src->dst messages (+infinity for src == dst,
  /// where no conservative constraint applies).
  double lookahead_s(std::size_t src, std::size_t dst) const;
  /// Minimum off-diagonal lookahead — the conservative window width.
  /// +infinity for a single-shard federation (no windows needed).
  double min_lookahead_s() const { return min_lookahead_s_; }

  /// Global committed time: the latest run_until() horizon (or the final
  /// event time after run_all()).
  double now() const { return now_s_; }
  /// Completed execution horizon: every shard has executed every event
  /// strictly before this time. Advances at each window barrier.
  double horizon_s() const { return horizon_s_; }

  /// Cross-shard message: schedules `fn` on shard `dst` at
  /// `shard(src).now() + delay_s`. Callable during setup (any src) or from
  /// an event callback on shard `src` itself. For src != dst, `delay_s`
  /// must be >= lookahead_s(src, dst) — an undersized delay is rejected
  /// with std::invalid_argument, because delivering it could land inside
  /// the window other shards are concurrently executing. src == dst is a
  /// loopback (an ordinary local schedule; any delay >= 0).
  ///
  /// Messages append to a per-(src,dst) FIFO mailbox and are scheduled on
  /// the destination kernel at the next barrier; two messages on the same
  /// (src,dst) pair with equal delivery timestamps fire in send order.
  void send(std::size_t src, std::size_t dst, double delay_s, EventFn fn);
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void send(std::size_t src, std::size_t dst, double delay_s, F&& fn) {
    // Plain EventFn construction, NOT the destination arena: the closure is
    // built on the sending shard's thread, and ClosureArena is not
    // thread-safe. Inline captures cost nothing; oversized ones heap-box.
    send(src, dst, delay_s, EventFn(std::forward<F>(fn)));
  }

  /// Cross-shard message carried as serializable data instead of a closure:
  /// at delivery time the tagged-delivery hook (set_tagged_delivery) runs
  /// with (dst, when_s, tag, payload) — typically scheduling the record into
  /// the destination shard's TaggedKernel. Tagged messages survive
  /// save_state/restore_state even while parked behind a partition, which
  /// closures cannot. Same lookahead/FIFO contract as send(); loopback
  /// (src == dst) invokes the hook immediately on the calling shard.
  void send_tagged(std::size_t src, std::size_t dst, double delay_s,
                   std::uint64_t tag, std::vector<std::uint64_t> payload);
  /// Installs the tagged-delivery hook. Required before any send_tagged
  /// delivery. Called serially at barriers (and inline for loopback sends
  /// on the sending shard's thread); it must touch only the destination
  /// shard's state.
  using TaggedDelivery = std::function<void(
      std::size_t dst, double when_s, std::uint64_t tag,
      const std::vector<std::uint64_t>& payload)>;
  void set_tagged_delivery(TaggedDelivery hook);

  /// Attaches a degraded-link plan (non-owning; must outlive the runs and
  /// have site_count() == shard_count()). Every cross-shard message is then
  /// adjusted by the plan: slowed/lossy windows defer its delivery time
  /// (a pure function of the send — bit-identical at any thread count),
  /// closed partition windows defer it through the jittered-exponential
  /// redelivery schedule, and open partition windows park it in a bounded
  /// per-(src,dst) FIFO queue until InterDcLinkPlan::heal() closes the
  /// window (heal between runs, at or beyond horizon_s()). Parked messages
  /// drain in FIFO order at the next barrier; exceeding the policy's
  /// parked_capacity throws std::runtime_error.
  void set_link_plan(const network::InterDcLinkPlan* plan);

  /// Runs the federation until every shard's queue empties or the global
  /// clock passes `until_s`; events at exactly `until_s` execute and every
  /// shard's clock lands on `until_s` (single-kernel run_until parity).
  /// Returns the number of events executed across all shards.
  std::size_t run_until(double until_s);
  /// Runs until every queue and mailbox is empty.
  std::size_t run_all();

  /// Pending events across all shards. Exact between runs (mailboxes are
  /// always drained at barriers, so nothing is in flight). Parked messages
  /// behind an open partition are NOT pending events — see
  /// messages_parked().
  std::size_t pending() const;

  /// Diagnostics.
  std::uint64_t windows_run() const { return windows_run_; }
  std::uint64_t messages_sent() const;
  /// Messages currently parked behind open partition windows.
  std::uint64_t messages_parked() const;
  /// Messages whose delivery went through at least one redelivery attempt
  /// (closed partition windows and lossy losses).
  std::uint64_t messages_redelivered() const;

  /// Serializes the federation's own state — clocks, window/send counters,
  /// per-pair message indices, redelivery FIFO floors, and every parked
  /// tagged message — into the snapshot. The shard kernels' contents are
  /// saved separately (TaggedKernel::save per shard). Throws
  /// std::runtime_error if a parked closure (non-tagged) message exists.
  void save_state(SnapshotWriter& w) const;
  /// Restores what save_state wrote into a federation with the same shard
  /// count. Call after restoring each shard's TaggedKernel.
  void restore_state(SnapshotReader& r);

 private:
  struct Message {
    double when_s = 0.0;
    EventFn fn;
    bool tagged = false;
    std::uint64_t tag = 0;
    std::vector<std::uint64_t> payload;
  };

  /// A message parked behind an open partition window: delivery is
  /// recomputed from these coordinates once the link heals, so the
  /// adjustment stays a pure function of the send.
  struct Parked {
    double send_s = 0.0;
    double nominal_when_s = 0.0;
    std::uint64_t pair_index = 0;
    EventFn fn;
    bool tagged = false;
    std::uint64_t tag = 0;
    std::vector<std::uint64_t> payload;
  };

  /// One federated kernel plus its outgoing mailboxes. Heap-allocated so
  /// shards never share cache lines through the owning vector.
  struct Shard {
    Simulator sim;
    /// outbox[dst]: messages appended by this shard's window execution,
    /// drained serially at the barrier. Only this shard's worker writes
    /// here during a window.
    std::vector<std::vector<Message>> outbox;
    /// parked[dst]: FIFO queue of messages sent during an open partition,
    /// drained at the first barrier after the link heals. Appended by this
    /// shard's worker, drained serially at barriers.
    std::vector<std::deque<Parked>> parked;
    /// pair_index[dst]: messages ever sent on this (src, dst) pair — the
    /// per-message coordinate of the link plan's deterministic draws.
    std::vector<std::uint64_t> pair_index;
    /// down_floor[dst]: monotone floor on redelivered deliveries, so a
    /// partition's backlog drains in send order (per-pair FIFO) even though
    /// each message draws its own jittered backoff.
    std::vector<double> down_floor;
    std::uint64_t sent = 0;
    std::uint64_t redelivered = 0;
    std::size_t window_ran = 0;
  };

  /// Applies the link plan to a cross-shard message; pushes it to the
  /// outbox or parks it. `when_s` is the nominal delivery time.
  void route_message(std::size_t src, std::size_t dst, double when_s,
                     Message m);
  /// Schedules one delivered message on its destination (closure or tagged
  /// hook).
  void deliver_message(std::size_t dst, double when_s, Message& m);
  /// Drains parked messages that became deliverable (healed links) at a
  /// barrier, in (src, dst, FIFO) order. Returns messages delivered.
  std::size_t drain_parked(double min_legal_when_s);

  /// Runs one window on every shard (parallel when a pool exists).
  /// `inclusive` windows use run_until (events at exactly `stop_s` fire and
  /// clocks advance to it — the final stretch of a run_until call);
  /// exclusive windows use run_before. Returns events executed.
  std::size_t run_window(double stop_s, bool inclusive);
  /// Drains every mailbox into its destination kernel in (src, dst,
  /// append) order. `min_legal_when_s` is the conservative bound every
  /// message must satisfy; a violation is a protocol bug and throws.
  std::size_t deliver_all(double min_legal_when_s);
  void check_run_entry() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<double> lookahead_;  ///< row-major shards x shards
  double min_lookahead_s_ = 0.0;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
  const network::InterDcLinkPlan* link_plan_ = nullptr;  ///< non-owning
  TaggedDelivery tagged_delivery_;
  double now_s_ = 0.0;
  double horizon_s_ = 0.0;
  bool running_ = false;
  std::uint64_t windows_run_ = 0;
};

}  // namespace epm::sim
