// Allocation-free event callables for the DES kernel.
//
// The kernel's hot path fires millions of closures; std::function heap-
// allocates any capture larger than its tiny internal buffer and copies it
// on every priority_queue pop. EventFn replaces it with a move-only callable
// whose captures live inline (up to kInlineSize bytes) — the common case for
// event closures, which capture a context pointer plus a couple of ids — so
// scheduling an event touches no allocator at all. Oversized closures are
// boxed out-of-line, either on the global heap or, when scheduled through a
// Simulator, in that simulator's ClosureArena: a size-class freelist that
// recycles closure blocks for the lifetime of the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace epm::sim {

/// Size-class freelist allocator for oversized event closures. Blocks are
/// carved from chunked slabs and recycled on release, so a steady-state
/// simulation reuses the same few cache-warm blocks instead of hammering
/// malloc. Blocks larger than the biggest class fall through to operator new.
/// The arena must outlive every closure allocated from it (the Simulator
/// owns both, and destroys its events first).
class ClosureArena {
 public:
  ClosureArena() = default;
  ClosureArena(const ClosureArena&) = delete;
  ClosureArena& operator=(const ClosureArena&) = delete;

  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls == kClassCount) return ::operator new(bytes);
    if (free_[cls] == nullptr) refill(cls);
    FreeBlock* block = free_[cls];
    free_[cls] = block->next;
    return block;
  }

  void release(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (cls == kClassCount) {
      ::operator delete(p);
      return;
    }
    auto* block = static_cast<FreeBlock*>(p);
    block->next = free_[cls];
    free_[cls] = block;
  }

  /// Slab bytes currently reserved (diagnostics / tests).
  std::size_t reserved_bytes() const { return chunks_.size() * kChunkBytes; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
  static constexpr std::size_t kClassCount =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  static constexpr std::size_t kChunkBytes = 16 * 1024;

  static std::size_t size_class(std::size_t bytes) {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (bytes <= kClassSizes[c]) return c;
    }
    return kClassCount;
  }

  void refill(std::size_t cls) {
    chunks_.push_back(std::make_unique<std::byte[]>(kChunkBytes));
    std::byte* base = chunks_.back().get();
    const std::size_t block = kClassSizes[cls];
    for (std::size_t off = 0; off + block <= kChunkBytes; off += block) {
      release(base + off, block);
    }
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  FreeBlock* free_[kClassCount] = {};
};

/// Move-only `void()` callable with inline storage for small captures.
/// Construction from a callable is explicit so that overload sets taking
/// both EventFn and std::function stay unambiguous.
class EventFn {
 public:
  /// Captures at most this large (and no stricter than pointer-aligned) are
  /// stored inline; everything bigger or over-aligned is boxed out-of-line.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(double);

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  explicit EventFn(F&& fn) {
    emplace(std::forward<F>(fn), nullptr);
  }

  /// Boxes `fn` in `arena` when it does not fit inline (the Simulator's
  /// schedule path); small captures still go inline with no allocation.
  template <typename F>
  static EventFn with_arena(ClosureArena& arena, F&& fn) {
    EventFn out;
    out.emplace(std::forward<F>(fn), &arena);
    return out;
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(buf_); }

  /// True when the capture lives inline (diagnostics / tests).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs into raw `dst` storage and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_storage;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign;
  }

  template <typename F>
  struct InlineModel {
    static void invoke(void* self) { (*std::launder(static_cast<F*>(self)))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* from = std::launder(static_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* self) noexcept {
      std::launder(static_cast<F*>(self))->~F();
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  struct Boxed {
    void* obj;
    ClosureArena* arena;  ///< nullptr => plain operator new/delete
  };

  template <typename F>
  struct BoxedModel {
    static void invoke(void* self) {
      (*static_cast<F*>(std::launder(static_cast<Boxed*>(self))->obj))();
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Boxed(*std::launder(static_cast<Boxed*>(src)));
    }
    static void destroy(void* self) noexcept {
      Boxed* box = std::launder(static_cast<Boxed*>(self));
      F* obj = static_cast<F*>(box->obj);
      if (box->arena != nullptr) {
        obj->~F();
        box->arena->release(obj, sizeof(F));
      } else {
        delete obj;
      }
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  template <typename F>
  void emplace(F&& fn, ClosureArena* arena) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &InlineModel<D>::ops;
    } else {
      static_assert(alignof(D) <= alignof(std::max_align_t),
                    "EventFn: over-aligned captures are not supported");
      Boxed box;
      if (arena != nullptr) {
        void* raw = arena->allocate(sizeof(D));
        box.obj = ::new (raw) D(std::forward<F>(fn));
        box.arena = arena;
      } else {
        box.obj = new D(std::forward<F>(fn));
        box.arena = nullptr;
      }
      ::new (static_cast<void*>(buf_)) Boxed(box);
      ops_ = &BoxedModel<D>::ops;
    }
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // ops_ precedes the buffer, and the buffer is only pointer-aligned, so a
  // Node's hot fire-path bytes (timestamp, status, ops pointer, the first
  // capture words) pack into one cache line.
  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) std::byte buf_[kInlineSize];
};

}  // namespace epm::sim
