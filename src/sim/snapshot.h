// Deterministic checkpoint/restore for the DES kernels.
//
// C++ closures cannot be serialized, so snapshotting is *cooperative*: a
// world that wants checkpoint/restore schedules its events through a
// TaggedKernel — every pending event is a (tag, payload-of-u64s) record with
// a registered handler, and the closure the kernel actually stores is a
// 16-byte trampoline that looks the record up by id. A snapshot is then just
// the record table plus the clock; restore re-registers the handlers (code,
// not data) and re-schedules every record in record-id order.
//
// Bit-identical continuation depends on one invariant: among pending events,
// record-id order equals kernel sequence order. TaggedKernel maintains it by
// construction — records are created in scheduling order, and periodic
// events are self-rescheduling with a FRESH record id at every firing
// (mirroring the kernel's own re-arm, which also draws a fresh seq). After
// restore, fresh seq numbers are assigned in record-id order, so every
// same-timestamp tie resolves exactly as in the uninterrupted run.
//
// The byte format is explicit little-endian with per-section magic+version
// headers, so a stale or foreign snapshot fails loudly instead of producing
// a silently different world.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace epm::sim {

/// Append-only little-endian byte buffer for snapshot serialization.
class SnapshotWriter {
 public:
  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_payload(const std::vector<std::uint64_t>& p);
  /// Section header: a magic tag plus a format version, checked on read.
  void begin_section(std::uint32_t magic, std::uint32_t version);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a snapshot buffer. Every overrun, magic
/// mismatch, or version mismatch throws std::runtime_error — a snapshot is
/// external input and must never be trusted silently.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  SnapshotReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  double read_f64();
  std::string read_string();
  std::vector<std::uint64_t> read_payload();
  void expect_section(std::uint32_t magic, std::uint32_t version);

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

using TagPayload = std::vector<std::uint64_t>;
/// Handler for one event tag; receives the firing time and the payload.
using TagHandler = std::function<void(double now_s, const TagPayload&)>;

/// Snapshot-capable scheduling facade over one Simulator.
///
/// Worlds that need checkpoint/restore route every schedule through this
/// wrapper; save() refuses (throws std::runtime_error) if the underlying
/// kernel holds pending events that did not come through it, because those
/// closures cannot be serialized. Handlers are registered code, re-attached
/// by the restoring process before restore().
class TaggedKernel {
 public:
  explicit TaggedKernel(Simulator& sim) : sim_(sim) {}
  TaggedKernel(const TaggedKernel&) = delete;
  TaggedKernel& operator=(const TaggedKernel&) = delete;

  Simulator& sim() { return sim_; }

  /// Registers the handler for `tag`; a tag can be bound only once.
  void on(std::uint64_t tag, TagHandler handler);

  /// Schedules a one-shot tagged event; returns its record id (usable with
  /// cancel_tagged, and stable across save/restore).
  std::uint64_t schedule_tagged_at(double when_s, std::uint64_t tag,
                                   TagPayload payload);
  /// Periodic tagged event. Implemented by self-rescheduling with a fresh
  /// record id each firing (never the kernel's native periodic path), so
  /// record-id order always matches kernel seq order among pending events.
  std::uint64_t schedule_tagged_periodic(double first_s, double period_s,
                                         std::uint64_t tag,
                                         TagPayload payload);
  /// Cancels a pending tagged event; unknown ids are a harmless no-op (the
  /// record may have fired already). For a periodic record this cancels all
  /// future firings.
  void cancel_tagged(std::uint64_t record_id);

  /// Pending tagged records (== sim().pending() whenever every pending
  /// event is tagged).
  std::size_t tagged_pending() const { return records_.size(); }

  /// Serializes the kernel clock plus every pending record. Throws
  /// std::runtime_error if the kernel holds untagged pending events.
  void save(SnapshotWriter& w) const;
  /// Restores into an idle kernel (no pending events, no pending records):
  /// rewinds/advances the clock and re-schedules every record in record-id
  /// order. Handlers must already be registered.
  void restore(SnapshotReader& r);

 private:
  struct Record {
    double when_s = 0.0;
    double period_s = 0.0;  ///< > 0: re-arm under a fresh id after firing
    std::uint64_t tag = 0;
    TagPayload payload;
    EventHandle handle;
  };

  std::uint64_t add_record(double when_s, double period_s, std::uint64_t tag,
                           TagPayload payload);
  void arm(std::uint64_t id, Record& rec);
  void fire(std::uint64_t id);

  Simulator& sim_;
  /// Ordered by record id so save/restore iterate in scheduling order.
  std::map<std::uint64_t, Record> records_;
  std::unordered_map<std::uint64_t, TagHandler> handlers_;
  std::uint64_t next_id_ = 1;
};

}  // namespace epm::sim
