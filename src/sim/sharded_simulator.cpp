#include "sim/sharded_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/require.h"

namespace epm::sim {

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Which shard the calling thread is currently executing a window for.
/// Set around each shard's run inside a window (worker threads and the
/// serial inline path alike), so send() can verify that an event on shard
/// i never impersonates another source — that would break both FIFO
/// ordering and the lookahead proof.
thread_local std::size_t t_current_shard = kNoShard;

/// RAII so an exception thrown by an event callback cannot leave a worker
/// thread permanently tagged with a stale shard id.
struct ShardScope {
  explicit ShardScope(std::size_t i) { t_current_shard = i; }
  ~ShardScope() { t_current_shard = kNoShard; }
};

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config) {
  require(config.shards >= 1, "ShardedSimulator: need at least one shard");
  const std::size_t n = config.shards;

  if (config.lookahead_s.empty()) {
    require(n == 1 || config.uniform_lookahead_s > 0.0,
            "ShardedSimulator: a multi-shard federation needs a positive "
            "lookahead (the minimum inter-DC latency floor)");
    lookahead_.assign(n * n, config.uniform_lookahead_s);
  } else {
    require(config.lookahead_s.size() == n * n,
            "ShardedSimulator: lookahead matrix must be shards x shards");
    lookahead_ = config.lookahead_s;
  }
  min_lookahead_s_ = kInf;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const double l = lookahead_[src * n + dst];
      require(l > 0.0 && std::isfinite(l),
              "ShardedSimulator: lookahead[" + std::to_string(src) + "][" +
                  std::to_string(dst) + "] must be positive and finite");
      min_lookahead_s_ = std::min(min_lookahead_s_, l);
    }
  }

  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->outbox.resize(n);
    s->parked.resize(n);
    s->pair_index.assign(n, 0);
    s->down_floor.assign(n, 0.0);
    shards_.push_back(std::move(s));
  }

  const std::size_t threads =
      config.threads == 1 ? 1 : resolve_thread_count(
                                    static_cast<std::int64_t>(config.threads));
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ShardedSimulator::~ShardedSimulator() = default;

Simulator& ShardedSimulator::shard(std::size_t i) {
  require(i < shards_.size(), "ShardedSimulator: shard index out of range");
  return shards_[i]->sim;
}

const Simulator& ShardedSimulator::shard(std::size_t i) const {
  require(i < shards_.size(), "ShardedSimulator: shard index out of range");
  return shards_[i]->sim;
}

double ShardedSimulator::lookahead_s(std::size_t src, std::size_t dst) const {
  require(src < shards_.size() && dst < shards_.size(),
          "ShardedSimulator: shard index out of range");
  if (src == dst) return kInf;
  return lookahead_[src * shards_.size() + dst];
}

void ShardedSimulator::send(std::size_t src, std::size_t dst, double delay_s,
                            EventFn fn) {
  require(src < shards_.size() && dst < shards_.size(),
          "ShardedSimulator: shard index out of range");
  require(static_cast<bool>(fn), "ShardedSimulator: empty event function");
  if (t_current_shard != kNoShard) {
    ensure(t_current_shard == src,
           "ShardedSimulator::send: an event executing on shard " +
               std::to_string(t_current_shard) +
               " tried to send as shard " + std::to_string(src) +
               " — cross-shard sends must originate from their own kernel");
  }
  Shard& s = *shards_[src];
  if (src == dst) {
    // Loopback: an ordinary local schedule, no conservative constraint.
    require(delay_s >= 0.0, "ShardedSimulator::send: negative delay");
    s.sim.schedule_at(s.sim.now() + delay_s, std::move(fn));
    return;
  }
  const double floor_s = lookahead_[src * shards_.size() + dst];
  if (!(delay_s >= floor_s)) {
    throw std::invalid_argument(
        "ShardedSimulator::send: delay " + std::to_string(delay_s) +
        " s is below the shard " + std::to_string(src) + " -> " +
        std::to_string(dst) + " lookahead floor of " +
        std::to_string(floor_s) +
        " s; a conservative federation cannot deliver inside the window "
        "other shards are already executing (raise the delay or lower the "
        "configured inter-DC latency floor)");
  }
  Message m;
  m.fn = std::move(fn);
  route_message(src, dst, s.sim.now() + delay_s, std::move(m));
}

void ShardedSimulator::send_tagged(std::size_t src, std::size_t dst,
                                   double delay_s, std::uint64_t tag,
                                   std::vector<std::uint64_t> payload) {
  require(src < shards_.size() && dst < shards_.size(),
          "ShardedSimulator: shard index out of range");
  if (t_current_shard != kNoShard) {
    ensure(t_current_shard == src,
           "ShardedSimulator::send_tagged: an event executing on shard " +
               std::to_string(t_current_shard) + " tried to send as shard " +
               std::to_string(src));
  }
  require(static_cast<bool>(tagged_delivery_),
          "ShardedSimulator::send_tagged: no tagged-delivery hook installed");
  Shard& s = *shards_[src];
  if (src == dst) {
    // Loopback: hand straight to the hook on the calling shard — it only
    // touches this shard's state, exactly like a local schedule.
    require(delay_s >= 0.0, "ShardedSimulator::send_tagged: negative delay");
    tagged_delivery_(dst, s.sim.now() + delay_s, tag, payload);
    return;
  }
  const double floor_s = lookahead_[src * shards_.size() + dst];
  if (!(delay_s >= floor_s)) {
    throw std::invalid_argument(
        "ShardedSimulator::send_tagged: delay " + std::to_string(delay_s) +
        " s is below the shard " + std::to_string(src) + " -> " +
        std::to_string(dst) + " lookahead floor of " +
        std::to_string(floor_s) + " s");
  }
  Message m;
  m.tagged = true;
  m.tag = tag;
  m.payload = std::move(payload);
  route_message(src, dst, s.sim.now() + delay_s, std::move(m));
}

void ShardedSimulator::set_tagged_delivery(TaggedDelivery hook) {
  require(static_cast<bool>(hook),
          "ShardedSimulator: empty tagged-delivery hook");
  tagged_delivery_ = std::move(hook);
}

void ShardedSimulator::set_link_plan(const network::InterDcLinkPlan* plan) {
  if (plan != nullptr) {
    require(plan->site_count() == shards_.size(),
            "ShardedSimulator: link plan site count must equal the shard "
            "count");
  }
  require(messages_parked() == 0,
          "ShardedSimulator: cannot swap the link plan while messages are "
          "parked behind a partition (heal and drain first)");
  link_plan_ = plan;
}

void ShardedSimulator::route_message(std::size_t src, std::size_t dst,
                                     double when_s, Message m) {
  Shard& s = *shards_[src];
  const std::uint64_t index = s.pair_index[dst]++;
  ++s.sent;
  if (link_plan_ != nullptr && !link_plan_->pristine()) {
    const double send_s = s.sim.now();
    const network::LinkDelivery dv =
        link_plan_->adjust(src, dst, send_s, when_s, index);
    if (!dv.deliverable) {
      auto& queue = s.parked[dst];
      if (queue.size() >= link_plan_->policy().parked_capacity) {
        throw std::runtime_error(
            "ShardedSimulator: partition mailbox " + std::to_string(src) +
            " -> " + std::to_string(dst) + " full (" +
            std::to_string(queue.size()) +
            " parked messages); heal the link or raise "
            "LinkPolicy::parked_capacity");
      }
      Parked p;
      p.send_s = send_s;
      p.nominal_when_s = when_s;
      p.pair_index = index;
      p.fn = std::move(m.fn);
      p.tagged = m.tagged;
      p.tag = m.tag;
      p.payload = std::move(m.payload);
      queue.push_back(std::move(p));
      return;
    }
    when_s = dv.when_s;
    if (dv.redeliveries > 0) ++s.redelivered;
    // Per-pair delivery-order floor: while a link plan is attached, the
    // (src, dst) channel behaves like one ordered connection — a message
    // sent later never undercuts an earlier one's delivery time, even when
    // the earlier one went through the lossy/partition redelivery path.
    when_s = std::max(when_s, s.down_floor[dst]);
    s.down_floor[dst] = when_s;
  }
  m.when_s = when_s;
  s.outbox[dst].push_back(std::move(m));
}

void ShardedSimulator::deliver_message(std::size_t dst, double when_s,
                                       Message& m) {
  if (m.tagged) {
    ensure(static_cast<bool>(tagged_delivery_),
           "ShardedSimulator: tagged message with no delivery hook");
    tagged_delivery_(dst, when_s, m.tag, m.payload);
  } else {
    shards_[dst]->sim.schedule_at(when_s, std::move(m.fn));
  }
}

void ShardedSimulator::check_run_entry() const {
  ensure(!running_ && !(pool_ && pool_->on_worker_thread()),
         "ShardedSimulator: run re-entered from inside an event callback "
         "(drive the federation from one coordinator thread only)");
}

std::size_t ShardedSimulator::run_window(double stop_s, bool inclusive) {
  running_ = true;
  const std::size_t n = shards_.size();
  auto chunk = [this, stop_s, inclusive](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ShardScope scope(i);
      Shard& s = *shards_[i];
      s.window_ran =
          inclusive ? s.sim.run_until(stop_s) : s.sim.run_before(stop_s);
    }
  };
  try {
    if (pool_) {
      pool_->parallel_for(n, chunk);
    } else {
      chunk(0, n);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  ++windows_run_;
  std::size_t ran = 0;
  for (const auto& s : shards_) ran += s->window_ran;
  return ran;
}

std::size_t ShardedSimulator::drain_parked(double min_legal_when_s) {
  if (link_plan_ == nullptr) return 0;
  std::size_t delivered = 0;
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    Shard& s = *shards_[src];
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      auto& queue = s.parked[dst];
      while (!queue.empty()) {
        Parked& p = queue.front();
        const network::LinkDelivery dv = link_plan_->adjust(
            src, dst, p.send_s, p.nominal_when_s, p.pair_index);
        // Still inside an open partition window: the whole queue was sent
        // later (per-shard send times are nondecreasing), so stop here and
        // keep the FIFO intact.
        if (!dv.deliverable) break;
        double when = std::max(dv.when_s, s.down_floor[dst]);
        s.down_floor[dst] = when;
        if (dv.redeliveries > 0) ++s.redelivered;
        ensure(when >= min_legal_when_s,
               "ShardedSimulator: a healed link released a message for t=" +
                   std::to_string(when) +
                   " inside the already-executed horizon t=" +
                   std::to_string(min_legal_when_s) +
                   " — heal() must be called with end_s >= horizon_s()");
        Message m;
        m.fn = std::move(p.fn);
        m.tagged = p.tagged;
        m.tag = p.tag;
        m.payload = std::move(p.payload);
        queue.pop_front();
        deliver_message(dst, when, m);
        ++delivered;
      }
    }
  }
  return delivered;
}

std::size_t ShardedSimulator::deliver_all(double min_legal_when_s) {
  std::size_t delivered = drain_parked(min_legal_when_s);
  for (auto& src : shards_) {
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      auto& box = src->outbox[dst];
      for (Message& m : box) {
        ensure(m.when_s >= min_legal_when_s,
               "ShardedSimulator: conservative horizon violated — a message "
               "for t=" + std::to_string(m.when_s) +
                   " arrived after the window ending at t=" +
                   std::to_string(min_legal_when_s) + " was already executed");
        deliver_message(dst, m.when_s, m);
        ++delivered;
      }
      box.clear();
    }
  }
  return delivered;
}

std::size_t ShardedSimulator::run_until(double until_s) {
  check_run_entry();
  require(!std::isnan(until_s), "ShardedSimulator: run_until(NaN)");
  if (shards_.size() == 1) {
    // Degenerate federation: one kernel, no windows, no barriers — the
    // event sequence is exactly the plain Simulator's.
    const std::size_t ran = shards_[0]->sim.run_until(until_s);
    horizon_s_ = std::max(horizon_s_, until_s);
    now_s_ = std::max(now_s_, until_s);
    return ran;
  }
  // Messages sent between runs (world setup, epoch glue) are still sitting
  // in their outboxes: deliver them first, or a federation whose only work
  // arrives via send() would see every queue empty and run nothing. Their
  // timestamps are >= the committed horizon (clocks never precede it and
  // off-diagonal floors are positive), so delivery is conservative-safe.
  deliver_all(horizon_s_);
  std::size_t ran = 0;
  for (;;) {
    double ng = kInf;
    for (auto& s : shards_) ng = std::min(ng, s->sim.next_time());
    if (!(ng <= until_s)) break;  // empty, or everything is beyond the horizon
    const double w1 = ng + min_lookahead_s_;
    if (w1 > until_s) {
      // Final stretch: every event left in (ng, until_s] can only emit
      // messages for t >= ng + L > until_s, so the whole remainder is one
      // safe inclusive window.
      ran += run_window(until_s, /*inclusive=*/true);
      horizon_s_ = std::max(horizon_s_, until_s);
      deliver_all(w1);
      break;
    }
    ran += run_window(w1, /*inclusive=*/false);
    horizon_s_ = std::max(horizon_s_, w1);
    deliver_all(w1);
  }
  // Single-kernel run_until parity: clocks land on until_s even when no
  // event sits exactly there.
  for (auto& s : shards_) {
    if (s->sim.now() < until_s) s->sim.run_until(until_s);
  }
  horizon_s_ = std::max(horizon_s_, until_s);
  now_s_ = std::max(now_s_, until_s);
  return ran;
}

std::size_t ShardedSimulator::run_all() {
  check_run_entry();
  if (shards_.size() == 1) {
    const std::size_t ran = shards_[0]->sim.run_all();
    now_s_ = std::max(now_s_, shards_[0]->sim.now());
    horizon_s_ = std::max(horizon_s_, now_s_);
    return ran;
  }
  deliver_all(horizon_s_);  // setup-time sends (see run_until)
  std::size_t ran = 0;
  for (;;) {
    double ng = kInf;
    for (auto& s : shards_) ng = std::min(ng, s->sim.next_time());
    if (ng == kInf) break;  // every queue and mailbox is empty
    const double w1 = ng + min_lookahead_s_;
    ran += run_window(w1, /*inclusive=*/false);
    horizon_s_ = std::max(horizon_s_, w1);
    deliver_all(w1);
  }
  for (auto& s : shards_) now_s_ = std::max(now_s_, s->sim.now());
  horizon_s_ = std::max(horizon_s_, now_s_);
  return ran;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->sim.pending();
  return total;
}

std::uint64_t ShardedSimulator::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sent;
  return total;
}

std::uint64_t ShardedSimulator::messages_parked() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    for (const auto& queue : s->parked) total += queue.size();
  }
  return total;
}

std::uint64_t ShardedSimulator::messages_redelivered() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->redelivered;
  return total;
}

namespace {
/// Section magic for the federation's own snapshot payload ("fedr").
constexpr std::uint32_t kFederationMagic = 0x66656472;
constexpr std::uint32_t kFederationVersion = 1;
}  // namespace

void ShardedSimulator::save_state(SnapshotWriter& w) const {
  ensure(!running_, "ShardedSimulator: save_state during a run");
  const std::size_t n = shards_.size();
  for (const auto& s : shards_) {
    for (const auto& box : s->outbox) {
      ensure(box.empty(),
             "ShardedSimulator: save_state with undelivered mailbox messages "
             "(snapshot only at a window barrier, between runs)");
    }
  }
  w.begin_section(kFederationMagic, kFederationVersion);
  w.write_u64(static_cast<std::uint64_t>(n));
  w.write_f64(now_s_);
  w.write_f64(horizon_s_);
  w.write_u64(windows_run_);
  for (const auto& s : shards_) {
    w.write_u64(s->sent);
    w.write_u64(s->redelivered);
    for (std::size_t dst = 0; dst < n; ++dst) w.write_u64(s->pair_index[dst]);
    for (std::size_t dst = 0; dst < n; ++dst) w.write_f64(s->down_floor[dst]);
    for (std::size_t dst = 0; dst < n; ++dst) {
      const auto& queue = s->parked[dst];
      w.write_u64(static_cast<std::uint64_t>(queue.size()));
      for (const Parked& p : queue) {
        if (!p.tagged) {
          throw std::runtime_error(
              "ShardedSimulator: a parked closure message cannot be "
              "serialized — worlds that snapshot under partitions must use "
              "send_tagged for cross-shard traffic");
        }
        w.write_f64(p.send_s);
        w.write_f64(p.nominal_when_s);
        w.write_u64(p.pair_index);
        w.write_u64(p.tag);
        w.write_payload(p.payload);
      }
    }
  }
}

void ShardedSimulator::restore_state(SnapshotReader& r) {
  ensure(!running_, "ShardedSimulator: restore_state during a run");
  r.expect_section(kFederationMagic, kFederationVersion);
  const std::uint64_t n = r.read_u64();
  require(n == shards_.size(),
          "ShardedSimulator: snapshot has " + std::to_string(n) +
              " shards but this federation has " +
              std::to_string(shards_.size()));
  const double now = r.read_f64();
  const double horizon = r.read_f64();
  require(std::isfinite(now) && std::isfinite(horizon) && horizon <= now,
          "ShardedSimulator: snapshot clock/horizon corrupt");
  now_s_ = now;
  horizon_s_ = horizon;
  windows_run_ = r.read_u64();
  for (auto& sp : shards_) {
    Shard& s = *sp;
    s.sent = r.read_u64();
    s.redelivered = r.read_u64();
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      s.pair_index[dst] = r.read_u64();
    }
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      s.down_floor[dst] = r.read_f64();
    }
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      auto& queue = s.parked[dst];
      queue.clear();
      const std::uint64_t count = r.read_u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        Parked p;
        p.send_s = r.read_f64();
        p.nominal_when_s = r.read_f64();
        p.pair_index = r.read_u64();
        p.tagged = true;
        p.tag = r.read_u64();
        p.payload = r.read_payload();
        queue.push_back(std::move(p));
      }
    }
  }
}

}  // namespace epm::sim
