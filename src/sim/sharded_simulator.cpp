#include "sim/sharded_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/require.h"

namespace epm::sim {

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Which shard the calling thread is currently executing a window for.
/// Set around each shard's run inside a window (worker threads and the
/// serial inline path alike), so send() can verify that an event on shard
/// i never impersonates another source — that would break both FIFO
/// ordering and the lookahead proof.
thread_local std::size_t t_current_shard = kNoShard;

/// RAII so an exception thrown by an event callback cannot leave a worker
/// thread permanently tagged with a stale shard id.
struct ShardScope {
  explicit ShardScope(std::size_t i) { t_current_shard = i; }
  ~ShardScope() { t_current_shard = kNoShard; }
};

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config) {
  require(config.shards >= 1, "ShardedSimulator: need at least one shard");
  const std::size_t n = config.shards;

  if (config.lookahead_s.empty()) {
    require(n == 1 || config.uniform_lookahead_s > 0.0,
            "ShardedSimulator: a multi-shard federation needs a positive "
            "lookahead (the minimum inter-DC latency floor)");
    lookahead_.assign(n * n, config.uniform_lookahead_s);
  } else {
    require(config.lookahead_s.size() == n * n,
            "ShardedSimulator: lookahead matrix must be shards x shards");
    lookahead_ = config.lookahead_s;
  }
  min_lookahead_s_ = kInf;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const double l = lookahead_[src * n + dst];
      require(l > 0.0 && std::isfinite(l),
              "ShardedSimulator: lookahead[" + std::to_string(src) + "][" +
                  std::to_string(dst) + "] must be positive and finite");
      min_lookahead_s_ = std::min(min_lookahead_s_, l);
    }
  }

  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->outbox.resize(n);
    shards_.push_back(std::move(s));
  }

  const std::size_t threads =
      config.threads == 1 ? 1 : resolve_thread_count(
                                    static_cast<std::int64_t>(config.threads));
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ShardedSimulator::~ShardedSimulator() = default;

Simulator& ShardedSimulator::shard(std::size_t i) {
  require(i < shards_.size(), "ShardedSimulator: shard index out of range");
  return shards_[i]->sim;
}

const Simulator& ShardedSimulator::shard(std::size_t i) const {
  require(i < shards_.size(), "ShardedSimulator: shard index out of range");
  return shards_[i]->sim;
}

double ShardedSimulator::lookahead_s(std::size_t src, std::size_t dst) const {
  require(src < shards_.size() && dst < shards_.size(),
          "ShardedSimulator: shard index out of range");
  if (src == dst) return kInf;
  return lookahead_[src * shards_.size() + dst];
}

void ShardedSimulator::send(std::size_t src, std::size_t dst, double delay_s,
                            EventFn fn) {
  require(src < shards_.size() && dst < shards_.size(),
          "ShardedSimulator: shard index out of range");
  require(static_cast<bool>(fn), "ShardedSimulator: empty event function");
  if (t_current_shard != kNoShard) {
    ensure(t_current_shard == src,
           "ShardedSimulator::send: an event executing on shard " +
               std::to_string(t_current_shard) +
               " tried to send as shard " + std::to_string(src) +
               " — cross-shard sends must originate from their own kernel");
  }
  Shard& s = *shards_[src];
  if (src == dst) {
    // Loopback: an ordinary local schedule, no conservative constraint.
    require(delay_s >= 0.0, "ShardedSimulator::send: negative delay");
    s.sim.schedule_at(s.sim.now() + delay_s, std::move(fn));
    return;
  }
  const double floor_s = lookahead_[src * shards_.size() + dst];
  if (!(delay_s >= floor_s)) {
    throw std::invalid_argument(
        "ShardedSimulator::send: delay " + std::to_string(delay_s) +
        " s is below the shard " + std::to_string(src) + " -> " +
        std::to_string(dst) + " lookahead floor of " +
        std::to_string(floor_s) +
        " s; a conservative federation cannot deliver inside the window "
        "other shards are already executing (raise the delay or lower the "
        "configured inter-DC latency floor)");
  }
  s.outbox[dst].push_back(Message{s.sim.now() + delay_s, std::move(fn)});
  ++s.sent;
}

void ShardedSimulator::check_run_entry() const {
  ensure(!running_ && !(pool_ && pool_->on_worker_thread()),
         "ShardedSimulator: run re-entered from inside an event callback "
         "(drive the federation from one coordinator thread only)");
}

std::size_t ShardedSimulator::run_window(double stop_s, bool inclusive) {
  running_ = true;
  const std::size_t n = shards_.size();
  auto chunk = [this, stop_s, inclusive](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ShardScope scope(i);
      Shard& s = *shards_[i];
      s.window_ran =
          inclusive ? s.sim.run_until(stop_s) : s.sim.run_before(stop_s);
    }
  };
  try {
    if (pool_) {
      pool_->parallel_for(n, chunk);
    } else {
      chunk(0, n);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  ++windows_run_;
  std::size_t ran = 0;
  for (const auto& s : shards_) ran += s->window_ran;
  return ran;
}

std::size_t ShardedSimulator::deliver_all(double min_legal_when_s) {
  std::size_t delivered = 0;
  for (auto& src : shards_) {
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      auto& box = src->outbox[dst];
      for (Message& m : box) {
        ensure(m.when_s >= min_legal_when_s,
               "ShardedSimulator: conservative horizon violated — a message "
               "for t=" + std::to_string(m.when_s) +
                   " arrived after the window ending at t=" +
                   std::to_string(min_legal_when_s) + " was already executed");
        shards_[dst]->sim.schedule_at(m.when_s, std::move(m.fn));
        ++delivered;
      }
      box.clear();
    }
  }
  return delivered;
}

std::size_t ShardedSimulator::run_until(double until_s) {
  check_run_entry();
  require(!std::isnan(until_s), "ShardedSimulator: run_until(NaN)");
  if (shards_.size() == 1) {
    // Degenerate federation: one kernel, no windows, no barriers — the
    // event sequence is exactly the plain Simulator's.
    const std::size_t ran = shards_[0]->sim.run_until(until_s);
    horizon_s_ = std::max(horizon_s_, until_s);
    now_s_ = std::max(now_s_, until_s);
    return ran;
  }
  // Messages sent between runs (world setup, epoch glue) are still sitting
  // in their outboxes: deliver them first, or a federation whose only work
  // arrives via send() would see every queue empty and run nothing. Their
  // timestamps are >= the committed horizon (clocks never precede it and
  // off-diagonal floors are positive), so delivery is conservative-safe.
  deliver_all(horizon_s_);
  std::size_t ran = 0;
  for (;;) {
    double ng = kInf;
    for (auto& s : shards_) ng = std::min(ng, s->sim.next_time());
    if (!(ng <= until_s)) break;  // empty, or everything is beyond the horizon
    const double w1 = ng + min_lookahead_s_;
    if (w1 > until_s) {
      // Final stretch: every event left in (ng, until_s] can only emit
      // messages for t >= ng + L > until_s, so the whole remainder is one
      // safe inclusive window.
      ran += run_window(until_s, /*inclusive=*/true);
      horizon_s_ = std::max(horizon_s_, until_s);
      deliver_all(w1);
      break;
    }
    ran += run_window(w1, /*inclusive=*/false);
    horizon_s_ = std::max(horizon_s_, w1);
    deliver_all(w1);
  }
  // Single-kernel run_until parity: clocks land on until_s even when no
  // event sits exactly there.
  for (auto& s : shards_) {
    if (s->sim.now() < until_s) s->sim.run_until(until_s);
  }
  horizon_s_ = std::max(horizon_s_, until_s);
  now_s_ = std::max(now_s_, until_s);
  return ran;
}

std::size_t ShardedSimulator::run_all() {
  check_run_entry();
  if (shards_.size() == 1) {
    const std::size_t ran = shards_[0]->sim.run_all();
    now_s_ = std::max(now_s_, shards_[0]->sim.now());
    horizon_s_ = std::max(horizon_s_, now_s_);
    return ran;
  }
  deliver_all(horizon_s_);  // setup-time sends (see run_until)
  std::size_t ran = 0;
  for (;;) {
    double ng = kInf;
    for (auto& s : shards_) ng = std::min(ng, s->sim.next_time());
    if (ng == kInf) break;  // every queue and mailbox is empty
    const double w1 = ng + min_lookahead_s_;
    ran += run_window(w1, /*inclusive=*/false);
    horizon_s_ = std::max(horizon_s_, w1);
    deliver_all(w1);
  }
  for (auto& s : shards_) now_s_ = std::max(now_s_, s->sim.now());
  horizon_s_ = std::max(horizon_s_, now_s_);
  return ran;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->sim.pending();
  return total;
}

std::uint64_t ShardedSimulator::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sent;
  return total;
}

}  // namespace epm::sim
