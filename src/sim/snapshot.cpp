#include "sim/snapshot.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/require.h"

namespace epm::sim {

namespace {

constexpr std::uint32_t kTaggedKernelMagic = 0x74616773U;  // "tags"
constexpr std::uint32_t kTaggedKernelVersion = 1;

std::string hex(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out += digits[(v >> shift) & 0xf];
  }
  return out;
}

}  // namespace

void SnapshotWriter::write_u32(std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (byte * 8)));
  }
}

void SnapshotWriter::write_u64(std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (byte * 8)));
  }
}

void SnapshotWriter::write_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void SnapshotWriter::write_string(const std::string& s) {
  write_u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void SnapshotWriter::write_payload(const std::vector<std::uint64_t>& p) {
  write_u64(p.size());
  for (const std::uint64_t v : p) write_u64(v);
}

void SnapshotWriter::begin_section(std::uint32_t magic,
                                   std::uint32_t version) {
  write_u32(magic);
  write_u32(version);
}

void SnapshotReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw std::runtime_error("snapshot truncated: needed " +
                             std::to_string(n) + " bytes, " +
                             std::to_string(size_ - pos_) + " left");
  }
}

std::uint8_t SnapshotReader::read_u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t SnapshotReader::read_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int byte = 0; byte < 4; ++byte) {
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (byte * 8);
  }
  return v;
}

std::uint64_t SnapshotReader::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte) {
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (byte * 8);
  }
  return v;
}

double SnapshotReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::read_string() {
  const std::uint64_t n = read_u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<std::uint64_t> SnapshotReader::read_payload() {
  const std::uint64_t n = read_u64();
  // Each element takes 8 bytes; bound before allocating so a corrupt length
  // cannot drive a huge allocation.
  need(n * 8);
  std::vector<std::uint64_t> p;
  p.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) p.push_back(read_u64());
  return p;
}

void SnapshotReader::expect_section(std::uint32_t magic,
                                    std::uint32_t version) {
  const std::uint32_t got_magic = read_u32();
  if (got_magic != magic) {
    throw std::runtime_error("snapshot section mismatch: expected " +
                             hex(magic) + ", found " + hex(got_magic));
  }
  const std::uint32_t got_version = read_u32();
  if (got_version != version) {
    throw std::runtime_error(
        "snapshot version mismatch for section " + hex(magic) + ": expected " +
        std::to_string(version) + ", found " + std::to_string(got_version));
  }
}

// ---------------------------------------------------------------------------
// TaggedKernel
// ---------------------------------------------------------------------------

void TaggedKernel::on(std::uint64_t tag, TagHandler handler) {
  require(static_cast<bool>(handler), "TaggedKernel: empty handler");
  const auto [it, inserted] = handlers_.emplace(tag, std::move(handler));
  (void)it;
  require(inserted, "TaggedKernel: tag " + std::to_string(tag) +
                        " already has a handler");
}

std::uint64_t TaggedKernel::add_record(double when_s, double period_s,
                                       std::uint64_t tag, TagPayload payload) {
  require(handlers_.count(tag) > 0,
          "TaggedKernel: no handler registered for tag " + std::to_string(tag));
  const std::uint64_t id = next_id_++;
  Record rec;
  rec.when_s = when_s;
  rec.period_s = period_s;
  rec.tag = tag;
  rec.payload = std::move(payload);
  auto [it, inserted] = records_.emplace(id, std::move(rec));
  ensure(inserted, "TaggedKernel: record id collision");
  arm(id, it->second);
  return id;
}

void TaggedKernel::arm(std::uint64_t id, Record& rec) {
  // A 16-byte capture — inline in the event node, no allocation.
  rec.handle = sim_.schedule_at(rec.when_s, [this, id] { fire(id); });
}

std::uint64_t TaggedKernel::schedule_tagged_at(double when_s,
                                               std::uint64_t tag,
                                               TagPayload payload) {
  return add_record(when_s, 0.0, tag, std::move(payload));
}

std::uint64_t TaggedKernel::schedule_tagged_periodic(double first_s,
                                                     double period_s,
                                                     std::uint64_t tag,
                                                     TagPayload payload) {
  require(period_s > 0.0, "TaggedKernel: period must be positive");
  return add_record(first_s, period_s, tag, std::move(payload));
}

void TaggedKernel::cancel_tagged(std::uint64_t record_id) {
  const auto it = records_.find(record_id);
  if (it == records_.end()) return;
  sim_.cancel(it->second.handle);
  records_.erase(it);
}

void TaggedKernel::fire(std::uint64_t id) {
  const auto it = records_.find(id);
  ensure(it != records_.end(),
         "TaggedKernel: fired an event whose record is gone");
  const double now = sim_.now();
  Record rec = std::move(it->second);
  records_.erase(it);
  if (rec.period_s > 0.0) {
    // Re-arm BEFORE the handler runs, exactly like the kernel's native
    // periodic path — but under a fresh record id, so record-id order keeps
    // matching seq order (the restore-determinism invariant).
    add_record(now + rec.period_s, rec.period_s, rec.tag, rec.payload);
  }
  const auto hit = handlers_.find(rec.tag);
  ensure(hit != handlers_.end(), "TaggedKernel: handler vanished for tag " +
                                     std::to_string(rec.tag));
  hit->second(now, rec.payload);
}

void TaggedKernel::save(SnapshotWriter& w) const {
  if (sim_.pending() != records_.size()) {
    throw std::runtime_error(
        "TaggedKernel: cannot snapshot — the kernel holds " +
        std::to_string(sim_.pending()) + " pending events but only " +
        std::to_string(records_.size()) +
        " are tagged records (untagged closures cannot be serialized)");
  }
  w.begin_section(kTaggedKernelMagic, kTaggedKernelVersion);
  w.write_f64(sim_.now());
  w.write_u64(next_id_);
  w.write_u64(records_.size());
  for (const auto& [id, rec] : records_) {
    w.write_u64(id);
    w.write_f64(rec.when_s);
    w.write_f64(rec.period_s);
    w.write_u64(rec.tag);
    w.write_payload(rec.payload);
  }
}

void TaggedKernel::restore(SnapshotReader& r) {
  require(records_.empty() && sim_.pending() == 0,
          "TaggedKernel: restore target must be idle (no pending events)");
  r.expect_section(kTaggedKernelMagic, kTaggedKernelVersion);
  const double now = r.read_f64();
  if (!std::isfinite(now) || now < 0.0) {
    throw std::runtime_error("snapshot clock is not a finite time");
  }
  const std::uint64_t next_id = r.read_u64();
  const std::uint64_t count = r.read_u64();
  sim_.restore_clock(now);
  std::uint64_t prev_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.read_u64();
    if (id <= prev_id || id >= next_id) {
      throw std::runtime_error("snapshot record ids out of order");
    }
    prev_id = id;
    Record rec;
    rec.when_s = r.read_f64();
    rec.period_s = r.read_f64();
    rec.tag = r.read_u64();
    rec.payload = r.read_payload();
    if (!std::isfinite(rec.when_s) || rec.when_s < now) {
      throw std::runtime_error("snapshot record scheduled before the clock");
    }
    if (handlers_.count(rec.tag) == 0) {
      throw std::runtime_error("snapshot record carries tag " +
                               std::to_string(rec.tag) +
                               " with no registered handler");
    }
    auto [it, inserted] = records_.emplace(id, std::move(rec));
    ensure(inserted, "TaggedKernel: duplicate record id in snapshot");
    // Re-scheduling in ascending record id order assigns fresh kernel seq
    // numbers in the same relative order the uninterrupted run had.
    arm(id, it->second);
  }
  next_id_ = next_id;
}

}  // namespace epm::sim
