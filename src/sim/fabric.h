// Execution fabric: one interface over "a single kernel pretending to be N
// datacenters" and "N federated kernels".
//
// World models that span datacenters (the fleet retry storm, geo re-routing,
// outage ride-through) are written against this interface: shard-local work
// goes through kernel(shard), cross-shard interactions through send(). The
// two implementations then give an in-run A/B with identical event
// semantics:
//
//   * SingleKernelFabric — every "shard" is the same sim::Simulator; send()
//     is an immediate schedule_at(now + delay). This is the serial ground
//     truth the differential and golden suites compare against, and the
//     baseline arm of the kernel_federation bench gate.
//   * ShardedFabric — an adapter over sim::ShardedSimulator; send() goes
//     through the conservative mailbox protocol.
//
// A world produces bit-identical results on both fabrics iff its cross-shard
// interactions are insensitive to same-timestamp delivery order across
// *different* sources (per-(src,dst) FIFO is guaranteed by both). The fleet
// models achieve that with source-indexed inboxes drained in source order at
// epoch boundaries — see faults/fleet_storm.h.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "core/require.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace epm::sim {

class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual std::size_t shard_count() const = 0;
  /// The kernel executing shard `i`'s events. On a single-kernel fabric
  /// every shard maps to the same Simulator.
  virtual Simulator& kernel(std::size_t shard) = 0;
  /// Cross-shard message: `fn` runs on shard `dst` at
  /// kernel(src).now() + delay_s. Same contract as ShardedSimulator::send
  /// (per-(src,dst) FIFO; on the sharded fabric delay_s must respect the
  /// lookahead floor).
  virtual void send(std::size_t src, std::size_t dst, double delay_s,
                    EventFn fn) = 0;
  virtual std::size_t run_until(double until_s) = 0;
  virtual std::size_t pending() const = 0;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void send(std::size_t src, std::size_t dst, double delay_s, F&& fn) {
    // Plain EventFn (no arena): on the sharded fabric the closure crosses
    // kernels and ClosureArena is not thread-safe.
    send(src, dst, delay_s, EventFn(std::forward<F>(fn)));
  }
};

/// Ground-truth fabric: one kernel carries every shard's events, so the
/// global event order is the plain single-Simulator order.
class SingleKernelFabric final : public Fabric {
 public:
  explicit SingleKernelFabric(std::size_t shards = 1) : shards_(shards) {
    require(shards >= 1, "SingleKernelFabric: need at least one shard");
  }

  using Fabric::send;  // keep the template convenience overload visible

  std::size_t shard_count() const override { return shards_; }
  Simulator& kernel(std::size_t shard) override {
    require(shard < shards_, "SingleKernelFabric: shard index out of range");
    return sim_;
  }
  void send(std::size_t src, std::size_t dst, double delay_s,
            EventFn fn) override {
    require(src < shards_ && dst < shards_,
            "SingleKernelFabric: shard index out of range");
    require(delay_s >= 0.0, "SingleKernelFabric: negative delay");
    sim_.schedule_at(sim_.now() + delay_s, std::move(fn));
  }
  std::size_t run_until(double until_s) override {
    return sim_.run_until(until_s);
  }
  std::size_t pending() const override { return sim_.pending(); }

  Simulator& sim() { return sim_; }

 private:
  std::size_t shards_;
  Simulator sim_;
};

/// Federated fabric: a non-owning adapter over ShardedSimulator.
class ShardedFabric final : public Fabric {
 public:
  explicit ShardedFabric(ShardedSimulator& fed) : fed_(fed) {}

  using Fabric::send;  // keep the template convenience overload visible

  std::size_t shard_count() const override { return fed_.shard_count(); }
  Simulator& kernel(std::size_t shard) override { return fed_.shard(shard); }
  void send(std::size_t src, std::size_t dst, double delay_s,
            EventFn fn) override {
    fed_.send(src, dst, delay_s, std::move(fn));
  }
  std::size_t run_until(double until_s) override {
    return fed_.run_until(until_s);
  }
  std::size_t pending() const override { return fed_.pending(); }

  ShardedSimulator& federation() { return fed_; }

 private:
  ShardedSimulator& fed_;
};

}  // namespace epm::sim
