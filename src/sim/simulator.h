// Discrete-event simulation kernel.
//
// The paper stresses that data-center dynamics span "nine orders of
// magnitude, from milliseconds to years" (§5). This kernel lets slow
// processes (CRAC control every 15 minutes, provisioning every minute) and
// fast ones (request-level events in validation tests) share one clock.
//
// Events scheduled at the same timestamp run in scheduling order (a strictly
// increasing sequence number breaks ties), which makes runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

namespace epm::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event, usable to cancel it.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded event-driven simulator with a double-seconds clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  double now() const { return now_s_; }

  /// Schedules `fn` at absolute time `when_s` (>= now). Returns a handle
  /// usable with cancel().
  EventHandle schedule_at(double when_s, EventFn fn);
  /// Schedules `fn` after `delay_s` (>= 0) from now.
  EventHandle schedule_after(double delay_s, EventFn fn);
  /// Schedules `fn` every `period_s` starting at `first_s`; runs until the
  /// simulator stops or the handle is cancelled. The callback observes now().
  EventHandle schedule_periodic(double first_s, double period_s, EventFn fn);

  /// Cancels a pending event; cancelling an already-fired or invalid handle
  /// is a harmless no-op. For periodic events, cancels all future firings.
  void cancel(EventHandle handle);

  /// Runs until the event queue empties or the clock passes `until_s`.
  /// Events at exactly `until_s` execute. Returns the number of events run.
  std::size_t run_until(double until_s);
  /// Runs until the queue is empty.
  std::size_t run_all();
  /// Executes the single next event, if any; returns whether one ran.
  bool step();

  /// Number of events currently pending (cancelled ones may still sit in the
  /// queue until they drain, but are not counted).
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    double when_s;
    std::uint64_t seq;
    std::uint64_t id;
    // Larger than zero => reschedule after firing.
    double period_s;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when_s != b.when_s) return a.when_s > b.when_s;
      return a.seq > b.seq;
    }
  };

  EventHandle push(double when_s, double period_s, EventFn fn);
  bool is_cancelled(std::uint64_t id) const;

  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Ids cancelled but not yet drained from the queue; erased when their
  /// queued instance pops, so the set stays bounded by live cancellations
  /// and every lookup is O(1) (a linear scan here made cancelling n events
  /// O(n^2) across the subsequent drain).
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace epm::sim
