// Discrete-event simulation kernel.
//
// The paper stresses that data-center dynamics span "nine orders of
// magnitude, from milliseconds to years" (§5). This kernel lets slow
// processes (CRAC control every 15 minutes, provisioning every minute) and
// fast ones (request-level events in validation tests) share one clock.
//
// Events scheduled at the same timestamp run in scheduling order (a strictly
// increasing sequence number breaks ties), which makes runs deterministic.
//
// Two interchangeable scheduler backends share that contract:
//
//  * CalendarSimulator — the default. A two-tier calendar queue: a bucketed
//    near-future wheel (O(1) amortized schedule/fire at any queue size, the
//    classic Brown result) plus a sorted far-future overflow heap, auto-
//    resizing on occupancy. Event nodes live in a chunked slab with a
//    freelist, closures are stored allocation-free (EventFn inline storage,
//    ClosureArena for oversized captures), and cancellation is an O(1)
//    status flip on the node — no hash set, no tombstone arithmetic.
//  * HeapSimulator — the original binary-heap + std::function + hash-set-
//    tombstone implementation, kept as the A/B baseline for the kernel
//    microbench and the cross-validation property suite.
//
// `Simulator` aliases the calendar backend; define EPM_SIM_BINARY_HEAP to
// point the whole system at the binary-heap path instead (both backends are
// always compiled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/event_fn.h"

namespace epm::sim {

/// Handle to a scheduled event, usable to cancel it.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class CalendarSimulator;
  friend class HeapSimulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded event-driven simulator with a double-seconds clock,
/// backed by a two-tier calendar queue.
class CalendarSimulator {
 public:
  CalendarSimulator();
  CalendarSimulator(const CalendarSimulator&) = delete;
  CalendarSimulator& operator=(const CalendarSimulator&) = delete;
  ~CalendarSimulator();

  /// Current simulated time in seconds.
  double now() const { return now_s_; }

  /// Schedules `fn` at absolute time `when_s` (>= now). Returns a handle
  /// usable with cancel(). The template routes oversized captures through
  /// the simulator's closure arena; captures up to EventFn::kInlineSize
  /// bytes are stored inline in the event node — no allocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandle schedule_at(double when_s, F&& fn) {
    return schedule_at(when_s, EventFn::with_arena(arena_, std::forward<F>(fn)));
  }
  EventHandle schedule_at(double when_s, EventFn fn);

  /// Schedules `fn` after `delay_s` (>= 0) from now.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandle schedule_after(double delay_s, F&& fn) {
    return schedule_after(delay_s,
                          EventFn::with_arena(arena_, std::forward<F>(fn)));
  }
  EventHandle schedule_after(double delay_s, EventFn fn);

  /// Schedules `fn` every `period_s` starting at `first_s`; runs until the
  /// simulator stops or the handle is cancelled. The callback observes now().
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandle schedule_periodic(double first_s, double period_s, F&& fn) {
    return schedule_periodic(first_s, period_s,
                             EventFn::with_arena(arena_, std::forward<F>(fn)));
  }
  EventHandle schedule_periodic(double first_s, double period_s, EventFn fn);

  /// Batch schedule: every element of [first, last) — an EventFn range —
  /// fires at `when_s` in iteration order (the same-timestamp FIFO
  /// guarantee), and the calendar bucket is resolved once for the whole
  /// batch instead of once per event. This is the fast path for epoch-
  /// granular models that emit N completions at one boundary.
  template <typename It>
  void schedule_batch_at(double when_s, It first, It last) {
    begin_batch(when_s);
    for (It it = first; it != last; ++it) {
      batch_push(when_s, std::move(*it));
    }
    end_batch();
  }

  /// Cancels a pending event; cancelling an already-fired or invalid handle
  /// is a harmless no-op. For periodic events, cancels all future firings.
  /// O(1): flips the node's status; the calendar entry is skipped and its
  /// slot recycled through the freelist when it drains.
  void cancel(EventHandle handle);

  /// Runs until the event queue empties or the clock passes `until_s`.
  /// Events at exactly `until_s` execute. Returns the number of events run.
  std::size_t run_until(double until_s);
  /// Runs every event with timestamp strictly before `until_s` and stops,
  /// WITHOUT advancing the clock to `until_s` (now() stays at the last fired
  /// event). This is the half-open window primitive the sharded federation
  /// kernel runs between barriers: events at exactly `until_s` belong to the
  /// next window, where cross-shard arrivals carrying that timestamp have
  /// already been delivered.
  std::size_t run_before(double until_s);
  /// Runs until the queue is empty.
  std::size_t run_all();
  /// Executes the single next event, if any; returns whether one ran.
  bool step();

  /// Timestamp of the next pending event, or +infinity when the queue is
  /// empty. Non-const: peeking settles the calendar head (merges late adds,
  /// drains cancelled entries), which never changes what fires next.
  double next_time();

  /// Snapshot-restore support: moves the clock to `now_s` (any finite value
  /// >= 0, forwards or backwards). Requires an idle kernel — pending() must
  /// be 0. Lingering cancelled calendar entries are swept back to the
  /// freelist and the wheel is re-based at the new clock, so the kernel is
  /// exactly as ready to schedule as a fresh one.
  void restore_clock(double now_s);

  /// Number of events currently pending. Cancelled events leave this count
  /// immediately (their slots are recycled when their calendar entries
  /// drain), so the count is exact at every instant — including after
  /// cancel-then-drain sequences and self-cancellation from a callback.
  std::size_t pending() const { return live_count_; }

  /// Calendar geometry (diagnostics / tests).
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width_s() const { return width_s_; }

 private:
  enum class Status : std::uint8_t { kFree, kPending, kFiring, kCancelled };

  /// Cache-line-aligned so one fire touches one line: the scalars end at
  /// byte 32, EventFn's ops pointer sits at 32..40, and the first 24 capture
  /// bytes (a context pointer plus a couple of ids, the common case) land at
  /// 40..64. Only oversized captures spill into the second line.
  struct alignas(64) Node {
    double when_s = 0.0;
    double period_s = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    Status status = Status::kFree;
    EventFn fn;
  };

  /// Calendar entry: a (time, seq) snapshot plus the slab slot. The
  /// snapshot makes bucket sorts cache-local (no node dereference per
  /// comparison); at most one live entry exists per node, so entries never
  /// go stale except through cancellation.
  struct Entry {
    double when_s;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when_s != b.when_s) return a.when_s > b.when_s;
      return a.seq > b.seq;
    }
  };

  static constexpr std::size_t kChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Node& node(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void free_slot(std::uint32_t slot);
  static std::uint64_t handle_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }

  EventHandle push(double when_s, double period_s, EventFn fn);
  void insert_entry(const Entry& entry);
  void begin_batch(double when_s);
  void batch_push(double when_s, EventFn fn);
  void end_batch();
  /// Ensures cur_[cur_pos_] is the globally next entry; false when empty.
  bool ensure_head();
  /// Sorts and merges cur_adds_ into the unconsumed tail of cur_.
  void merge_adds();
  /// Re-bases the wheel window at the overflow minimum.
  void rebase_from_overflow();
  /// Rebuilds the wheel with occupancy-adapted geometry.
  void resize_wheel(std::size_t target_buckets);
  double wheel_end_s() const {
    return base_s_ + width_s_ * static_cast<double>(buckets_.size());
  }

  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;   ///< pending (uncancelled) events
  std::size_t wheel_count_ = 0;  ///< entries in wheel + cur_ (not overflow)

  // Declared before the node slab: undrained boxed closures release into the
  // arena from Node destructors, so the arena must be destroyed after them.
  ClosureArena arena_;

  // Node slab: chunked so nodes never move (callbacks execute in place even
  // if they schedule new events), with a freelist for O(1) slot recycling.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t slot_capacity_ = 0;

  // Two-tier calendar queue. Buckets with index < next_bucket_ have been
  // loaded into cur_; late inserts landing behind that watermark join
  // cur_adds_ and are merged before the next pop.
  std::vector<std::vector<Entry>> buckets_;
  double base_s_ = 0.0;   ///< time at the start of bucket 0
  double width_s_ = 1.0;  ///< bucket width in simulated seconds
  double inv_width_s_ = 1.0;  ///< 1/width: bucket indexing multiplies (the
                              ///< single idx formula; mixing / and * forms
                              ///< would disagree at bucket boundaries)
  std::size_t next_bucket_ = 0;  ///< next wheel bucket to load into cur_
  std::vector<Entry> cur_;       ///< working list, sorted ascending
  std::size_t cur_pos_ = 0;      ///< consumption index into cur_
  std::vector<Entry> cur_adds_;  ///< unsorted adds due before the watermark
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> overflow_;

  // Destination resolved once per schedule_batch_at() call.
  bool batch_in_overflow_ = false;
  std::size_t batch_bucket_ = 0;
};

/// The original binary-heap scheduler (std::function events, hash-set
/// cancellation tombstones), kept compilable as the A/B baseline for
/// bench/exp_kernel_throughput and the kernel property suite.
class HeapSimulator {
 public:
  using Callback = std::function<void()>;

  HeapSimulator() = default;
  HeapSimulator(const HeapSimulator&) = delete;
  HeapSimulator& operator=(const HeapSimulator&) = delete;

  double now() const { return now_s_; }

  EventHandle schedule_at(double when_s, Callback fn);
  EventHandle schedule_at(double when_s, EventFn fn);
  EventHandle schedule_after(double delay_s, Callback fn);
  EventHandle schedule_after(double delay_s, EventFn fn);
  EventHandle schedule_periodic(double first_s, double period_s, Callback fn);
  EventHandle schedule_periodic(double first_s, double period_s, EventFn fn);

  /// API-parity batch schedule (the heap has no bucket to amortize; this is
  /// a plain loop so the two backends stay drop-in interchangeable).
  template <typename It>
  void schedule_batch_at(double when_s, It first, It last) {
    for (It it = first; it != last; ++it) {
      schedule_at(when_s, std::move(*it));
    }
  }

  void cancel(EventHandle handle);
  std::size_t run_until(double until_s);
  /// Half-open mirror of run_until: fires events strictly before `until_s`
  /// and leaves now() at the last fired event (see CalendarSimulator).
  std::size_t run_before(double until_s);
  std::size_t run_all();
  bool step();
  /// Next pending timestamp or +infinity; drains cancelled tombstones off
  /// the heap top so a dead entry never masquerades as the head.
  double next_time();
  /// Snapshot-restore support, mirroring CalendarSimulator::restore_clock:
  /// requires pending() == 0, drops any cancelled tombstones, and sets the
  /// clock.
  void restore_clock(double now_s);
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    double when_s;
    std::uint64_t seq;
    std::uint64_t id;
    // Larger than zero => reschedule after firing.
    double period_s;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when_s != b.when_s) return a.when_s > b.when_s;
      return a.seq > b.seq;
    }
  };

  EventHandle push(double when_s, double period_s, Callback fn);
  bool is_cancelled(std::uint64_t id) const;
  /// Pops cancelled tombstones off the heap top; they must not satisfy the
  /// run_until time check on behalf of a later live event.
  void drain_cancelled_top();

  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Ids cancelled but not yet drained from the queue; erased when their
  /// queued instance pops, so the set stays bounded by live cancellations
  /// and every lookup is O(1) (a linear scan here made cancelling n events
  /// O(n^2) across the subsequent drain).
  std::unordered_set<std::uint64_t> cancelled_;
};

#ifdef EPM_SIM_BINARY_HEAP
using Simulator = HeapSimulator;
#else
using Simulator = CalendarSimulator;
#endif

}  // namespace epm::sim
